#!/usr/bin/env python3
"""Diff two bench result files (results/<bench>.json).

Usage: scripts/bench_report.py OLD.json NEW.json [--threshold PCT]

Walks both documents, pairs every numeric leaf by its JSON path, and prints
the ones that moved by more than --threshold percent (default 2), plus any
path present on only one side. Exit code 0 by default — the report is
informational.

With --fail-above PCT the report becomes a gate: exit code 2 when any
shared numeric leaf moved by more than PCT percent in either direction
(CI uses this to catch silent perf/behavior drift between paired runs of
the same bench; missing-on-one-side paths stay informational since benches
legitimately grow new counters).

Works on any file bench::WriteResultsJson produces: the envelope is
{"bench", "options", ...payload...} and QueryProfile counters are flat
dotted keys, so paths line up mechanically between runs of the same bench.
"""

import argparse
import json
import sys


def numeric_leaves(node, path, out):
    """Flattens node into {path: float} for every numeric leaf."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        out[path] = float(node)
    elif isinstance(node, dict):
        for key, value in node.items():
            numeric_leaves(value, f"{path}.{key}" if path else key, out)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            numeric_leaves(value, f"{path}[{i}]", out)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="report changes above this percentage")
    parser.add_argument("--fail-above", type=float, default=None,
                        metavar="PCT",
                        help="exit 2 if any shared numeric leaf moved by "
                             "more than PCT percent")
    args = parser.parse_args()

    try:
        with open(args.old) as f:
            old_doc = json.load(f)
        with open(args.new) as f:
            new_doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_report: {exc}", file=sys.stderr)
        return 1

    old_vals, new_vals = {}, {}
    numeric_leaves(old_doc, "", old_vals)
    numeric_leaves(new_doc, "", new_vals)

    changed = []
    for path in sorted(old_vals.keys() & new_vals.keys()):
        old_v, new_v = old_vals[path], new_vals[path]
        if old_v == new_v:
            continue
        if old_v == 0:
            pct = float("inf")
        else:
            pct = (new_v - old_v) / abs(old_v) * 100
        if abs(pct) >= args.threshold:
            changed.append((path, old_v, new_v, pct))

    only_old = sorted(old_vals.keys() - new_vals.keys())
    only_new = sorted(new_vals.keys() - old_vals.keys())

    bench = new_doc.get("bench", "?")
    print(f"bench: {bench}   {args.old} -> {args.new}   "
          f"threshold {args.threshold:g}%")
    failures = []
    if args.fail_above is not None:
        failures = sorted((c for c in changed if abs(c[3]) > args.fail_above),
                          key=lambda c: -abs(c[3]))
    if not changed and not only_old and not only_new:
        print("no differences above threshold")
        return 0
    if changed:
        width = max(len(p) for p, *_ in changed)
        print(f"\n{len(changed)} changed value(s):")
        for path, old_v, new_v, pct in sorted(
                changed, key=lambda c: -abs(c[3])):
            arrow = "+" if pct >= 0 else ""
            pct_text = f"{arrow}{pct:.1f}%" if pct != float("inf") else "new"
            print(f"  {path:<{width}}  {old_v:>14g} -> {new_v:>14g}  "
                  f"({pct_text})")
    for label, paths in (("only in old", only_old), ("only in new",
                                                     only_new)):
        if paths:
            print(f"\n{len(paths)} path(s) {label}:")
            for path in paths[:20]:
                print(f"  {path}")
            if len(paths) > 20:
                print(f"  ... and {len(paths) - 20} more")
    if failures:
        print(f"\nFAIL: {len(failures)} value(s) moved more than "
              f"{args.fail_above:g}% (largest: {failures[0][0]} "
              f"{failures[0][3]:+.1f}%)", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
