#!/usr/bin/env bash
# Builds the tree and runs the test suite, then repeats the run under
# ASan+UBSan (SSAGG_SANITIZE wires the flags through the whole tree).
# The batched-append and pointer-recomputation code paths are exactly where
# the sanitizers earn their keep.
#
# Usage: scripts/check.sh [--asan-only|--plain-only]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
MODE="${1:-all}"

run_build() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

if [[ "$MODE" != "--asan-only" ]]; then
  echo "=== plain build + ctest ==="
  run_build build
fi

if [[ "$MODE" != "--plain-only" ]]; then
  echo "=== ASan+UBSan build + ctest ==="
  run_build build-san -DSSAGG_SANITIZE=address,undefined
fi

echo "all checks passed"
