#!/usr/bin/env bash
# Builds the tree and runs the test suite, then repeats the run under
# ASan+UBSan and under TSan (SSAGG_SANITIZE wires the flags through the
# whole tree). The batched-append and pointer-recomputation code paths are
# exactly where the sanitizers earn their keep.
#
# The plain build additionally runs a profile smoke step: a memory-limited
# (spilling) query with SSAGG_TRACE on, asserting that the emitted profile
# saw real spill I/O and that the trace's spans are balanced per thread.
#
# The sanitizer build additionally re-runs the fault-injection sweeps on
# their own: every injected I/O and allocation failure unwinds under
# ASan+UBSan, which is where leaked pins and double-frees on error paths
# actually surface.
#
# The TSan build is the runtime half of the concurrency gate (DESIGN.md
# section 9): the compile half is Clang's -Wthread-safety over the
# annotations in src/common/mutex.h, so the TSan leg also fails if the
# build log contains any thread-safety diagnostic (belt and braces when the
# compiler is Clang but SSAGG_THREAD_SAFETY_ANALYSIS was overridden off).
#
# The plain build also runs a spill-I/O smoke step: the same spilling query
# once per I/O backend (sync, threadpool, io_uring) with spill compression
# on, asserting that every backend spills, that compressed bytes written
# stay below the raw spill volume, and that the query's result row count is
# identical across backends.
#
# The plain build also runs a strategy smoke step: two canned queries at
# the planner's cardinality extremes, asserting the adaptive planner picks
# central merge for a handful of groups and the radix plan for ~1M groups
# (DESIGN.md section 11), with its decision visible in the profile JSON.
#
# The plain build also runs an observe smoke step (DESIGN.md section 12):
# a spilling query must surface nonzero spill-latency percentiles in its
# profile histograms, and a fault-injection run under SSAGG_FLIGHT_DUMP
# must leave flight-recorder dumps that parse as Chrome trace JSON.
#
# Usage: scripts/check.sh
#   [--asan-only|--plain-only|--tsan-only|--spill-io-only|--strategy-only|
#    --observe-only]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)
MODE="${1:-all}"

run_build() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

profile_smoke() {
  local dir="$1"
  echo "=== profile smoke (spilling query + trace) ==="
  local work
  work=$(mktemp -d)
  # SF 16 wide grouping 13 (all-unique groups) at 64 MiB must spill.
  (cd "$work" && SSAGG_BENCH_MEMORY_MB=64 SSAGG_BENCH_THREADS=2 \
      SSAGG_BENCH_TMPDIR="$work/tmp" SSAGG_TRACE="$work/trace.json" \
      "$OLDPWD/$dir/bench/bench_single_query" 16 wide 13 du)
  python3 - "$work/results/bench_single_query.json" "$work/trace.json" <<'EOF'
import collections, json, sys
results_path, trace_path = sys.argv[1], sys.argv[2]
with open(results_path) as f:
    doc = json.load(f)
counters = doc["result"]["profile"]["counters"]
spilled = counters.get("io.spill_bytes_written", 0)
assert spilled > 0, f"profile saw no spill: {counters}"
assert counters.get("io.spill_bytes_read", 0) > 0, "nothing read back"
with open(trace_path) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "trace is empty"
# Complete events (ph == "X") must be balanced: per thread, spans are
# laminar — any two either nest or are disjoint (no partial overlap).
by_tid = collections.defaultdict(list)
for e in events:
    if e["ph"] == "X":
        assert e["dur"] >= 0, e
        by_tid[e["tid"]].append((e["ts"], e["ts"] + e["dur"]))
names = {e["name"] for e in events if e["ph"] == "X"}
assert "query" in names and "spill.write" in names, names
for tid, spans in by_tid.items():
    # Sweep in start order (outer span first on ties); the stack holds the
    # end times of currently-open ancestors.
    spans.sort(key=lambda span: (span[0], -span[1]))
    stack = []
    for start, end in spans:
        while stack and start >= stack[-1]:
            stack.pop()
        assert not stack or end <= stack[-1], \
            f"overlapping spans on tid {tid}"
        stack.append(end)
print(f"profile smoke ok: {spilled} spill bytes, "
      f"{sum(len(s) for s in by_tid.values())} spans on {len(by_tid)} threads")
EOF
  rm -rf "$work"
}

spill_io_smoke() {
  local dir="$1"
  echo "=== spill I/O smoke (backend sweep, compressed < raw) ==="
  local work
  work=$(mktemp -d)
  local backend
  for backend in sync threadpool io_uring; do
    # SF 16 wide grouping 13 (all-unique groups) at 64 MiB must spill.
    (cd "$work" && SSAGG_BENCH_MEMORY_MB=64 SSAGG_BENCH_THREADS=2 \
        SSAGG_BENCH_TMPDIR="$work/tmp-$backend" \
        SSAGG_IO_BACKEND="$backend" SSAGG_SPILL_COMPRESSION=1 \
        "$OLDPWD/$dir/bench/bench_single_query" 16 wide 13 du)
    mv "$work/results/bench_single_query.json" "$work/$backend.json"
  done
  python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
rows = {}
for backend in ("sync", "threadpool", "io_uring"):
    with open(f"{work}/{backend}.json") as f:
        doc = json.load(f)
    counters = doc["result"]["profile"]["counters"]
    raw = counters.get("io.spill_raw_bytes", 0)
    written = counters.get("io.spill_bytes_written", 0)
    assert raw > 0, f"{backend}: query did not spill: {counters}"
    assert 0 < written < raw, \
        f"{backend}: compression did not shrink spill: {written} vs {raw}"
    rows[backend] = doc["result"]["result_rows"]
    print(f"spill io smoke ok [{backend}]: {written} written / {raw} raw "
          f"({written / raw:.2f}x)")
assert len(set(rows.values())) == 1, f"row counts diverge: {rows}"
EOF
  rm -rf "$work"
}

strategy_smoke() {
  local dir="$1"
  echo "=== strategy smoke (planner picks central at ~4 groups, radix at ~1M) ==="
  local work
  work=$(mktemp -d)
  # Grouping 1 (returnflag/linestatus): 4 groups -> central merge.
  (cd "$work" && SSAGG_BENCH_THREADS=2 SSAGG_BENCH_TMPDIR="$work/tmp" \
      "$OLDPWD/$dir/bench/bench_single_query" 4 thin 1 du)
  mv "$work/results/bench_single_query.json" "$work/low.json"
  # Grouping 13 (all-unique) at SF 18: ~1.08M groups -> radix merge.
  (cd "$work" && SSAGG_BENCH_THREADS=2 SSAGG_BENCH_TMPDIR="$work/tmp" \
      "$OLDPWD/$dir/bench/bench_single_query" 18 thin 13 du)
  mv "$work/results/bench_single_query.json" "$work/high.json"
  python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
# AggregateStrategy enum values: 1 central, 2 tree, 3 radix.
for name, expected, label in (("low", 1, "central"), ("high", 3, "radix")):
    with open(f"{work}/{name}.json") as f:
        doc = json.load(f)
    counters = doc["result"]["profile"]["counters"]
    chosen = counters.get("agg.chosen_strategy")
    estimated = counters.get("agg.estimated_groups")
    assert counters.get("agg.planner_forced") == 0, counters
    assert chosen == expected, \
        f"{name}-cardinality query chose strategy {chosen}, wanted {label}: " \
        f"estimated_groups={estimated}"
    print(f"strategy smoke ok [{name}]: chose {label}, "
          f"estimated {estimated} groups")
EOF
  rm -rf "$work"
}

observe_smoke() {
  local dir="$1"
  echo "=== observe smoke (latency histograms + flight dumps) ==="
  local work
  work=$(mktemp -d)
  # The spilling query's profile must carry the new latency histograms with
  # nonzero tails (p99 spill-write latency is the headline number).
  (cd "$work" && SSAGG_BENCH_MEMORY_MB=64 SSAGG_BENCH_THREADS=2 \
      SSAGG_BENCH_TMPDIR="$work/tmp" \
      "$OLDPWD/$dir/bench/bench_single_query" 16 wide 13 du)
  python3 - "$work/results/bench_single_query.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
profile = doc["result"]["profile"]
hists = profile.get("histograms", {})
for key in ("io.spill_write_latency_ns", "io.spill_read_latency_ns",
            "query.latency_ns", "exec.morsel_sink_ns"):
    assert key in hists, f"missing histogram {key}: {sorted(hists)}"
    assert hists[key]["count"] > 0, (key, hists[key])
    assert hists[key]["p50"] <= hists[key]["p99"] <= hists[key]["max"], \
        (key, hists[key])
p99 = hists["io.spill_write_latency_ns"]["p99"]
assert p99 > 0, hists["io.spill_write_latency_ns"]
print(f"observe smoke ok: spill write p99 {p99} ns, "
      f"{len(hists)} histograms in the profile")
EOF
  # Injected faults must leave flight-recorder dumps behind, and every dump
  # must be valid Chrome trace JSON carrying real events.
  mkdir "$work/flight"
  SSAGG_FLIGHT_DUMP="$work/flight" "$dir/tests/ssagg_tests" \
      --gtest_filter='FaultSweepTest.*' >/dev/null
  python3 - "$work/flight" <<'EOF'
import glob, json, sys
dumps = sorted(glob.glob(sys.argv[1] + "/ssagg_flight_*.json"))
assert dumps, "fault sweep under SSAGG_FLIGHT_DUMP produced no flight dumps"
events = 0
for path in dumps:
    with open(path) as f:
        doc = json.load(f)
    assert doc.get("flightReason"), f"{path}: missing flightReason"
    assert isinstance(doc.get("traceEvents"), list), path
    for e in doc["traceEvents"]:
        assert "name" in e and "ph" in e and "ts" in e and "tid" in e, e
    events += len(doc["traceEvents"])
assert events > 0, "flight dumps carried no events"
print(f"observe smoke ok: {len(dumps)} flight dumps, {events} events")
EOF
  rm -rf "$work"
}

if [[ "$MODE" == "--spill-io-only" ]]; then
  spill_io_smoke build
  echo "all checks passed"
  exit 0
fi

if [[ "$MODE" == "--observe-only" ]]; then
  observe_smoke build
  echo "all checks passed"
  exit 0
fi

if [[ "$MODE" == "--strategy-only" ]]; then
  strategy_smoke build
  echo "all checks passed"
  exit 0
fi

if [[ "$MODE" != "--asan-only" && "$MODE" != "--tsan-only" ]]; then
  echo "=== plain build + ctest ==="
  run_build build
  profile_smoke build
  spill_io_smoke build
  strategy_smoke build
  observe_smoke build
fi

fault_sweep_smoke() {
  local dir="$1"
  echo "=== fault sweep smoke (sanitized error-path unwinding) ==="
  "$dir/tests/ssagg_tests" \
      --gtest_filter='FaultSweepTest.*:SortSpillSweepTest.*:PartitionSpillSweepTest.*:SpillStressTest.*'
}

if [[ "$MODE" != "--plain-only" && "$MODE" != "--tsan-only" ]]; then
  echo "=== ASan+UBSan build + ctest ==="
  run_build build-san -DSSAGG_SANITIZE=address,undefined
  fault_sweep_smoke build-san
fi

tsan_build() {
  local dir="$1"
  cmake -B "$dir" -S . -DSSAGG_SANITIZE=thread
  # Fail if the compiler emitted any thread-safety diagnostic: the CMake
  # option promotes them to errors under Clang, but a stray warning (e.g.
  # with the option overridden) must not slip through either.
  local log
  log=$(mktemp)
  cmake --build "$dir" -j "$JOBS" 2>&1 | tee "$log"
  if grep -q '\-Wthread-safety' "$log"; then
    echo "thread-safety analysis warnings in the TSan build (see above)" >&2
    rm -f "$log"
    exit 1
  fi
  rm -f "$log"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

if [[ "$MODE" != "--plain-only" && "$MODE" != "--asan-only" ]]; then
  echo "=== TSan build + ctest ==="
  tsan_build build-tsan
fi

echo "all checks passed"
