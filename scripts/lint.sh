#!/usr/bin/env bash
# Static checks for the ssagg tree: grep-based lint rules that encode the
# repo's concurrency discipline (see DESIGN.md section 9), plus clang-tidy
# when it is installed (the grep rules always run, so CI without clang-tidy
# still enforces the discipline).
#
# Rules:
#   1. No raw std::mutex / std::shared_mutex / std::condition_variable /
#      lock guards outside src/common/mutex.h — everything goes through the
#      annotated ssagg wrappers so the Clang capability analysis sees it.
#   2. Every SSAGG_NO_THREAD_SAFETY_ANALYSIS escape hatch needs an adjacent
#      "// SAFETY:" comment explaining why the analysis is wrong.
#   3. A Pin() result must never be discarded: dropping the BufferHandle on
#      the floor immediately unpins the page, which silently turns "pinned"
#      code into a use-after-evict.
#
# Usage: scripts/lint.sh
set -uo pipefail

cd "$(dirname "$0")/.."

FAILED=0
fail() {
  echo "lint: $1" >&2
  FAILED=1
}

SOURCES="src tests bench examples"

# --- Rule 1: raw synchronization primitives ---------------------------------
raw=$(grep -rn \
    -e 'std::mutex' -e 'std::shared_mutex' -e 'std::recursive_mutex' \
    -e 'std::condition_variable' -e 'std::lock_guard' -e 'std::unique_lock' \
    -e 'std::scoped_lock' -e 'std::shared_lock' \
    -e 'include <mutex>' -e 'include <shared_mutex>' \
    -e 'include <condition_variable>' \
    $SOURCES --include='*.h' --include='*.cc' \
    | grep -v '^src/common/mutex.h:')
if [[ -n "$raw" ]]; then
  echo "$raw" >&2
  fail "raw std synchronization primitive outside src/common/mutex.h;" \
       "use ssagg::Mutex / ScopedLock / CondVar (common/mutex.h)"
fi

# --- Rule 2: analysis escapes need a SAFETY comment --------------------------
# The macro definition itself lives in common/mutex.h; every *use* must have
# "// SAFETY:" on the same or the preceding line.
while IFS=: read -r file line _; do
  [[ "$file" == "src/common/mutex.h" ]] && continue
  prev=$((line - 1))
  context=$(sed -n "${prev}p;${line}p" "$file")
  if ! grep -q '// SAFETY:' <<<"$context"; then
    fail "$file:$line: SSAGG_NO_THREAD_SAFETY_ANALYSIS without an adjacent '// SAFETY:' comment"
  fi
done < <(grep -rn 'SSAGG_NO_THREAD_SAFETY_ANALYSIS' $SOURCES \
         --include='*.h' --include='*.cc' || true)

# --- Rule 3: discarded pins ---------------------------------------------------
# A statement that calls .Pin(...) and ends in ';' on the same line without
# assigning the result destroys the BufferHandle (and the pin) immediately.
# Lines continuing a previous statement (ending in ',' or '(') are skipped.
discarded=$(find $SOURCES -name '*.h' -o -name '*.cc' | sort | xargs awk '
  FNR == 1 { prev = "" }
  /^[ \t]*[A-Za-z_][A-Za-z0-9_.]*(->|\.)Pin\(.*;[ \t]*$/ \
      && $0 !~ /=|return|\(void\)|SSAGG_/ \
      && prev !~ /[,(][ \t]*$/ {
    printf "%s:%d: %s\n", FILENAME, FNR, $0
  }
  { prev = $0 }
' || true)
if [[ -n "$discarded" ]]; then
  echo "$discarded" >&2
  fail "Pin() result discarded: the page is unpinned again before use"
fi

# --- clang-tidy (optional) ----------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f build/compile_commands.json ]]; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  echo "=== clang-tidy ==="
  if ! find src -name '*.cc' -print0 \
      | xargs -0 -P "$(nproc 2>/dev/null || echo 4)" -n 8 \
          clang-tidy -p build --quiet; then
    fail "clang-tidy reported errors"
  fi
else
  echo "lint: clang-tidy not installed, skipping (grep rules still enforced)"
fi

if [[ "$FAILED" -ne 0 ]]; then
  echo "lint failed" >&2
  exit 1
fi
echo "lint passed"
