#include "buffer/file_block_manager.h"

#include "common/constants.h"

namespace ssagg {

Result<std::unique_ptr<FileBlockManager>> FileBlockManager::Create(
    const std::string &path, FileSystem &fs) {
  FileOpenFlags flags;
  flags.read = true;
  flags.write = true;
  flags.create = true;
  flags.truncate = true;
  SSAGG_ASSIGN_OR_RETURN(auto file, fs.Open(path, flags));
  return std::unique_ptr<FileBlockManager>(
      new FileBlockManager(fs, std::move(file), path, 0));
}

Result<std::unique_ptr<FileBlockManager>> FileBlockManager::Open(
    const std::string &path, FileSystem &fs) {
  FileOpenFlags flags;
  flags.read = true;
  flags.write = true;
  SSAGG_ASSIGN_OR_RETURN(auto file, fs.Open(path, flags));
  SSAGG_ASSIGN_OR_RETURN(idx_t size, file->FileSize());
  if (size % kPageSize != 0) {
    return Status::IOError("database file size is not a multiple of the page "
                           "size: " + path);
  }
  return std::unique_ptr<FileBlockManager>(
      new FileBlockManager(fs, std::move(file), path, size / kPageSize));
}

block_id_t FileBlockManager::AllocateBlock() {
  return next_block_id_.fetch_add(1);
}

Status FileBlockManager::WriteBlock(block_id_t id, const FileBuffer &buffer) {
  SSAGG_DASSERT(buffer.size() == kPageSize);
  SSAGG_DASSERT(id < next_block_id_.load());
  return file_->Write(buffer.data(), kPageSize, id * kPageSize);
}

Status FileBlockManager::ReadBlock(block_id_t id, FileBuffer &buffer) {
  SSAGG_DASSERT(buffer.size() == kPageSize);
  return file_->Read(buffer.data(), kPageSize, id * kPageSize);
}

Status FileBlockManager::Sync() { return file_->Sync(); }

}  // namespace ssagg
