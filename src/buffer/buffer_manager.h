#ifndef SSAGG_BUFFER_BUFFER_MANAGER_H_
#define SSAGG_BUFFER_BUFFER_MANAGER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <string>

#include "buffer/block_handle.h"
#include "buffer/buffer_handle.h"
#include "buffer/file_block_manager.h"
#include "buffer/temporary_file_manager.h"
#include "common/async_io.h"
#include "common/constants.h"
#include "common/file_system.h"
#include "common/mutex.h"
#include "common/status.h"

namespace ssagg {

class FaultInjector;

/// Which pages are evicted first when memory is needed (Section VII,
/// "Loading & Spilling"). kMixed is DuckDB's default: one LRU queue for all
/// page kinds. The other two keep persistent and temporary pages in separate
/// LRU queues and drain one before the other.
enum class EvictionPolicy : uint8_t {
  kMixed,
  kTemporaryFirst,
  kPersistentFirst,
};

/// Point-in-time view of the buffer manager, sampled by the Figure 4 bench
/// and embedded (as begin/end deltas) in QueryProfile.
struct BufferManagerSnapshot {
  idx_t memory_used = 0;
  idx_t memory_limit = 0;
  idx_t persistent_bytes_in_memory = 0;
  idx_t temporary_bytes_in_memory = 0;
  idx_t non_paged_bytes = 0;
  idx_t temp_file_size = 0;
  idx_t temp_file_peak = 0;
  idx_t evicted_persistent_count = 0;
  idx_t evicted_temporary_count = 0;
  idx_t reused_buffers = 0;
  idx_t temp_writes = 0;
  idx_t temp_reads = 0;
  // Spill I/O accounting (ground truth: TemporaryFileManager).
  // spill_bytes_written is physical (post-compression); spill_raw_bytes is
  // the logical pre-compression volume.
  idx_t spill_bytes_written = 0;
  idx_t spill_bytes_read = 0;
  idx_t spill_raw_bytes = 0;
  idx_t spill_coalesced_writes = 0;
  idx_t spill_coalesced_pages = 0;
  // Wall-clock seconds query threads were *blocked* on spill I/O: the
  // submit..wait window of writes, demand reads, and Pin()'s waits for
  // in-flight prefetch loads. Prefetch latency nobody waited on is excluded.
  double spill_write_seconds = 0;
  double spill_read_seconds = 0;
  idx_t spill_slot_reuses = 0;
  idx_t spill_variable_files = 0;
  // Asynchronous read-ahead of spilled blocks.
  idx_t prefetch_issued = 0;
  idx_t prefetch_completed = 0;
  /// Reservations rejected because nothing more could be evicted.
  idx_t oom_rejections = 0;
  /// Outstanding pins (live BufferHandles) across all blocks. Must be zero
  /// once no query state is alive — the no-leak invariant the fault suite
  /// asserts after every injected failure.
  idx_t pinned_buffers = 0;
};

/// RAII owner of a non-paged allocation (Section III): any-size, not
/// spillable, but routed through the buffer manager so that making it may
/// evict other pages, and so it counts toward the memory limit.
class NonPagedAllocation {
 public:
  NonPagedAllocation() = default;
  NonPagedAllocation(BufferManager *manager, data_ptr_t data, idx_t size)
      : manager_(manager), data_(data), size_(size) {}
  ~NonPagedAllocation() { Reset(); }

  NonPagedAllocation(const NonPagedAllocation &) = delete;
  NonPagedAllocation &operator=(const NonPagedAllocation &) = delete;
  NonPagedAllocation(NonPagedAllocation &&other) noexcept {
    *this = std::move(other);
  }
  NonPagedAllocation &operator=(NonPagedAllocation &&other) noexcept;

  bool IsValid() const { return data_ != nullptr; }
  data_ptr_t data() { return data_; }
  const_data_ptr_t data() const { return data_; }
  idx_t size() const { return size_; }

  void Reset();

 private:
  BufferManager *manager_ = nullptr;
  data_ptr_t data_ = nullptr;
  idx_t size_ = 0;
};

/// Construction-time knobs of the buffer manager's spill I/O path.
struct BufferManagerOptions {
  EvictionPolicy policy = EvictionPolicy::kMixed;
  /// Which async backend executes spill I/O. kSync (the default) preserves
  /// the exact one-write-per-eviction schedule of the pre-async engine.
  IoBackendKind io_backend = IoBackendKind::kSync;
  idx_t io_threads = 4;
  /// Compress spilled pages into codec spill frames.
  bool spill_compression = false;
  /// Fixed-size pages spilled per eviction batch (the writeback pipeline
  /// depth). 0 = auto: 1 for the sync backend (legacy semantics), 16 for
  /// async backends (deep batches amortize the submit..wait cycle across
  /// many in-flight transfers). Values > 1 over-evict: a one-page
  /// reservation may spill up to this many LRU victims in one overlapped
  /// batch, so the following reservations need no eviction at all.
  idx_t spill_batch = 0;
  /// Allow asynchronous read-ahead of spilled blocks (only active with an
  /// async backend; never evicts, never consults the fault injector for its
  /// memory reservation).
  bool prefetch = true;

  /// Defaults with io_backend / spill_compression taken from the
  /// SSAGG_IO_BACKEND and SSAGG_SPILL_COMPRESSION environment variables.
  static BufferManagerOptions FromEnv();
};

/// Unified Memory Management (Section III): one memory pool and one eviction
/// mechanism for persistent pages, paged fixed-size temporary data, paged
/// variable-size temporary data, and non-paged temporary allocations.
/// Eviction only happens when a new reservation would exceed the memory
/// limit; evicted persistent pages are dropped for free (their contents are
/// in the database file) while evicted temporary pages are written to
/// temporary files. Same-size evicted buffers are reused for the new
/// allocation.
class BufferManager {
 public:
  /// Reads the I/O options from the environment (BufferManagerOptions::
  /// FromEnv), so SSAGG_IO_BACKEND / SSAGG_SPILL_COMPRESSION apply to every
  /// engine instance without touching call sites.
  BufferManager(std::string temp_directory, idx_t memory_limit,
                EvictionPolicy policy = EvictionPolicy::kMixed,
                FileSystem &fs = FileSystem::Default());
  BufferManager(std::string temp_directory, idx_t memory_limit,
                BufferManagerOptions options,
                FileSystem &fs = FileSystem::Default());
  ~BufferManager();

  BufferManager(const BufferManager &) = delete;
  BufferManager &operator=(const BufferManager &) = delete;

  /// Allocates a temporary block of the given size and returns it pinned.
  /// size == kPageSize yields a paged fixed-size allocation (spillable into
  /// the shared temporary file); other sizes yield paged variable-size
  /// allocations (each spilled to its own file). If can_destroy is set the
  /// contents are dropped instead of spilled and the block cannot be
  /// re-pinned after eviction.
  Result<BufferHandle> Allocate(idx_t size,
                                std::shared_ptr<BlockHandle> *out_handle,
                                bool can_destroy = false);

  /// Registers a block of the database file with the pool; reading it (and
  /// caching it in memory) happens on Pin.
  std::shared_ptr<BlockHandle> RegisterPersistentBlock(
      FileBlockManager &block_manager, block_id_t block_id);

  /// Pins the block, loading it from the database file or temporary file if
  /// it is not resident. May evict other pages to make room. If the block is
  /// being prefetched (kLoading), waits for the load to finish.
  Result<BufferHandle> Pin(const std::shared_ptr<BlockHandle> &handle);

  /// Best-effort asynchronous read-ahead of a spilled fixed-size temporary
  /// block: reserves memory from the pool's spare headroom (never evicting
  /// and never consulting the fault injector — prefetch is speculative),
  /// submits the read, and publishes the block as kLoaded on completion. A
  /// failed prefetch poisons the block so the next Pin surfaces the error.
  /// Silently does nothing when the block is not prefetchable, memory is
  /// tight, or the backend is synchronous.
  void Prefetch(const std::shared_ptr<BlockHandle> &handle);

  /// Eagerly destroys a block's contents: frees the memory if loaded, or the
  /// temporary-file space if spilled (Section III: "we try to eagerly
  /// destroy temporary pages as soon as they are no longer needed").
  void DestroyBlock(const std::shared_ptr<BlockHandle> &handle);

  /// Non-paged allocation; see NonPagedAllocation.
  Result<NonPagedAllocation> AllocateNonPaged(idx_t size);

  /// Reserve / release memory accounted to the pool without the manager
  /// owning it (used by operators with external allocations).
  Status ReserveExternalMemory(idx_t size);
  void FreeExternalMemory(idx_t size);

  [[nodiscard]] idx_t memory_used() const {
    return memory_used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] idx_t memory_limit() const {
    return memory_limit_.load(std::memory_order_relaxed);
  }
  /// Adjusting the limit only affects future reservations; it does not
  /// proactively evict.
  void SetMemoryLimit(idx_t limit) { memory_limit_.store(limit); }
  [[nodiscard]] EvictionPolicy policy() const;
  void SetEvictionPolicy(EvictionPolicy policy);

  [[nodiscard]] BufferManagerSnapshot Snapshot() const;
  TemporaryFileManager &temp_files() { return temp_files_; }
  const TemporaryFileManager &temp_files() const { return temp_files_; }
  /// The async backend all spill I/O goes through (sort runs share it so
  /// their read-ahead rides the same pipeline).
  AsyncIoBackend &io_backend() const { return *io_backend_; }
  [[nodiscard]] bool spill_compression() const {
    return temp_files_.spill_compression();
  }
  /// The file system this pool (and its temporary files) performs I/O
  /// through; operators spill through the same one so that fault injection
  /// covers every layer.
  FileSystem &fs() const { return fs_; }

  /// Outstanding pins across all blocks (see
  /// BufferManagerSnapshot::pinned_buffers).
  [[nodiscard]] idx_t PinnedBufferCount() const {
    return static_cast<idx_t>(pinned_buffers_.load(std::memory_order_relaxed));
  }

  /// Installs (or clears, with nullptr) a fault injector consulted on every
  /// memory reservation (FaultSite::kAllocate), every Pin (FaultSite::kPin)
  /// and — via the async backend — every spill I/O submission/completion,
  /// so tests can deny the Nth operation and prove the failure unwinds
  /// cleanly. Not owned; must outlive its use.
  void SetFaultInjector(FaultInjector *injector) {
    fault_injector_.store(injector, std::memory_order_release);
    io_backend_->SetFaultInjector(injector);
  }

  /// When disabled, temporary pages are never written to temporary files:
  /// the pool behaves like an in-memory-only engine's (persistent pages
  /// still evict for free), and reservations fail with OutOfMemory once
  /// only temporary pages remain. Used by the baseline system models.
  void SetSpillTemporary(bool spill) {
    spill_temporary_.store(spill, std::memory_order_relaxed);
  }
  bool spill_temporary() const {
    return spill_temporary_.load(std::memory_order_relaxed);
  }

 private:
  friend class BlockHandle;
  friend class BufferHandle;
  friend class NonPagedAllocation;

  /// Releases a NonPagedAllocation's charge.
  void FreeNonPaged(idx_t size);

  struct EvictionEntry {
    std::weak_ptr<BlockHandle> handle;
    uint64_t seq;
  };

  /// Index into queues_: temporaries and persistents may share queue 0
  /// (mixed policy) or be split. Depends on policy_, so the queue lock must
  /// be held.
  idx_t QueueIndexLocked(BlockKind kind) const SSAGG_REQUIRES(queue_lock_);

  /// Makes room for `size` bytes, evicting pages as needed. On success the
  /// reservation is charged to memory_used_. If an evicted buffer has
  /// exactly the requested size it is returned for reuse.
  Result<std::unique_ptr<FileBuffer>> ReserveMemory(idx_t size);

  /// Like ReserveMemory but speculative: only consumes spare headroom —
  /// never evicts and never consults the fault injector. Used by Prefetch.
  bool TryReserveForPrefetch(idx_t size);

  /// Evicts at least one block, spilling up to spill_batch_ fixed-size
  /// temporaries as one overlapped write batch. Returns an evicted buffer
  /// reusable for `reuse_size` (nullptr if memory was freed instead); an
  /// error if no evictable block exists or a spill write failed. A failed
  /// batch rolls back completely: every member block stays loaded, its slot
  /// is released and it is re-enqueued as an eviction candidate.
  Result<std::unique_ptr<FileBuffer>> EvictBlocks(idx_t reuse_size);

  /// Publishes the result of an asynchronous prefetch read; runs on the
  /// backend's completing thread.
  void FinishPrefetch(const std::shared_ptr<BlockHandle> &handle,
                      const Status &status);

  /// Called by BufferHandle::Reset.
  void Unpin(BlockHandle &block);
  /// Called by ~BlockHandle: release any memory / temp-file space.
  void CleanupDroppedBlock(BlockHandle &block);

  void ChargeLoaded(BlockKind kind, idx_t size);
  void DischargeLoaded(BlockKind kind, idx_t size);

  std::string temp_directory_;
  FileSystem &fs_;
  std::atomic<idx_t> memory_limit_;
  std::atomic<bool> spill_temporary_{true};
  std::atomic<FaultInjector *> fault_injector_{nullptr};
  /// Declared before temp_files_ (which submits against it) so it outlives
  /// the manager's files; the destructor drains it before members die.
  std::unique_ptr<AsyncIoBackend> io_backend_;
  /// Resolved pipeline depth of eviction write batches (>= 1).
  idx_t spill_batch_;
  bool prefetch_enabled_;
  std::atomic<idx_t> prefetch_issued_{0};
  std::atomic<idx_t> prefetch_completed_{0};
  /// Nanoseconds Pin() spent waiting for in-flight prefetch loads; folded
  /// into spill_read_seconds so that number means "time query threads were
  /// blocked on spill reads" (prefetch completions themselves record 0).
  std::atomic<uint64_t> load_wait_ns_{0};
  TemporaryFileManager temp_files_;

  std::atomic<idx_t> memory_used_{0};
  std::atomic<idx_t> persistent_loaded_bytes_{0};
  std::atomic<idx_t> temporary_loaded_bytes_{0};
  std::atomic<idx_t> non_paged_bytes_{0};
  std::atomic<block_id_t> next_temp_block_id_{0};

  /// Protects the eviction queues and the policy that maps blocks to them.
  /// Leaf-most lock of the pool: it is only held for queue manipulation,
  /// never while performing I/O or acquiring any other mutex.
  mutable Mutex queue_lock_;
  EvictionPolicy policy_ SSAGG_GUARDED_BY(queue_lock_);
  std::deque<EvictionEntry> queues_[2] SSAGG_GUARDED_BY(queue_lock_);

  /// Threads currently inside EvictBlocks. A reservation that finds the
  /// queues empty while another eviction is in flight retries instead of
  /// reporting OutOfMemory: the other batch holds the candidates locked.
  std::atomic<idx_t> evictions_in_flight_{0};

  std::atomic<idx_t> evicted_persistent_count_{0};
  std::atomic<idx_t> evicted_temporary_count_{0};
  std::atomic<idx_t> reused_buffers_{0};
  std::atomic<idx_t> oom_rejections_{0};
  std::atomic<int64_t> pinned_buffers_{0};

  /// Cached global-registry key ids ("bm.*"), resolved at construction.
  idx_t key_evict_persistent_;
  idx_t key_evict_temp_spilled_;
  idx_t key_evict_temp_destroyed_;
  idx_t key_buffer_reuse_;
  idx_t key_oom_rejections_;
  /// Histogram ids: time Pin() blocked on an in-flight load, and time
  /// EvictBlocks spent selecting victims (scan + try-lock churn, excluding
  /// the spill write itself).
  idx_t hist_pin_wait_;
  idx_t hist_evict_select_;
};

}  // namespace ssagg

#endif  // SSAGG_BUFFER_BUFFER_MANAGER_H_
