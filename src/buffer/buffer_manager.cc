#include "buffer/buffer_manager.h"

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "observe/log.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "testing/fault_injector.h"

namespace ssagg {

//===----------------------------------------------------------------------===//
// BlockHandle / BufferHandle
//===----------------------------------------------------------------------===//

BlockHandle::~BlockHandle() {
  // The last shared_ptr is gone, so no pins can be outstanding; release any
  // memory or temporary-file space still held.
  manager_.CleanupDroppedBlock(*this);
}

void BufferHandle::Reset() {
  if (handle_) {
    handle_->manager_.Unpin(*handle_);
    handle_.reset();
  }
  buffer_ = nullptr;
}

//===----------------------------------------------------------------------===//
// NonPagedAllocation
//===----------------------------------------------------------------------===//

NonPagedAllocation &NonPagedAllocation::operator=(
    NonPagedAllocation &&other) noexcept {
  if (this != &other) {
    Reset();
    manager_ = other.manager_;
    data_ = other.data_;
    size_ = other.size_;
    other.manager_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void NonPagedAllocation::Reset() {
  if (data_ != nullptr) {
    delete[] data_;
    manager_->FreeNonPaged(size_);
    data_ = nullptr;
    manager_ = nullptr;
    size_ = 0;
  }
}

//===----------------------------------------------------------------------===//
// BufferManager
//===----------------------------------------------------------------------===//

BufferManagerOptions BufferManagerOptions::FromEnv() {
  BufferManagerOptions options;
  options.io_backend = IoBackendKindFromEnv();
  options.spill_compression = SpillCompressionFromEnv();
  return options;
}

namespace {
BufferManagerOptions WithPolicy(EvictionPolicy policy) {
  BufferManagerOptions options = BufferManagerOptions::FromEnv();
  options.policy = policy;
  return options;
}
}  // namespace

BufferManager::BufferManager(std::string temp_directory, idx_t memory_limit,
                             EvictionPolicy policy, FileSystem &fs)
    : BufferManager(std::move(temp_directory), memory_limit,
                    WithPolicy(policy), fs) {}

BufferManager::BufferManager(std::string temp_directory, idx_t memory_limit,
                             BufferManagerOptions options, FileSystem &fs)
    : temp_directory_(std::move(temp_directory)),
      fs_(fs),
      memory_limit_(memory_limit),
      io_backend_(CreateIoBackend(options.io_backend, options.io_threads)),
      spill_batch_(options.spill_batch != 0
                       ? options.spill_batch
                       : (io_backend_->kind() == IoBackendKind::kSync ? 1
                                                                      : 16)),
      prefetch_enabled_(options.prefetch &&
                        io_backend_->kind() != IoBackendKind::kSync),
      temp_files_(temp_directory_, fs, io_backend_.get(),
                  options.spill_compression),
      policy_(options.policy) {
  MetricsRegistry &registry = MetricsRegistry::Global();
  key_evict_persistent_ = registry.KeyId("bm.evictions_persistent");
  key_evict_temp_spilled_ = registry.KeyId("bm.evictions_temporary_spilled");
  key_evict_temp_destroyed_ =
      registry.KeyId("bm.evictions_temporary_destroyed");
  key_buffer_reuse_ = registry.KeyId("bm.buffer_reuse_hits");
  key_oom_rejections_ = registry.KeyId("bm.oom_rejections");
  hist_pin_wait_ = registry.HistogramId("bm.pin_wait_ns");
  hist_evict_select_ = registry.HistogramId("bm.evict_select_ns");
}

BufferManager::~BufferManager() {
  // Outstanding prefetch completions hold shared_ptr<BlockHandle> and touch
  // this manager; none may survive past here.
  io_backend_->Drain();
}

idx_t BufferManager::QueueIndexLocked(BlockKind kind) const {
  if (policy_ == EvictionPolicy::kMixed) {
    return 0;
  }
  return kind == BlockKind::kPersistent ? 1 : 0;
}

EvictionPolicy BufferManager::policy() const {
  ScopedLock guard(queue_lock_);
  return policy_;
}

void BufferManager::SetEvictionPolicy(EvictionPolicy policy) {
  ScopedLock guard(queue_lock_);
  // Redistribute existing entries according to the new policy's queue
  // mapping. Stale entries are carried along; they are skipped lazily.
  std::deque<EvictionEntry> all;
  for (auto &queue : queues_) {
    for (auto &entry : queue) {
      all.push_back(std::move(entry));
    }
    queue.clear();
  }
  policy_ = policy;
  for (auto &entry : all) {
    auto handle = entry.handle.lock();
    if (!handle) {
      continue;
    }
    queues_[QueueIndexLocked(handle->kind())].push_back(std::move(entry));
  }
}

void BufferManager::ChargeLoaded(BlockKind kind, idx_t size) {
  if (kind == BlockKind::kPersistent) {
    persistent_loaded_bytes_.fetch_add(size, std::memory_order_relaxed);
  } else {
    temporary_loaded_bytes_.fetch_add(size, std::memory_order_relaxed);
  }
}

void BufferManager::DischargeLoaded(BlockKind kind, idx_t size) {
  if (kind == BlockKind::kPersistent) {
    persistent_loaded_bytes_.fetch_sub(size, std::memory_order_relaxed);
  } else {
    temporary_loaded_bytes_.fetch_sub(size, std::memory_order_relaxed);
  }
}

// SAFETY: this function manages a *set* of manually try-locked block handles
// (the spill batch) whose locks are held across the batched write and
// released one by one afterwards — a pattern scoped capabilities cannot
// express. Lock order is preserved: block locks are only ever try-locked,
// and queue_lock_ is a leaf acquired below them.
Result<std::unique_ptr<FileBuffer>>
// SAFETY: see the rationale above.
BufferManager::EvictBlocks(idx_t reuse_size) SSAGG_NO_THREAD_SAFETY_ANALYSIS {
  evictions_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  struct InFlightGuard {
    std::atomic<idx_t> &count;
    ~InFlightGuard() { count.fetch_sub(1, std::memory_order_acq_rel); }
  } in_flight_guard{evictions_in_flight_};

  // Victim-selection time: queue scanning and try-lock churn up to the
  // point a decision is made (spill, drop, or give up) — the write itself
  // is excluded; the spill histograms cover that.
  auto select_start = std::chrono::steady_clock::now();
  bool selection_recorded = false;
  auto record_selection = [&]() {
    if (selection_recorded) {
      return;
    }
    selection_recorded = true;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - select_start)
                  .count();
    MetricsRegistry::Global().Record(hist_evict_select_,
                                     static_cast<uint64_t>(ns));
  };

  // Fixed-size spill candidates whose lock_ this function currently holds.
  std::vector<std::shared_ptr<BlockHandle>> batch;

  auto enqueue = [this](const std::shared_ptr<BlockHandle> &handle,
                        uint64_t seq, bool front) {
    ScopedLock guard(queue_lock_);
    auto &queue = queues_[QueueIndexLocked(handle->kind())];
    if (front) {
      queue.push_front(EvictionEntry{handle->weak_from_this(), seq});
    } else {
      queue.push_back(EvictionEntry{handle->weak_from_this(), seq});
    }
  };

  // Drops the (locked, spill-complete or free-to-drop) block's buffer,
  // harvesting the first reuse_size-sized one for the caller.
  auto finalize = [&](BlockHandle &block, std::unique_ptr<FileBuffer> &result)
                      // SAFETY: called only while the block's lock_ is held.
                      SSAGG_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_ptr<FileBuffer> buffer = std::move(block.buffer_);
    block.state_ = BlockState::kUnloaded;
    DischargeLoaded(block.kind_, block.size_);
    if (!result && buffer->size() == reuse_size) {
      // Hand the buffer to the new allocation; its memory charge transfers.
      reused_buffers_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global().Add(key_buffer_reuse_, 1);
      result = std::move(buffer);
      return;
    }
    buffer.reset();
    memory_used_.fetch_sub(block.size_, std::memory_order_relaxed);
  };

  // Spills the batch as one overlapped submission. All-or-nothing: if any
  // member fails, successful members release their slots, every block stays
  // loaded and is re-enqueued, and the first error propagates.
  // SAFETY: owns (and releases) the batch members' manually held locks.
  auto flush = [&]() SSAGG_NO_THREAD_SAFETY_ANALYSIS
      -> Result<std::unique_ptr<FileBuffer>> {
    SSAGG_DASSERT(!batch.empty());
    SSAGG_LOG_DEBUG("spilling batch of %llu temporary pages",
                    static_cast<unsigned long long>(batch.size()));
    std::vector<FixedSpillRequest> requests(batch.size());
    for (idx_t i = 0; i < batch.size(); i++) {
      requests[i].buffer = batch[i]->buffer_.get();
    }
    temp_files_.WriteFixedBlocks(requests.data(), requests.size());
    Status first_error;
    for (const auto &request : requests) {
      if (!request.status.ok()) {
        first_error = request.status;
        break;
      }
    }
    if (!first_error.ok()) {
      for (idx_t i = 0; i < batch.size(); i++) {
        if (requests[i].status.ok() && requests[i].slot != kInvalidIndex) {
          temp_files_.FreeFixedSlot(requests[i].slot);
        }
        uint64_t seq = batch[i]->eviction_seq_.fetch_add(
                           1, std::memory_order_relaxed) +
                       1;
        batch[i]->lock_.unlock();
        enqueue(batch[i], seq, /*front=*/false);
      }
      batch.clear();
      return first_error;
    }
    std::unique_ptr<FileBuffer> result;
    for (idx_t i = 0; i < batch.size(); i++) {
      batch[i]->temp_slot_ = requests[i].slot;
      evicted_temporary_count_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global().Add(key_evict_temp_spilled_, 1);
      finalize(*batch[i], result);
      batch[i]->lock_.unlock();
    }
    batch.clear();
    return result;
  };

  while (true) {
    std::shared_ptr<BlockHandle> candidate;
    uint64_t entry_seq = 0;
    {
      ScopedLock guard(queue_lock_);
      // Order in which the queues are drained, per policy. Computed under
      // the queue lock: policy_ may change concurrently (it used to be read
      // unlocked here, racing with SetEvictionPolicy).
      idx_t order[2] = {0, 1};
      if (policy_ == EvictionPolicy::kPersistentFirst) {
        order[0] = 1;
        order[1] = 0;
      }
      for (idx_t qi : order) {
        while (!queues_[qi].empty()) {
          EvictionEntry entry = std::move(queues_[qi].front());
          queues_[qi].pop_front();
          auto handle = entry.handle.lock();
          if (!handle) {
            continue;  // block was dropped entirely
          }
          candidate = std::move(handle);
          entry_seq = entry.seq;
          break;
        }
        if (candidate) {
          break;
        }
      }
    }
    if (!candidate) {
      if (!batch.empty()) {
        // The queues ran dry while gathering a batch; what we have is
        // enough to satisfy the reservation.
        record_selection();
        return flush();
      }
      if (evictions_in_flight_.load(std::memory_order_acquire) > 1) {
        // Another thread's eviction batch holds every remaining candidate
        // locked. That is not out-of-memory: its blocks are either about to
        // free their memory or to be re-enqueued. Back off and let
        // ReserveMemory retry.
        std::this_thread::yield();
        record_selection();
        return std::unique_ptr<FileBuffer>(nullptr);
      }
      oom_rejections_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global().Add(key_oom_rejections_, 1);
      record_selection();
      TraceRecorder::Global().EmitInstant("oom_rejection", "bm");
      SSAGG_LOG_INFO(
          "reservation rejected: memory limit %llu exceeded (%llu used) and "
          "no page can be evicted",
          static_cast<unsigned long long>(
              memory_limit_.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              memory_used_.load(std::memory_order_relaxed)));
      return Status::OutOfMemory(
          "memory limit exceeded and no page can be evicted");
    }
    if (!candidate->lock_.try_lock()) {
      // Someone is pinning or evicting this block; its queue entry will be
      // recreated on the next unpin if needed.
      continue;
    }
    if (candidate->eviction_seq_.load(std::memory_order_relaxed) !=
            entry_seq ||
        candidate->readers_.load(std::memory_order_relaxed) != 0 ||
        candidate->state_ != BlockState::kLoaded || candidate->destroyed_) {
      candidate->lock_.unlock();
      continue;  // stale entry
    }
    BlockKind kind = candidate->kind_;
    idx_t size = candidate->size_;
    if (kind != BlockKind::kPersistent && !candidate->can_destroy_ &&
        !spill_temporary_.load(std::memory_order_relaxed)) {
      // In-memory-only mode: temporary pages cannot be offloaded. Drop the
      // queue entry and keep looking; with nothing else evictable the
      // reservation fails with OutOfMemory (the engine "aborts").
      candidate->lock_.unlock();
      continue;
    }
    if (kind == BlockKind::kTemporaryFixed && !candidate->can_destroy_) {
      // Spillable fixed-size page: gather it (lock stays held) and keep
      // scanning until the batch is full. Depth 1 (the sync default)
      // reproduces the pre-batching one-write-per-eviction schedule.
      batch.push_back(std::move(candidate));
      if (batch.size() >= spill_batch_) {
        record_selection();
        return flush();
      }
      continue;
    }
    // Free-to-drop or variable-size candidate. If a batch is in progress,
    // put the candidate back where it came from (the original seq keeps the
    // entry valid) and satisfy the reservation from the batch instead.
    if (!batch.empty()) {
      candidate->lock_.unlock();
      enqueue(candidate, entry_seq, /*front=*/true);
      record_selection();
      return flush();
    }
    record_selection();
    if (kind == BlockKind::kPersistent) {
      // Contents are replicated in the database file: dropping is free.
      evicted_persistent_count_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global().Add(key_evict_persistent_, 1);
    } else if (candidate->can_destroy_) {
      candidate->destroyed_ = true;
      evicted_temporary_count_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global().Add(key_evict_temp_destroyed_, 1);
    } else {
      SSAGG_DASSERT(kind == BlockKind::kTemporaryVariable);
      SSAGG_LOG_DEBUG("spilling temporary block of %llu bytes",
                      static_cast<unsigned long long>(size));
      Status spill =
          temp_files_.WriteVariableBlock(candidate->id_, *candidate->buffer_);
      if (!spill.ok()) {
        // The block stays loaded and unpinned; re-enqueue it so it remains
        // an eviction candidate for later reservations (its previous queue
        // entry was consumed above). The failed reservation propagates.
        uint64_t seq = candidate->eviction_seq_.fetch_add(
                           1, std::memory_order_relaxed) +
                       1;
        candidate->lock_.unlock();
        enqueue(candidate, seq, /*front=*/false);
        return spill;
      }
      candidate->spilled_to_own_file_ = true;
      evicted_temporary_count_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global().Add(key_evict_temp_spilled_, 1);
    }
    std::unique_ptr<FileBuffer> result;
    finalize(*candidate, result);
    candidate->lock_.unlock();
    return result;
  }
}

Result<std::unique_ptr<FileBuffer>> BufferManager::ReserveMemory(idx_t size) {
  if (FaultInjector *injector =
          fault_injector_.load(std::memory_order_acquire)) {
    SSAGG_RETURN_NOT_OK(injector->Hit(FaultSite::kAllocate));
  }
  while (true) {
    idx_t current = memory_used_.load(std::memory_order_relaxed);
    if (current + size <= memory_limit_.load(std::memory_order_relaxed)) {
      if (memory_used_.compare_exchange_weak(current, current + size,
                                             std::memory_order_relaxed)) {
        return std::unique_ptr<FileBuffer>(nullptr);
      }
      continue;  // lost the race; retry
    }
    // Buffer reuse transfers the evicted block's charge, leaving usage
    // unchanged — only acceptable while usage is within the limit. When the
    // pool is over the limit (it was lowered), evictions must actually free
    // memory so usage converges below it.
    bool allow_reuse =
        current <= memory_limit_.load(std::memory_order_relaxed);
    SSAGG_ASSIGN_OR_RETURN(auto reused, EvictBlocks(allow_reuse ? size : 0));
    if (reused) {
      return reused;  // charge transferred with the buffer
    }
  }
}

Result<BufferHandle> BufferManager::Allocate(
    idx_t size, std::shared_ptr<BlockHandle> *out_handle, bool can_destroy) {
  SSAGG_ASSERT(size > 0);
  BlockKind kind = size == kPageSize ? BlockKind::kTemporaryFixed
                                     : BlockKind::kTemporaryVariable;
  SSAGG_ASSIGN_OR_RETURN(auto buffer, ReserveMemory(size));
  if (!buffer) {
    buffer = std::make_unique<FileBuffer>(size);
  }
  auto handle = std::make_shared<BlockHandle>(
      *this, next_temp_block_id_.fetch_add(1), kind, size, can_destroy,
      nullptr);
  FileBuffer *raw;
  {
    // The handle has not been published yet; the lock is uncontended and
    // taken only to satisfy the capability analysis uniformly.
    ScopedLock lock(handle->lock_);
    handle->buffer_ = std::move(buffer);
    handle->state_ = BlockState::kLoaded;
    handle->readers_.store(1, std::memory_order_relaxed);
    raw = handle->buffer_.get();
  }
  pinned_buffers_.fetch_add(1, std::memory_order_relaxed);
  ChargeLoaded(kind, size);
  if (out_handle) {
    *out_handle = handle;
  }
  return BufferHandle(std::move(handle), raw);
}

std::shared_ptr<BlockHandle> BufferManager::RegisterPersistentBlock(
    FileBlockManager &block_manager, block_id_t block_id) {
  return std::make_shared<BlockHandle>(*this, block_id,
                                       BlockKind::kPersistent, kPageSize,
                                       /*can_destroy=*/false, &block_manager);
}

Result<BufferHandle> BufferManager::Pin(
    const std::shared_ptr<BlockHandle> &handle) {
  if (FaultInjector *injector =
          fault_injector_.load(std::memory_order_acquire)) {
    SSAGG_RETURN_NOT_OK(injector->Hit(FaultSite::kPin));
  }
  ScopedLock lock(handle->lock_);
  if (handle->destroyed_) {
    return Status::Aborted("pin of a destroyed block");
  }
  if (handle->state_ == BlockState::kLoading) {
    // An asynchronous prefetch is reading the block in; wait for it to
    // publish (kLoaded) or fail (kUnloaded + load_error_). The wait is the
    // query-visible cost of that read, so it counts as blocked-on-spill time.
    auto wait_start = std::chrono::steady_clock::now();
    handle->load_cv_.Wait(handle->lock_, [&]() SSAGG_REQUIRES(handle->lock_) {
      return handle->state_ != BlockState::kLoading;
    });
    auto waited_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count());
    load_wait_ns_.fetch_add(waited_ns, std::memory_order_relaxed);
    MetricsRegistry::Global().Record(hist_pin_wait_, waited_ns);
    if (handle->destroyed_) {
      return Status::Aborted("pin of a destroyed block");
    }
  }
  if (!handle->load_error_.ok()) {
    // A failed prefetch left its poison: surface the I/O error exactly once
    // (the block kept its spill state, so a later Pin retries the load).
    Status error = std::move(handle->load_error_);
    handle->load_error_ = Status::OK();
    return error;
  }
  if (handle->state_ == BlockState::kLoaded) {
    handle->readers_.fetch_add(1, std::memory_order_relaxed);
    pinned_buffers_.fetch_add(1, std::memory_order_relaxed);
    // Invalidate any queued eviction entries for this block.
    handle->eviction_seq_.fetch_add(1, std::memory_order_relaxed);
    return BufferHandle(handle, handle->buffer_.get());
  }
  // Block must be loaded from storage; make room first. Deadlock with
  // concurrent pins is avoided because eviction uses try_lock.
  SSAGG_ASSIGN_OR_RETURN(auto buffer, ReserveMemory(handle->size_));
  if (!buffer) {
    buffer = std::make_unique<FileBuffer>(handle->size_);
  }
  Status read_status;
  switch (handle->kind_) {
    case BlockKind::kPersistent:
      read_status = handle->block_manager_->ReadBlock(handle->id_, *buffer);
      break;
    case BlockKind::kTemporaryFixed:
      SSAGG_ASSERT(handle->temp_slot_ != kInvalidIndex);
      read_status = temp_files_.ReadFixedBlock(handle->temp_slot_, *buffer);
      // The slot is only released on success; a failed read keeps the
      // block's spill state so its space is reclaimed when the handle is
      // dropped (no leaked slot, no dangling reference).
      if (read_status.ok()) {
        handle->temp_slot_ = kInvalidIndex;
      }
      break;
    case BlockKind::kTemporaryVariable:
      SSAGG_ASSERT(handle->spilled_to_own_file_);
      read_status = temp_files_.ReadVariableBlock(handle->id_, *buffer);
      if (read_status.ok()) {
        handle->spilled_to_own_file_ = false;
      }
      break;
  }
  if (!read_status.ok()) {
    memory_used_.fetch_sub(handle->size_, std::memory_order_relaxed);
    return read_status;
  }
  handle->buffer_ = std::move(buffer);
  handle->state_ = BlockState::kLoaded;
  handle->readers_.store(1, std::memory_order_relaxed);
  pinned_buffers_.fetch_add(1, std::memory_order_relaxed);
  handle->eviction_seq_.fetch_add(1, std::memory_order_relaxed);
  ChargeLoaded(handle->kind_, handle->size_);
  return BufferHandle(handle, handle->buffer_.get());
}

bool BufferManager::TryReserveForPrefetch(idx_t size) {
  // Speculative reservation: spare headroom only — never evict, never
  // consult the fault injector (a prefetch that cannot get memory is simply
  // skipped, not an error).
  while (true) {
    idx_t current = memory_used_.load(std::memory_order_relaxed);
    if (current + size > memory_limit_.load(std::memory_order_relaxed)) {
      return false;
    }
    if (memory_used_.compare_exchange_weak(current, current + size,
                                           std::memory_order_relaxed)) {
      return true;
    }
  }
}

void BufferManager::Prefetch(const std::shared_ptr<BlockHandle> &handle) {
  if (!prefetch_enabled_) {
    return;
  }
  if (!handle->lock_.try_lock()) {
    return;  // contended → it is being pinned or evicted right now anyway
  }
  FileBuffer *raw = nullptr;
  idx_t slot = kInvalidIndex;
  {
    ScopedLock lock(handle->lock_, std::adopt_lock);
    if (handle->destroyed_ || handle->kind_ != BlockKind::kTemporaryFixed ||
        handle->state_ != BlockState::kUnloaded ||
        handle->temp_slot_ == kInvalidIndex || !handle->load_error_.ok()) {
      return;  // not a spilled fixed page (or carrying unsurfaced poison)
    }
    if (!TryReserveForPrefetch(handle->size_)) {
      return;  // memory is tight; the eventual Pin will evict as usual
    }
    handle->buffer_ = std::make_unique<FileBuffer>(handle->size_);
    handle->state_ = BlockState::kLoading;
    raw = handle->buffer_.get();
    slot = handle->temp_slot_;
  }
  // Submit *outside* the block lock: a sync-completing backend runs
  // FinishPrefetch inline on this thread, which re-takes the lock.
  prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
  temp_files_.SubmitReadFixedBlock(
      slot, *raw,
      [this, handle](const Status &status) { FinishPrefetch(handle, status); });
}

void BufferManager::FinishPrefetch(const std::shared_ptr<BlockHandle> &handle,
                                   const Status &status) {
  bool loaded = false;
  {
    ScopedLock lock(handle->lock_);
    SSAGG_DASSERT(handle->state_ == BlockState::kLoading);
    if (status.ok()) {
      // The temporary-file manager released the slot with the read.
      handle->temp_slot_ = kInvalidIndex;
      if (handle->destroyed_) {
        // Destroyed mid-flight: drop the freshly loaded contents.
        handle->buffer_.reset();
        handle->state_ = BlockState::kUnloaded;
        memory_used_.fetch_sub(handle->size_, std::memory_order_relaxed);
      } else {
        handle->state_ = BlockState::kLoaded;
        handle->eviction_seq_.fetch_add(1, std::memory_order_relaxed);
        ChargeLoaded(handle->kind_, handle->size_);
        loaded = true;
        // The block is unpinned, so it is immediately an eviction candidate
        // again (LRU-freshest: it was just read back on purpose).
        uint64_t seq =
            handle->eviction_seq_.load(std::memory_order_relaxed);
        ScopedLock guard(queue_lock_);
        queues_[QueueIndexLocked(handle->kind_)].push_back(
            EvictionEntry{handle->weak_from_this(), seq});
      }
    } else {
      // Failed read keeps the slot (spill state stays reclaimable). Poison
      // the block so the next Pin surfaces the error; if it was destroyed
      // mid-flight nobody will pin again, so release the slot here.
      handle->buffer_.reset();
      handle->state_ = BlockState::kUnloaded;
      memory_used_.fetch_sub(handle->size_, std::memory_order_relaxed);
      if (handle->destroyed_) {
        if (handle->temp_slot_ != kInvalidIndex) {
          temp_files_.FreeFixedSlot(handle->temp_slot_);
          handle->temp_slot_ = kInvalidIndex;
        }
      } else {
        handle->load_error_ = status;
      }
    }
  }
  handle->load_cv_.NotifyAll();
  if (loaded) {
    prefetch_completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void BufferManager::Unpin(BlockHandle &block) {
  ScopedLock lock(block.lock_);
  int32_t readers = block.readers_.fetch_sub(1, std::memory_order_relaxed) - 1;
  pinned_buffers_.fetch_sub(1, std::memory_order_relaxed);
  SSAGG_DASSERT(readers >= 0);
  if (readers != 0 || block.state_ != BlockState::kLoaded) {
    return;
  }
  if (block.destroyed_) {
    // DestroyBlock was called while pins were outstanding; free now.
    block.buffer_.reset();
    block.state_ = BlockState::kUnloaded;
    DischargeLoaded(block.kind_, block.size_);
    memory_used_.fetch_sub(block.size_, std::memory_order_relaxed);
    return;
  }
  // Becomes an eviction candidate.
  uint64_t seq =
      block.eviction_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  ScopedLock guard(queue_lock_);
  // weak_from_this is never expired here: the caller (BufferHandle) still
  // holds a shared_ptr.
  queues_[QueueIndexLocked(block.kind_)].push_back(
      EvictionEntry{block.weak_from_this(), seq});
}

void BufferManager::DestroyBlock(const std::shared_ptr<BlockHandle> &handle) {
  ScopedLock lock(handle->lock_);
  if (handle->destroyed_) {
    return;
  }
  if (handle->state_ == BlockState::kLoading) {
    // Wait out the in-flight prefetch before destroying so the no-leak
    // invariant (no charge, no slot) holds the moment the owner is gone —
    // not at some later completion. Rare: only a destroy that races a
    // prefetch of the same block gets here.
    handle->load_cv_.Wait(handle->lock_, [&]() SSAGG_REQUIRES(handle->lock_) {
      return handle->state_ != BlockState::kLoading;
    });
  }
  handle->destroyed_ = true;
  if (handle->state_ == BlockState::kLoaded) {
    if (handle->readers_.load(std::memory_order_relaxed) == 0) {
      handle->buffer_.reset();
      handle->state_ = BlockState::kUnloaded;
      DischargeLoaded(handle->kind_, handle->size_);
      memory_used_.fetch_sub(handle->size_, std::memory_order_relaxed);
    }
    // else: freed by the final Unpin.
    return;
  }
  // Spilled: release temporary-file space.
  if (handle->temp_slot_ != kInvalidIndex) {
    temp_files_.FreeFixedSlot(handle->temp_slot_);
    handle->temp_slot_ = kInvalidIndex;
  }
  if (handle->spilled_to_own_file_) {
    temp_files_.FreeVariableBlock(handle->id_);
    handle->spilled_to_own_file_ = false;
  }
}

void BufferManager::CleanupDroppedBlock(BlockHandle &block) {
  // Destructor context: the last shared_ptr is gone and eviction's weak_ptrs
  // can no longer be upgraded, so the lock is uncontended; taken anyway to
  // keep the capability analysis free of escapes.
  ScopedLock lock(block.lock_);
  if (block.destroyed_) {
    return;
  }
  if (block.state_ == BlockState::kLoaded) {
    block.buffer_.reset();
    DischargeLoaded(block.kind_, block.size_);
    memory_used_.fetch_sub(block.size_, std::memory_order_relaxed);
    return;
  }
  if (block.temp_slot_ != kInvalidIndex) {
    temp_files_.FreeFixedSlot(block.temp_slot_);
  }
  if (block.spilled_to_own_file_) {
    temp_files_.FreeVariableBlock(block.id_);
  }
}

Result<NonPagedAllocation> BufferManager::AllocateNonPaged(idx_t size) {
  SSAGG_ASSIGN_OR_RETURN(auto reused, ReserveMemory(size));
  reused.reset();  // a page buffer cannot back a non-paged allocation
  data_ptr_t data = new data_t[size];
  non_paged_bytes_.fetch_add(size, std::memory_order_relaxed);
  return NonPagedAllocation(this, data, size);
}

void BufferManager::FreeNonPaged(idx_t size) {
  non_paged_bytes_.fetch_sub(size, std::memory_order_relaxed);
  memory_used_.fetch_sub(size, std::memory_order_relaxed);
}

Status BufferManager::ReserveExternalMemory(idx_t size) {
  SSAGG_ASSIGN_OR_RETURN(auto reused, ReserveMemory(size));
  // An evicted buffer cannot back an external allocation; release the
  // physical memory but keep the charge (it now accounts for the caller's
  // allocation).
  reused.reset();
  return Status::OK();
}

void BufferManager::FreeExternalMemory(idx_t size) {
  memory_used_.fetch_sub(size, std::memory_order_relaxed);
}

BufferManagerSnapshot BufferManager::Snapshot() const {
  BufferManagerSnapshot snap;
  snap.memory_used = memory_used_.load(std::memory_order_relaxed);
  snap.memory_limit = memory_limit_.load(std::memory_order_relaxed);
  snap.persistent_bytes_in_memory =
      persistent_loaded_bytes_.load(std::memory_order_relaxed);
  snap.temporary_bytes_in_memory =
      temporary_loaded_bytes_.load(std::memory_order_relaxed);
  snap.non_paged_bytes = non_paged_bytes_.load(std::memory_order_relaxed);
  snap.temp_file_size = temp_files_.CurrentSize();
  snap.temp_file_peak = temp_files_.PeakSize();
  snap.evicted_persistent_count =
      evicted_persistent_count_.load(std::memory_order_relaxed);
  snap.evicted_temporary_count =
      evicted_temporary_count_.load(std::memory_order_relaxed);
  snap.reused_buffers = reused_buffers_.load(std::memory_order_relaxed);
  snap.temp_writes = temp_files_.WriteCount();
  snap.temp_reads = temp_files_.ReadCount();
  snap.spill_bytes_written = temp_files_.BytesWritten();
  snap.spill_bytes_read = temp_files_.BytesRead();
  snap.spill_raw_bytes = temp_files_.RawBytesWritten();
  snap.spill_coalesced_writes = temp_files_.CoalescedWrites();
  snap.spill_coalesced_pages = temp_files_.CoalescedPages();
  snap.prefetch_issued = prefetch_issued_.load(std::memory_order_relaxed);
  snap.prefetch_completed =
      prefetch_completed_.load(std::memory_order_relaxed);
  snap.spill_write_seconds = temp_files_.WriteSeconds();
  snap.spill_read_seconds =
      temp_files_.ReadSeconds() +
      static_cast<double>(load_wait_ns_.load(std::memory_order_relaxed)) *
          1e-9;
  snap.spill_slot_reuses = temp_files_.SlotReuses();
  snap.spill_variable_files = temp_files_.VariableFilesCreated();
  snap.oom_rejections = oom_rejections_.load(std::memory_order_relaxed);
  snap.pinned_buffers = PinnedBufferCount();
  return snap;
}

}  // namespace ssagg
