#include "buffer/buffer_manager.h"

#include <cstring>

#include "observe/log.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "testing/fault_injector.h"

namespace ssagg {

//===----------------------------------------------------------------------===//
// BlockHandle / BufferHandle
//===----------------------------------------------------------------------===//

BlockHandle::~BlockHandle() {
  // The last shared_ptr is gone, so no pins can be outstanding; release any
  // memory or temporary-file space still held.
  manager_.CleanupDroppedBlock(*this);
}

void BufferHandle::Reset() {
  if (handle_) {
    handle_->manager_.Unpin(*handle_);
    handle_.reset();
  }
  buffer_ = nullptr;
}

//===----------------------------------------------------------------------===//
// NonPagedAllocation
//===----------------------------------------------------------------------===//

NonPagedAllocation &NonPagedAllocation::operator=(
    NonPagedAllocation &&other) noexcept {
  if (this != &other) {
    Reset();
    manager_ = other.manager_;
    data_ = other.data_;
    size_ = other.size_;
    other.manager_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void NonPagedAllocation::Reset() {
  if (data_ != nullptr) {
    delete[] data_;
    manager_->FreeNonPaged(size_);
    data_ = nullptr;
    manager_ = nullptr;
    size_ = 0;
  }
}

//===----------------------------------------------------------------------===//
// BufferManager
//===----------------------------------------------------------------------===//

BufferManager::BufferManager(std::string temp_directory, idx_t memory_limit,
                             EvictionPolicy policy, FileSystem &fs)
    : temp_directory_(std::move(temp_directory)),
      fs_(fs),
      memory_limit_(memory_limit),
      temp_files_(temp_directory_, fs),
      policy_(policy) {
  MetricsRegistry &registry = MetricsRegistry::Global();
  key_evict_persistent_ = registry.KeyId("bm.evictions_persistent");
  key_evict_temp_spilled_ = registry.KeyId("bm.evictions_temporary_spilled");
  key_evict_temp_destroyed_ =
      registry.KeyId("bm.evictions_temporary_destroyed");
  key_buffer_reuse_ = registry.KeyId("bm.buffer_reuse_hits");
  key_oom_rejections_ = registry.KeyId("bm.oom_rejections");
}

BufferManager::~BufferManager() = default;

idx_t BufferManager::QueueIndexLocked(BlockKind kind) const {
  if (policy_ == EvictionPolicy::kMixed) {
    return 0;
  }
  return kind == BlockKind::kPersistent ? 1 : 0;
}

EvictionPolicy BufferManager::policy() const {
  ScopedLock guard(queue_lock_);
  return policy_;
}

void BufferManager::SetEvictionPolicy(EvictionPolicy policy) {
  ScopedLock guard(queue_lock_);
  // Redistribute existing entries according to the new policy's queue
  // mapping. Stale entries are carried along; they are skipped lazily.
  std::deque<EvictionEntry> all;
  for (auto &queue : queues_) {
    for (auto &entry : queue) {
      all.push_back(std::move(entry));
    }
    queue.clear();
  }
  policy_ = policy;
  for (auto &entry : all) {
    auto handle = entry.handle.lock();
    if (!handle) {
      continue;
    }
    queues_[QueueIndexLocked(handle->kind())].push_back(std::move(entry));
  }
}

void BufferManager::ChargeLoaded(BlockKind kind, idx_t size) {
  if (kind == BlockKind::kPersistent) {
    persistent_loaded_bytes_.fetch_add(size, std::memory_order_relaxed);
  } else {
    temporary_loaded_bytes_.fetch_add(size, std::memory_order_relaxed);
  }
}

void BufferManager::DischargeLoaded(BlockKind kind, idx_t size) {
  if (kind == BlockKind::kPersistent) {
    persistent_loaded_bytes_.fetch_sub(size, std::memory_order_relaxed);
  } else {
    temporary_loaded_bytes_.fetch_sub(size, std::memory_order_relaxed);
  }
}

Status BufferManager::SpillBlock(BlockHandle &block) {
  SSAGG_DASSERT(block.state_ == BlockState::kLoaded);
  SSAGG_DASSERT(!block.can_destroy_);
  if (block.kind_ == BlockKind::kTemporaryFixed) {
    SSAGG_ASSIGN_OR_RETURN(block.temp_slot_,
                           temp_files_.WriteFixedBlock(*block.buffer_));
  } else {
    SSAGG_DASSERT(block.kind_ == BlockKind::kTemporaryVariable);
    SSAGG_RETURN_NOT_OK(
        temp_files_.WriteVariableBlock(block.id_, *block.buffer_));
    block.spilled_to_own_file_ = true;
  }
  return Status::OK();
}

Result<std::unique_ptr<FileBuffer>> BufferManager::EvictOneBlock(
    idx_t reuse_size) {
  while (true) {
    std::shared_ptr<BlockHandle> candidate;
    uint64_t entry_seq = 0;
    {
      ScopedLock guard(queue_lock_);
      // Order in which the queues are drained, per policy. Computed under
      // the queue lock: policy_ may change concurrently (it used to be read
      // unlocked here, racing with SetEvictionPolicy).
      idx_t order[2] = {0, 1};
      if (policy_ == EvictionPolicy::kPersistentFirst) {
        order[0] = 1;
        order[1] = 0;
      }
      for (idx_t qi : order) {
        while (!queues_[qi].empty()) {
          EvictionEntry entry = std::move(queues_[qi].front());
          queues_[qi].pop_front();
          auto handle = entry.handle.lock();
          if (!handle) {
            continue;  // block was dropped entirely
          }
          candidate = std::move(handle);
          entry_seq = entry.seq;
          break;
        }
        if (candidate) {
          break;
        }
      }
    }
    if (!candidate) {
      oom_rejections_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global().Add(key_oom_rejections_, 1);
      TraceRecorder::Global().EmitInstant("oom_rejection", "bm");
      SSAGG_LOG_INFO(
          "reservation rejected: memory limit %llu exceeded (%llu used) and "
          "no page can be evicted",
          static_cast<unsigned long long>(
              memory_limit_.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(
              memory_used_.load(std::memory_order_relaxed)));
      return Status::OutOfMemory(
          "memory limit exceeded and no page can be evicted");
    }
    if (!candidate->lock_.try_lock()) {
      // Someone is pinning or evicting this block; its queue entry will be
      // recreated on the next unpin if needed.
      continue;
    }
    ScopedLock block_lock(candidate->lock_, std::adopt_lock);
    if (candidate->eviction_seq_.load(std::memory_order_relaxed) !=
            entry_seq ||
        candidate->readers_.load(std::memory_order_relaxed) != 0 ||
        candidate->state_ != BlockState::kLoaded || candidate->destroyed_) {
      continue;  // stale entry
    }
    // Found an evictable block.
    BlockKind kind = candidate->kind_;
    idx_t size = candidate->size_;
    if (kind != BlockKind::kPersistent && !candidate->can_destroy_ &&
        !spill_temporary_.load(std::memory_order_relaxed)) {
      // In-memory-only mode: temporary pages cannot be offloaded. Drop the
      // queue entry and keep looking; with nothing else evictable the
      // reservation fails with OutOfMemory (the engine "aborts").
      continue;
    }
    if (kind == BlockKind::kPersistent) {
      // Contents are replicated in the database file: dropping is free.
      evicted_persistent_count_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global().Add(key_evict_persistent_, 1);
    } else if (candidate->can_destroy_) {
      candidate->destroyed_ = true;
      evicted_temporary_count_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global().Add(key_evict_temp_destroyed_, 1);
    } else {
      SSAGG_LOG_DEBUG("spilling temporary block of %llu bytes",
                      static_cast<unsigned long long>(size));
      Status spill = SpillBlock(*candidate);
      if (!spill.ok()) {
        // The block stays loaded and unpinned; re-enqueue it so it remains
        // an eviction candidate for later reservations (its previous queue
        // entry was consumed above). The failed reservation propagates.
        uint64_t seq =
            candidate->eviction_seq_.fetch_add(1, std::memory_order_relaxed) +
            1;
        ScopedLock guard(queue_lock_);
        queues_[QueueIndexLocked(candidate->kind_)].push_back(
            EvictionEntry{candidate->weak_from_this(), seq});
        return spill;
      }
      evicted_temporary_count_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global().Add(key_evict_temp_spilled_, 1);
    }
    std::unique_ptr<FileBuffer> buffer = std::move(candidate->buffer_);
    candidate->state_ = BlockState::kUnloaded;
    DischargeLoaded(kind, size);
    if (buffer->size() == reuse_size) {
      // Hand the buffer to the new allocation; its memory charge transfers.
      reused_buffers_.fetch_add(1, std::memory_order_relaxed);
      MetricsRegistry::Global().Add(key_buffer_reuse_, 1);
      return buffer;
    }
    buffer.reset();
    memory_used_.fetch_sub(size, std::memory_order_relaxed);
    return std::unique_ptr<FileBuffer>(nullptr);
  }
}

Result<std::unique_ptr<FileBuffer>> BufferManager::ReserveMemory(idx_t size) {
  if (FaultInjector *injector =
          fault_injector_.load(std::memory_order_acquire)) {
    SSAGG_RETURN_NOT_OK(injector->Hit(FaultSite::kAllocate));
  }
  while (true) {
    idx_t current = memory_used_.load(std::memory_order_relaxed);
    if (current + size <= memory_limit_.load(std::memory_order_relaxed)) {
      if (memory_used_.compare_exchange_weak(current, current + size,
                                             std::memory_order_relaxed)) {
        return std::unique_ptr<FileBuffer>(nullptr);
      }
      continue;  // lost the race; retry
    }
    // Buffer reuse transfers the evicted block's charge, leaving usage
    // unchanged — only acceptable while usage is within the limit. When the
    // pool is over the limit (it was lowered), evictions must actually free
    // memory so usage converges below it.
    bool allow_reuse =
        current <= memory_limit_.load(std::memory_order_relaxed);
    SSAGG_ASSIGN_OR_RETURN(auto reused, EvictOneBlock(allow_reuse ? size : 0));
    if (reused) {
      return reused;  // charge transferred with the buffer
    }
  }
}

Result<BufferHandle> BufferManager::Allocate(
    idx_t size, std::shared_ptr<BlockHandle> *out_handle, bool can_destroy) {
  SSAGG_ASSERT(size > 0);
  BlockKind kind = size == kPageSize ? BlockKind::kTemporaryFixed
                                     : BlockKind::kTemporaryVariable;
  SSAGG_ASSIGN_OR_RETURN(auto buffer, ReserveMemory(size));
  if (!buffer) {
    buffer = std::make_unique<FileBuffer>(size);
  }
  auto handle = std::make_shared<BlockHandle>(
      *this, next_temp_block_id_.fetch_add(1), kind, size, can_destroy,
      nullptr);
  FileBuffer *raw;
  {
    // The handle has not been published yet; the lock is uncontended and
    // taken only to satisfy the capability analysis uniformly.
    ScopedLock lock(handle->lock_);
    handle->buffer_ = std::move(buffer);
    handle->state_ = BlockState::kLoaded;
    handle->readers_.store(1, std::memory_order_relaxed);
    raw = handle->buffer_.get();
  }
  pinned_buffers_.fetch_add(1, std::memory_order_relaxed);
  ChargeLoaded(kind, size);
  if (out_handle) {
    *out_handle = handle;
  }
  return BufferHandle(std::move(handle), raw);
}

std::shared_ptr<BlockHandle> BufferManager::RegisterPersistentBlock(
    FileBlockManager &block_manager, block_id_t block_id) {
  return std::make_shared<BlockHandle>(*this, block_id,
                                       BlockKind::kPersistent, kPageSize,
                                       /*can_destroy=*/false, &block_manager);
}

Result<BufferHandle> BufferManager::Pin(
    const std::shared_ptr<BlockHandle> &handle) {
  if (FaultInjector *injector =
          fault_injector_.load(std::memory_order_acquire)) {
    SSAGG_RETURN_NOT_OK(injector->Hit(FaultSite::kPin));
  }
  ScopedLock lock(handle->lock_);
  if (handle->destroyed_) {
    return Status::Aborted("pin of a destroyed block");
  }
  if (handle->state_ == BlockState::kLoaded) {
    handle->readers_.fetch_add(1, std::memory_order_relaxed);
    pinned_buffers_.fetch_add(1, std::memory_order_relaxed);
    // Invalidate any queued eviction entries for this block.
    handle->eviction_seq_.fetch_add(1, std::memory_order_relaxed);
    return BufferHandle(handle, handle->buffer_.get());
  }
  // Block must be loaded from storage; make room first. Deadlock with
  // concurrent pins is avoided because eviction uses try_lock.
  SSAGG_ASSIGN_OR_RETURN(auto buffer, ReserveMemory(handle->size_));
  if (!buffer) {
    buffer = std::make_unique<FileBuffer>(handle->size_);
  }
  Status read_status;
  switch (handle->kind_) {
    case BlockKind::kPersistent:
      read_status = handle->block_manager_->ReadBlock(handle->id_, *buffer);
      break;
    case BlockKind::kTemporaryFixed:
      SSAGG_ASSERT(handle->temp_slot_ != kInvalidIndex);
      read_status = temp_files_.ReadFixedBlock(handle->temp_slot_, *buffer);
      // The slot is only released on success; a failed read keeps the
      // block's spill state so its space is reclaimed when the handle is
      // dropped (no leaked slot, no dangling reference).
      if (read_status.ok()) {
        handle->temp_slot_ = kInvalidIndex;
      }
      break;
    case BlockKind::kTemporaryVariable:
      SSAGG_ASSERT(handle->spilled_to_own_file_);
      read_status = temp_files_.ReadVariableBlock(handle->id_, *buffer);
      if (read_status.ok()) {
        handle->spilled_to_own_file_ = false;
      }
      break;
  }
  if (!read_status.ok()) {
    memory_used_.fetch_sub(handle->size_, std::memory_order_relaxed);
    return read_status;
  }
  handle->buffer_ = std::move(buffer);
  handle->state_ = BlockState::kLoaded;
  handle->readers_.store(1, std::memory_order_relaxed);
  pinned_buffers_.fetch_add(1, std::memory_order_relaxed);
  handle->eviction_seq_.fetch_add(1, std::memory_order_relaxed);
  ChargeLoaded(handle->kind_, handle->size_);
  return BufferHandle(handle, handle->buffer_.get());
}

void BufferManager::Unpin(BlockHandle &block) {
  ScopedLock lock(block.lock_);
  int32_t readers = block.readers_.fetch_sub(1, std::memory_order_relaxed) - 1;
  pinned_buffers_.fetch_sub(1, std::memory_order_relaxed);
  SSAGG_DASSERT(readers >= 0);
  if (readers != 0 || block.state_ != BlockState::kLoaded) {
    return;
  }
  if (block.destroyed_) {
    // DestroyBlock was called while pins were outstanding; free now.
    block.buffer_.reset();
    block.state_ = BlockState::kUnloaded;
    DischargeLoaded(block.kind_, block.size_);
    memory_used_.fetch_sub(block.size_, std::memory_order_relaxed);
    return;
  }
  // Becomes an eviction candidate.
  uint64_t seq =
      block.eviction_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  ScopedLock guard(queue_lock_);
  // weak_from_this is never expired here: the caller (BufferHandle) still
  // holds a shared_ptr.
  queues_[QueueIndexLocked(block.kind_)].push_back(
      EvictionEntry{block.weak_from_this(), seq});
}

void BufferManager::DestroyBlock(const std::shared_ptr<BlockHandle> &handle) {
  ScopedLock lock(handle->lock_);
  if (handle->destroyed_) {
    return;
  }
  handle->destroyed_ = true;
  if (handle->state_ == BlockState::kLoaded) {
    if (handle->readers_.load(std::memory_order_relaxed) == 0) {
      handle->buffer_.reset();
      handle->state_ = BlockState::kUnloaded;
      DischargeLoaded(handle->kind_, handle->size_);
      memory_used_.fetch_sub(handle->size_, std::memory_order_relaxed);
    }
    // else: freed by the final Unpin.
    return;
  }
  // Spilled: release temporary-file space.
  if (handle->temp_slot_ != kInvalidIndex) {
    temp_files_.FreeFixedSlot(handle->temp_slot_);
    handle->temp_slot_ = kInvalidIndex;
  }
  if (handle->spilled_to_own_file_) {
    temp_files_.FreeVariableBlock(handle->id_);
    handle->spilled_to_own_file_ = false;
  }
}

void BufferManager::CleanupDroppedBlock(BlockHandle &block) {
  // Destructor context: the last shared_ptr is gone and eviction's weak_ptrs
  // can no longer be upgraded, so the lock is uncontended; taken anyway to
  // keep the capability analysis free of escapes.
  ScopedLock lock(block.lock_);
  if (block.destroyed_) {
    return;
  }
  if (block.state_ == BlockState::kLoaded) {
    block.buffer_.reset();
    DischargeLoaded(block.kind_, block.size_);
    memory_used_.fetch_sub(block.size_, std::memory_order_relaxed);
    return;
  }
  if (block.temp_slot_ != kInvalidIndex) {
    temp_files_.FreeFixedSlot(block.temp_slot_);
  }
  if (block.spilled_to_own_file_) {
    temp_files_.FreeVariableBlock(block.id_);
  }
}

Result<NonPagedAllocation> BufferManager::AllocateNonPaged(idx_t size) {
  SSAGG_ASSIGN_OR_RETURN(auto reused, ReserveMemory(size));
  reused.reset();  // a page buffer cannot back a non-paged allocation
  data_ptr_t data = new data_t[size];
  non_paged_bytes_.fetch_add(size, std::memory_order_relaxed);
  return NonPagedAllocation(this, data, size);
}

void BufferManager::FreeNonPaged(idx_t size) {
  non_paged_bytes_.fetch_sub(size, std::memory_order_relaxed);
  memory_used_.fetch_sub(size, std::memory_order_relaxed);
}

Status BufferManager::ReserveExternalMemory(idx_t size) {
  SSAGG_ASSIGN_OR_RETURN(auto reused, ReserveMemory(size));
  // An evicted buffer cannot back an external allocation; release the
  // physical memory but keep the charge (it now accounts for the caller's
  // allocation).
  reused.reset();
  return Status::OK();
}

void BufferManager::FreeExternalMemory(idx_t size) {
  memory_used_.fetch_sub(size, std::memory_order_relaxed);
}

BufferManagerSnapshot BufferManager::Snapshot() const {
  BufferManagerSnapshot snap;
  snap.memory_used = memory_used_.load(std::memory_order_relaxed);
  snap.memory_limit = memory_limit_.load(std::memory_order_relaxed);
  snap.persistent_bytes_in_memory =
      persistent_loaded_bytes_.load(std::memory_order_relaxed);
  snap.temporary_bytes_in_memory =
      temporary_loaded_bytes_.load(std::memory_order_relaxed);
  snap.non_paged_bytes = non_paged_bytes_.load(std::memory_order_relaxed);
  snap.temp_file_size = temp_files_.CurrentSize();
  snap.temp_file_peak = temp_files_.PeakSize();
  snap.evicted_persistent_count =
      evicted_persistent_count_.load(std::memory_order_relaxed);
  snap.evicted_temporary_count =
      evicted_temporary_count_.load(std::memory_order_relaxed);
  snap.reused_buffers = reused_buffers_.load(std::memory_order_relaxed);
  snap.temp_writes = temp_files_.WriteCount();
  snap.temp_reads = temp_files_.ReadCount();
  snap.spill_bytes_written = temp_files_.BytesWritten();
  snap.spill_bytes_read = temp_files_.BytesRead();
  snap.spill_write_seconds = temp_files_.WriteSeconds();
  snap.spill_read_seconds = temp_files_.ReadSeconds();
  snap.spill_slot_reuses = temp_files_.SlotReuses();
  snap.spill_variable_files = temp_files_.VariableFilesCreated();
  snap.oom_rejections = oom_rejections_.load(std::memory_order_relaxed);
  snap.pinned_buffers = PinnedBufferCount();
  return snap;
}

}  // namespace ssagg
