#ifndef SSAGG_BUFFER_BUFFER_HANDLE_H_
#define SSAGG_BUFFER_BUFFER_HANDLE_H_

#include <memory>
#include <utility>

#include "buffer/block_handle.h"
#include "common/constants.h"

namespace ssagg {

/// RAII pin on a block: while a BufferHandle is alive the block's buffer is
/// guaranteed to stay in memory at a stable address. Destruction unpins the
/// block, making it a candidate for eviction again.
class BufferHandle {
 public:
  BufferHandle() = default;
  BufferHandle(std::shared_ptr<BlockHandle> handle, FileBuffer *buffer)
      : handle_(std::move(handle)), buffer_(buffer) {}

  ~BufferHandle() { Reset(); }

  BufferHandle(const BufferHandle &) = delete;
  BufferHandle &operator=(const BufferHandle &) = delete;

  BufferHandle(BufferHandle &&other) noexcept { *this = std::move(other); }
  BufferHandle &operator=(BufferHandle &&other) noexcept {
    if (this != &other) {
      Reset();
      handle_ = std::move(other.handle_);
      buffer_ = other.buffer_;
      other.buffer_ = nullptr;
    }
    return *this;
  }

  [[nodiscard]] bool IsValid() const { return buffer_ != nullptr; }

  [[nodiscard]] data_ptr_t Ptr() {
    SSAGG_DASSERT(IsValid());
    return buffer_->data();
  }
  [[nodiscard]] const_data_ptr_t Ptr() const {
    SSAGG_DASSERT(IsValid());
    return buffer_->data();
  }

  const std::shared_ptr<BlockHandle> &block() const { return handle_; }

  /// Explicitly unpin early.
  void Reset();

 private:
  std::shared_ptr<BlockHandle> handle_;
  FileBuffer *buffer_ = nullptr;
};

}  // namespace ssagg

#endif  // SSAGG_BUFFER_BUFFER_HANDLE_H_
