#ifndef SSAGG_BUFFER_FILE_BUFFER_H_
#define SSAGG_BUFFER_FILE_BUFFER_H_

#include <cstdlib>
#include <memory>

#include "common/constants.h"
#include "common/status.h"

namespace ssagg {

/// An aligned in-memory buffer that backs one page. Buffers for fixed-size
/// pages are all kPageSize bytes, which lets the buffer pool hand an evicted
/// buffer straight to the next same-size allocation ("buffer reuse",
/// Section III).
class FileBuffer {
 public:
  explicit FileBuffer(idx_t size) : size_(size) {
    void *ptr = nullptr;
    if (posix_memalign(&ptr, kPageAlignment, size) != 0) {
      ptr = nullptr;
    }
    SSAGG_ASSERT(ptr != nullptr);
    data_ = static_cast<data_ptr_t>(ptr);
  }

  ~FileBuffer() { std::free(data_); }

  FileBuffer(const FileBuffer &) = delete;
  FileBuffer &operator=(const FileBuffer &) = delete;

  data_ptr_t data() { return data_; }
  const_data_ptr_t data() const { return data_; }
  idx_t size() const { return size_; }

 private:
  data_ptr_t data_;
  idx_t size_;
};

}  // namespace ssagg

#endif  // SSAGG_BUFFER_FILE_BUFFER_H_
