#ifndef SSAGG_BUFFER_TEMPORARY_FILE_MANAGER_H_
#define SSAGG_BUFFER_TEMPORARY_FILE_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "buffer/file_buffer.h"
#include "common/async_io.h"
#include "common/file_system.h"
#include "common/mutex.h"
#include "common/status.h"
#include "observe/metrics.h"

namespace ssagg {

/// One page of a batched fixed-size spill (TemporaryFileManager::
/// WriteFixedBlocks). `buffer` is the caller's; `slot` and `status` are
/// filled per entry: a failed entry has released its slot.
struct FixedSpillRequest {
  const FileBuffer *buffer = nullptr;
  idx_t slot = kInvalidIndex;
  Status status;
};

/// Manages spilled temporary data in storage (Section III, "Temporary
/// Data"):
///   - fixed-size pages (kPageSize) go to slots of one shared temporary
///     file; slots are recycled through a free list so the file does not
///     grow past the high-water mark of simultaneously spilled pages;
///   - variable-size pages each go to their own temporary file.
/// The temporary files are completely separate from the database file.
///
/// All I/O is routed through an AsyncIoBackend: batched spills overlap
/// their writes, adjacent slots are coalesced into single submissions, and
/// (optionally) pages are compressed into self-describing spill frames
/// (compression/codec.h) before hitting storage.
class TemporaryFileManager {
 public:
  explicit TemporaryFileManager(std::string directory,
                                FileSystem &fs = FileSystem::Default(),
                                AsyncIoBackend *io_backend = nullptr,
                                bool spill_compression = false);
  ~TemporaryFileManager();

  TemporaryFileManager(const TemporaryFileManager &) = delete;
  TemporaryFileManager &operator=(const TemporaryFileManager &) = delete;

  /// Writes a fixed-size page; returns the slot it occupies.
  Result<idx_t> WriteFixedBlock(const FileBuffer &buffer);
  /// Writes a batch of fixed-size pages, overlapping the I/O through the
  /// async backend and coalescing writes to adjacent slots (only when
  /// compression is off: compressed frames are variable-length and leave
  /// gaps a merged write would have to fill). Returns once every entry has
  /// completed; per-entry results are in the requests.
  void WriteFixedBlocks(FixedSpillRequest *requests, idx_t count);
  /// Reads a fixed-size page back and releases its slot (a reloaded page is
  /// eagerly removed from the temporary file; if it is evicted again it is
  /// simply rewritten).
  Status ReadFixedBlock(idx_t slot, FileBuffer &buffer);
  /// Asynchronously reads a fixed-size page back. `done` runs on the
  /// completing thread exactly once; on success the slot has been released
  /// and the buffer holds the (decompressed) page. Used by BufferManager
  /// prefetch.
  void SubmitReadFixedBlock(idx_t slot, FileBuffer &buffer,
                            std::function<void(const Status &)> done);
  /// Releases a slot without reading (block was destroyed while spilled).
  void FreeFixedSlot(idx_t slot);

  /// Writes a variable-size block to its own file keyed by block id.
  Status WriteVariableBlock(block_id_t id, const FileBuffer &buffer);
  /// Reads a variable-size block back and deletes its file.
  Status ReadVariableBlock(block_id_t id, FileBuffer &buffer);
  /// Deletes the file of a destroyed variable-size block.
  void FreeVariableBlock(block_id_t id);

  /// Bytes currently occupied in temporary storage (both kinds, physical —
  /// compressed pages count their stored size).
  [[nodiscard]] idx_t CurrentSize() const;
  /// Highest CurrentSize observed.
  [[nodiscard]] idx_t PeakSize() const;
  /// Fixed-file slots currently holding a spilled page. Zero when no query
  /// state is alive — the no-leak invariant the fault suite asserts.
  [[nodiscard]] idx_t UsedSlots() const;
  /// Live variable-size temporary files (same invariant).
  [[nodiscard]] idx_t VariableBlockCount() const;
  [[nodiscard]] idx_t WriteCount() const;
  [[nodiscard]] idx_t ReadCount() const;

  /// I/O accounting — the observability layer's ground truth for spill
  /// volume. BytesWritten/BytesRead are physical bytes on storage (after
  /// compression); RawBytesWritten is the logical pre-compression volume,
  /// so RawBytesWritten / BytesWritten is the spill compression ratio.
  [[nodiscard]] idx_t BytesWritten() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] idx_t BytesRead() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] idx_t RawBytesWritten() const {
    return raw_bytes_written_.load(std::memory_order_relaxed);
  }
  /// Merged submissions that covered more than one adjacent slot, and the
  /// pages they carried.
  [[nodiscard]] idx_t CoalescedWrites() const {
    return coalesced_writes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] idx_t CoalescedPages() const {
    return coalesced_pages_.load(std::memory_order_relaxed);
  }
  /// Wall-clock seconds spent inside the write/read syscalls.
  [[nodiscard]] double WriteSeconds() const {
    return static_cast<double>(write_ns_.load(std::memory_order_relaxed)) /
           1e9;
  }
  [[nodiscard]] double ReadSeconds() const {
    return static_cast<double>(read_ns_.load(std::memory_order_relaxed)) / 1e9;
  }
  /// Fixed-file slots handed out from the free list (vs. file growth).
  [[nodiscard]] idx_t SlotReuses() const;
  /// Variable-size temporary files ever created.
  [[nodiscard]] idx_t VariableFilesCreated() const;

  /// Compression of spilled pages into codec spill frames. Takes effect for
  /// subsequent writes; pages already on storage decode by their recorded
  /// format, so toggling mid-flight is safe.
  void SetSpillCompression(bool enabled) {
    spill_compression_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool spill_compression() const {
    return spill_compression_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] AsyncIoBackend &io_backend() const { return *io_backend_; }

  /// Paths of the temporary files. Both embed a per-process, per-instance
  /// token: managers may share a directory (several BufferManagers in one
  /// process, or concurrent test processes on the same temp dir), and the
  /// fixed file is opened with truncate — a shared name would let one
  /// manager destroy another's live spill data.
  [[nodiscard]] std::string FixedFilePath() const;
  [[nodiscard]] std::string VariableFilePath(block_id_t id) const;

 private:
  /// Bookkeeping of one variable-size temporary file. stored_size is what
  /// sits on storage (== raw_size when the block was not compressed).
  struct VariableBlockInfo {
    idx_t raw_size = 0;
    idx_t stored_size = 0;
    bool compressed = false;
  };

  Status EnsureFixedFileLocked() SSAGG_REQUIRES(lock_);
  void UpdatePeakLocked() SSAGG_REQUIRES(lock_);
  /// Folds one spill write/read into the local accounting and the global
  /// metrics registry. `raw_bytes` is the pre-compression volume.
  void RecordWrite(idx_t bytes, idx_t raw_bytes, uint64_t ns);
  void RecordRead(idx_t bytes, uint64_t ns);
  /// Consults the installed fault injector (via the backend) for the
  /// coalesce site; OK when no injector is installed.
  Status HitCoalesceSite();

  std::string directory_;
  FileSystem &fs_;
  std::string token_;  // unique per process + instance, embedded in paths

  /// Set when the caller did not supply a backend (standalone managers):
  /// owns the sync backend io_backend_ then points to.
  std::unique_ptr<AsyncIoBackend> owned_backend_;
  AsyncIoBackend *io_backend_;
  std::atomic<bool> spill_compression_;

  /// Protects the slot/file bookkeeping. Held only for bookkeeping, never
  /// across the actual read/write syscalls: the fixed file's FileHandle is
  /// positioned (pread/pwrite-style), so I/O proceeds concurrently on a raw
  /// pointer captured under the lock (the handle is destroyed only in the
  /// destructor).
  mutable Mutex lock_;
  std::unique_ptr<FileHandle> fixed_file_ SSAGG_GUARDED_BY(lock_);
  std::vector<idx_t> free_slots_ SSAGG_GUARDED_BY(lock_);
  /// High-water slot count of the fixed file.
  idx_t slot_count_ SSAGG_GUARDED_BY(lock_) = 0;
  idx_t used_slots_ SSAGG_GUARDED_BY(lock_) = 0;
  /// Frame size of slots whose page was stored compressed; slots absent
  /// from the map hold the raw page.
  std::unordered_map<idx_t, idx_t> slot_frame_sizes_ SSAGG_GUARDED_BY(lock_);
  std::unordered_map<block_id_t, VariableBlockInfo> variable_blocks_
      SSAGG_GUARDED_BY(lock_);
  idx_t peak_size_ SSAGG_GUARDED_BY(lock_) = 0;
  idx_t write_count_ SSAGG_GUARDED_BY(lock_) = 0;
  idx_t read_count_ SSAGG_GUARDED_BY(lock_) = 0;
  idx_t slot_reuses_ SSAGG_GUARDED_BY(lock_) = 0;
  idx_t variable_files_created_ SSAGG_GUARDED_BY(lock_) = 0;
  std::atomic<idx_t> bytes_written_{0};
  std::atomic<idx_t> bytes_read_{0};
  std::atomic<idx_t> raw_bytes_written_{0};
  std::atomic<idx_t> coalesced_writes_{0};
  std::atomic<idx_t> coalesced_pages_{0};
  std::atomic<idx_t> write_ns_{0};
  std::atomic<idx_t> read_ns_{0};

  /// Cached registry key ids ("io.*"), resolved once at construction.
  idx_t key_spill_writes_;
  idx_t key_spill_reads_;
  idx_t key_spill_bytes_written_;
  idx_t key_spill_bytes_read_;
  idx_t key_spill_raw_bytes_;
  idx_t key_spill_coalesced_writes_;
  idx_t key_spill_coalesced_pages_;
  idx_t key_spill_write_ns_;
  idx_t key_spill_read_ns_;
  /// Read-latency histogram id for demand reads, which bypass the async
  /// backend (the backend records its own submit-to-completion latency for
  /// everything routed through Submit).
  idx_t hist_spill_read_latency_;
};

}  // namespace ssagg

#endif  // SSAGG_BUFFER_TEMPORARY_FILE_MANAGER_H_
