#ifndef SSAGG_BUFFER_TEMPORARY_FILE_MANAGER_H_
#define SSAGG_BUFFER_TEMPORARY_FILE_MANAGER_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "buffer/file_buffer.h"
#include "common/file_system.h"
#include "common/mutex.h"
#include "common/status.h"
#include "observe/metrics.h"

namespace ssagg {

/// Manages spilled temporary data in storage (Section III, "Temporary
/// Data"):
///   - fixed-size pages (kPageSize) go to slots of one shared temporary
///     file; slots are recycled through a free list so the file does not
///     grow past the high-water mark of simultaneously spilled pages;
///   - variable-size pages each go to their own temporary file.
/// The temporary files are completely separate from the database file.
class TemporaryFileManager {
 public:
  explicit TemporaryFileManager(std::string directory,
                                FileSystem &fs = FileSystem::Default());
  ~TemporaryFileManager();

  TemporaryFileManager(const TemporaryFileManager &) = delete;
  TemporaryFileManager &operator=(const TemporaryFileManager &) = delete;

  /// Writes a fixed-size page; returns the slot it occupies.
  Result<idx_t> WriteFixedBlock(const FileBuffer &buffer);
  /// Reads a fixed-size page back and releases its slot (a reloaded page is
  /// eagerly removed from the temporary file; if it is evicted again it is
  /// simply rewritten).
  Status ReadFixedBlock(idx_t slot, FileBuffer &buffer);
  /// Releases a slot without reading (block was destroyed while spilled).
  void FreeFixedSlot(idx_t slot);

  /// Writes a variable-size block to its own file keyed by block id.
  Status WriteVariableBlock(block_id_t id, const FileBuffer &buffer);
  /// Reads a variable-size block back and deletes its file.
  Status ReadVariableBlock(block_id_t id, FileBuffer &buffer);
  /// Deletes the file of a destroyed variable-size block.
  void FreeVariableBlock(block_id_t id);

  /// Bytes currently occupied in temporary storage (both kinds).
  [[nodiscard]] idx_t CurrentSize() const;
  /// Highest CurrentSize observed.
  [[nodiscard]] idx_t PeakSize() const;
  /// Fixed-file slots currently holding a spilled page. Zero when no query
  /// state is alive — the no-leak invariant the fault suite asserts.
  [[nodiscard]] idx_t UsedSlots() const;
  /// Live variable-size temporary files (same invariant).
  [[nodiscard]] idx_t VariableBlockCount() const;
  [[nodiscard]] idx_t WriteCount() const;
  [[nodiscard]] idx_t ReadCount() const;

  /// I/O accounting — the observability layer's ground truth for spill
  /// volume: every byte handed to / read back from temporary storage.
  [[nodiscard]] idx_t BytesWritten() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] idx_t BytesRead() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  /// Wall-clock seconds spent inside the write/read syscalls.
  [[nodiscard]] double WriteSeconds() const {
    return static_cast<double>(write_ns_.load(std::memory_order_relaxed)) /
           1e9;
  }
  [[nodiscard]] double ReadSeconds() const {
    return static_cast<double>(read_ns_.load(std::memory_order_relaxed)) / 1e9;
  }
  /// Fixed-file slots handed out from the free list (vs. file growth).
  [[nodiscard]] idx_t SlotReuses() const;
  /// Variable-size temporary files ever created.
  [[nodiscard]] idx_t VariableFilesCreated() const;

  /// Paths of the temporary files. Both embed a per-process, per-instance
  /// token: managers may share a directory (several BufferManagers in one
  /// process, or concurrent test processes on the same temp dir), and the
  /// fixed file is opened with truncate — a shared name would let one
  /// manager destroy another's live spill data.
  [[nodiscard]] std::string FixedFilePath() const;
  [[nodiscard]] std::string VariableFilePath(block_id_t id) const;

 private:
  Status EnsureFixedFileLocked() SSAGG_REQUIRES(lock_);
  void UpdatePeakLocked() SSAGG_REQUIRES(lock_);
  /// Folds one spill write/read into the local accounting and the global
  /// metrics registry.
  void RecordWrite(idx_t bytes, uint64_t ns);
  void RecordRead(idx_t bytes, uint64_t ns);

  std::string directory_;
  FileSystem &fs_;
  std::string token_;  // unique per process + instance, embedded in paths

  /// Protects the slot/file bookkeeping. Held only for bookkeeping, never
  /// across the actual read/write syscalls: the fixed file's FileHandle is
  /// positioned (pread/pwrite-style), so I/O proceeds concurrently on a raw
  /// pointer captured under the lock (the handle is destroyed only in the
  /// destructor).
  mutable Mutex lock_;
  std::unique_ptr<FileHandle> fixed_file_ SSAGG_GUARDED_BY(lock_);
  std::vector<idx_t> free_slots_ SSAGG_GUARDED_BY(lock_);
  /// High-water slot count of the fixed file.
  idx_t slot_count_ SSAGG_GUARDED_BY(lock_) = 0;
  idx_t used_slots_ SSAGG_GUARDED_BY(lock_) = 0;
  std::unordered_map<block_id_t, idx_t> variable_sizes_
      SSAGG_GUARDED_BY(lock_);
  idx_t peak_size_ SSAGG_GUARDED_BY(lock_) = 0;
  idx_t write_count_ SSAGG_GUARDED_BY(lock_) = 0;
  idx_t read_count_ SSAGG_GUARDED_BY(lock_) = 0;
  idx_t slot_reuses_ SSAGG_GUARDED_BY(lock_) = 0;
  idx_t variable_files_created_ SSAGG_GUARDED_BY(lock_) = 0;
  std::atomic<idx_t> bytes_written_{0};
  std::atomic<idx_t> bytes_read_{0};
  std::atomic<idx_t> write_ns_{0};
  std::atomic<idx_t> read_ns_{0};

  /// Cached registry key ids ("io.*"), resolved once at construction.
  idx_t key_spill_writes_;
  idx_t key_spill_reads_;
  idx_t key_spill_bytes_written_;
  idx_t key_spill_bytes_read_;
  idx_t key_spill_write_ns_;
  idx_t key_spill_read_ns_;
};

}  // namespace ssagg

#endif  // SSAGG_BUFFER_TEMPORARY_FILE_MANAGER_H_
