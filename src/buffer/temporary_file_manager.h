#ifndef SSAGG_BUFFER_TEMPORARY_FILE_MANAGER_H_
#define SSAGG_BUFFER_TEMPORARY_FILE_MANAGER_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "buffer/file_buffer.h"
#include "common/file_system.h"
#include "common/status.h"

namespace ssagg {

/// Manages spilled temporary data in storage (Section III, "Temporary
/// Data"):
///   - fixed-size pages (kPageSize) go to slots of one shared temporary
///     file; slots are recycled through a free list so the file does not
///     grow past the high-water mark of simultaneously spilled pages;
///   - variable-size pages each go to their own temporary file.
/// The temporary files are completely separate from the database file.
class TemporaryFileManager {
 public:
  explicit TemporaryFileManager(std::string directory)
      : directory_(std::move(directory)) {}
  ~TemporaryFileManager();

  TemporaryFileManager(const TemporaryFileManager &) = delete;
  TemporaryFileManager &operator=(const TemporaryFileManager &) = delete;

  /// Writes a fixed-size page; returns the slot it occupies.
  Result<idx_t> WriteFixedBlock(const FileBuffer &buffer);
  /// Reads a fixed-size page back and releases its slot (a reloaded page is
  /// eagerly removed from the temporary file; if it is evicted again it is
  /// simply rewritten).
  Status ReadFixedBlock(idx_t slot, FileBuffer &buffer);
  /// Releases a slot without reading (block was destroyed while spilled).
  void FreeFixedSlot(idx_t slot);

  /// Writes a variable-size block to its own file keyed by block id.
  Status WriteVariableBlock(block_id_t id, const FileBuffer &buffer);
  /// Reads a variable-size block back and deletes its file.
  Status ReadVariableBlock(block_id_t id, FileBuffer &buffer);
  /// Deletes the file of a destroyed variable-size block.
  void FreeVariableBlock(block_id_t id);

  /// Bytes currently occupied in temporary storage (both kinds).
  idx_t CurrentSize() const;
  /// Highest CurrentSize observed.
  idx_t PeakSize() const;
  idx_t WriteCount() const { return write_count_; }
  idx_t ReadCount() const { return read_count_; }

 private:
  Status EnsureFixedFile();
  std::string VariableFilePath(block_id_t id) const;
  void UpdatePeak();

  std::string directory_;

  mutable std::mutex lock_;
  std::unique_ptr<FileHandle> fixed_file_;
  std::vector<idx_t> free_slots_;
  idx_t slot_count_ = 0;       // high-water slot count of the fixed file
  idx_t used_slots_ = 0;
  idx_t variable_bytes_ = 0;   // bytes in per-block variable files
  std::unordered_map<block_id_t, idx_t> variable_sizes_;
  idx_t peak_size_ = 0;
  idx_t write_count_ = 0;
  idx_t read_count_ = 0;
};

}  // namespace ssagg

#endif  // SSAGG_BUFFER_TEMPORARY_FILE_MANAGER_H_
