#include "buffer/temporary_file_manager.h"

#include <algorithm>
#include <chrono>

#include "common/constants.h"
#include "observe/trace.h"

namespace ssagg {

namespace {
/// Nanoseconds spent in `fn` (a file-system call).
template <typename Fn>
uint64_t TimedNs(const Fn &fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}
}  // namespace

TemporaryFileManager::TemporaryFileManager(std::string directory,
                                           FileSystem &fs)
    : directory_(std::move(directory)),
      fs_(fs),
      token_(ProcessUniqueToken()) {
  MetricsRegistry &registry = MetricsRegistry::Global();
  key_spill_writes_ = registry.KeyId("io.spill_writes");
  key_spill_reads_ = registry.KeyId("io.spill_reads");
  key_spill_bytes_written_ = registry.KeyId("io.spill_bytes_written");
  key_spill_bytes_read_ = registry.KeyId("io.spill_bytes_read");
  key_spill_write_ns_ = registry.KeyId("io.spill_write_ns");
  key_spill_read_ns_ = registry.KeyId("io.spill_read_ns");
}

TemporaryFileManager::~TemporaryFileManager() {
  ScopedLock guard(lock_);
  if (fixed_file_) {
    std::string path = fixed_file_->path();
    fixed_file_.reset();
    (void)fs_.RemoveFile(path);
  }
  for (auto &entry : variable_sizes_) {
    (void)fs_.RemoveFile(VariableFilePath(entry.first));
  }
}

Status TemporaryFileManager::EnsureFixedFileLocked() {
  if (fixed_file_) {
    return Status::OK();
  }
  SSAGG_RETURN_NOT_OK(fs_.CreateDirectories(directory_));
  FileOpenFlags flags;
  flags.read = true;
  flags.write = true;
  flags.create = true;
  flags.truncate = true;
  SSAGG_ASSIGN_OR_RETURN(fixed_file_, fs_.Open(FixedFilePath(), flags));
  return Status::OK();
}

std::string TemporaryFileManager::FixedFilePath() const {
  return directory_ + "/ssagg_temp_" + token_ + ".tmp";
}

Result<idx_t> TemporaryFileManager::WriteFixedBlock(const FileBuffer &buffer) {
  SSAGG_DASSERT(buffer.size() == kPageSize);
  TraceSpan span("spill.write", "io");
  idx_t slot;
  FileHandle *file;
  {
    ScopedLock guard(lock_);
    SSAGG_RETURN_NOT_OK(EnsureFixedFileLocked());
    // Capture the handle under the lock; the positioned write below runs
    // unlocked so concurrent spills overlap their I/O. (The write used to
    // dereference fixed_file_ unlocked, racing with EnsureFixedFileLocked.)
    file = fixed_file_.get();
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slot_reuses_++;
    } else {
      slot = slot_count_++;
    }
    used_slots_++;
    write_count_++;
    UpdatePeakLocked();
  }
  Status status;
  uint64_t ns = TimedNs([&]() {
    status = file->Write(buffer.data(), kPageSize, slot * kPageSize);
  });
  if (!status.ok()) {
    // Roll the slot back: a failed spill must not leak temp-file space (the
    // caller keeps the in-memory page and propagates the error).
    FreeFixedSlot(slot);
    return status;
  }
  RecordWrite(kPageSize, ns);
  return slot;
}

Status TemporaryFileManager::ReadFixedBlock(idx_t slot, FileBuffer &buffer) {
  SSAGG_DASSERT(buffer.size() == kPageSize);
  TraceSpan span("spill.read", "io");
  FileHandle *file;
  {
    // The handle pointer is guarded state; the positioned read itself runs
    // unlocked. (This read used to dereference fixed_file_ with no lock at
    // all — a data race against the first concurrent spill write creating
    // the file.)
    ScopedLock guard(lock_);
    SSAGG_ASSERT(fixed_file_ != nullptr);
    file = fixed_file_.get();
  }
  Status status;
  uint64_t ns = TimedNs([&]() {
    status = file->Read(buffer.data(), kPageSize, slot * kPageSize);
  });
  SSAGG_RETURN_NOT_OK(status);
  FreeFixedSlot(slot);
  {
    ScopedLock guard(lock_);
    read_count_++;
  }
  RecordRead(kPageSize, ns);
  return Status::OK();
}

void TemporaryFileManager::RecordWrite(idx_t bytes, uint64_t ns) {
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  write_ns_.fetch_add(ns, std::memory_order_relaxed);
  MetricsRegistry &registry = MetricsRegistry::Global();
  registry.Add(key_spill_writes_, 1);
  registry.Add(key_spill_bytes_written_, bytes);
  registry.Add(key_spill_write_ns_, ns);
}

void TemporaryFileManager::RecordRead(idx_t bytes, uint64_t ns) {
  bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  read_ns_.fetch_add(ns, std::memory_order_relaxed);
  MetricsRegistry &registry = MetricsRegistry::Global();
  registry.Add(key_spill_reads_, 1);
  registry.Add(key_spill_bytes_read_, bytes);
  registry.Add(key_spill_read_ns_, ns);
}

void TemporaryFileManager::FreeFixedSlot(idx_t slot) {
  ScopedLock guard(lock_);
  free_slots_.push_back(slot);
  SSAGG_DASSERT(used_slots_ > 0);
  used_slots_--;
}

std::string TemporaryFileManager::VariableFilePath(block_id_t id) const {
  return directory_ + "/ssagg_temp_var_" + token_ + "_" + std::to_string(id) +
         ".tmp";
}

Status TemporaryFileManager::WriteVariableBlock(block_id_t id,
                                                const FileBuffer &buffer) {
  TraceSpan span("spill.write", "io", buffer.size());
  {
    ScopedLock guard(lock_);
    SSAGG_RETURN_NOT_OK(fs_.CreateDirectories(directory_));
    variable_sizes_[id] = buffer.size();
    write_count_++;
    variable_files_created_++;
    UpdatePeakLocked();
  }
  FileOpenFlags flags;
  flags.read = false;
  flags.write = true;
  flags.create = true;
  flags.truncate = true;
  Status status;
  uint64_t ns = TimedNs([&]() {
    auto file = fs_.Open(VariableFilePath(id), flags);
    status = file.ok() ? file.value()->Write(buffer.data(), buffer.size(), 0)
                       : file.status();
  });
  if (!status.ok()) {
    // Roll back the registration and drop any partially written file so the
    // failed spill leaves no temp-storage footprint.
    FreeVariableBlock(id);
    return status;
  }
  RecordWrite(buffer.size(), ns);
  return Status::OK();
}

Status TemporaryFileManager::ReadVariableBlock(block_id_t id,
                                               FileBuffer &buffer) {
  TraceSpan span("spill.read", "io", buffer.size());
  FileOpenFlags flags;
  Status status;
  uint64_t ns = TimedNs([&]() {
    auto file = fs_.Open(VariableFilePath(id), flags);
    status = file.ok() ? file.value()->Read(buffer.data(), buffer.size(), 0)
                       : file.status();
  });
  SSAGG_RETURN_NOT_OK(status);
  FreeVariableBlock(id);
  {
    ScopedLock guard(lock_);
    read_count_++;
  }
  RecordRead(buffer.size(), ns);
  return Status::OK();
}

void TemporaryFileManager::FreeVariableBlock(block_id_t id) {
  ScopedLock guard(lock_);
  auto it = variable_sizes_.find(id);
  if (it == variable_sizes_.end()) {
    return;
  }
  variable_sizes_.erase(it);
  (void)fs_.RemoveFile(VariableFilePath(id));
}

idx_t TemporaryFileManager::UsedSlots() const {
  ScopedLock guard(lock_);
  return used_slots_;
}

idx_t TemporaryFileManager::VariableBlockCount() const {
  ScopedLock guard(lock_);
  return variable_sizes_.size();
}

idx_t TemporaryFileManager::WriteCount() const {
  ScopedLock guard(lock_);
  return write_count_;
}

idx_t TemporaryFileManager::ReadCount() const {
  ScopedLock guard(lock_);
  return read_count_;
}

idx_t TemporaryFileManager::SlotReuses() const {
  ScopedLock guard(lock_);
  return slot_reuses_;
}

idx_t TemporaryFileManager::VariableFilesCreated() const {
  ScopedLock guard(lock_);
  return variable_files_created_;
}

idx_t TemporaryFileManager::CurrentSize() const {
  ScopedLock guard(lock_);
  idx_t variable = 0;
  for (auto &entry : variable_sizes_) {
    variable += entry.second;
  }
  return used_slots_ * kPageSize + variable;
}

idx_t TemporaryFileManager::PeakSize() const {
  ScopedLock guard(lock_);
  return peak_size_;
}

void TemporaryFileManager::UpdatePeakLocked() {
  idx_t variable = 0;
  for (auto &entry : variable_sizes_) {
    variable += entry.second;
  }
  peak_size_ = std::max(peak_size_, used_slots_ * kPageSize + variable);
}

}  // namespace ssagg
