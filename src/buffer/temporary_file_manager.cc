#include "buffer/temporary_file_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>

#include "common/constants.h"
#include "compression/codec.h"
#include "observe/trace.h"
#include "testing/fault_injector.h"

namespace ssagg {

namespace {
/// Nanoseconds spent in `fn` (a file-system call or a submit/wait cycle).
template <typename Fn>
uint64_t TimedNs(const Fn &fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}
}  // namespace

TemporaryFileManager::TemporaryFileManager(std::string directory,
                                           FileSystem &fs,
                                           AsyncIoBackend *io_backend,
                                           bool spill_compression)
    : directory_(std::move(directory)),
      fs_(fs),
      token_(ProcessUniqueToken()),
      spill_compression_(spill_compression) {
  if (io_backend == nullptr) {
    owned_backend_ = CreateIoBackend(IoBackendKind::kSync);
    io_backend = owned_backend_.get();
  }
  io_backend_ = io_backend;
  MetricsRegistry &registry = MetricsRegistry::Global();
  key_spill_writes_ = registry.KeyId("io.spill_writes");
  key_spill_reads_ = registry.KeyId("io.spill_reads");
  key_spill_bytes_written_ = registry.KeyId("io.spill_bytes_written");
  key_spill_bytes_read_ = registry.KeyId("io.spill_bytes_read");
  key_spill_raw_bytes_ = registry.KeyId("io.spill_raw_bytes");
  key_spill_coalesced_writes_ = registry.KeyId("io.spill_coalesced_writes");
  key_spill_coalesced_pages_ = registry.KeyId("io.spill_coalesced_pages");
  key_spill_write_ns_ = registry.KeyId("io.spill_write_ns");
  key_spill_read_ns_ = registry.KeyId("io.spill_read_ns");
  hist_spill_read_latency_ = registry.HistogramId("io.spill_read_latency_ns");
}

TemporaryFileManager::~TemporaryFileManager() {
  // No submissions against our files may be in flight once the handles die.
  io_backend_->Drain();
  ScopedLock guard(lock_);
  if (fixed_file_) {
    std::string path = fixed_file_->path();
    fixed_file_.reset();
    (void)fs_.RemoveFile(path);
  }
  for (auto &entry : variable_blocks_) {
    (void)fs_.RemoveFile(VariableFilePath(entry.first));
  }
}

Status TemporaryFileManager::EnsureFixedFileLocked() {
  if (fixed_file_) {
    return Status::OK();
  }
  SSAGG_RETURN_NOT_OK(fs_.CreateDirectories(directory_));
  FileOpenFlags flags;
  flags.read = true;
  flags.write = true;
  flags.create = true;
  flags.truncate = true;
  SSAGG_ASSIGN_OR_RETURN(fixed_file_, fs_.Open(FixedFilePath(), flags));
  return Status::OK();
}

std::string TemporaryFileManager::FixedFilePath() const {
  return directory_ + "/ssagg_temp_" + token_ + ".tmp";
}

Status TemporaryFileManager::HitCoalesceSite() {
  if (FaultInjector *injector = io_backend_->fault_injector()) {
    return injector->Hit(FaultSite::kAsyncCoalesce);
  }
  return Status::OK();
}

Result<idx_t> TemporaryFileManager::WriteFixedBlock(const FileBuffer &buffer) {
  FixedSpillRequest request;
  request.buffer = &buffer;
  WriteFixedBlocks(&request, 1);
  SSAGG_RETURN_NOT_OK(request.status);
  return request.slot;
}

void TemporaryFileManager::WriteFixedBlocks(FixedSpillRequest *requests,
                                            idx_t count) {
  if (count == 0) {
    return;
  }
  // Span name is part of the observability contract ("spill.write" appears
  // for every spilling query); the arg carries the batch depth.
  TraceSpan span("spill.write", "io", count);
  const bool compress = spill_compression();
  FileHandle *file;
  {
    ScopedLock guard(lock_);
    Status ensure = EnsureFixedFileLocked();
    if (!ensure.ok()) {
      for (idx_t i = 0; i < count; i++) {
        requests[i].status = ensure;
      }
      return;
    }
    file = fixed_file_.get();
    for (idx_t i = 0; i < count; i++) {
      SSAGG_DASSERT(requests[i].buffer->size() == kPageSize);
      if (!free_slots_.empty()) {
        requests[i].slot = free_slots_.back();
        free_slots_.pop_back();
        slot_reuses_++;
      } else {
        requests[i].slot = slot_count_++;
      }
      used_slots_++;
    }
    UpdatePeakLocked();
  }

  /// One physical submission covering one or more requests.
  struct Submission {
    std::vector<idx_t> members;   // indices into requests
    std::vector<data_t> staging;  // owned payload (frame or merged pages)
    const void *data = nullptr;
    idx_t bytes = 0;
    idx_t offset = 0;
    IoCompletionPtr completion;
    Status status;
    bool coalesced = false;
  };
  std::vector<Submission> submissions;
  submissions.reserve(count);

  if (compress) {
    // Each page becomes its own frame (or stays raw if the frame would not
    // fit the slot); frames are variable-length, so adjacent slots are not
    // merged — a coalesced write would have to pad the gaps back in and
    // forfeit the byte savings. The codec pass itself runs in the request's
    // prepare hook, i.e. on the backend's executor: async backends overlap
    // compression across their workers while the evictor keeps submitting.
    for (idx_t i = 0; i < count; i++) {
      Submission sub;
      sub.members.push_back(i);
      sub.offset = requests[i].slot * kPageSize;
      sub.data = requests[i].buffer->data();
      sub.bytes = kPageSize;
      submissions.push_back(std::move(sub));
    }
  } else {
    // Merge runs of adjacent slots into single larger writes. Fresh slots
    // are consecutive by construction, so page floods coalesce well; free-
    // list recycling fragments the slot space and naturally degrades to
    // per-page writes. Async backends get their speedup from many small
    // in-flight submissions, and a long merged run collapses the whole batch
    // into one transfer the evictor then waits on — so runs are capped for
    // them (pairs still amortize a syscall), while the sync backend keeps
    // unlimited runs: one thread, fewer syscalls wins.
    const idx_t max_run =
        io_backend_->kind() == IoBackendKind::kSync ? count : idx_t(4);
    std::vector<idx_t> order(count);
    std::iota(order.begin(), order.end(), idx_t(0));
    std::sort(order.begin(), order.end(), [&](idx_t a, idx_t b) {
      return requests[a].slot < requests[b].slot;
    });
    idx_t i = 0;
    while (i < count) {
      idx_t run = 1;
      while (run < max_run && i + run < count &&
             requests[order[i + run]].slot ==
                 requests[order[i + run - 1]].slot + 1) {
        run++;
      }
      Submission sub;
      sub.offset = requests[order[i]].slot * kPageSize;
      for (idx_t r = 0; r < run; r++) {
        sub.members.push_back(order[i + r]);
      }
      if (run == 1) {
        sub.data = requests[order[i]].buffer->data();
        sub.bytes = kPageSize;
      } else {
        sub.coalesced = true;
        sub.status = HitCoalesceSite();
        if (sub.status.ok()) {
          sub.staging.resize(run * kPageSize);
          for (idx_t r = 0; r < run; r++) {
            std::memcpy(sub.staging.data() + r * kPageSize,
                        requests[order[i + r]].buffer->data(), kPageSize);
          }
          sub.data = sub.staging.data();
          sub.bytes = sub.staging.size();
        }
      }
      submissions.push_back(std::move(sub));
      i += run;
    }
  }

  uint64_t ns = TimedNs([&]() {
    for (auto &sub : submissions) {
      if (!sub.status.ok()) {
        continue;  // failed before submission (injected coalesce fault)
      }
      IoRequest request;
      request.kind = IoRequest::Kind::kWrite;
      request.file = file;
      request.buffer = const_cast<void *>(sub.data);
      request.bytes = sub.bytes;
      request.offset = sub.offset;
      if (compress) {
        request.cpu_bound = true;
        request.prepare = [&sub](IoRequest &req) {
          CompressSpillFrame(static_cast<const_data_ptr_t>(req.buffer),
                             kPageSize, sub.staging);
          if (sub.staging.size() < kPageSize) {
            req.buffer = sub.staging.data();
            req.bytes = sub.staging.size();
            sub.bytes = sub.staging.size();
          } else {
            sub.staging.clear();  // frame would not fit the slot: stay raw
          }
          return Status::OK();
        };
      }
      sub.completion = io_backend_->Submit(std::move(request));
    }
    for (auto &sub : submissions) {
      if (sub.completion) {
        sub.status = sub.completion->Wait();
      }
    }
  });

  if (compress) {
    // Frame sizes become visible only now, after every Wait() — safe because
    // the evictor still holds the block locks, so no reader can ask for
    // these slots until WriteFixedBlocks returns.
    ScopedLock guard(lock_);
    for (auto &sub : submissions) {
      if (sub.status.ok() && sub.bytes < kPageSize) {
        slot_frame_sizes_[requests[sub.members[0]].slot] = sub.bytes;
      }
    }
  }

  idx_t ok_bytes = 0;
  idx_t ok_raw_bytes = 0;
  idx_t ok_pages = 0;
  for (auto &sub : submissions) {
    if (sub.status.ok()) {
      ok_bytes += sub.bytes;
      ok_raw_bytes += sub.members.size() * kPageSize;
      ok_pages += sub.members.size();
      if (sub.coalesced) {
        coalesced_writes_.fetch_add(1, std::memory_order_relaxed);
        coalesced_pages_.fetch_add(sub.members.size(),
                                   std::memory_order_relaxed);
        MetricsRegistry &registry = MetricsRegistry::Global();
        registry.Add(key_spill_coalesced_writes_, 1);
        registry.Add(key_spill_coalesced_pages_, sub.members.size());
      }
      for (idx_t member : sub.members) {
        requests[member].status = Status::OK();
      }
    } else {
      // Roll the slots back: a failed spill must not leak temp-file space
      // (the caller keeps the in-memory pages and propagates the error).
      for (idx_t member : sub.members) {
        requests[member].status = sub.status;
        FreeFixedSlot(requests[member].slot);
        requests[member].slot = kInvalidIndex;
      }
    }
  }
  if (ok_pages > 0) {
    // "Writes" count spilled pages (the logical unit the rest of the engine
    // reasons about); coalescing shows up in the io.spill_coalesced_*
    // counters instead. RecordWrite contributes 1.
    RecordWrite(ok_bytes, ok_raw_bytes, ns);
    MetricsRegistry::Global().Add(key_spill_writes_, ok_pages - 1);
    ScopedLock guard(lock_);
    write_count_ += ok_pages;
  }
}

Status TemporaryFileManager::ReadFixedBlock(idx_t slot, FileBuffer &buffer) {
  SSAGG_DASSERT(buffer.size() == kPageSize);
  TraceSpan span("spill.read", "io");
  FileHandle *file;
  idx_t frame_size = 0;
  {
    // The handle pointer is guarded state; the positioned read itself runs
    // unlocked.
    ScopedLock guard(lock_);
    SSAGG_ASSERT(fixed_file_ != nullptr);
    file = fixed_file_.get();
    auto it = slot_frame_sizes_.find(slot);
    if (it != slot_frame_sizes_.end()) {
      frame_size = it->second;
    }
  }
  Status status;
  idx_t bytes = frame_size != 0 ? frame_size : kPageSize;
  uint64_t ns;
  if (frame_size != 0) {
    // The decompress belongs inside the timed window: on this demand path
    // the query thread pays for it inline, exactly like the read itself.
    std::vector<data_t> scratch(frame_size);
    ns = TimedNs([&]() {
      status = file->Read(scratch.data(), frame_size, slot * kPageSize);
      if (status.ok()) {
        status = DecompressSpillFrame(scratch.data(), frame_size,
                                      buffer.data(), kPageSize);
      }
    });
  } else {
    ns = TimedNs([&]() {
      status = file->Read(buffer.data(), kPageSize, slot * kPageSize);
    });
  }
  SSAGG_RETURN_NOT_OK(status);
  FreeFixedSlot(slot);
  {
    ScopedLock guard(lock_);
    read_count_++;
  }
  RecordRead(bytes, ns);
  // Demand read: did not go through the async backend, so record its
  // latency here (the query thread was blocked for all of it).
  MetricsRegistry::Global().Record(hist_spill_read_latency_, ns);
  return Status::OK();
}

void TemporaryFileManager::SubmitReadFixedBlock(
    idx_t slot, FileBuffer &buffer, std::function<void(const Status &)> done) {
  SSAGG_DASSERT(buffer.size() == kPageSize);
  FileHandle *file;
  idx_t frame_size = 0;
  {
    ScopedLock guard(lock_);
    SSAGG_ASSERT(fixed_file_ != nullptr);
    file = fixed_file_.get();
    auto it = slot_frame_sizes_.find(slot);
    if (it != slot_frame_sizes_.end()) {
      frame_size = it->second;
    }
  }
  // Completion runs on the backend's thread: decompress if needed, release
  // the slot on success (mirroring the synchronous read), then hand off.
  auto scratch = frame_size != 0
                     ? std::make_shared<std::vector<data_t>>(frame_size)
                     : nullptr;
  idx_t bytes = frame_size != 0 ? frame_size : kPageSize;
  FileBuffer *dest = &buffer;
  auto finalize = [this, slot, bytes, scratch, dest, frame_size,
                   done = std::move(done)](const Status &io_status) {
    // Span name is part of the observability contract ("spill.read" appears
    // for every spilling query); emitted on the completion thread, where it
    // nests laminarly.
    TraceSpan span("spill.read", "io");
    Status status = io_status;
    if (status.ok() && frame_size != 0) {
      status = DecompressSpillFrame(scratch->data(), frame_size, dest->data(),
                                    kPageSize);
    }
    if (status.ok()) {
      FreeFixedSlot(slot);
      {
        ScopedLock guard(lock_);
        read_count_++;
      }
      // ns = 0: this is a prefetch — no query thread is blocked on it, so
      // its latency must not inflate the "time blocked on spill reads"
      // number. Pin()'s wait for in-flight loads is what counts, and the
      // BufferManager times that directly.
      RecordRead(bytes, 0);
    }
    done(status);
  };
  IoRequest request;
  request.kind = IoRequest::Kind::kRead;
  request.file = file;
  request.buffer = frame_size != 0 ? static_cast<void *>(scratch->data())
                                   : static_cast<void *>(buffer.data());
  request.bytes = bytes;
  request.offset = slot * kPageSize;
  // A framed slot decompresses in on_complete; keep that off a shared
  // completion reaper.
  request.cpu_bound = frame_size != 0;
  request.on_complete = std::move(finalize);
  io_backend_->Submit(std::move(request));
}

void TemporaryFileManager::RecordWrite(idx_t bytes, idx_t raw_bytes,
                                       uint64_t ns) {
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  raw_bytes_written_.fetch_add(raw_bytes, std::memory_order_relaxed);
  write_ns_.fetch_add(ns, std::memory_order_relaxed);
  MetricsRegistry &registry = MetricsRegistry::Global();
  registry.Add(key_spill_writes_, 1);
  registry.Add(key_spill_bytes_written_, bytes);
  registry.Add(key_spill_raw_bytes_, raw_bytes);
  registry.Add(key_spill_write_ns_, ns);
}

void TemporaryFileManager::RecordRead(idx_t bytes, uint64_t ns) {
  bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  read_ns_.fetch_add(ns, std::memory_order_relaxed);
  MetricsRegistry &registry = MetricsRegistry::Global();
  registry.Add(key_spill_reads_, 1);
  registry.Add(key_spill_bytes_read_, bytes);
  registry.Add(key_spill_read_ns_, ns);
}

void TemporaryFileManager::FreeFixedSlot(idx_t slot) {
  ScopedLock guard(lock_);
  free_slots_.push_back(slot);
  slot_frame_sizes_.erase(slot);
  SSAGG_DASSERT(used_slots_ > 0);
  used_slots_--;
}

std::string TemporaryFileManager::VariableFilePath(block_id_t id) const {
  return directory_ + "/ssagg_temp_var_" + token_ + "_" + std::to_string(id) +
         ".tmp";
}

Status TemporaryFileManager::WriteVariableBlock(block_id_t id,
                                                const FileBuffer &buffer) {
  TraceSpan span("spill.write", "io", buffer.size());
  const bool compress = spill_compression();
  std::vector<data_t> frame;
  const void *data = buffer.data();
  idx_t bytes = buffer.size();
  bool stored_compressed = false;
  if (compress) {
    CompressSpillFrame(buffer.data(), buffer.size(), frame);
    if (frame.size() < buffer.size()) {
      data = frame.data();
      bytes = frame.size();
      stored_compressed = true;
    }
  }
  {
    ScopedLock guard(lock_);
    SSAGG_RETURN_NOT_OK(fs_.CreateDirectories(directory_));
    variable_blocks_[id] =
        VariableBlockInfo{buffer.size(), bytes, stored_compressed};
    write_count_++;
    variable_files_created_++;
    UpdatePeakLocked();
  }
  FileOpenFlags flags;
  flags.read = false;
  flags.write = true;
  flags.create = true;
  flags.truncate = true;
  Status status;
  uint64_t ns = TimedNs([&]() {
    auto file = fs_.Open(VariableFilePath(id), flags);
    if (!file.ok()) {
      status = file.status();
      return;
    }
    IoRequest request;
    request.kind = IoRequest::Kind::kWrite;
    request.file = file.value().get();
    request.buffer = const_cast<void *>(data);
    request.bytes = bytes;
    request.offset = 0;
    // The handle must outlive the submission; Wait() before `file` dies.
    status = io_backend_->Submit(std::move(request))->Wait();
  });
  if (!status.ok()) {
    // Roll back the registration and drop any partially written file so the
    // failed spill leaves no temp-storage footprint.
    FreeVariableBlock(id);
    return status;
  }
  RecordWrite(bytes, buffer.size(), ns);
  return Status::OK();
}

Status TemporaryFileManager::ReadVariableBlock(block_id_t id,
                                               FileBuffer &buffer) {
  TraceSpan span("spill.read", "io", buffer.size());
  VariableBlockInfo info;
  {
    ScopedLock guard(lock_);
    auto it = variable_blocks_.find(id);
    if (it == variable_blocks_.end()) {
      return Status::Internal("read of unknown variable temp block " +
                              std::to_string(id));
    }
    info = it->second;
  }
  if (info.raw_size != buffer.size()) {
    return Status::Internal("variable temp block size mismatch");
  }
  FileOpenFlags flags;
  Status status;
  uint64_t ns = TimedNs([&]() {
    auto file = fs_.Open(VariableFilePath(id), flags);
    if (!file.ok()) {
      status = file.status();
      return;
    }
    if (info.compressed) {
      std::vector<data_t> scratch(info.stored_size);
      status = file.value()->Read(scratch.data(), info.stored_size, 0);
      if (status.ok()) {
        status = DecompressSpillFrame(scratch.data(), info.stored_size,
                                      buffer.data(), buffer.size());
      }
    } else {
      status = file.value()->Read(buffer.data(), buffer.size(), 0);
    }
  });
  SSAGG_RETURN_NOT_OK(status);
  FreeVariableBlock(id);
  {
    ScopedLock guard(lock_);
    read_count_++;
  }
  RecordRead(info.stored_size, ns);
  // Direct read (no backend Submit): record the blocked latency here.
  MetricsRegistry::Global().Record(hist_spill_read_latency_, ns);
  return Status::OK();
}

void TemporaryFileManager::FreeVariableBlock(block_id_t id) {
  ScopedLock guard(lock_);
  auto it = variable_blocks_.find(id);
  if (it == variable_blocks_.end()) {
    return;
  }
  variable_blocks_.erase(it);
  (void)fs_.RemoveFile(VariableFilePath(id));
}

idx_t TemporaryFileManager::UsedSlots() const {
  ScopedLock guard(lock_);
  return used_slots_;
}

idx_t TemporaryFileManager::VariableBlockCount() const {
  ScopedLock guard(lock_);
  return variable_blocks_.size();
}

idx_t TemporaryFileManager::WriteCount() const {
  ScopedLock guard(lock_);
  return write_count_;
}

idx_t TemporaryFileManager::ReadCount() const {
  ScopedLock guard(lock_);
  return read_count_;
}

idx_t TemporaryFileManager::SlotReuses() const {
  ScopedLock guard(lock_);
  return slot_reuses_;
}

idx_t TemporaryFileManager::VariableFilesCreated() const {
  ScopedLock guard(lock_);
  return variable_files_created_;
}

idx_t TemporaryFileManager::CurrentSize() const {
  ScopedLock guard(lock_);
  idx_t variable = 0;
  for (auto &entry : variable_blocks_) {
    variable += entry.second.stored_size;
  }
  return used_slots_ * kPageSize + variable;
}

idx_t TemporaryFileManager::PeakSize() const {
  ScopedLock guard(lock_);
  return peak_size_;
}

void TemporaryFileManager::UpdatePeakLocked() {
  idx_t variable = 0;
  for (auto &entry : variable_blocks_) {
    variable += entry.second.stored_size;
  }
  peak_size_ = std::max(peak_size_, used_slots_ * kPageSize + variable);
}

}  // namespace ssagg