#include "buffer/temporary_file_manager.h"

#include <algorithm>

#include "common/constants.h"

namespace ssagg {

TemporaryFileManager::~TemporaryFileManager() {
  std::lock_guard<std::mutex> guard(lock_);
  if (fixed_file_) {
    std::string path = fixed_file_->path();
    fixed_file_.reset();
    (void)FileSystem::RemoveFile(path);
  }
  for (auto &entry : variable_sizes_) {
    (void)FileSystem::RemoveFile(VariableFilePath(entry.first));
  }
}

Status TemporaryFileManager::EnsureFixedFile() {
  if (fixed_file_) {
    return Status::OK();
  }
  SSAGG_RETURN_NOT_OK(FileSystem::CreateDirectories(directory_));
  FileOpenFlags flags;
  flags.read = true;
  flags.write = true;
  flags.create = true;
  flags.truncate = true;
  SSAGG_ASSIGN_OR_RETURN(fixed_file_,
                         FileSystem::Open(directory_ + "/ssagg_temp.tmp",
                                          flags));
  return Status::OK();
}

Result<idx_t> TemporaryFileManager::WriteFixedBlock(const FileBuffer &buffer) {
  SSAGG_DASSERT(buffer.size() == kPageSize);
  idx_t slot;
  {
    std::lock_guard<std::mutex> guard(lock_);
    SSAGG_RETURN_NOT_OK(EnsureFixedFile());
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = slot_count_++;
    }
    used_slots_++;
    write_count_++;
    UpdatePeak();
  }
  SSAGG_RETURN_NOT_OK(
      fixed_file_->Write(buffer.data(), kPageSize, slot * kPageSize));
  return slot;
}

Status TemporaryFileManager::ReadFixedBlock(idx_t slot, FileBuffer &buffer) {
  SSAGG_DASSERT(buffer.size() == kPageSize);
  SSAGG_RETURN_NOT_OK(
      fixed_file_->Read(buffer.data(), kPageSize, slot * kPageSize));
  FreeFixedSlot(slot);
  {
    std::lock_guard<std::mutex> guard(lock_);
    read_count_++;
  }
  return Status::OK();
}

void TemporaryFileManager::FreeFixedSlot(idx_t slot) {
  std::lock_guard<std::mutex> guard(lock_);
  free_slots_.push_back(slot);
  SSAGG_DASSERT(used_slots_ > 0);
  used_slots_--;
}

std::string TemporaryFileManager::VariableFilePath(block_id_t id) const {
  return directory_ + "/ssagg_temp_var_" + std::to_string(id) + ".tmp";
}

Status TemporaryFileManager::WriteVariableBlock(block_id_t id,
                                                const FileBuffer &buffer) {
  {
    std::lock_guard<std::mutex> guard(lock_);
    SSAGG_RETURN_NOT_OK(FileSystem::CreateDirectories(directory_));
    variable_sizes_[id] = buffer.size();
    write_count_++;
    UpdatePeak();
  }
  FileOpenFlags flags;
  flags.read = false;
  flags.write = true;
  flags.create = true;
  flags.truncate = true;
  SSAGG_ASSIGN_OR_RETURN(auto file,
                         FileSystem::Open(VariableFilePath(id), flags));
  return file->Write(buffer.data(), buffer.size(), 0);
}

Status TemporaryFileManager::ReadVariableBlock(block_id_t id,
                                               FileBuffer &buffer) {
  FileOpenFlags flags;
  SSAGG_ASSIGN_OR_RETURN(auto file,
                         FileSystem::Open(VariableFilePath(id), flags));
  SSAGG_RETURN_NOT_OK(file->Read(buffer.data(), buffer.size(), 0));
  file.reset();
  FreeVariableBlock(id);
  {
    std::lock_guard<std::mutex> guard(lock_);
    read_count_++;
  }
  return Status::OK();
}

void TemporaryFileManager::FreeVariableBlock(block_id_t id) {
  std::lock_guard<std::mutex> guard(lock_);
  auto it = variable_sizes_.find(id);
  if (it == variable_sizes_.end()) {
    return;
  }
  variable_sizes_.erase(it);
  (void)FileSystem::RemoveFile(VariableFilePath(id));
}

idx_t TemporaryFileManager::CurrentSize() const {
  std::lock_guard<std::mutex> guard(lock_);
  idx_t variable = 0;
  for (auto &entry : variable_sizes_) {
    variable += entry.second;
  }
  return used_slots_ * kPageSize + variable;
}

idx_t TemporaryFileManager::PeakSize() const {
  std::lock_guard<std::mutex> guard(lock_);
  return peak_size_;
}

void TemporaryFileManager::UpdatePeak() {
  // Called with lock_ held.
  idx_t variable = 0;
  for (auto &entry : variable_sizes_) {
    variable += entry.second;
  }
  peak_size_ = std::max(peak_size_, used_slots_ * kPageSize + variable);
}

}  // namespace ssagg
