#ifndef SSAGG_BUFFER_BLOCK_HANDLE_H_
#define SSAGG_BUFFER_BLOCK_HANDLE_H_

#include <atomic>
#include <memory>

#include "buffer/file_buffer.h"
#include "common/constants.h"
#include "common/mutex.h"
#include "common/status.h"

namespace ssagg {

class BufferManager;
class FileBlockManager;

/// What kind of data a block holds; drives how it is evicted and reloaded
/// (Section III distinguishes persistent pages and the three temporary
/// allocation types).
enum class BlockKind : uint8_t {
  /// Backed by the database file; eviction drops the buffer without I/O.
  kPersistent,
  /// Temporary page of exactly kPageSize; eviction writes it to a slot in the
  /// shared temporary file.
  kTemporaryFixed,
  /// Temporary allocation of arbitrary size; eviction writes it to its own
  /// temporary file.
  kTemporaryVariable,
};

/// kLoading marks a block whose contents are being read back by an
/// asynchronous prefetch (BufferManager::Prefetch): the buffer is allocated
/// and owned by the handle but not yet valid. Pin waits on load_cv_; the
/// eviction scan skips any state but kLoaded.
enum class BlockState : uint8_t { kUnloaded, kLoading, kLoaded };

/// Shared state of one buffer-managed block. Operators hold
/// shared_ptr<BlockHandle> and pin it (obtaining a BufferHandle) whenever
/// they need the memory; between pins the buffer manager is free to evict.
class BlockHandle : public std::enable_shared_from_this<BlockHandle> {
 public:
  BlockHandle(BufferManager &manager, block_id_t id, BlockKind kind,
              idx_t size, bool can_destroy, FileBlockManager *block_manager)
      : manager_(manager),
        id_(id),
        kind_(kind),
        size_(size),
        can_destroy_(can_destroy),
        block_manager_(block_manager) {}

  ~BlockHandle();

  BlockHandle(const BlockHandle &) = delete;
  BlockHandle &operator=(const BlockHandle &) = delete;

  block_id_t id() const { return id_; }
  BlockKind kind() const { return kind_; }
  idx_t size() const { return size_; }
  bool IsPersistent() const { return kind_ == BlockKind::kPersistent; }

  /// Current number of pins. The block can only be evicted at zero.
  int32_t Readers() const { return readers_.load(std::memory_order_relaxed); }

 private:
  friend class BufferManager;
  friend class BufferHandle;

  BufferManager &manager_;
  block_id_t id_;
  BlockKind kind_;
  idx_t size_;
  /// If true, eviction simply drops the contents (the owner can recreate
  /// them); no temporary file I/O happens and a later Pin fails.
  bool can_destroy_;
  /// Only set for persistent blocks: where to read the block from.
  FileBlockManager *block_manager_;

  /// Protects the block's load/spill state below. Lock order: lock_ may be
  /// held while acquiring BufferManager::queue_lock_ and
  /// TemporaryFileManager::lock_ (spilling), never the other way around
  /// (eviction only try-locks block handles); see DESIGN.md section 9.
  Mutex lock_;
  BlockState state_ SSAGG_GUARDED_BY(lock_) = BlockState::kUnloaded;
  std::unique_ptr<FileBuffer> buffer_ SSAGG_GUARDED_BY(lock_);
  std::atomic<int32_t> readers_{0};
  /// Incremented on every unpin; eviction-queue entries remember the value
  /// they were enqueued with so stale entries can be skipped (approximate
  /// LRU with lazy invalidation).
  std::atomic<uint64_t> eviction_seq_{0};
  /// Slot in the shared temporary file while spilled (fixed-size blocks).
  idx_t temp_slot_ SSAGG_GUARDED_BY(lock_) = kInvalidIndex;
  /// True once a variable-size block has been written to its own temp file.
  bool spilled_to_own_file_ SSAGG_GUARDED_BY(lock_) = false;
  /// Set when the contents were dropped (can_destroy) or destroyed.
  bool destroyed_ SSAGG_GUARDED_BY(lock_) = false;
  /// Signalled when an asynchronous load (state kLoading) finishes.
  CondVar load_cv_;
  /// Poison left by a failed asynchronous load: the block kept its spill
  /// state, and the next Pin returns (and clears) this error — a prefetch
  /// must never swallow an I/O failure.
  Status load_error_ SSAGG_GUARDED_BY(lock_);
};

}  // namespace ssagg

#endif  // SSAGG_BUFFER_BLOCK_HANDLE_H_
