#ifndef SSAGG_BUFFER_FILE_BLOCK_MANAGER_H_
#define SSAGG_BUFFER_FILE_BLOCK_MANAGER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "buffer/file_buffer.h"
#include "common/file_system.h"
#include "common/status.h"

namespace ssagg {

/// Persistent block storage: a database file organized as an array of
/// kPageSize blocks. Persistent pages never have dirty state (the paper's
/// Section III "Compatibility": pages are always fully rewritten because
/// columnar data is stored compressed), so evicting a persistent page is
/// free — the contents are already replicated in this file.
class FileBlockManager {
 public:
  static Result<std::unique_ptr<FileBlockManager>> Create(
      const std::string &path, FileSystem &fs = FileSystem::Default());
  static Result<std::unique_ptr<FileBlockManager>> Open(
      const std::string &path, FileSystem &fs = FileSystem::Default());

  /// Reserves a fresh block id.
  block_id_t AllocateBlock();

  /// Writes the full contents of `buffer` (kPageSize bytes) to the block.
  Status WriteBlock(block_id_t id, const FileBuffer &buffer);

  /// Reads a block into `buffer`.
  Status ReadBlock(block_id_t id, FileBuffer &buffer);

  Status Sync();

  idx_t BlockCount() const { return next_block_id_.load(); }
  const std::string &path() const { return path_; }

 private:
  FileBlockManager(FileSystem &fs, std::unique_ptr<FileHandle> file,
                   std::string path, block_id_t next_block_id)
      : fs_(fs),
        file_(std::move(file)),
        path_(std::move(path)),
        next_block_id_(next_block_id) {}

  FileSystem &fs_;
  std::unique_ptr<FileHandle> file_;
  std::string path_;
  std::atomic<block_id_t> next_block_id_;
};

}  // namespace ssagg

#endif  // SSAGG_BUFFER_FILE_BLOCK_MANAGER_H_
