#ifndef SSAGG_STORAGE_DATA_TABLE_H_
#define SSAGG_STORAGE_DATA_TABLE_H_

#include <map>
#include <memory>
#include <vector>

#include "buffer/buffer_manager.h"
#include "buffer/file_block_manager.h"
#include "common/mutex.h"
#include "common/types.h"
#include "common/vector.h"
#include "execution/operator.h"

namespace ssagg {

/// Columnar persistent table storage. Data is split into row groups of up
/// to kVectorSize rows; each column of a row group is compressed into a
/// segment (see compression/codec.h), and segments are packed into the
/// database file's fixed-size blocks. Scans pin blocks through the unified
/// buffer manager, so persistent pages compete for memory with temporary
/// query intermediates and are evicted for free (their contents stay in
/// the database file) — the interplay Section VII's Figure 4 studies.
class DataTable {
 public:
  /// Rows per row group; one segment per column per row group. Matches the
  /// vectorized scan granularity, so each scanned chunk decompresses each
  /// column segment exactly once.
  static constexpr idx_t kRowGroupSize = kVectorSize;

  DataTable(FileBlockManager &block_manager, Schema schema);

  const Schema &schema() const { return schema_; }
  idx_t RowCount() const { return row_count_; }
  idx_t BlockCount() const { return block_count_; }
  /// Total compressed bytes (for compression-ratio reporting).
  idx_t CompressedBytes() const { return compressed_bytes_; }

  /// Appends rows (any chunk size; buffered into row groups).
  Status Append(const DataChunk &chunk);
  /// Flushes buffered rows and the current block; must be called once after
  /// the last Append and before scanning.
  Status FinalizeAppend();

  /// Morsel-parallel scan over the given columns, pinning blocks through
  /// the given buffer manager (persistent pages stay cached in its pool
  /// across queries until evicted). The source holds references to this
  /// table and the buffer manager; both must outlive it.
  std::unique_ptr<DataSource> MakeScanSource(BufferManager &buffer_manager,
                                             std::vector<idx_t> columns);

  /// Drops this table's cached block handles for the given pool. MUST be
  /// called before destroying a BufferManager that scanned this table:
  /// cached handles reference the pool and releasing them afterwards is
  /// undefined behaviour.
  void ReleaseHandleCache(const BufferManager &buffer_manager);

 private:
  friend class TableScanSource;

  struct SegmentPointer {
    block_id_t block;
    uint32_t offset;
    uint32_t size;
  };
  struct RowGroupMeta {
    idx_t rows;
    std::vector<SegmentPointer> columns;
  };

  Status FlushStaging();
  Status WriteSegment(const std::vector<data_t> &bytes, SegmentPointer *out);
  Status FlushCurrentBlock();
  /// Returns the (lazily registered) handle for a block in the given pool.
  /// One handle cache per buffer manager, so different pools each cache the
  /// table independently.
  std::shared_ptr<BlockHandle> BlockHandleFor(BufferManager &buffer_manager,
                                              block_id_t block);

  FileBlockManager &block_manager_;
  Schema schema_;

  idx_t row_count_ = 0;
  idx_t block_count_ = 0;
  idx_t compressed_bytes_ = 0;
  std::vector<RowGroupMeta> row_groups_;

  // Write state.
  std::unique_ptr<DataChunk> staging_;
  std::unique_ptr<FileBuffer> current_block_;
  block_id_t current_block_id_ = kInvalidBlockId;
  idx_t current_block_offset_ = 0;
  bool finalized_ = false;

  /// Guards only the handle cache: scans of one table from many threads
  /// register block handles lazily. All other members are written by the
  /// single-threaded load phase and read-only afterwards.
  Mutex handles_lock_;
  std::map<const BufferManager *,
           std::map<block_id_t, std::shared_ptr<BlockHandle>>>
      handles_ SSAGG_GUARDED_BY(handles_lock_);
};

}  // namespace ssagg

#endif  // SSAGG_STORAGE_DATA_TABLE_H_
