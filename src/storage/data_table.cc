#include "storage/data_table.h"

#include <atomic>
#include <cstring>

#include "compression/codec.h"

namespace ssagg {

//===----------------------------------------------------------------------===//
// Scan source
//===----------------------------------------------------------------------===//

/// Morsel-parallel scan: worker threads claim row groups through an atomic
/// counter; each GetData decompresses one row group of the projected
/// columns into the output chunk.
class TableScanSource : public DataSource {
 public:
  TableScanSource(DataTable &table, BufferManager &buffer_manager,
                  std::vector<idx_t> columns)
      : table_(table),
        buffer_manager_(buffer_manager),
        columns_(std::move(columns)) {}

  std::vector<LogicalTypeId> Types() const override {
    std::vector<LogicalTypeId> types;
    for (idx_t c : columns_) {
      types.push_back(table_.schema()[c].type);
    }
    return types;
  }

  Result<std::unique_ptr<LocalSourceState>> InitLocal() override {
    return std::unique_ptr<LocalSourceState>(new LocalState());
  }

  Result<bool> GetData(DataChunk &chunk, LocalSourceState &state) override {
    auto &local = static_cast<LocalState &>(state);
    idx_t group = next_group_.fetch_add(1, std::memory_order_relaxed);
    if (group >= table_.row_groups_.size()) {
      return false;
    }
    const auto &meta = table_.row_groups_[group];
    for (idx_t ci = 0; ci < columns_.size(); ci++) {
      const auto &ptr = meta.columns[columns_[ci]];
      auto handle = table_.BlockHandleFor(buffer_manager_, ptr.block);
      SSAGG_ASSIGN_OR_RETURN(auto pin, buffer_manager_.Pin(handle));
      SSAGG_RETURN_NOT_OK(DecompressSegment(pin.Ptr() + ptr.offset, ptr.size,
                                            table_.schema()[columns_[ci]].type,
                                            local.decoded));
      if (local.decoded.count != meta.rows) {
        return Status::IOError("segment row count mismatch");
      }
      CopyDecodedRows(local.decoded, 0, meta.rows, chunk.column(ci));
    }
    chunk.SetCount(meta.rows);
    return true;
  }

  [[nodiscard]] idx_t EstimatedRowCount() const override {
    return table_.RowCount();
  }

  Status Rewind() override {
    next_group_.store(0, std::memory_order_relaxed);
    return Status::OK();
  }

 private:
  struct LocalState : public LocalSourceState {
    DecodedSegment decoded;
  };

  DataTable &table_;
  BufferManager &buffer_manager_;
  std::vector<idx_t> columns_;
  std::atomic<idx_t> next_group_{0};
};

//===----------------------------------------------------------------------===//
// DataTable
//===----------------------------------------------------------------------===//

DataTable::DataTable(FileBlockManager &block_manager, Schema schema)
    : block_manager_(block_manager), schema_(std::move(schema)) {
  std::vector<LogicalTypeId> types;
  for (const auto &col : schema_) {
    types.push_back(col.type);
  }
  staging_ = std::make_unique<DataChunk>(types);
}

Status DataTable::Append(const DataChunk &chunk) {
  SSAGG_ASSERT(!finalized_);
  SSAGG_ASSERT(chunk.ColumnCount() == schema_.size());
  idx_t appended = 0;
  while (appended < chunk.size()) {
    idx_t room = kRowGroupSize - staging_->size();
    idx_t n = std::min(room, chunk.size() - appended);
    idx_t base = staging_->size();
    for (idx_t c = 0; c < schema_.size(); c++) {
      Vector &dst = staging_->column(c);
      const Vector &src = chunk.column(c);
      if (src.type() == LogicalTypeId::kVarchar) {
        for (idx_t i = 0; i < n; i++) {
          if (!src.validity().RowIsValid(appended + i)) {
            dst.validity().SetInvalid(base + i);
            dst.Values<string_t>()[base + i] = string_t();
          } else {
            dst.SetString(base + i,
                          src.Values<string_t>()[appended + i].View());
          }
        }
      } else {
        std::memcpy(dst.data() + base * dst.width(),
                    src.data() + appended * src.width(), n * src.width());
        for (idx_t i = 0; i < n; i++) {
          if (!src.validity().RowIsValid(appended + i)) {
            dst.validity().SetInvalid(base + i);
          }
        }
      }
    }
    staging_->SetCount(base + n);
    appended += n;
    if (staging_->size() == kRowGroupSize) {
      SSAGG_RETURN_NOT_OK(FlushStaging());
    }
  }
  return Status::OK();
}

Status DataTable::FlushStaging() {
  if (staging_->size() == 0) {
    return Status::OK();
  }
  RowGroupMeta meta;
  meta.rows = staging_->size();
  std::vector<data_t> bytes;
  for (idx_t c = 0; c < schema_.size(); c++) {
    bytes.clear();
    SSAGG_RETURN_NOT_OK(
        CompressSegment(staging_->column(c), staging_->size(), bytes));
    SegmentPointer ptr;
    SSAGG_RETURN_NOT_OK(WriteSegment(bytes, &ptr));
    meta.columns.push_back(ptr);
    compressed_bytes_ += bytes.size();
  }
  row_count_ += meta.rows;
  row_groups_.push_back(std::move(meta));
  staging_->Reset();
  return Status::OK();
}

Status DataTable::WriteSegment(const std::vector<data_t> &bytes,
                               SegmentPointer *out) {
  if (bytes.size() > kPageSize) {
    return Status::InvalidArgument(
        "column segment larger than a page; reduce the row group size");
  }
  if (!current_block_ ||
      current_block_offset_ + bytes.size() > kPageSize) {
    SSAGG_RETURN_NOT_OK(FlushCurrentBlock());
    current_block_ = std::make_unique<FileBuffer>(kPageSize);
    std::memset(current_block_->data(), 0, kPageSize);
    current_block_id_ = block_manager_.AllocateBlock();
    current_block_offset_ = 0;
  }
  std::memcpy(current_block_->data() + current_block_offset_, bytes.data(),
              bytes.size());
  out->block = current_block_id_;
  out->offset = static_cast<uint32_t>(current_block_offset_);
  out->size = static_cast<uint32_t>(bytes.size());
  current_block_offset_ += bytes.size();
  return Status::OK();
}

Status DataTable::FlushCurrentBlock() {
  if (!current_block_) {
    return Status::OK();
  }
  SSAGG_RETURN_NOT_OK(
      block_manager_.WriteBlock(current_block_id_, *current_block_));
  block_count_++;
  current_block_.reset();
  return Status::OK();
}

Status DataTable::FinalizeAppend() {
  SSAGG_RETURN_NOT_OK(FlushStaging());
  SSAGG_RETURN_NOT_OK(FlushCurrentBlock());
  SSAGG_RETURN_NOT_OK(block_manager_.Sync());
  finalized_ = true;
  return Status::OK();
}

std::shared_ptr<BlockHandle> DataTable::BlockHandleFor(
    BufferManager &buffer_manager, block_id_t block) {
  ScopedLock guard(handles_lock_);
  auto &pool_handles = handles_[&buffer_manager];
  auto it = pool_handles.find(block);
  if (it == pool_handles.end()) {
    it = pool_handles
             .emplace(block, buffer_manager.RegisterPersistentBlock(
                                 block_manager_, block))
             .first;
  }
  return it->second;
}

void DataTable::ReleaseHandleCache(const BufferManager &buffer_manager) {
  ScopedLock guard(handles_lock_);
  handles_.erase(&buffer_manager);
}

std::unique_ptr<DataSource> DataTable::MakeScanSource(
    BufferManager &buffer_manager, std::vector<idx_t> columns) {
  SSAGG_ASSERT(finalized_);
  return std::make_unique<TableScanSource>(*this, buffer_manager,
                                           std::move(columns));
}

}  // namespace ssagg
