#ifndef SSAGG_CORE_ROW_MATCHER_H_
#define SSAGG_CORE_ROW_MATCHER_H_

#include <vector>

#include "common/vector.h"
#include "layout/tuple_data_layout.h"

namespace ssagg {

/// Column-at-a-time group-key matcher for the vectorized probe pipeline.
///
/// Where the scalar path compared one input row against one candidate row
/// with all columns inside the loop, the matcher flips the loops: each pass
/// compares ONE layout column across the WHOLE candidate selection, using a
/// type-specialized kernel, and compacts the selection to the survivors
/// before moving to the next column. The stored 64-bit hash (a hidden
/// layout column) is always the first pass: it is a cheap fixed-width
/// compare that filters almost all salt collisions before any group column
/// — and for multi-column or string keys it replaces several expensive
/// passes with one.
///
/// NULL semantics are those of grouping: NULL == NULL matches, NULL vs
/// non-NULL does not.
class RowMatcher {
 public:
  /// Prepares match passes for the layout: the hash column first, then the
  /// `group_count` leading group columns, dispatched on type width.
  void Initialize(const TupleDataLayout &layout, idx_t group_count,
                  idx_t hash_column);

  /// Compares the selected input rows of `chunk` against their candidate
  /// rows (`row_ptrs`, indexed by absolute row index like the selection's
  /// entries). On return `sel` is compacted in place to the rows whose
  /// candidate matched on every column; rows that failed some pass are
  /// appended to `no_match`. Returns the match count (== sel.size()).
  idx_t Match(const DataChunk &chunk, data_ptr_t *const row_ptrs,
              SelectionVector &sel, SelectionVector &no_match);

  /// Column passes executed so far (for stats: one pass compares one
  /// column across one selection).
  uint64_t compare_passes() const { return compare_passes_; }

 private:
  using MatchFn = idx_t (*)(const Vector &vec, const TupleDataLayout &layout,
                            idx_t col, data_ptr_t *const row_ptrs,
                            idx_t *sel, idx_t count, idx_t *no_match,
                            idx_t &no_match_count);

  struct MatchPass {
    idx_t column;
    MatchFn fn;
  };

  const TupleDataLayout *layout_ = nullptr;
  std::vector<MatchPass> passes_;
  uint64_t compare_passes_ = 0;
};

}  // namespace ssagg

#endif  // SSAGG_CORE_ROW_MATCHER_H_
