#include "core/ungrouped_aggregate.h"

#include <cstring>

namespace ssagg {

Result<std::unique_ptr<PhysicalUngroupedAggregate>>
PhysicalUngroupedAggregate::Create(std::vector<LogicalTypeId> input_types,
                                   std::vector<AggregateRequest> aggregates) {
  std::unique_ptr<PhysicalUngroupedAggregate> op(
      new PhysicalUngroupedAggregate(std::move(input_types)));
  for (const auto &req : aggregates) {
    AggregateEntry entry;
    entry.request = req;
    LogicalTypeId input_type = LogicalTypeId::kInt64;
    if (req.input_column != kInvalidIndex) {
      if (req.input_column >= op->input_types_.size()) {
        return Status::InvalidArgument("aggregate input column out of range");
      }
      input_type = op->input_types_[req.input_column];
    }
    bool string_input = input_type == LogicalTypeId::kVarchar;
    bool string_capable = req.kind == AggregateKind::kMin ||
                          req.kind == AggregateKind::kMax ||
                          req.kind == AggregateKind::kAnyValue;
    if (string_input && string_capable) {
      entry.is_string = true;
      entry.string_index = op->string_state_count_++;
      entry.result_type = LogicalTypeId::kVarchar;
    } else if (string_input && req.kind == AggregateKind::kCount) {
      // COUNT over strings only needs validity; reuse the numeric path with
      // a count-only function.
      SSAGG_ASSIGN_OR_RETURN(
          entry.function,
          GetAggregateFunction(AggregateKind::kCount, LogicalTypeId::kInt64));
      entry.state_offset = op->total_state_width_;
      op->total_state_width_ += entry.function.state_width;
      entry.result_type = entry.function.result_type;
      // CountUpdate only reads validity, which is type-agnostic.
    } else {
      SSAGG_ASSIGN_OR_RETURN(entry.function,
                             GetAggregateFunction(req.kind, input_type));
      entry.state_offset = op->total_state_width_;
      op->total_state_width_ += entry.function.state_width;
      entry.result_type = entry.function.result_type;
    }
    op->aggregates_.push_back(entry);
  }
  op->global_states_.assign(std::max<idx_t>(op->total_state_width_, 1), 0);
  op->global_strings_.resize(op->string_state_count_);
  return op;
}

std::vector<LogicalTypeId> PhysicalUngroupedAggregate::OutputTypes() const {
  std::vector<LogicalTypeId> types;
  for (const auto &entry : aggregates_) {
    types.push_back(entry.result_type);
  }
  return types;
}

Result<std::unique_ptr<LocalSinkState>>
PhysicalUngroupedAggregate::InitLocal() {
  auto state = std::make_unique<LocalState>();
  state->states.assign(std::max<idx_t>(total_state_width_, 1), 0);
  state->strings.resize(string_state_count_);
  return std::unique_ptr<LocalSinkState>(std::move(state));
}

void PhysicalUngroupedAggregate::UpdateString(const AggregateEntry &entry,
                                              const Vector &input,
                                              idx_t count,
                                              StringState &state) const {
  for (idx_t i = 0; i < count; i++) {
    if (!input.validity().RowIsValid(i)) {
      continue;
    }
    auto value = input.Values<string_t>()[i].View();
    switch (entry.request.kind) {
      case AggregateKind::kAnyValue:
        if (!state.value) {
          state.value = std::string(value);
        }
        return;  // first value wins; nothing more to do in this chunk
      case AggregateKind::kMin:
        if (!state.value || value < *state.value) {
          state.value = std::string(value);
        }
        break;
      case AggregateKind::kMax:
        if (!state.value || value > *state.value) {
          state.value = std::string(value);
        }
        break;
      default:
        SSAGG_DASSERT(false);
    }
  }
}

void PhysicalUngroupedAggregate::CombineString(const AggregateEntry &entry,
                                               const StringState &src,
                                               StringState &dst) const {
  if (!src.value) {
    return;
  }
  switch (entry.request.kind) {
    case AggregateKind::kAnyValue:
      if (!dst.value) {
        dst.value = src.value;
      }
      break;
    case AggregateKind::kMin:
      if (!dst.value || *src.value < *dst.value) {
        dst.value = src.value;
      }
      break;
    case AggregateKind::kMax:
      if (!dst.value || *src.value > *dst.value) {
        dst.value = src.value;
      }
      break;
    default:
      SSAGG_DASSERT(false);
  }
}

Status PhysicalUngroupedAggregate::Sink(DataChunk &chunk,
                                        LocalSinkState &state) {
  auto &local = static_cast<LocalState &>(state);
  // All rows of the chunk update the same state.
  std::vector<data_ptr_t> states(chunk.size());
  for (const auto &entry : aggregates_) {
    if (entry.is_string) {
      UpdateString(entry, chunk.column(entry.request.input_column),
                   chunk.size(), local.strings[entry.string_index]);
      continue;
    }
    data_ptr_t ptr = local.states.data() + entry.state_offset;
    std::fill(states.begin(), states.end(), ptr);
    const Vector *arg = entry.request.input_column == kInvalidIndex
                            ? nullptr
                            : &chunk.column(entry.request.input_column);
    entry.function.update(arg, nullptr, states.data(), chunk.size());
  }
  return Status::OK();
}

Status PhysicalUngroupedAggregate::Combine(LocalSinkState &state) {
  auto &local = static_cast<LocalState &>(state);
  ScopedLock guard(lock_);
  has_input_ = true;
  for (const auto &entry : aggregates_) {
    if (entry.is_string) {
      CombineString(entry, local.strings[entry.string_index],
                    global_strings_[entry.string_index]);
    } else {
      entry.function.combine(local.states.data() + entry.state_offset,
                             global_states_.data() + entry.state_offset);
    }
  }
  return Status::OK();
}

Status PhysicalUngroupedAggregate::GetResult(DataChunk &out) {
  ScopedLock guard(lock_);
  for (idx_t a = 0; a < aggregates_.size(); a++) {
    const auto &entry = aggregates_[a];
    Vector &result = out.column(a);
    if (entry.is_string) {
      const auto &value = global_strings_[entry.string_index].value;
      if (value) {
        result.SetString(0, *value);
      } else {
        result.validity().SetInvalid(0);
        result.Values<string_t>()[0] = string_t();
      }
    } else {
      entry.function.finalize(global_states_.data() + entry.state_offset,
                              result, 0);
    }
  }
  out.SetCount(1);
  return Status::OK();
}

}  // namespace ssagg
