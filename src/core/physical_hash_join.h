#ifndef SSAGG_CORE_PHYSICAL_HASH_JOIN_H_
#define SSAGG_CORE_PHYSICAL_HASH_JOIN_H_

#include <memory>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/hash.h"
#include "common/mutex.h"
#include "core/aggregate_row_layout.h"
#include "execution/operator.h"
#include "execution/task_executor.h"
#include "layout/partitioned_tuple_data.h"

namespace ssagg {

/// Configuration of the partitioned hash join.
struct HashJoinConfig {
  /// Radix fan-out; both sides are partitioned identically, so each
  /// partition pair joins independently (Grace-style). More partitions keep
  /// the per-partition build table small.
  idx_t radix_bits = 4;
  idx_t build_initial_capacity = 1024;
};

/// External-capable inner hash join built on the same two techniques as the
/// aggregation (the paper's Section IX: "other blocking operators can
/// benefit from the techniques proposed in this paper, such as the join"):
///
///   - both inputs are materialized into radix-partitioned spillable pages
///     through the unified buffer manager (nothing is ever written to a
///     file by the operator itself);
///   - the probe phase processes one partition pair at a time: build a
///     pointer table over the build partition's rows (salted, linear
///     probing — the aggregation's layout machinery), stream the probe
///     partition through it, emit matches, destroy both partitions.
///
/// Like the aggregation, the only memory requirement is that one build
/// partition (plus working pages) fits per concurrent task; everything else
/// spills and reloads transparently, with string keys covered by pointer
/// recomputation.
class PhysicalHashJoin {
 public:
  ~PhysicalHashJoin();

  static Result<std::unique_ptr<PhysicalHashJoin>> Create(
      BufferManager &buffer_manager,
      std::vector<LogicalTypeId> build_types,
      std::vector<idx_t> build_keys,
      std::vector<LogicalTypeId> probe_types,
      std::vector<idx_t> probe_keys, HashJoinConfig config = {});

  /// Output: probe columns first, then build columns.
  std::vector<LogicalTypeId> OutputTypes() const;

  /// Sinks for the two pipelines feeding the join.
  DataSink &build_sink();
  DataSink &probe_sink();

  /// Joins the materialized sides partition-wise in parallel, pushing
  /// result chunks into `output`. Partition pages are destroyed as they
  /// are consumed.
  Status EmitResults(DataSink &output, TaskExecutor &executor);

  idx_t BuildRowCount() const { return build_data_->Count(); }
  idx_t ProbeRowCount() const { return probe_data_->Count(); }

 private:
  class SideSink;

  PhysicalHashJoin(BufferManager &buffer_manager, HashJoinConfig config);

  Status JoinPartition(idx_t partition_idx, DataSink &output,
                       TaskExecutor &executor);

  BufferManager &buffer_manager_;
  HashJoinConfig config_;

  // Materialized row shape of each side: [key columns..., hash, payload
  // columns...] — reusing the aggregation's layout builder with zero
  // aggregates and ANY_VALUE-materialized payloads.
  AggregateRowLayout build_layout_;
  AggregateRowLayout probe_layout_;
  std::vector<LogicalTypeId> build_types_;
  std::vector<LogicalTypeId> probe_types_;
  std::vector<idx_t> build_keys_;
  std::vector<idx_t> probe_keys_;

  std::unique_ptr<SideSink> build_sink_;
  std::unique_ptr<SideSink> probe_sink_;
  std::unique_ptr<PartitionedTupleData> build_data_;
  std::unique_ptr<PartitionedTupleData> probe_data_;
};

}  // namespace ssagg

#endif  // SSAGG_CORE_PHYSICAL_HASH_JOIN_H_
