#include "core/physical_hash_join.h"

#include <cstring>

#include "layout/radix_partitioning.h"

namespace ssagg {

namespace {

/// ANY_VALUE requests for every non-key column: reuses the aggregation's
/// row-layout builder to get [keys..., hash, payload...] rows whose string
/// data lives on spillable heap pages.
std::vector<AggregateRequest> PayloadRequests(
    const std::vector<LogicalTypeId> &types, const std::vector<idx_t> &keys) {
  std::vector<AggregateRequest> requests;
  for (idx_t c = 0; c < types.size(); c++) {
    bool is_key = false;
    for (idx_t k : keys) {
      if (k == c) {
        is_key = true;
        break;
      }
    }
    if (!is_key) {
      requests.push_back({AggregateKind::kAnyValue, c});
    }
  }
  return requests;
}

/// Maps each INPUT column to its layout column (keys first, then sticky
/// payloads in input order).
std::vector<idx_t> InputToLayout(const AggregateRowLayout &layout,
                                 idx_t input_columns) {
  std::vector<idx_t> map(input_columns, kInvalidIndex);
  for (idx_t k = 0; k < layout.group_columns.size(); k++) {
    map[layout.group_columns[k]] = k;
  }
  for (const auto &agg : layout.aggregates) {
    map[agg.request.input_column] = agg.layout_column;
  }
  return map;
}

idx_t NextPowerOfTwo(idx_t n) {
  idx_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

}  // namespace

//===----------------------------------------------------------------------===//
// SideSink: materializes one input into radix-partitioned spillable pages
//===----------------------------------------------------------------------===//

class PhysicalHashJoin::SideSink : public DataSink {
 public:
  SideSink(BufferManager &buffer_manager, const AggregateRowLayout &layout,
           idx_t radix_bits, PartitionedTupleData &global)
      : buffer_manager_(buffer_manager),
        layout_(layout),
        radix_bits_(radix_bits),
        global_(global) {}

  Result<std::unique_ptr<LocalSinkState>> InitLocal() override {
    auto state = std::make_unique<LocalState>();
    state->data = std::make_unique<PartitionedTupleData>(
        buffer_manager_, layout_.layout, radix_bits_);
    state->append_chunk.Initialize(layout_.layout.Types());
    state->hashes.resize(kVectorSize);
    return std::unique_ptr<LocalSinkState>(std::move(state));
  }

  Status Sink(DataChunk &chunk, LocalSinkState &state) override {
    auto &local = static_cast<LocalState &>(state);
    const idx_t count = chunk.size();
    ChunkHash(chunk, layout_.group_columns, local.hashes.data());
    for (idx_t k = 0; k < layout_.group_count; k++) {
      CopyVectorShallow(chunk.column(layout_.group_columns[k]),
                        local.append_chunk.column(k), count);
    }
    auto *hash_values =
        local.append_chunk.column(layout_.hash_column).Values<int64_t>();
    for (idx_t i = 0; i < count; i++) {
      hash_values[i] = static_cast<int64_t>(local.hashes[i]);
    }
    local.append_chunk.column(layout_.hash_column).validity().Reset();
    for (const auto &payload : layout_.aggregates) {
      CopyVectorShallow(chunk.column(payload.request.input_column),
                        local.append_chunk.column(payload.layout_column),
                        count);
    }
    local.append_chunk.SetCount(count);
    SSAGG_RETURN_NOT_OK(local.data->Append(local.append_chunk,
                                           local.hashes.data(), nullptr,
                                           count, nullptr));
    // Unpin after every chunk: nothing references the rows until the join
    // phase, so the pages may spill freely (RAM-oblivious materialization).
    local.data->ReleaseAppendPins();
    return Status::OK();
  }

  Status Combine(LocalSinkState &state) override {
    auto &local = static_cast<LocalState &>(state);
    // global_ is a reference to collection state owned by the join operator,
    // so the capability analysis cannot tie it to lock_; the lock still
    // serializes every Combine into it (the only concurrent access).
    ScopedLock guard(lock_);
    global_.Combine(*local.data);
    return Status::OK();
  }

 private:
  struct LocalState : public LocalSinkState {
    std::unique_ptr<PartitionedTupleData> data;
    DataChunk append_chunk;
    std::vector<hash_t> hashes;
  };

  BufferManager &buffer_manager_;
  const AggregateRowLayout &layout_;
  idx_t radix_bits_;
  PartitionedTupleData &global_;
  Mutex lock_;
};

//===----------------------------------------------------------------------===//
// PhysicalHashJoin
//===----------------------------------------------------------------------===//

PhysicalHashJoin::PhysicalHashJoin(BufferManager &buffer_manager,
                                   HashJoinConfig config)
    : buffer_manager_(buffer_manager), config_(config) {}

PhysicalHashJoin::~PhysicalHashJoin() = default;

DataSink &PhysicalHashJoin::build_sink() { return *build_sink_; }
DataSink &PhysicalHashJoin::probe_sink() { return *probe_sink_; }

Result<std::unique_ptr<PhysicalHashJoin>> PhysicalHashJoin::Create(
    BufferManager &buffer_manager, std::vector<LogicalTypeId> build_types,
    std::vector<idx_t> build_keys, std::vector<LogicalTypeId> probe_types,
    std::vector<idx_t> probe_keys, HashJoinConfig config) {
  if (build_keys.size() != probe_keys.size() || build_keys.empty()) {
    return Status::InvalidArgument("join needs matching key column lists");
  }
  for (idx_t k = 0; k < build_keys.size(); k++) {
    if (build_types[build_keys[k]] != probe_types[probe_keys[k]]) {
      return Status::InvalidArgument("join key types do not match");
    }
  }
  std::unique_ptr<PhysicalHashJoin> join(
      new PhysicalHashJoin(buffer_manager, config));
  join->build_types_ = build_types;
  join->probe_types_ = probe_types;
  join->build_keys_ = build_keys;
  join->probe_keys_ = probe_keys;
  SSAGG_ASSIGN_OR_RETURN(
      join->build_layout_,
      AggregateRowLayout::Build(build_types, build_keys,
                                PayloadRequests(build_types, build_keys)));
  SSAGG_ASSIGN_OR_RETURN(
      join->probe_layout_,
      AggregateRowLayout::Build(probe_types, probe_keys,
                                PayloadRequests(probe_types, probe_keys)));
  join->build_data_ = std::make_unique<PartitionedTupleData>(
      buffer_manager, join->build_layout_.layout, config.radix_bits);
  join->probe_data_ = std::make_unique<PartitionedTupleData>(
      buffer_manager, join->probe_layout_.layout, config.radix_bits);
  join->build_sink_ = std::make_unique<SideSink>(
      buffer_manager, join->build_layout_, config.radix_bits,
      *join->build_data_);
  join->probe_sink_ = std::make_unique<SideSink>(
      buffer_manager, join->probe_layout_, config.radix_bits,
      *join->probe_data_);
  return join;
}

std::vector<LogicalTypeId> PhysicalHashJoin::OutputTypes() const {
  std::vector<LogicalTypeId> types = probe_types_;
  types.insert(types.end(), build_types_.begin(), build_types_.end());
  return types;
}

Status PhysicalHashJoin::JoinPartition(idx_t partition_idx, DataSink &output,
                                       TaskExecutor &executor) {
  TupleDataCollection &build = build_data_->partition(partition_idx);
  TupleDataCollection &probe = probe_data_->partition(partition_idx);
  if (probe.Count() == 0 || build.Count() == 0) {
    // No matches possible; release both sides eagerly.
    build_data_->ReleasePartitionPins(partition_idx);
    build.Reset();
    probe_data_->ReleasePartitionPins(partition_idx);
    probe.Reset();
    return Status::OK();
  }
  // Pointer table over the build partition. Duplicate keys produce multiple
  // entries; probes scan the probe chain until the first empty slot.
  idx_t capacity = NextPowerOfTwo(std::max<idx_t>(
      config_.build_initial_capacity, build.Count() * 2));
  if (capacity > (idx_t(1) << kMaxHashTableBits)) {
    return Status::OutOfMemory(
        "build partition too large for the pointer table; increase the "
        "join's radix bits");
  }
  SSAGG_ASSIGN_OR_RETURN(auto entries_alloc,
                         buffer_manager_.AllocateNonPaged(capacity * 8));
  std::memset(entries_alloc.data(), 0, capacity * 8);
  auto *table = reinterpret_cast<uint64_t *>(entries_alloc.data());
  const idx_t mask = capacity - 1;
  const idx_t build_hash_offset = build_layout_.hash_offset;
  // Pin the whole build partition with string-pointer recomputation: probes
  // compare (possibly string) keys against these rows.
  TupleDataPinnedState build_pins;
  SSAGG_RETURN_NOT_OK(build.PinAllRows(build_pins, [&](data_ptr_t row) {
    hash_t h;
    std::memcpy(&h, row + build_hash_offset, sizeof(hash_t));
    idx_t idx = h & mask;
    while (table[idx] != 0) {
      idx = (idx + 1) & mask;
    }
    table[idx] = MakeEntry(row, ExtractSalt(h));
  }));

  // Column mappings for output assembly.
  std::vector<idx_t> probe_map = InputToLayout(probe_layout_,
                                               probe_types_.size());
  std::vector<idx_t> build_map = InputToLayout(build_layout_,
                                               build_types_.size());

  SSAGG_ASSIGN_OR_RETURN(auto out_local, output.InitLocal());
  DataChunk out(OutputTypes());
  idx_t out_count = 0;
  auto flush = [&]() -> Status {
    if (out_count == 0) {
      return Status::OK();
    }
    out.SetCount(out_count);
    SSAGG_RETURN_NOT_OK(output.Sink(out, *out_local));
    out.Reset();
    out_count = 0;
    return Status::OK();
  };

  // Emits one joined row: probe columns from the gathered chunk, build
  // columns from the (pinned) build row.
  auto emit = [&](const DataChunk &probe_chunk, idx_t probe_row,
                  const_data_ptr_t build_row) -> Status {
    for (idx_t c = 0; c < probe_types_.size(); c++) {
      Vector &dest = out.column(c);
      const Vector &src = probe_chunk.column(probe_map[c]);
      if (!src.validity().RowIsValid(probe_row)) {
        dest.validity().SetInvalid(out_count);
        std::memset(dest.data() + out_count * dest.width(), 0, dest.width());
      } else if (dest.type() == LogicalTypeId::kVarchar) {
        dest.SetString(out_count, src.Values<string_t>()[probe_row].View());
      } else {
        std::memcpy(dest.data() + out_count * dest.width(),
                    src.data() + probe_row * dest.width(), dest.width());
      }
    }
    for (idx_t c = 0; c < build_types_.size(); c++) {
      Vector &dest = out.column(probe_types_.size() + c);
      idx_t lc = build_map[c];
      idx_t offset = build_layout_.layout.ColumnOffset(lc);
      if (!build_layout_.layout.RowIsColumnValid(build_row, lc)) {
        dest.validity().SetInvalid(out_count);
        std::memset(dest.data() + out_count * dest.width(), 0, dest.width());
      } else if (dest.type() == LogicalTypeId::kVarchar) {
        string_t s;
        std::memcpy(&s, build_row + offset, sizeof(string_t));
        dest.SetString(out_count, s.View());
      } else {
        std::memcpy(dest.data() + out_count * dest.width(),
                    build_row + offset, dest.width());
      }
    }
    out_count++;
    return out_count == kVectorSize ? flush() : Status::OK();
  };

  // Compares probe row keys (gathered chunk, key columns 0..K-1) against a
  // build row's key columns.
  auto keys_match = [&](const DataChunk &probe_chunk, idx_t probe_row,
                        const_data_ptr_t build_row) {
    for (idx_t k = 0; k < build_layout_.group_count; k++) {
      const Vector &vec = probe_chunk.column(k);
      bool probe_valid = vec.validity().RowIsValid(probe_row);
      bool build_valid = build_layout_.layout.RowIsColumnValid(build_row, k);
      // SQL semantics: NULL keys never match.
      if (!probe_valid || !build_valid) {
        return false;
      }
      idx_t offset = build_layout_.layout.ColumnOffset(k);
      LogicalTypeId type = build_layout_.layout.ColumnType(k);
      if (TypeIsVarSize(type)) {
        string_t stored;
        std::memcpy(&stored, build_row + offset, sizeof(string_t));
        if (stored != vec.Values<string_t>()[probe_row]) {
          return false;
        }
      } else {
        idx_t width = TypeWidth(type);
        if (std::memcmp(build_row + offset,
                        vec.data() + probe_row * width, width) != 0) {
          return false;
        }
      }
    }
    return true;
  };

  // Stream the probe partition, destroying its pages as we pass them.
  DataChunk probe_chunk(probe_layout_.layout.Types());
  TupleDataScanState scan;
  probe.InitScan(scan, /*destroy_after_scan=*/true);
  idx_t probed = 0;
  while (true) {
    SSAGG_ASSIGN_OR_RETURN(bool more, probe.Scan(scan, probe_chunk, nullptr));
    if (!more) {
      break;
    }
    if ((probed += probe_chunk.size()) % (64 * kVectorSize) <
        probe_chunk.size()) {
      SSAGG_RETURN_NOT_OK(executor.CheckDeadline());
    }
    const auto *hash_values =
        probe_chunk.column(probe_layout_.hash_column).Values<int64_t>();
    for (idx_t r = 0; r < probe_chunk.size(); r++) {
      hash_t h = static_cast<hash_t>(hash_values[r]);
      uint16_t salt = ExtractSalt(h);
      idx_t idx = h & mask;
      while (true) {
        uint64_t entry = table[idx];
        if (entry == 0) {
          break;  // end of the probe chain: no more candidates
        }
        if (EntrySalt(entry) == salt) {
          data_ptr_t row = EntryPointer(entry);
          hash_t row_hash;
          std::memcpy(&row_hash, row + build_hash_offset, sizeof(hash_t));
          if (row_hash == h && keys_match(probe_chunk, r, row)) {
            SSAGG_RETURN_NOT_OK(emit(probe_chunk, r, row));
          }
        }
        idx = (idx + 1) & mask;
      }
    }
  }
  SSAGG_RETURN_NOT_OK(flush());
  SSAGG_RETURN_NOT_OK(output.Combine(*out_local));
  // Both partitions are consumed: free their pages.
  build_pins.Release();
  build.Reset();
  return Status::OK();
}

Status PhysicalHashJoin::EmitResults(DataSink &output,
                                     TaskExecutor &executor) {
  std::vector<std::function<Status()>> tasks;
  for (idx_t p = 0; p < build_data_->PartitionCount(); p++) {
    tasks.push_back([this, p, &output, &executor]() {
      return JoinPartition(p, output, executor);
    });
  }
  return executor.RunTasks(tasks);
}

}  // namespace ssagg
