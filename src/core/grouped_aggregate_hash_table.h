#ifndef SSAGG_CORE_GROUPED_AGGREGATE_HASH_TABLE_H_
#define SSAGG_CORE_GROUPED_AGGREGATE_HASH_TABLE_H_

#include <memory>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/hash.h"
#include "core/aggregate_row_layout.h"
#include "core/row_matcher.h"
#include "layout/partitioned_tuple_data.h"

namespace ssagg {

/// DuckDB-style grouped aggregation hash table (paper Section V):
///
///   - an array of 64-bit entries: 48-bit pointer to the group's row,
///     16-bit salt (the top 16 bits of the group's hash) in the upper bits;
///   - linear probing; the salt is compared before following the pointer,
///     so almost all collisions are resolved without touching the rows;
///   - the rows (group keys + hash + sticky payload + aggregate states)
///     are materialized directly into a radix-partitioned, buffer-managed,
///     spillable page layout: the conversion from column-major input to
///     row-major storage happens while partitioning, and tuples are never
///     copied again;
///   - the group's hash is stored as a hidden layout column, so phase 2
///     never rehashes and resize can rebuild the pointer table from rows.
///
/// The table is single-writer (each execution thread owns one).
class GroupedAggregateHashTable {
 public:
  struct Config {
    /// Entry-array capacity; power of two, at most 2^24 (the offset bits
    /// must not overlap the radix bits). Phase 1 uses a small fixed size.
    idx_t capacity = kPhase1HashTableCapacity;
    idx_t radix_bits = 4;
    /// Phase 2 tables resize instead of resetting.
    bool resizable = false;
    /// Ablation knob: disable the salt comparison (always follow pointers).
    bool use_salt = true;
    /// Ablation knob: process whole chunks through the round-based probe
    /// pipeline (selection vectors, prefetch, column-at-a-time matching,
    /// batched inserts). Off = the row-at-a-time reference path.
    bool vectorized_probe = true;
    /// Fill ratio at which phase-1 tables report NeedsReset (and resizable
    /// tables grow). The paper determined 2/3 experimentally.
    double reset_fill_ratio = kHashTableResetFillRatio;
    /// Perfect-hash fast path (planner-enabled, DESIGN.md section 11): for
    /// a single int64 group key whose sampled value range is small, a flat
    /// pointer cache indexed by `key - direct_min` maps straight to the
    /// group's row, skipping hashing, probing and key matching. Slot
    /// `direct_range` is reserved for the NULL key. Any uncached or
    /// out-of-range key sends that whole chunk down the generic path (which
    /// backfills the cache), so keys the sample never saw stay correct.
    /// direct_range == 0 disables; only meaningful on resizable tables.
    int64_t direct_min = 0;
    idx_t direct_range = 0;
  };

  struct Stats {
    uint64_t probe_steps = 0;     // entry slots inspected
    uint64_t key_compares = 0;    // candidate rows fully key-compared
    uint64_t key_compare_misses = 0;  // comparisons that did not match
    uint64_t inserts = 0;
    uint64_t resets = 0;
    uint64_t resizes = 0;
    // Vectorized-probe pipeline counters.
    uint64_t probe_rounds = 0;         // pipeline rounds over shrinking sels
    uint64_t prefetches = 0;           // software prefetches issued
    uint64_t vectorized_compares = 0;  // candidates matched column-at-a-time
    uint64_t scalar_compares = 0;      // candidates matched row-at-a-time
    // Direct-index (perfect hash) fast-path counters.
    uint64_t direct_hit_rows = 0;        // rows resolved via the pointer cache
    uint64_t direct_fallback_chunks = 0;  // chunks sent to the generic path

    /// Folds another table's counters into this one — every field, so call
    /// sites cannot silently drop newly added counters.
    void Merge(const Stats &other);
  };

  /// Creates a hash table. `input_types` are the operator's input chunk
  /// column types; `group_columns` index the grouping columns within it;
  /// each aggregate's input_column also indexes into it.
  static Result<std::unique_ptr<GroupedAggregateHashTable>> Create(
      BufferManager &buffer_manager,
      const std::vector<LogicalTypeId> &input_types,
      const std::vector<idx_t> &group_columns,
      const std::vector<AggregateRequest> &aggregates, Config config);

  /// Creates a hash table from a prebuilt row layout (used by the operator,
  /// which shares one layout across all thread-local and phase-2 tables).
  static Result<std::unique_ptr<GroupedAggregateHashTable>> Create(
      BufferManager &buffer_manager, const AggregateRowLayout &row_layout,
      Config config);

  /// Aggregates one input chunk: finds or creates each row's group and
  /// folds the aggregate inputs into the group states.
  Status AddChunk(const DataChunk &input);

  /// Phase 2: merges rows of another hash table's materialized data (same
  /// layout) into this table. `layout_chunk` is a gathered chunk of layout
  /// columns and `src_rows` the corresponding source row addresses.
  Status CombineSourceChunk(const DataChunk &layout_chunk,
                            data_ptr_t *src_rows);

  /// Phase-1 check: the table must be reset once two-thirds full.
  bool NeedsReset() const {
    return count_ >= capacity_ * config_.reset_fill_ratio;
  }

  /// Resets the pointer table: the 64-bit entry array is cleared while the
  /// materialized tuples stay in place, and the pages that store them are
  /// unpinned — they are no longer active in the hash table and may now be
  /// spilled by the buffer manager (Section V, "RAM-Oblivious").
  void ClearPointerTable();

  /// Groups currently reachable through the pointer table.
  idx_t Count() const { return count_; }
  idx_t Capacity() const { return capacity_; }

  /// All materialized rows (across resets).
  PartitionedTupleData &data() { return *data_; }

  /// Group hashes of the most recent AddChunk input (valid for its
  /// input.size() leading slots until the next AddChunk). The planner's
  /// sampling phase reads these so estimation never re-hashes.
  [[nodiscard]] const hash_t *LastChunkHashes() const {
    return hashes_.data();
  }

  const TupleDataLayout &layout() const { return row_layout_.layout; }
  const AggregateRowLayout &row_layout() const { return row_layout_; }
  idx_t GroupColumnCount() const { return row_layout_.group_count; }
  const std::vector<AggregateObject> &aggregates() const {
    return row_layout_.aggregates;
  }

  /// Column types of finalized output chunks: group columns, then one
  /// result column per aggregate (in request order).
  std::vector<LogicalTypeId> OutputTypes() const;

  /// Converts gathered layout rows into an output chunk: group values are
  /// copied through, aggregate states finalized. `out` must have
  /// OutputTypes() columns; its string values reference `layout_chunk` and
  /// must be consumed before the next scan.
  void FinalizeChunk(const DataChunk &layout_chunk, data_ptr_t *row_ptrs,
                     DataChunk &out);

  const Stats &stats() const { return stats_; }

 private:
  GroupedAggregateHashTable(BufferManager &buffer_manager, Config config);

  Status Initialize(AggregateRowLayout row_layout);

  /// Probes rows [start, start + count) of `layout_chunk` (which must have
  /// exactly the layout's columns, with the hash column filled from
  /// `hashes`); inserts rows whose group is missing. Writes each row's
  /// group-row address into `row_ptrs_`. Dispatches to the vectorized
  /// pipeline or the scalar reference path per Config::vectorized_probe.
  Status FindOrCreateGroups(const DataChunk &layout_chunk,
                            const hash_t *hashes, idx_t start, idx_t count);

  /// Row-at-a-time reference implementation (ablation / equivalence tests).
  Status FindOrCreateGroupsScalar(const DataChunk &layout_chunk,
                                  const hash_t *hashes, idx_t start,
                                  idx_t count);

  /// The vectorized probe pipeline. Each round over the shrinking set of
  /// unresolved rows: (1) prefetch the probed entries; (2) a tight salt
  /// scan that advances every row to its first empty (claimed) or
  /// salt-matching slot, partitioning the rows into new-group and
  /// match-candidate selections; (3) one batched, partition-aware append
  /// of all new groups (intra-batch duplicate keys collapse via
  /// claim-then-backfill); (4) a column-at-a-time key-match pass over the
  /// candidates; mismatching rows advance one slot and stay for the next
  /// round. The resize/budget guard runs once per round, not per row.
  Status FindOrCreateGroupsVectorized(const DataChunk &layout_chunk,
                                      const hash_t *hashes, idx_t start,
                                      idx_t count);

  /// New groups a phase-1 (non-resizable) table can still take before
  /// reaching the reset threshold.
  idx_t ResetBudget() const {
    auto threshold = static_cast<idx_t>(capacity_ * config_.reset_fill_ratio);
    return threshold > count_ ? threshold - count_ : 0;
  }

  /// Full group-key comparison of input row `r` against a candidate row.
  bool RowMatches(const DataChunk &layout_chunk, idx_t r,
                  const_data_ptr_t row) const;

  /// Direct-index fast path: resolves every row of `input` through the
  /// pointer cache and folds the aggregate updates. Sets *handled = false
  /// (mutating nothing) on the first uncached or out-of-range key.
  Status AddChunkDirect(const DataChunk &input, bool *handled);
  /// After a generic-path chunk: caches the group-row pointer of every
  /// in-range key the chunk resolved.
  void BackfillDirect(const DataChunk &input);

  /// Doubles the entry array and rebuilds it from the materialized rows
  /// (resizable tables only).
  Status Resize();

  uint64_t *entries() {
    return reinterpret_cast<uint64_t *>(entries_alloc_.data());
  }

  BufferManager &buffer_manager_;
  Config config_;

  AggregateRowLayout row_layout_;

  NonPagedAllocation entries_alloc_;
  idx_t capacity_ = 0;
  idx_t mask_ = 0;
  idx_t count_ = 0;

  std::unique_ptr<PartitionedTupleData> data_;

  // Per-chunk scratch.
  DataChunk append_chunk_;
  std::vector<hash_t> hashes_;
  std::vector<data_ptr_t> row_ptrs_;
  std::vector<data_ptr_t> state_ptrs_;
  std::vector<idx_t> sel_scratch_;

  // Vectorized-probe scratch (indexed by absolute chunk row, like
  // row_ptrs_).
  RowMatcher row_matcher_;
  std::vector<idx_t> ht_offsets_;
  std::vector<uint16_t> salts_;
  std::vector<data_ptr_t> new_row_ptrs_;
  SelectionVector remaining_sel_;
  SelectionVector new_group_sel_;
  SelectionVector compare_sel_;
  SelectionVector no_match_sel_;

  // Direct-index pointer cache (slot direct_range = NULL key); emptied on
  // ClearPointerTable (the rows' pins are released with it) and dropped for
  // good after too many consecutive fallback chunks.
  std::vector<data_ptr_t> direct_ptrs_;
  bool direct_enabled_ = false;
  idx_t direct_fallback_streak_ = 0;

  Stats stats_;
};

}  // namespace ssagg

#endif  // SSAGG_CORE_GROUPED_AGGREGATE_HASH_TABLE_H_
