#ifndef SSAGG_CORE_PHYSICAL_HASH_AGGREGATE_H_
#define SSAGG_CORE_PHYSICAL_HASH_AGGREGATE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/mutex.h"
#include "core/aggregate_planner.h"
#include "core/grouped_aggregate_hash_table.h"
#include "execution/operator.h"
#include "execution/task_executor.h"
#include "observe/progress.h"

namespace ssagg {

/// Tuning knobs for the aggregation operator.
struct HashAggregateConfig {
  /// Capacity of the fixed-size thread-local (phase 1) hash table.
  idx_t phase1_capacity = kPhase1HashTableCapacity;
  /// Radix partition fan-out (2^radix_bits partitions). The paper
  /// over-partitions so one fully aggregated partition per thread fits in
  /// memory during phase 2.
  idx_t radix_bits = 4;
  /// Initial capacity of phase-2 (resizable) tables.
  idx_t phase2_initial_capacity = 1024;
  bool use_salt = true;
  /// Ablation knob: route chunks through the vectorized probe pipeline
  /// (selection vectors, prefetch, batched inserts) instead of the
  /// row-at-a-time reference path.
  bool vectorized_probe = true;
  double reset_fill_ratio = kHashTableResetFillRatio;
  /// How thread-local results are merged (DESIGN.md section 11). kAdaptive
  /// samples the first chunks and picks with the cost models; the concrete
  /// values force a strategy (tests/ablation; also forced by the
  /// SSAGG_AGG_STRATEGY environment variable, which overrides this field).
  AggregateStrategy strategy = AggregateStrategy::kAdaptive;
  /// Rows (across all threads) the planner samples before deciding.
  idx_t planner_sample_rows = 32768;
  /// Lets the planner enable the direct-index (perfect hash) fast path on
  /// central/tree thread tables when the query groups by a single int64 key
  /// whose sampled value span is small (DESIGN.md section 11).
  bool enable_direct_index = true;
  /// Total input rows if the caller knows them (RunGroupedAggregation fills
  /// this from DataSource::EstimatedRowCount); kInvalidIndex = unknown.
  idx_t expected_input_rows = kInvalidIndex;
  /// Early aggregation (paper Section IX): when the memory limit is about
  /// to be exceeded during phase 1, a thread re-aggregates its own
  /// partitions early, collapsing duplicated groups before they are
  /// spilled — trading CPU for reduced intermediate size and I/O. kAuto
  /// lets the planner decide from observed spill pressure and the sampled
  /// duplication ratio; kOn/kOff keep the old static behavior.
  EarlyAggMode early_aggregation = EarlyAggMode::kAuto;
  /// Pool fill ratio that triggers early aggregation.
  double early_aggregation_ratio = 0.8;
  /// Minimum thread-local materialized rows before compacting (and the
  /// data must double between compactions), so compaction cannot thrash.
  idx_t early_aggregation_min_rows = 1ULL << 16;
};

/// Aggregate progress counters, summed over threads.
struct HashAggregateStats {
  idx_t materialized_rows = 0;   // rows handed to phase 2 (post-compaction)
  idx_t unique_groups = 0;       // rows produced
  idx_t phase1_resets = 0;
  idx_t early_compactions = 0;   // early-aggregation passes (Section IX)
  idx_t early_compacted_rows = 0;  // rows eliminated by early aggregation
  GroupedAggregateHashTable::Stats ht;
  /// Wall-clock seconds of the two phases (filled by Execute helpers).
  double phase1_seconds = 0;
  double phase2_seconds = 0;
  /// Planner snapshot (copied from the AggregatePlanner at stats() time).
  PlannerDecision planner;
  bool planner_decided = false;
  bool planner_demoted = false;
  double sampling_seconds = 0;
};

/// DuckDB's embarrassingly external parallel hash aggregation (paper
/// Section V, Figure 3), grown an adaptive planning layer (DESIGN.md
/// section 11):
///
///   Phase 0 (Sampling): the first planner_sample_rows rows flow through
///   the classic fixed-size thread tables while their group hashes feed a
///   cardinality estimator; cost models then commit to a merge strategy.
///
///   Phase 1 (Thread-Local Pre-Aggregation): under the radix strategy each
///   worker aggregates morsels into its own small fixed-size salted hash
///   table, materializing groups directly into radix-partitioned spillable
///   pages; the table is reset (pointer array cleared, pages unpinned) at
///   2/3 fill. The phase is RAM-oblivious. Under central/tree the worker
///   instead folds everything into one right-sized resizable table (still
///   radix-partitioned with the same fan-out, so a misestimate can demote
///   the query back to the radix plan mid-flight).
///
///   Phase 2: radix exchanges thread-local partitions and aggregates each
///   independently in parallel; central merges the thread tables into one
///   sequentially; tree merges them pairwise in parallel barrier rounds.
///   Either way finished partitions are immediately pushed to the next
///   sink and their pages destroyed.
class PhysicalHashAggregate : public DataSink {
 public:
  static Result<std::unique_ptr<PhysicalHashAggregate>> Create(
      BufferManager &buffer_manager, std::vector<LogicalTypeId> input_types,
      std::vector<idx_t> group_columns,
      std::vector<AggregateRequest> aggregates,
      HashAggregateConfig config = {});

  std::vector<LogicalTypeId> OutputTypes() const {
    return row_layout_.OutputTypes();
  }

  // DataSink (phase 1)
  Result<std::unique_ptr<LocalSinkState>> InitLocal() override;
  Status Sink(DataChunk &chunk, LocalSinkState &state) override;
  Status Combine(LocalSinkState &state) override;

  /// Phase 2: merges thread-local results per the planner's strategy and
  /// pushes finished partitions into `output` ("fully aggregated
  /// partitions are immediately scanned, effectively becoming morsels in
  /// the next pipeline"). Pages are destroyed as they are consumed.
  Status EmitResults(DataSink &output, TaskExecutor &executor);

  /// A snapshot taken under the operator lock: safe to call while phase-2
  /// partition tasks are still merging their counters in.
  [[nodiscard]] HashAggregateStats stats() const;
  /// Total bytes materialized into partitions (intermediate size).
  [[nodiscard]] idx_t MaterializedBytes() const;

  /// The per-query planner (decision, sampling overhead, demotion state).
  [[nodiscard]] const AggregatePlanner &planner() const { return *planner_; }

  /// Arms live introspection: once the planner commits, its group estimate
  /// (D-hat) is published into `progress` from the first post-decision
  /// Sink. The handle must outlive the operator; may be null.
  void SetProgress(QueryProgress *progress) {
    progress_.store(progress, std::memory_order_release);
  }

 private:
  PhysicalHashAggregate(BufferManager &buffer_manager,
                        std::vector<LogicalTypeId> input_types,
                        AggregateRowLayout row_layout,
                        HashAggregateConfig config)
      : buffer_manager_(buffer_manager),
        input_types_(std::move(input_types)),
        row_layout_(std::move(row_layout)),
        config_(config) {}

  struct LocalState : public LocalSinkState {
    /// Fixed-size phase-1 table (sampling window / radix strategy).
    std::unique_ptr<GroupedAggregateHashTable> ht;
    /// Right-sized resizable table (central/tree strategies, after the
    /// transition).
    std::unique_ptr<GroupedAggregateHashTable> merge_ht;
    /// Merge tables retired by a demotion; their (partially aggregated,
    /// radix-partitioned) rows join global_data_ at Combine.
    std::vector<std::unique_ptr<GroupedAggregateHashTable>> retired;
    /// Stats of tables this thread already destroyed (transition).
    GroupedAggregateHashTable::Stats carry_stats;
    idx_t carry_resets = 0;
    idx_t demote_limit = 0;
    idx_t last_compact_count = 0;
    idx_t early_compactions = 0;
    idx_t early_compacted_rows = 0;
  };

  Status MakePhase1Table(std::unique_ptr<GroupedAggregateHashTable> *out);
  Status MakeMergeTable(idx_t capacity,
                        std::unique_ptr<GroupedAggregateHashTable> *out);

  /// Sampling phase: feeds the chunk's int64 key extremes to the planner's
  /// direct-index candidate range.
  void ObserveChunkKeyRange(const DataChunk &chunk);

  /// Central/tree: replaces the thread's fixed table with a right-sized
  /// resizable one seeded from everything sampled so far.
  Status TransitionLocal(LocalState &local);
  /// Misestimate fallback: retires the thread's merge table (its rows join
  /// the radix exchange at Combine) and resumes with a fixed table.
  Status DemoteLocal(LocalState &local);

  /// One-shot publication of the planner's group estimate into progress_
  /// (first thread past the decision wins; later calls are one relaxed
  /// load).
  void PublishPlannerEstimate();

  /// Runs the early-aggregation policy checks and compacts if they pass.
  Status MaybeEarlyAggregate(LocalState &local);
  /// Re-aggregates the thread's own partitions in place, collapsing
  /// duplicated groups materialized across hash-table resets.
  Status EarlyCompactLocal(LocalState &local);

  /// Merges every row of `source` (releasing its pins, destroying its
  /// pages) into `target`.
  Status MergeTableInto(GroupedAggregateHashTable &target,
                        GroupedAggregateHashTable &source,
                        TaskExecutor *executor);
  /// Merges one materialized collection into `target`, destroying it.
  Status MergeCollectionInto(GroupedAggregateHashTable &target,
                             TupleDataCollection &source,
                             TaskExecutor *executor);

  /// Finalizes and pushes one fully merged table: its partitions are
  /// emitted by parallel tasks (FinalizeChunk is scratch-free, so tasks
  /// can share the table; partition collections are disjoint objects).
  Status EmitTable(GroupedAggregateHashTable &table, DataSink &output,
                   TaskExecutor &executor);
  Status EmitTablePartition(GroupedAggregateHashTable &table,
                            idx_t partition_idx, DataSink &output,
                            TaskExecutor &executor);

  /// `data` is the merged global partition set, resolved under the lock by
  /// EmitResults; partition `partition_idx` is owned by this task from here
  /// on (partition tasks never touch each other's partitions).
  Status AggregatePartition(PartitionedTupleData &data, idx_t partition_idx,
                            DataSink &output, TaskExecutor &executor);

  Status RadixMergeEmit(PartitionedTupleData *data, DataSink &output,
                        TaskExecutor &executor);
  Status CentralMergeEmit(
      std::vector<std::unique_ptr<GroupedAggregateHashTable>> tables,
      PartitionedTupleData *data, DataSink &output, TaskExecutor &executor);
  Status TreeMergeEmit(
      std::vector<std::unique_ptr<GroupedAggregateHashTable>> tables,
      PartitionedTupleData *data, DataSink &output, TaskExecutor &executor);

  /// Folds one finished phase-1 table's data into global_data_.
  /// `count_materialized` is false when the table's rows were already
  /// counted at Combine (a demoted merge table folded in by EmitResults).
  void PushGlobalData(GroupedAggregateHashTable &table,
                      bool count_materialized = true) SSAGG_REQUIRES(lock_);

  BufferManager &buffer_manager_;
  std::vector<LogicalTypeId> input_types_;
  AggregateRowLayout row_layout_;
  HashAggregateConfig config_;
  std::unique_ptr<AggregatePlanner> planner_;
  /// Input column of the single int64 group key when the layout admits the
  /// direct-index fast path; kInvalidIndex otherwise.
  idx_t direct_key_column_ = kInvalidIndex;
  /// Live introspection handle (optional, set by RunGroupedAggregation).
  std::atomic<QueryProgress *> progress_{nullptr};
  std::atomic<bool> progress_groups_published_{false};

  mutable Mutex lock_;
  /// All thread-local materialized partitions, merged partition-wise at
  /// Combine time ("partitions are exchanged between threads"). The
  /// unique_ptr itself is guarded; once EmitResults starts, the pointee's
  /// partitions are partitioned among tasks (disjoint access).
  std::unique_ptr<PartitionedTupleData> global_data_ SSAGG_GUARDED_BY(lock_);
  /// Central/tree thread merge tables, handed over at Combine; EmitResults
  /// moves them out and merges them per the strategy.
  std::vector<std::unique_ptr<GroupedAggregateHashTable>> local_tables_
      SSAGG_GUARDED_BY(lock_);
  HashAggregateStats stats_ SSAGG_GUARDED_BY(lock_);
};

}  // namespace ssagg

#endif  // SSAGG_CORE_PHYSICAL_HASH_AGGREGATE_H_
