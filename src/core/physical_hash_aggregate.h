#ifndef SSAGG_CORE_PHYSICAL_HASH_AGGREGATE_H_
#define SSAGG_CORE_PHYSICAL_HASH_AGGREGATE_H_

#include <memory>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/mutex.h"
#include "core/grouped_aggregate_hash_table.h"
#include "execution/operator.h"
#include "execution/task_executor.h"

namespace ssagg {

/// Tuning knobs for the aggregation operator.
struct HashAggregateConfig {
  /// Capacity of the fixed-size thread-local (phase 1) hash table.
  idx_t phase1_capacity = kPhase1HashTableCapacity;
  /// Radix partition fan-out (2^radix_bits partitions). The paper
  /// over-partitions so one fully aggregated partition per thread fits in
  /// memory during phase 2.
  idx_t radix_bits = 4;
  /// Initial capacity of phase-2 (resizable) tables.
  idx_t phase2_initial_capacity = 1024;
  bool use_salt = true;
  /// Ablation knob: route chunks through the vectorized probe pipeline
  /// (selection vectors, prefetch, batched inserts) instead of the
  /// row-at-a-time reference path.
  bool vectorized_probe = true;
  double reset_fill_ratio = kHashTableResetFillRatio;
  /// Optional extension (paper Section IX, future work): when the memory
  /// limit is about to be exceeded during phase 1, a thread re-aggregates
  /// its own partitions early, collapsing duplicated groups before they are
  /// spilled — trading CPU for reduced intermediate size and I/O.
  bool enable_early_aggregation = false;
  /// Pool fill ratio that triggers early aggregation.
  double early_aggregation_ratio = 0.8;
  /// Minimum thread-local materialized rows before compacting (and the
  /// data must double between compactions), so compaction cannot thrash.
  idx_t early_aggregation_min_rows = 1ULL << 16;
};

/// Aggregate progress counters, summed over threads.
struct HashAggregateStats {
  idx_t materialized_rows = 0;   // rows handed to phase 2 (post-compaction)
  idx_t unique_groups = 0;       // rows produced
  idx_t phase1_resets = 0;
  idx_t early_compactions = 0;   // early-aggregation passes (Section IX)
  idx_t early_compacted_rows = 0;  // rows eliminated by early aggregation
  GroupedAggregateHashTable::Stats ht;
  /// Wall-clock seconds of the two phases (filled by Execute helpers).
  double phase1_seconds = 0;
  double phase2_seconds = 0;
};

/// DuckDB's embarrassingly external parallel hash aggregation (paper
/// Section V, Figure 3):
///
///   Phase 1 (Thread-Local Pre-Aggregation): each worker aggregates morsels
///   into its own small fixed-size salted hash table, materializing groups
///   directly into radix-partitioned spillable pages; the table is reset
///   (pointer array cleared, pages unpinned) at 2/3 fill. The phase is
///   RAM-oblivious: nothing about it depends on the memory limit, and the
///   buffer manager alone decides which pages spill.
///
///   Phase 2 (Partition-Wise Aggregation): thread-local partitions are
///   exchanged and each partition is aggregated independently in parallel
///   with a resizable table; finished partitions are immediately pushed to
///   the next sink and their pages destroyed.
class PhysicalHashAggregate : public DataSink {
 public:
  static Result<std::unique_ptr<PhysicalHashAggregate>> Create(
      BufferManager &buffer_manager, std::vector<LogicalTypeId> input_types,
      std::vector<idx_t> group_columns,
      std::vector<AggregateRequest> aggregates,
      HashAggregateConfig config = {});

  std::vector<LogicalTypeId> OutputTypes() const {
    return row_layout_.OutputTypes();
  }

  // DataSink (phase 1)
  Result<std::unique_ptr<LocalSinkState>> InitLocal() override;
  Status Sink(DataChunk &chunk, LocalSinkState &state) override;
  Status Combine(LocalSinkState &state) override;

  /// Phase 2: aggregates each partition and pushes finished partitions into
  /// `output` ("fully aggregated partitions are immediately scanned,
  /// effectively becoming morsels in the next pipeline"). Partition pages
  /// are destroyed as they are consumed.
  Status EmitResults(DataSink &output, TaskExecutor &executor);

  /// A snapshot taken under the operator lock: safe to call while phase-2
  /// partition tasks are still merging their counters in.
  [[nodiscard]] HashAggregateStats stats() const;
  /// Total bytes materialized into partitions (intermediate size).
  [[nodiscard]] idx_t MaterializedBytes() const;

 private:
  PhysicalHashAggregate(BufferManager &buffer_manager,
                        std::vector<LogicalTypeId> input_types,
                        AggregateRowLayout row_layout,
                        HashAggregateConfig config)
      : buffer_manager_(buffer_manager),
        input_types_(std::move(input_types)),
        row_layout_(std::move(row_layout)),
        config_(config) {}

  struct LocalState : public LocalSinkState {
    std::unique_ptr<GroupedAggregateHashTable> ht;
    idx_t last_compact_count = 0;
    idx_t early_compactions = 0;
    idx_t early_compacted_rows = 0;
  };

  /// Re-aggregates the thread's own partitions in place, collapsing
  /// duplicated groups materialized across hash-table resets.
  Status EarlyCompactLocal(LocalState &local);

  /// `data` is the merged global partition set, resolved under the lock by
  /// EmitResults; partition `partition_idx` is owned by this task from here
  /// on (partition tasks never touch each other's partitions).
  Status AggregatePartition(PartitionedTupleData &data, idx_t partition_idx,
                            DataSink &output, TaskExecutor &executor);

  BufferManager &buffer_manager_;
  std::vector<LogicalTypeId> input_types_;
  AggregateRowLayout row_layout_;
  HashAggregateConfig config_;

  mutable Mutex lock_;
  /// All thread-local materialized partitions, merged partition-wise at
  /// Combine time ("partitions are exchanged between threads"). The
  /// unique_ptr itself is guarded; once EmitResults starts, the pointee's
  /// partitions are partitioned among tasks (disjoint access).
  std::unique_ptr<PartitionedTupleData> global_data_ SSAGG_GUARDED_BY(lock_);
  HashAggregateStats stats_ SSAGG_GUARDED_BY(lock_);
};

}  // namespace ssagg

#endif  // SSAGG_CORE_PHYSICAL_HASH_AGGREGATE_H_
