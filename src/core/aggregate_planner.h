#ifndef SSAGG_CORE_AGGREGATE_PLANNER_H_
#define SSAGG_CORE_AGGREGATE_PLANNER_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <string>

#include "common/constants.h"
#include "common/mutex.h"
#include "common/status.h"

namespace ssagg {

class MetricsRegistry;

/// How phase-1 thread-local results are merged into the final groups
/// (PAPERS.md "Global Hash Tables Strike Back!": the optimal merge shape
/// flips with group cardinality).
enum class AggregateStrategy : uint8_t {
  /// Sample the first chunks, estimate cardinality, pick one of the three
  /// concrete strategies below with the cost models.
  kAdaptive = 0,
  /// Each thread keeps one right-sized resizable table; all tables are
  /// merged into a single table at the end. Wins at low cardinality, where
  /// the merge is tiny and the per-thread table stays cache-resident.
  kCentralMerge = 1,
  /// Like central, but the tables are merged pairwise in parallel rounds
  /// (ceil(log2 T) rounds instead of T-1 sequential merges). Wins at mid
  /// cardinality with enough threads that the merge itself is worth
  /// parallelizing.
  kTreeMerge = 2,
  /// The existing two-phase radix plan (fixed-size thread tables that
  /// materialize into 2^radix_bits spillable partitions, partition-wise
  /// parallel merge). The robust external default; the only strategy whose
  /// memory footprint does not scale with cardinality.
  kRadixMerge = 3,
};

const char *AggregateStrategyName(AggregateStrategy s);
/// Parses "adaptive" / "central" / "tree" / "radix" (case-sensitive).
std::optional<AggregateStrategy> ParseAggregateStrategy(
    const std::string &name);
/// Forced override from the SSAGG_AGG_STRATEGY environment variable.
/// Returns nullopt when unset; InvalidArgument on an unknown value.
Result<std::optional<AggregateStrategy>> AggregateStrategyFromEnv();

/// Whether phase 1 compacts its own spilled-about-to-be partitions.
enum class EarlyAggMode : uint8_t {
  kOff = 0,
  kOn = 1,
  /// Planner decides at run time: only when the pool is under pressure
  /// (ratio reached AND the metrics registry shows spill writes/evictions
  /// since the query started) and the sampled reduction ratio says
  /// compaction can actually shrink the data.
  kAuto = 2,
};

/// HyperLogLog over 2^kRegisterBits registers, fed with the group hashes the
/// aggregation already computes. Hashes are re-mixed on the way in: the
/// table uses the low bits for the slot offset, the top 16 as the salt and
/// the partition selector in between, so the estimator must not reuse the
/// same bit ranges raw.
class HllEstimator {
 public:
  static constexpr idx_t kRegisterBits = 12;
  static constexpr idx_t kRegisterCount = idx_t{1} << kRegisterBits;

  void Observe(const hash_t *hashes, idx_t count);
  /// Distinct estimate with the linear-counting small-range correction
  /// (exact to ~1% below a few thousand groups, +-1.6% asymptotically).
  [[nodiscard]] double Estimate() const;

 private:
  uint8_t registers_[kRegisterCount] = {};
};

/// Cost-model constants, in nanoseconds per row/group/task. Calibrated on
/// the container this repo is developed in (see DESIGN.md section 11 for
/// the recalibration procedure against bench_probe and
/// bench_strategy_adaptive); decisions only depend on ratios, so they
/// survive hardware changes that scale all memory tiers together.
struct AggregateCostModel {
  /// Per-row probe+combine cost by probe-structure footprint tier.
  double probe_l1_ns = 6.0;    // table fits in ~L1/L2 (<= 256 KiB)
  double probe_l2_ns = 9.0;    // <= 4 MiB
  double probe_dram_ns = 14.0;  // beyond LLC
  /// Per-row cost of scanning materialized rows and merging them into a
  /// resizable table (phase 2 / central / tree merges).
  double merge_row_ns = 25.0;
  /// Per-group cost of finalizing and emitting an output row.
  double emit_row_ns = 15.0;
  /// Fixed cost of scheduling one task (and, for tree merge, one barrier
  /// round costs roughly one task per thread).
  double task_ns = 30000.0;
  /// Fixed cost of standing up one resizable merge table.
  double table_setup_ns = 20000.0;

  /// Per-row probe cost as a function of footprint, interpolated linearly
  /// in log2(bytes) between the anchors 256 KiB -> probe_l1_ns,
  /// 4 MiB -> probe_l2_ns and 32 MiB -> probe_dram_ns (clamped outside).
  /// The earlier step function had a cliff at exactly 4 MiB: a footprint of
  /// 4.00 MiB (e.g. 100k sparse groups at 40-byte rows) still scored the
  /// in-LLC rate while the real working set already spilled past it, so the
  /// planner picked radix where central measured 2.4x faster (DESIGN.md
  /// section 12's recalibration sweep).
  [[nodiscard]] double ProbeNs(double footprint_bytes) const {
    constexpr double kL1Log2 = 18.0;    // 256 KiB
    constexpr double kLlcLog2 = 22.0;   // 4 MiB
    constexpr double kDramLog2 = 25.0;  // 32 MiB
    const double lg = std::log2(std::max(1.0, footprint_bytes));
    if (lg <= kL1Log2) return probe_l1_ns;
    if (lg >= kDramLog2) return probe_dram_ns;
    if (lg <= kLlcLog2) {
      const double t = (lg - kL1Log2) / (kLlcLog2 - kL1Log2);
      return probe_l1_ns + t * (probe_l2_ns - probe_l1_ns);
    }
    const double t = (lg - kLlcLog2) / (kDramLog2 - kLlcLog2);
    return probe_l2_ns + t * (probe_dram_ns - probe_l2_ns);
  }
};

/// Everything the cost models see. Rows are totals across all threads.
struct PlannerInputs {
  idx_t threads = 1;
  /// Total input rows (kInvalidIndex when the source cannot estimate).
  idx_t total_rows = kInvalidIndex;
  idx_t sampled_rows = 0;
  /// Estimated distinct groups over the whole input.
  double estimated_groups = 1;
  /// sampled_rows / sample_distinct: rows per group within the sample.
  double reduction_ratio = 1;
  idx_t phase1_capacity = 0;
  idx_t radix_partitions = 1;
  idx_t row_width_bytes = 0;
  idx_t memory_limit_bytes = 0;
  double reset_fill_ratio = 2.0 / 3.0;
};

/// The three cost models the planner compares (ROADMAP open item 1 asked
/// for them as explicit functions). Each returns estimated wall-clock
/// seconds for phase 1 + merge + emit under that strategy.
double CentralMergeCost(const PlannerInputs &in, const AggregateCostModel &m);
double TreeMergeCost(const PlannerInputs &in, const AggregateCostModel &m);
double RadixMergeCost(const PlannerInputs &in, const AggregateCostModel &m);

/// The chosen plan plus everything needed to explain it (QueryProfile /
/// trace / stats all report from here).
struct PlannerDecision {
  /// What the query actually runs (forced override wins over the model).
  AggregateStrategy strategy = AggregateStrategy::kRadixMerge;
  /// What the cost model picked (== strategy unless forced).
  AggregateStrategy advised = AggregateStrategy::kRadixMerge;
  bool forced = false;
  idx_t estimated_groups = 0;
  double reduction_ratio = 1;
  idx_t sampled_rows = 0;
  /// Cost-model outputs, in estimated seconds.
  double central_cost = 0;
  double tree_cost = 0;
  double radix_cost = 0;
  /// Initial entry-array capacity for central/tree thread-local tables.
  idx_t local_table_capacity = 0;
  /// Central/tree tables above this many groups demote the query to radix
  /// (misestimate guard).
  idx_t demote_group_limit = 0;
  /// Perfect-hash fast path: the query groups by a single int64 key whose
  /// sampled value span fits kDirectIndexMaxRange, so central/tree thread
  /// tables index group-row pointers by key value directly (no hashing, no
  /// probe). Keys outside [direct_min, direct_min + direct_range) that the
  /// sample never saw fall back to the generic path chunk-wise at run time.
  bool direct_index = false;
  int64_t direct_min = 0;
  idx_t direct_range = 0;
};

/// Per-query planner: accumulates the sampling phase, makes the strategy
/// decision once, then serves cheap post-decision queries (effective
/// strategy under demotion, early-aggregation advice from live spill
/// pressure). Thread-safe; the post-decision fast path is one relaxed load.
class AggregatePlanner {
 public:
  struct Options {
    AggregateStrategy strategy = AggregateStrategy::kAdaptive;
    EarlyAggMode early_agg = EarlyAggMode::kAuto;
    /// Rows observed (across all threads) before deciding.
    idx_t sample_rows = 32768;
    idx_t phase1_capacity = kPhase1HashTableCapacity;
    idx_t radix_partitions = 16;
    double reset_fill_ratio = 2.0 / 3.0;
    idx_t row_width_bytes = 32;
    idx_t memory_limit_bytes = 0;
    /// Total input rows if the source knows (kInvalidIndex otherwise).
    idx_t total_rows = kInvalidIndex;
    /// Whether the operator's layout admits the direct-index fast path (a
    /// single int64 group key) and the caller wants it considered.
    bool enable_direct_index = false;
    AggregateCostModel cost_model;
  };

  /// Widest key span (pointer-cache slots) the direct-index fast path will
  /// take on: 2^16 slots = 512 KiB of pointers, small enough that a dense
  /// low-cardinality key stream keeps the cache hot.
  static constexpr idx_t kDirectIndexMaxRange = idx_t{1} << 16;

  AggregatePlanner(Options options, MetricsRegistry &registry);

  /// True once the decision is made (forced strategies decide immediately;
  /// adaptive decides when the sample window fills or on ForceDecision).
  [[nodiscard]] bool decided() const {
    return decided_.load(std::memory_order_acquire);
  }
  /// True while Observe still wants hashes. Forced strategies sample too —
  /// the hypothetical "advised" decision is reported for calibration (the
  /// early-agg ablation bench relies on it) — but the window closes with
  /// the decision either way.
  [[nodiscard]] bool sampling() const {
    return !sampling_done_.load(std::memory_order_acquire);
  }

  /// Accounts one registered pipeline thread (the cost models need T).
  void RegisterThread();

  /// Feeds one chunk's group hashes to the estimator; makes the decision
  /// once the sample window fills.
  void Observe(const hash_t *hashes, idx_t count);

  /// Feeds one sampled chunk's int64 key extremes (valid rows only) to the
  /// direct-index candidate range. Call before Observe — the window may
  /// close inside it.
  void ObserveKeyRange(int64_t min_key, int64_t max_key);

  /// Decides now with whatever was sampled (Combine/EmitResults call this
  /// so tiny inputs that never fill the window still get a decision).
  void EnsureDecided();

  /// The decision; EnsureDecided must have run (or decided() be true).
  [[nodiscard]] PlannerDecision decision() const;

  /// The decision's strategy, downgraded to radix after demotion.
  [[nodiscard]] AggregateStrategy EffectiveStrategy() const {
    if (demoted_.load(std::memory_order_acquire)) {
      return AggregateStrategy::kRadixMerge;
    }
    return decision().strategy;
  }

  /// Misestimate guard: a central/tree thread table outgrew the decision's
  /// demote_group_limit, so every thread falls back to the radix plan
  /// (central/tree tables are radix-partitioned with the same fan-out
  /// precisely so their rows can still be exchanged partition-wise).
  void Demote();
  [[nodiscard]] bool demoted() const {
    return demoted_.load(std::memory_order_acquire);
  }

  /// EarlyAggMode::kAuto runtime signal: true when the sampled reduction
  /// ratio says compaction can shrink the data at least ~2x AND the metrics
  /// registry has seen spill writes or pool evictions since this planner
  /// was constructed. kOn always returns true, kOff always false. The
  /// registry read is rate-limited; callers may invoke this per chunk.
  [[nodiscard]] bool ShouldEarlyAggregate();

  /// Cumulative wall-clock seconds spent inside Observe (the <3% sampling
  /// overhead acceptance criterion is measured from this).
  [[nodiscard]] double sampling_seconds() const;

  [[nodiscard]] const Options &options() const { return options_; }

 private:
  void DecideLocked() SSAGG_REQUIRES(lock_);
  [[nodiscard]] bool SpillPressure();

  Options options_;
  MetricsRegistry &registry_;

  std::atomic<bool> decided_{false};
  std::atomic<bool> sampling_done_{false};
  std::atomic<bool> demoted_{false};
  std::atomic<idx_t> threads_{0};

  // Spill-pressure baseline captured at construction; results cached
  // between rate-limited registry reads.
  uint64_t base_spill_bytes_;
  uint64_t base_evictions_;
  std::atomic<uint32_t> pressure_poll_ = 0;
  std::atomic<bool> pressure_seen_{false};

  mutable Mutex lock_;
  HllEstimator hll_ SSAGG_GUARDED_BY(lock_);
  idx_t observed_rows_ SSAGG_GUARDED_BY(lock_) = 0;
  bool key_range_seen_ SSAGG_GUARDED_BY(lock_) = false;
  int64_t key_min_ SSAGG_GUARDED_BY(lock_) = 0;
  int64_t key_max_ SSAGG_GUARDED_BY(lock_) = 0;
  double sampling_seconds_ SSAGG_GUARDED_BY(lock_) = 0;
  PlannerDecision decision_ SSAGG_GUARDED_BY(lock_);
};

}  // namespace ssagg

#endif  // SSAGG_CORE_AGGREGATE_PLANNER_H_
