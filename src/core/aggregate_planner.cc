#include "core/aggregate_planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>

#include "common/hash.h"
#include "observe/flight_recorder.h"
#include "observe/metrics.h"
#include "observe/trace.h"

namespace ssagg {

namespace {

idx_t NextPowerOfTwo(idx_t v) {
  idx_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

/// Inverts the uniform-occupancy expectation d = D * (1 - exp(-m/D)) for D:
/// with m sampled rows drawn from D equally likely groups, d is the
/// expected number of distinct groups seen. Monotonically increasing in D,
/// so a bisection over [d, upper] recovers D from the measured d.
double InvertExpectedDistinct(double sampled_rows, double sample_distinct,
                              double upper) {
  auto expected = [&](double total) {
    return total * (1.0 - std::exp(-sampled_rows / total));
  };
  double lo = sample_distinct;
  if (expected(upper) <= sample_distinct) {
    return upper;
  }
  double hi = upper;
  for (int i = 0; i < 64; i++) {
    double mid = 0.5 * (lo + hi);
    if (expected(mid) < sample_distinct) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

/// Distinct groups a sample of m rows with d distinct projects onto the
/// whole input of total_rows rows. A sample where nearly every row was a
/// new group (d > ~0.9 m) carries no upper bound — the inversion's signal
/// (m - d) is then smaller than the estimator's own error — so it is
/// extrapolated linearly, which errs high (toward the robust radix plan).
double ExtrapolateGroups(double sampled_rows, double sample_distinct,
                         idx_t total_rows, bool *saturated) {
  *saturated = sample_distinct >= 0.9 * sampled_rows;
  if (sampled_rows <= 0) {
    *saturated = true;
    return 1;
  }
  const bool rows_known = total_rows != kInvalidIndex;
  double total =
      rows_known ? static_cast<double>(total_rows) : sampled_rows * 1024;
  if (total <= sampled_rows) {
    return sample_distinct;
  }
  if (*saturated) {
    return sample_distinct * (total / sampled_rows);
  }
  return InvertExpectedDistinct(sampled_rows, sample_distinct, total);
}

}  // namespace

const char *AggregateStrategyName(AggregateStrategy s) {
  switch (s) {
    case AggregateStrategy::kAdaptive:
      return "adaptive";
    case AggregateStrategy::kCentralMerge:
      return "central";
    case AggregateStrategy::kTreeMerge:
      return "tree";
    case AggregateStrategy::kRadixMerge:
      return "radix";
  }
  return "unknown";
}

std::optional<AggregateStrategy> ParseAggregateStrategy(
    const std::string &name) {
  if (name == "adaptive") return AggregateStrategy::kAdaptive;
  if (name == "central") return AggregateStrategy::kCentralMerge;
  if (name == "tree") return AggregateStrategy::kTreeMerge;
  if (name == "radix") return AggregateStrategy::kRadixMerge;
  return std::nullopt;
}

Result<std::optional<AggregateStrategy>> AggregateStrategyFromEnv() {
  const char *env = std::getenv("SSAGG_AGG_STRATEGY");
  if (env == nullptr || env[0] == '\0') {
    return std::optional<AggregateStrategy>{};
  }
  auto parsed = ParseAggregateStrategy(env);
  if (!parsed) {
    return Status::InvalidArgument(
        std::string("SSAGG_AGG_STRATEGY must be adaptive|central|tree|radix, "
                    "got \"") +
        env + "\"");
  }
  return std::optional<AggregateStrategy>{*parsed};
}

void HllEstimator::Observe(const hash_t *hashes, idx_t count) {
  for (idx_t i = 0; i < count; i++) {
    // Re-mix: the table consumes the hash's low bits (slot offset), middle
    // bits (radix partition) and top 16 (salt); the estimator must see
    // decorrelated bits or dense-key workloads skew the registers.
    hash_t h = HashUint64(hashes[i] ^ 0x9e3779b97f4a7c15ULL);
    idx_t reg = h >> (64 - kRegisterBits);
    uint64_t rest = h << kRegisterBits | (idx_t{1} << (kRegisterBits - 1));
    auto rank = static_cast<uint8_t>(__builtin_clzll(rest) + 1);
    if (rank > registers_[reg]) {
      registers_[reg] = rank;
    }
  }
}

double HllEstimator::Estimate() const {
  constexpr double m = static_cast<double>(kRegisterCount);
  const double alpha = 0.7213 / (1.0 + 1.079 / m);
  double inverse_sum = 0;
  idx_t zero_registers = 0;
  for (uint8_t reg : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(reg));
    zero_registers += reg == 0 ? 1 : 0;
  }
  double estimate = alpha * m * m / inverse_sum;
  if (estimate <= 2.5 * m && zero_registers > 0) {
    // Linear counting: exact regime for the small cardinalities where the
    // central-merge decision lives.
    estimate = m * std::log(m / static_cast<double>(zero_registers));
  }
  return estimate;
}

namespace {

double Phase1ProbeSeconds(const PlannerInputs &in, const AggregateCostModel &m,
                          double footprint_bytes) {
  const double rows = in.total_rows != kInvalidIndex
                          ? static_cast<double>(in.total_rows)
                          : static_cast<double>(in.sampled_rows);
  const double threads = static_cast<double>(std::max<idx_t>(1, in.threads));
  return rows * m.ProbeNs(footprint_bytes) / threads * 1e-9;
}

/// Footprint of a right-sized central/tree thread table: entry array plus
/// the group rows themselves (they are revisited on every combine).
double LocalTableFootprint(const PlannerInputs &in) {
  double entries =
      static_cast<double>(NextPowerOfTwo(static_cast<idx_t>(
          std::max(1024.0, 4.0 * in.estimated_groups)))) *
      8.0;
  return entries + in.estimated_groups *
                       static_cast<double>(in.row_width_bytes);
}

double EmitSeconds(const PlannerInputs &in, const AggregateCostModel &m) {
  const double threads = static_cast<double>(std::max<idx_t>(1, in.threads));
  const double emit_par =
      std::min(threads, static_cast<double>(std::max<idx_t>(
                            1, in.radix_partitions)));
  return (in.estimated_groups * m.emit_row_ns / emit_par +
          emit_par * m.task_ns) *
         1e-9;
}

}  // namespace

double CentralMergeCost(const PlannerInputs &in, const AggregateCostModel &m) {
  const double threads = static_cast<double>(std::max<idx_t>(1, in.threads));
  double seconds = Phase1ProbeSeconds(in, m, LocalTableFootprint(in));
  // T-1 sequential merges of ~D rows each, on one thread.
  seconds += (threads - 1) * in.estimated_groups * m.merge_row_ns * 1e-9;
  seconds += threads * m.table_setup_ns * 1e-9;
  return seconds + EmitSeconds(in, m);
}

double TreeMergeCost(const PlannerInputs &in, const AggregateCostModel &m) {
  const double threads = static_cast<double>(std::max<idx_t>(1, in.threads));
  double rounds = std::ceil(std::log2(std::max(2.0, threads)));
  double seconds = Phase1ProbeSeconds(in, m, LocalTableFootprint(in));
  // Each barrier round merges pairs in parallel: wall time ~ one D-row
  // merge per round, plus the round's task scheduling.
  seconds +=
      rounds * (in.estimated_groups * m.merge_row_ns + threads * m.task_ns) *
      1e-9;
  seconds += threads * m.table_setup_ns * 1e-9;
  return seconds + EmitSeconds(in, m);
}

double RadixMergeCost(const PlannerInputs &in, const AggregateCostModel &m) {
  const double threads = static_cast<double>(std::max<idx_t>(1, in.threads));
  const double rows = in.total_rows != kInvalidIndex
                          ? static_cast<double>(in.total_rows)
                          : static_cast<double>(in.sampled_rows);
  const double fill_capacity =
      static_cast<double>(in.phase1_capacity) * in.reset_fill_ratio;
  // Live entry lines + the working set of group rows actually touched.
  double footprint =
      std::min(4.0 * in.estimated_groups,
               static_cast<double>(in.phase1_capacity)) *
          8.0 +
      std::min(in.estimated_groups, fill_capacity) *
          static_cast<double>(in.row_width_bytes);
  double seconds = Phase1ProbeSeconds(in, m, footprint);
  // Rows materialized into partitions: every thread emits each of its
  // groups at least once; as the group set approaches and passes the reset
  // threshold the fixed table starts thrashing and re-materializes at the
  // sampled rows-per-group rate. The risk ramps in from half fill (LRU-less
  // resets evict hot groups well before the table is nominally full) to
  // full thrash at 1.5x fill, instead of the old all-or-nothing step at
  // exactly fill_capacity that let borderline group counts score radix as
  // thrash-free.
  double materialized = threads * in.estimated_groups;
  const double risk =
      std::min(1.0, in.estimated_groups / fill_capacity - 0.5);
  if (risk > 0.0) {
    materialized = std::max(
        materialized, risk * rows / std::max(1.0, in.reduction_ratio));
  }
  materialized = std::min(materialized, rows);
  const double partitions =
      static_cast<double>(std::max<idx_t>(1, in.radix_partitions));
  seconds += materialized * m.merge_row_ns / threads * 1e-9;
  seconds += partitions * (m.task_ns + m.table_setup_ns) * 1e-9;
  return seconds + EmitSeconds(in, m);
}

AggregatePlanner::AggregatePlanner(Options options, MetricsRegistry &registry)
    : options_(options),
      registry_(registry),
      base_spill_bytes_(registry.Value("io.spill_bytes_written")),
      base_evictions_(registry.Value("bm.evictions_temporary_spilled") +
                      registry.Value("bm.evictions_temporary_destroyed")) {}

void AggregatePlanner::RegisterThread() {
  threads_.fetch_add(1, std::memory_order_relaxed);
}

void AggregatePlanner::Observe(const hash_t *hashes, idx_t count) {
  if (!sampling() || count == 0) {
    return;
  }
  auto start = std::chrono::steady_clock::now();
  ScopedLock guard(lock_);
  if (decided_.load(std::memory_order_relaxed)) {
    return;  // another thread closed the window while we waited
  }
  hll_.Observe(hashes, count);
  observed_rows_ += count;
  if (observed_rows_ >= options_.sample_rows) {
    DecideLocked();
  }
  sampling_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
}

void AggregatePlanner::ObserveKeyRange(int64_t min_key, int64_t max_key) {
  if (!sampling() || !options_.enable_direct_index) {
    return;
  }
  ScopedLock guard(lock_);
  if (decided_.load(std::memory_order_relaxed)) {
    return;
  }
  if (!key_range_seen_) {
    key_min_ = min_key;
    key_max_ = max_key;
    key_range_seen_ = true;
    return;
  }
  key_min_ = std::min(key_min_, min_key);
  key_max_ = std::max(key_max_, max_key);
}

void AggregatePlanner::EnsureDecided() {
  if (decided()) {
    return;
  }
  ScopedLock guard(lock_);
  if (!decided_.load(std::memory_order_relaxed)) {
    DecideLocked();
  }
}

void AggregatePlanner::DecideLocked() {
  TraceSpan span("planner.decide", "agg", observed_rows_);
  PlannerInputs in;
  in.threads = std::max<idx_t>(1, threads_.load(std::memory_order_relaxed));
  in.total_rows = options_.total_rows;
  in.sampled_rows = observed_rows_;
  in.phase1_capacity = options_.phase1_capacity;
  in.radix_partitions = options_.radix_partitions;
  in.row_width_bytes = options_.row_width_bytes;
  in.memory_limit_bytes = options_.memory_limit_bytes;
  in.reset_fill_ratio = options_.reset_fill_ratio;

  double sample_distinct =
      std::min(static_cast<double>(std::max<idx_t>(1, observed_rows_)),
               std::max(1.0, hll_.Estimate()));
  bool saturated = false;
  in.estimated_groups =
      std::max(1.0, ExtrapolateGroups(static_cast<double>(observed_rows_),
                                      sample_distinct, options_.total_rows,
                                      &saturated));
  in.reduction_ratio =
      static_cast<double>(std::max<idx_t>(1, observed_rows_)) /
      sample_distinct;

  PlannerDecision d;
  d.estimated_groups = static_cast<idx_t>(in.estimated_groups);
  d.reduction_ratio = in.reduction_ratio;
  d.sampled_rows = observed_rows_;
  d.central_cost = CentralMergeCost(in, options_.cost_model);
  d.tree_cost = TreeMergeCost(in, options_.cost_model);
  d.radix_cost = RadixMergeCost(in, options_.cost_model);

  // Hard gates before the cost comparison: central/tree keep ~D fully
  // aggregated rows per thread pinned in resizable tables, so they are only
  // admissible when that provably fits. Radix is the only strategy whose
  // footprint does not scale with cardinality (the paper's robustness
  // argument), so everything uncertain lands there.
  constexpr idx_t kMaxCentralGroups = idx_t{1} << 21;
  const double local_bytes =
      static_cast<double>(in.threads) * LocalTableFootprint(in);
  bool admissible =
      !saturated && in.estimated_groups <= kMaxCentralGroups &&
      (options_.memory_limit_bytes == 0 ||
       local_bytes <= 0.25 * static_cast<double>(options_.memory_limit_bytes));

  d.advised = AggregateStrategy::kRadixMerge;
  if (admissible) {
    // Ties break toward the earlier entry: central is the simplest plan.
    if (d.central_cost <= d.tree_cost && d.central_cost <= d.radix_cost) {
      d.advised = AggregateStrategy::kCentralMerge;
    } else if (d.tree_cost <= d.radix_cost) {
      d.advised = AggregateStrategy::kTreeMerge;
    }
  }
  d.forced = options_.strategy != AggregateStrategy::kAdaptive;
  d.strategy = d.forced ? options_.strategy : d.advised;

  const double groups = in.estimated_groups;
  d.local_table_capacity = NextPowerOfTwo(static_cast<idx_t>(
      std::min(std::max(1024.0, 4.0 * groups), std::ldexp(1.0, 22))));
  d.demote_group_limit = static_cast<idx_t>(
      std::min(std::max(8.0 * groups, 65536.0), std::ldexp(1.0, 23)));

  // Direct-index fast path: worth it exactly where central/tree live (a
  // small, hot group set), and only when the single int64 key's sampled
  // span fits the pointer cache. Unsampled out-of-range keys are handled by
  // the table's chunk-wise fallback, so this is a performance bet, not a
  // correctness bet.
  if (options_.enable_direct_index && key_range_seen_ &&
      (d.strategy == AggregateStrategy::kCentralMerge ||
       d.strategy == AggregateStrategy::kTreeMerge)) {
    const uint64_t span = static_cast<uint64_t>(key_max_) -
                          static_cast<uint64_t>(key_min_) + 1;
    if (span != 0 && span <= kDirectIndexMaxRange) {
      d.direct_index = true;
      d.direct_min = key_min_;
      d.direct_range = static_cast<idx_t>(span);
    }
  }

  decision_ = d;
  auto &recorder = TraceRecorder::Global();
  if (recorder.enabled()) {
    // Instant markers: which strategy won and at what estimated size.
    recorder.EmitInstant("planner.strategy", "agg",
                         static_cast<idx_t>(d.strategy));
    recorder.EmitInstant("planner.estimated_groups", "agg",
                         d.estimated_groups);
    recorder.EmitInstant(
        "planner.sampling_us", "agg",
        static_cast<idx_t>(sampling_seconds_ * 1e6));
    if (d.direct_index) {
      recorder.EmitInstant("planner.direct_range", "agg", d.direct_range);
    }
  }
  decided_.store(true, std::memory_order_release);
  sampling_done_.store(true, std::memory_order_release);
}

PlannerDecision AggregatePlanner::decision() const {
  ScopedLock guard(lock_);
  return decision_;
}

void AggregatePlanner::Demote() {
  if (!demoted_.exchange(true, std::memory_order_release)) {
    // A demotion means the planner misestimated badly enough to abandon its
    // plan mid-query — exactly the moment the recent event history is worth
    // keeping (no-op unless SSAGG_FLIGHT_DUMP is configured).
    (void)FlightRecorder::Global().DumpAnomaly("demotion");
  }
}

bool AggregatePlanner::SpillPressure() {
  if (pressure_seen_.load(std::memory_order_relaxed)) {
    return true;
  }
  // Rate-limit the registry walk: one snapshot read every 64 calls.
  if (pressure_poll_.fetch_add(1, std::memory_order_relaxed) % 64 != 0) {
    return false;
  }
  uint64_t spill = registry_.Value("io.spill_bytes_written");
  uint64_t evictions = registry_.Value("bm.evictions_temporary_spilled") +
                       registry_.Value("bm.evictions_temporary_destroyed");
  if (spill > base_spill_bytes_ || evictions > base_evictions_) {
    pressure_seen_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool AggregatePlanner::ShouldEarlyAggregate() {
  switch (options_.early_agg) {
    case EarlyAggMode::kOff:
      return false;
    case EarlyAggMode::kOn:
      return true;
    case EarlyAggMode::kAuto:
      break;
  }
  if (!decided()) {
    return false;  // no duplication evidence yet
  }
  if (EffectiveStrategy() != AggregateStrategy::kRadixMerge) {
    // Central/tree tables are already fully aggregated; nothing to compact.
    return false;
  }
  PlannerDecision d = decision();
  if (d.reduction_ratio < 2.0) {
    // Compaction cannot shrink mostly-unique data; the 1.6x CPU cost of the
    // ablation would buy nothing.
    return false;
  }
  return SpillPressure();
}

double AggregatePlanner::sampling_seconds() const {
  ScopedLock guard(lock_);
  return sampling_seconds_;
}

}  // namespace ssagg
