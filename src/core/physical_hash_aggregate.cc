#include "core/physical_hash_aggregate.h"

#include <algorithm>

#include "observe/metrics.h"
#include "observe/trace.h"

namespace ssagg {

Result<std::unique_ptr<PhysicalHashAggregate>> PhysicalHashAggregate::Create(
    BufferManager &buffer_manager, std::vector<LogicalTypeId> input_types,
    std::vector<idx_t> group_columns, std::vector<AggregateRequest> aggregates,
    HashAggregateConfig config) {
  SSAGG_ASSIGN_OR_RETURN(auto forced, AggregateStrategyFromEnv());
  if (forced) {
    config.strategy = *forced;
  }
  SSAGG_ASSIGN_OR_RETURN(
      auto row_layout,
      AggregateRowLayout::Build(input_types, group_columns, aggregates));
  auto agg = std::unique_ptr<PhysicalHashAggregate>(new PhysicalHashAggregate(
      buffer_manager, std::move(input_types), std::move(row_layout), config));

  if (config.enable_direct_index && agg->row_layout_.group_count == 1 &&
      agg->input_types_[agg->row_layout_.group_columns[0]] ==
          LogicalTypeId::kInt64) {
    agg->direct_key_column_ = agg->row_layout_.group_columns[0];
  }

  AggregatePlanner::Options planner_options;
  planner_options.strategy = config.strategy;
  planner_options.early_agg = config.early_aggregation;
  planner_options.sample_rows = config.planner_sample_rows;
  planner_options.phase1_capacity = config.phase1_capacity;
  planner_options.radix_partitions = idx_t{1} << config.radix_bits;
  planner_options.reset_fill_ratio = config.reset_fill_ratio;
  planner_options.row_width_bytes = agg->row_layout_.layout.RowWidth();
  planner_options.memory_limit_bytes = buffer_manager.memory_limit();
  planner_options.total_rows = config.expected_input_rows;
  planner_options.enable_direct_index =
      agg->direct_key_column_ != kInvalidIndex;
  agg->planner_ = std::make_unique<AggregatePlanner>(
      planner_options, MetricsRegistry::Global());
  return agg;
}

Status PhysicalHashAggregate::MakePhase1Table(
    std::unique_ptr<GroupedAggregateHashTable> *out) {
  GroupedAggregateHashTable::Config ht_config;
  ht_config.capacity = config_.phase1_capacity;
  ht_config.radix_bits = config_.radix_bits;
  ht_config.resizable = false;
  ht_config.use_salt = config_.use_salt;
  ht_config.vectorized_probe = config_.vectorized_probe;
  ht_config.reset_fill_ratio = config_.reset_fill_ratio;
  SSAGG_ASSIGN_OR_RETURN(*out,
                         GroupedAggregateHashTable::Create(
                             buffer_manager_, row_layout_, ht_config));
  return Status::OK();
}

Status PhysicalHashAggregate::MakeMergeTable(
    idx_t capacity, std::unique_ptr<GroupedAggregateHashTable> *out) {
  GroupedAggregateHashTable::Config ht_config;
  ht_config.capacity = capacity;
  // Same fan-out as the fixed tables: a demoted merge table's rows can then
  // join the partition-wise exchange, and central/tree finals emit their
  // partitions in parallel.
  ht_config.radix_bits = config_.radix_bits;
  ht_config.resizable = true;
  ht_config.use_salt = config_.use_salt;
  ht_config.vectorized_probe = config_.vectorized_probe;
  ht_config.reset_fill_ratio = config_.reset_fill_ratio;
  if (planner_->decided()) {
    const PlannerDecision decision = planner_->decision();
    if (decision.direct_index) {
      ht_config.direct_min = decision.direct_min;
      ht_config.direct_range = decision.direct_range;
    }
  }
  SSAGG_ASSIGN_OR_RETURN(*out,
                         GroupedAggregateHashTable::Create(
                             buffer_manager_, row_layout_, ht_config));
  return Status::OK();
}

void PhysicalHashAggregate::ObserveChunkKeyRange(const DataChunk &chunk) {
  const Vector &key_vec = chunk.column(direct_key_column_);
  const auto *keys = key_vec.Values<int64_t>();
  const ValidityMask &validity = key_vec.validity();
  const idx_t count = chunk.size();
  int64_t lo = 0;
  int64_t hi = 0;
  bool seen = false;
  for (idx_t r = 0; r < count; r++) {
    if (!validity.RowIsValid(r)) {
      continue;
    }
    if (!seen) {
      lo = hi = keys[r];
      seen = true;
      continue;
    }
    lo = std::min(lo, keys[r]);
    hi = std::max(hi, keys[r]);
  }
  if (seen) {
    planner_->ObserveKeyRange(lo, hi);
  }
}

Result<std::unique_ptr<LocalSinkState>> PhysicalHashAggregate::InitLocal() {
  auto state = std::make_unique<LocalState>();
  SSAGG_RETURN_NOT_OK(MakePhase1Table(&state->ht));
  planner_->RegisterThread();
  return std::unique_ptr<LocalSinkState>(std::move(state));
}

Status PhysicalHashAggregate::Sink(DataChunk &chunk, LocalSinkState &state) {
  auto &local = static_cast<LocalState &>(state);
  if (planner_->sampling()) {
    // Phase 0: the classic fixed-table path, with the chunk's group hashes
    // (already computed by AddChunk) feeding the estimator. The window
    // closes inside Observe once enough rows were seen, so the key range
    // (direct-index candidacy) must be fed first.
    SSAGG_RETURN_NOT_OK(local.ht->AddChunk(chunk));
    if (direct_key_column_ != kInvalidIndex) {
      ObserveChunkKeyRange(chunk);
    }
    planner_->Observe(local.ht->LastChunkHashes(), chunk.size());
    if (local.ht->NeedsReset()) {
      local.ht->ClearPointerTable();
    }
    return MaybeEarlyAggregate(local);
  }
  PublishPlannerEstimate();

  const AggregateStrategy strategy = planner_->EffectiveStrategy();
  if (strategy == AggregateStrategy::kCentralMerge ||
      strategy == AggregateStrategy::kTreeMerge) {
    if (!local.merge_ht) {
      SSAGG_RETURN_NOT_OK(TransitionLocal(local));
    }
    SSAGG_RETURN_NOT_OK(local.merge_ht->AddChunk(chunk));
    if (local.merge_ht->Count() > local.demote_limit) {
      // Misestimate guard: the table outgrew the decision. Flip the whole
      // query to the radix plan; other threads notice on their next chunk.
      planner_->Demote();
      SSAGG_RETURN_NOT_OK(DemoteLocal(local));
    }
    return Status::OK();
  }

  // Radix plan (chosen, forced, or demoted-to).
  if (local.merge_ht) {
    // Another thread demoted the query after this one transitioned.
    SSAGG_RETURN_NOT_OK(DemoteLocal(local));
  }
  SSAGG_RETURN_NOT_OK(local.ht->AddChunk(chunk));
  if (local.ht->NeedsReset()) {
    // Reset once two-thirds full: only the entry array is cleared, the
    // tuples stay in place and their pages become evictable.
    local.ht->ClearPointerTable();
  }
  return MaybeEarlyAggregate(local);
}

void PhysicalHashAggregate::PublishPlannerEstimate() {
  if (progress_groups_published_.load(std::memory_order_relaxed)) {
    return;
  }
  QueryProgress *progress = progress_.load(std::memory_order_acquire);
  if (progress == nullptr || !planner_->decided()) {
    return;
  }
  if (!progress_groups_published_.exchange(true,
                                           std::memory_order_relaxed)) {
    progress->SetEstimatedGroups(planner_->decision().estimated_groups);
  }
}

Status PhysicalHashAggregate::TransitionLocal(LocalState &local) {
  const PlannerDecision decision = planner_->decision();
  TraceSpan span("planner.transition", "agg", decision.local_table_capacity);
  std::unique_ptr<GroupedAggregateHashTable> merge_ht;
  SSAGG_RETURN_NOT_OK(
      MakeMergeTable(decision.local_table_capacity, &merge_ht));
  // Fold the rows sampled into the fixed table (possibly duplicated across
  // resets) into the right-sized table, then retire the fixed table.
  SSAGG_RETURN_NOT_OK(MergeTableInto(*merge_ht, *local.ht, nullptr));
  local.carry_stats.Merge(local.ht->stats());
  local.carry_resets += local.ht->stats().resets;
  local.ht.reset();
  local.merge_ht = std::move(merge_ht);
  local.demote_limit = decision.demote_group_limit;
  return Status::OK();
}

Status PhysicalHashAggregate::DemoteLocal(LocalState &local) {
  TraceSpan span("planner.demote", "agg", local.merge_ht->Count());
  // Release the merge table's pins so its pages become spillable; its rows
  // are fully grouped within the table, and join global_data_ at Combine.
  local.merge_ht->ClearPointerTable();
  local.retired.push_back(std::move(local.merge_ht));
  return MakePhase1Table(&local.ht);
}

Status PhysicalHashAggregate::MaybeEarlyAggregate(LocalState &local) {
  if (!local.ht || !planner_->ShouldEarlyAggregate()) {
    return Status::OK();
  }
  idx_t used = buffer_manager_.memory_used();
  idx_t local_rows = local.ht->data().Count();
  if (used > config_.early_aggregation_ratio *
                 buffer_manager_.memory_limit() &&
      local_rows >= config_.early_aggregation_min_rows &&
      local_rows >= 2 * local.last_compact_count) {
    SSAGG_RETURN_NOT_OK(EarlyCompactLocal(local));
    local.last_compact_count = local.ht->data().Count();
  }
  return Status::OK();
}

Status PhysicalHashAggregate::EarlyCompactLocal(LocalState &local) {
  TraceSpan span("early_compact", "agg", local.ht->data().Count());
  // The pointer table may reference rows that are about to move; clear it
  // (this also releases the append pins).
  local.ht->ClearPointerTable();
  auto &data = local.ht->data();
  idx_t before = data.Count();
  for (idx_t p = 0; p < data.PartitionCount(); p++) {
    TupleDataCollection &part = data.partition(p);
    if (part.Count() < kVectorSize) {
      continue;  // nothing worth compacting
    }
    GroupedAggregateHashTable::Config ht_config;
    ht_config.capacity = config_.phase2_initial_capacity;
    ht_config.radix_bits = 0;
    ht_config.resizable = true;
    ht_config.use_salt = config_.use_salt;
    ht_config.vectorized_probe = config_.vectorized_probe;
    SSAGG_ASSIGN_OR_RETURN(
        auto compactor, GroupedAggregateHashTable::Create(
                            buffer_manager_, row_layout_, ht_config));
    SSAGG_RETURN_NOT_OK(MergeCollectionInto(*compactor, part, nullptr));
    compactor->ClearPointerTable();
    // Replace the partition's contents with the compacted rows.
    part.Reset();
    part.Combine(compactor->data().partition(0));
  }
  idx_t after = data.Count();
  local.early_compactions++;
  local.early_compacted_rows += before - after;
  return Status::OK();
}

Status PhysicalHashAggregate::MergeCollectionInto(
    GroupedAggregateHashTable &target, TupleDataCollection &source,
    TaskExecutor *executor) {
  if (source.Count() == 0) {
    return Status::OK();
  }
  // Warm spilled pages while the scan sets up; the scan itself prefetches
  // one page ahead from then on.
  source.PrefetchForScan(4);
  DataChunk layout_chunk(row_layout_.layout.Types());
  std::vector<data_ptr_t> src_rows(kVectorSize);
  TupleDataScanState scan;
  source.InitScan(scan, /*destroy_after_scan=*/true);
  while (true) {
    SSAGG_ASSIGN_OR_RETURN(bool more,
                           source.Scan(scan, layout_chunk, src_rows.data()));
    if (!more) {
      break;
    }
    if (executor != nullptr) {
      SSAGG_RETURN_NOT_OK(executor->CheckDeadline());
    }
    SSAGG_RETURN_NOT_OK(
        target.CombineSourceChunk(layout_chunk, src_rows.data()));
  }
  return Status::OK();
}

Status PhysicalHashAggregate::MergeTableInto(
    GroupedAggregateHashTable &target, GroupedAggregateHashTable &source,
    TaskExecutor *executor) {
  source.ClearPointerTable();  // releases the append pins before destroying
  auto &data = source.data();
  for (idx_t p = 0; p < data.PartitionCount(); p++) {
    SSAGG_RETURN_NOT_OK(
        MergeCollectionInto(target, data.partition(p), executor));
  }
  return Status::OK();
}

Status PhysicalHashAggregate::Combine(LocalSinkState &state) {
  auto &local = static_cast<LocalState &>(state);
  // Tiny inputs may finish inside the sampling window; the merge path
  // below needs a decision either way. A thread that never got a morsel
  // must NOT force it, though: it can reach Combine while other threads
  // are still sampling, and deciding off its empty sample would pick
  // radix for every tiny query. Threads with no data have nothing to
  // merge, so they can leave the window open (EmitResults decides if
  // nobody else did).
  const bool has_data = (local.ht && local.ht->data().Count() > 0) ||
                        local.merge_ht != nullptr || !local.retired.empty();
  if (has_data) {
    planner_->EnsureDecided();
  }
  const AggregateStrategy strategy = planner_->EffectiveStrategy();
  if (local.merge_ht && strategy == AggregateStrategy::kRadixMerge) {
    // Demoted after this thread transitioned but before it combined.
    local.merge_ht->ClearPointerTable();
    local.retired.push_back(std::move(local.merge_ht));
  }
  if (local.ht) {
    local.ht->ClearPointerTable();  // releases the append pins
  }
  ScopedLock guard(lock_);
  for (auto &retired : local.retired) {
    PushGlobalData(*retired);
    retired.reset();
  }
  local.retired.clear();
  if (local.ht) {
    PushGlobalData(*local.ht);
    local.ht.reset();
  }
  if (local.merge_ht) {
    // Central/tree: hand the fully aggregated thread table to EmitResults.
    // Its pointer table stays valid — the central target keeps probing it —
    // and its stats are accounted when the table is consumed in phase 2.
    stats_.materialized_rows += local.merge_ht->data().Count();
    local_tables_.push_back(std::move(local.merge_ht));
  }
  stats_.ht.Merge(local.carry_stats);
  stats_.phase1_resets += local.carry_resets;
  stats_.early_compactions += local.early_compactions;
  stats_.early_compacted_rows += local.early_compacted_rows;
  return Status::OK();
}

void PhysicalHashAggregate::PushGlobalData(GroupedAggregateHashTable &table,
                                           bool count_materialized) {
  if (!global_data_) {
    global_data_ = std::make_unique<PartitionedTupleData>(
        buffer_manager_, row_layout_.layout, config_.radix_bits);
  }
  if (count_materialized) {
    stats_.materialized_rows += table.data().Count();
  }
  const auto &s = table.stats();
  stats_.ht.Merge(s);
  stats_.phase1_resets += s.resets;
  global_data_->Combine(table.data());
}

Status PhysicalHashAggregate::AggregatePartition(PartitionedTupleData &data,
                                                 idx_t partition_idx,
                                                 DataSink &output,
                                                 TaskExecutor &executor) {
  TupleDataCollection &source = data.partition(partition_idx);
  if (source.Count() == 0) {
    return Status::OK();
  }
  TraceSpan span("phase2.partition", "agg", partition_idx);
  GroupedAggregateHashTable::Config ht_config;
  ht_config.capacity = config_.phase2_initial_capacity;
  ht_config.radix_bits = 0;  // a phase-2 table is not repartitioned
  ht_config.resizable = true;
  ht_config.use_salt = config_.use_salt;
  ht_config.vectorized_probe = config_.vectorized_probe;
  ht_config.reset_fill_ratio = config_.reset_fill_ratio;
  SSAGG_ASSIGN_OR_RETURN(
      auto ht, GroupedAggregateHashTable::Create(buffer_manager_, row_layout_,
                                                 ht_config));

  // Merge the partition's pre-aggregated rows; pages are destroyed as the
  // scan moves past them.
  SSAGG_RETURN_NOT_OK(MergeCollectionInto(*ht, source, &executor));

  // The pointer table is no longer needed; release the build pins so result
  // pages can be freed as soon as the output scan passes them.
  ht->ClearPointerTable();

  // Push the fully aggregated partition to the next operator immediately,
  // freeing its pages as they are consumed.
  SSAGG_RETURN_NOT_OK(EmitTablePartition(*ht, 0, output, executor));
  {
    ScopedLock guard(lock_);
    stats_.ht.Merge(ht->stats());
  }
  return Status::OK();
}

Status PhysicalHashAggregate::EmitTablePartition(
    GroupedAggregateHashTable &table, idx_t partition_idx, DataSink &output,
    TaskExecutor &executor) {
  TupleDataCollection &result = table.data().partition(partition_idx);
  if (result.Count() == 0) {
    return Status::OK();
  }
  SSAGG_ASSIGN_OR_RETURN(auto out_local, output.InitLocal());
  DataChunk layout_chunk(row_layout_.layout.Types());
  std::vector<data_ptr_t> src_rows(kVectorSize);
  DataChunk out(OutputTypes());
  TupleDataScanState result_scan;
  result.InitScan(result_scan, /*destroy_after_scan=*/true);
  idx_t groups = 0;
  while (true) {
    SSAGG_ASSIGN_OR_RETURN(
        bool more, result.Scan(result_scan, layout_chunk, src_rows.data()));
    if (!more) {
      break;
    }
    SSAGG_RETURN_NOT_OK(executor.CheckDeadline());
    table.FinalizeChunk(layout_chunk, src_rows.data(), out);
    groups += out.size();
    SSAGG_RETURN_NOT_OK(output.Sink(out, *out_local));
  }
  SSAGG_RETURN_NOT_OK(output.Combine(*out_local));
  {
    ScopedLock guard(lock_);
    stats_.unique_groups += groups;
  }
  return Status::OK();
}

Status PhysicalHashAggregate::EmitTable(GroupedAggregateHashTable &table,
                                        DataSink &output,
                                        TaskExecutor &executor) {
  // Release the build pins; result pages are then freed as the output
  // scans pass them.
  table.ClearPointerTable();
  auto &data = table.data();
  std::vector<std::function<Status()>> tasks;
  for (idx_t p = 0; p < data.PartitionCount(); p++) {
    if (data.partition(p).Count() == 0) {
      continue;
    }
    tasks.push_back([this, &table, p, &output, &executor]() {
      return EmitTablePartition(table, p, output, executor);
    });
  }
  SSAGG_RETURN_NOT_OK(executor.RunTasks(tasks));
  ScopedLock guard(lock_);
  stats_.ht.Merge(table.stats());
  return Status::OK();
}

Status PhysicalHashAggregate::RadixMergeEmit(PartitionedTupleData *data,
                                             DataSink &output,
                                             TaskExecutor &executor) {
  if (data == nullptr) {
    return Status::OK();  // no input at all
  }
  std::vector<std::function<Status()>> tasks;
  for (idx_t p = 0; p < data->PartitionCount(); p++) {
    tasks.push_back([this, data, p, &output, &executor]() {
      return AggregatePartition(*data, p, output, executor);
    });
  }
  return executor.RunTasks(tasks);
}

Status PhysicalHashAggregate::CentralMergeEmit(
    std::vector<std::unique_ptr<GroupedAggregateHashTable>> tables,
    PartitionedTupleData *data, DataSink &output, TaskExecutor &executor) {
  const bool have_global = data != nullptr && data->Count() > 0;
  if (tables.empty() && !have_global) {
    return Status::OK();
  }
  TraceSpan span("phase2.central_merge", "agg", tables.size());
  // The first thread table becomes the merge target (its pointer table is
  // still valid, so nothing is rebuilt); with no transitioned thread a
  // fresh table serves (global-only input, e.g. all rows sampled).
  std::unique_ptr<GroupedAggregateHashTable> target;
  if (!tables.empty()) {
    target = std::move(tables.front());
    tables.erase(tables.begin());
  } else {
    SSAGG_RETURN_NOT_OK(MakeMergeTable(
        planner_->decision().local_table_capacity, &target));
  }
  for (auto &table : tables) {
    SSAGG_RETURN_NOT_OK(MergeTableInto(*target, *table, &executor));
    {
      ScopedLock guard(lock_);
      stats_.ht.Merge(table->stats());
    }
    table.reset();
  }
  if (have_global) {
    // Data of threads that never transitioned (or were sampled-only);
    // duplicated groups collapse into the target here.
    for (idx_t p = 0; p < data->PartitionCount(); p++) {
      SSAGG_RETURN_NOT_OK(
          MergeCollectionInto(*target, data->partition(p), &executor));
    }
  }
  return EmitTable(*target, output, executor);
}

Status PhysicalHashAggregate::TreeMergeEmit(
    std::vector<std::unique_ptr<GroupedAggregateHashTable>> tables,
    PartitionedTupleData *data, DataSink &output, TaskExecutor &executor) {
  if (data != nullptr && data->Count() > 0) {
    // Materialize the non-transitioned leftovers as one more leaf so the
    // rounds below see a uniform table list.
    std::unique_ptr<GroupedAggregateHashTable> leaf;
    SSAGG_RETURN_NOT_OK(MakeMergeTable(
        planner_->decision().local_table_capacity, &leaf));
    for (idx_t p = 0; p < data->PartitionCount(); p++) {
      SSAGG_RETURN_NOT_OK(
          MergeCollectionInto(*leaf, data->partition(p), &executor));
    }
    tables.push_back(std::move(leaf));
  }
  if (tables.empty()) {
    return Status::OK();
  }
  TraceSpan span("phase2.tree_merge", "agg", tables.size());
  // Pairwise parallel rounds over a stable table array: round with stride s
  // merges table j+s into table j. ceil(log2 N) barrier rounds total.
  std::vector<std::vector<std::function<Status()>>> rounds;
  for (idx_t step = 1; step < tables.size(); step *= 2) {
    std::vector<std::function<Status()>> round;
    for (idx_t j = 0; j + step < tables.size(); j += 2 * step) {
      round.push_back([this, &tables, j, step, &executor]() {
        auto &source = tables[j + step];
        SSAGG_RETURN_NOT_OK(
            MergeTableInto(*tables[j], *source, &executor));
        {
          ScopedLock guard(lock_);
          stats_.ht.Merge(source->stats());
        }
        source.reset();
        return Status::OK();
      });
    }
    rounds.push_back(std::move(round));
  }
  SSAGG_RETURN_NOT_OK(executor.RunTaskRounds(rounds));
  return EmitTable(*tables.front(), output, executor);
}

Status PhysicalHashAggregate::EmitResults(DataSink &output,
                                          TaskExecutor &executor) {
  planner_->EnsureDecided();
  const AggregateStrategy strategy = planner_->EffectiveStrategy();
  // Resolve the merged inputs once under the lock; phase-2 tasks then work
  // on disjoint partitions/tables of them.
  PartitionedTupleData *data;
  std::vector<std::unique_ptr<GroupedAggregateHashTable>> tables;
  {
    ScopedLock guard(lock_);
    data = global_data_.get();
    tables = std::move(local_tables_);
    local_tables_.clear();
  }
  if (strategy == AggregateStrategy::kRadixMerge && !tables.empty()) {
    // Demotion raced with the last Combine calls: fold the straggler merge
    // tables into the radix exchange (fan-outs match by construction).
    ScopedLock guard(lock_);
    for (auto &table : tables) {
      table->ClearPointerTable();
      PushGlobalData(*table, /*count_materialized=*/false);
      table.reset();
    }
    tables.clear();
    data = global_data_.get();
  }
  switch (strategy) {
    case AggregateStrategy::kCentralMerge:
      return CentralMergeEmit(std::move(tables), data, output, executor);
    case AggregateStrategy::kTreeMerge:
      return TreeMergeEmit(std::move(tables), data, output, executor);
    case AggregateStrategy::kRadixMerge:
    case AggregateStrategy::kAdaptive:  // unreachable: decisions are concrete
      break;
  }
  return RadixMergeEmit(data, output, executor);
}

HashAggregateStats PhysicalHashAggregate::stats() const {
  // Planner fields first: the planner's lock never nests with lock_.
  const bool decided = planner_->decided();
  PlannerDecision decision = decided ? planner_->decision() : PlannerDecision{};
  const bool demoted = planner_->demoted();
  const double sampling_seconds = planner_->sampling_seconds();
  ScopedLock guard(lock_);
  HashAggregateStats stats = stats_;
  stats.planner = decision;
  stats.planner_decided = decided;
  stats.planner_demoted = demoted;
  stats.sampling_seconds = sampling_seconds;
  return stats;
}

idx_t PhysicalHashAggregate::MaterializedBytes() const {
  ScopedLock guard(lock_);
  return global_data_ ? global_data_->SizeInBytes() : 0;
}

}  // namespace ssagg
