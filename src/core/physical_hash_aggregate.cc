#include "core/physical_hash_aggregate.h"

#include "observe/trace.h"

namespace ssagg {

Result<std::unique_ptr<PhysicalHashAggregate>> PhysicalHashAggregate::Create(
    BufferManager &buffer_manager, std::vector<LogicalTypeId> input_types,
    std::vector<idx_t> group_columns, std::vector<AggregateRequest> aggregates,
    HashAggregateConfig config) {
  SSAGG_ASSIGN_OR_RETURN(
      auto row_layout,
      AggregateRowLayout::Build(input_types, group_columns, aggregates));
  return std::unique_ptr<PhysicalHashAggregate>(new PhysicalHashAggregate(
      buffer_manager, std::move(input_types), std::move(row_layout), config));
}

Result<std::unique_ptr<LocalSinkState>> PhysicalHashAggregate::InitLocal() {
  auto state = std::make_unique<LocalState>();
  GroupedAggregateHashTable::Config ht_config;
  ht_config.capacity = config_.phase1_capacity;
  ht_config.radix_bits = config_.radix_bits;
  ht_config.resizable = false;
  ht_config.use_salt = config_.use_salt;
  ht_config.vectorized_probe = config_.vectorized_probe;
  ht_config.reset_fill_ratio = config_.reset_fill_ratio;
  SSAGG_ASSIGN_OR_RETURN(
      state->ht,
      GroupedAggregateHashTable::Create(buffer_manager_, row_layout_,
                                        ht_config));
  return std::unique_ptr<LocalSinkState>(std::move(state));
}

Status PhysicalHashAggregate::Sink(DataChunk &chunk, LocalSinkState &state) {
  auto &local = static_cast<LocalState &>(state);
  SSAGG_RETURN_NOT_OK(local.ht->AddChunk(chunk));
  if (local.ht->NeedsReset()) {
    // Reset once two-thirds full: only the entry array is cleared, the
    // tuples stay in place and their pages become evictable.
    local.ht->ClearPointerTable();
  }
  if (config_.enable_early_aggregation) {
    idx_t used = buffer_manager_.memory_used();
    idx_t local_rows = local.ht->data().Count();
    if (used > config_.early_aggregation_ratio *
                   buffer_manager_.memory_limit() &&
        local_rows >= config_.early_aggregation_min_rows &&
        local_rows >= 2 * local.last_compact_count) {
      SSAGG_RETURN_NOT_OK(EarlyCompactLocal(local));
      local.last_compact_count = local.ht->data().Count();
    }
  }
  return Status::OK();
}

Status PhysicalHashAggregate::EarlyCompactLocal(LocalState &local) {
  TraceSpan span("early_compact", "agg", local.ht->data().Count());
  // The pointer table may reference rows that are about to move; clear it
  // (this also releases the append pins).
  local.ht->ClearPointerTable();
  auto &data = local.ht->data();
  idx_t before = data.Count();
  for (idx_t p = 0; p < data.PartitionCount(); p++) {
    TupleDataCollection &part = data.partition(p);
    if (part.Count() < kVectorSize) {
      continue;  // nothing worth compacting
    }
    GroupedAggregateHashTable::Config ht_config;
    ht_config.capacity = config_.phase2_initial_capacity;
    ht_config.radix_bits = 0;
    ht_config.resizable = true;
    ht_config.use_salt = config_.use_salt;
    ht_config.vectorized_probe = config_.vectorized_probe;
    SSAGG_ASSIGN_OR_RETURN(
        auto compactor, GroupedAggregateHashTable::Create(
                            buffer_manager_, row_layout_, ht_config));
    DataChunk layout_chunk(row_layout_.layout.Types());
    std::vector<data_ptr_t> src_rows(kVectorSize);
    TupleDataScanState scan;
    part.InitScan(scan, /*destroy_after_scan=*/true);
    while (true) {
      SSAGG_ASSIGN_OR_RETURN(bool more,
                             part.Scan(scan, layout_chunk, src_rows.data()));
      if (!more) {
        break;
      }
      SSAGG_RETURN_NOT_OK(
          compactor->CombineSourceChunk(layout_chunk, src_rows.data()));
    }
    compactor->ClearPointerTable();
    // Replace the partition's contents with the compacted rows.
    part.Reset();
    part.Combine(compactor->data().partition(0));
  }
  idx_t after = data.Count();
  local.early_compactions++;
  local.early_compacted_rows += before - after;
  return Status::OK();
}

Status PhysicalHashAggregate::Combine(LocalSinkState &state) {
  auto &local = static_cast<LocalState &>(state);
  local.ht->ClearPointerTable();  // releases the append pins
  ScopedLock guard(lock_);
  if (!global_data_) {
    global_data_ = std::make_unique<PartitionedTupleData>(
        buffer_manager_, row_layout_.layout, config_.radix_bits);
  }
  stats_.materialized_rows += local.ht->data().Count();
  const auto &s = local.ht->stats();
  stats_.ht.Merge(s);
  stats_.phase1_resets += s.resets;
  stats_.early_compactions += local.early_compactions;
  stats_.early_compacted_rows += local.early_compacted_rows;
  global_data_->Combine(local.ht->data());
  local.ht.reset();
  return Status::OK();
}

Status PhysicalHashAggregate::AggregatePartition(PartitionedTupleData &data,
                                                 idx_t partition_idx,
                                                 DataSink &output,
                                                 TaskExecutor &executor) {
  TupleDataCollection &source = data.partition(partition_idx);
  if (source.Count() == 0) {
    return Status::OK();
  }
  TraceSpan span("phase2.partition", "agg", partition_idx);
  GroupedAggregateHashTable::Config ht_config;
  ht_config.capacity = config_.phase2_initial_capacity;
  ht_config.radix_bits = 0;  // a phase-2 table is not repartitioned
  ht_config.resizable = true;
  ht_config.use_salt = config_.use_salt;
  ht_config.vectorized_probe = config_.vectorized_probe;
  ht_config.reset_fill_ratio = config_.reset_fill_ratio;
  SSAGG_ASSIGN_OR_RETURN(
      auto ht, GroupedAggregateHashTable::Create(buffer_manager_, row_layout_,
                                                 ht_config));

  // Warm the partition's spilled pages while the hash table is set up; the
  // scan itself prefetches one page ahead from then on.
  source.PrefetchForScan(4);

  // Merge the partition's pre-aggregated rows; pages are destroyed as the
  // scan moves past them.
  DataChunk layout_chunk(row_layout_.layout.Types());
  std::vector<data_ptr_t> src_rows(kVectorSize);
  TupleDataScanState scan;
  source.InitScan(scan, /*destroy_after_scan=*/true);
  while (true) {
    SSAGG_ASSIGN_OR_RETURN(bool more,
                           source.Scan(scan, layout_chunk, src_rows.data()));
    if (!more) {
      break;
    }
    SSAGG_RETURN_NOT_OK(executor.CheckDeadline());
    SSAGG_RETURN_NOT_OK(ht->CombineSourceChunk(layout_chunk, src_rows.data()));
  }

  // The pointer table is no longer needed; release the build pins so result
  // pages can be freed as soon as the output scan passes them.
  ht->ClearPointerTable();

  // Push the fully aggregated partition to the next operator immediately,
  // freeing its pages as they are consumed.
  SSAGG_ASSIGN_OR_RETURN(auto out_local, output.InitLocal());
  DataChunk out(OutputTypes());
  TupleDataCollection &result = ht->data().partition(0);
  TupleDataScanState result_scan;
  result.InitScan(result_scan, /*destroy_after_scan=*/true);
  idx_t groups = 0;
  while (true) {
    SSAGG_ASSIGN_OR_RETURN(
        bool more, result.Scan(result_scan, layout_chunk, src_rows.data()));
    if (!more) {
      break;
    }
    ht->FinalizeChunk(layout_chunk, src_rows.data(), out);
    groups += out.size();
    SSAGG_RETURN_NOT_OK(output.Sink(out, *out_local));
  }
  SSAGG_RETURN_NOT_OK(output.Combine(*out_local));
  {
    ScopedLock guard(lock_);
    stats_.unique_groups += groups;
    stats_.ht.Merge(ht->stats());
  }
  return Status::OK();
}

Status PhysicalHashAggregate::EmitResults(DataSink &output,
                                          TaskExecutor &executor) {
  // Resolve the merged partition set once under the lock; the partition
  // tasks then work on disjoint partitions of it. (EmitResults used to read
  // global_data_ unlocked in every task.)
  PartitionedTupleData *data;
  {
    ScopedLock guard(lock_);
    data = global_data_.get();
  }
  if (data == nullptr) {
    return Status::OK();  // no input at all
  }
  std::vector<std::function<Status()>> tasks;
  for (idx_t p = 0; p < data->PartitionCount(); p++) {
    tasks.push_back([this, data, p, &output, &executor]() {
      return AggregatePartition(*data, p, output, executor);
    });
  }
  return executor.RunTasks(tasks);
}

HashAggregateStats PhysicalHashAggregate::stats() const {
  ScopedLock guard(lock_);
  return stats_;
}

idx_t PhysicalHashAggregate::MaterializedBytes() const {
  ScopedLock guard(lock_);
  return global_data_ ? global_data_->SizeInBytes() : 0;
}

}  // namespace ssagg
