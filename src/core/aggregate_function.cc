#include "core/aggregate_function.h"

#include <algorithm>
#include <cstring>

namespace ssagg {

namespace {

// All states start as all-zero bytes; `seen == 0` encodes "no non-NULL
// input yet", which finalizes to NULL.

template <typename T>
struct ValueState {
  T value;
  uint64_t seen;
};

struct AvgState {
  double sum;
  uint64_t count;
};

struct CountState {
  int64_t count;
};

template <typename T>
T LoadValue(const Vector &input, idx_t row) {
  T value;
  std::memcpy(&value, input.data() + row * sizeof(T), sizeof(T));
  return value;
}

//===--------------------------------------------------------------------===//
// COUNT(*) / COUNT(col)
//===--------------------------------------------------------------------===//

void CountStarUpdate(const Vector *, const idx_t *, data_ptr_t *states,
                     idx_t count) {
  for (idx_t i = 0; i < count; i++) {
    reinterpret_cast<CountState *>(states[i])->count++;
  }
}

void CountUpdate(const Vector *input, const idx_t *sel, data_ptr_t *states,
                 idx_t count) {
  for (idx_t i = 0; i < count; i++) {
    idx_t r = sel ? sel[i] : i;
    if (input->validity().RowIsValid(r)) {
      reinterpret_cast<CountState *>(states[i])->count++;
    }
  }
}

void CountCombine(const_data_ptr_t src, data_ptr_t dst) {
  reinterpret_cast<CountState *>(dst)->count +=
      reinterpret_cast<const CountState *>(src)->count;
}

void CountFinalize(const_data_ptr_t state, Vector &out, idx_t out_row) {
  out.SetValue<int64_t>(out_row,
                        reinterpret_cast<const CountState *>(state)->count);
}

//===--------------------------------------------------------------------===//
// SUM / MIN / MAX / ANY_VALUE over numeric types
//===--------------------------------------------------------------------===//

struct SumOp {
  template <typename T, typename ACC>
  static void Merge(ValueState<ACC> &state, T value) {
    state.value += static_cast<ACC>(value);
    state.seen = 1;
  }
  template <typename ACC>
  static void Combine(const ValueState<ACC> &src, ValueState<ACC> &dst) {
    if (src.seen) {
      dst.value += src.value;
      dst.seen = 1;
    }
  }
};

struct MinOp {
  template <typename T, typename ACC>
  static void Merge(ValueState<ACC> &state, T value) {
    if (!state.seen || static_cast<ACC>(value) < state.value) {
      state.value = static_cast<ACC>(value);
    }
    state.seen = 1;
  }
  template <typename ACC>
  static void Combine(const ValueState<ACC> &src, ValueState<ACC> &dst) {
    if (src.seen && (!dst.seen || src.value < dst.value)) {
      dst.value = src.value;
    }
    dst.seen |= src.seen;
  }
};

struct MaxOp {
  template <typename T, typename ACC>
  static void Merge(ValueState<ACC> &state, T value) {
    if (!state.seen || static_cast<ACC>(value) > state.value) {
      state.value = static_cast<ACC>(value);
    }
    state.seen = 1;
  }
  template <typename ACC>
  static void Combine(const ValueState<ACC> &src, ValueState<ACC> &dst) {
    if (src.seen && (!dst.seen || src.value > dst.value)) {
      dst.value = src.value;
    }
    dst.seen |= src.seen;
  }
};

struct AnyValueOp {
  template <typename T, typename ACC>
  static void Merge(ValueState<ACC> &state, T value) {
    if (!state.seen) {
      state.value = static_cast<ACC>(value);
      state.seen = 1;
    }
  }
  template <typename ACC>
  static void Combine(const ValueState<ACC> &src, ValueState<ACC> &dst) {
    if (!dst.seen && src.seen) {
      dst.value = src.value;
      dst.seen = 1;
    }
  }
};

template <typename T, typename ACC, typename OP>
void ValueUpdate(const Vector *input, const idx_t *sel, data_ptr_t *states,
                 idx_t count) {
  for (idx_t i = 0; i < count; i++) {
    idx_t r = sel ? sel[i] : i;
    if (!input->validity().RowIsValid(r)) {
      continue;
    }
    OP::template Merge<T, ACC>(
        *reinterpret_cast<ValueState<ACC> *>(states[i]), LoadValue<T>(*input, r));
  }
}

template <typename ACC, typename OP>
void ValueCombine(const_data_ptr_t src, data_ptr_t dst) {
  OP::template Combine<ACC>(*reinterpret_cast<const ValueState<ACC> *>(src),
                            *reinterpret_cast<ValueState<ACC> *>(dst));
}

template <typename ACC, typename OUT>
void ValueFinalize(const_data_ptr_t state, Vector &out, idx_t out_row) {
  const auto *s = reinterpret_cast<const ValueState<ACC> *>(state);
  if (!s->seen) {
    out.validity().SetInvalid(out_row);
    out.SetValue<OUT>(out_row, OUT());
    return;
  }
  out.SetValue<OUT>(out_row, static_cast<OUT>(s->value));
}

//===--------------------------------------------------------------------===//
// AVG
//===--------------------------------------------------------------------===//

template <typename T>
void AvgUpdate(const Vector *input, const idx_t *sel, data_ptr_t *states,
               idx_t count) {
  for (idx_t i = 0; i < count; i++) {
    idx_t r = sel ? sel[i] : i;
    if (!input->validity().RowIsValid(r)) {
      continue;
    }
    auto *s = reinterpret_cast<AvgState *>(states[i]);
    s->sum += static_cast<double>(LoadValue<T>(*input, r));
    s->count++;
  }
}

void AvgCombine(const_data_ptr_t src, data_ptr_t dst) {
  const auto *s = reinterpret_cast<const AvgState *>(src);
  auto *d = reinterpret_cast<AvgState *>(dst);
  d->sum += s->sum;
  d->count += s->count;
}

void AvgFinalize(const_data_ptr_t state, Vector &out, idx_t out_row) {
  const auto *s = reinterpret_cast<const AvgState *>(state);
  if (s->count == 0) {
    out.validity().SetInvalid(out_row);
    out.SetValue<double>(out_row, 0.0);
    return;
  }
  out.SetValue<double>(out_row, s->sum / static_cast<double>(s->count));
}

template <typename T, typename ACC, typename OP, typename OUT>
AggregateFunction MakeValueAggregate(AggregateKind kind,
                                     LogicalTypeId input_type,
                                     LogicalTypeId result_type) {
  AggregateFunction fn;
  fn.kind = kind;
  fn.input_type = input_type;
  fn.result_type = result_type;
  fn.state_width = sizeof(ValueState<ACC>);
  fn.update = ValueUpdate<T, ACC, OP>;
  fn.combine = ValueCombine<ACC, OP>;
  fn.finalize = ValueFinalize<ACC, OUT>;
  return fn;
}

template <typename OP>
Result<AggregateFunction> DispatchValueAggregate(AggregateKind kind,
                                                 LogicalTypeId input_type,
                                                 bool sum_widens) {
  switch (input_type) {
    case LogicalTypeId::kInt32:
    case LogicalTypeId::kDate:
      if (sum_widens) {
        return MakeValueAggregate<int32_t, int64_t, OP, int64_t>(
            kind, input_type, LogicalTypeId::kInt64);
      }
      return MakeValueAggregate<int32_t, int32_t, OP, int32_t>(kind, input_type,
                                                               input_type);
    case LogicalTypeId::kInt64:
      return MakeValueAggregate<int64_t, int64_t, OP, int64_t>(
          kind, input_type, LogicalTypeId::kInt64);
    case LogicalTypeId::kDouble:
      return MakeValueAggregate<double, double, OP, double>(
          kind, input_type, LogicalTypeId::kDouble);
    default:
      return Status::InvalidArgument(
          std::string("unsupported input type for aggregate ") +
          AggregateKindName(kind) + ": " + TypeName(input_type));
  }
}

}  // namespace

const char *AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCountStar:
      return "COUNT(*)";
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
    case AggregateKind::kAvg:
      return "AVG";
    case AggregateKind::kAnyValue:
      return "ANY_VALUE";
  }
  return "UNKNOWN";
}

Result<AggregateFunction> GetAggregateFunction(AggregateKind kind,
                                               LogicalTypeId input_type) {
  switch (kind) {
    case AggregateKind::kCountStar: {
      AggregateFunction fn;
      fn.kind = kind;
      fn.result_type = LogicalTypeId::kInt64;
      fn.state_width = sizeof(CountState);
      fn.update = CountStarUpdate;
      fn.combine = CountCombine;
      fn.finalize = CountFinalize;
      return fn;
    }
    case AggregateKind::kCount: {
      AggregateFunction fn;
      fn.kind = kind;
      fn.input_type = input_type;
      fn.result_type = LogicalTypeId::kInt64;
      fn.state_width = sizeof(CountState);
      fn.update = CountUpdate;
      fn.combine = CountCombine;
      fn.finalize = CountFinalize;
      return fn;
    }
    case AggregateKind::kSum:
      return DispatchValueAggregate<SumOp>(kind, input_type,
                                           /*sum_widens=*/true);
    case AggregateKind::kMin:
      return DispatchValueAggregate<MinOp>(kind, input_type, false);
    case AggregateKind::kMax:
      return DispatchValueAggregate<MaxOp>(kind, input_type, false);
    case AggregateKind::kAvg: {
      AggregateFunction fn;
      fn.kind = kind;
      fn.input_type = input_type;
      fn.result_type = LogicalTypeId::kDouble;
      fn.state_width = sizeof(AvgState);
      switch (input_type) {
        case LogicalTypeId::kInt32:
        case LogicalTypeId::kDate:
          fn.update = AvgUpdate<int32_t>;
          break;
        case LogicalTypeId::kInt64:
          fn.update = AvgUpdate<int64_t>;
          break;
        case LogicalTypeId::kDouble:
          fn.update = AvgUpdate<double>;
          break;
        default:
          return Status::InvalidArgument("unsupported input type for AVG: " +
                                         std::string(TypeName(input_type)));
      }
      fn.combine = AvgCombine;
      fn.finalize = AvgFinalize;
      return fn;
    }
    case AggregateKind::kAnyValue:
      // Numeric ANY_VALUE via states; VARCHAR ANY_VALUE is handled as a
      // write-once payload column in the row layout (see
      // grouped_aggregate_hash_table.h), not through this path.
      return DispatchValueAggregate<AnyValueOp>(kind, input_type, false);
  }
  return Status::InvalidArgument("unknown aggregate kind");
}

}  // namespace ssagg
