#ifndef SSAGG_CORE_UNGROUPED_AGGREGATE_H_
#define SSAGG_CORE_UNGROUPED_AGGREGATE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "core/aggregate_function.h"
#include "execution/operator.h"

namespace ssagg {

/// Aggregation without GROUP BY (paper Section V, "Low Cardinality
/// Aggregation", extreme case): each thread folds its morsels into a local
/// state vector; combining the per-thread states is a negligible, single
/// mutex-serialized step ("combining, e.g., four rows from each thread, has
/// a negligible cost"). No hash table, no partitioning, no spilling — the
/// state is a few bytes regardless of input size.
///
/// VARCHAR inputs are supported for MIN/MAX/ANY_VALUE by keeping the
/// candidate value in owned (boxed) per-thread storage.
class PhysicalUngroupedAggregate : public DataSink {
 public:
  static Result<std::unique_ptr<PhysicalUngroupedAggregate>> Create(
      std::vector<LogicalTypeId> input_types,
      std::vector<AggregateRequest> aggregates);

  std::vector<LogicalTypeId> OutputTypes() const;

  Result<std::unique_ptr<LocalSinkState>> InitLocal() override;
  Status Sink(DataChunk &chunk, LocalSinkState &state) override;
  Status Combine(LocalSinkState &state) override;

  /// Produces the single result row; call after the pipeline finished.
  Status GetResult(DataChunk &out);

 private:
  /// Boxed state for a string-typed MIN/MAX/ANY_VALUE.
  struct StringState {
    std::optional<std::string> value;
  };

  struct AggregateEntry {
    AggregateRequest request;
    AggregateFunction function;  // numeric path
    idx_t state_offset = 0;
    bool is_string = false;      // boxed path
    idx_t string_index = 0;
    LogicalTypeId result_type;
  };

  struct LocalState : public LocalSinkState {
    std::vector<data_t> states;
    std::vector<StringState> strings;
  };

  explicit PhysicalUngroupedAggregate(
      std::vector<LogicalTypeId> input_types)
      : input_types_(std::move(input_types)) {}

  void UpdateString(const AggregateEntry &entry, const Vector &input,
                    idx_t count, StringState &state) const;
  void CombineString(const AggregateEntry &entry, const StringState &src,
                     StringState &dst) const;

  std::vector<LogicalTypeId> input_types_;
  std::vector<AggregateEntry> aggregates_;
  idx_t total_state_width_ = 0;
  idx_t string_state_count_ = 0;

  Mutex lock_;
  std::vector<data_t> global_states_ SSAGG_GUARDED_BY(lock_);
  std::vector<StringState> global_strings_ SSAGG_GUARDED_BY(lock_);
  bool has_input_ SSAGG_GUARDED_BY(lock_) = false;
};

}  // namespace ssagg

#endif  // SSAGG_CORE_UNGROUPED_AGGREGATE_H_
