#ifndef SSAGG_CORE_AGGREGATE_ROW_LAYOUT_H_
#define SSAGG_CORE_AGGREGATE_ROW_LAYOUT_H_

#include <vector>

#include "core/aggregate_function.h"
#include "layout/tuple_data_layout.h"

namespace ssagg {

/// An aggregate resolved against the hash table's row layout.
struct AggregateObject {
  AggregateRequest request;
  AggregateFunction function;
  /// Offset of the state inside the row's aggregate-state area (non-sticky).
  idx_t state_offset = 0;
  /// ANY_VALUE aggregates are "sticky": materialized once, at group
  /// creation, as a regular layout column (so string payloads live on the
  /// spillable heap pages and are covered by pointer recomputation).
  bool sticky = false;
  /// For sticky aggregates: the layout column holding the value.
  idx_t layout_column = 0;
};

/// The row shape shared by the hash table, the partitioned data, and the
/// operator: [group columns..., hash, sticky payload columns...] plus a
/// trailing aggregate-state area.
struct AggregateRowLayout {
  TupleDataLayout layout;
  idx_t group_count = 0;
  idx_t hash_column = 0;
  idx_t hash_offset = 0;
  std::vector<idx_t> group_columns;  // indices into the operator input chunk
  std::vector<AggregateObject> aggregates;

  static Result<AggregateRowLayout> Build(
      const std::vector<LogicalTypeId> &input_types,
      const std::vector<idx_t> &group_columns,
      const std::vector<AggregateRequest> &requests);

  /// Output chunk types: group columns, then one result per aggregate.
  std::vector<LogicalTypeId> OutputTypes() const;
};

}  // namespace ssagg

#endif  // SSAGG_CORE_AGGREGATE_ROW_LAYOUT_H_
