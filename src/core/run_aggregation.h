#ifndef SSAGG_CORE_RUN_AGGREGATION_H_
#define SSAGG_CORE_RUN_AGGREGATION_H_

#include <memory>
#include <vector>

#include "buffer/buffer_manager.h"
#include "core/physical_hash_aggregate.h"
#include "execution/operator.h"
#include "execution/task_executor.h"
#include "observe/profile.h"
#include "observe/progress.h"

namespace ssagg {

/// Convenience: runs `GROUP BY <group_columns> : <aggregates>` over a
/// source, pushing results into `output`. This is the full two-pipeline
/// query: (source -> aggregate sink), then (aggregate partitions ->
/// output). Returns operator statistics.
///
/// When `profile` is non-null it is filled with the query's observability
/// snapshot: phase timings, operator counters ("agg.*"), executor counters
/// and timings ("exec.*"), the growth the query caused in the global
/// metrics registry ("bm.*", "io.*", ...), and per-query latency
/// histograms. If SSAGG_TRACE is set, the trace file is flushed after the
/// query.
///
/// When `progress` is non-null it is armed before execution and fed live:
/// another thread may Poll() it at any point for phase, rows consumed, the
/// planner's group estimate, spill bytes and latency histograms. The
/// end-to-end latency lands in the "query.latency_ns" histogram, and an
/// error Status triggers a flight-recorder anomaly dump (when
/// SSAGG_FLIGHT_DUMP is configured).
Result<HashAggregateStats> RunGroupedAggregation(
    BufferManager &buffer_manager, DataSource &source,
    const std::vector<idx_t> &group_columns,
    const std::vector<AggregateRequest> &aggregates, DataSink &output,
    TaskExecutor &executor, HashAggregateConfig config = {},
    QueryProfile *profile = nullptr, QueryProgress *progress = nullptr);

/// Flattens operator stats into a profile's "agg.*" counters (shared by
/// RunGroupedAggregation and benches that drive the operator directly).
void AddAggregateStats(const HashAggregateStats &stats, QueryProfile &profile);

}  // namespace ssagg

#endif  // SSAGG_CORE_RUN_AGGREGATION_H_
