#ifndef SSAGG_CORE_RUN_AGGREGATION_H_
#define SSAGG_CORE_RUN_AGGREGATION_H_

#include <memory>
#include <vector>

#include "buffer/buffer_manager.h"
#include "core/physical_hash_aggregate.h"
#include "execution/operator.h"
#include "execution/task_executor.h"

namespace ssagg {

/// Convenience: runs `GROUP BY <group_columns> : <aggregates>` over a
/// source, pushing results into `output`. This is the full two-pipeline
/// query: (source -> aggregate sink), then (aggregate partitions ->
/// output). Returns operator statistics.
Result<HashAggregateStats> RunGroupedAggregation(
    BufferManager &buffer_manager, DataSource &source,
    const std::vector<idx_t> &group_columns,
    const std::vector<AggregateRequest> &aggregates, DataSink &output,
    TaskExecutor &executor, HashAggregateConfig config = {});

}  // namespace ssagg

#endif  // SSAGG_CORE_RUN_AGGREGATION_H_
