#ifndef SSAGG_CORE_RUN_AGGREGATION_H_
#define SSAGG_CORE_RUN_AGGREGATION_H_

#include <memory>
#include <vector>

#include "buffer/buffer_manager.h"
#include "core/physical_hash_aggregate.h"
#include "execution/operator.h"
#include "execution/task_executor.h"
#include "observe/profile.h"

namespace ssagg {

/// Convenience: runs `GROUP BY <group_columns> : <aggregates>` over a
/// source, pushing results into `output`. This is the full two-pipeline
/// query: (source -> aggregate sink), then (aggregate partitions ->
/// output). Returns operator statistics.
///
/// When `profile` is non-null it is filled with the query's observability
/// snapshot: phase timings, operator counters ("agg.*"), executor counters
/// and timings ("exec.*"), and the growth the query caused in the global
/// metrics registry ("bm.*", "io.*", ...). If SSAGG_TRACE is set, the trace
/// file is flushed after the query.
Result<HashAggregateStats> RunGroupedAggregation(
    BufferManager &buffer_manager, DataSource &source,
    const std::vector<idx_t> &group_columns,
    const std::vector<AggregateRequest> &aggregates, DataSink &output,
    TaskExecutor &executor, HashAggregateConfig config = {},
    QueryProfile *profile = nullptr);

/// Flattens operator stats into a profile's "agg.*" counters (shared by
/// RunGroupedAggregation and benches that drive the operator directly).
void AddAggregateStats(const HashAggregateStats &stats, QueryProfile &profile);

}  // namespace ssagg

#endif  // SSAGG_CORE_RUN_AGGREGATION_H_
