#include "core/grouped_aggregate_hash_table.h"

#include <algorithm>
#include <cstring>

#include "common/string_type.h"
#include "observe/trace.h"

namespace ssagg {

namespace {

bool IsPowerOfTwo(idx_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// A slot claimed during the salt scan but not yet backfilled with its row
/// pointer: the salt is already in place, the pointer bits carry a non-zero
/// tag so the slot can never be mistaken for empty (entry 0), even when the
/// salt itself is 0. Rows of the same round that salt-match a claimed slot
/// are deferred to the compare pass, which runs after the batched append
/// has backfilled the real pointer.
inline uint64_t MakeClaimedEntry(uint16_t salt) {
  return (static_cast<uint64_t>(salt) << kSaltShift) | 1ULL;
}

inline void PrefetchRead(const void *ptr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(ptr, 0, 3);
#else
  (void)ptr;
#endif
}

}  // namespace

GroupedAggregateHashTable::GroupedAggregateHashTable(
    BufferManager &buffer_manager, Config config)
    : buffer_manager_(buffer_manager), config_(config) {}

Result<std::unique_ptr<GroupedAggregateHashTable>>
GroupedAggregateHashTable::Create(BufferManager &buffer_manager,
                                  const std::vector<LogicalTypeId> &input_types,
                                  const std::vector<idx_t> &group_columns,
                                  const std::vector<AggregateRequest> &aggregates,
                                  Config config) {
  SSAGG_ASSIGN_OR_RETURN(
      auto row_layout,
      AggregateRowLayout::Build(input_types, group_columns, aggregates));
  return Create(buffer_manager, row_layout, config);
}

Result<std::unique_ptr<GroupedAggregateHashTable>>
GroupedAggregateHashTable::Create(BufferManager &buffer_manager,
                                  const AggregateRowLayout &row_layout,
                                  Config config) {
  if (!IsPowerOfTwo(config.capacity) ||
      config.capacity > (idx_t(1) << kMaxHashTableBits)) {
    return Status::InvalidArgument(
        "hash table capacity must be a power of two <= 2^24");
  }
  if (config.radix_bits > kMaxRadixBits) {
    return Status::InvalidArgument("too many radix bits");
  }
  std::unique_ptr<GroupedAggregateHashTable> ht(
      new GroupedAggregateHashTable(buffer_manager, config));
  SSAGG_RETURN_NOT_OK(ht->Initialize(row_layout));
  return ht;
}

Status GroupedAggregateHashTable::Initialize(AggregateRowLayout row_layout) {
  row_layout_ = std::move(row_layout);

  data_ = std::make_unique<PartitionedTupleData>(
      buffer_manager_, row_layout_.layout, config_.radix_bits);
  capacity_ = config_.capacity;
  mask_ = capacity_ - 1;
  SSAGG_ASSIGN_OR_RETURN(entries_alloc_,
                         buffer_manager_.AllocateNonPaged(capacity_ * 8));
  std::memset(entries_alloc_.data(), 0, capacity_ * 8);

  append_chunk_.Initialize(row_layout_.layout.Types());
  hashes_.resize(kVectorSize);
  row_ptrs_.resize(kVectorSize);
  state_ptrs_.resize(kVectorSize);
  sel_scratch_.resize(kVectorSize);

  row_matcher_.Initialize(row_layout_.layout, row_layout_.group_count,
                          row_layout_.hash_column);
  ht_offsets_.resize(kVectorSize);
  salts_.resize(kVectorSize);
  new_row_ptrs_.resize(kVectorSize);

  // Direct-index pointer cache: only for resizable (merge) tables over a
  // single non-NULL-layout int64 group key; fixed-size tables reset too
  // often for cached pointers to pay off.
  direct_enabled_ = config_.direct_range > 0 && config_.resizable &&
                    row_layout_.group_count == 1 &&
                    row_layout_.layout.ColumnType(0) == LogicalTypeId::kInt64;
  if (direct_enabled_) {
    direct_ptrs_.assign(config_.direct_range + 1, nullptr);
  }
  return Status::OK();
}

std::vector<LogicalTypeId> GroupedAggregateHashTable::OutputTypes() const {
  return row_layout_.OutputTypes();
}

bool GroupedAggregateHashTable::RowMatches(const DataChunk &layout_chunk,
                                           idx_t r,
                                           const_data_ptr_t row) const {
  const TupleDataLayout &layout = row_layout_.layout;
  // Compare the stored hash first (cheap 8-byte check), then group columns.
  {
    hash_t row_hash;
    std::memcpy(&row_hash, row + row_layout_.hash_offset, sizeof(hash_t));
    hash_t in_hash;
    std::memcpy(&in_hash,
                layout_chunk.column(row_layout_.hash_column).data() +
                    r * sizeof(hash_t),
                sizeof(hash_t));
    if (row_hash != in_hash) {
      return false;
    }
  }
  for (idx_t c = 0; c < row_layout_.group_count; c++) {
    const Vector &vec = layout_chunk.column(c);
    bool in_valid = vec.validity().RowIsValid(r);
    bool row_valid = layout.RowIsColumnValid(row, c);
    if (in_valid != row_valid) {
      return false;
    }
    if (!in_valid) {
      continue;  // NULL == NULL for grouping
    }
    idx_t offset = layout.ColumnOffset(c);
    if (TypeIsVarSize(layout.ColumnType(c))) {
      string_t stored;
      std::memcpy(&stored, row + offset, sizeof(string_t));
      const string_t &input = vec.Values<string_t>()[r];
      if (stored != input) {
        return false;
      }
    } else {
      idx_t width = TypeWidth(layout.ColumnType(c));
      if (std::memcmp(row + offset, vec.data() + r * width, width) != 0) {
        return false;
      }
    }
  }
  return true;
}

Status GroupedAggregateHashTable::FindOrCreateGroups(
    const DataChunk &layout_chunk, const hash_t *hashes, idx_t start,
    idx_t count) {
  if (config_.vectorized_probe) {
    return FindOrCreateGroupsVectorized(layout_chunk, hashes, start, count);
  }
  return FindOrCreateGroupsScalar(layout_chunk, hashes, start, count);
}

Status GroupedAggregateHashTable::FindOrCreateGroupsScalar(
    const DataChunk &layout_chunk, const hash_t *hashes, idx_t start,
    idx_t count) {
  uint64_t *table = entries();
  const bool use_salt = config_.use_salt;
  for (idx_t r = start; r < start + count; r++) {
    // Grow / guard *before* inserting so the table never fills up
    // completely (linear probing needs empty slots to terminate).
    if (config_.resizable) {
      if (count_ >= capacity_ * config_.reset_fill_ratio) {
        SSAGG_RETURN_NOT_OK(Resize());
        table = entries();
      }
    } else {
      SSAGG_ASSERT(count_ < capacity_);
    }
    const hash_t h = hashes[r];
    const uint16_t salt = ExtractSalt(h);
    idx_t idx = h & mask_;
    while (true) {
      stats_.probe_steps++;
      uint64_t entry = table[idx];
      if (entry == 0) {
        // New group: materialize the row directly into its radix partition
        // (column-major -> row-major conversion happens here).
        SSAGG_ASSIGN_OR_RETURN(data_ptr_t row,
                               data_->AppendRow(layout_chunk, h, r));
        table[idx] = MakeEntry(row, salt);
        count_++;
        stats_.inserts++;
        row_ptrs_[r] = row;
        break;
      }
      if (!use_salt || EntrySalt(entry) == salt) {
        data_ptr_t row = EntryPointer(entry);
        stats_.key_compares++;
        stats_.scalar_compares++;
        if (RowMatches(layout_chunk, r, row)) {
          row_ptrs_[r] = row;
          break;
        }
        stats_.key_compare_misses++;
      }
      idx = (idx + 1) & mask_;
    }
  }
  return Status::OK();
}

Status GroupedAggregateHashTable::FindOrCreateGroupsVectorized(
    const DataChunk &layout_chunk, const hash_t *hashes, idx_t start,
    idx_t count) {
  SSAGG_DASSERT(start + count <= kVectorSize);
  uint64_t *table = entries();
  const bool use_salt = config_.use_salt;

  // All slot indices and salts are computed up front, once.
  for (idx_t r = start; r < start + count; r++) {
    ht_offsets_[r] = hashes[r] & mask_;
    salts_[r] = ExtractSalt(hashes[r]);
  }
  remaining_sel_.InitRange(start, count);

  while (!remaining_sel_.empty()) {
    const idx_t remaining = remaining_sel_.size();
    stats_.probe_rounds++;

    // The grow/budget guard is hoisted out of the per-row loop: one check
    // per round bounds this round's claims. A resizable table grows until
    // even an all-new-groups round stays under the fill threshold; a
    // fixed-size (phase-1) table relies on the caller batching by
    // ResetBudget(), which the per-claim assert below re-checks.
    if (config_.resizable) {
      while (count_ + remaining >= capacity_ * config_.reset_fill_ratio) {
        if (capacity_ >= (idx_t(1) << kMaxHashTableBits)) {
          if (count_ + remaining >= capacity_) {
            return Status::OutOfMemory(
                "hash table cannot grow beyond 2^24 entries; increase radix "
                "bits");
          }
          break;
        }
        SSAGG_RETURN_NOT_OK(Resize());
        table = entries();
        // The mask changed: every unresolved row restarts its probe.
        for (idx_t i = 0; i < remaining; i++) {
          const idx_t r = remaining_sel_[i];
          ht_offsets_[r] = hashes[r] & mask_;
        }
      }
    }

    // Software-prefetch the entries this round will inspect; for a table
    // past cache size this overlaps the dependent loads of the salt scan.
    // An entry array at or under 64 KiB is cache-resident (the planner's
    // central/tree tables are sized to land here at low cardinality), so
    // the pass would be pure issue overhead and is skipped.
    const idx_t *sel = remaining_sel_.data();
    if (capacity_ * sizeof(uint64_t) > idx_t{64} * 1024) {
      for (idx_t i = 0; i < remaining; i++) {
        PrefetchRead(&table[ht_offsets_[sel[i]]]);
      }
      stats_.prefetches += remaining;
    }

    // Salt scan: advance each row to its first empty or salt-matching
    // slot. Empty slots are claimed immediately (salt + tag) so duplicate
    // new keys within the batch collapse: the second row of a duplicate
    // pair salt-matches the claim and is routed to the compare pass.
    new_group_sel_.Clear();
    compare_sel_.Clear();
    no_match_sel_.Clear();
    for (idx_t i = 0; i < remaining; i++) {
      const idx_t r = sel[i];
      const uint16_t salt = salts_[r];
      idx_t idx = ht_offsets_[r];
      while (true) {
        stats_.probe_steps++;
        const uint64_t entry = table[idx];
        if (entry == 0) {
          SSAGG_ASSERT(count_ < capacity_);
          table[idx] = MakeClaimedEntry(salt);
          count_++;
          new_group_sel_.Append(r);
          break;
        }
        if (!use_salt || EntrySalt(entry) == salt) {
          compare_sel_.Append(r);
          break;
        }
        idx = (idx + 1) & mask_;
      }
      ht_offsets_[r] = idx;
    }

    // One batched, partition-aware append materializes every new group of
    // the round (column-major -> row-major conversion happens here), then
    // the claimed entries are backfilled with the row addresses.
    if (!new_group_sel_.empty()) {
      const idx_t new_count = new_group_sel_.size();
      SSAGG_RETURN_NOT_OK(data_->Append(layout_chunk, hashes,
                                        new_group_sel_.data(), new_count,
                                        new_row_ptrs_.data()));
      for (idx_t i = 0; i < new_count; i++) {
        const idx_t r = new_group_sel_[i];
        table[ht_offsets_[r]] = MakeEntry(new_row_ptrs_[i], salts_[r]);
        row_ptrs_[r] = new_row_ptrs_[i];
      }
      stats_.inserts += new_count;
    }

    // Column-at-a-time key matching over the candidates. The candidate row
    // pointers are gathered (and prefetched) first; gathering happens after
    // the backfill so candidates that salt-matched a claim of this very
    // round see the real row.
    if (!compare_sel_.empty()) {
      const idx_t compare_count = compare_sel_.size();
      for (idx_t i = 0; i < compare_count; i++) {
        const idx_t r = compare_sel_[i];
        data_ptr_t row = EntryPointer(table[ht_offsets_[r]]);
        row_ptrs_[r] = row;
        PrefetchRead(row);
      }
      stats_.prefetches += compare_count;
      row_matcher_.Match(layout_chunk, row_ptrs_.data(), compare_sel_,
                         no_match_sel_);
      stats_.key_compares += compare_count;
      stats_.vectorized_compares += compare_count;
      stats_.key_compare_misses += no_match_sel_.size();
      // Matched rows are done (row_ptrs_ already points at their group);
      // mismatches advance one slot and go into the next round.
      for (idx_t i = 0; i < no_match_sel_.size(); i++) {
        const idx_t r = no_match_sel_[i];
        ht_offsets_[r] = (ht_offsets_[r] + 1) & mask_;
      }
    }
    remaining_sel_.Swap(no_match_sel_);
  }
  return Status::OK();
}

Status GroupedAggregateHashTable::AddChunkDirect(const DataChunk &input,
                                                 bool *handled) {
  const idx_t count = input.size();
  const Vector &key_vec = input.column(row_layout_.group_columns[0]);
  const auto *keys = key_vec.Values<int64_t>();
  const ValidityMask &validity = key_vec.validity();
  const uint64_t range = config_.direct_range;
  const auto min = static_cast<uint64_t>(config_.direct_min);
  // Resolve every row before mutating anything: a single uncached or
  // out-of-range key (wraparound makes below-min keys land past `range`)
  // bails the whole chunk out to the generic path, which is then free to
  // insert and update from scratch.
  *handled = false;
  if (validity.AllValid()) {
    for (idx_t r = 0; r < count; r++) {
      const uint64_t idx = static_cast<uint64_t>(keys[r]) - min;
      if (idx >= range || direct_ptrs_[idx] == nullptr) {
        return Status::OK();
      }
      row_ptrs_[r] = direct_ptrs_[idx];
    }
  } else {
    for (idx_t r = 0; r < count; r++) {
      uint64_t idx = range;  // the NULL-key slot
      if (validity.RowIsValid(r)) {
        idx = static_cast<uint64_t>(keys[r]) - min;
        if (idx >= range) {
          return Status::OK();
        }
      }
      if (direct_ptrs_[idx] == nullptr) {
        return Status::OK();
      }
      row_ptrs_[r] = direct_ptrs_[idx];
    }
  }
  // Every group already exists: sticky aggregates are first-wins (nothing
  // to do) and the non-sticky fold below is the same one AddChunk runs.
  const idx_t aggr_offset = row_layout_.layout.AggregateOffset();
  for (const auto &agg : row_layout_.aggregates) {
    if (agg.sticky) {
      continue;
    }
    const idx_t offset = aggr_offset + agg.state_offset;
    for (idx_t i = 0; i < count; i++) {
      state_ptrs_[i] = row_ptrs_[i] + offset;
    }
    const Vector *arg = agg.request.input_column == kInvalidIndex
                            ? nullptr
                            : &input.column(agg.request.input_column);
    agg.function.update(arg, nullptr, state_ptrs_.data(), count);
  }
  stats_.direct_hit_rows += count;
  *handled = true;
  return Status::OK();
}

void GroupedAggregateHashTable::BackfillDirect(const DataChunk &input) {
  const idx_t count = input.size();
  const Vector &key_vec = input.column(row_layout_.group_columns[0]);
  const auto *keys = key_vec.Values<int64_t>();
  const ValidityMask &validity = key_vec.validity();
  const uint64_t range = config_.direct_range;
  const auto min = static_cast<uint64_t>(config_.direct_min);
  for (idx_t r = 0; r < count; r++) {
    uint64_t idx = range;
    if (validity.RowIsValid(r)) {
      idx = static_cast<uint64_t>(keys[r]) - min;
      if (idx >= range) {
        continue;  // outside the cached window; stays on the generic path
      }
    }
    direct_ptrs_[idx] = row_ptrs_[r];
  }
}

Status GroupedAggregateHashTable::AddChunk(const DataChunk &input) {
  const idx_t count = input.size();
  if (count == 0) {
    return Status::OK();
  }
  if (direct_enabled_) {
    bool handled = false;
    SSAGG_RETURN_NOT_OK(AddChunkDirect(input, &handled));
    if (handled) {
      direct_fallback_streak_ = 0;
      return Status::OK();
    }
    stats_.direct_fallback_chunks++;
    // A workload that keeps missing (keys the sample never saw) pays one
    // wasted cache-resolve pass per chunk; drop the cache once the misses
    // are clearly not warmup.
    if (++direct_fallback_streak_ > 64) {
      direct_enabled_ = false;
      direct_ptrs_.clear();
      direct_ptrs_.shrink_to_fit();
    }
  }
  // Hash the group columns.
  ChunkHash(input, row_layout_.group_columns, hashes_.data());

  // Assemble the layout-shaped chunk: group columns and sticky payloads are
  // referenced shallowly; the hash column is filled from hashes_.
  for (idx_t g = 0; g < row_layout_.group_count; g++) {
    CopyVectorShallow(input.column(row_layout_.group_columns[g]),
                      append_chunk_.column(g), count);
  }
  // hash_t and the layout's int64 hash column are bit-identical: one
  // memcpy, no per-row conversion loop.
  static_assert(sizeof(hash_t) == sizeof(int64_t));
  std::memcpy(append_chunk_.column(row_layout_.hash_column).data(),
              hashes_.data(), count * sizeof(hash_t));
  append_chunk_.column(row_layout_.hash_column).validity().Reset();
  for (const auto &agg : row_layout_.aggregates) {
    if (agg.sticky) {
      CopyVectorShallow(input.column(agg.request.input_column),
                        append_chunk_.column(agg.layout_column), count);
    }
  }
  append_chunk_.SetCount(count);

  // Process in sub-batches so a single chunk can never overflow a small
  // fixed-size (phase-1) table: each sub-batch creates at most
  // ResetBudget() new groups; once the budget is gone the table is reset
  // mid-chunk (updates for the previous sub-batch have already been
  // applied, so releasing the pins is safe).
  const idx_t aggr_offset = row_layout_.layout.AggregateOffset();
  idx_t done = 0;
  while (done < count) {
    idx_t batch = count - done;
    if (!config_.resizable) {
      idx_t budget = ResetBudget();
      if (budget == 0) {
        ClearPointerTable();
        budget = ResetBudget();
        SSAGG_ASSERT(budget > 0);
      }
      batch = std::min(batch, budget);
    }
    SSAGG_RETURN_NOT_OK(
        FindOrCreateGroups(append_chunk_, hashes_.data(), done, batch));

    // Fold the inputs of rows [done, done + batch) into the group states.
    for (const auto &agg : row_layout_.aggregates) {
      if (agg.sticky) {
        continue;  // materialized at group creation
      }
      idx_t offset = aggr_offset + agg.state_offset;
      for (idx_t i = 0; i < batch; i++) {
        sel_scratch_[i] = done + i;
        state_ptrs_[i] = row_ptrs_[done + i] + offset;
      }
      const Vector *arg = agg.request.input_column == kInvalidIndex
                              ? nullptr
                              : &input.column(agg.request.input_column);
      const idx_t *sel =
          (done == 0 && batch == count) ? nullptr : sel_scratch_.data();
      agg.function.update(arg, sel, state_ptrs_.data(), batch);
    }
    done += batch;
  }
  if (direct_enabled_) {
    BackfillDirect(input);
  }
  return Status::OK();
}

Status GroupedAggregateHashTable::CombineSourceChunk(
    const DataChunk &layout_chunk, data_ptr_t *src_rows) {
  const idx_t count = layout_chunk.size();
  if (count == 0) {
    return Status::OK();
  }
  // Hashes were materialized with the rows: no rehashing in phase 2. The
  // int64 hash column is bit-identical to hash_t, so it is probed in place
  // through a reinterpreted pointer instead of a per-row copy loop.
  static_assert(sizeof(hash_t) == sizeof(int64_t));
  const auto *hashes = reinterpret_cast<const hash_t *>(
      layout_chunk.column(row_layout_.hash_column).data());
  SSAGG_RETURN_NOT_OK(FindOrCreateGroups(layout_chunk, hashes, 0, count));
  const idx_t aggr_offset = row_layout_.layout.AggregateOffset();
  for (const auto &agg : row_layout_.aggregates) {
    if (agg.sticky) {
      continue;  // first-wins: the appended copy already has the value
    }
    idx_t offset = aggr_offset + agg.state_offset;
    for (idx_t i = 0; i < count; i++) {
      agg.function.combine(src_rows[i] + offset, row_ptrs_[i] + offset);
    }
  }
  return Status::OK();
}

void GroupedAggregateHashTable::Stats::Merge(const Stats &other) {
  probe_steps += other.probe_steps;
  key_compares += other.key_compares;
  key_compare_misses += other.key_compare_misses;
  inserts += other.inserts;
  resets += other.resets;
  resizes += other.resizes;
  probe_rounds += other.probe_rounds;
  prefetches += other.prefetches;
  vectorized_compares += other.vectorized_compares;
  scalar_compares += other.scalar_compares;
  direct_hit_rows += other.direct_hit_rows;
  direct_fallback_chunks += other.direct_fallback_chunks;
}

void GroupedAggregateHashTable::ClearPointerTable() {
  TraceRecorder::Global().EmitInstant("ht.reset", "agg", count_);
  std::memset(entries_alloc_.data(), 0, capacity_ * 8);
  count_ = 0;
  stats_.resets++;
  if (direct_enabled_) {
    // The cached row pointers die with the pins released below.
    std::fill(direct_ptrs_.begin(), direct_ptrs_.end(), nullptr);
  }
  // The tuples stay in place; only their pins are released so the buffer
  // manager may evict the pages.
  data_->ReleaseAppendPins();
}

Status GroupedAggregateHashTable::Resize() {
  SSAGG_ASSERT(config_.resizable);
  TraceSpan span("ht.resize", "agg", capacity_ * 2);
  // In a resizable table the pointer table is never reset, so every
  // materialized row is reachable and carries its hash: rebuild by visiting
  // all rows.
  idx_t new_capacity = capacity_ * 2;
  if (new_capacity > (idx_t(1) << kMaxHashTableBits)) {
    return Status::OutOfMemory(
        "hash table cannot grow beyond 2^24 entries; increase radix bits");
  }
  SSAGG_ASSIGN_OR_RETURN(auto new_alloc,
                         buffer_manager_.AllocateNonPaged(new_capacity * 8));
  std::memset(new_alloc.data(), 0, new_capacity * 8);
  entries_alloc_ = std::move(new_alloc);
  capacity_ = new_capacity;
  mask_ = new_capacity - 1;
  stats_.resizes++;

  uint64_t *table = entries();
  const idx_t hash_offset = row_layout_.hash_offset;
  const idx_t mask = mask_;
  for (idx_t p = 0; p < data_->PartitionCount(); p++) {
    SSAGG_RETURN_NOT_OK(data_->ForEachRowInPartition(p, [&](data_ptr_t row) {
      hash_t h;
      std::memcpy(&h, row + hash_offset, sizeof(hash_t));
      idx_t idx = h & mask;
      while (table[idx] != 0) {
        idx = (idx + 1) & mask;
      }
      table[idx] = MakeEntry(row, ExtractSalt(h));
    }));
  }
  return Status::OK();
}

void GroupedAggregateHashTable::FinalizeChunk(const DataChunk &layout_chunk,
                                              data_ptr_t *row_ptrs,
                                              DataChunk &out) {
  const idx_t count = layout_chunk.size();
  for (idx_t g = 0; g < row_layout_.group_count; g++) {
    CopyVectorShallow(layout_chunk.column(g), out.column(g), count);
  }
  idx_t out_col = row_layout_.group_count;
  const idx_t aggr_offset = row_layout_.layout.AggregateOffset();
  for (const auto &agg : row_layout_.aggregates) {
    Vector &result = out.column(out_col++);
    if (agg.sticky) {
      CopyVectorShallow(layout_chunk.column(agg.layout_column), result, count);
      continue;
    }
    idx_t offset = aggr_offset + agg.state_offset;
    for (idx_t i = 0; i < count; i++) {
      agg.function.finalize(row_ptrs[i] + offset, result, i);
    }
  }
  out.SetCount(count);
}

}  // namespace ssagg
