#include "core/run_aggregation.h"

#include <chrono>

namespace ssagg {

Result<HashAggregateStats> RunGroupedAggregation(
    BufferManager &buffer_manager, DataSource &source,
    const std::vector<idx_t> &group_columns,
    const std::vector<AggregateRequest> &aggregates, DataSink &output,
    TaskExecutor &executor, HashAggregateConfig config) {
  SSAGG_ASSIGN_OR_RETURN(
      auto agg, PhysicalHashAggregate::Create(buffer_manager, source.Types(),
                                              group_columns, aggregates,
                                              config));
  auto t0 = std::chrono::steady_clock::now();
  SSAGG_RETURN_NOT_OK(executor.RunPipeline(source, *agg));
  auto t1 = std::chrono::steady_clock::now();
  SSAGG_RETURN_NOT_OK(agg->EmitResults(output, executor));
  auto t2 = std::chrono::steady_clock::now();
  HashAggregateStats stats = agg->stats();
  stats.phase1_seconds = std::chrono::duration<double>(t1 - t0).count();
  stats.phase2_seconds = std::chrono::duration<double>(t2 - t1).count();
  return stats;
}

}  // namespace ssagg
