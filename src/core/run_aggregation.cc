#include "core/run_aggregation.h"

#include <chrono>

#include "observe/flight_recorder.h"
#include "observe/trace.h"

namespace ssagg {

void AddAggregateStats(const HashAggregateStats &stats,
                       QueryProfile &profile) {
  profile.AddCounter("agg.materialized_rows", stats.materialized_rows);
  profile.AddCounter("agg.unique_groups", stats.unique_groups);
  profile.AddCounter("agg.phase1_resets", stats.phase1_resets);
  profile.AddCounter("agg.early_compactions", stats.early_compactions);
  profile.AddCounter("agg.early_compacted_rows", stats.early_compacted_rows);
  profile.AddCounter("agg.ht_probe_steps", stats.ht.probe_steps);
  profile.AddCounter("agg.ht_key_compares", stats.ht.key_compares);
  profile.AddCounter("agg.ht_key_compare_misses", stats.ht.key_compare_misses);
  profile.AddCounter("agg.ht_inserts", stats.ht.inserts);
  profile.AddCounter("agg.ht_resets", stats.ht.resets);
  profile.AddCounter("agg.ht_resizes", stats.ht.resizes);
  profile.AddCounter("agg.ht_probe_rounds", stats.ht.probe_rounds);
  profile.AddCounter("agg.ht_prefetches", stats.ht.prefetches);
  profile.AddCounter("agg.ht_vectorized_compares",
                     stats.ht.vectorized_compares);
  profile.AddCounter("agg.ht_scalar_compares", stats.ht.scalar_compares);
  profile.AddTiming("agg.phase1_seconds", stats.phase1_seconds);
  profile.AddTiming("agg.phase2_seconds", stats.phase2_seconds);
  // Planner decision (DESIGN.md section 11). Strategies are recorded as
  // their enum values (1 central, 2 tree, 3 radix).
  if (stats.planner_decided) {
    profile.AddCounter("agg.chosen_strategy",
                       static_cast<idx_t>(stats.planner.strategy));
    profile.AddCounter("agg.advised_strategy",
                       static_cast<idx_t>(stats.planner.advised));
    profile.AddCounter("agg.planner_forced", stats.planner.forced ? 1 : 0);
    profile.AddCounter("agg.planner_demoted", stats.planner_demoted ? 1 : 0);
    profile.AddCounter("agg.estimated_groups", stats.planner.estimated_groups);
    profile.AddCounter("agg.sampled_rows", stats.planner.sampled_rows);
    profile.AddCounter("agg.direct_index", stats.planner.direct_index ? 1 : 0);
    profile.AddCounter("agg.direct_hit_rows", stats.ht.direct_hit_rows);
    profile.AddTiming("agg.sampling_seconds", stats.sampling_seconds);
    profile.AddTiming("agg.cost_central", stats.planner.central_cost);
    profile.AddTiming("agg.cost_tree", stats.planner.tree_cost);
    profile.AddTiming("agg.cost_radix", stats.planner.radix_cost);
  }
}

Result<HashAggregateStats> RunGroupedAggregation(
    BufferManager &buffer_manager, DataSource &source,
    const std::vector<idx_t> &group_columns,
    const std::vector<AggregateRequest> &aggregates, DataSink &output,
    TaskExecutor &executor, HashAggregateConfig config,
    QueryProfile *profile, QueryProgress *progress) {
  if (config.expected_input_rows == kInvalidIndex) {
    // The planner extrapolates its sampled distinct count with this.
    config.expected_input_rows = source.EstimatedRowCount();
  }
  SSAGG_ASSIGN_OR_RETURN(
      auto agg, PhysicalHashAggregate::Create(buffer_manager, source.Types(),
                                              group_columns, aggregates,
                                              config));
  if (progress != nullptr) {
    progress->BeginQuery(config.expected_input_rows == kInvalidIndex
                             ? 0
                             : config.expected_input_rows);
    agg->SetProgress(progress);
  }
  // Per-query attribution against the cumulative process-wide registry and
  // executor counters: snapshot before, subtract after.
  RegistryDelta delta;
  ExecutorStats exec_before = executor.stats();
  static const idx_t query_latency_hist =
      MetricsRegistry::Global().HistogramId("query.latency_ns");

  TraceSpan query_span("query", "agg");
  auto t0 = std::chrono::steady_clock::now();
  Status status;
  {
    TraceSpan span("phase1", "agg");
    if (progress != nullptr) {
      progress->AdvancePhase(QueryProgress::Phase::kPhase1);
    }
    status = executor.RunPipeline(source, *agg, progress);
  }
  auto t1 = std::chrono::steady_clock::now();
  if (status.ok()) {
    TraceSpan span("phase2", "agg");
    if (progress != nullptr) {
      progress->AdvancePhase(QueryProgress::Phase::kPhase2);
    }
    status = agg->EmitResults(output, executor);
  }
  auto t2 = std::chrono::steady_clock::now();
  // End-to-end latency, recorded for failed queries too: a tail outlier
  // that errored out is exactly the sample an operator wants to see.
  MetricsRegistry::Global().Record(
      query_latency_hist,
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t0)
              .count()));
  if (!status.ok()) {
    if (progress != nullptr) {
      progress->Finish(/*ok=*/false);
    }
    // Black-box dump: preserve the last trace events leading up to the
    // failure (no-op unless SSAGG_FLIGHT_DUMP is configured).
    (void)FlightRecorder::Global().DumpAnomaly("query_error");
    if (TraceRecorder::Global().enabled()) {
      (void)TraceRecorder::Global().Flush();
    }
    return status;
  }
  HashAggregateStats stats = agg->stats();
  stats.phase1_seconds = std::chrono::duration<double>(t1 - t0).count();
  stats.phase2_seconds = std::chrono::duration<double>(t2 - t0).count() -
                         stats.phase1_seconds;

  if (profile != nullptr) {
    profile->threads = executor.num_threads();
    profile->phase1_seconds += stats.phase1_seconds;
    profile->phase2_seconds += stats.phase2_seconds;
    profile->total_seconds += std::chrono::duration<double>(t2 - t0).count();
    AddAggregateStats(stats, *profile);
    delta.AddTo(*profile);

    ExecutorStats exec = executor.stats();
    profile->AddTiming("exec.worker_seconds",
                       exec.worker_seconds - exec_before.worker_seconds);
    profile->AddTiming("exec.source_seconds",
                       exec.source_seconds - exec_before.source_seconds);
    profile->AddTiming("exec.sink_seconds",
                       exec.sink_seconds - exec_before.sink_seconds);
    profile->AddTiming("exec.combine_seconds",
                       exec.combine_seconds - exec_before.combine_seconds);

    BufferManagerSnapshot snapshot = buffer_manager.Snapshot();
    profile->AddCounter("bm.memory_limit", snapshot.memory_limit);
    profile->AddCounter("bm.temp_file_peak", snapshot.temp_file_peak);
    profile->AddTiming("io.spill_write_seconds", snapshot.spill_write_seconds);
    profile->AddTiming("io.spill_read_seconds", snapshot.spill_read_seconds);
  }
  if (progress != nullptr) {
    progress->Finish(/*ok=*/true);
  }
  // Make partial traces useful: persist what we have after every query.
  if (TraceRecorder::Global().enabled()) {
    (void)TraceRecorder::Global().Flush();
  }
  return stats;
}

}  // namespace ssagg
