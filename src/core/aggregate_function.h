#ifndef SSAGG_CORE_AGGREGATE_FUNCTION_H_
#define SSAGG_CORE_AGGREGATE_FUNCTION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/vector.h"

namespace ssagg {

/// Supported aggregate functions. ANY_VALUE is the paper's benchmark
/// payload aggregate ("additional columns other than group keys are
/// selected using the ANY_VALUE aggregate function", Section VI).
enum class AggregateKind : uint8_t {
  kCountStar,
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kAnyValue,
};

const char *AggregateKindName(AggregateKind kind);

/// A physical aggregate function over fixed-size states embedded in the
/// row layout. States are designed so that all-zero bytes are the valid
/// initial state (rows are appended with a zeroed state area).
struct AggregateFunction {
  AggregateKind kind = AggregateKind::kCountStar;
  LogicalTypeId input_type = LogicalTypeId::kInt64;
  LogicalTypeId result_type = LogicalTypeId::kInt64;
  idx_t state_width = 0;

  /// Folds input rows into their group states. `states[i]` is the state of
  /// the group that input row `sel ? sel[i] : i` belongs to. `input` may be
  /// null for COUNT(*).
  void (*update)(const Vector *input, const idx_t *sel, data_ptr_t *states,
                 idx_t count) = nullptr;

  /// Merges state `src` into `dst` (phase-2 partition-wise aggregation).
  void (*combine)(const_data_ptr_t src, data_ptr_t dst) = nullptr;

  /// Writes the state's final value to row `out_row` of `out`.
  void (*finalize)(const_data_ptr_t state, Vector &out,
                   idx_t out_row) = nullptr;
};

/// Resolves an aggregate function for the given input type. COUNT(*) takes
/// no input; pass any type. Returns InvalidArgument for unsupported
/// combinations (e.g. SUM over VARCHAR).
Result<AggregateFunction> GetAggregateFunction(AggregateKind kind,
                                               LogicalTypeId input_type);

/// A requested aggregate: which function over which input column of the
/// operator's input chunk (kInvalidIndex for COUNT(*)).
struct AggregateRequest {
  AggregateKind kind;
  idx_t input_column = kInvalidIndex;
};

}  // namespace ssagg

#endif  // SSAGG_CORE_AGGREGATE_FUNCTION_H_
