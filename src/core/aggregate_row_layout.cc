#include "core/aggregate_row_layout.h"

namespace ssagg {

Result<AggregateRowLayout> AggregateRowLayout::Build(
    const std::vector<LogicalTypeId> &input_types,
    const std::vector<idx_t> &group_columns,
    const std::vector<AggregateRequest> &requests) {
  if (group_columns.empty()) {
    return Status::InvalidArgument("grouped aggregation needs group columns");
  }
  AggregateRowLayout result;
  result.group_columns = group_columns;
  result.group_count = group_columns.size();

  std::vector<LogicalTypeId> layout_types;
  for (idx_t col : group_columns) {
    if (col >= input_types.size()) {
      return Status::InvalidArgument("group column index out of range");
    }
    layout_types.push_back(input_types[col]);
  }
  result.hash_column = layout_types.size();
  layout_types.push_back(LogicalTypeId::kInt64);

  idx_t state_width = 0;
  for (const auto &req : requests) {
    AggregateObject obj;
    obj.request = req;
    if (req.kind == AggregateKind::kAnyValue) {
      if (req.input_column >= input_types.size()) {
        return Status::InvalidArgument("aggregate input column out of range");
      }
      obj.sticky = true;
      obj.layout_column = layout_types.size();
      obj.function.kind = req.kind;
      obj.function.input_type = input_types[req.input_column];
      obj.function.result_type = obj.function.input_type;
      layout_types.push_back(obj.function.input_type);
    } else {
      LogicalTypeId input_type = LogicalTypeId::kInt64;
      if (req.input_column != kInvalidIndex) {
        if (req.input_column >= input_types.size()) {
          return Status::InvalidArgument(
              "aggregate input column out of range");
        }
        input_type = input_types[req.input_column];
      }
      SSAGG_ASSIGN_OR_RETURN(obj.function,
                             GetAggregateFunction(req.kind, input_type));
      obj.state_offset = state_width;
      state_width += obj.function.state_width;
    }
    result.aggregates.push_back(obj);
  }

  result.layout.Initialize(layout_types, state_width);
  result.hash_offset = result.layout.ColumnOffset(result.hash_column);
  return result;
}

std::vector<LogicalTypeId> AggregateRowLayout::OutputTypes() const {
  std::vector<LogicalTypeId> types;
  for (idx_t g = 0; g < group_count; g++) {
    types.push_back(layout.ColumnType(g));
  }
  for (const auto &agg : aggregates) {
    types.push_back(agg.function.result_type);
  }
  return types;
}

}  // namespace ssagg
