#include "core/row_matcher.h"

#include <cstring>

#include "common/string_type.h"

namespace ssagg {

namespace {

/// Fixed-width kernel: bitwise equality of the column value, with grouping
/// NULL semantics. The bitwise compare matches the row materialization
/// (AppendRows memcpy's the vector bytes), so it is exact for every
/// fixed-width type including doubles.
template <typename T>
idx_t MatchFixed(const Vector &vec, const TupleDataLayout &layout, idx_t col,
                 data_ptr_t *const row_ptrs, idx_t *sel, idx_t count,
                 idx_t *no_match, idx_t &no_match_count) {
  const T *values = reinterpret_cast<const T *>(vec.data());
  const auto &validity = vec.validity();
  const idx_t offset = layout.ColumnOffset(col);
  idx_t matched = 0;
  if (validity.AllValid()) {
    for (idx_t i = 0; i < count; i++) {
      const idx_t r = sel[i];
      const_data_ptr_t row = row_ptrs[r];
      if (layout.RowIsColumnValid(row, col) &&
          std::memcmp(row + offset, &values[r], sizeof(T)) == 0) {
        sel[matched++] = r;
      } else {
        no_match[no_match_count++] = r;
      }
    }
    return matched;
  }
  for (idx_t i = 0; i < count; i++) {
    const idx_t r = sel[i];
    const_data_ptr_t row = row_ptrs[r];
    const bool in_valid = validity.RowIsValid(r);
    const bool row_valid = layout.RowIsColumnValid(row, col);
    bool match;
    if (in_valid != row_valid) {
      match = false;
    } else if (!in_valid) {
      match = true;  // NULL == NULL for grouping
    } else {
      match = std::memcmp(row + offset, &values[r], sizeof(T)) == 0;
    }
    if (match) {
      sel[matched++] = r;
    } else {
      no_match[no_match_count++] = r;
    }
  }
  return matched;
}

/// Hash pass: the hidden hash column is never NULL (AddChunk resets its
/// validity; materialized rows always store the hash), so the validity
/// checks are dropped entirely — this is the hot first pass.
idx_t MatchHash(const Vector &vec, const TupleDataLayout &layout, idx_t col,
                data_ptr_t *const row_ptrs, idx_t *sel, idx_t count,
                idx_t *no_match, idx_t &no_match_count) {
  const uint64_t *values = reinterpret_cast<const uint64_t *>(vec.data());
  const idx_t offset = layout.ColumnOffset(col);
  idx_t matched = 0;
  for (idx_t i = 0; i < count; i++) {
    const idx_t r = sel[i];
    uint64_t stored;
    std::memcpy(&stored, row_ptrs[r] + offset, sizeof(uint64_t));
    if (stored == values[r]) {
      sel[matched++] = r;
    } else {
      no_match[no_match_count++] = r;
    }
  }
  return matched;
}

idx_t MatchString(const Vector &vec, const TupleDataLayout &layout, idx_t col,
                  data_ptr_t *const row_ptrs, idx_t *sel, idx_t count,
                  idx_t *no_match, idx_t &no_match_count) {
  const string_t *values = reinterpret_cast<const string_t *>(vec.data());
  const auto &validity = vec.validity();
  const idx_t offset = layout.ColumnOffset(col);
  idx_t matched = 0;
  for (idx_t i = 0; i < count; i++) {
    const idx_t r = sel[i];
    const_data_ptr_t row = row_ptrs[r];
    const bool in_valid = validity.RowIsValid(r);
    const bool row_valid = layout.RowIsColumnValid(row, col);
    bool match;
    if (in_valid != row_valid) {
      match = false;
    } else if (!in_valid) {
      match = true;
    } else {
      string_t stored;
      std::memcpy(&stored, row + offset, sizeof(string_t));
      match = stored == values[r];
    }
    if (match) {
      sel[matched++] = r;
    } else {
      no_match[no_match_count++] = r;
    }
  }
  return matched;
}

}  // namespace

void RowMatcher::Initialize(const TupleDataLayout &layout, idx_t group_count,
                            idx_t hash_column) {
  layout_ = &layout;
  passes_.clear();
  passes_.reserve(group_count + 1);
  // The hash-prefix check is the first pass: a single 8-byte compare whose
  // mismatch probability under a salt collision is ~2^-48.
  passes_.push_back(MatchPass{hash_column, &MatchHash});
  for (idx_t c = 0; c < group_count; c++) {
    MatchFn fn;
    switch (TypeWidth(layout.ColumnType(c))) {
      case 1:
        fn = &MatchFixed<uint8_t>;
        break;
      case 4:
        fn = &MatchFixed<uint32_t>;
        break;
      case 8:
        fn = &MatchFixed<uint64_t>;
        break;
      default:
        SSAGG_ASSERT(TypeIsVarSize(layout.ColumnType(c)));
        fn = &MatchString;
        break;
    }
    passes_.push_back(MatchPass{c, fn});
  }
}

idx_t RowMatcher::Match(const DataChunk &chunk, data_ptr_t *const row_ptrs,
                        SelectionVector &sel, SelectionVector &no_match) {
  SSAGG_DASSERT(layout_ != nullptr);
  idx_t count = sel.size();
  idx_t no_match_count = no_match.size();
  for (const MatchPass &pass : passes_) {
    if (count == 0) {
      break;
    }
    compare_passes_++;
    count = pass.fn(chunk.column(pass.column), *layout_, pass.column,
                    row_ptrs, sel.data(), count, no_match.data(),
                    no_match_count);
  }
  sel.SetCount(count);
  no_match.SetCount(no_match_count);
  return count;
}

}  // namespace ssagg
