#ifndef SSAGG_TPCH_LINEITEM_H_
#define SSAGG_TPCH_LINEITEM_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/vector.h"
#include "core/aggregate_function.h"
#include "execution/range_source.h"

namespace ssagg {
namespace tpch {

/// Column indices of the lineitem table (TPC-H order).
enum LineitemColumn : idx_t {
  kOrderKey = 0,    // INT64, ~rows/4 distinct, sparse TPC-H key pattern
  kPartKey,         // INT64, 2,000 x SF distinct (mini scale)
  kSuppKey,         // INT64, 100 x SF distinct
  kLineNumber,      // INT32, 1..4
  kQuantity,        // INT32, 1..50
  kExtendedPrice,   // DOUBLE
  kDiscount,        // DOUBLE, 0.00..0.10
  kTax,             // DOUBLE, 0.00..0.08
  kReturnFlag,      // VARCHAR, {A, N, R}
  kLineStatus,      // VARCHAR, {O, F} (4 observed flag/status combos)
  kShipDate,        // DATE, ~2,526 distinct days
  kCommitDate,      // DATE
  kReceiptDate,     // DATE
  kShipInstruct,    // VARCHAR, 4 values
  kShipMode,        // VARCHAR, 7 values
  kComment,         // VARCHAR, high-cardinality free text (heap pressure)
  kColumnCount,
};

/// Schema (name + type) of the lineitem table.
const Schema &LineitemSchema();

/// Deterministic, stateless TPC-H-style lineitem generator at "mini" scale:
/// one scale-factor unit is 60,012 rows (1/100 of the 6,001,215 rows of
/// TPC-H SF 1), with key cardinalities scaled the same way, so each
/// grouping's unique-group count scales like the paper's benchmark
/// (DESIGN.md Section 3, "Substitutions"). Any row can be materialized from
/// its row number alone, which makes morsel-parallel scans trivial.
class LineitemGenerator {
 public:
  explicit LineitemGenerator(double scale_factor);

  double scale_factor() const { return scale_factor_; }
  idx_t RowCount() const { return row_count_; }
  idx_t PartKeyCount() const { return part_count_; }
  idx_t SuppKeyCount() const { return supp_count_; }

  /// Materializes rows [start, start + count) of the given columns.
  /// `columns` indexes LineitemColumn; the chunk must have matching types.
  Status FillChunk(DataChunk &chunk, const std::vector<idx_t> &columns,
                   idx_t start, idx_t count) const;

  /// A morsel-parallel source producing only the given columns (models a
  /// columnar scan with projection pushdown).
  std::unique_ptr<RangeSource> MakeSource(std::vector<idx_t> columns) const;

  static std::vector<LogicalTypeId> ColumnTypes(
      const std::vector<idx_t> &columns);

 private:
  double scale_factor_;
  idx_t row_count_;
  idx_t part_count_;
  idx_t supp_count_;
};

/// One row of Table I: a grouping of lineitem columns. The thin variant
/// selects only the group columns; the wide variant additionally selects
/// every other column through ANY_VALUE.
struct Grouping {
  int id;
  std::vector<idx_t> columns;  // LineitemColumn indices
  std::string Name() const;
};

/// The 13 groupings of the paper's Table I, ordered from very low
/// cardinality (returnflag/linestatus: 4 groups) to all-unique
/// (suppkey/partkey/orderkey). Groupings 4 (l_orderkey) and 13 match the
/// columns the paper names explicitly.
const std::vector<Grouping> &TableIGroupings();

/// Builds the projected column list and query pieces for a grouping.
/// Projection = group columns first, then (wide only) all other columns.
struct GroupingQuery {
  std::vector<idx_t> projection;       // lineitem columns to scan
  std::vector<idx_t> group_columns;    // indices into the projected chunk
  std::vector<AggregateRequest> aggregates;
};
GroupingQuery BuildGroupingQuery(const Grouping &grouping, bool wide);

}  // namespace tpch
}  // namespace ssagg

#endif  // SSAGG_TPCH_LINEITEM_H_
