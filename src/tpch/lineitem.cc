#include "tpch/lineitem.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace ssagg {
namespace tpch {

namespace {

/// Rows per scale-factor unit: 1/100 of TPC-H's 6,001,215 rows per unit.
constexpr idx_t kRowsPerUnit = 60012;
constexpr idx_t kPartsPerUnit = 2000;  // 1/100 of 200,000
constexpr idx_t kSuppsPerUnit = 100;   // 1/100 of 10,000
constexpr idx_t kLinesPerOrder = 4;
constexpr int32_t kShipDateBase = 8036;   // 1992-01-02 as days since epoch
constexpr int32_t kShipDateRange = 2526;  // through 1998-12-01
/// Ship dates after this are "not yet returned": flag N, status O.
constexpr int32_t kCurrentDateOffset = 1721;  // 1995-06-17

/// Per-row, per-column deterministic random stream.
inline uint64_t Rand(idx_t row, uint64_t column_seed) {
  return HashUint64(row * 31 + column_seed * 0x9e3779b97f4a7c15ULL + 17);
}

const char *const kShipModes[7] = {"AIR",     "FOB",  "MAIL", "RAIL",
                                   "REG AIR", "SHIP", "TRUCK"};
const char *const kShipInstructs[4] = {"DELIVER IN PERSON", "COLLECT COD",
                                       "NONE", "TAKE BACK RETURN"};
const char *const kWords[24] = {
    "furiously", "quickly", "carefully", "blithely",  "slyly",    "deposits",
    "requests",  "packages", "accounts", "instructions", "theodolites",
    "pinto",     "beans",    "foxes",    "ideas",     "dependencies",
    "platelets", "asymptotes", "somas",  "dugouts",   "braids",   "sauternes",
    "waters",    "courts"};

std::string MakeComment(idx_t row) {
  uint64_t r = Rand(row, 99);
  idx_t words = 3 + (r % 4);
  std::string comment;
  for (idx_t w = 0; w < words; w++) {
    if (w > 0) {
      comment += ' ';
    }
    comment += kWords[(r >> (8 * w)) % 24];
  }
  return comment;
}

}  // namespace

const Schema &LineitemSchema() {
  static const Schema *schema = new Schema{
      {"l_orderkey", LogicalTypeId::kInt64},
      {"l_partkey", LogicalTypeId::kInt64},
      {"l_suppkey", LogicalTypeId::kInt64},
      {"l_linenumber", LogicalTypeId::kInt32},
      {"l_quantity", LogicalTypeId::kInt32},
      {"l_extendedprice", LogicalTypeId::kDouble},
      {"l_discount", LogicalTypeId::kDouble},
      {"l_tax", LogicalTypeId::kDouble},
      {"l_returnflag", LogicalTypeId::kVarchar},
      {"l_linestatus", LogicalTypeId::kVarchar},
      {"l_shipdate", LogicalTypeId::kDate},
      {"l_commitdate", LogicalTypeId::kDate},
      {"l_receiptdate", LogicalTypeId::kDate},
      {"l_shipinstruct", LogicalTypeId::kVarchar},
      {"l_shipmode", LogicalTypeId::kVarchar},
      {"l_comment", LogicalTypeId::kVarchar},
  };
  return *schema;
}

LineitemGenerator::LineitemGenerator(double scale_factor)
    : scale_factor_(scale_factor),
      row_count_(static_cast<idx_t>(std::llround(scale_factor * kRowsPerUnit))),
      part_count_(std::max<idx_t>(
          200, static_cast<idx_t>(std::llround(scale_factor * kPartsPerUnit)))),
      supp_count_(std::max<idx_t>(
          10, static_cast<idx_t>(std::llround(scale_factor * kSuppsPerUnit)))) {
}

std::vector<LogicalTypeId> LineitemGenerator::ColumnTypes(
    const std::vector<idx_t> &columns) {
  std::vector<LogicalTypeId> types;
  types.reserve(columns.size());
  for (idx_t c : columns) {
    types.push_back(LineitemSchema()[c].type);
  }
  return types;
}

Status LineitemGenerator::FillChunk(DataChunk &chunk,
                                    const std::vector<idx_t> &columns,
                                    idx_t start, idx_t count) const {
  SSAGG_ASSERT(count <= kVectorSize);
  for (idx_t ci = 0; ci < columns.size(); ci++) {
    Vector &vec = chunk.column(ci);
    switch (columns[ci]) {
      case kOrderKey:
        for (idx_t i = 0; i < count; i++) {
          idx_t order = (start + i) / kLinesPerOrder;
          // TPC-H's sparse order-key pattern: 8 keys per 32-key window.
          vec.SetValue<int64_t>(
              i, static_cast<int64_t>((order / 8) * 32 + order % 8 + 1));
        }
        break;
      case kPartKey:
        for (idx_t i = 0; i < count; i++) {
          vec.SetValue<int64_t>(
              i, static_cast<int64_t>(Rand(start + i, 2) % part_count_ + 1));
        }
        break;
      case kSuppKey:
        for (idx_t i = 0; i < count; i++) {
          vec.SetValue<int64_t>(
              i, static_cast<int64_t>(Rand(start + i, 3) % supp_count_ + 1));
        }
        break;
      case kLineNumber:
        for (idx_t i = 0; i < count; i++) {
          vec.SetValue<int32_t>(
              i, static_cast<int32_t>((start + i) % kLinesPerOrder + 1));
        }
        break;
      case kQuantity:
        for (idx_t i = 0; i < count; i++) {
          vec.SetValue<int32_t>(
              i, static_cast<int32_t>(Rand(start + i, 5) % 50 + 1));
        }
        break;
      case kExtendedPrice:
        for (idx_t i = 0; i < count; i++) {
          double qty = static_cast<double>(Rand(start + i, 5) % 50 + 1);
          double price =
              900.0 + static_cast<double>(Rand(start + i, 2) % 100000) / 100.0;
          vec.SetValue<double>(i, qty * price);
        }
        break;
      case kDiscount:
        for (idx_t i = 0; i < count; i++) {
          vec.SetValue<double>(
              i, static_cast<double>(Rand(start + i, 7) % 11) / 100.0);
        }
        break;
      case kTax:
        for (idx_t i = 0; i < count; i++) {
          vec.SetValue<double>(
              i, static_cast<double>(Rand(start + i, 8) % 9) / 100.0);
        }
        break;
      case kReturnFlag:
        for (idx_t i = 0; i < count; i++) {
          auto ship = static_cast<int32_t>(Rand(start + i, 10) %
                                           kShipDateRange);
          if (ship > kCurrentDateOffset) {
            vec.SetString(i, "N");
          } else {
            vec.SetString(i, Rand(start + i, 9) % 2 ? "R" : "A");
          }
        }
        break;
      case kLineStatus:
        for (idx_t i = 0; i < count; i++) {
          auto ship = static_cast<int32_t>(Rand(start + i, 10) %
                                           kShipDateRange);
          vec.SetString(i, ship > kCurrentDateOffset ? "O" : "F");
        }
        break;
      case kShipDate:
        for (idx_t i = 0; i < count; i++) {
          vec.SetValue<int32_t>(
              i, kShipDateBase +
                     static_cast<int32_t>(Rand(start + i, 10) %
                                          kShipDateRange));
        }
        break;
      case kCommitDate:
        for (idx_t i = 0; i < count; i++) {
          vec.SetValue<int32_t>(
              i, kShipDateBase +
                     static_cast<int32_t>(Rand(start + i, 10) %
                                          kShipDateRange) +
                     static_cast<int32_t>(Rand(start + i, 11) % 60) - 30);
        }
        break;
      case kReceiptDate:
        for (idx_t i = 0; i < count; i++) {
          vec.SetValue<int32_t>(
              i, kShipDateBase +
                     static_cast<int32_t>(Rand(start + i, 10) %
                                          kShipDateRange) +
                     static_cast<int32_t>(Rand(start + i, 12) % 30) + 1);
        }
        break;
      case kShipInstruct:
        for (idx_t i = 0; i < count; i++) {
          vec.SetString(i, kShipInstructs[Rand(start + i, 13) % 4]);
        }
        break;
      case kShipMode:
        for (idx_t i = 0; i < count; i++) {
          vec.SetString(i, kShipModes[Rand(start + i, 14) % 7]);
        }
        break;
      case kComment:
        for (idx_t i = 0; i < count; i++) {
          vec.SetString(i, MakeComment(start + i));
        }
        break;
      default:
        return Status::InvalidArgument("unknown lineitem column");
    }
  }
  chunk.SetCount(count);
  return Status::OK();
}

std::unique_ptr<RangeSource> LineitemGenerator::MakeSource(
    std::vector<idx_t> columns) const {
  auto types = ColumnTypes(columns);
  const LineitemGenerator *gen = this;
  return std::make_unique<RangeSource>(
      types, row_count_,
      [gen, columns = std::move(columns)](DataChunk &chunk, idx_t start,
                                          idx_t count) {
        return gen->FillChunk(chunk, columns, start, count);
      });
}

std::string Grouping::Name() const {
  std::string name;
  for (idx_t c : columns) {
    if (!name.empty()) {
      name += ",";
    }
    name += LineitemSchema()[c].name;
  }
  return name;
}

const std::vector<Grouping> &TableIGroupings() {
  static const std::vector<Grouping> *groupings = new std::vector<Grouping>{
      {1, {kReturnFlag, kLineStatus}},
      {2, {kShipMode}},
      {3, {kShipMode, kShipInstruct}},
      {4, {kOrderKey}},
      {5, {kShipDate}},
      {6, {kPartKey}},
      {7, {kSuppKey, kShipMode}},
      {8, {kShipDate, kShipMode}},
      {9, {kPartKey, kSuppKey}},
      {10, {kOrderKey, kLineNumber}},
      {11, {kOrderKey, kPartKey}},
      {12, {kSuppKey, kPartKey, kShipDate}},
      {13, {kSuppKey, kPartKey, kOrderKey}},
  };
  return *groupings;
}

GroupingQuery BuildGroupingQuery(const Grouping &grouping, bool wide) {
  GroupingQuery query;
  query.projection = grouping.columns;
  for (idx_t i = 0; i < grouping.columns.size(); i++) {
    query.group_columns.push_back(i);
  }
  if (wide) {
    for (idx_t c = 0; c < kColumnCount; c++) {
      bool is_group = false;
      for (idx_t g : grouping.columns) {
        if (g == c) {
          is_group = true;
          break;
        }
      }
      if (!is_group) {
        query.aggregates.push_back(
            {AggregateKind::kAnyValue, query.projection.size()});
        query.projection.push_back(c);
      }
    }
  }
  // The thin variant selects only the group columns (a pure DISTINCT-style
  // aggregation), exactly like the paper's benchmark.
  return query;
}

}  // namespace tpch
}  // namespace ssagg
