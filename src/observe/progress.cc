#include "observe/progress.h"

namespace ssagg {

const char *QueryProgress::PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kPending:
      return "pending";
    case Phase::kPhase1:
      return "phase1";
    case Phase::kPhase2:
      return "phase2";
    case Phase::kDone:
      return "done";
    case Phase::kFailed:
      return "failed";
  }
  return "unknown";
}

void QueryProgress::BeginQuery(uint64_t estimated_total_rows) {
  MetricsRegistry &registry = MetricsRegistry::Global();
  uint64_t spill = registry.Value("io.spill_bytes_written");
  auto histograms = registry.HistogramSnapshots();
  {
    ScopedLock guard(lock_);
    begun_ = true;
    spill_baseline_ = spill;
    hist_baseline_ = std::move(histograms);
  }
  rows_.store(0, std::memory_order_relaxed);
  estimated_groups_.store(0, std::memory_order_relaxed);
  estimated_total_rows_.store(estimated_total_rows,
                              std::memory_order_relaxed);
  phase_.store(static_cast<uint8_t>(Phase::kPending),
               std::memory_order_relaxed);
}

void QueryProgress::AdvancePhase(Phase phase) {
  auto target = static_cast<uint8_t>(phase);
  uint8_t current = phase_.load(std::memory_order_relaxed);
  while (current < target && !phase_.compare_exchange_weak(
                                 current, target, std::memory_order_relaxed)) {
  }
}

void QueryProgress::Finish(bool ok) {
  AdvancePhase(ok ? Phase::kDone : Phase::kFailed);
}

QueryProgress::Snapshot QueryProgress::Poll() const {
  Snapshot snap;
  snap.phase = static_cast<Phase>(phase_.load(std::memory_order_relaxed));
  snap.rows_consumed = rows_.load(std::memory_order_relaxed);
  snap.estimated_total_rows =
      estimated_total_rows_.load(std::memory_order_relaxed);
  snap.estimated_groups = estimated_groups_.load(std::memory_order_relaxed);

  MetricsRegistry &registry = MetricsRegistry::Global();
  uint64_t spill_now = registry.Value("io.spill_bytes_written");
  auto hist_now = registry.HistogramSnapshots();
  {
    ScopedLock guard(lock_);
    if (!begun_) {
      return snap;
    }
    snap.bytes_spilled =
        spill_now > spill_baseline_ ? spill_now - spill_baseline_ : 0;
    for (auto &[key, hist] : hist_now) {
      auto it = hist_baseline_.find(key);
      if (it != hist_baseline_.end()) {
        hist.Subtract(it->second);
      }
      if (hist.count > 0) {
        snap.histograms.emplace(key, hist);
      }
    }
  }
  return snap;
}

Json QueryProgress::Snapshot::ToJson() const {
  Json doc = Json::Object();
  doc.Set("phase", PhaseName(phase));
  doc.Set("rows_consumed", rows_consumed);
  doc.Set("estimated_total_rows", estimated_total_rows);
  doc.Set("estimated_groups", estimated_groups);
  doc.Set("bytes_spilled", bytes_spilled);
  doc.Set("fraction", Fraction());
  Json hists = Json::Object();
  for (const auto &[key, hist] : histograms) {
    Json h = Json::Object();
    h.Set("count", hist.count);
    h.Set("p50", hist.Percentile(0.50));
    h.Set("p90", hist.Percentile(0.90));
    h.Set("p99", hist.Percentile(0.99));
    h.Set("max", hist.max);
    hists.Set(key, std::move(h));
  }
  doc.Set("histograms", std::move(hists));
  return doc;
}

}  // namespace ssagg
