#include "observe/metrics.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace ssagg {

uint64_t HistogramSnapshot::Percentile(double q) const {
  if (count == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (idx_t i = 0; i < kBuckets; i++) {
    if (buckets[i] == 0) {
      continue;
    }
    uint64_t next = cumulative + buckets[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate within the bucket assuming uniform mass.
      uint64_t lo = BucketLowerBound(i);
      uint64_t hi = BucketUpperBound(i);
      double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(buckets[i]);
      if (fraction < 0.0) {
        fraction = 0.0;
      }
      double value = static_cast<double>(lo) +
                     fraction * static_cast<double>(hi - lo);
      // Clamp in double space: near the top octave the interpolated value
      // can round to 2^64, where the uint64 cast would be undefined.
      if (value >= static_cast<double>(max)) {
        return max;
      }
      return value < 0.0 ? 0 : static_cast<uint64_t>(value);
    }
    cumulative = next;
  }
  return max;
}

namespace {
std::atomic<uint64_t> next_registry_id{1};
}  // namespace

MetricsRegistry::MetricsRegistry()
    : registry_id_(next_registry_id.fetch_add(1, std::memory_order_relaxed)) {
  keys_.reserve(64);
}

MetricsRegistry &MetricsRegistry::Global() {
  // Leaked intentionally: instrumented subsystems may record during static
  // destruction (e.g., atexit trace flushing).
  static MetricsRegistry *global = new MetricsRegistry();
  return *global;
}

idx_t MetricsRegistry::KeyId(const std::string &key) {
  ScopedLock guard(lock_);
  auto it = key_ids_.find(key);
  if (it != key_ids_.end()) {
    return it->second;
  }
  SSAGG_ASSERT(keys_.size() < kMaxKeys);
  idx_t id = keys_.size();
  keys_.push_back(key);
  key_ids_.emplace(key, id);
  return id;
}

MetricsRegistry::Shard &MetricsRegistry::LocalShard() {
  // One-entry inline cache in front of the per-thread map: repeated Adds to
  // the same registry (the common case — Global()) skip the hash lookup.
  struct LastUsed {
    uint64_t registry_id = 0;
    Shard *shard = nullptr;
  };
  thread_local LastUsed last;
  thread_local std::unordered_map<uint64_t, Shard *> shard_by_registry;
  if (last.registry_id == registry_id_) {
    return *last.shard;
  }
  auto it = shard_by_registry.find(registry_id_);
  if (it == shard_by_registry.end()) {
    auto shard = std::make_unique<Shard>();
    Shard *raw = shard.get();
    {
      ScopedLock guard(lock_);
      shards_.push_back(std::move(shard));
    }
    it = shard_by_registry.emplace(registry_id_, raw).first;
  }
  last = LastUsed{registry_id_, it->second};
  return *it->second;
}

idx_t MetricsRegistry::HistogramId(const std::string &key) {
  ScopedLock guard(lock_);
  auto it = hist_key_ids_.find(key);
  if (it != hist_key_ids_.end()) {
    return it->second;
  }
  SSAGG_ASSERT(hist_keys_.size() < kMaxHistograms);
  idx_t id = hist_keys_.size();
  hist_keys_.push_back(key);
  hist_key_ids_.emplace(key, id);
  return id;
}

MetricsRegistry::HistogramShard *MetricsRegistry::AllocateHistogramShard(
    Shard &shard) {
  auto *block = new HistogramShard();
  // Release pairs with the acquire load in readers; only the owning thread
  // ever stores, so there is no allocation race.
  shard.histograms.store(block, std::memory_order_release);
  return block;
}

HistogramSnapshot MetricsRegistry::MergedHistogramLocked(idx_t hist_id) const {
  HistogramSnapshot merged;
  for (const auto &shard : shards_) {
    HistogramShard *h = shard->histograms.load(std::memory_order_acquire);
    if (h == nullptr) {
      continue;
    }
    HistogramSnapshot part;
    for (idx_t b = 0; b < HistogramSnapshot::kBuckets; b++) {
      part.buckets[b] = h->counts[hist_id][b].load(std::memory_order_relaxed);
      part.count += part.buckets[b];
    }
    part.sum = h->sums[hist_id].load(std::memory_order_relaxed);
    part.max = h->maxes[hist_id].load(std::memory_order_relaxed);
    merged.Merge(part);
  }
  return merged;
}

HistogramSnapshot MetricsRegistry::Histogram(const std::string &key) const {
  ScopedLock guard(lock_);
  auto it = hist_key_ids_.find(key);
  if (it == hist_key_ids_.end()) {
    return HistogramSnapshot{};
  }
  return MergedHistogramLocked(it->second);
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::HistogramSnapshots()
    const {
  ScopedLock guard(lock_);
  std::map<std::string, HistogramSnapshot> result;
  for (idx_t id = 0; id < hist_keys_.size(); id++) {
    result[hist_keys_[id]] = MergedHistogramLocked(id);
  }
  return result;
}

namespace {
std::string PrometheusName(const std::string &key) {
  std::string name = "ssagg_";
  for (char c : key) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    name.push_back(ok ? c : '_');
  }
  return name;
}

void AppendFormat(std::string &out, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendFormat(std::string &out, const char *fmt, ...) {
  char buffer[256];
  va_list args;
  va_start(args, fmt);
  int n = vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  if (n > 0) {
    out.append(buffer, static_cast<size_t>(n) < sizeof(buffer)
                           ? static_cast<size_t>(n)
                           : sizeof(buffer) - 1);
  }
}
}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::string out;
  auto counters = Snapshot();
  for (const auto &[key, value] : counters) {
    std::string name = PrometheusName(key);
    AppendFormat(out, "# TYPE %s counter\n", name.c_str());
    AppendFormat(out, "%s %" PRIu64 "\n", name.c_str(), value);
  }
  auto histograms = HistogramSnapshots();
  for (const auto &[key, snap] : histograms) {
    std::string name = PrometheusName(key);
    AppendFormat(out, "# TYPE %s histogram\n", name.c_str());
    uint64_t cumulative = 0;
    for (idx_t b = 0; b < HistogramSnapshot::kBuckets; b++) {
      if (snap.buckets[b] == 0) {
        continue;
      }
      cumulative += snap.buckets[b];
      // The le bound is this bucket's inclusive upper edge.
      AppendFormat(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                   name.c_str(), HistogramSnapshot::BucketUpperBound(b) - 1,
                   cumulative);
    }
    AppendFormat(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", name.c_str(),
                 snap.count);
    AppendFormat(out, "%s_sum %" PRIu64 "\n", name.c_str(), snap.sum);
    AppendFormat(out, "%s_count %" PRIu64 "\n", name.c_str(), snap.count);
  }
  return out;
}

uint64_t MetricsRegistry::Value(const std::string &key) const {
  ScopedLock guard(lock_);
  auto it = key_ids_.find(key);
  if (it == key_ids_.end()) {
    return 0;
  }
  uint64_t sum = 0;
  for (const auto &shard : shards_) {
    sum += shard->values[it->second].load(std::memory_order_relaxed);
  }
  return sum;
}

std::map<std::string, uint64_t> MetricsRegistry::Snapshot() const {
  ScopedLock guard(lock_);
  std::map<std::string, uint64_t> result;
  for (idx_t id = 0; id < keys_.size(); id++) {
    uint64_t sum = 0;
    for (const auto &shard : shards_) {
      sum += shard->values[id].load(std::memory_order_relaxed);
    }
    result[keys_[id]] = sum;
  }
  return result;
}

void MetricsRegistry::Reset() {
  ScopedLock guard(lock_);
  for (const auto &shard : shards_) {
    for (idx_t id = 0; id < keys_.size(); id++) {
      shard->values[id].store(0, std::memory_order_relaxed);
    }
    HistogramShard *h = shard->histograms.load(std::memory_order_acquire);
    if (h == nullptr) {
      continue;
    }
    for (idx_t id = 0; id < hist_keys_.size(); id++) {
      for (idx_t b = 0; b < HistogramSnapshot::kBuckets; b++) {
        h->counts[id][b].store(0, std::memory_order_relaxed);
      }
      h->sums[id].store(0, std::memory_order_relaxed);
      h->maxes[id].store(0, std::memory_order_relaxed);
    }
  }
}

idx_t MetricsRegistry::KeyCount() const {
  ScopedLock guard(lock_);
  return keys_.size();
}

}  // namespace ssagg
