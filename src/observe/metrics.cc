#include "observe/metrics.h"

namespace ssagg {

namespace {
std::atomic<uint64_t> next_registry_id{1};
}  // namespace

MetricsRegistry::MetricsRegistry()
    : registry_id_(next_registry_id.fetch_add(1, std::memory_order_relaxed)) {
  keys_.reserve(64);
}

MetricsRegistry &MetricsRegistry::Global() {
  // Leaked intentionally: instrumented subsystems may record during static
  // destruction (e.g., atexit trace flushing).
  static MetricsRegistry *global = new MetricsRegistry();
  return *global;
}

idx_t MetricsRegistry::KeyId(const std::string &key) {
  ScopedLock guard(lock_);
  auto it = key_ids_.find(key);
  if (it != key_ids_.end()) {
    return it->second;
  }
  SSAGG_ASSERT(keys_.size() < kMaxKeys);
  idx_t id = keys_.size();
  keys_.push_back(key);
  key_ids_.emplace(key, id);
  return id;
}

MetricsRegistry::Shard &MetricsRegistry::LocalShard() {
  // One-entry inline cache in front of the per-thread map: repeated Adds to
  // the same registry (the common case — Global()) skip the hash lookup.
  struct LastUsed {
    uint64_t registry_id = 0;
    Shard *shard = nullptr;
  };
  thread_local LastUsed last;
  thread_local std::unordered_map<uint64_t, Shard *> shard_by_registry;
  if (last.registry_id == registry_id_) {
    return *last.shard;
  }
  auto it = shard_by_registry.find(registry_id_);
  if (it == shard_by_registry.end()) {
    auto shard = std::make_unique<Shard>();
    Shard *raw = shard.get();
    {
      ScopedLock guard(lock_);
      shards_.push_back(std::move(shard));
    }
    it = shard_by_registry.emplace(registry_id_, raw).first;
  }
  last = LastUsed{registry_id_, it->second};
  return *it->second;
}

uint64_t MetricsRegistry::Value(const std::string &key) const {
  ScopedLock guard(lock_);
  auto it = key_ids_.find(key);
  if (it == key_ids_.end()) {
    return 0;
  }
  uint64_t sum = 0;
  for (const auto &shard : shards_) {
    sum += shard->values[it->second].load(std::memory_order_relaxed);
  }
  return sum;
}

std::map<std::string, uint64_t> MetricsRegistry::Snapshot() const {
  ScopedLock guard(lock_);
  std::map<std::string, uint64_t> result;
  for (idx_t id = 0; id < keys_.size(); id++) {
    uint64_t sum = 0;
    for (const auto &shard : shards_) {
      sum += shard->values[id].load(std::memory_order_relaxed);
    }
    result[keys_[id]] = sum;
  }
  return result;
}

void MetricsRegistry::Reset() {
  ScopedLock guard(lock_);
  for (const auto &shard : shards_) {
    for (idx_t id = 0; id < keys_.size(); id++) {
      shard->values[id].store(0, std::memory_order_relaxed);
    }
  }
}

idx_t MetricsRegistry::KeyCount() const {
  ScopedLock guard(lock_);
  return keys_.size();
}

}  // namespace ssagg
