#include "observe/flight_recorder.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "observe/log.h"

namespace ssagg {

namespace {
std::atomic<uint64_t> next_recorder_id{1};
}  // namespace

FlightRecorder::FlightRecorder()
    : recorder_id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

FlightRecorder &FlightRecorder::Global() {
  // Leaked so instrumentation may record during static destruction, same as
  // MetricsRegistry::Global / TraceRecorder::Global.
  static FlightRecorder *global = []() {
    auto *recorder = new FlightRecorder();
    if (const char *dir = std::getenv("SSAGG_FLIGHT_DUMP")) {
      if (dir[0] != '\0') {
        recorder->SetDumpDirectory(dir);
        InstallSignalHandler();
      }
    }
    return recorder;
  }();
  return *global;
}

FlightRecorder::Ring &FlightRecorder::LocalRing() {
  // Same shape as MetricsRegistry::LocalShard: a one-entry inline cache in
  // front of a per-thread map, so the common case (Global()) is two loads.
  struct LastUsed {
    uint64_t recorder_id = 0;
    Ring *ring = nullptr;
  };
  thread_local LastUsed last;
  thread_local std::unordered_map<uint64_t, Ring *> ring_by_recorder;
  if (last.recorder_id == recorder_id_) {
    return *last.ring;
  }
  auto it = ring_by_recorder.find(recorder_id_);
  if (it == ring_by_recorder.end()) {
    auto ring = std::make_unique<Ring>();
    Ring *raw = ring.get();
    {
      ScopedLock guard(lock_);
      raw->tid = next_tid_++;
      rings_.push_back(std::move(ring));
    }
    it = ring_by_recorder.emplace(recorder_id_, raw).first;
  }
  last = LastUsed{recorder_id_, it->second};
  return *it->second;
}

void FlightRecorder::Record(const char *name, const char *category, char phase,
                            uint64_t ts_us, uint64_t dur_us, uint64_t arg) {
  Ring &ring = LocalRing();
  uint64_t head = ring.head.load(std::memory_order_relaxed);
  idx_t base = static_cast<idx_t>(head % kRingEvents) * kWords;
  ring.words[base + 0].store(reinterpret_cast<uint64_t>(name),
                             std::memory_order_relaxed);
  ring.words[base + 1].store(reinterpret_cast<uint64_t>(category),
                             std::memory_order_relaxed);
  ring.words[base + 2].store(ts_us, std::memory_order_relaxed);
  ring.words[base + 3].store(dur_us, std::memory_order_relaxed);
  ring.words[base + 4].store(arg, std::memory_order_relaxed);
  ring.words[base + 5].store(static_cast<uint64_t>(phase),
                             std::memory_order_relaxed);
  // Publishes the slot: readers acquire head and only trust slots below it.
  ring.head.store(head + 1, std::memory_order_release);
}

void FlightRecorder::SetDumpDirectory(std::string dir) {
  ScopedLock guard(lock_);
  dump_dir_ = std::move(dir);
}

std::string FlightRecorder::dump_directory() const {
  ScopedLock guard(lock_);
  return dump_dir_;
}

Json FlightRecorder::ToJson() const {
  Json events = Json::Array();
  ScopedLock guard(lock_);
  for (const auto &ring : rings_) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t retained = head < kRingEvents ? head : kRingEvents;
    for (uint64_t i = head - retained; i < head; i++) {
      idx_t base = static_cast<idx_t>(i % kRingEvents) * kWords;
      auto name = reinterpret_cast<const char *>(
          ring->words[base + 0].load(std::memory_order_relaxed));
      auto category = reinterpret_cast<const char *>(
          ring->words[base + 1].load(std::memory_order_relaxed));
      uint64_t ts_us = ring->words[base + 2].load(std::memory_order_relaxed);
      uint64_t dur_us = ring->words[base + 3].load(std::memory_order_relaxed);
      uint64_t arg = ring->words[base + 4].load(std::memory_order_relaxed);
      auto phase = static_cast<char>(
          ring->words[base + 5].load(std::memory_order_relaxed));
      if (name == nullptr ||
          (phase != 'X' && phase != 'i' && phase != 'C')) {
        // Slot raced a concurrent writer mid-update; drop it.
        continue;
      }
      Json e = Json::Object();
      e.Set("name", name);
      e.Set("cat", category == nullptr ? "flight" : category);
      e.Set("ph", std::string(1, phase));
      e.Set("pid", uint64_t(1));
      e.Set("tid", static_cast<uint64_t>(ring->tid));
      e.Set("ts", ts_us);
      if (phase == 'X') {
        e.Set("dur", dur_us);
      }
      if (phase == 'i') {
        e.Set("s", "t");
      }
      if (phase == 'C') {
        e.Set("args", Json::Object().Set("value", arg));
      } else if (arg != kInvalidIndex) {
        e.Set("args", Json::Object().Set("v", arg));
      }
      events.Push(std::move(e));
    }
  }
  Json doc = Json::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

std::string FlightRecorder::DumpAnomaly(const char *reason) {
  std::string dir = dump_directory();
  if (dir.empty()) {
    return "";
  }
  uint64_t seq = dump_seq_.fetch_add(1, std::memory_order_relaxed);
  if (seq >= kMaxDumps) {
    return "";
  }
  std::string tag;
  for (const char *p = reason; *p != '\0'; p++) {
    char c = *p;
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9');
    tag.push_back(ok ? c : '_');
  }
  Json doc = ToJson();
  doc.Set("flightReason", reason);
  std::string text = doc.Dump(1);
  char path[512];
  std::snprintf(path, sizeof(path), "%s/ssagg_flight_%s_%llu.json",
                dir.c_str(), tag.c_str(),
                static_cast<unsigned long long>(seq));
  std::FILE *f = std::fopen(path, "w");
  if (f == nullptr) {
    SSAGG_LOG_WARN("flight recorder: cannot open dump file %s", path);
    return "";
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    SSAGG_LOG_WARN("flight recorder: short write to dump file %s", path);
    return "";
  }
  SSAGG_LOG_INFO("flight recorder: dumped %s (%llu events) to %s", reason,
                 static_cast<unsigned long long>(EventCount()), path);
  return path;
}

idx_t FlightRecorder::EventCount() const {
  ScopedLock guard(lock_);
  idx_t total = 0;
  for (const auto &ring : rings_) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    total += static_cast<idx_t>(head < kRingEvents ? head : kRingEvents);
  }
  return total;
}

void FlightRecorder::Clear() {
  ScopedLock guard(lock_);
  for (const auto &ring : rings_) {
    ring->head.store(0, std::memory_order_release);
  }
}

void FlightRecorder::InstallSignalHandler() {
#ifndef _WIN32
  std::signal(SIGUSR1, [](int) {
    // Best effort: DumpAnomaly allocates and locks, which is formally
    // undefined from a signal handler; acceptable for an operator poking a
    // live process, and never installed unless dumping was requested.
    (void)FlightRecorder::Global().DumpAnomaly("sigusr1");
  });
#endif
}

}  // namespace ssagg
