#include "observe/trace.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "observe/flight_recorder.h"

namespace ssagg {

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder &TraceRecorder::Global() {
  // Leaked so instrumented code may emit during static destruction; the
  // atexit flush below still sees a live recorder.
  static TraceRecorder *global = []() {
    auto *recorder = new TraceRecorder();
    if (const char *path = std::getenv("SSAGG_TRACE")) {
      if (path[0] != '\0') {
        recorder->Enable(path);
        std::atexit([]() { (void)TraceRecorder::Global().Flush(); });
      }
    }
    return recorder;
  }();
  return *global;
}

void TraceRecorder::Enable(std::string path) {
  ScopedLock guard(lock_);
  path_ = std::move(path);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

uint64_t TraceRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

uint32_t TraceRecorder::CurrentTid() {
  thread_local uint32_t tid = 0;
  if (tid == 0) {
    ScopedLock guard(lock_);
    tid = next_tid_++;
  }
  return tid;
}

void TraceRecorder::Push(Event event) {
  ScopedLock guard(lock_);
  events_.push_back(event);
}

void TraceRecorder::EmitSpan(const char *name, const char *category,
                             uint64_t ts_us, uint64_t dur_us, idx_t arg) {
  FlightRecorder &flight = FlightRecorder::Global();
  if (flight.enabled()) {
    flight.Record(name, category, 'X', ts_us, dur_us, arg);
  }
  if (!enabled()) {
    return;
  }
  Push(Event{name, category, 'X', CurrentTid(), ts_us, dur_us, arg});
}

void TraceRecorder::EmitInstant(const char *name, const char *category,
                                idx_t arg) {
  uint64_t ts_us = NowMicros();
  FlightRecorder &flight = FlightRecorder::Global();
  if (flight.enabled()) {
    flight.Record(name, category, 'i', ts_us, 0, arg);
  }
  if (!enabled()) {
    return;
  }
  Push(Event{name, category, 'i', CurrentTid(), ts_us, 0, arg});
}

void TraceRecorder::EmitCounter(const char *name, uint64_t value) {
  uint64_t ts_us = NowMicros();
  FlightRecorder &flight = FlightRecorder::Global();
  if (flight.enabled()) {
    flight.Record(name, "counter", 'C', ts_us, 0, value);
  }
  if (!enabled()) {
    return;
  }
  Push(Event{name, "counter", 'C', CurrentTid(), ts_us, 0, value});
}

Json TraceRecorder::ToJson() const {
  Json events = Json::Array();
  ScopedLock guard(lock_);
  for (const Event &event : events_) {
    Json e = Json::Object();
    e.Set("name", event.name);
    e.Set("cat", event.category);
    e.Set("ph", std::string(1, event.phase));
    e.Set("pid", uint64_t(1));
    e.Set("tid", static_cast<uint64_t>(event.tid));
    e.Set("ts", event.ts_us);
    if (event.phase == 'X') {
      e.Set("dur", event.dur_us);
    }
    if (event.phase == 'i') {
      e.Set("s", "t");  // thread-scoped instant
    }
    if (event.phase == 'C') {
      e.Set("args", Json::Object().Set("value", event.arg));
    } else if (event.arg != kInvalidIndex) {
      e.Set("args", Json::Object().Set("v", event.arg));
    }
    events.Push(std::move(e));
  }
  Json doc = Json::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  return doc;
}

Status TraceRecorder::Flush() const {
  std::string path;
  {
    ScopedLock guard(lock_);
    path = path_;
  }
  if (path.empty()) {
    return Status::OK();
  }
  std::string text = ToJson().Dump(1);
  std::FILE *f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file " + path);
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::IOError("short write to trace file " + path);
  }
  return Status::OK();
}

void TraceRecorder::Clear() {
  ScopedLock guard(lock_);
  events_.clear();
}

idx_t TraceRecorder::EventCount() const {
  ScopedLock guard(lock_);
  return events_.size();
}

}  // namespace ssagg
