#include "observe/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace ssagg {

Json &Json::Set(const std::string &key, Json value) {
  SSAGG_DASSERT(kind_ == Kind::kObject);
  for (auto &member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json &Json::Push(Json value) {
  SSAGG_DASSERT(kind_ == Kind::kArray);
  elements_.push_back(std::move(value));
  return *this;
}

const Json *Json::Find(const std::string &key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto &member : members_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

uint64_t Json::AsUint() const {
  switch (kind_) {
    case Kind::kUint:
      return uint_;
    case Kind::kInt:
      return int_ < 0 ? 0 : static_cast<uint64_t>(int_);
    case Kind::kDouble:
      return double_ < 0 ? 0 : static_cast<uint64_t>(double_);
    default:
      return 0;
  }
}

int64_t Json::AsInt() const {
  switch (kind_) {
    case Kind::kUint:
      return static_cast<int64_t>(uint_);
    case Kind::kInt:
      return int_;
    case Kind::kDouble:
      return static_cast<int64_t>(double_);
    default:
      return 0;
  }
}

double Json::AsDouble() const {
  switch (kind_) {
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kDouble:
      return double_;
    default:
      return 0;
  }
}

void Json::AppendEscaped(std::string &out, const std::string &s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void Json::DumpTo(std::string &out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<size_t>(indent) * d, ' ');
    }
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kUint: {
      char buffer[24];
      std::snprintf(buffer, sizeof(buffer), "%llu",
                    static_cast<unsigned long long>(uint_));
      out += buffer;
      break;
    }
    case Kind::kInt: {
      char buffer[24];
      std::snprintf(buffer, sizeof(buffer), "%lld",
                    static_cast<long long>(int_));
      out += buffer;
      break;
    }
    case Kind::kDouble: {
      char buffer[40];
      if (std::isfinite(double_)) {
        std::snprintf(buffer, sizeof(buffer), "%.9g", double_);
      } else {
        std::snprintf(buffer, sizeof(buffer), "null");  // JSON has no inf/nan
      }
      out += buffer;
      break;
    }
    case Kind::kString:
      AppendEscaped(out, string_);
      break;
    case Kind::kArray: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (idx_t i = 0; i < elements_.size(); i++) {
        if (i > 0) {
          out.push_back(',');
          if (indent == 0) {
            out.push_back(' ');
          }
        }
        newline(depth + 1);
        elements_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (idx_t i = 0; i < members_.size(); i++) {
        if (i > 0) {
          out.push_back(',');
          if (indent == 0) {
            out.push_back(' ');
          }
        }
        newline(depth + 1);
        AppendEscaped(out, members_[i].first);
        out += ": ";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string &text) : text_(text) {}

  Result<Json> Parse() {
    SSAGG_ASSIGN_OR_RETURN(Json value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string &what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        SSAGG_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        return ParseLiteral("true", Json(true));
      case 'f':
        return ParseLiteral("false", Json(false));
      case 'n':
        return ParseLiteral("null", Json());
      default:
        return ParseNumber();
    }
  }

  Result<Json> ParseLiteral(const char *word, Json value) {
    size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return Error("invalid literal");
    }
    pos_ += len;
    return value;
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      pos_++;
    }
    if (pos_ == start) {
      return Error("invalid number");
    }
    std::string token = text_.substr(start, pos_ - start);
    bool integral =
        token.find_first_of(".eE") == std::string::npos;
    errno = 0;
    if (integral && token[0] != '-') {
      char *end = nullptr;
      unsigned long long v = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<uint64_t>(v));
      }
    } else if (integral) {
      char *end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<int64_t>(v));
      }
    }
    char *end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("invalid number '" + token + "'");
    }
    return Json(v);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Error("expected '\"'");
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; i++) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code |= h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code |= h - 'A' + 10;
            } else {
              return Error("invalid \\u escape");
            }
          }
          // We only emit codes < 0x20; decode BMP code points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Result<Json> ParseObject() {
    Consume('{');
    Json obj = Json::Object();
    SkipWhitespace();
    if (Consume('}')) {
      return obj;
    }
    while (true) {
      SkipWhitespace();
      SSAGG_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':'");
      }
      SSAGG_ASSIGN_OR_RETURN(Json value, ParseValue());
      obj.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return obj;
      }
      return Error("expected ',' or '}'");
    }
  }

  Result<Json> ParseArray() {
    Consume('[');
    Json arr = Json::Array();
    SkipWhitespace();
    if (Consume(']')) {
      return arr;
    }
    while (true) {
      SSAGG_ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.Push(std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return arr;
      }
      return Error("expected ',' or ']'");
    }
  }

  const std::string &text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string &text) {
  return JsonParser(text).Parse();
}

}  // namespace ssagg
