#ifndef SSAGG_OBSERVE_PROGRESS_H_
#define SSAGG_OBSERVE_PROGRESS_H_

#include <atomic>
#include <map>
#include <string>

#include "common/constants.h"
#include "common/mutex.h"
#include "observe/json.h"
#include "observe/metrics.h"

namespace ssagg {

/// Live introspection handle for one running query. The query side
/// (RunGroupedAggregation, TaskExecutor, PhysicalHashAggregate) publishes
/// into relaxed atomics; any other thread may Poll() concurrently and gets
/// a consistent-enough snapshot: phase and row counts are monotone, so a
/// poller never sees progress move backwards.
///
/// Spill bytes and histograms are process-global deltas against baselines
/// captured at BeginQuery — exact for a single running query, attribution-
/// approximate when queries overlap (the same caveat as RegistryDelta).
///
/// Lifetime: the caller owns the handle and must keep it alive until
/// RunGroupedAggregation returns; polling may continue afterwards (the
/// final state is latched by Finish).
class QueryProgress {
 public:
  /// Ordered: AdvancePhase is a monotone max, so a stale publisher can
  /// never move the phase backwards.
  enum class Phase : uint8_t {
    kPending = 0,
    kPhase1 = 1,   // partial aggregation / sink
    kPhase2 = 2,   // merge + emit
    kDone = 3,
    kFailed = 4,
  };
  static const char *PhaseName(Phase phase);

  struct Snapshot {
    Phase phase = Phase::kPending;
    uint64_t rows_consumed = 0;
    /// From the caller's cardinality hint; 0 = unknown.
    uint64_t estimated_total_rows = 0;
    /// The planner's D-hat once it has decided; 0 before that.
    uint64_t estimated_groups = 0;
    uint64_t bytes_spilled = 0;
    /// rows_consumed / estimated_total_rows clamped to [0,1]; 0 when the
    /// total is unknown.
    [[nodiscard]] double Fraction() const {
      if (estimated_total_rows == 0) {
        return 0.0;
      }
      double f = static_cast<double>(rows_consumed) /
                 static_cast<double>(estimated_total_rows);
      return f > 1.0 ? 1.0 : f;
    }
    /// Per-query histogram deltas (spill latency, pin waits, ...) since
    /// BeginQuery.
    std::map<std::string, HistogramSnapshot> histograms;

    [[nodiscard]] Json ToJson() const;
  };

  QueryProgress() = default;
  QueryProgress(const QueryProgress &) = delete;
  QueryProgress &operator=(const QueryProgress &) = delete;

  /// Captures spill/histogram baselines and arms the handle. Called by
  /// RunGroupedAggregation; a handle can be reused across queries.
  void BeginQuery(uint64_t estimated_total_rows);
  /// Monotone phase advance; regressions are ignored.
  void AdvancePhase(Phase phase);
  /// Relaxed hot-path publish: one fetch_add per morsel chunk.
  void AddRows(uint64_t rows) {
    rows_.fetch_add(rows, std::memory_order_relaxed);
  }
  void SetEstimatedGroups(uint64_t groups) {
    estimated_groups_.store(groups, std::memory_order_relaxed);
  }
  /// Latches the terminal phase (kDone / kFailed).
  void Finish(bool ok);

  /// Safe from any thread at any time.
  [[nodiscard]] Snapshot Poll() const;

 private:
  std::atomic<uint8_t> phase_{0};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> estimated_total_rows_{0};
  std::atomic<uint64_t> estimated_groups_{0};

  /// Baselines captured by BeginQuery; written once per query, read by
  /// pollers.
  mutable Mutex lock_;
  bool begun_ SSAGG_GUARDED_BY(lock_) = false;
  uint64_t spill_baseline_ SSAGG_GUARDED_BY(lock_) = 0;
  std::map<std::string, HistogramSnapshot> hist_baseline_
      SSAGG_GUARDED_BY(lock_);
};

}  // namespace ssagg

#endif  // SSAGG_OBSERVE_PROGRESS_H_
