#ifndef SSAGG_OBSERVE_METRICS_H_
#define SSAGG_OBSERVE_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/constants.h"
#include "common/mutex.h"
#include "common/status.h"

namespace ssagg {

/// Merged view of one histogram: log-linear buckets (4 sub-buckets per
/// power of two, so relative bucket width is bounded by 25%), total count,
/// sum and max. Values are whatever unit the recording site used — by
/// convention nanoseconds for *_ns keys.
struct HistogramSnapshot {
  /// 4 linear sub-buckets per octave over a uint64 range: values 0..3 get
  /// exact buckets, then bucket = octave*4 + sub. 64 octaves * 4 = 256.
  static constexpr idx_t kBuckets = 256;

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kBuckets> buckets{};

  /// Maps a value to its bucket index (log-linear, monotone, contiguous:
  /// values 0..7 get exact buckets 0..7, then each octave spans 4 buckets).
  [[nodiscard]] static idx_t BucketIndex(uint64_t value) {
    if (value < 4) {
      return static_cast<idx_t>(value);
    }
    int octave = 63 - __builtin_clzll(value);
    auto sub = static_cast<idx_t>((value >> (octave - 2)) & 3);
    return static_cast<idx_t>(octave) * 4 + sub - 4;
  }
  /// Smallest value that lands in bucket `index`.
  [[nodiscard]] static uint64_t BucketLowerBound(idx_t index) {
    if (index < 4) {
      return index;
    }
    uint64_t octave = (index + 4) / 4;
    uint64_t sub = (index + 4) % 4;
    return (uint64_t{1} << octave) + sub * (uint64_t{1} << (octave - 2));
  }
  /// First value that lands *above* bucket `index` (exclusive upper bound,
  /// saturating: the top octave's bound 2^64 is not representable, so every
  /// bucket from the last reachable one — BucketIndex(~0) == kBuckets - 5 —
  /// upward reports UINT64_MAX).
  [[nodiscard]] static uint64_t BucketUpperBound(idx_t index) {
    if (index + 5 >= kBuckets) {
      return ~uint64_t{0};
    }
    return BucketLowerBound(index + 1);
  }

  void Merge(const HistogramSnapshot &other) {
    count += other.count;
    sum += other.sum;
    max = max > other.max ? max : other.max;
    for (idx_t i = 0; i < kBuckets; i++) {
      buckets[i] += other.buckets[i];
    }
  }
  /// Saturating per-field subtraction; used for per-query deltas against a
  /// baseline snapshot. `max` keeps the current max (not subtractable).
  void Subtract(const HistogramSnapshot &baseline) {
    count = count > baseline.count ? count - baseline.count : 0;
    sum = sum > baseline.sum ? sum - baseline.sum : 0;
    for (idx_t i = 0; i < kBuckets; i++) {
      buckets[i] = buckets[i] > baseline.buckets[i]
                       ? buckets[i] - baseline.buckets[i]
                       : 0;
    }
  }

  /// Interpolated percentile (q in [0,1]); 0 when empty. Within the target
  /// bucket the mass is assumed uniform, and the result is clamped to the
  /// observed max so p100 is exact.
  [[nodiscard]] uint64_t Percentile(double q) const;
  [[nodiscard]] double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Process-wide metrics registry with thread-local sharded counters.
///
/// Counters are addressed by stable string keys ("bm.spill_bytes_written",
/// "exec.morsels", ...). A key resolves once to a dense id; increments then
/// touch only the calling thread's shard — a plain array slot written with
/// relaxed atomics, so the hot path takes no lock and shares no cache line
/// with other threads. Snapshot() walks all shards under the registry lock
/// and sums per key, which is exact: shards are never removed (a shard
/// outlives its thread so counts from joined workers are retained — the
/// task executor spawns fresh threads per pipeline, and their counts must
/// not vanish with them).
///
/// Timers are counters holding nanoseconds; see ScopedTimerNs.
///
/// Convention for key names: "<subsystem>.<counter>"; *_bytes, *_ns
/// suffixes for units.
class MetricsRegistry {
 public:
  /// Up to this many distinct keys per registry; a shard is one fixed
  /// array of this many slots (8 KiB), so key ids never invalidate.
  static constexpr idx_t kMaxKeys = 1024;
  /// Up to this many distinct histograms per registry. Histogram storage is
  /// allocated lazily per shard on the owning thread's first Record, so
  /// counter-only threads stay at 8 KiB.
  static constexpr idx_t kMaxHistograms = 64;

  MetricsRegistry();
  ~MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// The default registry every instrumented subsystem records into.
  static MetricsRegistry &Global();

  /// Resolves a key to its dense id, creating it on first use. Takes the
  /// registry lock; call once and cache the id near hot paths.
  [[nodiscard]] idx_t KeyId(const std::string &key);

  /// Lock-free: bumps the calling thread's shard slot.
  void Add(idx_t key_id, uint64_t delta) {
    SSAGG_DASSERT(key_id < kMaxKeys);
    LocalShard().values[key_id].fetch_add(delta, std::memory_order_relaxed);
  }
  /// Convenience slow path: resolves the key every call.
  void Add(const std::string &key, uint64_t delta) { Add(KeyId(key), delta); }

  /// Sum of one key across all shards.
  [[nodiscard]] uint64_t Value(const std::string &key) const;

  /// All keys summed across shards. Keys that were registered but never
  /// incremented report 0.
  [[nodiscard]] std::map<std::string, uint64_t> Snapshot() const;

  /// Resolves a histogram key to its dense id, creating it on first use.
  /// Histogram ids are a separate namespace from counter ids. Takes the
  /// registry lock; call once and cache the id near hot paths.
  [[nodiscard]] idx_t HistogramId(const std::string &key);

  /// Lock-free: bumps one bucket + sum + max of the calling thread's
  /// histogram shard. Same discipline as Add — relaxed atomics on storage
  /// owned by this thread, merged exactly on read.
  void Record(idx_t hist_id, uint64_t value) {
    SSAGG_DASSERT(hist_id < kMaxHistograms);
    Shard &shard = LocalShard();
    HistogramShard *h = shard.histograms.load(std::memory_order_acquire);
    if (h == nullptr) {
      h = AllocateHistogramShard(shard);
    }
    idx_t bucket = HistogramSnapshot::BucketIndex(value);
    h->counts[hist_id][bucket].fetch_add(1, std::memory_order_relaxed);
    h->sums[hist_id].fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = h->maxes[hist_id].load(std::memory_order_relaxed);
    while (value > seen && !h->maxes[hist_id].compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }
  /// Convenience slow path: resolves the key every call.
  void Record(const std::string &key, uint64_t value) {
    Record(HistogramId(key), value);
  }

  /// Merged view of one histogram across all shards; empty snapshot for an
  /// unknown key.
  [[nodiscard]] HistogramSnapshot Histogram(const std::string &key) const;

  /// All histograms merged across shards, keyed by name.
  [[nodiscard]] std::map<std::string, HistogramSnapshot> HistogramSnapshots()
      const;

  /// Prometheus text exposition (version 0.0.4) of every counter and
  /// histogram. Key names are sanitized ('.' -> '_') and prefixed "ssagg_";
  /// histograms emit cumulative le-buckets (non-empty buckets plus +Inf),
  /// _sum and _count.
  [[nodiscard]] std::string RenderPrometheus() const;

  /// Zeroes every slot of every shard (keys stay registered). Counts from
  /// concurrent writers may land before or after the reset, as usual for
  /// monotonic counters.
  void Reset();

  [[nodiscard]] idx_t KeyCount() const;

 private:
  struct HistogramShard {
    std::atomic<uint64_t> counts[kMaxHistograms][HistogramSnapshot::kBuckets];
    std::atomic<uint64_t> sums[kMaxHistograms];
    std::atomic<uint64_t> maxes[kMaxHistograms];
    HistogramShard() {
      for (auto &row : counts) {
        for (auto &c : row) {
          c.store(0, std::memory_order_relaxed);
        }
      }
      for (idx_t i = 0; i < kMaxHistograms; i++) {
        sums[i].store(0, std::memory_order_relaxed);
        maxes[i].store(0, std::memory_order_relaxed);
      }
    }
  };

  struct Shard {
    std::atomic<uint64_t> values[kMaxKeys];
    /// Lazily allocated by the owning thread on its first Record; freed with
    /// the shard. Readers load with acquire under the registry lock.
    std::atomic<HistogramShard *> histograms{nullptr};
    Shard() {
      for (auto &value : values) {
        value.store(0, std::memory_order_relaxed);
      }
    }
    ~Shard() { delete histograms.load(std::memory_order_acquire); }
  };

  Shard &LocalShard();
  /// Slow path of Record: allocates the calling thread's histogram block.
  /// Only the shard-owning thread writes `histograms`, so a plain release
  /// store publishes it.
  HistogramShard *AllocateHistogramShard(Shard &shard);
  HistogramSnapshot MergedHistogramLocked(idx_t hist_id) const
      SSAGG_REQUIRES(lock_);

  /// Distinguishes registries in the thread-local shard cache; never
  /// reused, so a destroyed registry's cache entries go permanently stale
  /// instead of aliasing a new instance.
  const uint64_t registry_id_;

  /// Protects key registration and the shard list. The hot path (Add) is
  /// annotation-exempt by construction: it touches only the calling
  /// thread's shard through relaxed atomics (see DESIGN.md section 9), and
  /// a Shard pointer, once published in shards_, is stable until the
  /// registry dies.
  mutable Mutex lock_;
  std::vector<std::string> keys_ SSAGG_GUARDED_BY(lock_);   // id -> key
  std::unordered_map<std::string, idx_t> key_ids_
      SSAGG_GUARDED_BY(lock_);                              // key -> id
  std::vector<std::string> hist_keys_ SSAGG_GUARDED_BY(lock_);
  std::unordered_map<std::string, idx_t> hist_key_ids_ SSAGG_GUARDED_BY(lock_);
  std::vector<std::unique_ptr<Shard>> shards_ SSAGG_GUARDED_BY(lock_);
};

/// Adds the elapsed wall-clock nanoseconds to a registry counter when it
/// goes out of scope.
class ScopedTimerNs {
 public:
  ScopedTimerNs(MetricsRegistry &registry, idx_t key_id)
      : registry_(registry),
        key_id_(key_id),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimerNs() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_.Add(
        key_id_,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  ScopedTimerNs(const ScopedTimerNs &) = delete;
  ScopedTimerNs &operator=(const ScopedTimerNs &) = delete;

 private:
  MetricsRegistry &registry_;
  idx_t key_id_;
  std::chrono::steady_clock::time_point start_;
};

/// Records the elapsed wall-clock nanoseconds into a registry histogram when
/// it goes out of scope. Sites that also need a counter keep their existing
/// ScopedTimerNs; the two compose.
class ScopedHistogramTimerNs {
 public:
  ScopedHistogramTimerNs(MetricsRegistry &registry, idx_t hist_id)
      : registry_(registry),
        hist_id_(hist_id),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedHistogramTimerNs() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_.Record(
        hist_id_,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  ScopedHistogramTimerNs(const ScopedHistogramTimerNs &) = delete;
  ScopedHistogramTimerNs &operator=(const ScopedHistogramTimerNs &) = delete;

 private:
  MetricsRegistry &registry_;
  idx_t hist_id_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ssagg

#endif  // SSAGG_OBSERVE_METRICS_H_
