#ifndef SSAGG_OBSERVE_METRICS_H_
#define SSAGG_OBSERVE_METRICS_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/constants.h"
#include "common/mutex.h"
#include "common/status.h"

namespace ssagg {

/// Process-wide metrics registry with thread-local sharded counters.
///
/// Counters are addressed by stable string keys ("bm.spill_bytes_written",
/// "exec.morsels", ...). A key resolves once to a dense id; increments then
/// touch only the calling thread's shard — a plain array slot written with
/// relaxed atomics, so the hot path takes no lock and shares no cache line
/// with other threads. Snapshot() walks all shards under the registry lock
/// and sums per key, which is exact: shards are never removed (a shard
/// outlives its thread so counts from joined workers are retained — the
/// task executor spawns fresh threads per pipeline, and their counts must
/// not vanish with them).
///
/// Timers are counters holding nanoseconds; see ScopedTimerNs.
///
/// Convention for key names: "<subsystem>.<counter>"; *_bytes, *_ns
/// suffixes for units.
class MetricsRegistry {
 public:
  /// Up to this many distinct keys per registry; a shard is one fixed
  /// array of this many slots (8 KiB), so key ids never invalidate.
  static constexpr idx_t kMaxKeys = 1024;

  MetricsRegistry();
  ~MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// The default registry every instrumented subsystem records into.
  static MetricsRegistry &Global();

  /// Resolves a key to its dense id, creating it on first use. Takes the
  /// registry lock; call once and cache the id near hot paths.
  [[nodiscard]] idx_t KeyId(const std::string &key);

  /// Lock-free: bumps the calling thread's shard slot.
  void Add(idx_t key_id, uint64_t delta) {
    SSAGG_DASSERT(key_id < kMaxKeys);
    LocalShard().values[key_id].fetch_add(delta, std::memory_order_relaxed);
  }
  /// Convenience slow path: resolves the key every call.
  void Add(const std::string &key, uint64_t delta) { Add(KeyId(key), delta); }

  /// Sum of one key across all shards.
  [[nodiscard]] uint64_t Value(const std::string &key) const;

  /// All keys summed across shards. Keys that were registered but never
  /// incremented report 0.
  [[nodiscard]] std::map<std::string, uint64_t> Snapshot() const;

  /// Zeroes every slot of every shard (keys stay registered). Counts from
  /// concurrent writers may land before or after the reset, as usual for
  /// monotonic counters.
  void Reset();

  [[nodiscard]] idx_t KeyCount() const;

 private:
  struct Shard {
    std::atomic<uint64_t> values[kMaxKeys];
    Shard() {
      for (auto &value : values) {
        value.store(0, std::memory_order_relaxed);
      }
    }
  };

  Shard &LocalShard();

  /// Distinguishes registries in the thread-local shard cache; never
  /// reused, so a destroyed registry's cache entries go permanently stale
  /// instead of aliasing a new instance.
  const uint64_t registry_id_;

  /// Protects key registration and the shard list. The hot path (Add) is
  /// annotation-exempt by construction: it touches only the calling
  /// thread's shard through relaxed atomics (see DESIGN.md section 9), and
  /// a Shard pointer, once published in shards_, is stable until the
  /// registry dies.
  mutable Mutex lock_;
  std::vector<std::string> keys_ SSAGG_GUARDED_BY(lock_);   // id -> key
  std::unordered_map<std::string, idx_t> key_ids_
      SSAGG_GUARDED_BY(lock_);                              // key -> id
  std::vector<std::unique_ptr<Shard>> shards_ SSAGG_GUARDED_BY(lock_);
};

/// Adds the elapsed wall-clock nanoseconds to a registry counter when it
/// goes out of scope.
class ScopedTimerNs {
 public:
  ScopedTimerNs(MetricsRegistry &registry, idx_t key_id)
      : registry_(registry),
        key_id_(key_id),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimerNs() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    registry_.Add(
        key_id_,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  ScopedTimerNs(const ScopedTimerNs &) = delete;
  ScopedTimerNs &operator=(const ScopedTimerNs &) = delete;

 private:
  MetricsRegistry &registry_;
  idx_t key_id_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ssagg

#endif  // SSAGG_OBSERVE_METRICS_H_
