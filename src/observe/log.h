#ifndef SSAGG_OBSERVE_LOG_H_
#define SSAGG_OBSERVE_LOG_H_

#include <cstdarg>

namespace ssagg {

/// Severity levels of the tiny process-wide logger. The threshold comes
/// from the SSAGG_LOG_LEVEL environment variable — "error", "warn",
/// "info", "debug" (or 0-3) — and defaults to warn, so assertion failures
/// and memory-pressure warnings are visible while routine spill chatter
/// stays off. "off" / "none" silences everything.
enum class LogLevel : int {
  kOff = -1,
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

/// The active threshold (parsed once, cached).
LogLevel LogThreshold();

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(LogThreshold());
}

/// printf-style message to stderr: "[ssagg] W 0.123s message\n". The
/// timestamp is seconds since the first log call.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void LogMessage(LogLevel level, const char *format, ...);

#define SSAGG_LOG_ERROR(...) \
  ::ssagg::LogMessage(::ssagg::LogLevel::kError, __VA_ARGS__)
#define SSAGG_LOG_WARN(...) \
  ::ssagg::LogMessage(::ssagg::LogLevel::kWarn, __VA_ARGS__)
#define SSAGG_LOG_INFO(...) \
  ::ssagg::LogMessage(::ssagg::LogLevel::kInfo, __VA_ARGS__)
#define SSAGG_LOG_DEBUG(...) \
  ::ssagg::LogMessage(::ssagg::LogLevel::kDebug, __VA_ARGS__)

}  // namespace ssagg

#endif  // SSAGG_OBSERVE_LOG_H_
