#ifndef SSAGG_OBSERVE_TRACE_H_
#define SSAGG_OBSERVE_TRACE_H_

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "common/constants.h"
#include "common/mutex.h"
#include "common/status.h"
#include "observe/flight_recorder.h"
#include "observe/json.h"

namespace ssagg {

/// Records timeline events in the Chrome trace-event JSON format, loadable
/// in chrome://tracing and Perfetto. Disabled it costs one relaxed atomic
/// load per would-be span; enabled it buffers fixed-size events (no
/// allocation per event beyond vector growth) under a mutex — spans are
/// emitted at morsel/phase/spill granularity, never from per-row loops.
///
/// Zero-code-change switch: setting SSAGG_TRACE=<path> in the environment
/// enables the global recorder at first use and flushes the file at
/// process exit (and whenever Flush() is called explicitly, e.g. after
/// each RunGroupedAggregation).
///
/// Span names and categories must be string literals (or otherwise outlive
/// the recorder): events store the pointers.
///
/// Every Emit* also feeds the always-on FlightRecorder (when that is
/// enabled), so the last ~64k events stay recoverable even with file
/// tracing off — see observe/flight_recorder.h.
class TraceRecorder {
 public:
  TraceRecorder();

  TraceRecorder(const TraceRecorder &) = delete;
  TraceRecorder &operator=(const TraceRecorder &) = delete;

  /// The recorder instrumented code emits into. Reads SSAGG_TRACE once.
  static TraceRecorder &Global();

  /// Starts recording; Flush() and process exit write to `path` (empty:
  /// buffer only, fetch with ToJson — used by tests).
  void Enable(std::string path);
  void Disable();
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the recorder was constructed.
  [[nodiscard]] uint64_t NowMicros() const;

  /// Complete event (ph "X"): a span of `dur_us` starting at `ts_us` on the
  /// calling thread's track. `arg` lands in the event's args as "v" when
  /// not kInvalidIndex.
  void EmitSpan(const char *name, const char *category, uint64_t ts_us,
                uint64_t dur_us, idx_t arg = kInvalidIndex);
  /// Instant event (ph "i"): a point occurrence (HT reset, eviction, ...).
  void EmitInstant(const char *name, const char *category,
                   idx_t arg = kInvalidIndex);
  /// Counter event (ph "C"): plots `value` over time under `name`.
  void EmitCounter(const char *name, uint64_t value);

  /// The buffered events as a Chrome-trace JSON document.
  [[nodiscard]] Json ToJson() const;
  /// Writes the buffered events to `path` (from Enable). No-op when
  /// recording to a buffer only.
  Status Flush() const;
  void Clear();
  [[nodiscard]] idx_t EventCount() const;

 private:
  struct Event {
    const char *name;
    const char *category;
    char phase;      // 'X', 'i', 'C'
    uint32_t tid;
    uint64_t ts_us;
    uint64_t dur_us;  // 'X' only
    idx_t arg;        // kInvalidIndex: absent; 'C': the counter value
  };

  uint32_t CurrentTid();
  void Push(Event event);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable Mutex lock_;
  std::string path_ SSAGG_GUARDED_BY(lock_);
  std::vector<Event> events_ SSAGG_GUARDED_BY(lock_);
  uint32_t next_tid_ SSAGG_GUARDED_BY(lock_) = 1;
};

/// RAII span: records a complete event over its lifetime when the global
/// recorder or the flight recorder is enabled; two relaxed loads otherwise.
/// EmitSpan routes the event to whichever sinks are on.
class TraceSpan {
 public:
  TraceSpan(const char *name, const char *category, idx_t arg = kInvalidIndex)
      : name_(name), category_(category), arg_(arg) {
    TraceRecorder &recorder = TraceRecorder::Global();
    if (recorder.enabled() || FlightRecorder::Global().enabled()) {
      recorder_ = &recorder;
      start_us_ = recorder.NowMicros();
    }
  }
  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->EmitSpan(name_, category_, start_us_,
                          recorder_->NowMicros() - start_us_, arg_);
    }
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

 private:
  const char *name_;
  const char *category_;
  idx_t arg_;
  TraceRecorder *recorder_ = nullptr;
  uint64_t start_us_ = 0;
};

}  // namespace ssagg

#endif  // SSAGG_OBSERVE_TRACE_H_
