#ifndef SSAGG_OBSERVE_JSON_H_
#define SSAGG_OBSERVE_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/constants.h"
#include "common/status.h"

namespace ssagg {

/// Minimal ordered JSON document: enough for the observability layer
/// (QueryProfile serialization, Chrome-trace emission, bench result files)
/// and for the round-trip tests that parse what we emit. Object members
/// keep insertion order so emitted files are stable and diffable.
///
/// Numbers are stored as either an exact unsigned/signed 64-bit integer or
/// a double; counters therefore survive a round trip bit-exactly.
class Json {
 public:
  enum class Kind : uint8_t {
    kNull,
    kBool,
    kUint,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Json() : kind_(Kind::kNull) {}
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}  // NOLINT
  Json(uint64_t value) : kind_(Kind::kUint), uint_(value) {}  // NOLINT
  Json(int64_t value) : kind_(Kind::kInt), int_(value) {}  // NOLINT
  Json(int value) : Json(static_cast<int64_t>(value)) {}  // NOLINT
  Json(double value) : kind_(Kind::kDouble), double_(value) {}  // NOLINT
  Json(std::string value)  // NOLINT
      : kind_(Kind::kString), string_(std::move(value)) {}
  Json(const char *value) : Json(std::string(value)) {}  // NOLINT

  static Json Object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  Kind kind() const { return kind_; }
  bool IsNull() const { return kind_ == Kind::kNull; }
  bool IsNumber() const {
    return kind_ == Kind::kUint || kind_ == Kind::kInt ||
           kind_ == Kind::kDouble;
  }
  bool IsString() const { return kind_ == Kind::kString; }
  bool IsArray() const { return kind_ == Kind::kArray; }
  bool IsObject() const { return kind_ == Kind::kObject; }

  /// Object building: sets (or replaces) a member, keeping insertion order.
  Json &Set(const std::string &key, Json value);
  /// Array building.
  Json &Push(Json value);

  /// Object lookup; nullptr when absent or not an object.
  const Json *Find(const std::string &key) const;
  /// Object members / array elements (empty for other kinds).
  const std::vector<std::pair<std::string, Json>> &members() const {
    return members_;
  }
  const std::vector<Json> &elements() const { return elements_; }

  bool AsBool() const { return kind_ == Kind::kBool && bool_; }
  uint64_t AsUint() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string &AsString() const { return string_; }

  /// Serializes; indent > 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

  /// Strict-enough recursive-descent parser for everything Dump emits
  /// (and standard JSON in general; no comments, no trailing commas).
  static Result<Json> Parse(const std::string &text);

 private:
  void DumpTo(std::string &out, int indent, int depth) const;
  static void AppendEscaped(std::string &out, const std::string &s);

  Kind kind_;
  bool bool_ = false;
  uint64_t uint_ = 0;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> elements_;
};

}  // namespace ssagg

#endif  // SSAGG_OBSERVE_JSON_H_
