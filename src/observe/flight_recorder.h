#ifndef SSAGG_OBSERVE_FLIGHT_RECORDER_H_
#define SSAGG_OBSERVE_FLIGHT_RECORDER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/constants.h"
#include "common/mutex.h"
#include "observe/json.h"

namespace ssagg {

/// Always-on black box: a per-thread bounded ring of the most recent trace
/// events, recorded even when file tracing (SSAGG_TRACE) is off, so the
/// last moments before any failure are recoverable after the fact.
///
/// Hot-path contract: Record touches only the calling thread's ring — a
/// fixed block of relaxed atomic words plus one release store on the ring
/// head. No locks, no allocation (the ring is allocated once per thread on
/// first use), and instrumentation sites pay a single relaxed load when the
/// recorder is disabled. Event fields mirror TraceRecorder::Event; name and
/// category must be string literals (the ring stores the pointers).
///
/// Readers (DumpAnomaly / ToJson) walk the rings while writers may still be
/// appending. Every word is individually atomic, so a concurrent overwrite
/// can at worst pair fields from two adjacent generations of the same slot
/// into one reported event — never produce an invalid pointer or torn word.
/// That is the accepted price for a wait-free write path; anomaly dumps are
/// diagnostics, not ground truth.
///
/// Dumps are written as Chrome-trace JSON files into the directory given by
/// SSAGG_FLIGHT_DUMP (or SetDumpDirectory); with no directory configured,
/// DumpAnomaly is a cheap no-op, so instrumented anomaly sites (query error
/// Status, planner demotion, injected fault, SIGUSR1) can call it
/// unconditionally.
class FlightRecorder {
 public:
  /// Events retained per thread; 8 threads keep the issue's ~64k events.
  static constexpr idx_t kRingEvents = 8192;
  /// Dump files are capped so a crash loop cannot fill the disk.
  static constexpr idx_t kMaxDumps = 64;

  FlightRecorder();

  FlightRecorder(const FlightRecorder &) = delete;
  FlightRecorder &operator=(const FlightRecorder &) = delete;

  /// The recorder TraceRecorder feeds. Reads SSAGG_FLIGHT_DUMP once and
  /// installs the SIGUSR1 dump handler when a dump directory is set.
  static FlightRecorder &Global();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// On by default; tests and overhead measurements may switch it off.
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends one event to the calling thread's ring. `phase` is the Chrome
  /// phase character ('X', 'i', 'C'); `arg` uses kInvalidIndex for absent.
  void Record(const char *name, const char *category, char phase,
              uint64_t ts_us, uint64_t dur_us, uint64_t arg);

  /// Where DumpAnomaly writes; empty disables dumping (the default unless
  /// SSAGG_FLIGHT_DUMP is set).
  void SetDumpDirectory(std::string dir);
  [[nodiscard]] std::string dump_directory() const;

  /// Writes the ring contents as `<dir>/ssagg_flight_<reason>_<seq>.json`
  /// and returns the path; returns "" when no dump directory is configured
  /// or the dump cap is reached. Safe to call from any thread, including
  /// concurrently with writers.
  std::string DumpAnomaly(const char *reason);

  /// The retained events as a Chrome-trace JSON document (same schema as
  /// TraceRecorder::ToJson, plus a "flightReason" member when dumping).
  [[nodiscard]] Json ToJson() const;
  /// Total events currently retained across all rings (capped per ring).
  [[nodiscard]] idx_t EventCount() const;
  /// Test hook: forgets all retained events (rings stay registered).
  void Clear();

  /// Installs a SIGUSR1 handler that dumps the global recorder. The handler
  /// allocates and takes locks, so it is NOT async-signal-safe — it is a
  /// best-effort operator tool for a live, healthy process, not a crash
  /// handler.
  static void InstallSignalHandler();

 private:
  /// One event is kWords consecutive atomic words:
  ///   [0] name pointer  [1] category pointer  [2] ts_us
  ///   [3] dur_us        [4] arg               [5] phase
  static constexpr idx_t kWords = 6;

  struct Ring {
    /// Total events ever written; slot = head % kRingEvents. Single writer
    /// (the owning thread); release store pairs with readers' acquire.
    std::atomic<uint64_t> head{0};
    uint32_t tid = 0;
    std::atomic<uint64_t> words[kRingEvents * kWords] = {};
  };

  Ring &LocalRing();

  /// Distinguishes recorders in the thread-local ring cache (tests may
  /// build private instances); ids are never reused.
  const uint64_t recorder_id_;

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> dump_seq_{0};

  /// Protects ring registration and the dump directory. Never taken on the
  /// record path after a thread's first event.
  mutable Mutex lock_;
  std::vector<std::unique_ptr<Ring>> rings_ SSAGG_GUARDED_BY(lock_);
  std::string dump_dir_ SSAGG_GUARDED_BY(lock_);
  uint32_t next_tid_ SSAGG_GUARDED_BY(lock_) = 1;
};

}  // namespace ssagg

#endif  // SSAGG_OBSERVE_FLIGHT_RECORDER_H_
