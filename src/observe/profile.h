#ifndef SSAGG_OBSERVE_PROFILE_H_
#define SSAGG_OBSERVE_PROFILE_H_

#include <map>
#include <string>

#include "common/constants.h"
#include "observe/json.h"
#include "observe/metrics.h"

namespace ssagg {

/// One query's observability snapshot: wall-clock phase timings plus every
/// counter the instrumented layers produced while the query ran — operator
/// stats ("agg.*"), executor stats ("exec.*"), buffer-manager and
/// temporary-file deltas ("bm.*", "io.*"). Counters are flat dotted keys so
/// two profiles diff mechanically (scripts/bench_report.py); ToJson() emits
/// them under "counters" in sorted order for stable files.
///
/// Filled by RunGroupedAggregation (pass a QueryProfile out-pointer) and
/// embedded in bench results by bench::WriteResultsJson.
struct QueryProfile {
  std::string query;
  idx_t threads = 0;
  double total_seconds = 0;
  double phase1_seconds = 0;
  double phase2_seconds = 0;

  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> timings;  // seconds, e.g. "exec.busy_seconds"
  /// Per-query latency distributions (spill I/O, pin waits, morsel sinks,
  /// ...); ToJson emits count/p50/p90/p99/max per key under "histograms".
  std::map<std::string, HistogramSnapshot> histograms;

  void AddCounter(const std::string &key, uint64_t value) {
    counters[key] += value;
  }
  void AddTiming(const std::string &key, double seconds) {
    timings[key] += seconds;
  }
  /// 0 when the key was never recorded.
  uint64_t Counter(const std::string &key) const {
    auto it = counters.find(key);
    return it == counters.end() ? 0 : it->second;
  }

  Json ToJson() const;
};

/// Computes the delta a query contributed to the (cumulative, process-wide)
/// metrics registry: construct before the query, call TakeDelta after.
class RegistryDelta {
 public:
  explicit RegistryDelta(MetricsRegistry &registry = MetricsRegistry::Global())
      : registry_(registry),
        begin_(registry.Snapshot()),
        hist_begin_(registry.HistogramSnapshots()) {}

  /// Adds each counter key's growth since construction to
  /// `profile.counters`, and each histogram's delta (buckets/count/sum
  /// subtracted; max taken as-is) to `profile.histograms`.
  void AddTo(QueryProfile &profile) const;

 private:
  MetricsRegistry &registry_;
  std::map<std::string, uint64_t> begin_;
  std::map<std::string, HistogramSnapshot> hist_begin_;
};

}  // namespace ssagg

#endif  // SSAGG_OBSERVE_PROFILE_H_
