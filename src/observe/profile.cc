#include "observe/profile.h"

namespace ssagg {

Json QueryProfile::ToJson() const {
  Json doc = Json::Object();
  if (!query.empty()) {
    doc.Set("query", query);
  }
  doc.Set("threads", static_cast<uint64_t>(threads));
  doc.Set("total_seconds", total_seconds);
  doc.Set("phase1_seconds", phase1_seconds);
  doc.Set("phase2_seconds", phase2_seconds);
  Json counter_obj = Json::Object();
  for (const auto &entry : counters) {
    counter_obj.Set(entry.first, entry.second);
  }
  doc.Set("counters", std::move(counter_obj));
  Json timing_obj = Json::Object();
  for (const auto &entry : timings) {
    timing_obj.Set(entry.first, entry.second);
  }
  doc.Set("timings", std::move(timing_obj));
  return doc;
}

void RegistryDelta::AddTo(QueryProfile &profile) const {
  std::map<std::string, uint64_t> now = registry_.Snapshot();
  for (const auto &entry : now) {
    auto it = begin_.find(entry.first);
    uint64_t before = it == begin_.end() ? 0 : it->second;
    if (entry.second > before) {
      profile.AddCounter(entry.first, entry.second - before);
    }
  }
}

}  // namespace ssagg
