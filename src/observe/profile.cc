#include "observe/profile.h"

namespace ssagg {

Json QueryProfile::ToJson() const {
  Json doc = Json::Object();
  if (!query.empty()) {
    doc.Set("query", query);
  }
  doc.Set("threads", static_cast<uint64_t>(threads));
  doc.Set("total_seconds", total_seconds);
  doc.Set("phase1_seconds", phase1_seconds);
  doc.Set("phase2_seconds", phase2_seconds);
  Json counter_obj = Json::Object();
  for (const auto &entry : counters) {
    counter_obj.Set(entry.first, entry.second);
  }
  doc.Set("counters", std::move(counter_obj));
  Json timing_obj = Json::Object();
  for (const auto &entry : timings) {
    timing_obj.Set(entry.first, entry.second);
  }
  doc.Set("timings", std::move(timing_obj));
  if (!histograms.empty()) {
    Json hist_obj = Json::Object();
    for (const auto &[key, hist] : histograms) {
      Json h = Json::Object();
      h.Set("count", hist.count);
      h.Set("p50", hist.Percentile(0.50));
      h.Set("p90", hist.Percentile(0.90));
      h.Set("p99", hist.Percentile(0.99));
      h.Set("max", hist.max);
      hist_obj.Set(key, std::move(h));
    }
    doc.Set("histograms", std::move(hist_obj));
  }
  return doc;
}

void RegistryDelta::AddTo(QueryProfile &profile) const {
  std::map<std::string, uint64_t> now = registry_.Snapshot();
  for (const auto &entry : now) {
    auto it = begin_.find(entry.first);
    uint64_t before = it == begin_.end() ? 0 : it->second;
    if (entry.second > before) {
      profile.AddCounter(entry.first, entry.second - before);
    }
  }
  auto hist_now = registry_.HistogramSnapshots();
  for (auto &[key, hist] : hist_now) {
    auto it = hist_begin_.find(key);
    if (it != hist_begin_.end()) {
      hist.Subtract(it->second);
    }
    if (hist.count > 0) {
      profile.histograms[key].Merge(hist);
    }
  }
}

}  // namespace ssagg
