#include "observe/log.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/mutex.h"

namespace ssagg {

namespace {

LogLevel ParseLevel(const char *value) {
  if (value == nullptr || value[0] == '\0') {
    return LogLevel::kWarn;
  }
  if (std::strcmp(value, "off") == 0 || std::strcmp(value, "none") == 0) {
    return LogLevel::kOff;
  }
  if (std::strcmp(value, "error") == 0 || std::strcmp(value, "0") == 0) {
    return LogLevel::kError;
  }
  if (std::strcmp(value, "warn") == 0 || std::strcmp(value, "1") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(value, "info") == 0 || std::strcmp(value, "2") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(value, "debug") == 0 || std::strcmp(value, "3") == 0) {
    return LogLevel::kDebug;
  }
  return LogLevel::kWarn;
}

char LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return 'E';
    case LogLevel::kWarn:
      return 'W';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kOff:
      break;
  }
  return '?';
}

}  // namespace

LogLevel LogThreshold() {
  static const LogLevel threshold = ParseLevel(std::getenv("SSAGG_LOG_LEVEL"));
  return threshold;
}

void LogMessage(LogLevel level, const char *format, ...) {
  if (!LogEnabled(level)) {
    return;
  }
  static const auto epoch = std::chrono::steady_clock::now();
  static Mutex log_lock;
  double seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - epoch)
                       .count();
  std::va_list args;
  va_start(args, format);
  {
    ScopedLock guard(log_lock);
    std::fprintf(stderr, "[ssagg] %c %8.3fs ", LevelTag(level), seconds);
    std::vfprintf(stderr, format, args);
    std::fputc('\n', stderr);
  }
  va_end(args);
}

}  // namespace ssagg
