#ifndef SSAGG_EXECUTION_TASK_EXECUTOR_H_
#define SSAGG_EXECUTION_TASK_EXECUTOR_H_

#include <chrono>
#include <functional>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "execution/operator.h"
#include "observe/progress.h"

namespace ssagg {

/// Per-run observability counters of the executor, summed over workers.
/// Seconds are cumulative thread time, so with N workers busy the whole
/// run, source+sink+combine approaches N x wall clock; the gap between
/// worker_seconds and (source+sink+combine) is time lost to skew/idling.
struct ExecutorStats {
  idx_t workers = 0;
  idx_t chunks = 0;           // morsel chunks pushed into the sink
  idx_t rows = 0;             // rows those chunks carried
  idx_t tasks = 0;            // RunTasks tasks executed
  idx_t task_rounds = 0;      // RunTaskRounds barrier rounds executed
  idx_t deadline_aborts = 0;  // runs aborted by the wall-clock deadline
  double worker_seconds = 0;   // total worker wall clock
  double source_seconds = 0;   // inside DataSource::GetData
  double sink_seconds = 0;     // inside DataSink::Sink ("busy")
  double combine_seconds = 0;  // inside DataSink::Combine

  void Merge(const ExecutorStats &other);
};

/// Runs morsel-driven pipelines and parallel task sets on a fixed number of
/// worker threads (paper Section V, "Parallelism"). Each pipeline run
/// spawns the workers, drives source -> sink until the source is dry, and
/// calls Combine once per thread. The first error aborts the run.
class TaskExecutor {
 public:
  explicit TaskExecutor(idx_t num_threads);

  [[nodiscard]] idx_t num_threads() const { return num_threads_; }

  /// Arms a wall-clock deadline (the benchmark harness' query timeout).
  /// Pipelines abort with Status::Timeout once it passes; long-running
  /// operators may also poll CheckDeadline() from their inner loops.
  void SetDeadline(double seconds_from_now);
  void ClearDeadline() { has_deadline_ = false; }
  Status CheckDeadline() const;

  /// Executes one pipeline: every worker repeatedly pulls a chunk from the
  /// source and pushes it into the sink, then combines its local state.
  /// When `progress` is given, each worker publishes its consumed rows into
  /// it per chunk (one relaxed fetch_add — pollable live from any thread).
  Status RunPipeline(DataSource &source, DataSink &sink,
                     QueryProgress *progress = nullptr);

  /// Runs independent tasks in parallel, each at most once; tasks are
  /// claimed through an atomic counter (used for partition-wise phase 2).
  Status RunTasks(const std::vector<std::function<Status()>> &tasks);

  /// Runs task sets separated by barriers: all tasks of round r complete
  /// before round r+1 starts; the first error aborts the remaining rounds.
  /// Used by the tree-merge strategy, whose pairwise merge rounds each
  /// depend on the previous round's outputs.
  Status RunTaskRounds(
      const std::vector<std::vector<std::function<Status()>>> &rounds);

  /// Counters accumulated since construction (or the last ResetStats).
  /// Returns a copy taken under the stats lock, so it is safe to call while
  /// a run is in flight (you get a consistent snapshot of the workers that
  /// finished so far).
  [[nodiscard]] ExecutorStats stats() const;
  void ResetStats();

 private:
  /// Folds one worker's local counters into stats_ and the global metrics
  /// registry.
  void AccumulateWorker(const ExecutorStats &local);

  idx_t num_threads_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};

  mutable Mutex stats_lock_;
  ExecutorStats stats_ SSAGG_GUARDED_BY(stats_lock_);

  // Cached global-registry key ids ("exec.*").
  idx_t key_chunks_;
  idx_t key_rows_;
  idx_t key_tasks_;
  idx_t key_task_rounds_;
  idx_t key_deadline_aborts_;
  idx_t key_source_ns_;
  idx_t key_sink_ns_;
  idx_t key_combine_ns_;
  /// Per-morsel Sink() duration histogram ("exec.morsel_sink_ns").
  idx_t hist_morsel_sink_;
};

}  // namespace ssagg

#endif  // SSAGG_EXECUTION_TASK_EXECUTOR_H_
