#ifndef SSAGG_EXECUTION_TASK_EXECUTOR_H_
#define SSAGG_EXECUTION_TASK_EXECUTOR_H_

#include <chrono>
#include <functional>
#include <vector>

#include "common/status.h"
#include "execution/operator.h"

namespace ssagg {

/// Runs morsel-driven pipelines and parallel task sets on a fixed number of
/// worker threads (paper Section V, "Parallelism"). Each pipeline run
/// spawns the workers, drives source -> sink until the source is dry, and
/// calls Combine once per thread. The first error aborts the run.
class TaskExecutor {
 public:
  explicit TaskExecutor(idx_t num_threads) : num_threads_(num_threads) {}

  idx_t num_threads() const { return num_threads_; }

  /// Arms a wall-clock deadline (the benchmark harness' query timeout).
  /// Pipelines abort with Status::Timeout once it passes; long-running
  /// operators may also poll CheckDeadline() from their inner loops.
  void SetDeadline(double seconds_from_now);
  void ClearDeadline() { has_deadline_ = false; }
  Status CheckDeadline() const;

  /// Executes one pipeline: every worker repeatedly pulls a chunk from the
  /// source and pushes it into the sink, then combines its local state.
  Status RunPipeline(DataSource &source, DataSink &sink);

  /// Runs independent tasks in parallel, each at most once; tasks are
  /// claimed through an atomic counter (used for partition-wise phase 2).
  Status RunTasks(const std::vector<std::function<Status()>> &tasks);

 private:
  idx_t num_threads_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace ssagg

#endif  // SSAGG_EXECUTION_TASK_EXECUTOR_H_
