#include "execution/collectors.h"

namespace ssagg {

namespace {
class EmptyLocalState : public LocalSinkState {};

std::vector<Value> BoxRow(const DataChunk &chunk, idx_t row) {
  std::vector<Value> values;
  values.reserve(chunk.ColumnCount());
  for (idx_t c = 0; c < chunk.ColumnCount(); c++) {
    values.push_back(Value::FromVector(chunk.column(c), row));
  }
  return values;
}
}  // namespace

//===----------------------------------------------------------------------===//
// MaterializedCollector
//===----------------------------------------------------------------------===//

Result<std::unique_ptr<LocalSinkState>> MaterializedCollector::InitLocal() {
  return std::unique_ptr<LocalSinkState>(new EmptyLocalState());
}

Status MaterializedCollector::Sink(DataChunk &chunk, LocalSinkState &) {
  ScopedLock guard(lock_);
  for (idx_t i = 0; i < chunk.size(); i++) {
    rows_.push_back(BoxRow(chunk, i));
  }
  return Status::OK();
}

Status MaterializedCollector::Combine(LocalSinkState &) {
  return Status::OK();
}

std::vector<std::vector<Value>> MaterializedCollector::rows() const {
  ScopedLock guard(lock_);
  return rows_;
}

idx_t MaterializedCollector::RowCount() const {
  ScopedLock guard(lock_);
  return rows_.size();
}

//===----------------------------------------------------------------------===//
// OffsetCollector
//===----------------------------------------------------------------------===//

Result<std::unique_ptr<LocalSinkState>> OffsetCollector::InitLocal() {
  return std::unique_ptr<LocalSinkState>(new EmptyLocalState());
}

Status OffsetCollector::Sink(DataChunk &chunk, LocalSinkState &) {
  idx_t start = total_.fetch_add(chunk.size(), std::memory_order_relaxed);
  // Rows [start, start + count) of the global result; keep those at or past
  // the offset.
  if (start + chunk.size() <= offset_) {
    return Status::OK();
  }
  ScopedLock guard(lock_);
  for (idx_t i = 0; i < chunk.size(); i++) {
    if (start + i >= offset_) {
      kept_.push_back(BoxRow(chunk, i));
    }
  }
  return Status::OK();
}

Status OffsetCollector::Combine(LocalSinkState &) { return Status::OK(); }

std::vector<std::vector<Value>> OffsetCollector::kept_rows() const {
  ScopedLock guard(lock_);
  return kept_;
}

//===----------------------------------------------------------------------===//
// CountingCollector
//===----------------------------------------------------------------------===//

Result<std::unique_ptr<LocalSinkState>> CountingCollector::InitLocal() {
  return std::unique_ptr<LocalSinkState>(new EmptyLocalState());
}

Status CountingCollector::Sink(DataChunk &chunk, LocalSinkState &) {
  total_.fetch_add(chunk.size(), std::memory_order_relaxed);
  return Status::OK();
}

Status CountingCollector::Combine(LocalSinkState &) { return Status::OK(); }

Status MaterializedCollector::Reset() {
  ScopedLock guard(lock_);
  rows_.clear();
  return Status::OK();
}

Status OffsetCollector::Reset() {
  ScopedLock guard(lock_);
  total_.store(0, std::memory_order_relaxed);
  kept_.clear();
  return Status::OK();
}

Status CountingCollector::Reset() {
  total_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace ssagg
