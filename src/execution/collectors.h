#ifndef SSAGG_EXECUTION_COLLECTORS_H_
#define SSAGG_EXECUTION_COLLECTORS_H_

#include <atomic>
#include <mutex>
#include <vector>

#include "common/value.h"
#include "execution/operator.h"

namespace ssagg {

/// Collects every row as boxed values. For tests, examples, and small
/// result sets only.
class MaterializedCollector : public DataSink {
 public:
  Result<std::unique_ptr<LocalSinkState>> InitLocal() override;
  Status Sink(DataChunk &chunk, LocalSinkState &state) override;
  Status Combine(LocalSinkState &state) override;
  Status Reset() override;

  /// Rows in unspecified order (parallel sinks).
  const std::vector<std::vector<Value>> &rows() const { return rows_; }
  idx_t RowCount() const { return rows_.size(); }

 private:
  std::mutex lock_;
  std::vector<std::vector<Value>> rows_;
};

/// Implements the paper's benchmark query shape: `... OFFSET N - 1` — the
/// first N-1 result rows are counted and discarded, anything after the
/// offset is kept (exactly one row when N equals the number of unique
/// groups). This forces full aggregation while producing a single-row
/// result, avoiding client-transfer overhead in measurements (Section VI,
/// "Query").
class OffsetCollector : public DataSink {
 public:
  explicit OffsetCollector(idx_t offset) : offset_(offset) {}

  Result<std::unique_ptr<LocalSinkState>> InitLocal() override;
  Status Sink(DataChunk &chunk, LocalSinkState &state) override;
  Status Combine(LocalSinkState &state) override;
  Status Reset() override;

  idx_t TotalRows() const { return total_.load(std::memory_order_relaxed); }
  const std::vector<std::vector<Value>> &kept_rows() const { return kept_; }

 private:
  idx_t offset_;
  std::atomic<idx_t> total_{0};
  std::mutex lock_;
  std::vector<std::vector<Value>> kept_;
};

/// Counts rows and accumulates a cheap checksum; used by benchmarks to
/// prevent dead-code elimination without materializing results.
class CountingCollector : public DataSink {
 public:
  Result<std::unique_ptr<LocalSinkState>> InitLocal() override;
  Status Sink(DataChunk &chunk, LocalSinkState &state) override;
  Status Combine(LocalSinkState &state) override;
  Status Reset() override;

  idx_t TotalRows() const { return total_.load(std::memory_order_relaxed); }

 private:
  std::atomic<idx_t> total_{0};
};

}  // namespace ssagg

#endif  // SSAGG_EXECUTION_COLLECTORS_H_
