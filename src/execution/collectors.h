#ifndef SSAGG_EXECUTION_COLLECTORS_H_
#define SSAGG_EXECUTION_COLLECTORS_H_

#include <atomic>
#include <vector>

#include "common/mutex.h"
#include "common/value.h"
#include "execution/operator.h"

namespace ssagg {

/// Collects every row as boxed values. For tests, examples, and small
/// result sets only.
class MaterializedCollector : public DataSink {
 public:
  Result<std::unique_ptr<LocalSinkState>> InitLocal() override;
  Status Sink(DataChunk &chunk, LocalSinkState &state) override;
  Status Combine(LocalSinkState &state) override;
  Status Reset() override;

  /// Rows in unspecified order (parallel sinks). Returns a copy taken under
  /// the lock; this collector is for small result sets, so readers binding
  /// `const auto &rows = collector.rows()` keep the copy alive via lifetime
  /// extension.
  [[nodiscard]] std::vector<std::vector<Value>> rows() const;
  [[nodiscard]] idx_t RowCount() const;

 private:
  mutable Mutex lock_;
  std::vector<std::vector<Value>> rows_ SSAGG_GUARDED_BY(lock_);
};

/// Implements the paper's benchmark query shape: `... OFFSET N - 1` — the
/// first N-1 result rows are counted and discarded, anything after the
/// offset is kept (exactly one row when N equals the number of unique
/// groups). This forces full aggregation while producing a single-row
/// result, avoiding client-transfer overhead in measurements (Section VI,
/// "Query").
class OffsetCollector : public DataSink {
 public:
  explicit OffsetCollector(idx_t offset) : offset_(offset) {}

  Result<std::unique_ptr<LocalSinkState>> InitLocal() override;
  Status Sink(DataChunk &chunk, LocalSinkState &state) override;
  Status Combine(LocalSinkState &state) override;
  Status Reset() override;

  idx_t TotalRows() const { return total_.load(std::memory_order_relaxed); }
  /// Rows past the offset, copied under the lock (at most a handful by
  /// construction of the benchmark query).
  [[nodiscard]] std::vector<std::vector<Value>> kept_rows() const;

 private:
  idx_t offset_;
  std::atomic<idx_t> total_{0};
  mutable Mutex lock_;
  std::vector<std::vector<Value>> kept_ SSAGG_GUARDED_BY(lock_);
};

/// Counts rows and accumulates a cheap checksum; used by benchmarks to
/// prevent dead-code elimination without materializing results.
class CountingCollector : public DataSink {
 public:
  Result<std::unique_ptr<LocalSinkState>> InitLocal() override;
  Status Sink(DataChunk &chunk, LocalSinkState &state) override;
  Status Combine(LocalSinkState &state) override;
  Status Reset() override;

  idx_t TotalRows() const { return total_.load(std::memory_order_relaxed); }

 private:
  std::atomic<idx_t> total_{0};
};

}  // namespace ssagg

#endif  // SSAGG_EXECUTION_COLLECTORS_H_
