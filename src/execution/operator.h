#ifndef SSAGG_EXECUTION_OPERATOR_H_
#define SSAGG_EXECUTION_OPERATOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/vector.h"

namespace ssagg {

/// Per-thread state of a source. Sources hand out morsels through a shared
/// (internally synchronized) global state.
class LocalSourceState {
 public:
  virtual ~LocalSourceState() = default;
};

/// Per-thread state of a sink (paper Section V: "Operators may have a local
/// state per thread and one state shared across all threads").
class LocalSinkState {
 public:
  virtual ~LocalSinkState() = default;
};

/// A morsel-parallel data producer. GetData is called concurrently from all
/// worker threads; implementations dispatch morsels via atomics.
class DataSource {
 public:
  virtual ~DataSource() = default;
  virtual std::vector<LogicalTypeId> Types() const = 0;
  virtual Result<std::unique_ptr<LocalSourceState>> InitLocal() = 0;
  /// Fills `chunk` with up to kVectorSize rows; returns false when this
  /// thread has exhausted the source.
  virtual Result<bool> GetData(DataChunk &chunk, LocalSourceState &state) = 0;

  /// Prepares the source to be scanned again from the start (needed by
  /// restart-on-memory-pressure strategies). Not all sources support it.
  virtual Status Rewind() {
    return Status::NotImplemented("source cannot be rewound");
  }

  /// Total rows this source will produce, if it knows (kInvalidIndex when
  /// it cannot estimate). The aggregate planner extrapolates its sampled
  /// distinct count to the whole input with this.
  [[nodiscard]] virtual idx_t EstimatedRowCount() const {
    return kInvalidIndex;
  }
};

/// A morsel-parallel data consumer (pipeline breaker or final collector).
class DataSink {
 public:
  virtual ~DataSink() = default;
  virtual Result<std::unique_ptr<LocalSinkState>> InitLocal() = 0;
  virtual Status Sink(DataChunk &chunk, LocalSinkState &state) = 0;
  /// Called once per thread when its morsels are exhausted; merges the
  /// thread-local state into the shared state. May run concurrently;
  /// implementations synchronize internally.
  virtual Status Combine(LocalSinkState &state) = 0;

  /// Discards everything collected so far (used when a baseline strategy
  /// restarts the query after running out of memory). Optional.
  virtual Status Reset() {
    return Status::NotImplemented("sink cannot be reset");
  }
};

}  // namespace ssagg

#endif  // SSAGG_EXECUTION_OPERATOR_H_
