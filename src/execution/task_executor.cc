#include "execution/task_executor.h"

#include <atomic>
#include <mutex>
#include <thread>

namespace ssagg {

namespace {

/// Collects the first error from concurrent workers.
class ErrorCollector {
 public:
  void Set(Status status) {
    if (status.ok()) {
      return;
    }
    std::lock_guard<std::mutex> guard(lock_);
    if (first_error_.ok()) {
      first_error_ = std::move(status);
    }
    failed_.store(true, std::memory_order_relaxed);
  }
  bool Failed() const { return failed_.load(std::memory_order_relaxed); }
  Status Take() {
    std::lock_guard<std::mutex> guard(lock_);
    return first_error_;
  }

 private:
  std::mutex lock_;
  Status first_error_;
  std::atomic<bool> failed_{false};
};

}  // namespace

void TaskExecutor::SetDeadline(double seconds_from_now) {
  has_deadline_ = true;
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds_from_now));
}

Status TaskExecutor::CheckDeadline() const {
  if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
    return Status::Timeout("query exceeded its deadline");
  }
  return Status::OK();
}

Status TaskExecutor::RunPipeline(DataSource &source, DataSink &sink) {
  ErrorCollector errors;
  auto worker = [&]() {
    auto lsource = source.InitLocal();
    if (!lsource.ok()) {
      errors.Set(lsource.status());
      return;
    }
    auto lsink = sink.InitLocal();
    if (!lsink.ok()) {
      errors.Set(lsink.status());
      return;
    }
    DataChunk chunk(source.Types());
    idx_t chunks_since_check = 0;
    while (!errors.Failed()) {
      if (++chunks_since_check >= 16) {
        chunks_since_check = 0;
        Status deadline = CheckDeadline();
        if (!deadline.ok()) {
          errors.Set(std::move(deadline));
          return;
        }
      }
      chunk.Reset();
      auto more = source.GetData(chunk, *lsource.value());
      if (!more.ok()) {
        errors.Set(more.status());
        return;
      }
      if (!more.value()) {
        break;
      }
      if (chunk.size() == 0) {
        continue;
      }
      Status st = sink.Sink(chunk, *lsink.value());
      if (!st.ok()) {
        errors.Set(st);
        return;
      }
    }
    if (!errors.Failed()) {
      errors.Set(sink.Combine(*lsink.value()));
    }
  };

  if (num_threads_ <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads_);
    for (idx_t t = 0; t < num_threads_; t++) {
      threads.emplace_back(worker);
    }
    for (auto &th : threads) {
      th.join();
    }
  }
  return errors.Take();
}

Status TaskExecutor::RunTasks(const std::vector<std::function<Status()>> &tasks) {
  ErrorCollector errors;
  std::atomic<idx_t> next{0};
  auto worker = [&]() {
    while (!errors.Failed()) {
      Status deadline = CheckDeadline();
      if (!deadline.ok()) {
        errors.Set(std::move(deadline));
        return;
      }
      idx_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) {
        return;
      }
      errors.Set(tasks[i]());
    }
  };
  idx_t nthreads = std::min<idx_t>(num_threads_, tasks.size());
  if (nthreads <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (idx_t t = 0; t < nthreads; t++) {
      threads.emplace_back(worker);
    }
    for (auto &th : threads) {
      th.join();
    }
  }
  return errors.Take();
}

}  // namespace ssagg
