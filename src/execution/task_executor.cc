#include "execution/task_executor.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "observe/metrics.h"
#include "observe/trace.h"

namespace ssagg {

namespace {

/// Collects the first error from concurrent workers.
class ErrorCollector {
 public:
  void Set(Status status) {
    if (status.ok()) {
      return;
    }
    ScopedLock guard(lock_);
    if (first_error_.ok()) {
      first_error_ = std::move(status);
    }
    failed_.store(true, std::memory_order_relaxed);
  }
  bool Failed() const { return failed_.load(std::memory_order_relaxed); }
  Status Take() {
    ScopedLock guard(lock_);
    return first_error_;
  }

 private:
  Mutex lock_;
  Status first_error_ SSAGG_GUARDED_BY(lock_);
  std::atomic<bool> failed_{false};
};

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void ExecutorStats::Merge(const ExecutorStats &other) {
  workers += other.workers;
  chunks += other.chunks;
  rows += other.rows;
  tasks += other.tasks;
  task_rounds += other.task_rounds;
  deadline_aborts += other.deadline_aborts;
  worker_seconds += other.worker_seconds;
  source_seconds += other.source_seconds;
  sink_seconds += other.sink_seconds;
  combine_seconds += other.combine_seconds;
}

TaskExecutor::TaskExecutor(idx_t num_threads) : num_threads_(num_threads) {
  MetricsRegistry &registry = MetricsRegistry::Global();
  key_chunks_ = registry.KeyId("exec.chunks");
  key_rows_ = registry.KeyId("exec.rows");
  key_tasks_ = registry.KeyId("exec.tasks");
  key_task_rounds_ = registry.KeyId("exec.task_rounds");
  key_deadline_aborts_ = registry.KeyId("exec.deadline_aborts");
  key_source_ns_ = registry.KeyId("exec.source_ns");
  key_sink_ns_ = registry.KeyId("exec.sink_ns");
  key_combine_ns_ = registry.KeyId("exec.combine_ns");
  hist_morsel_sink_ = registry.HistogramId("exec.morsel_sink_ns");
}

void TaskExecutor::SetDeadline(double seconds_from_now) {
  has_deadline_ = true;
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds_from_now));
}

Status TaskExecutor::CheckDeadline() const {
  if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
    return Status::Timeout("query exceeded its deadline");
  }
  return Status::OK();
}

ExecutorStats TaskExecutor::stats() const {
  ScopedLock guard(stats_lock_);
  return stats_;
}

void TaskExecutor::ResetStats() {
  ScopedLock guard(stats_lock_);
  stats_ = ExecutorStats{};
}

void TaskExecutor::AccumulateWorker(const ExecutorStats &local) {
  {
    ScopedLock guard(stats_lock_);
    stats_.Merge(local);
  }
  MetricsRegistry &registry = MetricsRegistry::Global();
  registry.Add(key_chunks_, local.chunks);
  registry.Add(key_rows_, local.rows);
  registry.Add(key_tasks_, local.tasks);
  registry.Add(key_deadline_aborts_, local.deadline_aborts);
  registry.Add(key_source_ns_,
               static_cast<uint64_t>(local.source_seconds * 1e9));
  registry.Add(key_sink_ns_, static_cast<uint64_t>(local.sink_seconds * 1e9));
  registry.Add(key_combine_ns_,
               static_cast<uint64_t>(local.combine_seconds * 1e9));
}

Status TaskExecutor::RunPipeline(DataSource &source, DataSink &sink,
                                 QueryProgress *progress) {
  TraceSpan pipeline_span("pipeline", "exec");
  ErrorCollector errors;
  auto worker = [&]() {
    TraceSpan worker_span("worker", "exec");
    ExecutorStats local;
    local.workers = 1;
    auto worker_start = Clock::now();
    auto lsource = source.InitLocal();
    if (!lsource.ok()) {
      errors.Set(lsource.status());
      return;
    }
    auto lsink = sink.InitLocal();
    if (!lsink.ok()) {
      errors.Set(lsink.status());
      return;
    }
    DataChunk chunk(source.Types());
    idx_t chunks_since_check = 0;
    while (!errors.Failed()) {
      if (++chunks_since_check >= 16) {
        chunks_since_check = 0;
        Status deadline = CheckDeadline();
        if (!deadline.ok()) {
          local.deadline_aborts++;
          errors.Set(std::move(deadline));
          break;
        }
      }
      chunk.Reset();
      auto source_start = Clock::now();
      auto more = source.GetData(chunk, *lsource.value());
      local.source_seconds += SecondsSince(source_start);
      if (!more.ok()) {
        errors.Set(more.status());
        break;
      }
      if (!more.value()) {
        break;
      }
      if (chunk.size() == 0) {
        continue;
      }
      local.chunks++;
      local.rows += chunk.size();
      auto sink_start = Clock::now();
      Status st = sink.Sink(chunk, *lsink.value());
      auto sink_elapsed = Clock::now() - sink_start;
      local.sink_seconds += std::chrono::duration<double>(sink_elapsed).count();
      MetricsRegistry::Global().Record(
          hist_morsel_sink_,
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  sink_elapsed)
                  .count()));
      if (progress != nullptr) {
        progress->AddRows(chunk.size());
      }
      if (!st.ok()) {
        errors.Set(st);
        break;
      }
    }
    if (!errors.Failed()) {
      TraceSpan combine_span("combine", "exec");
      auto combine_start = Clock::now();
      errors.Set(sink.Combine(*lsink.value()));
      local.combine_seconds += SecondsSince(combine_start);
    }
    local.worker_seconds = SecondsSince(worker_start);
    AccumulateWorker(local);
  };

  if (num_threads_ <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads_);
    for (idx_t t = 0; t < num_threads_; t++) {
      threads.emplace_back(worker);
    }
    for (auto &th : threads) {
      th.join();
    }
  }
  return errors.Take();
}

Status TaskExecutor::RunTasks(const std::vector<std::function<Status()>> &tasks) {
  ErrorCollector errors;
  std::atomic<idx_t> next{0};
  auto worker = [&]() {
    ExecutorStats local;
    while (!errors.Failed()) {
      Status deadline = CheckDeadline();
      if (!deadline.ok()) {
        local.deadline_aborts++;
        errors.Set(std::move(deadline));
        break;
      }
      idx_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) {
        break;
      }
      TraceSpan task_span("task", "exec", i);
      local.tasks++;
      errors.Set(tasks[i]());
    }
    AccumulateWorker(local);
  };
  idx_t nthreads = std::min<idx_t>(num_threads_, tasks.size());
  if (nthreads <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (idx_t t = 0; t < nthreads; t++) {
      threads.emplace_back(worker);
    }
    for (auto &th : threads) {
      th.join();
    }
  }
  return errors.Take();
}

Status TaskExecutor::RunTaskRounds(
    const std::vector<std::vector<std::function<Status()>>> &rounds) {
  MetricsRegistry &registry = MetricsRegistry::Global();
  idx_t round_idx = 0;
  for (const auto &round : rounds) {
    if (round.empty()) {
      continue;
    }
    TraceSpan span("task_round", "exec", round_idx++);
    registry.Add(key_task_rounds_, 1);
    {
      ScopedLock guard(stats_lock_);
      stats_.task_rounds++;
    }
    SSAGG_RETURN_NOT_OK(RunTasks(round));
  }
  return Status::OK();
}

}  // namespace ssagg
