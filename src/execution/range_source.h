#ifndef SSAGG_EXECUTION_RANGE_SOURCE_H_
#define SSAGG_EXECUTION_RANGE_SOURCE_H_

#include <atomic>
#include <functional>
#include <utility>

#include "execution/operator.h"

namespace ssagg {

/// Morsel-parallel source over a logical row range [0, total_rows). Worker
/// threads claim morsels of kMorselSize rows through an atomic counter and
/// materialize them in kVectorSize batches via a row-deterministic filler
/// function. This is the "morsels are assigned to threads until all input
/// data has been read" part of the paper's Figure 3.
class RangeSource : public DataSource {
 public:
  /// filler(chunk, start_row, count): materialize rows [start_row,
  /// start_row + count) into chunk (count <= kVectorSize). The chunk's
  /// count is pre-set to `count`; a filtering filler may lower it with
  /// chunk.SetCount() (the logical cursor still advances by `count`).
  using Filler = std::function<Status(DataChunk &, idx_t, idx_t)>;

  RangeSource(std::vector<LogicalTypeId> types, idx_t total_rows,
              Filler filler)
      : types_(std::move(types)),
        total_rows_(total_rows),
        filler_(std::move(filler)) {}

  std::vector<LogicalTypeId> Types() const override { return types_; }

  Result<std::unique_ptr<LocalSourceState>> InitLocal() override {
    return std::unique_ptr<LocalSourceState>(new LocalState());
  }

  Result<bool> GetData(DataChunk &chunk, LocalSourceState &state) override {
    auto &local = static_cast<LocalState &>(state);
    if (local.position >= local.morsel_end) {
      // Claim the next morsel.
      idx_t start = next_morsel_.fetch_add(kMorselSize,
                                           std::memory_order_relaxed);
      if (start >= total_rows_) {
        return false;
      }
      local.position = start;
      local.morsel_end = std::min(start + kMorselSize, total_rows_);
    }
    idx_t count = std::min<idx_t>(kVectorSize, local.morsel_end -
                                                   local.position);
    chunk.SetCount(count);
    SSAGG_RETURN_NOT_OK(filler_(chunk, local.position, count));
    local.position += count;
    return true;
  }

  [[nodiscard]] idx_t EstimatedRowCount() const override {
    return total_rows_;
  }

  /// Resets the morsel dispenser so the source can be scanned again.
  Status Rewind() override {
    next_morsel_.store(0, std::memory_order_relaxed);
    return Status::OK();
  }

 private:
  struct LocalState : public LocalSourceState {
    idx_t position = 0;
    idx_t morsel_end = 0;
  };

  std::vector<LogicalTypeId> types_;
  idx_t total_rows_;
  Filler filler_;
  std::atomic<idx_t> next_morsel_{0};
};

}  // namespace ssagg

#endif  // SSAGG_EXECUTION_RANGE_SOURCE_H_
