#ifndef SSAGG_COMPRESSION_CODEC_H_
#define SSAGG_COMPRESSION_CODEC_H_

#include <vector>

#include "common/status.h"
#include "common/string_heap.h"
#include "common/vector.h"

namespace ssagg {

/// Lightweight compression codecs for persistent column segments. DuckDB's
/// columnar storage is compressed, which is why persistent pages have no
/// dirty state and can always be evicted for free (paper Section III,
/// "Compatibility": "it is not generally possible to perform in-place
/// updates, as pages are always fully rewritten").
enum class Codec : uint8_t {
  kPlain = 0,       // raw fixed-width values
  kForBitpack = 1,  // frame-of-reference + bit-packing (integers)
  kRle = 2,         // run-length encoding (integers)
  kStringPlain = 3, // offsets + character data
};

/// Compresses rows [0, count) of `input` into `out` (appended). Numeric
/// columns choose the smallest of plain / FoR-bitpacking / RLE; VARCHAR
/// columns use the string format. NULL rows are recorded in a validity
/// bitmap and their payload is stored as zero/empty.
///
/// Segment format:
///   uint8 codec | uint32 count | validity bits ceil(count/8) | payload
Status CompressSegment(const Vector &input, idx_t count,
                       std::vector<data_t> &out);

/// A fully decoded segment, held by scan states so consecutive vectors of
/// the same segment decompress only once.
struct DecodedSegment {
  LogicalTypeId type = LogicalTypeId::kInt64;
  idx_t count = 0;
  std::vector<data_t> values;     // count * TypeWidth(type) bytes
  std::vector<uint8_t> validity;  // 1 bit per row, set = valid
  StringHeap heap;                // character data of decoded strings

  bool RowIsValid(idx_t row) const {
    return (validity[row >> 3] >> (row & 7)) & 1;
  }
};

/// Decodes a segment produced by CompressSegment.
Status DecompressSegment(const_data_ptr_t data, idx_t size,
                         LogicalTypeId type, DecodedSegment &out);

/// Copies rows [offset, offset + count) of a decoded segment into the
/// first `count` rows of `out` (strings are copied into the vector heap).
void CopyDecodedRows(const DecodedSegment &segment, idx_t offset, idx_t count,
                     Vector &out);

const char *CodecName(Codec codec);

//===----------------------------------------------------------------------===//
// Spill frames
//===----------------------------------------------------------------------===//

/// Byte-oriented codecs for whole spilled pages and run-file flushes (as
/// opposed to the columnar segment codecs above). Chosen per frame by
/// CompressSpillFrame, recorded in the frame header.
enum class SpillCodec : uint8_t {
  kRaw = 0,      // payload stored verbatim
  kByteRle = 1,  // byte run-length encoding (zero padding, repeated bytes)
  kWordFor = 2,  // frame-of-reference + bit-packing over 64-bit words
  kLz = 3,       // greedy byte-oriented LZ77 (repeated row patterns, text)
};

/// Self-describing frame header, stored little-endian at the front of every
/// compressed spill frame:
///   uint32 magic | uint8 codec | uint8 flags | uint16 reserved |
///   uint32 raw_len | uint32 comp_len | uint32 checksum(payload)
struct SpillFrameHeader {
  static constexpr uint32_t kMagic = 0x46505353;  // "SSPF"
  static constexpr idx_t kSize = 20;

  SpillCodec codec = SpillCodec::kRaw;
  idx_t raw_len = 0;
  idx_t comp_len = 0;
  uint32_t checksum = 0;
};

/// Compresses `size` bytes into `out` (cleared first) as one frame: header
/// plus the smallest of the raw / byte-RLE / word-FoR encodings. Never
/// fails; the worst case is the raw payload plus SpillFrameHeader::kSize
/// bytes of header.
void CompressSpillFrame(const_data_ptr_t data, idx_t size,
                        std::vector<data_t> &out);

/// Parses and validates a frame header from the first kSize bytes of
/// `data`. Checks the magic, the codec id and that comp_len fits inside
/// `size`; does not touch the payload.
Status PeekSpillFrame(const_data_ptr_t data, idx_t size,
                      SpillFrameHeader &header);

/// Decodes one frame into exactly out_size bytes at `out`. Returns a clean
/// Status on any corruption: truncated input, checksum mismatch, raw_len
/// disagreeing with out_size, or a payload that decodes short/long/out of
/// bounds. Never reads outside [data, data + size) or writes outside
/// [out, out + out_size).
Status DecompressSpillFrame(const_data_ptr_t data, idx_t size, data_ptr_t out,
                            idx_t out_size);

}  // namespace ssagg

#endif  // SSAGG_COMPRESSION_CODEC_H_
