#ifndef SSAGG_COMPRESSION_CODEC_H_
#define SSAGG_COMPRESSION_CODEC_H_

#include <vector>

#include "common/status.h"
#include "common/string_heap.h"
#include "common/vector.h"

namespace ssagg {

/// Lightweight compression codecs for persistent column segments. DuckDB's
/// columnar storage is compressed, which is why persistent pages have no
/// dirty state and can always be evicted for free (paper Section III,
/// "Compatibility": "it is not generally possible to perform in-place
/// updates, as pages are always fully rewritten").
enum class Codec : uint8_t {
  kPlain = 0,       // raw fixed-width values
  kForBitpack = 1,  // frame-of-reference + bit-packing (integers)
  kRle = 2,         // run-length encoding (integers)
  kStringPlain = 3, // offsets + character data
};

/// Compresses rows [0, count) of `input` into `out` (appended). Numeric
/// columns choose the smallest of plain / FoR-bitpacking / RLE; VARCHAR
/// columns use the string format. NULL rows are recorded in a validity
/// bitmap and their payload is stored as zero/empty.
///
/// Segment format:
///   uint8 codec | uint32 count | validity bits ceil(count/8) | payload
Status CompressSegment(const Vector &input, idx_t count,
                       std::vector<data_t> &out);

/// A fully decoded segment, held by scan states so consecutive vectors of
/// the same segment decompress only once.
struct DecodedSegment {
  LogicalTypeId type = LogicalTypeId::kInt64;
  idx_t count = 0;
  std::vector<data_t> values;     // count * TypeWidth(type) bytes
  std::vector<uint8_t> validity;  // 1 bit per row, set = valid
  StringHeap heap;                // character data of decoded strings

  bool RowIsValid(idx_t row) const {
    return (validity[row >> 3] >> (row & 7)) & 1;
  }
};

/// Decodes a segment produced by CompressSegment.
Status DecompressSegment(const_data_ptr_t data, idx_t size,
                         LogicalTypeId type, DecodedSegment &out);

/// Copies rows [offset, offset + count) of a decoded segment into the
/// first `count` rows of `out` (strings are copied into the vector heap).
void CopyDecodedRows(const DecodedSegment &segment, idx_t offset, idx_t count,
                     Vector &out);

const char *CodecName(Codec codec);

}  // namespace ssagg

#endif  // SSAGG_COMPRESSION_CODEC_H_
