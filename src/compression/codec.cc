#include "compression/codec.h"

#include <algorithm>
#include <cstring>

#include "common/string_type.h"

namespace ssagg {

namespace {

void AppendBytes(std::vector<data_t> &out, const void *data, idx_t bytes) {
  if (bytes == 0) {
    return;  // `data` may be null (e.g. an empty heap) — don't touch it
  }
  auto *src = static_cast<const data_t *>(data);
  out.insert(out.end(), src, src + bytes);
}

template <typename T>
void AppendValue(std::vector<data_t> &out, T value) {
  AppendBytes(out, &value, sizeof(T));
}

template <typename T>
T ReadValue(const_data_ptr_t &cursor) {
  T value;
  std::memcpy(&value, cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

/// Loads integer values (int32/int64/date) widened to int64.
void LoadIntegers(const Vector &input, idx_t count, idx_t width,
                  std::vector<int64_t> &values) {
  values.resize(count);
  for (idx_t i = 0; i < count; i++) {
    if (!input.validity().RowIsValid(i)) {
      values[i] = 0;
      continue;
    }
    if (width == 4) {
      int32_t v;
      std::memcpy(&v, input.data() + i * 4, 4);
      values[i] = v;
    } else {
      std::memcpy(&values[i], input.data() + i * 8, 8);
    }
  }
}

idx_t BitsNeeded(uint64_t range) {
  idx_t bits = 0;
  while (range > 0) {
    bits++;
    range >>= 1;
  }
  return bits;
}

/// Appends `bits` low bits of each delta, LSB-first bit stream.
void PackBits(const std::vector<uint64_t> &deltas, idx_t bits,
              std::vector<data_t> &out) {
  idx_t total_bits = deltas.size() * bits;
  idx_t start = out.size();
  out.resize(start + (total_bits + 7) / 8, 0);
  idx_t bit_pos = 0;
  for (uint64_t delta : deltas) {
    for (idx_t b = 0; b < bits; b++) {
      if ((delta >> b) & 1) {
        out[start + ((bit_pos + b) >> 3)] |=
            static_cast<data_t>(1 << ((bit_pos + b) & 7));
      }
    }
    bit_pos += bits;
  }
}

uint64_t UnpackBits(const_data_ptr_t data, idx_t index, idx_t bits) {
  uint64_t value = 0;
  idx_t bit_pos = index * bits;
  for (idx_t b = 0; b < bits; b++) {
    idx_t pos = bit_pos + b;
    if ((data[pos >> 3] >> (pos & 7)) & 1) {
      value |= uint64_t(1) << b;
    }
  }
  return value;
}

struct RleRun {
  int64_t value;
  uint32_t length;
};

std::vector<RleRun> BuildRuns(const std::vector<int64_t> &values) {
  std::vector<RleRun> runs;
  for (int64_t v : values) {
    if (!runs.empty() && runs.back().value == v &&
        runs.back().length < ~uint32_t(0)) {
      runs.back().length++;
    } else {
      runs.push_back(RleRun{v, 1});
    }
  }
  return runs;
}

}  // namespace

const char *CodecName(Codec codec) {
  switch (codec) {
    case Codec::kPlain:
      return "PLAIN";
    case Codec::kForBitpack:
      return "FOR_BITPACK";
    case Codec::kRle:
      return "RLE";
    case Codec::kStringPlain:
      return "STRING_PLAIN";
  }
  return "UNKNOWN";
}

Status CompressSegment(const Vector &input, idx_t count,
                       std::vector<data_t> &out) {
  SSAGG_ASSERT(count > 0);
  const idx_t width = input.width();
  // Header: codec placeholder, count, validity bits.
  idx_t codec_pos = out.size();
  out.push_back(static_cast<data_t>(Codec::kPlain));
  AppendValue<uint32_t>(out, static_cast<uint32_t>(count));
  idx_t validity_pos = out.size();
  out.resize(out.size() + (count + 7) / 8, 0);
  for (idx_t i = 0; i < count; i++) {
    if (input.validity().RowIsValid(i)) {
      out[validity_pos + (i >> 3)] |= static_cast<data_t>(1 << (i & 7));
    }
  }

  if (input.type() == LogicalTypeId::kVarchar) {
    out[codec_pos] = static_cast<data_t>(Codec::kStringPlain);
    // offsets (count + 1) then chars.
    uint32_t total = 0;
    idx_t offsets_pos = out.size();
    out.resize(out.size() + 4 * (count + 1));
    std::vector<data_t> chars;
    for (idx_t i = 0; i < count; i++) {
      std::memcpy(out.data() + offsets_pos + 4 * i, &total, 4);
      if (input.validity().RowIsValid(i)) {
        string_t s = input.Values<string_t>()[i];
        AppendBytes(chars, s.data(), s.size());
        total += s.size();
      }
    }
    std::memcpy(out.data() + offsets_pos + 4 * count, &total, 4);
    AppendBytes(out, chars.data(), chars.size());
    return Status::OK();
  }

  if (input.type() == LogicalTypeId::kDouble ||
      input.type() == LogicalTypeId::kBoolean) {
    // Plain storage for doubles/booleans.
    AppendBytes(out, input.data(), count * width);
    return Status::OK();
  }

  // Integers: pick the smallest of plain / FoR-bitpack / RLE.
  std::vector<int64_t> values;
  LoadIntegers(input, count, width, values);
  int64_t min_v = values[0], max_v = values[0];
  for (int64_t v : values) {
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  // Unsigned subtraction: the frame may span the whole int64 range, where
  // max_v - min_v overflows as a signed operation.
  idx_t bits = BitsNeeded(static_cast<uint64_t>(max_v) -
                          static_cast<uint64_t>(min_v));
  idx_t bitpack_bytes = 9 + (count * bits + 7) / 8;
  auto runs = BuildRuns(values);
  idx_t rle_bytes = 4 + runs.size() * (width + 4);
  idx_t plain_bytes = count * width;

  if (rle_bytes < bitpack_bytes && rle_bytes < plain_bytes) {
    out[codec_pos] = static_cast<data_t>(Codec::kRle);
    AppendValue<uint32_t>(out, static_cast<uint32_t>(runs.size()));
    for (const auto &run : runs) {
      if (width == 4) {
        AppendValue<int32_t>(out, static_cast<int32_t>(run.value));
      } else {
        AppendValue<int64_t>(out, run.value);
      }
      AppendValue<uint32_t>(out, run.length);
    }
    return Status::OK();
  }
  if (bitpack_bytes < plain_bytes) {
    out[codec_pos] = static_cast<data_t>(Codec::kForBitpack);
    AppendValue<int64_t>(out, min_v);
    out.push_back(static_cast<data_t>(bits));
    std::vector<uint64_t> deltas(count);
    for (idx_t i = 0; i < count; i++) {
      deltas[i] =
          static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(min_v);
    }
    PackBits(deltas, bits, out);
    return Status::OK();
  }
  out[codec_pos] = static_cast<data_t>(Codec::kPlain);
  AppendBytes(out, input.data(), count * width);
  return Status::OK();
}

Status DecompressSegment(const_data_ptr_t data, idx_t size,
                         LogicalTypeId type, DecodedSegment &out) {
  const_data_ptr_t cursor = data;
  const_data_ptr_t end = data + size;
  if (size < 5) {
    return Status::IOError("segment too small");
  }
  auto codec = static_cast<Codec>(ReadValue<uint8_t>(cursor));
  auto count = ReadValue<uint32_t>(cursor);
  idx_t validity_bytes = (count + 7) / 8;
  if (cursor + validity_bytes > end) {
    return Status::IOError("segment validity out of bounds");
  }
  out.type = type;
  out.count = count;
  out.validity.assign(cursor, cursor + validity_bytes);
  cursor += validity_bytes;
  idx_t width = TypeWidth(type);
  out.values.resize(count * width);
  out.heap.Reset();

  switch (codec) {
    case Codec::kPlain: {
      if (cursor + count * width > end) {
        return Status::IOError("plain payload out of bounds");
      }
      if (count != 0) {  // a zero-count segment has a null values buffer
        std::memcpy(out.values.data(), cursor, count * width);
      }
      return Status::OK();
    }
    case Codec::kForBitpack: {
      auto min_v = ReadValue<int64_t>(cursor);
      auto bits = ReadValue<uint8_t>(cursor);
      if (cursor + (count * bits + 7) / 8 > end) {
        return Status::IOError("bitpack payload out of bounds");
      }
      for (idx_t i = 0; i < count; i++) {
        int64_t v = static_cast<int64_t>(static_cast<uint64_t>(min_v) +
                                         UnpackBits(cursor, i, bits));
        if (width == 4) {
          auto v32 = static_cast<int32_t>(v);
          std::memcpy(out.values.data() + i * 4, &v32, 4);
        } else {
          std::memcpy(out.values.data() + i * 8, &v, 8);
        }
      }
      return Status::OK();
    }
    case Codec::kRle: {
      auto nruns = ReadValue<uint32_t>(cursor);
      idx_t i = 0;
      for (uint32_t r = 0; r < nruns; r++) {
        if (cursor + width + 4 > end) {
          return Status::IOError("rle payload out of bounds");
        }
        int64_t value;
        if (width == 4) {
          value = ReadValue<int32_t>(cursor);
        } else {
          value = ReadValue<int64_t>(cursor);
        }
        auto run = ReadValue<uint32_t>(cursor);
        for (uint32_t j = 0; j < run && i < count; j++, i++) {
          if (width == 4) {
            auto v32 = static_cast<int32_t>(value);
            std::memcpy(out.values.data() + i * 4, &v32, 4);
          } else {
            std::memcpy(out.values.data() + i * 8, &value, 8);
          }
        }
      }
      if (i != count) {
        return Status::IOError("rle run count mismatch");
      }
      return Status::OK();
    }
    case Codec::kStringPlain: {
      if (cursor + 4 * (count + 1) > end) {
        return Status::IOError("string offsets out of bounds");
      }
      const_data_ptr_t offsets = cursor;
      cursor += 4 * (count + 1);
      uint32_t total;
      std::memcpy(&total, offsets + 4 * count, 4);
      if (cursor + total > end) {
        return Status::IOError("string chars out of bounds");
      }
      auto *strings = reinterpret_cast<string_t *>(out.values.data());
      for (idx_t i = 0; i < count; i++) {
        uint32_t begin, finish;
        std::memcpy(&begin, offsets + 4 * i, 4);
        std::memcpy(&finish, offsets + 4 * (i + 1), 4);
        strings[i] = out.heap.Add(
            std::string_view(reinterpret_cast<const char *>(cursor) + begin,
                             finish - begin));
      }
      return Status::OK();
    }
  }
  return Status::IOError("unknown codec");
}

void CopyDecodedRows(const DecodedSegment &segment, idx_t offset, idx_t count,
                     Vector &out) {
  idx_t width = TypeWidth(segment.type);
  if (segment.type == LogicalTypeId::kVarchar) {
    const auto *strings =
        reinterpret_cast<const string_t *>(segment.values.data());
    for (idx_t i = 0; i < count; i++) {
      if (!segment.RowIsValid(offset + i)) {
        out.validity().SetInvalid(i);
        out.Values<string_t>()[i] = string_t();
        continue;
      }
      out.SetString(i, strings[offset + i].View());
    }
    return;
  }
  if (count == 0) {
    return;
  }
  std::memcpy(out.data(), segment.values.data() + offset * width,
              count * width);
  for (idx_t i = 0; i < count; i++) {
    if (!segment.RowIsValid(offset + i)) {
      out.validity().SetInvalid(i);
    }
  }
}

}  // namespace ssagg
