#include "compression/codec.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "common/string_type.h"

namespace ssagg {

namespace {

void AppendBytes(std::vector<data_t> &out, const void *data, idx_t bytes) {
  if (bytes == 0) {
    return;  // `data` may be null (e.g. an empty heap) — don't touch it
  }
  auto *src = static_cast<const data_t *>(data);
  out.insert(out.end(), src, src + bytes);
}

template <typename T>
void AppendValue(std::vector<data_t> &out, T value) {
  AppendBytes(out, &value, sizeof(T));
}

template <typename T>
T ReadValue(const_data_ptr_t &cursor) {
  T value;
  std::memcpy(&value, cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

/// Loads integer values (int32/int64/date) widened to int64.
void LoadIntegers(const Vector &input, idx_t count, idx_t width,
                  std::vector<int64_t> &values) {
  values.resize(count);
  for (idx_t i = 0; i < count; i++) {
    if (!input.validity().RowIsValid(i)) {
      values[i] = 0;
      continue;
    }
    if (width == 4) {
      int32_t v;
      std::memcpy(&v, input.data() + i * 4, 4);
      values[i] = v;
    } else {
      std::memcpy(&values[i], input.data() + i * 8, 8);
    }
  }
}

idx_t BitsNeeded(uint64_t range) {
  idx_t bits = 0;
  while (range > 0) {
    bits++;
    range >>= 1;
  }
  return bits;
}

/// Appends `bits` low bits of each delta, LSB-first bit stream.
void PackBits(const std::vector<uint64_t> &deltas, idx_t bits,
              std::vector<data_t> &out) {
  idx_t total_bits = deltas.size() * bits;
  idx_t start = out.size();
  out.resize(start + (total_bits + 7) / 8, 0);
  idx_t bit_pos = 0;
  for (uint64_t delta : deltas) {
    for (idx_t b = 0; b < bits; b++) {
      if ((delta >> b) & 1) {
        out[start + ((bit_pos + b) >> 3)] |=
            static_cast<data_t>(1 << ((bit_pos + b) & 7));
      }
    }
    bit_pos += bits;
  }
}

uint64_t UnpackBits(const_data_ptr_t data, idx_t index, idx_t bits) {
  uint64_t value = 0;
  idx_t bit_pos = index * bits;
  for (idx_t b = 0; b < bits; b++) {
    idx_t pos = bit_pos + b;
    if ((data[pos >> 3] >> (pos & 7)) & 1) {
      value |= uint64_t(1) << b;
    }
  }
  return value;
}

struct RleRun {
  int64_t value;
  uint32_t length;
};

std::vector<RleRun> BuildRuns(const std::vector<int64_t> &values) {
  std::vector<RleRun> runs;
  for (int64_t v : values) {
    if (!runs.empty() && runs.back().value == v &&
        runs.back().length < ~uint32_t(0)) {
      runs.back().length++;
    } else {
      runs.push_back(RleRun{v, 1});
    }
  }
  return runs;
}

}  // namespace

const char *CodecName(Codec codec) {
  switch (codec) {
    case Codec::kPlain:
      return "PLAIN";
    case Codec::kForBitpack:
      return "FOR_BITPACK";
    case Codec::kRle:
      return "RLE";
    case Codec::kStringPlain:
      return "STRING_PLAIN";
  }
  return "UNKNOWN";
}

Status CompressSegment(const Vector &input, idx_t count,
                       std::vector<data_t> &out) {
  SSAGG_ASSERT(count > 0);
  const idx_t width = input.width();
  // Header: codec placeholder, count, validity bits.
  idx_t codec_pos = out.size();
  out.push_back(static_cast<data_t>(Codec::kPlain));
  AppendValue<uint32_t>(out, static_cast<uint32_t>(count));
  idx_t validity_pos = out.size();
  out.resize(out.size() + (count + 7) / 8, 0);
  for (idx_t i = 0; i < count; i++) {
    if (input.validity().RowIsValid(i)) {
      out[validity_pos + (i >> 3)] |= static_cast<data_t>(1 << (i & 7));
    }
  }

  if (input.type() == LogicalTypeId::kVarchar) {
    out[codec_pos] = static_cast<data_t>(Codec::kStringPlain);
    // offsets (count + 1) then chars.
    uint32_t total = 0;
    idx_t offsets_pos = out.size();
    out.resize(out.size() + 4 * (count + 1));
    std::vector<data_t> chars;
    for (idx_t i = 0; i < count; i++) {
      std::memcpy(out.data() + offsets_pos + 4 * i, &total, 4);
      if (input.validity().RowIsValid(i)) {
        string_t s = input.Values<string_t>()[i];
        AppendBytes(chars, s.data(), s.size());
        total += s.size();
      }
    }
    std::memcpy(out.data() + offsets_pos + 4 * count, &total, 4);
    AppendBytes(out, chars.data(), chars.size());
    return Status::OK();
  }

  if (input.type() == LogicalTypeId::kDouble ||
      input.type() == LogicalTypeId::kBoolean) {
    // Plain storage for doubles/booleans.
    AppendBytes(out, input.data(), count * width);
    return Status::OK();
  }

  // Integers: pick the smallest of plain / FoR-bitpack / RLE.
  std::vector<int64_t> values;
  LoadIntegers(input, count, width, values);
  int64_t min_v = values[0], max_v = values[0];
  for (int64_t v : values) {
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  // Unsigned subtraction: the frame may span the whole int64 range, where
  // max_v - min_v overflows as a signed operation.
  idx_t bits = BitsNeeded(static_cast<uint64_t>(max_v) -
                          static_cast<uint64_t>(min_v));
  idx_t bitpack_bytes = 9 + (count * bits + 7) / 8;
  auto runs = BuildRuns(values);
  idx_t rle_bytes = 4 + runs.size() * (width + 4);
  idx_t plain_bytes = count * width;

  if (rle_bytes < bitpack_bytes && rle_bytes < plain_bytes) {
    out[codec_pos] = static_cast<data_t>(Codec::kRle);
    AppendValue<uint32_t>(out, static_cast<uint32_t>(runs.size()));
    for (const auto &run : runs) {
      if (width == 4) {
        AppendValue<int32_t>(out, static_cast<int32_t>(run.value));
      } else {
        AppendValue<int64_t>(out, run.value);
      }
      AppendValue<uint32_t>(out, run.length);
    }
    return Status::OK();
  }
  if (bitpack_bytes < plain_bytes) {
    out[codec_pos] = static_cast<data_t>(Codec::kForBitpack);
    AppendValue<int64_t>(out, min_v);
    out.push_back(static_cast<data_t>(bits));
    std::vector<uint64_t> deltas(count);
    for (idx_t i = 0; i < count; i++) {
      deltas[i] =
          static_cast<uint64_t>(values[i]) - static_cast<uint64_t>(min_v);
    }
    PackBits(deltas, bits, out);
    return Status::OK();
  }
  out[codec_pos] = static_cast<data_t>(Codec::kPlain);
  AppendBytes(out, input.data(), count * width);
  return Status::OK();
}

Status DecompressSegment(const_data_ptr_t data, idx_t size,
                         LogicalTypeId type, DecodedSegment &out) {
  const_data_ptr_t cursor = data;
  const_data_ptr_t end = data + size;
  if (size < 5) {
    return Status::IOError("segment too small");
  }
  auto codec = static_cast<Codec>(ReadValue<uint8_t>(cursor));
  auto count = ReadValue<uint32_t>(cursor);
  idx_t validity_bytes = (count + 7) / 8;
  if (cursor + validity_bytes > end) {
    return Status::IOError("segment validity out of bounds");
  }
  out.type = type;
  out.count = count;
  out.validity.assign(cursor, cursor + validity_bytes);
  cursor += validity_bytes;
  idx_t width = TypeWidth(type);
  out.values.resize(count * width);
  out.heap.Reset();

  switch (codec) {
    case Codec::kPlain: {
      if (cursor + count * width > end) {
        return Status::IOError("plain payload out of bounds");
      }
      if (count != 0) {  // a zero-count segment has a null values buffer
        std::memcpy(out.values.data(), cursor, count * width);
      }
      return Status::OK();
    }
    case Codec::kForBitpack: {
      auto min_v = ReadValue<int64_t>(cursor);
      auto bits = ReadValue<uint8_t>(cursor);
      if (cursor + (count * bits + 7) / 8 > end) {
        return Status::IOError("bitpack payload out of bounds");
      }
      for (idx_t i = 0; i < count; i++) {
        int64_t v = static_cast<int64_t>(static_cast<uint64_t>(min_v) +
                                         UnpackBits(cursor, i, bits));
        if (width == 4) {
          auto v32 = static_cast<int32_t>(v);
          std::memcpy(out.values.data() + i * 4, &v32, 4);
        } else {
          std::memcpy(out.values.data() + i * 8, &v, 8);
        }
      }
      return Status::OK();
    }
    case Codec::kRle: {
      auto nruns = ReadValue<uint32_t>(cursor);
      idx_t i = 0;
      for (uint32_t r = 0; r < nruns; r++) {
        if (cursor + width + 4 > end) {
          return Status::IOError("rle payload out of bounds");
        }
        int64_t value;
        if (width == 4) {
          value = ReadValue<int32_t>(cursor);
        } else {
          value = ReadValue<int64_t>(cursor);
        }
        auto run = ReadValue<uint32_t>(cursor);
        for (uint32_t j = 0; j < run && i < count; j++, i++) {
          if (width == 4) {
            auto v32 = static_cast<int32_t>(value);
            std::memcpy(out.values.data() + i * 4, &v32, 4);
          } else {
            std::memcpy(out.values.data() + i * 8, &value, 8);
          }
        }
      }
      if (i != count) {
        return Status::IOError("rle run count mismatch");
      }
      return Status::OK();
    }
    case Codec::kStringPlain: {
      if (cursor + 4 * (count + 1) > end) {
        return Status::IOError("string offsets out of bounds");
      }
      const_data_ptr_t offsets = cursor;
      cursor += 4 * (count + 1);
      uint32_t total;
      std::memcpy(&total, offsets + 4 * count, 4);
      if (cursor + total > end) {
        return Status::IOError("string chars out of bounds");
      }
      auto *strings = reinterpret_cast<string_t *>(out.values.data());
      for (idx_t i = 0; i < count; i++) {
        uint32_t begin, finish;
        std::memcpy(&begin, offsets + 4 * i, 4);
        std::memcpy(&finish, offsets + 4 * (i + 1), 4);
        strings[i] = out.heap.Add(
            std::string_view(reinterpret_cast<const char *>(cursor) + begin,
                             finish - begin));
      }
      return Status::OK();
    }
  }
  return Status::IOError("unknown codec");
}

void CopyDecodedRows(const DecodedSegment &segment, idx_t offset, idx_t count,
                     Vector &out) {
  idx_t width = TypeWidth(segment.type);
  if (segment.type == LogicalTypeId::kVarchar) {
    const auto *strings =
        reinterpret_cast<const string_t *>(segment.values.data());
    for (idx_t i = 0; i < count; i++) {
      if (!segment.RowIsValid(offset + i)) {
        out.validity().SetInvalid(i);
        out.Values<string_t>()[i] = string_t();
        continue;
      }
      out.SetString(i, strings[offset + i].View());
    }
    return;
  }
  if (count == 0) {
    return;
  }
  std::memcpy(out.data(), segment.values.data() + offset * width,
              count * width);
  for (idx_t i = 0; i < count; i++) {
    if (!segment.RowIsValid(offset + i)) {
      out.validity().SetInvalid(i);
    }
  }
}

//===----------------------------------------------------------------------===//
// Spill frames
//===----------------------------------------------------------------------===//

namespace {

/// Checksum of a frame payload: the repo-wide hash, truncated to the 32 bits
/// stored in the header.
uint32_t FrameChecksum(const_data_ptr_t data, idx_t size) {
  return static_cast<uint32_t>(
      HashBytes(reinterpret_cast<const char *>(data), size));
}

// Byte-RLE token stream: control byte c, then
//   c < 128   : c + 1 literal bytes follow;
//   c >= 128  : the next byte repeats (c - 128 + 3) times (runs of 3..130).
constexpr idx_t kRleMaxRun = 130;
constexpr idx_t kRleMaxLiteral = 128;

void ByteRleEncode(const_data_ptr_t data, idx_t size,
                   std::vector<data_t> &out) {
  idx_t i = 0;
  idx_t literal_start = 0;
  auto flush_literals = [&](idx_t end) {
    while (literal_start < end) {
      idx_t n = std::min<idx_t>(end - literal_start, kRleMaxLiteral);
      out.push_back(static_cast<data_t>(n - 1));
      AppendBytes(out, data + literal_start, n);
      literal_start += n;
    }
  };
  while (i < size) {
    idx_t run = 1;
    while (i + run < size && run < kRleMaxRun && data[i + run] == data[i]) {
      run++;
    }
    if (run >= 3) {
      flush_literals(i);
      out.push_back(static_cast<data_t>(128 + run - 3));
      out.push_back(data[i]);
      i += run;
      literal_start = i;
    } else {
      i += run;
    }
  }
  flush_literals(size);
}

Status ByteRleDecode(const_data_ptr_t data, idx_t size, data_ptr_t out,
                     idx_t out_size) {
  idx_t in = 0;
  idx_t pos = 0;
  while (in < size) {
    data_t control = data[in++];
    if (control < 128) {
      idx_t n = static_cast<idx_t>(control) + 1;
      if (in + n > size || pos + n > out_size) {
        return Status::IOError("corrupt spill frame: RLE literal out of "
                               "bounds");
      }
      std::memcpy(out + pos, data + in, n);
      in += n;
      pos += n;
    } else {
      idx_t n = static_cast<idx_t>(control) - 128 + 3;
      if (in >= size || pos + n > out_size) {
        return Status::IOError("corrupt spill frame: RLE run out of bounds");
      }
      std::memset(out + pos, data[in++], n);
      pos += n;
    }
  }
  if (pos != out_size) {
    return Status::IOError("corrupt spill frame: RLE decoded short");
  }
  return Status::OK();
}

// Word-FoR: the payload is cut into blocks of up to 1024 little-endian
// 64-bit words; each block stores min (8 bytes), bit width (1 byte) and the
// bit-packed deltas. Only applicable when the raw size is word-aligned.
constexpr idx_t kForBlockWords = 1024;

void WordForEncode(const_data_ptr_t data, idx_t size,
                   std::vector<data_t> &out) {
  idx_t words = size / 8;
  std::vector<uint64_t> deltas;
  for (idx_t start = 0; start < words; start += kForBlockWords) {
    idx_t n = std::min(kForBlockWords, words - start);
    uint64_t min_value = ~uint64_t(0);
    uint64_t max_value = 0;
    for (idx_t i = 0; i < n; i++) {
      uint64_t v;
      std::memcpy(&v, data + (start + i) * 8, 8);
      min_value = std::min(min_value, v);
      max_value = std::max(max_value, v);
    }
    idx_t bits = BitsNeeded(max_value - min_value);
    AppendValue<uint64_t>(out, min_value);
    out.push_back(static_cast<data_t>(bits));
    if (bits >= 64) {
      AppendBytes(out, data + start * 8, n * 8);
      continue;
    }
    deltas.resize(n);
    for (idx_t i = 0; i < n; i++) {
      uint64_t v;
      std::memcpy(&v, data + (start + i) * 8, 8);
      deltas[i] = v - min_value;
    }
    PackBits(deltas, bits, out);
  }
}

Status WordForDecode(const_data_ptr_t data, idx_t size, data_ptr_t out,
                     idx_t out_size) {
  if (out_size % 8 != 0) {
    return Status::IOError("corrupt spill frame: FoR output not word sized");
  }
  idx_t words = out_size / 8;
  idx_t in = 0;
  for (idx_t start = 0; start < words; start += kForBlockWords) {
    idx_t n = std::min(kForBlockWords, words - start);
    if (in + 9 > size) {
      return Status::IOError("corrupt spill frame: FoR block header "
                             "truncated");
    }
    const_data_ptr_t cursor = data + in;
    uint64_t min_value = ReadValue<uint64_t>(cursor);
    idx_t bits = data[in + 8];
    in += 9;
    if (bits >= 64) {
      if (in + n * 8 > size) {
        return Status::IOError("corrupt spill frame: FoR raw block "
                               "truncated");
      }
      std::memcpy(out + start * 8, data + in, n * 8);
      in += n * 8;
      continue;
    }
    idx_t packed = (n * bits + 7) / 8;
    if (in + packed > size) {
      return Status::IOError("corrupt spill frame: FoR packed block "
                             "truncated");
    }
    for (idx_t i = 0; i < n; i++) {
      uint64_t v = min_value + UnpackBits(data + in, i, bits);
      std::memcpy(out + (start + i) * 8, &v, 8);
    }
    in += packed;
  }
  if (in != size) {
    return Status::IOError("corrupt spill frame: FoR trailing bytes");
  }
  return Status::OK();
}

// Greedy byte-oriented LZ77. Token stream: each sequence is
//   token byte: high nibble = literal count, low nibble = match length - 4
//               (15 in either nibble chains extra 255-capped length bytes),
//   literal bytes, then a 2-byte little-endian match offset (1..65535).
// The final sequence carries literals only (input ends after them). Spilled
// pages are rows at a fixed stride, so back-references at small multiples of
// the row width pick up the repeated key/aggregate structure that the
// value-oriented codecs above cannot see.
constexpr idx_t kLzMinMatch = 4;
constexpr idx_t kLzWindow = 65535;
constexpr idx_t kLzHashBits = 13;

uint32_t LzHash(const_data_ptr_t p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kLzHashBits);
}

void LzAppendLength(std::vector<data_t> &out, idx_t len) {
  while (len >= 255) {
    out.push_back(255);
    len -= 255;
  }
  out.push_back(static_cast<data_t>(len));
}

/// Encodes into `out`; gives up (returns false, out unspecified) as soon as
/// the encoding exceeds the raw size, so incompressible pages cost one pass.
bool LzEncode(const_data_ptr_t data, idx_t size, std::vector<data_t> &out) {
  if (size < kLzMinMatch + 1) {
    return false;
  }
  std::vector<uint32_t> table(idx_t(1) << kLzHashBits, 0);
  // Position 0 is the table's "empty" sentinel; start matching at 1.
  idx_t pos = 1;
  idx_t literal_start = 0;
  const idx_t match_limit = size - kLzMinMatch;
  auto emit = [&](idx_t match_len, idx_t offset) {
    idx_t literals = pos - literal_start;
    idx_t lit_nibble = std::min<idx_t>(literals, 15);
    idx_t match_nibble = std::min<idx_t>(match_len - kLzMinMatch, 15);
    out.push_back(static_cast<data_t>((lit_nibble << 4) | match_nibble));
    if (lit_nibble == 15) {
      LzAppendLength(out, literals - 15);
    }
    AppendBytes(out, data + literal_start, literals);
    AppendValue<uint16_t>(out, static_cast<uint16_t>(offset));
    if (match_nibble == 15) {
      LzAppendLength(out, match_len - kLzMinMatch - 15);
    }
  };
  while (pos <= match_limit) {
    uint32_t hash = LzHash(data + pos);
    idx_t candidate = table[hash];
    table[hash] = static_cast<uint32_t>(pos);
    if (candidate != 0 && pos - candidate <= kLzWindow &&
        std::memcmp(data + candidate, data + pos, kLzMinMatch) == 0) {
      idx_t len = kLzMinMatch;
      while (pos + len < size && data[candidate + len] == data[pos + len]) {
        len++;
      }
      emit(len, pos - candidate);
      pos += len;
      literal_start = pos;
      if (out.size() >= size) {
        return false;
      }
    } else {
      pos++;
    }
  }
  // Tail: the remaining bytes are literals of a match-less final sequence.
  idx_t literals = size - literal_start;
  idx_t lit_nibble = std::min<idx_t>(literals, 15);
  out.push_back(static_cast<data_t>(lit_nibble << 4));
  if (lit_nibble == 15) {
    LzAppendLength(out, literals - 15);
  }
  AppendBytes(out, data + literal_start, literals);
  return out.size() < size;
}

Status LzReadLength(const_data_ptr_t data, idx_t size, idx_t &in,
                    idx_t &len) {
  data_t byte;
  do {
    if (in >= size) {
      return Status::IOError("corrupt spill frame: LZ length truncated");
    }
    byte = data[in++];
    len += byte;
  } while (byte == 255);
  return Status::OK();
}

Status LzDecode(const_data_ptr_t data, idx_t size, data_ptr_t out,
                idx_t out_size) {
  idx_t in = 0;
  idx_t pos = 0;
  while (in < size) {
    data_t token = data[in++];
    idx_t literals = token >> 4;
    if (literals == 15) {
      SSAGG_RETURN_NOT_OK(LzReadLength(data, size, in, literals));
    }
    if (in + literals > size || pos + literals > out_size) {
      return Status::IOError("corrupt spill frame: LZ literals out of "
                             "bounds");
    }
    std::memcpy(out + pos, data + in, literals);
    in += literals;
    pos += literals;
    if (in == size) {
      break;  // final sequence: literals only
    }
    if (in + 2 > size) {
      return Status::IOError("corrupt spill frame: LZ offset truncated");
    }
    idx_t offset = static_cast<idx_t>(data[in]) |
                   (static_cast<idx_t>(data[in + 1]) << 8);
    in += 2;
    idx_t match_len = (token & 0xF);
    if (match_len == 15) {
      SSAGG_RETURN_NOT_OK(LzReadLength(data, size, in, match_len));
    }
    match_len += kLzMinMatch;
    if (offset == 0 || offset > pos || pos + match_len > out_size) {
      return Status::IOError("corrupt spill frame: LZ match out of bounds");
    }
    // Byte-wise copy: matches may overlap their own output (offset < len).
    for (idx_t i = 0; i < match_len; i++) {
      out[pos + i] = out[pos + i - offset];
    }
    pos += match_len;
  }
  if (pos != out_size) {
    return Status::IOError("corrupt spill frame: LZ decoded short");
  }
  return Status::OK();
}

void WriteFrameHeader(std::vector<data_t> &out, SpillCodec codec,
                      idx_t raw_len, idx_t comp_len, uint32_t checksum) {
  AppendValue<uint32_t>(out, SpillFrameHeader::kMagic);
  out.push_back(static_cast<data_t>(codec));
  out.push_back(0);  // flags
  AppendValue<uint16_t>(out, 0);
  AppendValue<uint32_t>(out, static_cast<uint32_t>(raw_len));
  AppendValue<uint32_t>(out, static_cast<uint32_t>(comp_len));
  AppendValue<uint32_t>(out, checksum);
}

}  // namespace

void CompressSpillFrame(const_data_ptr_t data, idx_t size,
                        std::vector<data_t> &out) {
  out.clear();
  SpillCodec codec = SpillCodec::kRaw;
  const data_t *payload = data;
  idx_t payload_size = size;
  std::vector<data_t> lz;
  if (LzEncode(data, size, lz)) {
    codec = SpillCodec::kLz;
    payload = lz.data();
    payload_size = lz.size();
  }
  // The value-oriented codecs cost full extra passes; only consult them when
  // LZ left real room on the table (they win on numeric pages whose values
  // vary in the low bits, which defeats byte-oriented matching).
  std::vector<data_t> rle;
  std::vector<data_t> word_for;
  if (payload_size * 4 > size * 3) {
    ByteRleEncode(data, size, rle);
    if (!rle.empty() && rle.size() < payload_size) {
      codec = SpillCodec::kByteRle;
      payload = rle.data();
      payload_size = rle.size();
    }
    if (size % 8 == 0 && size > 0) {
      WordForEncode(data, size, word_for);
      if (!word_for.empty() && word_for.size() < payload_size) {
        codec = SpillCodec::kWordFor;
        payload = word_for.data();
        payload_size = word_for.size();
      }
    }
  }
  out.reserve(SpillFrameHeader::kSize + payload_size);
  WriteFrameHeader(out, codec, size, payload_size,
                   FrameChecksum(payload, payload_size));
  AppendBytes(out, payload, payload_size);
}

Status PeekSpillFrame(const_data_ptr_t data, idx_t size,
                      SpillFrameHeader &header) {
  if (size < SpillFrameHeader::kSize) {
    return Status::IOError("corrupt spill frame: header truncated");
  }
  const_data_ptr_t cursor = data;
  if (ReadValue<uint32_t>(cursor) != SpillFrameHeader::kMagic) {
    return Status::IOError("corrupt spill frame: bad magic");
  }
  uint8_t codec = *cursor++;
  cursor++;                      // flags
  ReadValue<uint16_t>(cursor);   // reserved
  if (codec > static_cast<uint8_t>(SpillCodec::kLz)) {
    return Status::IOError("corrupt spill frame: unknown codec id " +
                           std::to_string(codec));
  }
  header.codec = static_cast<SpillCodec>(codec);
  header.raw_len = ReadValue<uint32_t>(cursor);
  header.comp_len = ReadValue<uint32_t>(cursor);
  header.checksum = ReadValue<uint32_t>(cursor);
  if (SpillFrameHeader::kSize + header.comp_len > size) {
    return Status::IOError("corrupt spill frame: payload truncated");
  }
  return Status::OK();
}

Status DecompressSpillFrame(const_data_ptr_t data, idx_t size, data_ptr_t out,
                            idx_t out_size) {
  SpillFrameHeader header;
  SSAGG_RETURN_NOT_OK(PeekSpillFrame(data, size, header));
  if (header.raw_len != out_size) {
    return Status::IOError("corrupt spill frame: raw length " +
                           std::to_string(header.raw_len) +
                           " does not match expected " +
                           std::to_string(out_size));
  }
  const_data_ptr_t payload = data + SpillFrameHeader::kSize;
  if (FrameChecksum(payload, header.comp_len) != header.checksum) {
    return Status::IOError("corrupt spill frame: checksum mismatch");
  }
  switch (header.codec) {
    case SpillCodec::kRaw:
      if (header.comp_len != out_size) {
        return Status::IOError("corrupt spill frame: raw payload length "
                               "mismatch");
      }
      std::memcpy(out, payload, out_size);
      return Status::OK();
    case SpillCodec::kByteRle:
      return ByteRleDecode(payload, header.comp_len, out, out_size);
    case SpillCodec::kWordFor:
      return WordForDecode(payload, header.comp_len, out, out_size);
    case SpillCodec::kLz:
      return LzDecode(payload, header.comp_len, out, out_size);
  }
  return Status::IOError("corrupt spill frame: unknown codec");
}

}  // namespace ssagg
