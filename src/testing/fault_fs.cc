#include "testing/fault_fs.h"

#include <utility>

namespace ssagg {

namespace {

/// Wraps a real handle; consults the injector before every operation.
class FaultInjectingFileHandle : public FileHandle {
 public:
  FaultInjectingFileHandle(std::unique_ptr<FileHandle> inner,
                           FaultInjector &injector)
      : FileHandle(inner->path()),
        inner_(std::move(inner)),
        injector_(injector) {}

  Status Read(void *buffer, idx_t bytes, idx_t offset) override {
    SSAGG_RETURN_NOT_OK(injector_.Hit(FaultSite::kRead));
    return inner_->Read(buffer, bytes, offset);
  }

  Status Write(const void *buffer, idx_t bytes, idx_t offset) override {
    Status fault = injector_.Hit(FaultSite::kWrite);
    if (!fault.ok()) {
      if (injector_.config().short_write && bytes > 1) {
        // Model ENOSPC mid-write: half the payload lands before the error.
        // Callers must treat the write as failed and never trust the
        // partial contents.
        (void)inner_->Write(buffer, bytes / 2, offset);
      }
      return fault;
    }
    return inner_->Write(buffer, bytes, offset);
  }

  Status Sync() override {
    SSAGG_RETURN_NOT_OK(injector_.Hit(FaultSite::kSync));
    return inner_->Sync();
  }

  Status Truncate(idx_t size) override {
    SSAGG_RETURN_NOT_OK(injector_.Hit(FaultSite::kTruncate));
    return inner_->Truncate(size);
  }

  Result<idx_t> FileSize() override { return inner_->FileSize(); }

 private:
  std::unique_ptr<FileHandle> inner_;
  FaultInjector &injector_;
};

}  // namespace

Result<std::unique_ptr<FileHandle>> FaultInjectingFileSystem::Open(
    const std::string &path, FileOpenFlags flags) {
  SSAGG_RETURN_NOT_OK(injector_.Hit(FaultSite::kOpen));
  SSAGG_ASSIGN_OR_RETURN(auto inner, inner_.Open(path, flags));
  return std::unique_ptr<FileHandle>(
      new FaultInjectingFileHandle(std::move(inner), injector_));
}

Status FaultInjectingFileSystem::RemoveFile(const std::string &path) {
  SSAGG_RETURN_NOT_OK(injector_.Hit(FaultSite::kRemove));
  return inner_.RemoveFile(path);
}

}  // namespace ssagg
