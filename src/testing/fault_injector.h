#ifndef SSAGG_TESTING_FAULT_INJECTOR_H_
#define SSAGG_TESTING_FAULT_INJECTOR_H_

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"

namespace ssagg {

/// Where a fault can be injected. I/O sites are hit by the
/// FaultInjectingFileSystem decorator (fault_fs.h); memory sites are hit by
/// the BufferManager when a FaultInjector is installed on it.
enum class FaultSite : uint8_t {
  kOpen = 0,
  kRead,
  kWrite,
  kSync,
  kTruncate,
  kRemove,
  kAllocate,  // BufferManager memory reservation (Allocate / non-paged /
              // external / the reservation half of a reloading Pin)
  kPin,       // BufferManager::Pin entry
  // Async spill I/O sites, hit by the AsyncIoBackend implementations
  // (common/async_io.h) when an injector is installed on them:
  kAsyncSubmit,    // AsyncIoBackend::Submit entry (fails before any I/O)
  kAsyncComplete,  // completion of a submitted request (fails a successful
                   // I/O after the fact, on the completing thread)
  kAsyncCoalesce,  // TemporaryFileManager merging adjacent slots into one
                   // coalesced write (fails the merged submission)
  kSiteCount,
};

const char *FaultSiteName(FaultSite site);

constexpr uint32_t FaultSiteBit(FaultSite site) {
  return 1u << static_cast<uint32_t>(site);
}

/// Every file-system operation except removal: removal must keep working so
/// that cleanup paths can run after an injected failure.
constexpr uint32_t kFaultIoSites =
    FaultSiteBit(FaultSite::kOpen) | FaultSiteBit(FaultSite::kRead) |
    FaultSiteBit(FaultSite::kWrite) | FaultSiteBit(FaultSite::kSync) |
    FaultSiteBit(FaultSite::kTruncate);

constexpr uint32_t kFaultMemorySites =
    FaultSiteBit(FaultSite::kAllocate) | FaultSiteBit(FaultSite::kPin);

/// The asynchronous spill-I/O pipeline (submit, completion, coalesced
/// writes). Separate from kFaultIoSites so sweeps can target just the async
/// machinery without also failing the underlying pread/pwrite.
constexpr uint32_t kFaultAsyncSites = FaultSiteBit(FaultSite::kAsyncSubmit) |
                                      FaultSiteBit(FaultSite::kAsyncComplete) |
                                      FaultSiteBit(FaultSite::kAsyncCoalesce);

constexpr uint32_t kFaultAllSites = kFaultIoSites | kFaultMemorySites |
                                    kFaultAsyncSites |
                                    FaultSiteBit(FaultSite::kRemove);

/// Deterministic fault injector. One injector is shared between a
/// FaultInjectingFileSystem and a BufferManager so that "fail the k-th
/// operation" counts one global sequence across layers. Thread-safe: the
/// k-th operation is well defined even under concurrent workers (which
/// operation *is* k-th then depends on scheduling; single-threaded sweeps
/// are fully reproducible).
///
/// Two triggers, combinable:
///   - fail_at: the k-th (1-based) operation whose site is armed fails;
///   - probability: every armed operation fails with probability p, drawn
///     from a seeded RandomEngine (common/random.h) so a given seed always
///     produces the same fault schedule on the same operation sequence.
class FaultInjector {
 public:
  struct Config {
    uint64_t seed = 0x55A66;
    /// 1-based index of the armed operation to fail; 0 disables.
    idx_t fail_at = 0;
    /// Per-operation failure probability for armed sites.
    double probability = 0.0;
    /// Which sites are armed (counted and failable).
    uint32_t site_mask = kFaultIoSites;
    /// Injected write faults first perform a partial (half-length) write,
    /// modelling ENOSPC hit mid-write. Honoured by FaultInjectingFileSystem.
    bool short_write = false;
    /// Inject at most one fault, then let everything succeed: the standard
    /// sweep mode, so cleanup and unwinding paths run against a healthy
    /// system after the single failure.
    bool one_shot = true;
  };

  FaultInjector() : FaultInjector(Config{}) {}
  explicit FaultInjector(Config config) : config_(config), rng_(config.seed) {}

  /// Rearms with a new config and zeroes all counters.
  void Reset(const Config &config);

  /// Records one operation at `site` and decides its fate: OK, or the error
  /// the caller must return (kOutOfMemory for memory sites, kIOError for
  /// I/O sites). Never aborts.
  Status Hit(FaultSite site);

  /// Armed operations seen so far (the sequence fail_at indexes into).
  [[nodiscard]] idx_t ops_seen() const;
  /// Operations seen at one site, armed or not.
  [[nodiscard]] idx_t ops_seen(FaultSite site) const;
  [[nodiscard]] idx_t faults_injected() const;
  /// A copy: the live config may be swapped by a concurrent Reset().
  [[nodiscard]] Config config() const;

 private:
  mutable Mutex lock_;
  Config config_ SSAGG_GUARDED_BY(lock_);
  RandomEngine rng_ SSAGG_GUARDED_BY(lock_);
  idx_t armed_ops_ SSAGG_GUARDED_BY(lock_) = 0;
  idx_t site_ops_[static_cast<idx_t>(FaultSite::kSiteCount)] SSAGG_GUARDED_BY(
      lock_) = {};
  idx_t faults_ SSAGG_GUARDED_BY(lock_) = 0;
};

}  // namespace ssagg

#endif  // SSAGG_TESTING_FAULT_INJECTOR_H_
