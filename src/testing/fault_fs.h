#ifndef SSAGG_TESTING_FAULT_FS_H_
#define SSAGG_TESTING_FAULT_FS_H_

#include <memory>
#include <string>

#include "common/file_system.h"
#include "testing/fault_injector.h"

namespace ssagg {

/// FileSystem decorator that injects deterministic faults (failed opens,
/// read errors, ENOSPC-style full and short writes, sync/truncate failures)
/// according to a shared FaultInjector. Handles returned by Open are wrapped
/// so every subsequent I/O on them is also subject to injection.
///
/// Used by the fault-injection and spill-stress suites to prove that every
/// failure on the spill path surfaces as a clean Status with no leaked pins,
/// temp-file slots, or memory charges.
class FaultInjectingFileSystem : public FileSystem {
 public:
  FaultInjectingFileSystem(FileSystem &inner, FaultInjector &injector)
      : inner_(inner), injector_(injector) {}

  Result<std::unique_ptr<FileHandle>> Open(const std::string &path,
                                           FileOpenFlags flags) override;
  Status RemoveFile(const std::string &path) override;
  bool FileExists(const std::string &path) override {
    return inner_.FileExists(path);
  }
  /// Directory creation is not a faultable site: it happens once per
  /// manager, outside the per-operation I/O sequence the sweeps index.
  Status CreateDirectories(const std::string &path) override {
    return inner_.CreateDirectories(path);
  }
  Result<idx_t> GetFileSize(const std::string &path) override {
    return inner_.GetFileSize(path);
  }

  FaultInjector &injector() { return injector_; }

 private:
  FileSystem &inner_;
  FaultInjector &injector_;
};

}  // namespace ssagg

#endif  // SSAGG_TESTING_FAULT_FS_H_
