#include "testing/fault_injector.h"

#include <string>

#include "observe/flight_recorder.h"

namespace ssagg {

const char *FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kOpen:
      return "open";
    case FaultSite::kRead:
      return "read";
    case FaultSite::kWrite:
      return "write";
    case FaultSite::kSync:
      return "sync";
    case FaultSite::kTruncate:
      return "truncate";
    case FaultSite::kRemove:
      return "remove";
    case FaultSite::kAllocate:
      return "allocate";
    case FaultSite::kPin:
      return "pin";
    case FaultSite::kAsyncSubmit:
      return "async_submit";
    case FaultSite::kAsyncComplete:
      return "async_complete";
    case FaultSite::kAsyncCoalesce:
      return "async_coalesce";
    case FaultSite::kSiteCount:
      break;
  }
  return "unknown";
}

void FaultInjector::Reset(const Config &config) {
  ScopedLock guard(lock_);
  config_ = config;
  rng_ = RandomEngine(config.seed);
  armed_ops_ = 0;
  faults_ = 0;
  for (auto &count : site_ops_) {
    count = 0;
  }
}

Status FaultInjector::Hit(FaultSite site) {
  Status status;
  {
    ScopedLock guard(lock_);
    site_ops_[static_cast<idx_t>(site)]++;
    if ((config_.site_mask & FaultSiteBit(site)) == 0) {
      return Status::OK();
    }
    idx_t op = ++armed_ops_;
    bool fail = false;
    if (config_.fail_at != 0 && op == config_.fail_at) {
      fail = true;
    }
    // Always draw so the schedule depends only on the operation sequence,
    // not on whether an earlier trigger already fired.
    bool coin = config_.probability > 0.0 &&
                rng_.NextDouble() < config_.probability;
    fail = fail || coin;
    if (!fail || (config_.one_shot && faults_ > 0)) {
      return Status::OK();
    }
    faults_++;
    std::string msg = std::string("injected ") + FaultSiteName(site) +
                      " fault at operation #" + std::to_string(op);
    if (site == FaultSite::kAllocate || site == FaultSite::kPin) {
      status = Status::OutOfMemory(std::move(msg));
    } else {
      status = Status::IOError(std::move(msg));
    }
  }
  // Outside the lock: the dump walks every thread's flight ring and must
  // not serialize (or deadlock against) concurrent Hit callers.
  (void)FlightRecorder::Global().DumpAnomaly("fault");
  return status;
}

idx_t FaultInjector::ops_seen() const {
  ScopedLock guard(lock_);
  return armed_ops_;
}

idx_t FaultInjector::ops_seen(FaultSite site) const {
  ScopedLock guard(lock_);
  return site_ops_[static_cast<idx_t>(site)];
}

idx_t FaultInjector::faults_injected() const {
  ScopedLock guard(lock_);
  return faults_;
}

FaultInjector::Config FaultInjector::config() const {
  ScopedLock guard(lock_);
  return config_;
}

}  // namespace ssagg
