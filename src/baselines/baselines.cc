#include "baselines/baselines.h"

#include <chrono>
#include <cstring>

#include "sort/row_serializer.h"

namespace ssagg {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool IsMemoryFailure(const Status &status) {
  return status.IsOutOfMemory() || status.IsAborted();
}

}  // namespace

//===----------------------------------------------------------------------===//
// Umbra-model: in-memory only
//===----------------------------------------------------------------------===//

Status RunInMemoryAggregation(BufferManager &buffer_manager,
                              DataSource &source,
                              const std::vector<idx_t> &group_columns,
                              const std::vector<AggregateRequest> &aggregates,
                              DataSink &output, TaskExecutor &executor,
                              HashAggregateConfig config,
                              BaselineOutcome *outcome) {
  auto start = std::chrono::steady_clock::now();
  bool restore = buffer_manager.spill_temporary();
  buffer_manager.SetSpillTemporary(false);
  auto result = RunGroupedAggregation(buffer_manager, source, group_columns,
                                      aggregates, output, executor, config);
  buffer_manager.SetSpillTemporary(restore);
  if (outcome) {
    outcome->seconds = SecondsSince(start);
    outcome->completed = result.ok();
    outcome->aborted = !result.ok() && IsMemoryFailure(result.status());
  }
  if (!result.ok() && result.status().IsOutOfMemory()) {
    return Status::Aborted("in-memory aggregation exceeded the memory "
                           "limit: " + result.status().message());
  }
  return result.ok() ? Status::OK() : result.status();
}

//===----------------------------------------------------------------------===//
// HyPer-model: switch to external sort aggregation
//===----------------------------------------------------------------------===//

Status RunSwitchExternalAggregation(
    BufferManager &buffer_manager, DataSource &source,
    const std::vector<idx_t> &group_columns,
    const std::vector<AggregateRequest> &aggregates, DataSink &output,
    TaskExecutor &executor, const SwitchExternalConfig &config,
    BaselineOutcome *outcome) {
  auto start = std::chrono::steady_clock::now();
  BaselineOutcome in_memory_outcome;
  Status in_memory = RunInMemoryAggregation(
      buffer_manager, source, group_columns, aggregates, output, executor,
      config.in_memory, &in_memory_outcome);
  if (in_memory.ok() || !IsMemoryFailure(in_memory)) {
    if (outcome) {
      *outcome = in_memory_outcome;
      outcome->seconds = SecondsSince(start);
    }
    return in_memory;
  }
  // Out of memory: restart the whole query with the traditional disk-based
  // algorithm (this restart + algorithm switch is the performance cliff).
  SSAGG_RETURN_NOT_OK(output.Reset());
  SSAGG_RETURN_NOT_OK(source.Rewind());
  SSAGG_ASSIGN_OR_RETURN(
      auto sort_agg,
      ExternalSortAggregate::Create(buffer_manager, source.Types(),
                                    group_columns, aggregates, config.sort));
  Status status = executor.RunPipeline(source, *sort_agg);
  if (status.ok()) {
    status = sort_agg->EmitResults(output, executor);
  }
  if (outcome) {
    outcome->seconds = SecondsSince(start);
    outcome->completed = status.ok();
    outcome->aborted = !status.ok() && IsMemoryFailure(status);
    outcome->switched_to_external = true;
  }
  return status;
}

//===----------------------------------------------------------------------===//
// ClickHouse-model: two-level hash table with partition spilling
//===----------------------------------------------------------------------===//

struct TwoLevelSpillAggregate::LocalState : public LocalSinkState {
  std::unique_ptr<GroupedAggregateHashTable> ht;
};

Result<std::unique_ptr<TwoLevelSpillAggregate>> TwoLevelSpillAggregate::Create(
    BufferManager &buffer_manager, std::vector<LogicalTypeId> input_types,
    std::vector<idx_t> group_columns, std::vector<AggregateRequest> aggregates,
    Config config) {
  SSAGG_ASSIGN_OR_RETURN(
      auto row_layout,
      AggregateRowLayout::Build(input_types, group_columns, aggregates));
  std::unique_ptr<TwoLevelSpillAggregate> op(new TwoLevelSpillAggregate(
      buffer_manager, std::move(row_layout), config));
  {
    // The operator is not published yet; the lock is uncontended and taken
    // only to satisfy the capability analysis.
    ScopedLock guard(op->lock_);
    op->partition_runs_.resize(idx_t(1) << config.radix_bits);
  }
  SSAGG_RETURN_NOT_OK(
      buffer_manager.fs().CreateDirectories(config.temp_directory));
  return op;
}

TwoLevelSpillAggregate::~TwoLevelSpillAggregate() { RemoveRunFiles(); }

void TwoLevelSpillAggregate::RemoveRunFiles() {
  ScopedLock guard(lock_);
  for (auto &runs : partition_runs_) {
    for (const auto &run : runs) {
      (void)buffer_manager_.fs().RemoveFile(run.path);
    }
    runs.clear();
  }
}

Result<std::unique_ptr<LocalSinkState>> TwoLevelSpillAggregate::InitLocal() {
  auto state = std::make_unique<LocalState>();
  GroupedAggregateHashTable::Config ht_config;
  ht_config.capacity = config_.phase1_capacity;
  ht_config.radix_bits = config_.radix_bits;
  ht_config.resizable = true;  // ClickHouse grows its table, never resets
  SSAGG_ASSIGN_OR_RETURN(
      state->ht, GroupedAggregateHashTable::Create(buffer_manager_,
                                                   row_layout_, ht_config));
  return std::unique_ptr<LocalSinkState>(std::move(state));
}

Status TwoLevelSpillAggregate::SpillLocal(LocalState &local) {
  spilled_.store(true, std::memory_order_relaxed);
  auto &data = local.ht->data();
  for (idx_t p = 0; p < data.PartitionCount(); p++) {
    if (data.partition(p).Count() == 0) {
      continue;
    }
    idx_t run_id = next_run_id_.fetch_add(1);
    std::string path = config_.temp_directory + "/ssagg_chm_run_" +
                       run_token_ + "_" + std::to_string(run_id) + ".tmp";
    RunWriter writer(row_layout_.layout, path, buffer_manager_.fs());
    // Serialize every row of the partition (states included).
    Status write_status = writer.Open();
    if (write_status.ok()) {
      SSAGG_RETURN_NOT_OK(data.ForEachRowInPartition(p, [&](data_ptr_t row) {
        if (write_status.ok()) {
          write_status = writer.WriteRow(row);
        }
      }));
    }
    if (write_status.ok()) {
      write_status = writer.Finish();
    }
    if (!write_status.ok()) {
      // The run was never registered; remove its partial file.
      (void)buffer_manager_.fs().RemoveFile(path);
      return write_status;
    }
    spilled_bytes_.fetch_add(writer.BytesWritten());
    ScopedLock guard(lock_);
    partition_runs_[p].push_back(RunInfo{path, writer.RowCount()});
  }
  local.ht->ClearPointerTable();
  data.Reset();
  return Status::OK();
}

Status TwoLevelSpillAggregate::Sink(DataChunk &chunk, LocalSinkState &state) {
  auto &local = static_cast<LocalState &>(state);
  SSAGG_RETURN_NOT_OK(local.ht->AddChunk(chunk));
  idx_t threshold = static_cast<idx_t>(buffer_manager_.memory_limit() *
                                       config_.spill_threshold_ratio);
  if (buffer_manager_.memory_used() > threshold) {
    SSAGG_RETURN_NOT_OK(SpillLocal(local));
  }
  return Status::OK();
}

Status TwoLevelSpillAggregate::Combine(LocalSinkState &state) {
  auto &local = static_cast<LocalState &>(state);
  local.ht->ClearPointerTable();
  ScopedLock guard(lock_);
  if (!global_data_) {
    global_data_ = std::make_unique<PartitionedTupleData>(
        buffer_manager_, row_layout_.layout, config_.radix_bits);
  }
  global_data_->Combine(local.ht->data());
  local.ht.reset();
  return Status::OK();
}

Status TwoLevelSpillAggregate::AggregatePartition(PartitionedTupleData &data,
                                                  idx_t partition_idx,
                                                  DataSink &output,
                                                  TaskExecutor &executor) {
  std::vector<RunInfo> runs;
  {
    ScopedLock guard(lock_);
    runs = partition_runs_[partition_idx];
  }
  TupleDataCollection &in_memory = data.partition(partition_idx);
  if (runs.empty() && in_memory.Count() == 0) {
    return Status::OK();
  }
  GroupedAggregateHashTable::Config ht_config;
  ht_config.capacity = config_.phase2_initial_capacity;
  ht_config.radix_bits = 0;
  ht_config.resizable = true;
  SSAGG_ASSIGN_OR_RETURN(
      auto ht, GroupedAggregateHashTable::Create(buffer_manager_, row_layout_,
                                                 ht_config));

  DataChunk layout_chunk(row_layout_.layout.Types());
  std::vector<data_ptr_t> src_rows;
  src_rows.reserve(kVectorSize);

  // Merge the in-memory remainder.
  {
    std::vector<data_ptr_t> ptrs(kVectorSize);
    TupleDataScanState scan;
    in_memory.InitScan(scan, /*destroy_after_scan=*/true);
    while (true) {
      SSAGG_ASSIGN_OR_RETURN(bool more,
                             in_memory.Scan(scan, layout_chunk, ptrs.data()));
      if (!more) {
        break;
      }
      SSAGG_RETURN_NOT_OK(executor.CheckDeadline());
      SSAGG_RETURN_NOT_OK(ht->CombineSourceChunk(layout_chunk, ptrs.data()));
    }
  }
  // Merge the spilled runs: every row pays a deserialize.
  for (const auto &run : runs) {
    RunReader reader(row_layout_.layout, run.path, run.rows,
                     buffer_manager_.fs());
    SSAGG_RETURN_NOT_OK(reader.Open());
    while (true) {
      src_rows.clear();
      SSAGG_ASSIGN_OR_RETURN(idx_t n,
                             reader.ReadBatch(kVectorSize, src_rows));
      if (n == 0) {
        break;
      }
      SSAGG_RETURN_NOT_OK(executor.CheckDeadline());
      reader.GatherBatch(src_rows, layout_chunk);
      SSAGG_RETURN_NOT_OK(
          ht->CombineSourceChunk(layout_chunk, src_rows.data()));
    }
    SSAGG_RETURN_NOT_OK(reader.Remove());
  }
  {
    ScopedLock guard(lock_);
    partition_runs_[partition_idx].clear();
  }

  ht->ClearPointerTable();
  SSAGG_ASSIGN_OR_RETURN(auto out_local, output.InitLocal());
  DataChunk out(OutputTypes());
  TupleDataCollection &result = ht->data().partition(0);
  TupleDataScanState result_scan;
  result.InitScan(result_scan, /*destroy_after_scan=*/true);
  std::vector<data_ptr_t> ptrs(kVectorSize);
  while (true) {
    SSAGG_ASSIGN_OR_RETURN(bool more,
                           result.Scan(result_scan, layout_chunk, ptrs.data()));
    if (!more) {
      break;
    }
    ht->FinalizeChunk(layout_chunk, ptrs.data(), out);
    SSAGG_RETURN_NOT_OK(output.Sink(out, *out_local));
  }
  return output.Combine(*out_local);
}

Status TwoLevelSpillAggregate::EmitResults(DataSink &output,
                                           TaskExecutor &executor) {
  // Resolve the merged partition set once under the lock; the partition
  // tasks then work on disjoint partitions of it.
  PartitionedTupleData *data;
  {
    ScopedLock guard(lock_);
    data = global_data_.get();
  }
  if (data == nullptr) {
    return Status::OK();
  }
  std::vector<std::function<Status()>> tasks;
  for (idx_t p = 0; p < data->PartitionCount(); p++) {
    tasks.push_back([this, data, p, &output, &executor]() {
      return AggregatePartition(*data, p, output, executor);
    });
  }
  return executor.RunTasks(tasks);
}

Status RunSpillPartitionAggregation(
    BufferManager &buffer_manager, DataSource &source,
    const std::vector<idx_t> &group_columns,
    const std::vector<AggregateRequest> &aggregates, DataSink &output,
    TaskExecutor &executor, TwoLevelSpillAggregate::Config config,
    BaselineOutcome *outcome) {
  auto start = std::chrono::steady_clock::now();
  bool restore = buffer_manager.spill_temporary();
  // The model manages its own spilling; the pool must not page it out.
  buffer_manager.SetSpillTemporary(false);
  Status status;
  std::unique_ptr<TwoLevelSpillAggregate> agg;
  {
    auto res = TwoLevelSpillAggregate::Create(buffer_manager, source.Types(),
                                              group_columns, aggregates,
                                              config);
    if (res.ok()) {
      agg = res.MoveValue();
    } else {
      status = res.status();
    }
  }
  if (status.ok()) {
    status = executor.RunPipeline(source, *agg);
  }
  if (status.ok()) {
    status = agg->EmitResults(output, executor);
  }
  buffer_manager.SetSpillTemporary(restore);
  if (outcome) {
    outcome->seconds = SecondsSince(start);
    outcome->completed = status.ok();
    outcome->aborted = !status.ok() && (status.IsOutOfMemory() ||
                                        status.IsAborted());
    outcome->spilled_partitions = agg && agg->Spilled();
  }
  if (!status.ok() && status.IsOutOfMemory()) {
    return Status::Aborted("partition merge exceeded the memory limit: " +
                           status.message());
  }
  return status;
}

}  // namespace ssagg
