#ifndef SSAGG_BASELINES_BASELINES_H_
#define SSAGG_BASELINES_BASELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/mutex.h"
#include "core/run_aggregation.h"
#include "execution/operator.h"
#include "execution/task_executor.h"
#include "sort/external_sort_aggregate.h"

namespace ssagg {

/// How a baseline query ended.
struct BaselineOutcome {
  bool completed = false;
  bool aborted = false;            // ran out of memory, gave up
  bool switched_to_external = false;  // HyPer-model took the sort path
  bool spilled_partitions = false;    // ClickHouse-model dumped partitions
  double seconds = 0;
};

/// Umbra-model: our exact engine, but temporary pages may not be offloaded
/// to storage — when intermediates no longer fit, the query aborts (the
/// paper observed Umbra aborting all wide groupings at SF >= 32).
/// Persistent pages still evict for free, mirroring a disk-based system
/// with in-memory-only intermediates.
Status RunInMemoryAggregation(BufferManager &buffer_manager,
                              DataSource &source,
                              const std::vector<idx_t> &group_columns,
                              const std::vector<AggregateRequest> &aggregates,
                              DataSink &output, TaskExecutor &executor,
                              HashAggregateConfig config,
                              BaselineOutcome *outcome);

struct SwitchExternalConfig {
  HashAggregateConfig in_memory;
  ExternalSortAggregate::Config sort;
};

/// HyPer-model: run the fast in-memory aggregation; if it runs out of
/// memory, restart the query with external sort-merge aggregation. The
/// switch reproduces the paper's performance cliff: the external algorithm
/// serializes every input row and is O(n log n).
Status RunSwitchExternalAggregation(
    BufferManager &buffer_manager, DataSource &source,
    const std::vector<idx_t> &group_columns,
    const std::vector<AggregateRequest> &aggregates, DataSink &output,
    TaskExecutor &executor, const SwitchExternalConfig &config,
    BaselineOutcome *outcome);

/// ClickHouse-model: two-level (radix-partitioned) hash aggregation that,
/// under memory pressure, serializes entire partitions to temporary files
/// and re-aggregates them partition-wise at the end. Scales further than
/// the in-memory-only model, but each spilled row pays (de)serialization,
/// and the merge aborts if a partition's groups do not fit in memory (the
/// paper observed ClickHouse aborting the largest SF-128 groupings).
class TwoLevelSpillAggregate : public DataSink {
 public:
  struct Config {
    idx_t phase1_capacity = 1ULL << 14;
    idx_t radix_bits = 4;
    idx_t phase2_initial_capacity = 1024;
    /// Spill all thread-local partitions once the pool is this full.
    double spill_threshold_ratio = 0.8;
    std::string temp_directory = ".";
  };

  static Result<std::unique_ptr<TwoLevelSpillAggregate>> Create(
      BufferManager &buffer_manager, std::vector<LogicalTypeId> input_types,
      std::vector<idx_t> group_columns,
      std::vector<AggregateRequest> aggregates, Config config);

  /// Removes run files the merge phase did not get to consume.
  ~TwoLevelSpillAggregate() override;

  std::vector<LogicalTypeId> OutputTypes() const {
    return row_layout_.OutputTypes();
  }

  Result<std::unique_ptr<LocalSinkState>> InitLocal() override;
  Status Sink(DataChunk &chunk, LocalSinkState &state) override;
  Status Combine(LocalSinkState &state) override;

  Status EmitResults(DataSink &output, TaskExecutor &executor);

  [[nodiscard]] bool Spilled() const { return spilled_.load(std::memory_order_relaxed); }
  [[nodiscard]] idx_t SpilledBytes() const { return spilled_bytes_.load(); }

 private:
  struct LocalState;
  struct RunInfo {
    std::string path;
    idx_t rows;
  };

  TwoLevelSpillAggregate(BufferManager &buffer_manager,
                         AggregateRowLayout row_layout, Config config)
      : buffer_manager_(buffer_manager),
        row_layout_(std::move(row_layout)),
        config_(config) {}

  /// Serializes every partition of the local hash table to run files and
  /// clears it.
  Status SpillLocal(LocalState &local);
  /// `data` is the merged global partition set, resolved under the lock by
  /// EmitResults; each task owns its partition exclusively.
  Status AggregatePartition(PartitionedTupleData &data, idx_t partition_idx,
                            DataSink &output, TaskExecutor &executor);

  /// Deletes every registered run file and forgets it.
  void RemoveRunFiles();

  BufferManager &buffer_manager_;
  AggregateRowLayout row_layout_;
  Config config_;

  Mutex lock_;
  std::unique_ptr<PartitionedTupleData> global_data_ SSAGG_GUARDED_BY(lock_);
  std::vector<std::vector<RunInfo>> partition_runs_ SSAGG_GUARDED_BY(lock_);
  std::atomic<idx_t> next_run_id_{0};
  /// Embedded in run-file names: temp directories are shared across
  /// operator instances and concurrent processes.
  const std::string run_token_ = ProcessUniqueToken();
  std::atomic<bool> spilled_{false};
  std::atomic<idx_t> spilled_bytes_{0};
};

/// Runs the ClickHouse-model end to end (in-memory-only pool, explicit
/// partition spilling).
Status RunSpillPartitionAggregation(
    BufferManager &buffer_manager, DataSource &source,
    const std::vector<idx_t> &group_columns,
    const std::vector<AggregateRequest> &aggregates, DataSink &output,
    TaskExecutor &executor, TwoLevelSpillAggregate::Config config,
    BaselineOutcome *outcome);

}  // namespace ssagg

#endif  // SSAGG_BASELINES_BASELINES_H_
