#ifndef SSAGG_SORT_EXTERNAL_SORT_AGGREGATE_H_
#define SSAGG_SORT_EXTERNAL_SORT_AGGREGATE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/mutex.h"
#include "core/aggregate_row_layout.h"
#include "execution/operator.h"
#include "execution/task_executor.h"
#include "sort/row_serializer.h"

namespace ssagg {

/// The "traditional disk-based algorithm" the paper's related work
/// discusses (Section II): external sort-merge aggregation with O(n log n)
/// complexity and explicit temporary-file I/O.
///
///   1. Every input row is materialized (no pre-aggregation). When a
///      thread's run arena exceeds its memory budget, the run is sorted by
///      the group columns and serialized to its own temporary file.
///   2. A single-pass k-way merge streams the sorted runs and aggregates
///      adjacent equal keys, emitting each group once.
///
/// This operator is the fallback of the "switch to external" baseline
/// (HyPer-model); its cost profile — serialize everything, sort, merge —
/// is what creates the paper's performance cliff.
class ExternalSortAggregate : public DataSink {
 public:
  struct Config {
    /// Per-thread in-memory run size before sorting and spilling.
    idx_t run_memory_bytes = 16ULL << 20;
    std::string temp_directory = ".";
  };

  static Result<std::unique_ptr<ExternalSortAggregate>> Create(
      BufferManager &buffer_manager, std::vector<LogicalTypeId> input_types,
      std::vector<idx_t> group_columns,
      std::vector<AggregateRequest> aggregates, Config config);

  /// Removes any run files still on disk (the merge phase removes the ones
  /// it consumed; this covers pipelines that fail before or during it).
  ~ExternalSortAggregate() override;

  std::vector<LogicalTypeId> OutputTypes() const;

  // DataSink (run generation)
  Result<std::unique_ptr<LocalSinkState>> InitLocal() override;
  Status Sink(DataChunk &chunk, LocalSinkState &state) override;
  Status Combine(LocalSinkState &state) override;

  /// Merge phase: k-way merge + streaming aggregation into `output`.
  /// Single-threaded, as in classic implementations.
  Status EmitResults(DataSink &output, TaskExecutor &executor);

  [[nodiscard]] idx_t RunCount() const;
  [[nodiscard]] idx_t RunBytes() const { return run_bytes_.load(); }
  /// Number of runs the merge phase streamed together (0 before
  /// EmitResults).
  [[nodiscard]] idx_t MergeFanIn() const { return merge_fan_in_; }
  /// Input rows consumed by the merge phase.
  [[nodiscard]] idx_t MergedRows() const { return merged_rows_; }

 private:
  struct RunInfo {
    std::string path;
    idx_t rows;
  };

  struct LocalState;

  ExternalSortAggregate(BufferManager &buffer_manager,
                        std::vector<LogicalTypeId> input_types, Config config)
      : buffer_manager_(buffer_manager),
        input_types_(std::move(input_types)),
        config_(config) {}

  /// Sorts the local arena by group columns and writes it out as one run.
  Status SortAndSpill(LocalState &local);

  /// Deletes every registered run file and forgets it.
  void RemoveRunFiles();

  BufferManager &buffer_manager_;
  std::vector<LogicalTypeId> input_types_;
  Config config_;

  /// Run rows: [group columns..., one raw column per aggregate input].
  TupleDataLayout run_layout_;
  idx_t group_count_ = 0;
  /// For run column rc: which input-chunk column it materializes.
  std::vector<idx_t> run_input_columns_;
  /// For aggregate k: its run column (kInvalidIndex for COUNT(*)).
  std::vector<idx_t> aggregate_run_columns_;
  std::vector<AggregateObject> aggregates_;
  idx_t total_state_width_ = 0;

  mutable Mutex lock_;
  std::vector<RunInfo> runs_ SSAGG_GUARDED_BY(lock_);
  std::atomic<idx_t> next_run_id_{0};
  /// Embedded in run-file names: temp directories are shared across
  /// operator instances and concurrent processes.
  const std::string run_token_ = ProcessUniqueToken();
  std::atomic<idx_t> run_bytes_{0};
  /// Written only by the single-threaded merge phase (EmitResults), read
  /// after it returns; not guarded.
  idx_t merge_fan_in_ = 0;
  idx_t merged_rows_ = 0;
};

}  // namespace ssagg

#endif  // SSAGG_SORT_EXTERNAL_SORT_AGGREGATE_H_
