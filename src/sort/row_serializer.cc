#include "sort/row_serializer.h"

#include <cstring>

#include "common/string_type.h"

namespace ssagg {

namespace {
constexpr idx_t kIOBufferSize = 1 << 20;  // 1 MiB buffered I/O

/// Heap bytes of a serialized row (total size of its valid, non-inlined
/// strings); lengths are read from the fixed part.
idx_t RowHeapSize(const TupleDataLayout &layout, const_data_ptr_t row) {
  idx_t total = 0;
  for (idx_t c : layout.VarSizeColumns()) {
    if (!layout.RowIsColumnValid(row, c)) {
      continue;
    }
    string_t s;
    std::memcpy(&s, row + layout.ColumnOffset(c), sizeof(string_t));
    if (!s.IsInlined()) {
      total += s.size();
    }
  }
  return total;
}
}  // namespace

//===----------------------------------------------------------------------===//
// RunWriter
//===----------------------------------------------------------------------===//

Status RunWriter::Open() {
  FileOpenFlags flags;
  flags.read = true;
  flags.write = true;
  flags.create = true;
  flags.truncate = true;
  SSAGG_ASSIGN_OR_RETURN(file_, fs_.Open(path_, flags));
  buffer_.reserve(kIOBufferSize);
  return Status::OK();
}

Status RunWriter::FlushBuffer() {
  if (buffer_.empty()) {
    return Status::OK();
  }
  SSAGG_RETURN_NOT_OK(file_->Write(buffer_.data(), buffer_.size(), bytes_));
  bytes_ += buffer_.size();
  buffer_.clear();
  return Status::OK();
}

Status RunWriter::WriteRow(const_data_ptr_t row) {
  const idx_t row_width = layout_.RowWidth();
  idx_t heap = layout_.AllConstantSize() ? 0 : RowHeapSize(layout_, row);
  if (buffer_.size() + row_width + heap > kIOBufferSize) {
    SSAGG_RETURN_NOT_OK(FlushBuffer());
  }
  idx_t offset = buffer_.size();
  buffer_.resize(offset + row_width + heap);
  std::memcpy(buffer_.data() + offset, row, row_width);
  idx_t heap_offset = offset + row_width;
  for (idx_t c : layout_.VarSizeColumns()) {
    if (!layout_.RowIsColumnValid(row, c)) {
      continue;
    }
    string_t s;
    std::memcpy(&s, row + layout_.ColumnOffset(c), sizeof(string_t));
    if (!s.IsInlined()) {
      std::memcpy(buffer_.data() + heap_offset, s.data(), s.size());
      heap_offset += s.size();
    }
  }
  rows_++;
  return Status::OK();
}

Status RunWriter::Finish() { return FlushBuffer(); }

//===----------------------------------------------------------------------===//
// RunReader
//===----------------------------------------------------------------------===//

Status RunReader::Open() {
  FileOpenFlags flags;
  SSAGG_ASSIGN_OR_RETURN(file_, fs_.Open(path_, flags));
  SSAGG_ASSIGN_OR_RETURN(file_size_, file_->FileSize());
  buffer_.resize(kIOBufferSize);
  buffer_pos_ = 0;
  buffer_end_ = 0;
  return Status::OK();
}

Status RunReader::FillBuffer(idx_t at_least) {
  // Compact the unread tail to the front, then top up from the file.
  idx_t unread = buffer_end_ - buffer_pos_;
  if (unread > 0 && buffer_pos_ > 0) {
    std::memmove(buffer_.data(), buffer_.data() + buffer_pos_, unread);
  }
  buffer_pos_ = 0;
  buffer_end_ = unread;
  if (buffer_.size() < at_least) {
    buffer_.resize(at_least);
  }
  idx_t want = std::min(buffer_.size() - buffer_end_,
                        file_size_ - file_offset_);
  if (want > 0) {
    SSAGG_RETURN_NOT_OK(
        file_->Read(buffer_.data() + buffer_end_, want, file_offset_));
    file_offset_ += want;
    buffer_end_ += want;
  }
  if (buffer_end_ < at_least) {
    return Status::IOError("run file truncated: " + path_);
  }
  return Status::OK();
}

Result<idx_t> RunReader::ReadBatch(idx_t max_rows,
                                   std::vector<data_ptr_t> &rows_out) {
  const idx_t row_width = layout_.RowWidth();
  idx_t count = std::min(max_rows, remaining_);
  if (count == 0) {
    return idx_t(0);
  }
  arena_.resize(count * row_width);
  heap_.Reset();
  for (idx_t i = 0; i < count; i++) {
    // Make sure the fixed part is buffered, then the heap part.
    if (buffer_end_ - buffer_pos_ < row_width) {
      SSAGG_RETURN_NOT_OK(FillBuffer(row_width));
    }
    data_ptr_t row = arena_.data() + i * row_width;
    std::memcpy(row, buffer_.data() + buffer_pos_, row_width);
    idx_t heap = layout_.AllConstantSize() ? 0 : RowHeapSize(layout_, row);
    buffer_pos_ += row_width;
    if (heap > 0) {
      if (buffer_end_ - buffer_pos_ < heap) {
        SSAGG_RETURN_NOT_OK(FillBuffer(heap));
      }
      // Deserialize: copy strings into the arena heap and fix the pointers.
      idx_t src = buffer_pos_;
      for (idx_t c : layout_.VarSizeColumns()) {
        if (!layout_.RowIsColumnValid(row, c)) {
          continue;
        }
        string_t s;
        std::memcpy(&s, row + layout_.ColumnOffset(c), sizeof(string_t));
        if (s.IsInlined()) {
          continue;
        }
        char *dest = heap_.Allocate(s.size());
        std::memcpy(dest, buffer_.data() + src, s.size());
        src += s.size();
        s.SetPointer(dest);
        std::memcpy(row + layout_.ColumnOffset(c), &s, sizeof(string_t));
      }
      buffer_pos_ += heap;
    }
    rows_out.push_back(row);
  }
  remaining_ -= count;
  return count;
}

void RunReader::GatherBatch(const std::vector<data_ptr_t> &rows,
                            DataChunk &out) const {
  for (idx_t c = 0; c < layout_.ColumnCount(); c++) {
    Vector &vec = out.column(c);
    idx_t offset = layout_.ColumnOffset(c);
    idx_t width = TypeWidth(layout_.ColumnType(c));
    bool varsize = TypeIsVarSize(layout_.ColumnType(c));
    for (idx_t i = 0; i < rows.size(); i++) {
      if (!layout_.RowIsColumnValid(rows[i], c)) {
        vec.validity().SetInvalid(i);
        std::memset(vec.data() + i * width, 0, width);
        continue;
      }
      if (varsize) {
        string_t s;
        std::memcpy(&s, rows[i] + offset, sizeof(string_t));
        vec.SetString(i, s.View());
      } else {
        std::memcpy(vec.data() + i * width, rows[i] + offset, width);
      }
    }
  }
  out.SetCount(rows.size());
}

Status RunReader::Remove() {
  file_.reset();
  return fs_.RemoveFile(path_);
}

}  // namespace ssagg
