#include "sort/row_serializer.h"

#include <cstring>

#include "common/string_type.h"
#include "compression/codec.h"

namespace ssagg {

namespace {
constexpr idx_t kIOBufferSize = 1 << 20;  // 1 MiB buffered I/O

/// Heap bytes of a serialized row (total size of its valid, non-inlined
/// strings); lengths are read from the fixed part.
idx_t RowHeapSize(const TupleDataLayout &layout, const_data_ptr_t row) {
  idx_t total = 0;
  for (idx_t c : layout.VarSizeColumns()) {
    if (!layout.RowIsColumnValid(row, c)) {
      continue;
    }
    string_t s;
    std::memcpy(&s, row + layout.ColumnOffset(c), sizeof(string_t));
    if (!s.IsInlined()) {
      total += s.size();
    }
  }
  return total;
}
}  // namespace

//===----------------------------------------------------------------------===//
// RunWriter
//===----------------------------------------------------------------------===//

RunWriter::~RunWriter() {
  // An aborted run may still have a write in flight referencing inflight_;
  // the backend must be done with it before the buffer dies.
  Status ignored = WaitPending();
  (void)ignored;
}

Status RunWriter::Open() {
  FileOpenFlags flags;
  flags.read = true;
  flags.write = true;
  flags.create = true;
  flags.truncate = true;
  SSAGG_ASSIGN_OR_RETURN(file_, fs_.Open(path_, flags));
  data_t header[RunFileHeader::kSize] = {};
  uint32_t magic = RunFileHeader::kMagic;
  std::memcpy(header, &magic, sizeof(magic));
  header[4] = RunFileHeader::kVersion;
  header[5] = compress_ ? RunFileHeader::kFlagCompressed : 0;
  SSAGG_RETURN_NOT_OK(file_->Write(header, RunFileHeader::kSize, 0));
  bytes_ = RunFileHeader::kSize;
  buffer_.reserve(kIOBufferSize);
  return Status::OK();
}

Status RunWriter::WaitPending() {
  if (!pending_) {
    return Status::OK();
  }
  Status status = pending_->Wait();
  pending_.reset();
  return status;
}

Status RunWriter::FlushBuffer() {
  if (buffer_.empty()) {
    return Status::OK();
  }
  raw_bytes_ += buffer_.size();
  std::vector<data_t> payload;
  if (compress_) {
    // One spill frame per flushed buffer: self-describing, so the reader
    // needs no out-of-band sizes (worst case the frame stores raw bytes).
    CompressSpillFrame(buffer_.data(), buffer_.size(), payload);
    buffer_.clear();
  } else {
    payload = std::move(buffer_);
    buffer_ = std::vector<data_t>();
  }
  buffer_.reserve(kIOBufferSize);
  if (io_backend_ != nullptr) {
    // Double buffering: wait for the previous write (its buffer is about to
    // be replaced), then hand this payload to the backend and keep filling.
    SSAGG_RETURN_NOT_OK(WaitPending());
    inflight_ = std::move(payload);
    IoRequest request;
    request.kind = IoRequest::Kind::kWrite;
    request.file = file_.get();
    request.buffer = inflight_.data();
    request.bytes = inflight_.size();
    request.offset = bytes_;
    pending_ = io_backend_->Submit(std::move(request));
    bytes_ += inflight_.size();
    return Status::OK();
  }
  SSAGG_RETURN_NOT_OK(file_->Write(payload.data(), payload.size(), bytes_));
  bytes_ += payload.size();
  return Status::OK();
}

Status RunWriter::WriteRow(const_data_ptr_t row) {
  const idx_t row_width = layout_.RowWidth();
  idx_t heap = layout_.AllConstantSize() ? 0 : RowHeapSize(layout_, row);
  if (buffer_.size() + row_width + heap > kIOBufferSize) {
    SSAGG_RETURN_NOT_OK(FlushBuffer());
  }
  idx_t offset = buffer_.size();
  buffer_.resize(offset + row_width + heap);
  std::memcpy(buffer_.data() + offset, row, row_width);
  idx_t heap_offset = offset + row_width;
  for (idx_t c : layout_.VarSizeColumns()) {
    if (!layout_.RowIsColumnValid(row, c)) {
      continue;
    }
    string_t s;
    std::memcpy(&s, row + layout_.ColumnOffset(c), sizeof(string_t));
    if (!s.IsInlined()) {
      std::memcpy(buffer_.data() + heap_offset, s.data(), s.size());
      heap_offset += s.size();
    }
  }
  rows_++;
  return Status::OK();
}

Status RunWriter::Finish() {
  SSAGG_RETURN_NOT_OK(FlushBuffer());
  return WaitPending();
}

//===----------------------------------------------------------------------===//
// RunReader
//===----------------------------------------------------------------------===//

RunReader::~RunReader() { DrainReadAhead(); }

Status RunReader::Open() {
  FileOpenFlags flags;
  SSAGG_ASSIGN_OR_RETURN(file_, fs_.Open(path_, flags));
  SSAGG_ASSIGN_OR_RETURN(file_size_, file_->FileSize());
  if (file_size_ < RunFileHeader::kSize) {
    return Status::IOError("run file truncated: " + path_);
  }
  data_t header[RunFileHeader::kSize];
  SSAGG_RETURN_NOT_OK(file_->Read(header, RunFileHeader::kSize, 0));
  uint32_t magic;
  std::memcpy(&magic, header, sizeof(magic));
  if (magic != RunFileHeader::kMagic ||
      header[4] != RunFileHeader::kVersion) {
    return Status::IOError("run file has an unknown header: " + path_);
  }
  compressed_ = (header[5] & RunFileHeader::kFlagCompressed) != 0;
  file_offset_ = RunFileHeader::kSize;
  buffer_.reserve(kIOBufferSize);
  buffer_pos_ = 0;
  buffer_end_ = 0;
  MaybeSubmitReadAhead();
  return Status::OK();
}

void RunReader::MaybeSubmitReadAhead() {
  if (io_backend_ == nullptr || ahead_done_ || file_offset_ >= file_size_) {
    return;
  }
  ahead_bytes_ = std::min(kIOBufferSize, file_size_ - file_offset_);
  ahead_.resize(ahead_bytes_);
  IoRequest request;
  request.kind = IoRequest::Kind::kRead;
  request.file = file_.get();
  request.buffer = ahead_.data();
  request.bytes = ahead_bytes_;
  request.offset = file_offset_;
  file_offset_ += ahead_bytes_;
  ahead_done_ = io_backend_->Submit(std::move(request));
}

void RunReader::DrainReadAhead() {
  if (ahead_done_) {
    // The buffer must stay alive until the backend is done with it; the
    // result no longer matters.
    Status ignored = ahead_done_->Wait();
    (void)ignored;
    ahead_done_.reset();
  }
}

Status RunReader::AppendChunk(std::vector<data_t> &dest, idx_t &dest_end) {
  idx_t chunk = 0;
  if (ahead_done_) {
    // Consume the chunk that was read while the previous one was parsed.
    Status status = ahead_done_->Wait();
    ahead_done_.reset();
    SSAGG_RETURN_NOT_OK(status);
    dest.resize(dest_end + ahead_bytes_);
    std::memcpy(dest.data() + dest_end, ahead_.data(), ahead_bytes_);
    chunk = ahead_bytes_;
  } else {
    idx_t want = std::min(kIOBufferSize, file_size_ - file_offset_);
    if (want == 0) {
      return Status::IOError("run file truncated: " + path_);
    }
    dest.resize(dest_end + want);
    SSAGG_RETURN_NOT_OK(
        file_->Read(dest.data() + dest_end, want, file_offset_));
    file_offset_ += want;
    chunk = want;
  }
  dest_end += chunk;
  MaybeSubmitReadAhead();
  return Status::OK();
}

Status RunReader::FillBuffer(idx_t at_least) {
  // Compact the unread tail to the front, then top up.
  idx_t unread = buffer_end_ - buffer_pos_;
  if (unread > 0 && buffer_pos_ > 0) {
    std::memmove(buffer_.data(), buffer_.data() + buffer_pos_, unread);
  }
  buffer_pos_ = 0;
  buffer_end_ = unread;
  if (buffer_.size() < buffer_end_) {
    buffer_.resize(buffer_end_);
  }
  if (!compressed_) {
    while (buffer_end_ < at_least) {
      SSAGG_RETURN_NOT_OK(AppendChunk(buffer_, buffer_end_));
    }
    return Status::OK();
  }
  // Compressed: decode whole frames out of the raw file stream until enough
  // row bytes are buffered.
  while (buffer_end_ < at_least) {
    // Buffer the frame header, then the whole frame.
    SpillFrameHeader frame;
    while (true) {
      idx_t avail = fbuf_end_ - fbuf_pos_;
      if (avail >= SpillFrameHeader::kSize) {
        // The frame may extend past the buffered bytes; validate the header
        // against everything the file can still provide (unsubmitted bytes
        // plus the read-ahead in flight), not just what is buffered.
        idx_t possible = avail + (file_size_ - file_offset_) +
                         (ahead_done_ ? ahead_bytes_ : 0);
        Status peek =
            PeekSpillFrame(fbuf_.data() + fbuf_pos_, possible, frame);
        if (!peek.ok()) {
          return Status::IOError("run file " + path_ +
                                 ": bad spill frame: " + peek.ToString());
        }
        if (avail >= SpillFrameHeader::kSize + frame.comp_len) {
          break;
        }
      }
      // Compact and append the next chunk.
      if (fbuf_pos_ > 0) {
        std::memmove(fbuf_.data(), fbuf_.data() + fbuf_pos_,
                     fbuf_end_ - fbuf_pos_);
        fbuf_end_ -= fbuf_pos_;
        fbuf_pos_ = 0;
      }
      SSAGG_RETURN_NOT_OK(AppendChunk(fbuf_, fbuf_end_));
    }
    buffer_.resize(buffer_end_ + frame.raw_len);
    SSAGG_RETURN_NOT_OK(DecompressSpillFrame(
        fbuf_.data() + fbuf_pos_, fbuf_end_ - fbuf_pos_,
        buffer_.data() + buffer_end_, frame.raw_len));
    buffer_end_ += frame.raw_len;
    fbuf_pos_ += SpillFrameHeader::kSize + frame.comp_len;
  }
  return Status::OK();
}

Result<idx_t> RunReader::ReadBatch(idx_t max_rows,
                                   std::vector<data_ptr_t> &rows_out) {
  const idx_t row_width = layout_.RowWidth();
  idx_t count = std::min(max_rows, remaining_);
  if (count == 0) {
    return idx_t(0);
  }
  arena_.resize(count * row_width);
  heap_.Reset();
  for (idx_t i = 0; i < count; i++) {
    // Make sure the fixed part is buffered, then the heap part.
    if (buffer_end_ - buffer_pos_ < row_width) {
      SSAGG_RETURN_NOT_OK(FillBuffer(row_width));
    }
    data_ptr_t row = arena_.data() + i * row_width;
    std::memcpy(row, buffer_.data() + buffer_pos_, row_width);
    idx_t heap = layout_.AllConstantSize() ? 0 : RowHeapSize(layout_, row);
    buffer_pos_ += row_width;
    if (heap > 0) {
      if (buffer_end_ - buffer_pos_ < heap) {
        SSAGG_RETURN_NOT_OK(FillBuffer(heap));
      }
      // Deserialize: copy strings into the arena heap and fix the pointers.
      idx_t src = buffer_pos_;
      for (idx_t c : layout_.VarSizeColumns()) {
        if (!layout_.RowIsColumnValid(row, c)) {
          continue;
        }
        string_t s;
        std::memcpy(&s, row + layout_.ColumnOffset(c), sizeof(string_t));
        if (s.IsInlined()) {
          continue;
        }
        char *dest = heap_.Allocate(s.size());
        std::memcpy(dest, buffer_.data() + src, s.size());
        src += s.size();
        s.SetPointer(dest);
        std::memcpy(row + layout_.ColumnOffset(c), &s, sizeof(string_t));
      }
      buffer_pos_ += heap;
    }
    rows_out.push_back(row);
  }
  remaining_ -= count;
  return count;
}

void RunReader::GatherBatch(const std::vector<data_ptr_t> &rows,
                            DataChunk &out) const {
  for (idx_t c = 0; c < layout_.ColumnCount(); c++) {
    Vector &vec = out.column(c);
    idx_t offset = layout_.ColumnOffset(c);
    idx_t width = TypeWidth(layout_.ColumnType(c));
    bool varsize = TypeIsVarSize(layout_.ColumnType(c));
    for (idx_t i = 0; i < rows.size(); i++) {
      if (!layout_.RowIsColumnValid(rows[i], c)) {
        vec.validity().SetInvalid(i);
        std::memset(vec.data() + i * width, 0, width);
        continue;
      }
      if (varsize) {
        string_t s;
        std::memcpy(&s, rows[i] + offset, sizeof(string_t));
        vec.SetString(i, s.View());
      } else {
        std::memcpy(vec.data() + i * width, rows[i] + offset, width);
      }
    }
  }
  out.SetCount(rows.size());
}

Status RunReader::Remove() {
  DrainReadAhead();
  file_.reset();
  return fs_.RemoveFile(path_);
}

}  // namespace ssagg
