#ifndef SSAGG_SORT_ROW_SERIALIZER_H_
#define SSAGG_SORT_ROW_SERIALIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/file_system.h"
#include "common/string_heap.h"
#include "common/vector.h"
#include "layout/tuple_data_layout.h"

namespace ssagg {

/// Classic (de)serializing temporary-file I/O for layout rows — the
/// approach the paper's page layout is designed to AVOID (Section IV,
/// "(De-)Serialization"). The baseline algorithms use this: every spilled
/// row pays a serialize on write and a deserialize (with pointer fixup) on
/// read.
///
/// Format per row: the fixed row bytes, then the character data of each
/// valid non-inlined string column, in column order (lengths are already in
/// the fixed part).
class RunWriter {
 public:
  RunWriter(const TupleDataLayout &layout, std::string path,
            FileSystem &fs = FileSystem::Default())
      : layout_(layout), path_(std::move(path)), fs_(fs) {}

  Status Open();
  Status WriteRow(const_data_ptr_t row);
  /// Flushes buffered data; the file stays readable afterwards.
  Status Finish();

  idx_t RowCount() const { return rows_; }
  idx_t BytesWritten() const { return bytes_ + buffer_.size(); }
  const std::string &path() const { return path_; }

 private:
  Status FlushBuffer();

  const TupleDataLayout &layout_;
  std::string path_;
  FileSystem &fs_;
  std::unique_ptr<FileHandle> file_;
  std::vector<data_t> buffer_;
  idx_t bytes_ = 0;
  idx_t rows_ = 0;
};

/// Streaming reader over a run file. Deserializes batches of rows into an
/// internal arena; the returned row pointers (and their fixed-up string
/// pointers) stay valid until the next ReadBatch call.
class RunReader {
 public:
  RunReader(const TupleDataLayout &layout, std::string path, idx_t row_count,
            FileSystem &fs = FileSystem::Default())
      : layout_(layout),
        path_(std::move(path)),
        fs_(fs),
        remaining_(row_count) {}

  Status Open();

  /// Reads up to max_rows rows; returns the number read (0 = exhausted).
  /// Row pointers are appended to `rows_out`.
  Result<idx_t> ReadBatch(idx_t max_rows, std::vector<data_ptr_t> &rows_out);

  /// Gathers previously read rows into a DataChunk (layout column types).
  void GatherBatch(const std::vector<data_ptr_t> &rows, DataChunk &out) const;

  idx_t remaining() const { return remaining_; }
  /// Deletes the run file.
  Status Remove();

 private:
  Status FillBuffer(idx_t at_least);

  const TupleDataLayout &layout_;
  std::string path_;
  FileSystem &fs_;
  std::unique_ptr<FileHandle> file_;
  idx_t remaining_;
  idx_t file_offset_ = 0;
  idx_t file_size_ = 0;
  std::vector<data_t> buffer_;   // raw bytes read from the file
  idx_t buffer_pos_ = 0;
  idx_t buffer_end_ = 0;
  std::vector<data_t> arena_;    // deserialized rows for the current batch
  StringHeap heap_;              // deserialized string data
};

}  // namespace ssagg

#endif  // SSAGG_SORT_ROW_SERIALIZER_H_
