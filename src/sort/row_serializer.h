#ifndef SSAGG_SORT_ROW_SERIALIZER_H_
#define SSAGG_SORT_ROW_SERIALIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/async_io.h"
#include "common/file_system.h"
#include "common/string_heap.h"
#include "common/vector.h"
#include "layout/tuple_data_layout.h"

namespace ssagg {

/// Classic (de)serializing temporary-file I/O for layout rows — the
/// approach the paper's page layout is designed to AVOID (Section IV,
/// "(De-)Serialization"). The baseline algorithms use this: every spilled
/// row pays a serialize on write and a deserialize (with pointer fixup) on
/// read.
///
/// Run files start with an 8-byte header (magic, version, flags); the flags
/// record whether the body is the plain row stream or a sequence of
/// compressed spill frames (compression/codec.h), one per flushed I/O
/// buffer. Readers dispatch on the header, so the two formats coexist.
///
/// Format per row: the fixed row bytes, then the character data of each
/// valid non-inlined string column, in column order (lengths are already in
/// the fixed part).
struct RunFileHeader {
  static constexpr uint32_t kMagic = 0x4E525353;  // "SSRN"
  static constexpr uint8_t kVersion = 1;
  static constexpr idx_t kSize = 8;
  static constexpr uint8_t kFlagCompressed = 0x01;
};

class RunWriter {
 public:
  /// With an io_backend, each flushed buffer is written asynchronously while
  /// the next one fills (double buffering); Finish() waits for the tail.
  /// With compression, each flushed buffer becomes one spill frame.
  RunWriter(const TupleDataLayout &layout, std::string path,
            FileSystem &fs = FileSystem::Default(),
            AsyncIoBackend *io_backend = nullptr, bool compress = false)
      : layout_(layout),
        path_(std::move(path)),
        fs_(fs),
        io_backend_(io_backend),
        compress_(compress) {}

  ~RunWriter();

  Status Open();
  Status WriteRow(const_data_ptr_t row);
  /// Flushes buffered data and waits for in-flight writes; the file stays
  /// readable afterwards.
  Status Finish();

  idx_t RowCount() const { return rows_; }
  /// Physical bytes (post-compression, including the header).
  idx_t BytesWritten() const { return bytes_ + buffer_.size(); }
  /// Logical row-stream bytes (pre-compression, excluding the header).
  idx_t RawBytesWritten() const { return raw_bytes_ + buffer_.size(); }
  const std::string &path() const { return path_; }

 private:
  Status FlushBuffer();
  /// Waits for the previous double-buffered write, if any.
  Status WaitPending();

  const TupleDataLayout &layout_;
  std::string path_;
  FileSystem &fs_;
  AsyncIoBackend *io_backend_;
  bool compress_;
  std::unique_ptr<FileHandle> file_;
  std::vector<data_t> buffer_;
  /// Payload of the in-flight write (must stay stable until it completes).
  std::vector<data_t> inflight_;
  IoCompletionPtr pending_;
  idx_t bytes_ = 0;
  idx_t raw_bytes_ = 0;
  idx_t rows_ = 0;
};

/// Streaming reader over a run file. Deserializes batches of rows into an
/// internal arena; the returned row pointers (and their fixed-up string
/// pointers) stay valid until the next ReadBatch call.
///
/// With an io_backend, the next file chunk is read ahead while the current
/// one is consumed (double buffering), hiding read latency behind the merge.
class RunReader {
 public:
  RunReader(const TupleDataLayout &layout, std::string path, idx_t row_count,
            FileSystem &fs = FileSystem::Default(),
            AsyncIoBackend *io_backend = nullptr)
      : layout_(layout),
        path_(std::move(path)),
        fs_(fs),
        io_backend_(io_backend),
        remaining_(row_count) {}

  ~RunReader();

  Status Open();

  /// Reads up to max_rows rows; returns the number read (0 = exhausted).
  /// Row pointers are appended to `rows_out`.
  Result<idx_t> ReadBatch(idx_t max_rows, std::vector<data_ptr_t> &rows_out);

  /// Gathers previously read rows into a DataChunk (layout column types).
  void GatherBatch(const std::vector<data_ptr_t> &rows, DataChunk &out) const;

  idx_t remaining() const { return remaining_; }
  /// Deletes the run file.
  Status Remove();

 private:
  /// Tops up the row-stream buffer to hold at least `at_least` unread bytes
  /// (decompressing frames when the file is compressed).
  Status FillBuffer(idx_t at_least);
  /// Appends the next file chunk (from the in-flight read-ahead when one
  /// exists) to `dest` and submits the following read-ahead.
  Status AppendChunk(std::vector<data_t> &dest, idx_t &dest_end);
  void MaybeSubmitReadAhead();
  /// Waits for (and discards) any in-flight read-ahead.
  void DrainReadAhead();

  const TupleDataLayout &layout_;
  std::string path_;
  FileSystem &fs_;
  AsyncIoBackend *io_backend_;
  std::unique_ptr<FileHandle> file_;
  bool compressed_ = false;
  idx_t remaining_;
  idx_t file_offset_ = 0;  // next offset to *submit* (read-ahead included)
  idx_t file_size_ = 0;
  /// Double-buffered read-ahead: the chunk being read in the background.
  std::vector<data_t> ahead_;
  IoCompletionPtr ahead_done_;
  idx_t ahead_bytes_ = 0;
  /// Raw file stream (compressed files only: frames are parsed out of it).
  std::vector<data_t> fbuf_;
  idx_t fbuf_pos_ = 0;
  idx_t fbuf_end_ = 0;
  std::vector<data_t> buffer_;  // row-stream bytes ReadBatch consumes
  idx_t buffer_pos_ = 0;
  idx_t buffer_end_ = 0;
  std::vector<data_t> arena_;  // deserialized rows for the current batch
  StringHeap heap_;            // deserialized string data
};

}  // namespace ssagg

#endif  // SSAGG_SORT_ROW_SERIALIZER_H_
