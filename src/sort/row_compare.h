#ifndef SSAGG_SORT_ROW_COMPARE_H_
#define SSAGG_SORT_ROW_COMPARE_H_

#include <cstring>

#include "common/string_type.h"
#include "common/vector.h"
#include "layout/tuple_data_layout.h"

namespace ssagg {

/// Three-way comparison of two layout rows on the first `ncols` columns.
/// NULLs sort first; strings compare lexicographically. Used by the
/// sort-based baseline's run sort and merge.
inline int CompareLayoutRows(const TupleDataLayout &layout, idx_t ncols,
                             const_data_ptr_t a, const_data_ptr_t b) {
  for (idx_t c = 0; c < ncols; c++) {
    bool va = layout.RowIsColumnValid(a, c);
    bool vb = layout.RowIsColumnValid(b, c);
    if (va != vb) {
      return va ? 1 : -1;  // NULL first
    }
    if (!va) {
      continue;
    }
    idx_t offset = layout.ColumnOffset(c);
    switch (layout.ColumnType(c)) {
      case LogicalTypeId::kBoolean: {
        uint8_t x = a[offset], y = b[offset];
        if (x != y) {
          return x < y ? -1 : 1;
        }
        break;
      }
      case LogicalTypeId::kInt32:
      case LogicalTypeId::kDate: {
        int32_t x, y;
        std::memcpy(&x, a + offset, 4);
        std::memcpy(&y, b + offset, 4);
        if (x != y) {
          return x < y ? -1 : 1;
        }
        break;
      }
      case LogicalTypeId::kInt64: {
        int64_t x, y;
        std::memcpy(&x, a + offset, 8);
        std::memcpy(&y, b + offset, 8);
        if (x != y) {
          return x < y ? -1 : 1;
        }
        break;
      }
      case LogicalTypeId::kDouble: {
        double x, y;
        std::memcpy(&x, a + offset, 8);
        std::memcpy(&y, b + offset, 8);
        if (x < y) {
          return -1;
        }
        if (y < x) {
          return 1;
        }
        break;
      }
      case LogicalTypeId::kVarchar: {
        string_t x, y;
        std::memcpy(&x, a + offset, sizeof(string_t));
        std::memcpy(&y, b + offset, sizeof(string_t));
        auto vx = x.View(), vy = y.View();
        int cmp = vx.compare(vy);
        if (cmp != 0) {
          return cmp < 0 ? -1 : 1;
        }
        break;
      }
    }
  }
  return 0;
}

inline bool LayoutRowsEqual(const TupleDataLayout &layout, idx_t ncols,
                            const_data_ptr_t a, const_data_ptr_t b) {
  return CompareLayoutRows(layout, ncols, a, b) == 0;
}

}  // namespace ssagg

#endif  // SSAGG_SORT_ROW_COMPARE_H_
