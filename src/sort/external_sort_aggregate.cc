#include "sort/external_sort_aggregate.h"

#include <algorithm>
#include <cstring>
#include <queue>

#include "common/string_heap.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "sort/row_compare.h"

namespace ssagg {

namespace {
constexpr idx_t kArenaPageSize = 256 * 1024;
constexpr idx_t kMergeBatchRows = 1024;
}  // namespace

/// Thread-local run arena: plain (non-paged, buffer-manager-accounted)
/// memory holding unsorted rows in the run layout.
struct ExternalSortAggregate::LocalState : public LocalSinkState {
  std::vector<std::unique_ptr<data_t[]>> pages;
  idx_t page_used = 0;
  StringHeap heap;
  std::vector<data_ptr_t> rows;
  idx_t reserved_bytes = 0;
  BufferManager *buffer_manager = nullptr;

  ~LocalState() override {
    if (buffer_manager != nullptr && reserved_bytes > 0) {
      buffer_manager->FreeExternalMemory(reserved_bytes);
    }
  }

  idx_t UsedBytes(idx_t row_width) const {
    return rows.size() * row_width + heap.SizeInBytes();
  }

  void Clear() {
    pages.clear();
    page_used = 0;
    heap.Reset();
    rows.clear();
  }
};

Result<std::unique_ptr<ExternalSortAggregate>> ExternalSortAggregate::Create(
    BufferManager &buffer_manager, std::vector<LogicalTypeId> input_types,
    std::vector<idx_t> group_columns, std::vector<AggregateRequest> aggregates,
    Config config) {
  if (group_columns.empty()) {
    return Status::InvalidArgument("grouped aggregation needs group columns");
  }
  std::unique_ptr<ExternalSortAggregate> op(
      new ExternalSortAggregate(buffer_manager, input_types, config));
  op->group_count_ = group_columns.size();

  std::vector<LogicalTypeId> run_types;
  for (idx_t col : group_columns) {
    if (col >= input_types.size()) {
      return Status::InvalidArgument("group column index out of range");
    }
    run_types.push_back(input_types[col]);
    op->run_input_columns_.push_back(col);
  }
  idx_t state_width = 0;
  for (const auto &req : aggregates) {
    AggregateObject obj;
    obj.request = req;
    if (req.kind == AggregateKind::kAnyValue) {
      obj.sticky = true;
      obj.layout_column = run_types.size();
      obj.function.kind = req.kind;
      obj.function.input_type = input_types[req.input_column];
      obj.function.result_type = obj.function.input_type;
      op->aggregate_run_columns_.push_back(run_types.size());
      run_types.push_back(input_types[req.input_column]);
      op->run_input_columns_.push_back(req.input_column);
    } else {
      LogicalTypeId input_type = LogicalTypeId::kInt64;
      idx_t run_col = kInvalidIndex;
      if (req.input_column != kInvalidIndex) {
        input_type = input_types[req.input_column];
        run_col = run_types.size();
        run_types.push_back(input_type);
        op->run_input_columns_.push_back(req.input_column);
      }
      SSAGG_ASSIGN_OR_RETURN(obj.function,
                             GetAggregateFunction(req.kind, input_type));
      obj.state_offset = state_width;
      state_width += obj.function.state_width;
      op->aggregate_run_columns_.push_back(run_col);
    }
    op->aggregates_.push_back(obj);
  }
  op->total_state_width_ = state_width;
  op->run_layout_.Initialize(run_types);
  SSAGG_RETURN_NOT_OK(
      buffer_manager.fs().CreateDirectories(config.temp_directory));
  return op;
}

ExternalSortAggregate::~ExternalSortAggregate() { RemoveRunFiles(); }

void ExternalSortAggregate::RemoveRunFiles() {
  ScopedLock guard(lock_);
  for (const auto &run : runs_) {
    (void)buffer_manager_.fs().RemoveFile(run.path);
  }
  runs_.clear();
}

idx_t ExternalSortAggregate::RunCount() const {
  ScopedLock guard(lock_);
  return runs_.size();
}

std::vector<LogicalTypeId> ExternalSortAggregate::OutputTypes() const {
  std::vector<LogicalTypeId> types;
  for (idx_t g = 0; g < group_count_; g++) {
    types.push_back(run_layout_.ColumnType(g));
  }
  for (const auto &agg : aggregates_) {
    types.push_back(agg.function.result_type);
  }
  return types;
}

Result<std::unique_ptr<LocalSinkState>> ExternalSortAggregate::InitLocal() {
  auto state = std::make_unique<LocalState>();
  // Account the run budget against the unified memory pool up front.
  SSAGG_RETURN_NOT_OK(
      buffer_manager_.ReserveExternalMemory(config_.run_memory_bytes));
  state->buffer_manager = &buffer_manager_;
  state->reserved_bytes = config_.run_memory_bytes;
  return std::unique_ptr<LocalSinkState>(std::move(state));
}

Status ExternalSortAggregate::Sink(DataChunk &chunk, LocalSinkState &state) {
  auto &local = static_cast<LocalState &>(state);
  const idx_t row_width = run_layout_.RowWidth();
  SSAGG_ASSERT(row_width <= kArenaPageSize);
  for (idx_t r = 0; r < chunk.size(); r++) {
    if (local.pages.empty() || local.page_used + row_width > kArenaPageSize) {
      local.pages.push_back(std::make_unique<data_t[]>(kArenaPageSize));
      local.page_used = 0;
    }
    data_ptr_t row = local.pages.back().get() + local.page_used;
    local.page_used += row_width;

    std::memset(row, 0xFF, run_layout_.ValidityBytes());
    for (idx_t rc = 0; rc < run_layout_.ColumnCount(); rc++) {
      const Vector &vec = chunk.column(run_input_columns_[rc]);
      idx_t offset = run_layout_.ColumnOffset(rc);
      idx_t width = TypeWidth(run_layout_.ColumnType(rc));
      if (!vec.validity().RowIsValid(r)) {
        run_layout_.RowSetColumnValid(row, rc, false);
        std::memset(row + offset, 0, width);
        continue;
      }
      if (TypeIsVarSize(run_layout_.ColumnType(rc))) {
        // Copy the string into the arena heap so the row owns its data.
        string_t s = vec.Values<string_t>()[r];
        string_t stored = local.heap.Add(s.View());
        std::memcpy(row + offset, &stored, sizeof(string_t));
      } else {
        std::memcpy(row + offset, vec.data() + r * width, width);
      }
    }
    local.rows.push_back(row);
  }
  if (local.UsedBytes(row_width) >= config_.run_memory_bytes) {
    SSAGG_RETURN_NOT_OK(SortAndSpill(local));
  }
  return Status::OK();
}

Status ExternalSortAggregate::SortAndSpill(LocalState &local) {
  if (local.rows.empty()) {
    return Status::OK();
  }
  TraceSpan span("sort.spill_run", "sort", local.rows.size());
  const TupleDataLayout &layout = run_layout_;
  const idx_t ncols = group_count_;
  std::sort(local.rows.begin(), local.rows.end(),
            [&layout, ncols](const_data_ptr_t a, const_data_ptr_t b) {
              return CompareLayoutRows(layout, ncols, a, b) < 0;
            });
  idx_t run_id = next_run_id_.fetch_add(1);
  std::string path = config_.temp_directory + "/ssagg_sort_run_" +
                     run_token_ + "_" + std::to_string(run_id) + ".tmp";
  RunWriter writer(run_layout_, path, buffer_manager_.fs(),
                   &buffer_manager_.io_backend(),
                   buffer_manager_.spill_compression());
  Status write_status = writer.Open();
  if (write_status.ok()) {
    for (data_ptr_t row : local.rows) {
      write_status = writer.WriteRow(row);
      if (!write_status.ok()) {
        break;
      }
    }
  }
  if (write_status.ok()) {
    write_status = writer.Finish();
  }
  if (!write_status.ok()) {
    // Never leak a partial run file: it was not registered in runs_ yet.
    (void)buffer_manager_.fs().RemoveFile(path);
    return write_status;
  }
  run_bytes_.fetch_add(writer.BytesWritten());
  {
    MetricsRegistry &registry = MetricsRegistry::Global();
    registry.Add(registry.KeyId("sort.runs"), 1);
    registry.Add(registry.KeyId("sort.run_rows"), local.rows.size());
    registry.Add(registry.KeyId("sort.run_bytes"), writer.BytesWritten());
  }
  {
    ScopedLock guard(lock_);
    runs_.push_back(RunInfo{path, writer.RowCount()});
  }
  local.Clear();
  return Status::OK();
}

Status ExternalSortAggregate::Combine(LocalSinkState &state) {
  auto &local = static_cast<LocalState &>(state);
  // Classic behaviour: the final partial run is also written out before the
  // merge phase.
  return SortAndSpill(local);
}

Status ExternalSortAggregate::EmitResults(DataSink &output,
                                          TaskExecutor &executor) {
  // Snapshot the registered runs under the lock; the merge phase itself is
  // single-threaded and no Sink can race with it, but the snapshot keeps
  // the locking discipline uniform (and the capability analysis satisfied).
  std::vector<RunInfo> runs;
  {
    ScopedLock guard(lock_);
    runs = runs_;
  }
  if (runs.empty()) {
    return Status::OK();
  }
  TraceSpan span("sort.merge", "sort", runs.size());
  merge_fan_in_ = runs.size();
  struct MergeSource {
    std::unique_ptr<RunReader> reader;
    std::vector<data_ptr_t> rows;
    DataChunk chunk;
    idx_t pos = 0;
  };
  // Account the merge working set (per-run I/O buffer + batch arena).
  idx_t merge_bytes = runs.size() * (2ULL << 20);
  Status reserve = buffer_manager_.ReserveExternalMemory(merge_bytes);
  if (!reserve.ok()) {
    return Status::Aborted(
        "sort-merge aggregation cannot fit its merge buffers in memory: " +
        reserve.message());
  }

  std::vector<MergeSource> sources(runs.size());
  auto cleanup = [&]() {
    buffer_manager_.FreeExternalMemory(merge_bytes);
  };
  auto fill = [&](MergeSource &src) -> Status {
    src.rows.clear();
    src.pos = 0;
    SSAGG_ASSIGN_OR_RETURN(idx_t n,
                           src.reader->ReadBatch(kMergeBatchRows, src.rows));
    (void)n;
    return Status::OK();
  };
  Status status;  // first error; cleanup runs on all paths below
  for (idx_t i = 0; i < runs.size() && status.ok(); i++) {
    sources[i].reader = std::make_unique<RunReader>(
        run_layout_, runs[i].path, runs[i].rows, buffer_manager_.fs(),
        &buffer_manager_.io_backend());
    sources[i].chunk.Initialize(run_layout_.Types());
    status = sources[i].reader->Open();
    if (status.ok()) {
      status = fill(sources[i]);
    }
    if (status.ok() && !sources[i].rows.empty()) {
      sources[i].reader->GatherBatch(sources[i].rows, sources[i].chunk);
    }
  }
  if (!status.ok()) {
    RemoveRunFiles();
    cleanup();
    return status;
  }

  // Min-heap of source indices ordered by their current row's group key.
  auto heap_cmp = [&](idx_t a, idx_t b) {
    return CompareLayoutRows(run_layout_, group_count_,
                             sources[a].rows[sources[a].pos],
                             sources[b].rows[sources[b].pos]) > 0;
  };
  std::priority_queue<idx_t, std::vector<idx_t>, decltype(heap_cmp)> heap(
      heap_cmp);
  for (idx_t i = 0; i < sources.size(); i++) {
    if (!sources[i].rows.empty()) {
      heap.push(i);
    }
  }

  auto out_local_result = output.InitLocal();
  if (!out_local_result.ok()) {
    RemoveRunFiles();
    cleanup();
    return out_local_result.status();
  }
  auto out_local = std::move(out_local_result).MoveValue();
  DataChunk out(OutputTypes());
  std::vector<data_t> state_buffer(std::max<idx_t>(total_state_width_, 1));
  std::vector<data_t> current_group(run_layout_.RowWidth());
  StringHeap current_heap;  // owns the current group's string keys
  bool has_group = false;
  idx_t out_count = 0;
  idx_t merged_rows = 0;

  // Writes the group's aggregate results at out row `out_count` and bumps
  // the row count.
  auto close_group = [&]() -> Status {
    idx_t result_col = group_count_;
    for (const auto &agg : aggregates_) {
      if (!agg.sticky) {
        agg.function.finalize(state_buffer.data() + agg.state_offset,
                              out.column(result_col), out_count);
      }
      result_col++;
    }
    out_count++;
    if (out_count == kVectorSize) {
      out.SetCount(out_count);
      SSAGG_RETURN_NOT_OK(output.Sink(out, *out_local));
      out.Reset();
      out_count = 0;
    }
    return Status::OK();
  };

  // Copies the group key (and ANY_VALUE results) of the given row into the
  // output at out_count and into current_group for equality checks.
  auto open_group = [&](const MergeSource &src) {
    const_data_ptr_t row = src.rows[src.pos];
    std::memcpy(current_group.data(), row, run_layout_.RowWidth());
    current_heap.Reset();
    // Re-own string keys: the source batch arena is transient.
    for (idx_t c : run_layout_.VarSizeColumns()) {
      if (c >= group_count_ || !run_layout_.RowIsColumnValid(row, c)) {
        continue;
      }
      string_t s;
      std::memcpy(&s, row + run_layout_.ColumnOffset(c), sizeof(string_t));
      if (!s.IsInlined()) {
        string_t owned = current_heap.Add(s.View());
        std::memcpy(current_group.data() + run_layout_.ColumnOffset(c),
                    &owned, sizeof(string_t));
      }
    }
    std::memset(state_buffer.data(), 0, state_buffer.size());
    // Group key columns -> output.
    for (idx_t g = 0; g < group_count_; g++) {
      Vector &dest = out.column(g);
      const Vector &srcv = src.chunk.column(g);
      if (!srcv.validity().RowIsValid(src.pos)) {
        dest.validity().SetInvalid(out_count);
        std::memset(dest.data() + out_count * dest.width(), 0, dest.width());
      } else if (dest.type() == LogicalTypeId::kVarchar) {
        dest.SetString(out_count, srcv.Values<string_t>()[src.pos].View());
      } else {
        std::memcpy(dest.data() + out_count * dest.width(),
                    srcv.data() + src.pos * dest.width(), dest.width());
      }
    }
    // ANY_VALUE results (first row of the group wins).
    idx_t result_col = group_count_;
    for (const auto &agg : aggregates_) {
      if (agg.sticky) {
        Vector &dest = out.column(result_col);
        const Vector &srcv = src.chunk.column(agg.layout_column);
        if (!srcv.validity().RowIsValid(src.pos)) {
          dest.validity().SetInvalid(out_count);
          std::memset(dest.data() + out_count * dest.width(), 0,
                      dest.width());
        } else if (dest.type() == LogicalTypeId::kVarchar) {
          dest.SetString(out_count, srcv.Values<string_t>()[src.pos].View());
        } else {
          std::memcpy(dest.data() + out_count * dest.width(),
                      srcv.data() + src.pos * dest.width(), dest.width());
        }
      }
      result_col++;
    }
    has_group = true;
  };

  while (!heap.empty() && status.ok()) {
    if (++merged_rows % 16384 == 0) {
      status = executor.CheckDeadline();
      if (!status.ok()) {
        break;
      }
    }
    idx_t si = heap.top();
    heap.pop();
    MergeSource &src = sources[si];
    const_data_ptr_t row = src.rows[src.pos];
    if (!has_group ||
        !LayoutRowsEqual(run_layout_, group_count_, row,
                         current_group.data())) {
      if (has_group) {
        status = close_group();
        if (!status.ok()) {
          break;
        }
      }
      open_group(src);
    }
    // Fold the row into the group states.
    for (idx_t k = 0; k < aggregates_.size(); k++) {
      const auto &agg = aggregates_[k];
      if (agg.sticky) {
        continue;
      }
      data_ptr_t state = state_buffer.data() + agg.state_offset;
      const Vector *arg = aggregate_run_columns_[k] == kInvalidIndex
                              ? nullptr
                              : &src.chunk.column(aggregate_run_columns_[k]);
      idx_t sel = src.pos;
      agg.function.update(arg, &sel, &state, 1);
    }
    // Advance the source.
    src.pos++;
    if (src.pos >= src.rows.size()) {
      auto st = fill(src);
      if (!st.ok()) {
        status = st;
        break;
      }
      if (!src.rows.empty()) {
        src.reader->GatherBatch(src.rows, src.chunk);
        heap.push(si);
      }
    } else {
      heap.push(si);
    }
  }
  if (status.ok() && has_group) {
    status = close_group();
  }
  if (status.ok() && out_count > 0) {
    out.SetCount(out_count);
    status = output.Sink(out, *out_local);
  }
  if (status.ok()) {
    status = output.Combine(*out_local);
  }
  for (auto &src : sources) {
    if (src.reader) {
      (void)src.reader->Remove();
    }
  }
  {
    ScopedLock guard(lock_);
    runs_.clear();
  }
  cleanup();
  merged_rows_ = merged_rows;
  {
    MetricsRegistry &registry = MetricsRegistry::Global();
    registry.Add(registry.KeyId("sort.merge_fan_in"), merge_fan_in_);
    registry.Add(registry.KeyId("sort.merged_rows"), merged_rows);
  }
  return status;
}

}  // namespace ssagg
