#include "common/async_io.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include "observe/metrics.h"
#include "observe/trace.h"
#include "testing/fault_injector.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define SSAGG_HAVE_IO_URING 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define SSAGG_HAVE_IO_URING 0
#endif

namespace ssagg {

const char *IoBackendKindName(IoBackendKind kind) {
  switch (kind) {
    case IoBackendKind::kSync:
      return "sync";
    case IoBackendKind::kThreadPool:
      return "threadpool";
    case IoBackendKind::kIoUring:
      return "io_uring";
  }
  return "unknown";
}

IoBackendKind IoBackendKindFromEnv(const char *env_var) {
  const char *value = std::getenv(env_var);
  if (value == nullptr) {
    return IoBackendKind::kSync;
  }
  if (std::strcmp(value, "threadpool") == 0 ||
      std::strcmp(value, "thread_pool") == 0) {
    return IoBackendKind::kThreadPool;
  }
  if (std::strcmp(value, "io_uring") == 0 || std::strcmp(value, "uring") == 0) {
    return IoBackendKind::kIoUring;
  }
  return IoBackendKind::kSync;
}

bool SpillCompressionFromEnv() {
  const char *value = std::getenv("SSAGG_SPILL_COMPRESSION");
  if (value == nullptr) {
    return false;
  }
  return std::strcmp(value, "1") == 0 || std::strcmp(value, "on") == 0 ||
         std::strcmp(value, "true") == 0;
}

Status AsyncIoBackend::HitSubmitSite() {
  if (FaultInjector *injector =
          fault_injector_.load(std::memory_order_acquire)) {
    return injector->Hit(FaultSite::kAsyncSubmit);
  }
  return Status::OK();
}

Status AsyncIoBackend::HitCompleteSite() {
  if (FaultInjector *injector =
          fault_injector_.load(std::memory_order_acquire)) {
    return injector->Hit(FaultSite::kAsyncComplete);
  }
  return Status::OK();
}

Status AsyncIoBackend::Execute(const IoRequest &request) {
  if (request.kind == IoRequest::Kind::kRead) {
    return request.file->Read(request.buffer, request.bytes, request.offset);
  }
  return request.file->Write(request.buffer, request.bytes, request.offset);
}

namespace {

/// Registry key ids shared by all backends (the registry deduplicates by
/// name, so resolving in each constructor is fine).
struct IoMetricKeys {
  idx_t submitted;
  idx_t completed;
  idx_t submit_failed;
  idx_t depth_integral;  // sum over submits of the in-flight count: divide
                         // by io.async_submitted for the mean queue depth
  idx_t write_latency_hist;  // submit-to-completion, nanoseconds
  idx_t read_latency_hist;

  IoMetricKeys() {
    MetricsRegistry &registry = MetricsRegistry::Global();
    submitted = registry.KeyId("io.async_submitted");
    completed = registry.KeyId("io.async_completed");
    submit_failed = registry.KeyId("io.async_submit_failed");
    depth_integral = registry.KeyId("io.async_depth_integral");
    write_latency_hist = registry.HistogramId("io.spill_write_latency_ns");
    read_latency_hist = registry.HistogramId("io.spill_read_latency_ns");
  }
};

using IoClock = std::chrono::steady_clock;

/// Submit-to-completion latency of one request, into the per-direction
/// histogram. Called on whatever thread completes the request; failed and
/// injected-failure completions are recorded too — a stall is a stall.
void RecordIoLatency(const IoMetricKeys &keys, IoRequest::Kind kind,
                     IoClock::time_point submit_time) {
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                IoClock::now() - submit_time)
                .count();
  MetricsRegistry::Global().Record(kind == IoRequest::Kind::kRead
                                       ? keys.read_latency_hist
                                       : keys.write_latency_hist,
                                   static_cast<uint64_t>(ns));
}

//===----------------------------------------------------------------------===//
// SyncIoBackend
//===----------------------------------------------------------------------===//

/// Executes every request inline on the submitting thread. This is the
/// default backend: it preserves the exact I/O schedule of the pre-async
/// engine, which tier-1 tests and the eviction-policy benches pin down.
class SyncIoBackend final : public AsyncIoBackend {
 public:
  IoCompletionPtr Submit(IoRequest request) override {
    IoClock::time_point submit_time = IoClock::now();
    auto completion = std::make_shared<IoCompletion>();
    MetricsRegistry::Global().Add(keys_.submitted, 1);
    Status status = HitSubmitSite();
    if (status.ok() && request.prepare) {
      status = request.prepare(request);
    }
    if (status.ok()) {
      status = Execute(request);
      if (status.ok()) {
        status = HitCompleteSite();
      }
    } else {
      MetricsRegistry::Global().Add(keys_.submit_failed, 1);
    }
    MetricsRegistry::Global().Add(keys_.completed, 1);
    RecordIoLatency(keys_, request.kind, submit_time);
    if (request.on_complete) {
      request.on_complete(status);
    }
    completion->Complete(std::move(status));
    return completion;
  }

  void Drain() override {}

  [[nodiscard]] IoBackendKind kind() const override {
    return IoBackendKind::kSync;
  }

 private:
  IoMetricKeys keys_;
};

//===----------------------------------------------------------------------===//
// ThreadPoolIoBackend
//===----------------------------------------------------------------------===//

/// A small pool of writeback threads draining a FIFO of requests. The
/// portable async backend: works against any FileHandle (including the
/// fault-injecting decorator) because workers go through the virtual
/// Read/Write path.
class ThreadPoolIoBackend final : public AsyncIoBackend {
 public:
  explicit ThreadPoolIoBackend(idx_t threads) {
    threads = std::max<idx_t>(threads, 1);
    workers_.reserve(threads);
    for (idx_t i = 0; i < threads; i++) {
      workers_.emplace_back([this]() { WorkerLoop(); });
    }
  }

  ~ThreadPoolIoBackend() override {
    Drain();
    {
      ScopedLock guard(lock_);
      shutdown_ = true;
    }
    work_cv_.NotifyAll();
    for (auto &worker : workers_) {
      worker.join();
    }
  }

  IoCompletionPtr Submit(IoRequest request) override {
    IoClock::time_point submit_time = IoClock::now();
    auto completion = std::make_shared<IoCompletion>();
    MetricsRegistry &registry = MetricsRegistry::Global();
    registry.Add(keys_.submitted, 1);
    registry.Add(keys_.depth_integral,
                 in_flight_.load(std::memory_order_relaxed));
    Status injected = HitSubmitSite();
    if (!injected.ok()) {
      // Fail fast on the submitting thread: the request never reaches the
      // queue, mirroring a kernel submission error.
      registry.Add(keys_.submit_failed, 1);
      registry.Add(keys_.completed, 1);
      RecordIoLatency(keys_, request.kind, submit_time);
      if (request.on_complete) {
        request.on_complete(injected);
      }
      completion->Complete(std::move(injected));
      return completion;
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    {
      ScopedLock guard(lock_);
      queue_.push_back(Item{std::move(request), completion, submit_time});
    }
    work_cv_.NotifyOne();
    return completion;
  }

  void Drain() override {
    ScopedLock guard(lock_);
    drain_cv_.Wait(lock_, [this]() SSAGG_REQUIRES(lock_) {
      return queue_.empty() && active_ == 0;
    });
  }

  [[nodiscard]] IoBackendKind kind() const override {
    return IoBackendKind::kThreadPool;
  }

 private:
  struct Item {
    IoRequest request;
    IoCompletionPtr completion;
    IoClock::time_point submit_time;
  };

  void WorkerLoop() {
    while (true) {
      Item item;
      {
        ScopedLock guard(lock_);
        work_cv_.Wait(lock_, [this]() SSAGG_REQUIRES(lock_) {
          return shutdown_ || !queue_.empty();
        });
        if (queue_.empty()) {
          return;  // shutdown with nothing left to do
        }
        item = std::move(queue_.front());
        queue_.pop_front();
        active_++;
      }
      Status status;
      if (item.request.prepare) {
        status = item.request.prepare(item.request);
      }
      if (status.ok()) {
        TraceSpan span("io.async_execute", "io", item.request.bytes);
        status = Execute(item.request);
      }
      if (status.ok()) {
        status = HitCompleteSite();
      }
      MetricsRegistry::Global().Add(keys_.completed, 1);
      RecordIoLatency(keys_, item.request.kind, item.submit_time);
      if (item.request.on_complete) {
        item.request.on_complete(status);
      }
      item.completion->Complete(std::move(status));
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      bool idle;
      {
        ScopedLock guard(lock_);
        active_--;
        idle = queue_.empty() && active_ == 0;
      }
      if (idle) {
        drain_cv_.NotifyAll();
      }
    }
  }

  IoMetricKeys keys_;
  Mutex lock_;
  CondVar work_cv_;
  CondVar drain_cv_;
  std::deque<Item> queue_ SSAGG_GUARDED_BY(lock_);
  idx_t active_ SSAGG_GUARDED_BY(lock_) = 0;
  bool shutdown_ SSAGG_GUARDED_BY(lock_) = false;
  std::vector<std::thread> workers_;
};

//===----------------------------------------------------------------------===//
// IoUringBackend (Linux, raw syscalls — no liburing dependency)
//===----------------------------------------------------------------------===//

#if SSAGG_HAVE_IO_URING

int SysIoUringSetup(unsigned entries, struct io_uring_params *params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

/// io_uring-backed executor. Submission fills an SQE under a lock and enters
/// the kernel immediately; a single reaper thread blocks for completions and
/// finishes requests. Handles without a raw descriptor (decorators) and
/// overflow past the CQ capacity are executed inline — the contract (Submit
/// may complete synchronously) already allows it.
class IoUringBackend final : public AsyncIoBackend {
 public:
  /// Builds the ring; on any setup failure ok() is false and the factory
  /// falls back to the thread pool. cpu_bound requests (codec work riding
  /// the executor) bypass the ring for a small worker pool: the ring's
  /// single reaper must never run a compression pass while completions
  /// queue up behind it.
  explicit IoUringBackend(idx_t helper_threads)
      : helper_(std::make_unique<ThreadPoolIoBackend>(helper_threads)) {
    std::memset(&params_, 0, sizeof(params_));
    ring_fd_ = SysIoUringSetup(kQueueDepth, &params_);
    if (ring_fd_ < 0) {
      return;
    }
    size_t sq_size = params_.sq_off.array + params_.sq_entries * sizeof(__u32);
    size_t cq_size =
        params_.cq_off.cqes + params_.cq_entries * sizeof(io_uring_cqe);
    if (params_.features & IORING_FEAT_SINGLE_MMAP) {
      sq_size = std::max(sq_size, cq_size);
      cq_size = sq_size;
    }
    sq_ring_ = ::mmap(nullptr, sq_size, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      Close();
      return;
    }
    sq_ring_size_ = sq_size;
    if (params_.features & IORING_FEAT_SINGLE_MMAP) {
      cq_ring_ = sq_ring_;
    } else {
      cq_ring_ =
          ::mmap(nullptr, cq_size, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        cq_ring_ = nullptr;
        Close();
        return;
      }
      cq_ring_size_ = cq_size;
    }
    sqes_size_ = params_.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe *>(
        ::mmap(nullptr, sqes_size_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      Close();
      return;
    }
    auto *sq = static_cast<uint8_t *>(sq_ring_);
    sq_head_ = reinterpret_cast<unsigned *>(sq + params_.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned *>(sq + params_.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned *>(sq + params_.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned *>(sq + params_.sq_off.array);
    auto *cq = static_cast<uint8_t *>(cq_ring_);
    cq_head_ = reinterpret_cast<unsigned *>(cq + params_.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned *>(cq + params_.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned *>(cq + params_.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe *>(cq + params_.cq_off.cqes);
    ok_ = true;
    reaper_ = std::thread([this]() { ReaperLoop(); });
  }

  ~IoUringBackend() override {
    if (ok_) {
      Drain();
      // Wake the reaper with a NOP carrying the stop sentinel.
      SubmitSqe(IORING_OP_NOP, -1, nullptr, 0, 0, kStopSentinel);
      reaper_.join();
    }
    Close();
  }

  [[nodiscard]] bool ok() const { return ok_; }

  IoCompletionPtr Submit(IoRequest request) override {
    if (request.prepare || request.cpu_bound) {
      // Codec work rides the helper pool end to end (prepare, transfer via
      // the virtual path, completion) so it parallelizes across workers
      // instead of serializing on the reaper. The helper hits the fault
      // sites itself — exactly once per request, like the ring path.
      return helper_->Submit(std::move(request));
    }
    IoClock::time_point submit_time = IoClock::now();
    auto completion = std::make_shared<IoCompletion>();
    MetricsRegistry &registry = MetricsRegistry::Global();
    registry.Add(keys_.submitted, 1);
    registry.Add(keys_.depth_integral,
                 in_flight_.load(std::memory_order_relaxed));
    Status injected = HitSubmitSite();
    if (!injected.ok()) {
      registry.Add(keys_.submit_failed, 1);
      registry.Add(keys_.completed, 1);
      RecordIoLatency(keys_, request.kind, submit_time);
      if (request.on_complete) {
        request.on_complete(injected);
      }
      completion->Complete(std::move(injected));
      return completion;
    }
    int fd = request.file->RawFd();
    if (fd < 0 ||
        in_flight_.load(std::memory_order_relaxed) >= kMaxInFlight) {
      // Decorated handle (no kernel descriptor) or CQ nearly full: execute
      // inline through the virtual path.
      CompleteInline(request, completion, submit_time);
      return completion;
    }
    auto *op = new Op{std::move(request), completion, submit_time};
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    uint8_t opcode = op->request.kind == IoRequest::Kind::kRead
                         ? IORING_OP_READ
                         : IORING_OP_WRITE;
    if (!SubmitSqe(opcode, fd, op->request.buffer, op->request.bytes,
                   op->request.offset, reinterpret_cast<uint64_t>(op))) {
      // Kernel rejected the submission; fall back to inline execution.
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      IoRequest req = std::move(op->request);
      delete op;
      CompleteInline(req, completion, submit_time);
    }
    return completion;
  }

  void Drain() override {
    helper_->Drain();
    ScopedLock guard(drain_lock_);
    drain_cv_.Wait(drain_lock_, [this]() SSAGG_REQUIRES(drain_lock_) {
      return in_flight_.load(std::memory_order_acquire) == 0;
    });
  }

  void SetFaultInjector(FaultInjector *injector) override {
    AsyncIoBackend::SetFaultInjector(injector);
    helper_->SetFaultInjector(injector);
  }

  [[nodiscard]] IoBackendKind kind() const override {
    return IoBackendKind::kIoUring;
  }

 private:
  static constexpr unsigned kQueueDepth = 64;
  /// Leave CQ headroom (cq_entries defaults to 2 * sq_entries).
  static constexpr idx_t kMaxInFlight = 2 * kQueueDepth - 8;
  static constexpr uint64_t kStopSentinel = ~uint64_t(0);

  struct Op {
    IoRequest request;
    IoCompletionPtr completion;
    IoClock::time_point submit_time;
  };

  void CompleteInline(IoRequest &request, const IoCompletionPtr &completion,
                      IoClock::time_point submit_time) {
    Status status = Execute(request);
    if (status.ok()) {
      status = HitCompleteSite();
    }
    MetricsRegistry::Global().Add(keys_.completed, 1);
    RecordIoLatency(keys_, request.kind, submit_time);
    if (request.on_complete) {
      request.on_complete(status);
    }
    completion->Complete(std::move(status));
  }

  /// Queues one SQE and submits it to the kernel. Returns false if the
  /// kernel rejected it.
  bool SubmitSqe(uint8_t opcode, int fd, void *addr, idx_t len, idx_t offset,
                 uint64_t user_data) {
    ScopedLock guard(sq_lock_);
    unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    unsigned tail = *sq_tail_;
    if (tail - head >= params_.sq_entries) {
      // Cannot happen in practice: each SQE is consumed by the enter call
      // below before the lock is released. Treated as a rejection.
      return false;
    }
    unsigned index = tail & sq_mask_;
    io_uring_sqe &sqe = sqes_[index];
    std::memset(&sqe, 0, sizeof(sqe));
    sqe.opcode = opcode;
    sqe.fd = fd;
    sqe.addr = reinterpret_cast<uint64_t>(addr);
    sqe.len = static_cast<uint32_t>(len);
    sqe.off = offset;
    sqe.user_data = user_data;
    sq_array_[index] = index;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    int ret = SysIoUringEnter(ring_fd_, 1, 0, 0);
    return ret >= 0;
  }

  void ReaperLoop() {
    while (true) {
      unsigned head = __atomic_load_n(cq_head_, __ATOMIC_ACQUIRE);
      unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      if (head == tail) {
        int ret = SysIoUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
        if (ret < 0 && errno != EINTR && errno != EAGAIN && errno != EBUSY) {
          return;  // ring is broken; outstanding waits would hang anyway
        }
        continue;
      }
      bool stop = false;
      while (head != tail) {
        io_uring_cqe cqe = cqes_[head & cq_mask_];
        head++;
        __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
        if (cqe.user_data == kStopSentinel) {
          stop = true;
          continue;
        }
        FinishOp(reinterpret_cast<Op *>(cqe.user_data), cqe.res);
      }
      if (stop) {
        return;
      }
    }
  }

  void FinishOp(Op *op, int32_t res) {
    // Pairs with the submitter's SubmitSqe critical section. The CQE's
    // arrival proves the submission happened first, but that ordering runs
    // through the kernel's ring, which TSan cannot see; passing once
    // through the same lock makes the op's field writes visible to this
    // thread in a way the race detector can verify too.
    { ScopedLock guard(sq_lock_); }
    Status status;
    if (res < 0) {
      status = Status::IOError(std::string("io_uring ") +
                               (op->request.kind == IoRequest::Kind::kRead
                                    ? "read"
                                    : "write") +
                               " failed: " + std::strerror(-res) + " (" +
                               op->request.file->path() + ")");
    } else if (static_cast<idx_t>(res) < op->request.bytes) {
      // Short transfer: finish the remainder through the virtual path.
      TraceSpan span("io.async_execute", "io", op->request.bytes);
      IoRequest rest = op->request;
      rest.buffer = static_cast<uint8_t *>(rest.buffer) + res;
      rest.bytes -= static_cast<idx_t>(res);
      rest.offset += static_cast<idx_t>(res);
      status = Execute(rest);
    }
    if (status.ok()) {
      status = HitCompleteSite();
    }
    MetricsRegistry::Global().Add(keys_.completed, 1);
    RecordIoLatency(keys_, op->request.kind, op->submit_time);
    if (op->request.on_complete) {
      op->request.on_complete(status);
    }
    op->completion->Complete(std::move(status));
    delete op;
    if (in_flight_.fetch_sub(1, std::memory_order_release) == 1) {
      // Take the drain lock (empty critical section) so the decrement cannot
      // slot between a drainer's predicate check and its sleep.
      { ScopedLock guard(drain_lock_); }
      drain_cv_.NotifyAll();
    }
  }

  void Close() {
    if (sqes_ != nullptr) {
      ::munmap(sqes_, sqes_size_);
      sqes_ = nullptr;
    }
    if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_size_);
    }
    cq_ring_ = nullptr;
    if (sq_ring_ != nullptr && sq_ring_ != MAP_FAILED) {
      ::munmap(sq_ring_, sq_ring_size_);
      sq_ring_ = nullptr;
    }
    if (ring_fd_ >= 0) {
      ::close(ring_fd_);
      ring_fd_ = -1;
    }
  }

  IoMetricKeys keys_;
  struct io_uring_params params_;
  int ring_fd_ = -1;
  bool ok_ = false;

  void *sq_ring_ = nullptr;
  size_t sq_ring_size_ = 0;
  void *cq_ring_ = nullptr;
  size_t cq_ring_size_ = 0;
  io_uring_sqe *sqes_ = nullptr;
  size_t sqes_size_ = 0;
  unsigned *sq_head_ = nullptr;
  unsigned *sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned *sq_array_ = nullptr;
  unsigned *cq_head_ = nullptr;
  unsigned *cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe *cqes_ = nullptr;

  /// Serializes SQE construction and submission.
  Mutex sq_lock_;
  /// Only pairs the drain condition with its wait; in_flight_ is atomic.
  Mutex drain_lock_;
  CondVar drain_cv_;
  std::thread reaper_;
  /// Executes cpu_bound requests (codec passes) off the reaper.
  std::unique_ptr<ThreadPoolIoBackend> helper_;
};

#endif  // SSAGG_HAVE_IO_URING

}  // namespace

std::unique_ptr<AsyncIoBackend> CreateIoBackend(IoBackendKind kind,
                                                idx_t io_threads) {
#if SSAGG_HAVE_IO_URING
  if (kind == IoBackendKind::kIoUring) {
    auto uring = std::make_unique<IoUringBackend>(io_threads);
    if (uring->ok()) {
      return uring;
    }
    kind = IoBackendKind::kThreadPool;  // kernel lacks io_uring
  }
#else
  if (kind == IoBackendKind::kIoUring) {
    kind = IoBackendKind::kThreadPool;
  }
#endif
  if (kind == IoBackendKind::kThreadPool) {
    return std::make_unique<ThreadPoolIoBackend>(io_threads);
  }
  return std::make_unique<SyncIoBackend>();
}

}  // namespace ssagg
