#ifndef SSAGG_COMMON_VALIDITY_MASK_H_
#define SSAGG_COMMON_VALIDITY_MASK_H_

#include <vector>

#include "common/constants.h"

namespace ssagg {

/// Bit mask tracking NULL-ness of values in a vector. A set bit means the
/// value is valid (non-NULL). The all-valid state is represented without
/// allocating the bit array.
class ValidityMask {
 public:
  ValidityMask() = default;

  bool AllValid() const { return bits_.empty(); }

  bool RowIsValid(idx_t row) const {
    idx_t word = row >> 6;
    if (word >= bits_.size()) {
      return true;  // rows beyond the materialized words are valid
    }
    return (bits_[word] >> (row & 63)) & 1;
  }

  void SetInvalid(idx_t row) {
    EnsureCapacity(row + 1);
    bits_[row >> 6] &= ~(1ULL << (row & 63));
  }

  void SetValid(idx_t row) {
    if (AllValid()) {
      return;  // already valid
    }
    if ((row >> 6) < bits_.size()) {
      bits_[row >> 6] |= 1ULL << (row & 63);
    }
  }

  void Reset() { bits_.clear(); }

  void CopyFrom(const ValidityMask &other) { bits_ = other.bits_; }

  /// Number of valid rows among the first count rows.
  idx_t CountValid(idx_t count) const {
    if (AllValid()) {
      return count;
    }
    idx_t valid = 0;
    for (idx_t i = 0; i < count; i++) {
      valid += RowIsValid(i) ? 1 : 0;
    }
    return valid;
  }

 private:
  void EnsureCapacity(idx_t rows) {
    idx_t words = (rows + 63) / 64;
    if (bits_.size() < words) {
      // Newly-tracked rows start valid (all bits set).
      bits_.resize(words, ~0ULL);
    }
  }

  std::vector<uint64_t> bits_;
};

}  // namespace ssagg

#endif  // SSAGG_COMMON_VALIDITY_MASK_H_
