#ifndef SSAGG_COMMON_VALUE_H_
#define SSAGG_COMMON_VALUE_H_

#include <string>
#include <variant>

#include "common/status.h"
#include "common/types.h"
#include "common/vector.h"

namespace ssagg {

/// An owned, boxed scalar value. Used at the edges of the engine (result
/// collection, tests, examples) — never on the hot path.
class Value {
 public:
  Value() : type_(LogicalTypeId::kInt64), is_null_(true) {}

  static Value Null(LogicalTypeId type) {
    Value v;
    v.type_ = type;
    v.is_null_ = true;
    return v;
  }
  static Value Int32(int32_t v) {
    return Value(LogicalTypeId::kInt32, static_cast<int64_t>(v));
  }
  static Value Int64(int64_t v) { return Value(LogicalTypeId::kInt64, v); }
  static Value Double(double v) { return Value(LogicalTypeId::kDouble, v); }
  static Value String(std::string v) {
    Value value;
    value.type_ = LogicalTypeId::kVarchar;
    value.is_null_ = false;
    value.data_ = std::move(v);
    return value;
  }

  /// Boxes row `row` of `vec`.
  static Value FromVector(const Vector &vec, idx_t row) {
    if (!vec.validity().RowIsValid(row)) {
      return Null(vec.type());
    }
    switch (vec.type()) {
      case LogicalTypeId::kBoolean:
        return Value(vec.type(),
                     static_cast<int64_t>(vec.GetValue<uint8_t>(row)));
      case LogicalTypeId::kInt32:
      case LogicalTypeId::kDate:
        return Value(vec.type(),
                     static_cast<int64_t>(vec.GetValue<int32_t>(row)));
      case LogicalTypeId::kInt64:
        return Value(vec.type(), vec.GetValue<int64_t>(row));
      case LogicalTypeId::kDouble:
        return Value(vec.type(), vec.GetValue<double>(row));
      case LogicalTypeId::kVarchar:
        return String(vec.GetString(row).ToString());
    }
    return Value();
  }

  LogicalTypeId type() const { return type_; }
  bool IsNull() const { return is_null_; }

  int64_t GetInt64() const { return std::get<int64_t>(data_); }
  double GetDouble() const { return std::get<double>(data_); }
  const std::string &GetString() const { return std::get<std::string>(data_); }

  std::string ToString() const {
    if (is_null_) {
      return "NULL";
    }
    switch (type_) {
      case LogicalTypeId::kDouble:
        return std::to_string(GetDouble());
      case LogicalTypeId::kVarchar:
        return GetString();
      default:
        return std::to_string(GetInt64());
    }
  }

  bool operator==(const Value &other) const {
    return type_ == other.type_ && is_null_ == other.is_null_ &&
           (is_null_ || data_ == other.data_);
  }

 private:
  Value(LogicalTypeId type, int64_t v) : type_(type), is_null_(false) {
    data_ = v;
  }
  Value(LogicalTypeId type, double v) : type_(type), is_null_(false) {
    data_ = v;
  }

  LogicalTypeId type_;
  bool is_null_;
  std::variant<int64_t, double, std::string> data_;
};

}  // namespace ssagg

#endif  // SSAGG_COMMON_VALUE_H_
