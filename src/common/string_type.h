#ifndef SSAGG_COMMON_STRING_TYPE_H_
#define SSAGG_COMMON_STRING_TYPE_H_

#include <cstring>
#include <string>
#include <string_view>

#include "common/constants.h"
#include "common/status.h"

namespace ssagg {

/// 16-byte string header as proposed by Umbra and used by DuckDB
/// (paper Section IV, "Variable-Size Row"):
///   - bytes 0..3   : length
///   - strings of <= 12 characters are inlined in bytes 4..15
///   - longer strings store a 4-byte prefix in bytes 4..7 and a pointer to
///     the character data in bytes 8..15
///
/// The pointer of a non-inlined string may reference a buffer-managed heap
/// page; when that page is spilled and reloaded at a different address the
/// pointer is recomputed in place (Section IV, "Pointer Recomputation").
struct string_t {
  static constexpr uint32_t kInlineLength = 12;
  static constexpr uint32_t kPrefixLength = 4;

  string_t() {
    value.inlined.length = 0;
    std::memset(value.inlined.inlined, 0, kInlineLength);
  }

  /// Construct from existing character data. For strings longer than the
  /// inline threshold the data pointer is referenced, NOT copied; the caller
  /// must guarantee the data outlives the string_t (e.g., heap page).
  string_t(const char *data, uint32_t len) {
    value.inlined.length = len;
    if (IsInlined()) {
      std::memset(value.inlined.inlined, 0, kInlineLength);
      if (len > 0) {
        std::memcpy(value.inlined.inlined, data, len);
      }
    } else {
      std::memcpy(value.pointer.prefix, data, kPrefixLength);
      value.pointer.ptr = const_cast<char *>(data);
    }
  }

  explicit string_t(std::string_view view)
      : string_t(view.data(), static_cast<uint32_t>(view.size())) {}

  uint32_t size() const { return value.inlined.length; }
  bool IsInlined() const { return size() <= kInlineLength; }

  /// Pointer to the character data (inline or out-of-line).
  const char *data() const {
    return IsInlined() ? value.inlined.inlined : value.pointer.ptr;
  }

  /// Mutable pointer to the out-of-line data pointer; only valid when not
  /// inlined. Used by pointer recomputation after a heap page moved.
  char *&PointerRef() {
    SSAGG_DASSERT(!IsInlined());
    return value.pointer.ptr;
  }
  const char *Pointer() const {
    SSAGG_DASSERT(!IsInlined());
    return value.pointer.ptr;
  }
  void SetPointer(char *ptr) {
    SSAGG_DASSERT(!IsInlined());
    value.pointer.ptr = ptr;
  }

  std::string_view View() const { return {data(), size()}; }
  std::string ToString() const { return std::string(data(), size()); }

  bool operator==(const string_t &other) const {
    if (size() != other.size()) {
      return false;
    }
    // Compare length+prefix (first 8 bytes) before touching the pointer; for
    // inlined strings this covers the first bytes directly.
    if (std::memcmp(this, &other, 8) != 0) {
      return false;
    }
    return std::memcmp(data(), other.data(), size()) == 0;
  }
  bool operator!=(const string_t &other) const { return !(*this == other); }

  bool operator<(const string_t &other) const {
    return View() < other.View();
  }

  union {
    struct {
      uint32_t length;
      char prefix[4];
      char *ptr;
    } pointer;
    struct {
      uint32_t length;
      char inlined[12];
    } inlined;
  } value;
};

static_assert(sizeof(string_t) == 16, "string_t must be 16 bytes");

}  // namespace ssagg

#endif  // SSAGG_COMMON_STRING_TYPE_H_
