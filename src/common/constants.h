#ifndef SSAGG_COMMON_CONSTANTS_H_
#define SSAGG_COMMON_CONSTANTS_H_

#include <cstdint>
#include <cstddef>

namespace ssagg {

/// Fixed page size used for both persistent and paged temporary data.
/// The paper (Section III) uses 2^18 = 262,144 bytes (256 KiB), chosen for
/// OLAP workloads; having one size for persistent and temporary pages lets
/// the buffer manager reuse evicted buffers across the two kinds.
constexpr uint64_t kPageSize = 1ULL << 18;

/// Alignment of page allocations. 4096 keeps pages O_DIRECT-compatible and
/// cacheline-friendly.
constexpr uint64_t kPageAlignment = 4096;

/// Number of tuples in one vectorized batch (DuckDB-style vector size).
/// Section V: "Data is scanned from morsels in batches of up to 2,048 tuples."
constexpr uint64_t kVectorSize = 2048;

/// Number of tuples in one morsel handed to a worker thread. DuckDB uses
/// 122,880 (= 60 vectors); we keep the same value.
constexpr uint64_t kMorselSize = 60 * kVectorSize;

/// Capacity of the fixed-size thread-local pre-aggregation hash table
/// (Section V: 2^17 = 131,072 entries).
constexpr uint64_t kPhase1HashTableCapacity = 1ULL << 17;

/// The thread-local hash table is reset once it is two-thirds full
/// (Section V, "RAM-Oblivious": threshold experimentally determined).
constexpr double kHashTableResetFillRatio = 2.0 / 3.0;

/// Invalid block / file identifiers.
constexpr uint64_t kInvalidBlockId = ~0ULL;
constexpr uint64_t kInvalidIndex = ~0ULL;

using idx_t = uint64_t;
using data_t = uint8_t;
using data_ptr_t = uint8_t *;
using const_data_ptr_t = const uint8_t *;
using hash_t = uint64_t;
using block_id_t = uint64_t;

}  // namespace ssagg

#endif  // SSAGG_COMMON_CONSTANTS_H_
