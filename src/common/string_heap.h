#ifndef SSAGG_COMMON_STRING_HEAP_H_
#define SSAGG_COMMON_STRING_HEAP_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/constants.h"
#include "common/string_type.h"

namespace ssagg {

/// Arena for the character data of transient vector strings (e.g., produced
/// by the data generator or by decompressing a persistent column). This is
/// plain process memory: vectors are short-lived and never spilled. Long-lived
/// (operator-materialized) strings live on buffer-managed heap pages instead
/// (see layout/tuple_data_collection.h).
class StringHeap {
 public:
  StringHeap() = default;
  StringHeap(const StringHeap &) = delete;
  StringHeap &operator=(const StringHeap &) = delete;
  StringHeap(StringHeap &&) = default;
  StringHeap &operator=(StringHeap &&) = default;

  /// Copies the given characters into the arena and returns a string_t
  /// referencing them (or an inlined string if short enough).
  string_t Add(std::string_view str) {
    auto len = static_cast<uint32_t>(str.size());
    if (len <= string_t::kInlineLength) {
      return string_t(str.data(), len);
    }
    char *dest = Allocate(len);
    std::memcpy(dest, str.data(), len);
    return string_t(dest, len);
  }

  /// Allocates uninitialized space for a non-inlined string.
  char *Allocate(idx_t len) {
    if (blocks_.empty() || used_ + len > blocks_.back().size) {
      idx_t block_size = std::max<idx_t>(len, kBlockSize);
      blocks_.push_back({std::make_unique<char[]>(block_size), block_size});
      used_ = 0;
    }
    char *result = blocks_.back().data.get() + used_;
    used_ += len;
    return result;
  }

  void Reset() {
    blocks_.clear();
    used_ = 0;
  }

  idx_t SizeInBytes() const {
    idx_t total = 0;
    for (auto &block : blocks_) {
      total += block.size;
    }
    return total;
  }

 private:
  static constexpr idx_t kBlockSize = 4096;

  struct Block {
    std::unique_ptr<char[]> data;
    idx_t size;
  };

  std::vector<Block> blocks_;
  idx_t used_ = 0;
};

}  // namespace ssagg

#endif  // SSAGG_COMMON_STRING_HEAP_H_
