#ifndef SSAGG_COMMON_HASH_H_
#define SSAGG_COMMON_HASH_H_

#include "common/constants.h"
#include "common/string_type.h"
#include "common/vector.h"

namespace ssagg {

/// Murmur3 64-bit finalizer; used as the scalar hash for integer keys.
inline hash_t HashUint64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Hash of raw bytes (FNV-1a body + murmur finalizer). Used for strings.
inline hash_t HashBytes(const char *data, idx_t len) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (idx_t i = 0; i < len; i++) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return HashUint64(h);
}

inline hash_t HashString(const string_t &str) {
  return HashBytes(str.data(), str.size());
}

/// Combines an additional column's hash into an existing row hash.
inline hash_t CombineHash(hash_t a, hash_t b) {
  return a * 0x9e3779b97f4a7c15ULL + b;
}

/// Computes per-row hashes for the first `count` rows of `input` into
/// `hashes`. NULL values hash to a fixed constant.
void VectorHash(const Vector &input, idx_t count, hash_t *hashes);

/// Combines per-row hashes of `input` into the existing `hashes` array.
void VectorHashCombine(const Vector &input, idx_t count, hash_t *hashes);

/// Hashes all `columns` of the chunk row-wise into `hashes`.
void ChunkHash(const DataChunk &chunk, const std::vector<idx_t> &columns,
               hash_t *hashes);

}  // namespace ssagg

#endif  // SSAGG_COMMON_HASH_H_
