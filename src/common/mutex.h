#ifndef SSAGG_COMMON_MUTEX_H_
#define SSAGG_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Thread-safety annotations + annotated synchronization primitives.
///
/// Every mutex in the tree is an ssagg::Mutex / ssagg::SharedMutex, and every
/// field a mutex protects is marked SSAGG_GUARDED_BY(that_mutex), so Clang's
/// capability analysis (-Wthread-safety, enabled by the
/// SSAGG_THREAD_SAFETY_ANALYSIS CMake option) turns locking-discipline
/// violations into compile errors. Under compilers without the analysis
/// (GCC) the attributes expand to nothing and the wrappers are plain
/// std::mutex / std::shared_mutex / std::condition_variable_any.
///
/// Discipline (enforced by scripts/lint.sh):
///   - no raw std::mutex / std::lock_guard / std::unique_lock outside this
///     header — use Mutex + ScopedLock (or SharedMutex + Shared/Exclusive
///     scoped locks);
///   - private helpers that a caller must invoke with a lock held are named
///     *Locked() and annotated SSAGG_REQUIRES(lock_);
///   - SSAGG_NO_THREAD_SAFETY_ANALYSIS is only allowed with an adjacent
///     "// SAFETY:" comment justifying why the analysis cannot see the
///     invariant (e.g. exclusive access in a destructor).
///
/// The lock hierarchy (which mutex may be held while acquiring which) is
/// documented in DESIGN.md section 9.

#if defined(__clang__)
#define SSAGG_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SSAGG_THREAD_ANNOTATION__(x)
#endif

/// Declares a type to be a capability ("mutex") the analysis tracks.
#define SSAGG_CAPABILITY(x) SSAGG_THREAD_ANNOTATION__(capability(x))
/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SSAGG_SCOPED_CAPABILITY SSAGG_THREAD_ANNOTATION__(scoped_lockable)

/// The annotated field may only be accessed while `x` is held.
#define SSAGG_GUARDED_BY(x) SSAGG_THREAD_ANNOTATION__(guarded_by(x))
/// The pointee of the annotated pointer may only be accessed while `x` is
/// held (the pointer itself is not protected).
#define SSAGG_PT_GUARDED_BY(x) SSAGG_THREAD_ANNOTATION__(pt_guarded_by(x))

/// The caller must hold the listed capabilities (exclusively) on entry; the
/// function does not release them.
#define SSAGG_REQUIRES(...) \
  SSAGG_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define SSAGG_REQUIRES_SHARED(...) \
  SSAGG_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the listed capabilities.
#define SSAGG_ACQUIRE(...) \
  SSAGG_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define SSAGG_ACQUIRE_SHARED(...) \
  SSAGG_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define SSAGG_RELEASE(...) \
  SSAGG_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define SSAGG_RELEASE_SHARED(...) \
  SSAGG_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define SSAGG_TRY_ACQUIRE(...) \
  SSAGG_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define SSAGG_TRY_ACQUIRE_SHARED(...) \
  SSAGG_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (deadlock prevention for
/// non-reentrant locks).
#define SSAGG_EXCLUDES(...) SSAGG_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Lock-ordering declarations.
#define SSAGG_ACQUIRED_BEFORE(...) \
  SSAGG_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define SSAGG_ACQUIRED_AFTER(...) \
  SSAGG_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Runtime assertion that the capability is held (trusted by the analysis).
#define SSAGG_ASSERT_CAPABILITY(x) \
  SSAGG_THREAD_ANNOTATION__(assert_capability(x))
/// The function returns a reference to the given capability.
#define SSAGG_RETURN_CAPABILITY(x) SSAGG_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function is not analyzed. Every use MUST carry an
/// adjacent "// SAFETY:" comment explaining the invariant the analysis
/// cannot see; scripts/lint.sh rejects bare uses.
#define SSAGG_NO_THREAD_SAFETY_ANALYSIS \
  SSAGG_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace ssagg {

/// Annotated drop-in replacement for std::mutex. Also satisfies the standard
/// BasicLockable / Lockable named requirements, so it works with CondVar
/// (std::condition_variable_any) below.
class SSAGG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() SSAGG_ACQUIRE() { mu_.lock(); }
  void unlock() SSAGG_RELEASE() { mu_.unlock(); }
  bool try_lock() SSAGG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated drop-in replacement for std::shared_mutex.
class SSAGG_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex &) = delete;
  SharedMutex &operator=(const SharedMutex &) = delete;

  void lock() SSAGG_ACQUIRE() { mu_.lock(); }
  void unlock() SSAGG_RELEASE() { mu_.unlock(); }
  bool try_lock() SSAGG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock_shared() SSAGG_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() SSAGG_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() SSAGG_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// Annotated replacement for std::lock_guard / std::unique_lock over a
/// Mutex. Follows the reference scoped-capability shape from the Clang
/// thread-safety documentation: plain construction locks, std::adopt_lock
/// adopts an already-held mutex, std::try_to_lock tries (check owns_lock()).
class SSAGG_SCOPED_CAPABILITY ScopedLock {
 public:
  explicit ScopedLock(Mutex &mu) SSAGG_ACQUIRE(mu) : mu_(mu), owns_(true) {
    mu_.lock();
  }
  /// Adopts a mutex the caller already holds (e.g. after a successful
  /// bare try_lock()); the destructor releases it.
  ScopedLock(Mutex &mu, std::adopt_lock_t) SSAGG_REQUIRES(mu)
      : mu_(mu), owns_(true) {}
  /// Tries to acquire; check owns_lock() before touching guarded state.
  ScopedLock(Mutex &mu, std::try_to_lock_t) SSAGG_TRY_ACQUIRE(true, mu)
      : mu_(mu), owns_(mu.try_lock()) {}

  ~ScopedLock() SSAGG_RELEASE() {
    if (owns_) {
      mu_.unlock();
    }
  }

  ScopedLock(const ScopedLock &) = delete;
  ScopedLock &operator=(const ScopedLock &) = delete;

  [[nodiscard]] bool owns_lock() const { return owns_; }

  /// Releases the mutex before the end of the scope (e.g. before a blocking
  /// call that must not run under the lock).
  void Unlock() SSAGG_RELEASE() {
    mu_.unlock();
    owns_ = false;
  }

 private:
  friend class CondVar;
  Mutex &mu_;
  bool owns_;
};

/// Exclusive scoped lock over a SharedMutex (writer side).
class SSAGG_SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex &mu) SSAGG_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~ExclusiveLock() SSAGG_RELEASE() { mu_.unlock(); }

  ExclusiveLock(const ExclusiveLock &) = delete;
  ExclusiveLock &operator=(const ExclusiveLock &) = delete;

 private:
  SharedMutex &mu_;
};

/// Shared scoped lock over a SharedMutex (reader side).
class SSAGG_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex &mu) SSAGG_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SharedLock() SSAGG_RELEASE_SHARED() { mu_.unlock_shared(); }

  SharedLock(const SharedLock &) = delete;
  SharedLock &operator=(const SharedLock &) = delete;

 private:
  SharedMutex &mu_;
};

/// Annotated condition variable over ssagg::Mutex. Wait takes the Mutex the
/// caller holds; the analysis sees the capability as continuously held
/// across the wait (matching how guarded state may be re-checked after
/// wakeup, under the reacquired lock).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar &) = delete;
  CondVar &operator=(const CondVar &) = delete;

  void Wait(Mutex &mu) SSAGG_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Predicate>
  void Wait(Mutex &mu, Predicate stop_waiting) SSAGG_REQUIRES(mu) {
    cv_.wait(mu, std::move(stop_waiting));
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex &mu,
                         const std::chrono::duration<Rep, Period> &timeout)
      SSAGG_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex &mu, const std::chrono::duration<Rep, Period> &timeout,
               Predicate stop_waiting) SSAGG_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout, std::move(stop_waiting));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace ssagg

#endif  // SSAGG_COMMON_MUTEX_H_
