#ifndef SSAGG_COMMON_FILE_SYSTEM_H_
#define SSAGG_COMMON_FILE_SYSTEM_H_

#include <memory>
#include <string>

#include "common/constants.h"
#include "common/status.h"

namespace ssagg {

/// Open flags for FileSystem::Open.
struct FileOpenFlags {
  bool read = true;
  bool write = false;
  bool create = false;
  bool truncate = false;
};

/// A positional-I/O file handle (POSIX pread/pwrite semantics). Thread-safe
/// for concurrent reads/writes at disjoint offsets, as required by the
/// temporary file manager and the block manager. Abstract so that decorators
/// (e.g. the fault-injecting file system in src/testing/) can interpose on
/// every I/O call.
class FileHandle {
 public:
  explicit FileHandle(std::string path) : path_(std::move(path)) {}
  virtual ~FileHandle() = default;

  FileHandle(const FileHandle &) = delete;
  FileHandle &operator=(const FileHandle &) = delete;

  virtual Status Read(void *buffer, idx_t bytes, idx_t offset) = 0;
  virtual Status Write(const void *buffer, idx_t bytes, idx_t offset) = 0;
  virtual Status Sync() = 0;
  virtual Status Truncate(idx_t size) = 0;
  virtual Result<idx_t> FileSize() = 0;
  /// Underlying OS descriptor, or -1 when there is none (decorated handles,
  /// in-memory handles). Async backends that talk to the kernel directly
  /// (io_uring) use it; a negative value makes them fall back to the
  /// virtual Read/Write path so decorators keep seeing every operation.
  virtual int RawFd() const { return -1; }
  const std::string &path() const { return path_; }

 protected:
  std::string path_;
};

/// Minimal file system abstraction. Every layer that performs file I/O
/// (buffer manager, temporary file manager, block manager, run serializer)
/// takes a FileSystem& instead of calling POSIX directly, so tests can
/// substitute a decorator that injects deterministic faults.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual Result<std::unique_ptr<FileHandle>> Open(const std::string &path,
                                                   FileOpenFlags flags) = 0;
  virtual Status RemoveFile(const std::string &path) = 0;
  virtual bool FileExists(const std::string &path) = 0;
  virtual Status CreateDirectories(const std::string &path) = 0;
  virtual Result<idx_t> GetFileSize(const std::string &path) = 0;

  /// The process-wide local (POSIX) file system.
  static FileSystem &Default();
};

/// A "<pid>_<n>" token, unique across processes and across calls within a
/// process. Embed it in temporary-file names: spill directories are
/// routinely shared (several operators or buffer managers in one process,
/// concurrent test processes on one temp dir), and a colliding name lets
/// one owner truncate or overwrite another's live data.
std::string ProcessUniqueToken();

/// Direct POSIX implementation.
class LocalFileSystem : public FileSystem {
 public:
  Result<std::unique_ptr<FileHandle>> Open(const std::string &path,
                                           FileOpenFlags flags) override;
  Status RemoveFile(const std::string &path) override;
  bool FileExists(const std::string &path) override;
  Status CreateDirectories(const std::string &path) override;
  Result<idx_t> GetFileSize(const std::string &path) override;
};

}  // namespace ssagg

#endif  // SSAGG_COMMON_FILE_SYSTEM_H_
