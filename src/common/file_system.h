#ifndef SSAGG_COMMON_FILE_SYSTEM_H_
#define SSAGG_COMMON_FILE_SYSTEM_H_

#include <memory>
#include <string>

#include "common/constants.h"
#include "common/status.h"

namespace ssagg {

/// Open flags for FileSystem::Open.
struct FileOpenFlags {
  bool read = true;
  bool write = false;
  bool create = false;
  bool truncate = false;
};

/// A positional-I/O file handle (POSIX pread/pwrite). Thread-safe for
/// concurrent reads/writes at disjoint offsets, as required by the temporary
/// file manager and the block manager.
class FileHandle {
 public:
  FileHandle(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~FileHandle();

  FileHandle(const FileHandle &) = delete;
  FileHandle &operator=(const FileHandle &) = delete;

  Status Read(void *buffer, idx_t bytes, idx_t offset);
  Status Write(const void *buffer, idx_t bytes, idx_t offset);
  Status Sync();
  Status Truncate(idx_t size);
  Result<idx_t> FileSize();
  const std::string &path() const { return path_; }

 private:
  int fd_;
  std::string path_;
};

/// Minimal file system abstraction over POSIX.
class FileSystem {
 public:
  static Result<std::unique_ptr<FileHandle>> Open(const std::string &path,
                                                  FileOpenFlags flags);
  static Status RemoveFile(const std::string &path);
  static bool FileExists(const std::string &path);
  static Status CreateDirectories(const std::string &path);
  static Result<idx_t> GetFileSize(const std::string &path);
};

}  // namespace ssagg

#endif  // SSAGG_COMMON_FILE_SYSTEM_H_
