#include "common/status.h"

namespace ssagg {

namespace {
const char *CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result = CodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

void AssertionFailed(const char *expr, const char *file, int line) {
  std::fprintf(stderr, "ssagg assertion failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

}  // namespace ssagg
