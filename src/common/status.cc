#include "common/status.h"

#include "observe/log.h"

namespace ssagg {

namespace {
const char *CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result = CodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

void AssertionFailed(const char *expr, const char *file, int line) {
  // An assertion must be heard even when SSAGG_LOG_LEVEL silences the
  // logger; fall back to raw stderr in that case.
  if (LogEnabled(LogLevel::kError)) {
    SSAGG_LOG_ERROR("assertion failed: %s at %s:%d", expr, file, line);
  } else {
    std::fprintf(stderr, "ssagg assertion failed: %s at %s:%d\n", expr, file,
                 line);
  }
  std::abort();
}

}  // namespace ssagg
