#include "common/file_system.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ssagg {

namespace {
std::string ErrnoMessage(const std::string &context) {
  return context + ": " + std::strerror(errno);
}
}  // namespace

FileHandle::~FileHandle() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status FileHandle::Read(void *buffer, idx_t bytes, idx_t offset) {
  auto *dest = static_cast<uint8_t *>(buffer);
  idx_t total = 0;
  while (total < bytes) {
    ssize_t n = ::pread(fd_, dest + total, bytes - total,
                        static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IOError(ErrnoMessage("pread " + path_));
    }
    if (n == 0) {
      return Status::IOError("unexpected EOF reading " + path_);
    }
    total += static_cast<idx_t>(n);
  }
  return Status::OK();
}

Status FileHandle::Write(const void *buffer, idx_t bytes, idx_t offset) {
  const auto *src = static_cast<const uint8_t *>(buffer);
  idx_t total = 0;
  while (total < bytes) {
    ssize_t n = ::pwrite(fd_, src + total, bytes - total,
                         static_cast<off_t>(offset + total));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IOError(ErrnoMessage("pwrite " + path_));
    }
    total += static_cast<idx_t>(n);
  }
  return Status::OK();
}

Status FileHandle::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(ErrnoMessage("fdatasync " + path_));
  }
  return Status::OK();
}

Status FileHandle::Truncate(idx_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError(ErrnoMessage("ftruncate " + path_));
  }
  return Status::OK();
}

Result<idx_t> FileHandle::FileSize() {
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError(ErrnoMessage("fstat " + path_));
  }
  return static_cast<idx_t>(st.st_size);
}

Result<std::unique_ptr<FileHandle>> FileSystem::Open(const std::string &path,
                                                     FileOpenFlags flags) {
  int oflags = 0;
  if (flags.read && flags.write) {
    oflags = O_RDWR;
  } else if (flags.write) {
    oflags = O_WRONLY;
  } else {
    oflags = O_RDONLY;
  }
  if (flags.create) {
    oflags |= O_CREAT;
  }
  if (flags.truncate) {
    oflags |= O_TRUNC;
  }
  int fd = ::open(path.c_str(), oflags, 0644);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("open " + path));
  }
  return std::make_unique<FileHandle>(fd, path);
}

Status FileSystem::RemoveFile(const std::string &path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("unlink " + path));
  }
  return Status::OK();
}

bool FileSystem::FileExists(const std::string &path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status FileSystem::CreateDirectories(const std::string &path) {
  std::string partial;
  for (idx_t i = 0; i <= path.size(); i++) {
    if (i == path.size() || path[i] == '/') {
      if (!partial.empty() && !FileExists(partial)) {
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
          return Status::IOError(ErrnoMessage("mkdir " + partial));
        }
      }
      if (i < path.size()) {
        partial += '/';
      }
      continue;
    }
    partial += path[i];
  }
  return Status::OK();
}

Result<idx_t> FileSystem::GetFileSize(const std::string &path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError(ErrnoMessage("stat " + path));
  }
  return static_cast<idx_t>(st.st_size);
}

}  // namespace ssagg
