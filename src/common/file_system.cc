#include "common/file_system.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace ssagg {

std::string ProcessUniqueToken() {
  static std::atomic<uint64_t> next_token{0};
  return std::to_string(static_cast<uint64_t>(::getpid())) + "_" +
         std::to_string(next_token.fetch_add(1, std::memory_order_relaxed));
}

namespace {

std::string ErrnoMessage(const std::string &context) {
  return context + ": " + std::strerror(errno);
}

/// POSIX file handle; closes the descriptor on destruction.
class LocalFileHandle : public FileHandle {
 public:
  LocalFileHandle(int fd, std::string path)
      : FileHandle(std::move(path)), fd_(fd) {}
  ~LocalFileHandle() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  Status Read(void *buffer, idx_t bytes, idx_t offset) override {
    auto *dest = static_cast<uint8_t *>(buffer);
    idx_t total = 0;
    while (total < bytes) {
      ssize_t n = ::pread(fd_, dest + total, bytes - total,
                          static_cast<off_t>(offset + total));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Status::IOError(ErrnoMessage("pread " + path_));
      }
      if (n == 0) {
        return Status::IOError("unexpected EOF reading " + path_);
      }
      total += static_cast<idx_t>(n);
    }
    return Status::OK();
  }

  Status Write(const void *buffer, idx_t bytes, idx_t offset) override {
    const auto *src = static_cast<const uint8_t *>(buffer);
    idx_t total = 0;
    while (total < bytes) {
      ssize_t n = ::pwrite(fd_, src + total, bytes - total,
                           static_cast<off_t>(offset + total));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Status::IOError(ErrnoMessage("pwrite " + path_));
      }
      total += static_cast<idx_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fdatasync " + path_));
    }
    return Status::OK();
  }

  Status Truncate(idx_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::IOError(ErrnoMessage("ftruncate " + path_));
    }
    return Status::OK();
  }

  Result<idx_t> FileSize() override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IOError(ErrnoMessage("fstat " + path_));
    }
    return static_cast<idx_t>(st.st_size);
  }

  int RawFd() const override { return fd_; }

 private:
  int fd_;
};

}  // namespace

FileSystem &FileSystem::Default() {
  static LocalFileSystem local;
  return local;
}

Result<std::unique_ptr<FileHandle>> LocalFileSystem::Open(
    const std::string &path, FileOpenFlags flags) {
  int oflags = 0;
  if (flags.read && flags.write) {
    oflags = O_RDWR;
  } else if (flags.write) {
    oflags = O_WRONLY;
  } else {
    oflags = O_RDONLY;
  }
  if (flags.create) {
    oflags |= O_CREAT;
  }
  if (flags.truncate) {
    oflags |= O_TRUNC;
  }
  int fd = ::open(path.c_str(), oflags, 0644);
  if (fd < 0) {
    return Status::IOError(ErrnoMessage("open " + path));
  }
  return std::unique_ptr<FileHandle>(new LocalFileHandle(fd, path));
}

Status LocalFileSystem::RemoveFile(const std::string &path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(ErrnoMessage("unlink " + path));
  }
  return Status::OK();
}

bool LocalFileSystem::FileExists(const std::string &path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status LocalFileSystem::CreateDirectories(const std::string &path) {
  std::string partial;
  for (idx_t i = 0; i <= path.size(); i++) {
    if (i == path.size() || path[i] == '/') {
      if (!partial.empty() && !FileExists(partial)) {
        if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
          return Status::IOError(ErrnoMessage("mkdir " + partial));
        }
      }
      if (i < path.size()) {
        partial += '/';
      }
      continue;
    }
    partial += path[i];
  }
  return Status::OK();
}

Result<idx_t> LocalFileSystem::GetFileSize(const std::string &path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError(ErrnoMessage("stat " + path));
  }
  return static_cast<idx_t>(st.st_size);
}

}  // namespace ssagg
