#include "common/types.h"

namespace ssagg {

idx_t TypeWidth(LogicalTypeId type) {
  switch (type) {
    case LogicalTypeId::kBoolean:
      return 1;
    case LogicalTypeId::kInt32:
    case LogicalTypeId::kDate:
      return 4;
    case LogicalTypeId::kInt64:
    case LogicalTypeId::kDouble:
      return 8;
    case LogicalTypeId::kVarchar:
      return 16;
  }
  SSAGG_ASSERT(false);
}

const char *TypeName(LogicalTypeId type) {
  switch (type) {
    case LogicalTypeId::kBoolean:
      return "BOOLEAN";
    case LogicalTypeId::kInt32:
      return "INT32";
    case LogicalTypeId::kInt64:
      return "INT64";
    case LogicalTypeId::kDouble:
      return "DOUBLE";
    case LogicalTypeId::kDate:
      return "DATE";
    case LogicalTypeId::kVarchar:
      return "VARCHAR";
  }
  return "UNKNOWN";
}

idx_t SchemaColumnIndex(const Schema &schema, const std::string &name) {
  for (idx_t i = 0; i < schema.size(); i++) {
    if (schema[i].name == name) {
      return i;
    }
  }
  return kInvalidIndex;
}

}  // namespace ssagg
