#ifndef SSAGG_COMMON_RANDOM_H_
#define SSAGG_COMMON_RANDOM_H_

#include "common/constants.h"

namespace ssagg {

/// Deterministic 64-bit PRNG (splitmix64 seeded xorshift128+). Used by the
/// data generator and property tests so all runs are reproducible.
class RandomEngine {
 public:
  explicit RandomEngine(uint64_t seed) {
    // splitmix64 to initialize both lanes from one seed.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
  }

  uint64_t NextUint64() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform value in [0, bound).
  uint64_t NextRange(uint64_t bound) {
    return bound == 0 ? 0 : NextUint64() % bound;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / (1ULL << 53));
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace ssagg

#endif  // SSAGG_COMMON_RANDOM_H_
