#ifndef SSAGG_COMMON_STATUS_H_
#define SSAGG_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace ssagg {

/// Error categories surfaced through Status. Kept deliberately coarse; the
/// message carries the detail.
enum class StatusCode : uint8_t {
  kOk = 0,
  kOutOfMemory,    // memory limit would be exceeded and nothing can be evicted
  kIOError,        // file system failure
  kInvalidArgument,
  kInternal,       // invariant violation
  kNotImplemented,
  kTimeout,        // used by the benchmark harness
  kAborted,        // query gave up (e.g., in-memory-only baseline past limit)
};

/// Arrow/RocksDB-style status object. Functions that can fail return Status
/// (or Result<T>); exceptions are not used across library boundaries.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  StatusCode code() const { return code_; }
  const std::string &message() const { return message_; }

  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T>: either a value or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}     // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status &status() const { return status_; }
  T &value() { return *value_; }
  const T &value() const { return *value_; }
  T &&MoveValue() { return std::move(*value_); }

 private:
  std::optional<T> value_;
  Status status_;
};

#define SSAGG_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::ssagg::Status _st = (expr);            \
    if (!_st.ok()) {                         \
      return _st;                            \
    }                                        \
  } while (0)

#define SSAGG_CONCAT_INNER(a, b) a##b
#define SSAGG_CONCAT(a, b) SSAGG_CONCAT_INNER(a, b)

#define SSAGG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = tmp.MoveValue();

#define SSAGG_ASSIGN_OR_RETURN(lhs, expr) \
  SSAGG_ASSIGN_OR_RETURN_IMPL(SSAGG_CONCAT(_res_, __LINE__), lhs, expr)

/// Internal invariant check: aborts the process with a message. Used for
/// programming errors, never for runtime conditions (those return Status).
[[noreturn]] void AssertionFailed(const char *expr, const char *file, int line);

#define SSAGG_ASSERT(expr)                                \
  do {                                                    \
    if (!(expr)) {                                        \
      ::ssagg::AssertionFailed(#expr, __FILE__, __LINE__); \
    }                                                     \
  } while (0)

#ifdef NDEBUG
#define SSAGG_DASSERT(expr) ((void)0)
#else
#define SSAGG_DASSERT(expr) SSAGG_ASSERT(expr)
#endif

}  // namespace ssagg

#endif  // SSAGG_COMMON_STATUS_H_
