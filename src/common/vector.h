#ifndef SSAGG_COMMON_VECTOR_H_
#define SSAGG_COMMON_VECTOR_H_

#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "common/constants.h"
#include "common/status.h"
#include "common/string_heap.h"
#include "common/string_type.h"
#include "common/types.h"
#include "common/validity_mask.h"

namespace ssagg {

/// A flat, fixed-capacity (kVectorSize) column of values, the unit of
/// vectorized execution. VARCHAR vectors own a StringHeap for the character
/// data of non-inlined strings written through SetString.
class Vector {
 public:
  explicit Vector(LogicalTypeId type)
      : type_(type),
        width_(TypeWidth(type)),
        data_(new data_t[width_ * kVectorSize]) {}

  Vector(const Vector &) = delete;
  Vector &operator=(const Vector &) = delete;
  Vector(Vector &&) = default;
  Vector &operator=(Vector &&) = default;

  LogicalTypeId type() const { return type_; }
  idx_t width() const { return width_; }

  data_ptr_t data() { return data_.get(); }
  const_data_ptr_t data() const { return data_.get(); }

  template <typename T>
  T *Values() {
    SSAGG_DASSERT(sizeof(T) == width_);
    return reinterpret_cast<T *>(data_.get());
  }
  template <typename T>
  const T *Values() const {
    SSAGG_DASSERT(sizeof(T) == width_);
    return reinterpret_cast<const T *>(data_.get());
  }

  template <typename T>
  T GetValue(idx_t row) const {
    return Values<T>()[row];
  }
  template <typename T>
  void SetValue(idx_t row, T value) {
    Values<T>()[row] = value;
  }

  /// Copies the string into this vector's heap (if non-inlined) and stores
  /// the resulting string_t at the given row.
  void SetString(idx_t row, std::string_view str) {
    SSAGG_DASSERT(type_ == LogicalTypeId::kVarchar);
    Values<string_t>()[row] = heap_.Add(str);
  }

  string_t GetString(idx_t row) const {
    SSAGG_DASSERT(type_ == LogicalTypeId::kVarchar);
    return Values<string_t>()[row];
  }

  ValidityMask &validity() { return validity_; }
  const ValidityMask &validity() const { return validity_; }

  StringHeap &heap() { return heap_; }

  /// Clears validity and releases heap strings; value bytes are left stale.
  void Reset() {
    validity_.Reset();
    heap_.Reset();
  }

 private:
  LogicalTypeId type_;
  idx_t width_;
  std::unique_ptr<data_t[]> data_;
  ValidityMask validity_;
  StringHeap heap_;
};

/// Copies the first `count` values of `src` into `dst` (same type).
/// String values are copied shallowly: they keep referencing `src`'s heap
/// (or the pages `src` points into), so `dst` must not outlive `src`'s
/// backing storage. Used to assemble operator-internal chunks that are
/// consumed immediately.
inline void CopyVectorShallow(const Vector &src, Vector &dst, idx_t count) {
  SSAGG_DASSERT(src.type() == dst.type());
  std::memcpy(dst.data(), src.data(), count * src.width());
  dst.validity().CopyFrom(src.validity());
}

/// A selection vector: an owning, fixed-capacity (kVectorSize) list of row
/// indices, the currency of the vectorized probe pipeline. Operator code
/// partitions a chunk's rows into selections (match candidates, empty-slot
/// rows, collisions) and each subsequent kernel runs over one selection.
/// The raw index array is exposed so selections interoperate with the
/// `const idx_t *sel` convention used by AppendRows and aggregate updates.
class SelectionVector {
 public:
  SelectionVector() : sel_(new idx_t[kVectorSize]), count_(0) {}

  idx_t *data() { return sel_.get(); }
  const idx_t *data() const { return sel_.get(); }
  idx_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  idx_t operator[](idx_t i) const {
    SSAGG_DASSERT(i < count_);
    return sel_[i];
  }

  void Clear() { count_ = 0; }
  void Append(idx_t row) {
    SSAGG_DASSERT(count_ < kVectorSize);
    sel_[count_++] = row;
  }
  /// Sets the count directly (after a kernel wrote indices through data()).
  void SetCount(idx_t count) {
    SSAGG_DASSERT(count <= kVectorSize);
    count_ = count;
  }

  /// Fills with the identity selection [start, start + count).
  void InitRange(idx_t start, idx_t count) {
    SSAGG_DASSERT(count <= kVectorSize);
    for (idx_t i = 0; i < count; i++) {
      sel_[i] = start + i;
    }
    count_ = count;
  }

  void Swap(SelectionVector &other) {
    sel_.swap(other.sel_);
    std::swap(count_, other.count_);
  }

 private:
  std::unique_ptr<idx_t[]> sel_;
  idx_t count_;
};

/// A horizontal batch of vectors sharing one row count (<= kVectorSize).
class DataChunk {
 public:
  DataChunk() = default;

  explicit DataChunk(const std::vector<LogicalTypeId> &types) {
    Initialize(types);
  }

  void Initialize(const std::vector<LogicalTypeId> &types) {
    columns_.clear();
    columns_.reserve(types.size());
    for (auto type : types) {
      columns_.emplace_back(type);
    }
    count_ = 0;
  }

  idx_t ColumnCount() const { return columns_.size(); }
  idx_t size() const { return count_; }
  void SetCount(idx_t count) {
    SSAGG_DASSERT(count <= kVectorSize);
    count_ = count;
  }

  Vector &column(idx_t i) { return columns_[i]; }
  const Vector &column(idx_t i) const { return columns_[i]; }

  std::vector<LogicalTypeId> Types() const {
    std::vector<LogicalTypeId> types;
    types.reserve(columns_.size());
    for (auto &col : columns_) {
      types.push_back(col.type());
    }
    return types;
  }

  void Reset() {
    for (auto &col : columns_) {
      col.Reset();
    }
    count_ = 0;
  }

 private:
  std::vector<Vector> columns_;
  idx_t count_ = 0;
};

}  // namespace ssagg

#endif  // SSAGG_COMMON_VECTOR_H_
