#ifndef SSAGG_COMMON_TYPES_H_
#define SSAGG_COMMON_TYPES_H_

#include <string>
#include <vector>

#include "common/constants.h"
#include "common/status.h"

namespace ssagg {

/// Logical column types supported by the engine. This set covers the TPC-H
/// lineitem schema used by the paper's grouping benchmark.
enum class LogicalTypeId : uint8_t {
  kBoolean,
  kInt32,
  kInt64,
  kDouble,
  kDate,     // days since epoch, stored as int32
  kVarchar,  // 16-byte string_t, heap-backed when longer than 12 chars
};

/// Physical width in bytes of a value of the given type inside vectors and
/// row layouts. VARCHAR is the 16-byte Umbra-style string header.
idx_t TypeWidth(LogicalTypeId type);

/// True if values of this type reference out-of-row (heap) data.
inline bool TypeIsVarSize(LogicalTypeId type) {
  return type == LogicalTypeId::kVarchar;
}

inline bool TypeIsNumeric(LogicalTypeId type) {
  return type == LogicalTypeId::kInt32 || type == LogicalTypeId::kInt64 ||
         type == LogicalTypeId::kDouble || type == LogicalTypeId::kDate;
}

const char *TypeName(LogicalTypeId type);

/// A named, typed column in a schema.
struct ColumnDefinition {
  std::string name;
  LogicalTypeId type;
};

using Schema = std::vector<ColumnDefinition>;

/// Returns the index of the named column, or kInvalidIndex.
idx_t SchemaColumnIndex(const Schema &schema, const std::string &name);

}  // namespace ssagg

#endif  // SSAGG_COMMON_TYPES_H_
