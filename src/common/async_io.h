#ifndef SSAGG_COMMON_ASYNC_IO_H_
#define SSAGG_COMMON_ASYNC_IO_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/constants.h"
#include "common/file_system.h"
#include "common/mutex.h"
#include "common/status.h"

namespace ssagg {

class FaultInjector;

/// How spill I/O is executed (paper Section VII: keeping the pipeline busy
/// while blocks stream to and from storage; cf. TPIE-style background I/O).
///   kSync:       every Submit executes inline on the calling thread — the
///                pre-async behaviour, and the semantics tier-1 tests pin.
///   kThreadPool: Submits enqueue to a small writeback pool; callers overlap
///                several I/Os and Wait() for the ones they need.
///   kIoUring:    same contract on Linux io_uring (raw syscalls, no liburing
///                dependency); falls back to kThreadPool when the kernel
///                lacks io_uring support.
enum class IoBackendKind : uint8_t { kSync = 0, kThreadPool, kIoUring };

const char *IoBackendKindName(IoBackendKind kind);

/// Parses "sync" | "threadpool" | "io_uring" (or "uring"); anything else
/// (including unset) yields the default, kSync: async backends are opt-in so
/// the engine's eviction schedule stays bit-identical unless asked.
IoBackendKind IoBackendKindFromEnv(const char *env_var = "SSAGG_IO_BACKEND");

/// Reads SSAGG_SPILL_COMPRESSION ("1"/"on"/"true" enable); default off.
bool SpillCompressionFromEnv();

/// Completion future of one submitted I/O. Wait() blocks until the
/// operation finished and returns its Status; both are idempotent.
class IoCompletion {
 public:
  Status Wait() {
    ScopedLock guard(lock_);
    cv_.Wait(lock_, [this]() SSAGG_REQUIRES(lock_) { return done_; });
    return status_;
  }

  bool done() const {
    ScopedLock guard(lock_);
    return done_;
  }

  void Complete(Status status) {
    {
      ScopedLock guard(lock_);
      SSAGG_DASSERT(!done_);
      status_ = std::move(status);
      done_ = true;
    }
    cv_.NotifyAll();
  }

 private:
  mutable Mutex lock_;
  CondVar cv_;
  bool done_ SSAGG_GUARDED_BY(lock_) = false;
  Status status_ SSAGG_GUARDED_BY(lock_);
};

using IoCompletionPtr = std::shared_ptr<IoCompletion>;

/// One positional read or write against an open FileHandle. The buffer and
/// the handle must stay valid until the completion fires; Wait() (or
/// Drain()) establishes the necessary happens-before edge.
struct IoRequest {
  enum class Kind : uint8_t { kRead, kWrite };

  Kind kind = Kind::kWrite;
  FileHandle *file = nullptr;
  void *buffer = nullptr;  // const-cast for writes; backends never mutate it
  idx_t bytes = 0;
  idx_t offset = 0;
  /// Optional: runs on the completing thread right before the completion is
  /// signalled. Must not block on other submitted I/O (deadlock on the
  /// single reaper) and must not throw. Used by BufferManager prefetch to
  /// publish a loaded block without a waiter.
  std::function<void(const Status &)> on_complete;
  /// Optional: runs on the executing thread immediately before the transfer
  /// and may rewrite buffer/bytes (e.g. compress a page into a staging area
  /// it owns). An error completes the request without touching the file.
  /// This is how codec work rides the I/O executor instead of the submitter:
  /// async backends overlap compression across their workers.
  std::function<Status(IoRequest &)> prepare;
  /// Hints that prepare/on_complete carry real CPU work (a codec pass).
  /// Backends whose completion path is a shared reaper (io_uring) route such
  /// requests to worker threads instead, so one slow completion cannot stall
  /// every other in-flight request.
  bool cpu_bound = false;
};

/// Asynchronous I/O executor for the spill path. Thread-safe. All
/// implementations preserve one contract: Submit never blocks on prior
/// requests (the sync backend "completes" inline instead), every request's
/// completion fires exactly once, and Drain() returns only after all
/// previously submitted requests have completed.
class AsyncIoBackend {
 public:
  virtual ~AsyncIoBackend() = default;

  virtual IoCompletionPtr Submit(IoRequest request) = 0;
  /// Blocks until every previously submitted request has completed. New
  /// submissions during Drain are the caller's race to lose.
  virtual void Drain() = 0;
  [[nodiscard]] virtual IoBackendKind kind() const = 0;

  /// Requests currently submitted but not yet completed (approximate for
  /// monitoring; exact when the caller has quiesced).
  [[nodiscard]] idx_t InFlight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  /// Consulted on every Submit (FaultSite::kAsyncSubmit, failing the request
  /// before any I/O) and every completion (FaultSite::kAsyncComplete,
  /// turning a successful I/O into an error after the fact). Not owned.
  /// Virtual: composed backends (io_uring with its cpu_bound helper pool)
  /// forward the injector to their inner executors.
  virtual void SetFaultInjector(FaultInjector *injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }
  [[nodiscard]] FaultInjector *fault_injector() const {
    return fault_injector_.load(std::memory_order_acquire);
  }

 protected:
  /// Fault-site hooks shared by all implementations; return the injected
  /// error, or OK.
  Status HitSubmitSite();
  Status HitCompleteSite();
  /// Executes the request synchronously on the calling thread (the shared
  /// slow path: sync backend, and fallbacks inside async backends).
  static Status Execute(const IoRequest &request);

  std::atomic<idx_t> in_flight_{0};
  std::atomic<FaultInjector *> fault_injector_{nullptr};
};

/// Creates a backend of the requested kind. kIoUring probes the kernel at
/// construction and silently degrades to kThreadPool (and kThreadPool to
/// kSync if threads cannot start) — callers check kind() when they care.
std::unique_ptr<AsyncIoBackend> CreateIoBackend(IoBackendKind kind,
                                                idx_t io_threads = 4);

}  // namespace ssagg

#endif  // SSAGG_COMMON_ASYNC_IO_H_
