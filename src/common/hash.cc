#include "common/hash.h"

namespace ssagg {

namespace {

constexpr hash_t kNullHash = 0xbf58476d1ce4e5b9ULL;

template <typename T>
void HashTypedLoop(const Vector &input, idx_t count, hash_t *hashes,
                   bool combine) {
  const T *values = input.Values<T>();
  const auto &validity = input.validity();
  for (idx_t i = 0; i < count; i++) {
    hash_t h;
    if (!validity.RowIsValid(i)) {
      h = kNullHash;
    } else if constexpr (std::is_same_v<T, string_t>) {
      h = HashString(values[i]);
    } else {
      uint64_t bits = 0;
      std::memcpy(&bits, &values[i], sizeof(T));
      h = HashUint64(bits);
    }
    hashes[i] = combine ? CombineHash(hashes[i], h) : h;
  }
}

void HashDispatch(const Vector &input, idx_t count, hash_t *hashes,
                  bool combine) {
  switch (input.type()) {
    case LogicalTypeId::kBoolean:
      HashTypedLoop<uint8_t>(input, count, hashes, combine);
      break;
    case LogicalTypeId::kInt32:
    case LogicalTypeId::kDate:
      HashTypedLoop<int32_t>(input, count, hashes, combine);
      break;
    case LogicalTypeId::kInt64:
      HashTypedLoop<int64_t>(input, count, hashes, combine);
      break;
    case LogicalTypeId::kDouble:
      HashTypedLoop<double>(input, count, hashes, combine);
      break;
    case LogicalTypeId::kVarchar:
      HashTypedLoop<string_t>(input, count, hashes, combine);
      break;
    default:
      // A type missing from this switch would silently leave `hashes`
      // uninitialized and aggregate garbage; fail loudly instead.
      SSAGG_ASSERT(!"HashDispatch: unhandled LogicalTypeId");
  }
}

}  // namespace

void VectorHash(const Vector &input, idx_t count, hash_t *hashes) {
  HashDispatch(input, count, hashes, /*combine=*/false);
}

void VectorHashCombine(const Vector &input, idx_t count, hash_t *hashes) {
  HashDispatch(input, count, hashes, /*combine=*/true);
}

void ChunkHash(const DataChunk &chunk, const std::vector<idx_t> &columns,
               hash_t *hashes) {
  SSAGG_ASSERT(!columns.empty());
  VectorHash(chunk.column(columns[0]), chunk.size(), hashes);
  for (idx_t c = 1; c < columns.size(); c++) {
    VectorHashCombine(chunk.column(columns[c]), chunk.size(), hashes);
  }
}

}  // namespace ssagg
