#ifndef SSAGG_SSAGG_H_
#define SSAGG_SSAGG_H_

/// Umbrella header for the ssagg library: robust external hash aggregation
/// on a unified buffer manager with a spillable page layout, after
/// Kuiper, Boncz & Mühleisen, "Robust External Hash Aggregation in the
/// Solid State Age" (ICDE 2024).
///
/// Typical usage (see examples/quickstart.cc):
///
///   BufferManager bm(temp_dir, memory_limit);
///   TaskExecutor executor(num_threads);
///   RangeSource source(types, rows, filler);           // or a DataTable scan
///   MaterializedCollector results;
///   auto stats = RunGroupedAggregation(
///       bm, source, /*group columns=*/{0},
///       {{AggregateKind::kSum, 1}}, results, executor);

#include "baselines/baselines.h"
#include "buffer/buffer_manager.h"
#include "buffer/file_block_manager.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "common/value.h"
#include "common/vector.h"
#include "compression/codec.h"
#include "core/aggregate_function.h"
#include "core/aggregate_planner.h"
#include "core/grouped_aggregate_hash_table.h"
#include "core/physical_hash_aggregate.h"
#include "core/physical_hash_join.h"
#include "core/run_aggregation.h"
#include "core/ungrouped_aggregate.h"
#include "execution/collectors.h"
#include "execution/range_source.h"
#include "execution/task_executor.h"
#include "layout/partitioned_tuple_data.h"
#include "layout/tuple_data_collection.h"
#include "observe/flight_recorder.h"
#include "observe/json.h"
#include "observe/log.h"
#include "observe/metrics.h"
#include "observe/profile.h"
#include "observe/progress.h"
#include "observe/trace.h"
#include "sort/external_sort_aggregate.h"
#include "storage/data_table.h"
#include "tpch/lineitem.h"

#endif  // SSAGG_SSAGG_H_
