#ifndef SSAGG_LAYOUT_TUPLE_DATA_COLLECTION_H_
#define SSAGG_LAYOUT_TUPLE_DATA_COLLECTION_H_

#include <unordered_map>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/vector.h"
#include "layout/tuple_data_layout.h"

namespace ssagg {

/// Pins accumulated while appending to a TupleDataCollection. Keeping the
/// pins in the state (rather than per call) is what makes hash-table
/// pointers into the rows stable: the aggregation operator holds one append
/// state per thread and releases it when the thread-local hash table is
/// reset, after which the pages become eviction candidates (Section V,
/// "RAM-Oblivious").
struct TupleDataAppendState {
  std::unordered_map<idx_t, BufferHandle> row_pins;
  std::unordered_map<idx_t, BufferHandle> heap_pins;

  void Release() {
    row_pins.clear();
    heap_pins.clear();
  }
};

/// Pins every page of a collection for random access (see
/// TupleDataCollection::PinAllRows).
struct TupleDataPinnedState {
  std::vector<BufferHandle> pins;
  void Release() { pins.clear(); }
};

/// Cursor over a TupleDataCollection. Pins one row page (and the heap pages
/// its rows reference) at a time; gathered string data is copied into the
/// output chunk so it stays valid after the pins move on.
struct TupleDataScanState {
  idx_t page_idx = 0;
  idx_t row_idx = 0;
  BufferHandle row_pin;
  std::vector<BufferHandle> heap_pins;
  /// Destroy pages once the scan has passed them (frees memory or
  /// temp-file space eagerly).
  bool destroy_after_scan = false;
  /// For destroy_after_scan: heap page index -> last row page referencing
  /// it; a heap page is destroyed once the scan passes that row page.
  std::vector<idx_t> heap_last_user;
};

/// Row-major, buffer-managed tuple storage implementing the paper's page
/// layout (Section IV):
///   - fixed-size rows on fixed-size (kPageSize) pages;
///   - variable-size (string) data on separate heap pages, referenced from
///     the rows with explicit pointers;
///   - per-row-range metadata records which heap page a range's strings
///     live on and the page's base address when the pointers were written,
///     so pointers can be recomputed in place after a spill/reload —
///     without any (de)serialization;
///   - pages are allocated from the unified buffer manager, so spilling is
///     entirely the buffer manager's business: the collection never writes
///     a file itself.
class TupleDataCollection {
 public:
  TupleDataCollection(BufferManager &buffer_manager,
                      const TupleDataLayout &layout)
      : buffer_manager_(buffer_manager), layout_(layout) {}

  TupleDataCollection(const TupleDataCollection &) = delete;
  TupleDataCollection &operator=(const TupleDataCollection &) = delete;
  TupleDataCollection(TupleDataCollection &&) = default;

  /// Destroys pages explicitly (rather than just dropping the handles):
  /// DestroyBlock waits out in-flight prefetches, so by the time the
  /// collection is gone, no read-ahead still holds memory or temp slots.
  ~TupleDataCollection() { Reset(); }

  const TupleDataLayout &layout() const { return layout_; }
  idx_t Count() const { return count_; }
  idx_t RowPageCount() const { return row_pages_.size(); }
  idx_t HeapPageCount() const { return heap_pages_.size(); }
  /// Bytes occupied by rows and heap data (whether in memory or spilled).
  idx_t SizeInBytes() const;

  /// Appends `count` rows taken from `input` (row indices given by `sel`,
  /// or 0..count-1 if sel is null). The first layout.ColumnCount() columns
  /// of `input` are materialized; the aggregate-state area is
  /// zero-initialized. Row addresses are returned in `row_ptrs_out`
  /// (indexed by position in sel). The addresses stay valid while `state`
  /// holds its pins.
  Status AppendRows(TupleDataAppendState &state, const DataChunk &input,
                    const idx_t *sel, idx_t count, data_ptr_t *row_ptrs_out);

  /// Initializes a scan. If destroy_after_scan is set, pages are destroyed
  /// as soon as the scan moves past them.
  void InitScan(TupleDataScanState &state, bool destroy_after_scan = false);

  /// Best-effort asynchronous read-ahead of the first `pages` row pages
  /// (and their heap pages) before a scan, warming spilled data while the
  /// caller sets up. A no-op with the sync backend or when memory is tight.
  void PrefetchForScan(idx_t pages);

  /// Gathers up to kVectorSize rows into `out` (which must match the layout
  /// column types). If `row_ptrs_out` is non-null it receives the address
  /// of each gathered row (valid until the next Scan call on this state).
  /// Returns false when the collection is exhausted.
  Result<bool> Scan(TupleDataScanState &state, DataChunk &out,
                    data_ptr_t *row_ptrs_out = nullptr);

  /// Moves all pages of `other` into this collection. `other` becomes
  /// empty. Layouts must be identical. Append states of either collection
  /// must have been released.
  void Combine(TupleDataCollection &other);

  /// Destroys all pages, releasing memory and temporary-file space.
  void Reset();

  /// Unpins everything and verifies per-page row counts; test helper.
  idx_t ComputedRowCount() const;

  /// Calls fn(row_ptr) for every row, pinning pages through `state` so the
  /// addresses stay valid until the state releases its pins. Heap pointers
  /// inside the rows are NOT recomputed (callers that only touch fixed-size
  /// columns, like a pointer-table rebuild, don't need them); use
  /// PinAllRows when string columns will be read.
  template <typename Fn>
  Status VisitRows(TupleDataAppendState &state, Fn &&fn) {
    const idx_t row_width = layout_.RowWidth();
    for (idx_t p = 0; p < row_pages_.size(); p++) {
      SSAGG_ASSIGN_OR_RETURN(data_ptr_t base, GetRowPagePtr(state, p));
      for (idx_t i = 0; i < row_pages_[p].count; i++) {
        fn(base + i * row_width);
      }
    }
    return Status::OK();
  }

  /// Pins ALL row and heap pages and recomputes stale string pointers, then
  /// calls fn(row_ptr) for every row. The rows (including their string
  /// data) stay valid for random access — e.g. as a join build side — until
  /// `state` releases its pins. Requires the whole collection to fit in
  /// memory at once.
  template <typename Fn>
  Status PinAllRows(TupleDataPinnedState &state, Fn &&fn) {
    const idx_t row_width = layout_.RowWidth();
    for (idx_t p = 0; p < row_pages_.size(); p++) {
      BufferHandle row_pin;
      SSAGG_RETURN_NOT_OK(PinPageWithHeap(p, row_pin, state.pins));
      data_ptr_t base = row_pin.Ptr();
      state.pins.push_back(std::move(row_pin));
      for (idx_t i = 0; i < row_pages_[p].count; i++) {
        fn(base + i * row_width);
      }
    }
    return Status::OK();
  }

 private:
  /// Tracks which heap page a contiguous range of a row page's rows keeps
  /// its string data on, plus the heap page's base address at write time
  /// (left-hand side of the paper's Figure 2).
  struct HeapRef {
    idx_t heap_idx;
    uint64_t old_base;
    idx_t row_begin;
    idx_t row_end;  // exclusive
  };

  struct RowPage {
    std::shared_ptr<BlockHandle> block;
    idx_t count = 0;
    std::vector<HeapRef> heap_refs;
  };

  struct HeapPage {
    std::shared_ptr<BlockHandle> block;
    idx_t used = 0;
    idx_t size = 0;
  };

  /// Returns a pointer to the start of the row page, pinning it through
  /// `state` if not already pinned there.
  Result<data_ptr_t> GetRowPagePtr(TupleDataAppendState &state, idx_t idx);
  Result<data_ptr_t> GetHeapPagePtr(TupleDataAppendState &state, idx_t idx);

  Status NewRowPage(TupleDataAppendState &state);
  Status NewHeapPage(TupleDataAppendState &state, idx_t min_size);

  /// Heap bytes the given input row needs (total length of its non-inlined
  /// strings).
  idx_t ComputeRowHeapSize(const DataChunk &input, idx_t row) const;

  /// Unpins the current scan page, optionally destroying it (and any heap
  /// pages whose last user it was), and advances the cursor.
  void FinishScanPage(TupleDataScanState &state);

  /// Pins row page `page_idx` for scanning: pins the heap pages referenced
  /// by the page's HeapRefs and recomputes the row's string pointers if a
  /// heap page was reloaded at a different address (Section IV, "Pointer
  /// Recomputation": new = stored - old_base + new_base; done lazily and in
  /// place).
  Status PinPageForScan(TupleDataScanState &state);

  /// Pins one row page and the heap pages its rows reference, recomputing
  /// stale string pointers; heap pins are appended to `heap_pins`.
  Status PinPageWithHeap(idx_t page_idx, BufferHandle &row_pin,
                         std::vector<BufferHandle> &heap_pins);

  /// Gathers rows [row_idx, row_idx + count) of the pinned page into out.
  void GatherRows(const RowPage &page, data_ptr_t page_base, idx_t row_idx,
                  idx_t count, DataChunk &out, data_ptr_t *row_ptrs_out);

  BufferManager &buffer_manager_;
  TupleDataLayout layout_;
  std::vector<RowPage> row_pages_;
  std::vector<HeapPage> heap_pages_;
  idx_t count_ = 0;
  idx_t heap_bytes_ = 0;
  /// Index of the row/heap page currently being filled (kInvalidIndex if a
  /// fresh page is needed).
  idx_t current_row_page_ = kInvalidIndex;
  idx_t current_heap_page_ = kInvalidIndex;
};

}  // namespace ssagg

#endif  // SSAGG_LAYOUT_TUPLE_DATA_COLLECTION_H_
