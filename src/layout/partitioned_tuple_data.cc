#include "layout/partitioned_tuple_data.h"

namespace ssagg {

Status PartitionedTupleData::Append(const DataChunk &input,
                                    const hash_t *hashes, const idx_t *sel,
                                    idx_t count, data_ptr_t *row_ptrs_out) {
  const idx_t npart = partitions_.size();
  if (npart == 1) {
    return partitions_[0]->AppendRows(states_[0], input, sel, count,
                                      row_ptrs_out);
  }
  scratch_sel_.resize(count);
  scratch_pos_.resize(count);
  scratch_ptrs_.resize(count);

  // Counting sort of the selected rows by partition. The histogram arrays
  // are members: this sits on the hash table's batched-insert hot path and
  // must not allocate per call.
  scratch_counts_.assign(npart, 0);
  auto &counts = scratch_counts_;
  for (idx_t i = 0; i < count; i++) {
    idx_t r = sel ? sel[i] : i;
    counts[RadixPartition(hashes[r], radix_bits_)]++;
  }
  scratch_offsets_.resize(npart);
  auto &offsets = scratch_offsets_;
  idx_t running = 0;
  for (idx_t p = 0; p < npart; p++) {
    offsets[p] = running;
    running += counts[p];
  }
  scratch_cursor_ = offsets;
  auto &cursor = scratch_cursor_;
  for (idx_t i = 0; i < count; i++) {
    idx_t r = sel ? sel[i] : i;
    idx_t p = RadixPartition(hashes[r], radix_bits_);
    scratch_sel_[cursor[p]] = r;
    scratch_pos_[cursor[p]] = i;  // original position, for scatter-back
    cursor[p]++;
  }
  for (idx_t p = 0; p < npart; p++) {
    if (counts[p] == 0) {
      continue;
    }
    SSAGG_RETURN_NOT_OK(partitions_[p]->AppendRows(
        states_[p], input, scratch_sel_.data() + offsets[p], counts[p],
        scratch_ptrs_.data() + offsets[p]));
  }
  if (row_ptrs_out) {
    for (idx_t i = 0; i < count; i++) {
      row_ptrs_out[scratch_pos_[i]] = scratch_ptrs_[i];
    }
  }
  return Status::OK();
}

Result<data_ptr_t> PartitionedTupleData::AppendRow(const DataChunk &input,
                                                   hash_t hash, idx_t row) {
  idx_t p = RadixPartition(hash, radix_bits_);
  data_ptr_t ptr = nullptr;
  SSAGG_RETURN_NOT_OK(
      partitions_[p]->AppendRows(states_[p], input, &row, 1, &ptr));
  return ptr;
}

}  // namespace ssagg
