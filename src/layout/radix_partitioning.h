#ifndef SSAGG_LAYOUT_RADIX_PARTITIONING_H_
#define SSAGG_LAYOUT_RADIX_PARTITIONING_H_

#include "common/constants.h"

namespace ssagg {

/// How the 64 hash bits are carved up (paper Section V, "Partitioning"):
///
///   bits [0, 24)   : offset into the hash-table entry array (capacity is
///                    therefore capped at 2^24 entries)
///   bits [24, 48)  : radix partition (up to 24 bits of fan-out)
///   bits [48, 64)  : salt, stored in the upper 16 bits of the entry
///
/// "It is important that any of the used bits do not overlap, as this would
/// lead to more collisions and/or reduced effectiveness of the salt."
constexpr idx_t kRadixShift = 24;
constexpr idx_t kSaltShift = 48;
constexpr idx_t kMaxHashTableBits = 24;
constexpr idx_t kMaxRadixBits = kSaltShift - kRadixShift;
constexpr uint64_t kPointerMask = (1ULL << 48) - 1;

static_assert(kPhase1HashTableCapacity <= (1ULL << kMaxHashTableBits),
              "hash-table offset bits would overlap the radix bits");

inline idx_t RadixPartition(hash_t hash, idx_t radix_bits) {
  return (hash >> kRadixShift) & ((idx_t(1) << radix_bits) - 1);
}

inline uint16_t ExtractSalt(hash_t hash) {
  return static_cast<uint16_t>(hash >> kSaltShift);
}

/// Builds a hash-table entry: 48-bit pointer in the low bits, 16-bit salt
/// in the high bits. "Pointers have a width of 64 bits ... but only the
/// lower 48 bits are used" (Section V, "Salt").
inline uint64_t MakeEntry(const void *row_ptr, uint16_t salt) {
  auto bits = reinterpret_cast<uint64_t>(row_ptr);
  return (bits & kPointerMask) | (static_cast<uint64_t>(salt) << kSaltShift);
}

inline uint16_t EntrySalt(uint64_t entry) {
  return static_cast<uint16_t>(entry >> kSaltShift);
}

inline data_ptr_t EntryPointer(uint64_t entry) {
  return reinterpret_cast<data_ptr_t>(entry & kPointerMask);
}

}  // namespace ssagg

#endif  // SSAGG_LAYOUT_RADIX_PARTITIONING_H_
