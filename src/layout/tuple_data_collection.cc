#include "layout/tuple_data_collection.h"

#include <algorithm>
#include <cstring>

#include "common/string_type.h"

namespace ssagg {

idx_t TupleDataCollection::SizeInBytes() const {
  return count_ * layout_.RowWidth() + heap_bytes_;
}

idx_t TupleDataCollection::ComputedRowCount() const {
  idx_t total = 0;
  for (auto &page : row_pages_) {
    total += page.count;
  }
  return total;
}

Result<data_ptr_t> TupleDataCollection::GetRowPagePtr(
    TupleDataAppendState &state, idx_t idx) {
  auto it = state.row_pins.find(idx);
  if (it == state.row_pins.end()) {
    SSAGG_ASSIGN_OR_RETURN(auto pin, buffer_manager_.Pin(row_pages_[idx].block));
    it = state.row_pins.emplace(idx, std::move(pin)).first;
  }
  return it->second.Ptr();
}

Result<data_ptr_t> TupleDataCollection::GetHeapPagePtr(
    TupleDataAppendState &state, idx_t idx) {
  auto it = state.heap_pins.find(idx);
  if (it == state.heap_pins.end()) {
    SSAGG_ASSIGN_OR_RETURN(auto pin,
                           buffer_manager_.Pin(heap_pages_[idx].block));
    it = state.heap_pins.emplace(idx, std::move(pin)).first;
  }
  return it->second.Ptr();
}

Status TupleDataCollection::NewRowPage(TupleDataAppendState &state) {
  std::shared_ptr<BlockHandle> block;
  SSAGG_ASSIGN_OR_RETURN(auto pin, buffer_manager_.Allocate(kPageSize, &block));
  idx_t idx = row_pages_.size();
  row_pages_.push_back(RowPage{std::move(block), 0, {}});
  state.row_pins.emplace(idx, std::move(pin));
  current_row_page_ = idx;
  return Status::OK();
}

Status TupleDataCollection::NewHeapPage(TupleDataAppendState &state,
                                        idx_t min_size) {
  // Standard pages are preferred; a single row with more heap data than one
  // page gets a variable-size page of exactly the needed size (Section III:
  // variable-size allocations are used sparingly).
  idx_t size = std::max(min_size, kPageSize);
  std::shared_ptr<BlockHandle> block;
  SSAGG_ASSIGN_OR_RETURN(auto pin, buffer_manager_.Allocate(size, &block));
  idx_t idx = heap_pages_.size();
  heap_pages_.push_back(HeapPage{std::move(block), 0, size});
  state.heap_pins.emplace(idx, std::move(pin));
  current_heap_page_ = idx;
  return Status::OK();
}

idx_t TupleDataCollection::ComputeRowHeapSize(const DataChunk &input,
                                              idx_t row) const {
  idx_t total = 0;
  for (idx_t c : layout_.VarSizeColumns()) {
    const Vector &vec = input.column(c);
    if (!vec.validity().RowIsValid(row)) {
      continue;
    }
    const string_t &s = vec.Values<string_t>()[row];
    if (!s.IsInlined()) {
      total += s.size();
    }
  }
  return total;
}

Status TupleDataCollection::AppendRows(TupleDataAppendState &state,
                                       const DataChunk &input, const idx_t *sel,
                                       idx_t count, data_ptr_t *row_ptrs_out) {
  const idx_t row_width = layout_.RowWidth();
  const idx_t rows_per_page = layout_.RowsPerPage();
  const idx_t validity_bytes = layout_.ValidityBytes();
  const idx_t ncols = layout_.ColumnCount();

  for (idx_t i = 0; i < count; i++) {
    idx_t r = sel ? sel[i] : i;
    idx_t heap_size = layout_.AllConstantSize() ? 0
                                                : ComputeRowHeapSize(input, r);

    // Make sure there is a row slot.
    if (current_row_page_ == kInvalidIndex ||
        row_pages_[current_row_page_].count >= rows_per_page) {
      SSAGG_RETURN_NOT_OK(NewRowPage(state));
    }
    // Make sure the row's entire heap data fits one heap page, so one
    // HeapRef covers the row.
    data_ptr_t heap_write = nullptr;
    data_ptr_t heap_base = nullptr;
    if (heap_size > 0) {
      if (current_heap_page_ == kInvalidIndex ||
          heap_pages_[current_heap_page_].used + heap_size >
              heap_pages_[current_heap_page_].size) {
        SSAGG_RETURN_NOT_OK(NewHeapPage(state, heap_size));
      }
      SSAGG_ASSIGN_OR_RETURN(heap_base,
                             GetHeapPagePtr(state, current_heap_page_));
      heap_write = heap_base + heap_pages_[current_heap_page_].used;
    }

    RowPage &page = row_pages_[current_row_page_];
    SSAGG_ASSIGN_OR_RETURN(data_ptr_t page_base,
                           GetRowPagePtr(state, current_row_page_));
    idx_t prow = page.count;
    data_ptr_t row = page_base + prow * row_width;

    // All columns valid by default; cleared per NULL below.
    std::memset(row, 0xFF, validity_bytes);

    for (idx_t c = 0; c < ncols; c++) {
      const Vector &vec = input.column(c);
      idx_t offset = layout_.ColumnOffset(c);
      idx_t width = TypeWidth(layout_.ColumnType(c));
      bool valid = vec.validity().RowIsValid(r);
      if (!valid) {
        layout_.RowSetColumnValid(row, c, false);
        std::memset(row + offset, 0, width);
        continue;
      }
      if (!TypeIsVarSize(layout_.ColumnType(c))) {
        std::memcpy(row + offset, vec.data() + r * width, width);
        continue;
      }
      string_t s = vec.Values<string_t>()[r];
      if (s.IsInlined()) {
        std::memcpy(row + offset, &s, sizeof(string_t));
      } else {
        std::memcpy(heap_write, s.data(), s.size());
        string_t stored(reinterpret_cast<char *>(heap_write), s.size());
        std::memcpy(row + offset, &stored, sizeof(string_t));
        heap_write += s.size();
      }
    }

    if (layout_.AggregateWidth() > 0) {
      std::memset(row + layout_.AggregateOffset(), 0,
                  layout_.AggregateWidth());
    }

    if (heap_size > 0) {
      HeapPage &heap = heap_pages_[current_heap_page_];
      heap.used += heap_size;
      heap_bytes_ += heap_size;
      // Extend the previous HeapRef if this row continues it, else start a
      // new one (also when the page was re-pinned at a new base).
      auto base_val = reinterpret_cast<uint64_t>(heap_base);
      if (!page.heap_refs.empty() &&
          page.heap_refs.back().heap_idx == current_heap_page_ &&
          page.heap_refs.back().old_base == base_val &&
          page.heap_refs.back().row_end == prow) {
        page.heap_refs.back().row_end = prow + 1;
      } else {
        page.heap_refs.push_back(
            HeapRef{current_heap_page_, base_val, prow, prow + 1});
      }
    }

    page.count++;
    count_++;
    if (row_ptrs_out) {
      row_ptrs_out[i] = row;
    }
  }
  return Status::OK();
}

void TupleDataCollection::InitScan(TupleDataScanState &state,
                                   bool destroy_after_scan) {
  state.page_idx = 0;
  state.row_idx = 0;
  state.row_pin.Reset();
  state.heap_pins.clear();
  state.destroy_after_scan = destroy_after_scan;
  if (destroy_after_scan) {
    state.heap_last_user.assign(heap_pages_.size(), kInvalidIndex);
    for (idx_t p = 0; p < row_pages_.size(); p++) {
      for (auto &ref : row_pages_[p].heap_refs) {
        state.heap_last_user[ref.heap_idx] = p;
      }
    }
  }
  // Scanning and appending must not interleave.
  current_row_page_ = kInvalidIndex;
  current_heap_page_ = kInvalidIndex;
}

void TupleDataCollection::PrefetchForScan(idx_t pages) {
  idx_t limit = std::min(pages, row_pages_.size());
  for (idx_t p = 0; p < limit; p++) {
    buffer_manager_.Prefetch(row_pages_[p].block);
    for (auto &ref : row_pages_[p].heap_refs) {
      buffer_manager_.Prefetch(heap_pages_[ref.heap_idx].block);
    }
  }
}

Status TupleDataCollection::PinPageForScan(TupleDataScanState &state) {
  state.heap_pins.clear();
  // Read ahead: start an asynchronous load of the next page (and its heap
  // pages) while this one is consumed. Best-effort — a no-op with the sync
  // backend or when memory is tight.
  idx_t next = state.page_idx + 1;
  if (next < row_pages_.size()) {
    buffer_manager_.Prefetch(row_pages_[next].block);
    for (auto &ref : row_pages_[next].heap_refs) {
      buffer_manager_.Prefetch(heap_pages_[ref.heap_idx].block);
    }
  }
  return PinPageWithHeap(state.page_idx, state.row_pin, state.heap_pins);
}

Status TupleDataCollection::PinPageWithHeap(
    idx_t page_idx, BufferHandle &row_pin,
    std::vector<BufferHandle> &heap_pins) {
  RowPage &page = row_pages_[page_idx];
  SSAGG_ASSIGN_OR_RETURN(row_pin, buffer_manager_.Pin(page.block));
  data_ptr_t page_base = row_pin.Ptr();
  const idx_t row_width = layout_.RowWidth();
  for (auto &ref : page.heap_refs) {
    SSAGG_ASSIGN_OR_RETURN(auto heap_pin,
                           buffer_manager_.Pin(heap_pages_[ref.heap_idx].block));
    auto new_base = reinterpret_cast<uint64_t>(heap_pin.Ptr());
    if (new_base != ref.old_base) {
      // The heap page came back at a different address: recompute the
      // explicit pointers of the rows in this range, in place.
      int64_t delta = static_cast<int64_t>(new_base) -
                      static_cast<int64_t>(ref.old_base);
      for (idx_t prow = ref.row_begin; prow < ref.row_end; prow++) {
        data_ptr_t row = page_base + prow * row_width;
        for (idx_t c : layout_.VarSizeColumns()) {
          if (!layout_.RowIsColumnValid(row, c)) {
            continue;
          }
          string_t s;
          std::memcpy(&s, row + layout_.ColumnOffset(c), sizeof(string_t));
          if (s.IsInlined()) {
            continue;
          }
          s.SetPointer(s.value.pointer.ptr + delta);
          std::memcpy(row + layout_.ColumnOffset(c), &s, sizeof(string_t));
        }
      }
      ref.old_base = new_base;
    }
    heap_pins.push_back(std::move(heap_pin));
  }
  return Status::OK();
}

void TupleDataCollection::GatherRows(const RowPage &page, data_ptr_t page_base,
                                     idx_t row_idx, idx_t count,
                                     DataChunk &out,
                                     data_ptr_t *row_ptrs_out) {
  (void)page;
  const idx_t row_width = layout_.RowWidth();
  for (idx_t c = 0; c < layout_.ColumnCount(); c++) {
    Vector &vec = out.column(c);
    idx_t offset = layout_.ColumnOffset(c);
    idx_t width = TypeWidth(layout_.ColumnType(c));
    bool varsize = TypeIsVarSize(layout_.ColumnType(c));
    for (idx_t i = 0; i < count; i++) {
      const_data_ptr_t row = page_base + (row_idx + i) * row_width;
      if (!layout_.RowIsColumnValid(row, c)) {
        vec.validity().SetInvalid(i);
        std::memset(vec.data() + i * width, 0, width);
        continue;
      }
      if (varsize) {
        string_t s;
        std::memcpy(&s, row + offset, sizeof(string_t));
        // Copy through the output vector's heap: the gathered chunk must
        // stay valid after the scan unpins the heap page.
        vec.SetString(i, s.View());
      } else {
        std::memcpy(vec.data() + i * width, row + offset, width);
      }
    }
  }
  if (row_ptrs_out) {
    for (idx_t i = 0; i < count; i++) {
      row_ptrs_out[i] = page_base + (row_idx + i) * row_width;
    }
  }
  out.SetCount(count);
}

Result<bool> TupleDataCollection::Scan(TupleDataScanState &state,
                                       DataChunk &out,
                                       data_ptr_t *row_ptrs_out) {
  out.Reset();
  // Page cleanup is deferred to the call AFTER the one that returned a
  // page's last rows: the previous call's row pointers (and gathered data)
  // must stay valid until the consumer asks for the next chunk.
  while (state.page_idx < row_pages_.size() &&
         state.row_idx >= row_pages_[state.page_idx].count) {
    FinishScanPage(state);
  }
  if (state.page_idx >= row_pages_.size()) {
    state.row_pin.Reset();
    state.heap_pins.clear();
    return false;
  }
  RowPage &page = row_pages_[state.page_idx];
  if (!state.row_pin.IsValid()) {
    SSAGG_RETURN_NOT_OK(PinPageForScan(state));
  }
  idx_t count = std::min<idx_t>(kVectorSize, page.count - state.row_idx);
  GatherRows(page, state.row_pin.Ptr(), state.row_idx, count, out,
             row_ptrs_out);
  state.row_idx += count;
  return true;
}

void TupleDataCollection::FinishScanPage(TupleDataScanState &state) {
  state.row_pin.Reset();
  state.heap_pins.clear();
  if (state.destroy_after_scan && state.page_idx < row_pages_.size()) {
    RowPage &page = row_pages_[state.page_idx];
    if (page.block) {
      buffer_manager_.DestroyBlock(page.block);
      page.block.reset();
    }
    // A heap page can be referenced by multiple row pages; since scans go
    // in order, it is safe to destroy a heap page when the scan moves past
    // the last row page that references it (precomputed in InitScan).
    for (auto &ref : page.heap_refs) {
      if (state.heap_last_user[ref.heap_idx] == state.page_idx &&
          heap_pages_[ref.heap_idx].block) {
        buffer_manager_.DestroyBlock(heap_pages_[ref.heap_idx].block);
        heap_pages_[ref.heap_idx].block.reset();
      }
    }
  }
  state.page_idx++;
  state.row_idx = 0;
}

void TupleDataCollection::Combine(TupleDataCollection &other) {
  SSAGG_ASSERT(layout_.RowWidth() == other.layout_.RowWidth());
  idx_t heap_offset = heap_pages_.size();
  for (auto &heap : other.heap_pages_) {
    heap_pages_.push_back(std::move(heap));
  }
  for (auto &page : other.row_pages_) {
    for (auto &ref : page.heap_refs) {
      ref.heap_idx += heap_offset;
    }
    row_pages_.push_back(std::move(page));
  }
  count_ += other.count_;
  heap_bytes_ += other.heap_bytes_;
  other.row_pages_.clear();
  other.heap_pages_.clear();
  other.count_ = 0;
  other.heap_bytes_ = 0;
  other.current_row_page_ = kInvalidIndex;
  other.current_heap_page_ = kInvalidIndex;
  // Our own partially-filled pages may now be out of order; keep appending
  // to them anyway is unsafe since indices moved only for `other`. Ours are
  // unchanged, so current pages stay valid.
}

void TupleDataCollection::Reset() {
  for (auto &page : row_pages_) {
    if (page.block) {
      buffer_manager_.DestroyBlock(page.block);
    }
  }
  for (auto &heap : heap_pages_) {
    if (heap.block) {
      buffer_manager_.DestroyBlock(heap.block);
    }
  }
  row_pages_.clear();
  heap_pages_.clear();
  count_ = 0;
  heap_bytes_ = 0;
  current_row_page_ = kInvalidIndex;
  current_heap_page_ = kInvalidIndex;
}

}  // namespace ssagg
