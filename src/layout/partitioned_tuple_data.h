#ifndef SSAGG_LAYOUT_PARTITIONED_TUPLE_DATA_H_
#define SSAGG_LAYOUT_PARTITIONED_TUPLE_DATA_H_

#include <memory>
#include <vector>

#include "layout/radix_partitioning.h"
#include "layout/tuple_data_collection.h"

namespace ssagg {

/// Radix-partitioned tuple storage: one TupleDataCollection per partition,
/// with tuples routed by the middle bits of their hash. The aggregation
/// operator materializes tuples directly into partitions in row-major form
/// ("By materializing tuples directly into partitions, we avoid copying
/// tuples more than once", Section V).
class PartitionedTupleData {
 public:
  PartitionedTupleData(BufferManager &buffer_manager,
                       const TupleDataLayout &layout, idx_t radix_bits)
      : layout_(layout), radix_bits_(radix_bits) {
    SSAGG_ASSERT(radix_bits <= kMaxRadixBits);
    idx_t n = idx_t(1) << radix_bits;
    partitions_.reserve(n);
    for (idx_t i = 0; i < n; i++) {
      partitions_.push_back(
          std::make_unique<TupleDataCollection>(buffer_manager, layout));
    }
    states_.resize(n);
  }

  idx_t PartitionCount() const { return partitions_.size(); }
  idx_t radix_bits() const { return radix_bits_; }
  const TupleDataLayout &layout() const { return layout_; }

  TupleDataCollection &partition(idx_t i) { return *partitions_[i]; }

  idx_t Count() const {
    idx_t total = 0;
    for (auto &p : partitions_) {
      total += p->Count();
    }
    return total;
  }

  idx_t SizeInBytes() const {
    idx_t total = 0;
    for (auto &p : partitions_) {
      total += p->SizeInBytes();
    }
    return total;
  }

  /// Batched partition-aware append: appends `count` rows of `input`
  /// (selected by `sel`, or 0..count-1), each routed to the partition given
  /// by its hash's radix bits via one counting sort, with one AppendRows
  /// call per touched partition. Row addresses are written to
  /// `row_ptrs_out`, indexed like `sel` (per-row pointers are what the hash
  /// table backfills into its claimed entries). `hashes` is indexed by
  /// input row number. Allocation-free after the first call.
  Status Append(const DataChunk &input, const hash_t *hashes, const idx_t *sel,
                idx_t count, data_ptr_t *row_ptrs_out);

  /// Appends a single input row; returns its address. Used by the
  /// hash-table insert path.
  Result<data_ptr_t> AppendRow(const DataChunk &input, hash_t hash, idx_t row);

  /// Releases the append pins of all partitions: the pages become eviction
  /// candidates (called when the thread-local hash table is reset).
  void ReleaseAppendPins() {
    for (auto &state : states_) {
      state.Release();
    }
  }

  /// Releases one partition's pins only (safe while other partitions are
  /// concurrently iterated by their own tasks).
  void ReleasePartitionPins(idx_t partition_idx) {
    states_[partition_idx].Release();
  }

  /// Iterates over all row addresses of one partition, pinning pages
  /// through this object's append states (used to rebuild the pointer
  /// table on resize). Addresses stay valid until ReleaseAppendPins.
  template <typename Fn>
  Status ForEachRowInPartition(idx_t partition_idx, Fn &&fn);

  /// Moves all tuples of `other` into this object, partition-wise.
  void Combine(PartitionedTupleData &other) {
    SSAGG_ASSERT(other.radix_bits_ == radix_bits_);
    other.ReleaseAppendPins();
    ReleaseAppendPins();
    for (idx_t i = 0; i < partitions_.size(); i++) {
      partitions_[i]->Combine(*other.partitions_[i]);
    }
  }

  void Reset() {
    ReleaseAppendPins();
    for (auto &p : partitions_) {
      p->Reset();
    }
  }

 private:
  TupleDataLayout layout_;
  idx_t radix_bits_;
  std::vector<std::unique_ptr<TupleDataCollection>> partitions_;
  std::vector<TupleDataAppendState> states_;
  // Scratch for Append (members so the hot batched-insert path does not
  // allocate per call).
  std::vector<idx_t> scratch_sel_;
  std::vector<idx_t> scratch_pos_;
  std::vector<data_ptr_t> scratch_ptrs_;
  std::vector<idx_t> scratch_counts_;
  std::vector<idx_t> scratch_offsets_;
  std::vector<idx_t> scratch_cursor_;
};

template <typename Fn>
Status PartitionedTupleData::ForEachRowInPartition(idx_t partition_idx,
                                                   Fn &&fn) {
  TupleDataCollection &part = *partitions_[partition_idx];
  TupleDataAppendState &state = states_[partition_idx];
  SSAGG_RETURN_NOT_OK(part.VisitRows(state, fn));
  return Status::OK();
}

}  // namespace ssagg

#endif  // SSAGG_LAYOUT_PARTITIONED_TUPLE_DATA_H_
