#ifndef SSAGG_LAYOUT_TUPLE_DATA_LAYOUT_H_
#define SSAGG_LAYOUT_TUPLE_DATA_LAYOUT_H_

#include <vector>

#include "common/constants.h"
#include "common/types.h"

namespace ssagg {

/// Describes the fixed-size row format used for materialized query
/// intermediates (paper Section IV). A row is:
///
///   [ validity bits ][ column 0 ][ column 1 ] ... [ aggregate states ]
///
/// All widths and offsets are known when the layout is created and stored
/// once, globally — not per page. Variable-size values (VARCHAR) occupy a
/// fixed 16-byte string_t slot in the row; their character data lives on
/// separate heap pages and is referenced with an explicit pointer
/// (requirements 1-3 of Section IV).
class TupleDataLayout {
 public:
  TupleDataLayout() = default;

  /// Creates a layout for the given columns, optionally reserving
  /// `aggregate_state_width` trailing bytes per row for aggregate states.
  void Initialize(std::vector<LogicalTypeId> types,
                  idx_t aggregate_state_width = 0);

  idx_t ColumnCount() const { return types_.size(); }
  LogicalTypeId ColumnType(idx_t col) const { return types_[col]; }
  const std::vector<LogicalTypeId> &Types() const { return types_; }

  /// Byte offset of a column's value slot within the row.
  idx_t ColumnOffset(idx_t col) const { return offsets_[col]; }
  /// Offset of the aggregate-state area.
  idx_t AggregateOffset() const { return aggr_offset_; }
  idx_t AggregateWidth() const { return aggr_width_; }
  idx_t RowWidth() const { return row_width_; }

  /// True if no column references heap data (no VARCHAR columns).
  bool AllConstantSize() const { return varsize_columns_.empty(); }
  /// Indices of the VARCHAR columns, in row order.
  const std::vector<idx_t> &VarSizeColumns() const { return varsize_columns_; }

  /// Rows per fixed-size page.
  idx_t RowsPerPage() const { return kPageSize / row_width_; }

  // Validity bits are at the head of the row, one bit per column.
  bool RowIsColumnValid(const_data_ptr_t row, idx_t col) const {
    return (row[col >> 3] >> (col & 7)) & 1;
  }
  void RowSetColumnValid(data_ptr_t row, idx_t col, bool valid) const {
    if (valid) {
      row[col >> 3] |= static_cast<data_t>(1 << (col & 7));
    } else {
      row[col >> 3] &= static_cast<data_t>(~(1 << (col & 7)));
    }
  }
  idx_t ValidityBytes() const { return validity_bytes_; }

 private:
  std::vector<LogicalTypeId> types_;
  std::vector<idx_t> offsets_;
  std::vector<idx_t> varsize_columns_;
  idx_t validity_bytes_ = 0;
  idx_t row_width_ = 0;
  idx_t aggr_offset_ = 0;
  idx_t aggr_width_ = 0;
};

}  // namespace ssagg

#endif  // SSAGG_LAYOUT_TUPLE_DATA_LAYOUT_H_
