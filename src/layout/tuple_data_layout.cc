#include "layout/tuple_data_layout.h"

#include "common/status.h"

namespace ssagg {

void TupleDataLayout::Initialize(std::vector<LogicalTypeId> types,
                                 idx_t aggregate_state_width) {
  types_ = std::move(types);
  offsets_.clear();
  varsize_columns_.clear();
  validity_bytes_ = (types_.size() + 7) / 8;
  idx_t offset = validity_bytes_;
  for (idx_t i = 0; i < types_.size(); i++) {
    offsets_.push_back(offset);
    offset += TypeWidth(types_[i]);
    if (TypeIsVarSize(types_[i])) {
      varsize_columns_.push_back(i);
    }
  }
  // Align the aggregate-state area to 8 bytes: states are accessed as
  // typed structs (CountState etc.), and rows start at page offsets that
  // are multiples of the 8-aligned row width, so an aligned aggr_offset_
  // makes every state pointer properly aligned.
  aggr_offset_ = (offset + 7) & ~idx_t(7);
  aggr_width_ = aggregate_state_width;
  row_width_ = aggr_offset_ + aggregate_state_width;
  // Align rows to 8 bytes so fixed-width slots are reasonably aligned.
  row_width_ = (row_width_ + 7) & ~idx_t(7);
  SSAGG_ASSERT(row_width_ <= kPageSize);
}

}  // namespace ssagg
