#include "compression/codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"

namespace ssagg {
namespace {

Codec SegmentCodec(const std::vector<data_t> &segment) {
  return static_cast<Codec>(segment[0]);
}

/// Compresses `input` rows [0, count), decompresses, and checks that every
/// value and validity bit round-trips. Returns the codec that was chosen.
Codec RoundTrip(const Vector &input, idx_t count) {
  std::vector<data_t> segment;
  Status status = CompressSegment(input, count, segment);
  EXPECT_TRUE(status.ok()) << status.ToString();

  DecodedSegment decoded;
  status = DecompressSegment(segment.data(), segment.size(), input.type(),
                             decoded);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(decoded.count, count);

  Vector output(input.type());
  CopyDecodedRows(decoded, 0, count, output);
  for (idx_t i = 0; i < count; i++) {
    EXPECT_EQ(input.validity().RowIsValid(i), output.validity().RowIsValid(i))
        << "validity of row " << i;
    if (!input.validity().RowIsValid(i)) {
      continue;
    }
    if (input.type() == LogicalTypeId::kVarchar) {
      EXPECT_EQ(input.GetString(i).View(), output.GetString(i).View())
          << "string row " << i;
    } else if (input.type() == LogicalTypeId::kInt32) {
      EXPECT_EQ(input.GetValue<int32_t>(i), output.GetValue<int32_t>(i))
          << "row " << i;
    } else if (input.type() == LogicalTypeId::kDouble) {
      EXPECT_EQ(input.GetValue<double>(i), output.GetValue<double>(i))
          << "row " << i;
    } else {
      EXPECT_EQ(input.GetValue<int64_t>(i), output.GetValue<int64_t>(i))
          << "row " << i;
    }
  }
  return SegmentCodec(segment);
}

TEST(CodecTest, SingleValueRoundTrips) {
  Vector input(LogicalTypeId::kInt64);
  input.SetValue<int64_t>(0, 42);
  RoundTrip(input, 1);
}

TEST(CodecTest, ConstantVectorChoosesZeroBitFrame) {
  // All-equal values: a zero-bit frame-of-reference (9 payload bytes) beats
  // even a single RLE run (16 bytes).
  Vector input(LogicalTypeId::kInt64);
  for (idx_t i = 0; i < kVectorSize; i++) {
    input.SetValue<int64_t>(i, 7777);
  }
  EXPECT_EQ(RoundTrip(input, kVectorSize), Codec::kForBitpack);
  std::vector<data_t> segment;
  ASSERT_TRUE(CompressSegment(input, kVectorSize, segment).ok());
  idx_t header = 1 + 4 + (kVectorSize + 7) / 8;
  EXPECT_EQ(segment.size(), header + 9);  // min value + bit width, no bits
}

TEST(CodecTest, FewWideRunsChooseRle) {
  // Eight long runs of far-apart values: bit-packing needs ~53 bits per
  // value, RLE needs 12 bytes per run.
  Vector input(LogicalTypeId::kInt64);
  for (idx_t i = 0; i < kVectorSize; i++) {
    input.SetValue<int64_t>(
        i, static_cast<int64_t>(i / 256) * 1000000000000000LL);
  }
  EXPECT_EQ(RoundTrip(input, kVectorSize), Codec::kRle);

  std::vector<data_t> segment;
  ASSERT_TRUE(CompressSegment(input, kVectorSize, segment).ok());
  idx_t header = 1 + 4 + (kVectorSize + 7) / 8;
  EXPECT_EQ(segment.size(), header + 4 + 8 * 12);
}

TEST(CodecTest, AllDistinctSmallRangeChoosesBitpack) {
  Vector input(LogicalTypeId::kInt64);
  for (idx_t i = 0; i < kVectorSize; i++) {
    input.SetValue<int64_t>(i, 1000000 + static_cast<int64_t>(i));
  }
  // All-distinct defeats RLE; the 11-bit range defeats plain.
  EXPECT_EQ(RoundTrip(input, kVectorSize), Codec::kForBitpack);
}

TEST(CodecTest, IncompressibleValuesFallBackToPlain) {
  Vector input(LogicalTypeId::kInt64);
  RandomEngine rng(0xC0DEC);
  for (idx_t i = 0; i < kVectorSize; i++) {
    input.SetValue<int64_t>(i, static_cast<int64_t>(rng.NextUint64()));
  }
  // Pin the frame to the full 64-bit range so bit-packing cannot win.
  input.SetValue<int64_t>(0, std::numeric_limits<int64_t>::min());
  input.SetValue<int64_t>(1, std::numeric_limits<int64_t>::max());
  EXPECT_EQ(RoundTrip(input, kVectorSize), Codec::kPlain);
}

TEST(CodecTest, MinMaxInt64FrameRoundTrips) {
  // The frame spans the entire int64 range: the frame-of-reference range
  // computation must not overflow (it is done in uint64).
  Vector input(LogicalTypeId::kInt64);
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  const int64_t values[] = {kMin, kMax, 0, -1, 1, kMin + 1, kMax - 1};
  idx_t count = sizeof(values) / sizeof(values[0]);
  for (idx_t i = 0; i < count; i++) {
    input.SetValue<int64_t>(i, values[i]);
  }
  RoundTrip(input, count);
}

TEST(CodecTest, NegativeFrameOfReferenceRoundTrips) {
  Vector input(LogicalTypeId::kInt64);
  for (idx_t i = 0; i < 512; i++) {
    input.SetValue<int64_t>(i, -100000 + static_cast<int64_t>(i * 3));
  }
  EXPECT_EQ(RoundTrip(input, 512), Codec::kForBitpack);
}

TEST(CodecTest, BitWidthBoundariesRoundTrip) {
  // For each width B, all-distinct values whose range needs exactly B bits:
  // byte boundaries, word boundaries, and the extremes.
  for (idx_t bits : {idx_t(1), idx_t(2), idx_t(7), idx_t(8), idx_t(9),
                     idx_t(15), idx_t(16), idx_t(17), idx_t(31), idx_t(32),
                     idx_t(33), idx_t(63)}) {
    Vector input(LogicalTypeId::kInt64);
    constexpr idx_t kCount = 256;
    uint64_t range = (uint64_t(1) << bits) - 1;
    // Cycle through the frame so neighbours differ (RLE loses) and the
    // maximum delta is exactly 2^bits - 1.
    for (idx_t i = 0; i < kCount - 1; i++) {
      input.SetValue<int64_t>(i, static_cast<int64_t>(i % (range + 1)));
    }
    input.SetValue<int64_t>(kCount - 1, static_cast<int64_t>(range));
    EXPECT_EQ(RoundTrip(input, kCount), Codec::kForBitpack)
        << "bits=" << bits;
  }
}

TEST(CodecTest, Int32RoundTripsAllCodecs) {
  {
    Vector rle(LogicalTypeId::kInt32);
    for (idx_t i = 0; i < kVectorSize; i++) {
      rle.SetValue<int32_t>(i, static_cast<int32_t>(i / 256));
    }
    EXPECT_EQ(RoundTrip(rle, kVectorSize), Codec::kRle);
  }
  {
    Vector bitpack(LogicalTypeId::kInt32);
    for (idx_t i = 0; i < kVectorSize; i++) {
      bitpack.SetValue<int32_t>(i, static_cast<int32_t>(i) - 1024);
    }
    EXPECT_EQ(RoundTrip(bitpack, kVectorSize), Codec::kForBitpack);
  }
  {
    Vector plain(LogicalTypeId::kInt32);
    RandomEngine rng(0x3217);
    for (idx_t i = 0; i < kVectorSize; i++) {
      plain.SetValue<int32_t>(i, static_cast<int32_t>(rng.NextUint64()));
    }
    plain.SetValue<int32_t>(0, std::numeric_limits<int32_t>::min());
    plain.SetValue<int32_t>(1, std::numeric_limits<int32_t>::max());
    EXPECT_EQ(RoundTrip(plain, kVectorSize), Codec::kPlain);
  }
}

TEST(CodecTest, NullsPreservedAcrossCodecs) {
  // Every third row NULL, under each integer codec's preferred shape.
  for (int shape = 0; shape < 3; shape++) {
    Vector input(LogicalTypeId::kInt64);
    RandomEngine rng(7 + shape);
    for (idx_t i = 0; i < kVectorSize; i++) {
      int64_t v = shape == 0   ? 5
                  : shape == 1 ? static_cast<int64_t>(i)
                               : static_cast<int64_t>(rng.NextUint64());
      input.SetValue<int64_t>(i, v);
      if (i % 3 == 0) {
        input.validity().SetInvalid(i);
      }
    }
    RoundTrip(input, kVectorSize);
  }
}

TEST(CodecTest, StringsRoundTripWithEmptyLongAndNull) {
  Vector input(LogicalTypeId::kVarchar);
  std::vector<std::string> originals;
  for (idx_t i = 0; i < 300; i++) {
    if (i % 5 == 0) {
      originals.push_back("");
    } else if (i % 7 == 0) {
      originals.push_back(std::string(100 + i, 'x'));  // non-inlined
    } else {
      originals.push_back(std::to_string(i) + "s");
    }
  }
  for (idx_t i = 0; i < originals.size(); i++) {
    input.SetString(i, originals[i]);
    if (i % 11 == 0) {
      input.validity().SetInvalid(i);
    }
  }
  EXPECT_EQ(RoundTrip(input, originals.size()), Codec::kStringPlain);
}

TEST(CodecTest, DoublesUsePlainStorage) {
  Vector input(LogicalTypeId::kDouble);
  for (idx_t i = 0; i < 1000; i++) {
    input.SetValue<double>(i, 0.5 * static_cast<double>(i));
  }
  EXPECT_EQ(RoundTrip(input, 1000), Codec::kPlain);
}

TEST(CodecTest, EmptySegmentDecodes) {
  // CompressSegment requires rows, but a hand-crafted zero-count segment
  // (codec, count=0, no validity, no payload) must decode cleanly.
  std::vector<data_t> segment;
  segment.push_back(static_cast<data_t>(Codec::kPlain));
  uint32_t zero = 0;
  segment.insert(segment.end(), reinterpret_cast<data_t *>(&zero),
                 reinterpret_cast<data_t *>(&zero) + 4);
  DecodedSegment decoded;
  Status status = DecompressSegment(segment.data(), segment.size(),
                                    LogicalTypeId::kInt64, decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(decoded.count, 0u);
}

TEST(CodecTest, TruncatedSegmentsReturnCleanErrors) {
  // Build one segment per codec, then decompress every proper prefix:
  // each must fail with a Status, never crash or read out of bounds.
  std::vector<std::vector<data_t>> segments;
  {
    Vector rle(LogicalTypeId::kInt64);
    Vector bitpack(LogicalTypeId::kInt64);
    Vector plain(LogicalTypeId::kInt64);
    RandomEngine rng(99);
    for (idx_t i = 0; i < 500; i++) {
      rle.SetValue<int64_t>(i, 3);
      bitpack.SetValue<int64_t>(i, static_cast<int64_t>(i));
      plain.SetValue<int64_t>(i, static_cast<int64_t>(rng.NextUint64()));
    }
    for (const Vector *v : {&rle, &bitpack, &plain}) {
      segments.emplace_back();
      ASSERT_TRUE(CompressSegment(*v, 500, segments.back()).ok());
    }
    Vector strings(LogicalTypeId::kVarchar);
    for (idx_t i = 0; i < 100; i++) {
      strings.SetString(i, "payload_" + std::to_string(i));
    }
    segments.emplace_back();
    ASSERT_TRUE(CompressSegment(strings, 100, segments.back()).ok());
  }
  for (const auto &segment : segments) {
    LogicalTypeId type = SegmentCodec(segment) == Codec::kStringPlain
                             ? LogicalTypeId::kVarchar
                             : LogicalTypeId::kInt64;
    for (idx_t len = 0; len < segment.size(); len++) {
      DecodedSegment decoded;
      Status status = DecompressSegment(segment.data(), len, type, decoded);
      EXPECT_FALSE(status.ok())
          << CodecName(SegmentCodec(segment)) << " prefix of " << len
          << " bytes decoded successfully";
    }
  }
}

TEST(CodecTest, UnknownCodecByteIsRejected) {
  std::vector<data_t> segment;
  segment.push_back(0x7F);
  uint32_t count = 1;
  segment.insert(segment.end(), reinterpret_cast<data_t *>(&count),
                 reinterpret_cast<data_t *>(&count) + 4);
  segment.push_back(0x01);  // validity
  segment.resize(segment.size() + 8, 0);
  DecodedSegment decoded;
  EXPECT_FALSE(DecompressSegment(segment.data(), segment.size(),
                                 LogicalTypeId::kInt64, decoded)
                   .ok());
}

TEST(CodecTest, CopyDecodedRowsHonorsOffset) {
  Vector input(LogicalTypeId::kInt64);
  for (idx_t i = 0; i < 1024; i++) {
    input.SetValue<int64_t>(i, static_cast<int64_t>(i * 10));
    if (i % 4 == 0) {
      input.validity().SetInvalid(i);
    }
  }
  std::vector<data_t> segment;
  ASSERT_TRUE(CompressSegment(input, 1024, segment).ok());
  DecodedSegment decoded;
  ASSERT_TRUE(DecompressSegment(segment.data(), segment.size(),
                                LogicalTypeId::kInt64, decoded)
                  .ok());
  Vector out(LogicalTypeId::kInt64);
  CopyDecodedRows(decoded, 100, 50, out);
  for (idx_t i = 0; i < 50; i++) {
    idx_t row = 100 + i;
    ASSERT_EQ(out.validity().RowIsValid(i), row % 4 != 0);
    if (row % 4 != 0) {
      EXPECT_EQ(out.GetValue<int64_t>(i), static_cast<int64_t>(row * 10));
    }
  }
}

//===----------------------------------------------------------------------===//
// Spill frames: roundtrips and hardening against corrupt input
//===----------------------------------------------------------------------===//

std::vector<data_t> PatternPayload(idx_t size, int pattern) {
  std::vector<data_t> payload(size);
  switch (pattern) {
    case 0:  // all zeros: best case for byte-RLE
      break;
    case 1:  // small-delta 64-bit words: word-FoR territory
      for (idx_t i = 0; i + sizeof(uint64_t) <= size; i += sizeof(uint64_t)) {
        uint64_t word = 5000000 + (i / sizeof(uint64_t)) % 1000;
        std::memcpy(payload.data() + i, &word, sizeof(word));
      }
      break;
    default: {  // pseudo-random: incompressible, must fall back to raw
      uint64_t state = 0xDEADBEEFCAFEF00DULL + pattern;
      for (idx_t i = 0; i < size; i++) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        payload[i] = static_cast<data_t>(state >> 33);
      }
      break;
    }
  }
  return payload;
}

TEST(SpillFrameTest, RoundtripAcrossPatternsAndSizes) {
  for (int pattern = 0; pattern < 3; pattern++) {
    for (idx_t size : {idx_t(1), idx_t(7), idx_t(4096), idx_t(65536),
                       idx_t(65543)}) {
      std::vector<data_t> payload = PatternPayload(size, pattern);
      std::vector<data_t> frame;
      CompressSpillFrame(payload.data(), size, frame);
      ASSERT_GE(frame.size(), SpillFrameHeader::kSize);
      // Never worse than raw + header.
      ASSERT_LE(frame.size(), size + SpillFrameHeader::kSize);
      SpillFrameHeader header;
      ASSERT_TRUE(PeekSpillFrame(frame.data(), frame.size(), header).ok());
      ASSERT_EQ(header.raw_len, size);
      std::vector<data_t> out(size, 0xCC);
      ASSERT_TRUE(
          DecompressSpillFrame(frame.data(), frame.size(), out.data(), size)
              .ok())
          << "pattern " << pattern << " size " << size;
      ASSERT_EQ(std::memcmp(out.data(), payload.data(), size), 0);
    }
  }
}

TEST(SpillFrameTest, CompressiblePayloadShrinks) {
  std::vector<data_t> payload = PatternPayload(65536, 0);
  std::vector<data_t> frame;
  CompressSpillFrame(payload.data(), payload.size(), frame);
  EXPECT_LT(frame.size(), payload.size() / 2);
}

TEST(SpillFrameTest, TruncatedHeaderIsCleanError) {
  std::vector<data_t> payload = PatternPayload(4096, 1);
  std::vector<data_t> frame;
  CompressSpillFrame(payload.data(), payload.size(), frame);
  std::vector<data_t> out(4096);
  for (idx_t keep = 0; keep < SpillFrameHeader::kSize; keep++) {
    SpillFrameHeader header;
    EXPECT_FALSE(PeekSpillFrame(frame.data(), keep, header).ok());
    EXPECT_FALSE(
        DecompressSpillFrame(frame.data(), keep, out.data(), 4096).ok());
  }
}

TEST(SpillFrameTest, TruncatedPayloadIsCleanError) {
  std::vector<data_t> payload = PatternPayload(4096, 1);
  std::vector<data_t> frame;
  CompressSpillFrame(payload.data(), payload.size(), frame);
  std::vector<data_t> out(4096);
  for (idx_t cut = 1; cut <= 16; cut++) {
    ASSERT_GT(frame.size(), cut);
    EXPECT_FALSE(DecompressSpillFrame(frame.data(), frame.size() - cut,
                                      out.data(), 4096)
                     .ok());
  }
}

TEST(SpillFrameTest, WrongOutputLengthIsCleanError) {
  std::vector<data_t> payload = PatternPayload(4096, 0);
  std::vector<data_t> frame;
  CompressSpillFrame(payload.data(), payload.size(), frame);
  std::vector<data_t> out(8192);
  EXPECT_FALSE(
      DecompressSpillFrame(frame.data(), frame.size(), out.data(), 4095).ok());
  EXPECT_FALSE(
      DecompressSpillFrame(frame.data(), frame.size(), out.data(), 8192).ok());
}

TEST(SpillFrameTest, EveryByteFlipFailsCleanlyOrDecodesIdentically) {
  // Flip every byte of the frame (header and payload) one at a time. Each
  // corruption must either be rejected with a clean Status or decode to the
  // exact original bytes (flips in ignored header fields) — never crash,
  // never silently return different data.
  for (int pattern = 0; pattern < 3; pattern++) {
    std::vector<data_t> payload = PatternPayload(512, pattern);
    std::vector<data_t> frame;
    CompressSpillFrame(payload.data(), payload.size(), frame);
    for (idx_t i = 0; i < frame.size(); i++) {
      std::vector<data_t> corrupt = frame;
      corrupt[i] ^= 0xFF;
      std::vector<data_t> out(payload.size(), 0xCC);
      Status status = DecompressSpillFrame(corrupt.data(), corrupt.size(),
                                           out.data(), payload.size());
      if (status.ok()) {
        EXPECT_EQ(std::memcmp(out.data(), payload.data(), payload.size()), 0)
            << "silent corruption at byte " << i << " pattern " << pattern;
      }
    }
  }
}

TEST(SpillFrameTest, OversizedCompLenIsCleanError) {
  std::vector<data_t> payload = PatternPayload(4096, 0);
  std::vector<data_t> frame;
  CompressSpillFrame(payload.data(), payload.size(), frame);
  // comp_len lives at header bytes [12, 16); claim far more payload than the
  // buffer holds.
  uint32_t huge = 0x7FFFFFFF;
  std::memcpy(frame.data() + 12, &huge, sizeof(huge));
  SpillFrameHeader header;
  EXPECT_FALSE(PeekSpillFrame(frame.data(), frame.size(), header).ok());
  std::vector<data_t> out(4096);
  EXPECT_FALSE(
      DecompressSpillFrame(frame.data(), frame.size(), out.data(), 4096).ok());
}

TEST(SpillFrameTest, BadMagicIsCleanError) {
  std::vector<data_t> payload = PatternPayload(1024, 0);
  std::vector<data_t> frame;
  CompressSpillFrame(payload.data(), payload.size(), frame);
  frame[0] ^= 0x01;
  SpillFrameHeader header;
  EXPECT_FALSE(PeekSpillFrame(frame.data(), frame.size(), header).ok());
}

}  // namespace
}  // namespace ssagg
