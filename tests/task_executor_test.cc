#include "execution/task_executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "execution/collectors.h"
#include "execution/range_source.h"

namespace ssagg {
namespace {

RangeSource CountingSource(idx_t rows) {
  return RangeSource({LogicalTypeId::kInt64}, rows,
                     [](DataChunk &chunk, idx_t start, idx_t count) {
                       for (idx_t i = 0; i < count; i++) {
                         chunk.column(0).SetValue<int64_t>(
                             i, static_cast<int64_t>(start + i));
                       }
                       return Status::OK();
                     });
}

TEST(TaskExecutorTest, PipelineDeliversEveryRowOnce) {
  for (idx_t threads : {idx_t(1), idx_t(2), idx_t(4), idx_t(8)}) {
    TaskExecutor executor(threads);
    auto source = CountingSource(500000);
    CountingCollector sink;
    ASSERT_TRUE(executor.RunPipeline(source, sink).ok());
    EXPECT_EQ(sink.TotalRows(), 500000u) << threads << " threads";
  }
}

TEST(TaskExecutorTest, SourceErrorAbortsPipeline) {
  TaskExecutor executor(4);
  RangeSource source({LogicalTypeId::kInt64}, kMorselSize * 16,
                     [](DataChunk &, idx_t start, idx_t) {
                       if (start >= kMorselSize * 4) {
                         return Status::IOError("synthetic read failure");
                       }
                       return Status::OK();
                     });
  CountingCollector sink;
  Status st = executor.RunPipeline(source, sink);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
}

class FailingSink : public DataSink {
 public:
  Result<std::unique_ptr<LocalSinkState>> InitLocal() override {
    struct S : LocalSinkState {};
    return std::unique_ptr<LocalSinkState>(new S());
  }
  Status Sink(DataChunk &, LocalSinkState &) override {
    if (count_.fetch_add(1) >= 3) {
      return Status::Internal("sink gave up");
    }
    return Status::OK();
  }
  Status Combine(LocalSinkState &) override { return Status::OK(); }

 private:
  std::atomic<int> count_{0};
};

TEST(TaskExecutorTest, SinkErrorAbortsPipeline) {
  TaskExecutor executor(2);
  auto source = CountingSource(kMorselSize * 8);
  FailingSink sink;
  Status st = executor.RunPipeline(source, sink);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(TaskExecutorTest, RunTasksExecutesEachOnce) {
  TaskExecutor executor(4);
  std::atomic<int> counters[16] = {};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 16; i++) {
    tasks.push_back([&counters, i]() {
      counters[i].fetch_add(1);
      return Status::OK();
    });
  }
  ASSERT_TRUE(executor.RunTasks(tasks).ok());
  for (int i = 0; i < 16; i++) {
    EXPECT_EQ(counters[i].load(), 1) << "task " << i;
  }
}

TEST(TaskExecutorTest, RunTasksPropagatesFirstError) {
  TaskExecutor executor(4);
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 8; i++) {
    tasks.push_back([i]() {
      if (i == 5) {
        return Status::InvalidArgument("task 5 failed");
      }
      return Status::OK();
    });
  }
  Status st = executor.RunTasks(tasks);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "task 5 failed");
}

TEST(TaskExecutorTest, DeadlineInterruptsPipeline) {
  TaskExecutor executor(2);
  // A source that never runs dry but is slow per chunk.
  RangeSource source({LogicalTypeId::kInt64}, kMorselSize * 1000,
                     [](DataChunk &, idx_t, idx_t) {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(1));
                       return Status::OK();
                     });
  CountingCollector sink;
  executor.SetDeadline(0.05);
  auto start = std::chrono::steady_clock::now();
  Status st = executor.RunPipeline(source, sink);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsTimeout());
  EXPECT_LT(elapsed, 5.0);  // interrupted long before the source ends
}

TEST(TaskExecutorTest, ClearDeadline) {
  TaskExecutor executor(1);
  executor.SetDeadline(0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(executor.CheckDeadline().IsTimeout());
  executor.ClearDeadline();
  EXPECT_TRUE(executor.CheckDeadline().ok());
}

TEST(TaskExecutorTest, RewindAllowsSecondScan) {
  TaskExecutor executor(2);
  auto source = CountingSource(100000);
  CountingCollector sink;
  ASSERT_TRUE(executor.RunPipeline(source, sink).ok());
  ASSERT_TRUE(source.Rewind().ok());
  ASSERT_TRUE(executor.RunPipeline(source, sink).ok());
  EXPECT_EQ(sink.TotalRows(), 200000u);
}

}  // namespace
}  // namespace ssagg
