// Tests for the Section IX extension: adaptive early partition-wise
// aggregation during phase 1 under memory pressure.

#include <gtest/gtest.h>

#include <unistd.h>

#include <map>

#include "ssagg/ssagg.h"

namespace ssagg {
namespace {

class EarlyAggregationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "ssagg_early_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
  }
  std::string temp_dir_;
};

// Uniform random keys recurring at intervals far larger than the phase-1
// table: the regime where groups are materialized many times (paper
// Section V, "Data Distributions") and early aggregation pays off.
constexpr idx_t kRows = 2000000;
constexpr idx_t kKeys = 50000;

RangeSource MakeDupHeavySource() {
  return RangeSource({LogicalTypeId::kInt64, LogicalTypeId::kInt64}, kRows,
                     [](DataChunk &chunk, idx_t start, idx_t count) {
                       for (idx_t i = 0; i < count; i++) {
                         idx_t row = start + i;
                         chunk.column(0).SetValue<int64_t>(
                             i, static_cast<int64_t>(HashUint64(row) % kKeys));
                         chunk.column(1).SetValue<int64_t>(i, 1);
                       }
                       return Status::OK();
                     });
}

struct RunResult {
  HashAggregateStats stats;
  BufferManagerSnapshot snapshot;
  idx_t groups;
  int64_t checksum;
};

RunResult RunQuery(bool early, const std::string &temp_dir) {
  BufferManager bm(temp_dir, 48 * kPageSize);  // 12 MiB: heavy pressure
  TaskExecutor executor(2);
  auto source = MakeDupHeavySource();
  MaterializedCollector collector;
  HashAggregateConfig config;
  config.phase1_capacity = 4096;
  config.radix_bits = 3;
  // Early compaction is a mechanism of the radix materializing path; pin
  // the plan so the on/off comparison exercises it deterministically.
  config.strategy = AggregateStrategy::kRadixMerge;
  config.early_aggregation = early ? EarlyAggMode::kOn : EarlyAggMode::kOff;
  config.early_aggregation_ratio = 0.6;
  auto stats = RunGroupedAggregation(bm, source, {0},
                                     {{AggregateKind::kSum, 1}}, collector,
                                     executor, config);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  RunResult result;
  result.stats = stats.ok() ? stats.value() : HashAggregateStats{};
  result.snapshot = bm.Snapshot();
  result.groups = collector.RowCount();
  result.checksum = 0;
  for (const auto &row : collector.rows()) {
    result.checksum += row[0].GetInt64() * 31 + row[1].GetInt64();
  }
  return result;
}

TEST_F(EarlyAggregationTest, ReducesIntermediatesAndIO) {
  RunResult off = RunQuery(false, temp_dir_);
  RunResult on = RunQuery(true, temp_dir_);

  // Same answer either way.
  EXPECT_EQ(on.groups, off.groups);
  EXPECT_EQ(on.groups, kKeys);
  EXPECT_EQ(on.checksum, off.checksum);

  // Early aggregation actually ran and eliminated duplicated groups.
  EXPECT_EQ(off.stats.early_compactions, 0u);
  EXPECT_GT(on.stats.early_compactions, 0u);
  EXPECT_GT(on.stats.early_compacted_rows, 0u);

  // The intermediates that reached phase 2 are smaller (materialized_rows
  // counts what is handed to phase 2, post-compaction), and so is the
  // temporary-file high-water mark.
  EXPECT_LT(on.stats.materialized_rows, off.stats.materialized_rows);
  EXPECT_LT(on.snapshot.temp_file_peak, off.snapshot.temp_file_peak);
}

TEST_F(EarlyAggregationTest, NoOpWithAmpleMemory) {
  BufferManager bm(temp_dir_, 2048 * kPageSize);
  TaskExecutor executor(2);
  auto source = MakeDupHeavySource();
  CountingCollector collector;
  HashAggregateConfig config;
  config.phase1_capacity = 4096;
  config.strategy = AggregateStrategy::kRadixMerge;
  config.early_aggregation = EarlyAggMode::kOn;
  auto stats = RunGroupedAggregation(bm, source, {0},
                                     {{AggregateKind::kSum, 1}}, collector,
                                     executor, config);
  ASSERT_TRUE(stats.ok());
  // Below the pressure threshold nothing is compacted.
  EXPECT_EQ(stats.value().early_compactions, 0u);
  EXPECT_EQ(collector.TotalRows(), kKeys);
}

TEST_F(EarlyAggregationTest, WorksWithStringsAndStickyPayloads) {
  BufferManager bm(temp_dir_, 64 * kPageSize);
  TaskExecutor executor(2);
  RangeSource source(
      {LogicalTypeId::kInt64, LogicalTypeId::kVarchar}, 500000,
      [](DataChunk &chunk, idx_t start, idx_t count) {
        for (idx_t i = 0; i < count; i++) {
          idx_t row = start + i;
          int64_t key = static_cast<int64_t>(HashUint64(row) % 20000);
          chunk.column(0).SetValue<int64_t>(i, key);
          chunk.column(1).SetString(
              i, "payload_string_for_" + std::to_string(key));
        }
        return Status::OK();
      });
  MaterializedCollector collector;
  HashAggregateConfig config;
  config.phase1_capacity = 4096;
  config.radix_bits = 3;
  config.strategy = AggregateStrategy::kRadixMerge;
  config.early_aggregation = EarlyAggMode::kOn;
  config.early_aggregation_ratio = 0.5;
  auto stats = RunGroupedAggregation(bm, source, {0},
                                     {{AggregateKind::kAnyValue, 1}},
                                     collector, executor, config);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(collector.RowCount(), 20000u);
  EXPECT_GT(stats.value().early_compactions, 0u);
  for (const auto &row : collector.rows()) {
    EXPECT_EQ(row[1].GetString(),
              "payload_string_for_" + std::to_string(row[0].GetInt64()));
  }
}

}  // namespace
}  // namespace ssagg
