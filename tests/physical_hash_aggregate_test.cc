#include "core/physical_hash_aggregate.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <map>

#include "common/file_system.h"
#include "core/run_aggregation.h"
#include "execution/collectors.h"
#include "execution/range_source.h"

namespace ssagg {
namespace {

class HashAggregateE2ETest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "ssagg_e2e_test_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
  }
  idx_t Threads() const { return static_cast<idx_t>(GetParam()); }
  std::string temp_dir_;
};

// Source schema: [int64 key, int64 value, varchar label]
std::vector<LogicalTypeId> SourceTypes() {
  return {LogicalTypeId::kInt64, LogicalTypeId::kInt64,
          LogicalTypeId::kVarchar};
}

RangeSource MakeSource(idx_t total_rows, idx_t num_groups) {
  return RangeSource(
      SourceTypes(), total_rows,
      [num_groups](DataChunk &chunk, idx_t start, idx_t count) {
        for (idx_t i = 0; i < count; i++) {
          idx_t row = start + i;
          int64_t key = static_cast<int64_t>(row % num_groups);
          chunk.column(0).SetValue<int64_t>(i, key);
          chunk.column(1).SetValue<int64_t>(i, static_cast<int64_t>(row));
          chunk.column(2).SetString(
              i, "label_for_group_" + std::to_string(key));
        }
        return Status::OK();
      });
}

// Per-group reference: key k receives rows k, k+G, k+2G, ...
void CheckSums(const MaterializedCollector &collector, idx_t total_rows,
               idx_t num_groups) {
  ASSERT_EQ(collector.RowCount(), num_groups);
  std::map<int64_t, std::pair<int64_t, int64_t>> seen;  // key -> (sum, count)
  for (const auto &row : collector.rows()) {
    ASSERT_EQ(row.size(), 4u);  // key, SUM, COUNT, ANY_VALUE(label)
    int64_t key = row[0].GetInt64();
    ASSERT_TRUE(seen.emplace(key, std::make_pair(row[1].GetInt64(),
                                                 row[2].GetInt64()))
                    .second)
        << "duplicate group " << key;
    EXPECT_EQ(row[3].GetString(), "label_for_group_" + std::to_string(key));
  }
  for (idx_t k = 0; k < num_groups; k++) {
    idx_t occurrences = (total_rows - k + num_groups - 1) / num_groups;
    int64_t expected_sum = 0;
    for (idx_t j = 0; j < occurrences; j++) {
      expected_sum += static_cast<int64_t>(k + j * num_groups);
    }
    auto it = seen.find(static_cast<int64_t>(k));
    ASSERT_NE(it, seen.end()) << "missing group " << k;
    EXPECT_EQ(it->second.first, expected_sum) << "sum of group " << k;
    EXPECT_EQ(it->second.second, static_cast<int64_t>(occurrences));
  }
}

TEST_P(HashAggregateE2ETest, LowCardinality) {
  BufferManager bm(temp_dir_, 512 * kPageSize);
  TaskExecutor executor(Threads());
  auto source = MakeSource(100000, 4);
  MaterializedCollector collector;
  HashAggregateConfig config;
  config.phase1_capacity = 4096;
  auto stats = RunGroupedAggregation(
      bm, source, {0},
      {{AggregateKind::kSum, 1},
       {AggregateKind::kCountStar, kInvalidIndex},
       {AggregateKind::kAnyValue, 2}},
      collector, executor, config);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  CheckSums(collector, 100000, 4);
  // Low-cardinality: tiny materialization (4 groups per thread-run).
  EXPECT_LE(stats.value().materialized_rows, 4 * Threads() * 4u);
}

TEST_P(HashAggregateE2ETest, HighCardinalityInMemory) {
  BufferManager bm(temp_dir_, 2048 * kPageSize);
  TaskExecutor executor(Threads());
  constexpr idx_t kRows = 200000;
  constexpr idx_t kGroups = 50000;
  auto source = MakeSource(kRows, kGroups);
  MaterializedCollector collector;
  HashAggregateConfig config;
  config.phase1_capacity = 4096;  // force resets: groups >> capacity
  config.radix_bits = 3;
  auto stats = RunGroupedAggregation(
      bm, source, {0},
      {{AggregateKind::kSum, 1},
       {AggregateKind::kCountStar, kInvalidIndex},
       {AggregateKind::kAnyValue, 2}},
      collector, executor, config);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  CheckSums(collector, kRows, kGroups);
  EXPECT_GT(stats.value().phase1_resets, 0u);
  // Duplicate groups across resets: more materialized rows than groups.
  EXPECT_GT(stats.value().materialized_rows, kGroups);
  EXPECT_EQ(stats.value().unique_groups, kGroups);
}

TEST_P(HashAggregateE2ETest, ExternalAggregationWithTinyMemoryLimit) {
  // Memory limit below the intermediate size: phase 1 must spill and
  // phase 2 must reload, with correct results. The limit respects the
  // algorithm's minimum (threads x partitions x 2 pinned build pages, plus
  // one aggregated partition per thread in phase 2 -- Section V).
  BufferManager bm(temp_dir_, 160 * kPageSize);  // 40 MiB
  TaskExecutor executor(Threads());
  constexpr idx_t kRows = 600000;
  constexpr idx_t kGroups = 600000;  // every group unique: worst case
  auto source = MakeSource(kRows, kGroups);
  MaterializedCollector collector;
  HashAggregateConfig config;
  config.phase1_capacity = 1024;  // keep pinned working set tiny
  config.radix_bits = 3;
  auto stats = RunGroupedAggregation(
      bm, source, {0},
      {{AggregateKind::kSum, 1},
       {AggregateKind::kCountStar, kInvalidIndex},
       {AggregateKind::kAnyValue, 2}},
      collector, executor, config);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  CheckSums(collector, kRows, kGroups);
  auto snap = bm.Snapshot();
  EXPECT_GT(snap.temp_writes, 0u) << "expected spilling to temporary files";
  EXPECT_GT(snap.temp_reads, 0u);
  // Eager destruction: everything is freed afterwards.
  EXPECT_EQ(snap.temp_file_size, 0u);
  EXPECT_EQ(bm.memory_used(), 0u);
}

TEST_P(HashAggregateE2ETest, GroupByStringColumn) {
  BufferManager bm(temp_dir_, 512 * kPageSize);
  TaskExecutor executor(Threads());
  constexpr idx_t kRows = 50000;
  constexpr idx_t kGroups = 700;
  auto source = MakeSource(kRows, kGroups);
  MaterializedCollector collector;
  HashAggregateConfig config;
  config.phase1_capacity = 4096;
  auto stats = RunGroupedAggregation(
      bm, source, {2}, {{AggregateKind::kCountStar, kInvalidIndex}},
      collector, executor, config);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(collector.RowCount(), kGroups);
  int64_t total = 0;
  for (const auto &row : collector.rows()) {
    total += row[1].GetInt64();
  }
  EXPECT_EQ(total, static_cast<int64_t>(kRows));
}

TEST_P(HashAggregateE2ETest, MultiColumnGroups) {
  BufferManager bm(temp_dir_, 512 * kPageSize);
  TaskExecutor executor(Threads());
  constexpr idx_t kRows = 60000;
  RangeSource source(
      SourceTypes(), kRows, [](DataChunk &chunk, idx_t start, idx_t count) {
        for (idx_t i = 0; i < count; i++) {
          idx_t row = start + i;
          chunk.column(0).SetValue<int64_t>(i, static_cast<int64_t>(row % 10));
          chunk.column(1).SetValue<int64_t>(i, static_cast<int64_t>(row % 7));
          chunk.column(2).SetString(i, "x");
        }
        return Status::OK();
      });
  MaterializedCollector collector;
  auto stats = RunGroupedAggregation(
      bm, source, {0, 1}, {{AggregateKind::kCountStar, kInvalidIndex}},
      collector, executor, HashAggregateConfig{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(collector.RowCount(), 70u);  // 10 x 7 combinations
}

TEST_P(HashAggregateE2ETest, OffsetCollectorKeepsOneRow) {
  BufferManager bm(temp_dir_, 512 * kPageSize);
  TaskExecutor executor(Threads());
  constexpr idx_t kGroups = 12345;
  auto source = MakeSource(50000, kGroups);
  OffsetCollector collector(kGroups - 1);
  auto stats = RunGroupedAggregation(
      bm, source, {0}, {{AggregateKind::kCountStar, kInvalidIndex}},
      collector, executor, HashAggregateConfig{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(collector.TotalRows(), kGroups);
  EXPECT_EQ(collector.kept_rows().size(), 1u);
}

TEST_P(HashAggregateE2ETest, EmptyInput) {
  BufferManager bm(temp_dir_, 512 * kPageSize);
  TaskExecutor executor(Threads());
  auto source = MakeSource(0, 1);
  MaterializedCollector collector;
  auto stats = RunGroupedAggregation(
      bm, source, {0}, {{AggregateKind::kCountStar, kInvalidIndex}},
      collector, executor, HashAggregateConfig{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(collector.RowCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, HashAggregateE2ETest,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace ssagg
