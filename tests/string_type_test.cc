#include "common/string_type.h"

#include <gtest/gtest.h>

#include <string>

namespace ssagg {

TEST(StringTypeTest, EmptyString) {
  string_t s;
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.IsInlined());
  EXPECT_EQ(s.ToString(), "");
}

TEST(StringTypeTest, InlinedBoundary) {
  std::string twelve = "abcdefghijkl";
  ASSERT_EQ(twelve.size(), 12u);
  string_t s(twelve);
  EXPECT_TRUE(s.IsInlined());
  EXPECT_EQ(s.ToString(), twelve);
}

TEST(StringTypeTest, NonInlinedBoundary) {
  std::string thirteen = "abcdefghijklm";
  ASSERT_EQ(thirteen.size(), 13u);
  string_t s(thirteen);
  EXPECT_FALSE(s.IsInlined());
  EXPECT_EQ(s.ToString(), thirteen);
  // The prefix holds the first 4 characters.
  EXPECT_EQ(std::string(s.value.pointer.prefix, 4), "abcd");
}

TEST(StringTypeTest, EqualityInlined) {
  EXPECT_EQ(string_t("abc", 3), string_t("abc", 3));
  EXPECT_NE(string_t("abc", 3), string_t("abd", 3));
  EXPECT_NE(string_t("abc", 3), string_t("abcd", 4));
}

TEST(StringTypeTest, EqualityNonInlined) {
  std::string a = "the quick brown fox";
  std::string b = "the quick brown fox";
  std::string c = "the quick brown foy";
  EXPECT_EQ(string_t(a), string_t(b));
  EXPECT_NE(string_t(a), string_t(c));
}

TEST(StringTypeTest, PrefixShortCircuitsComparison) {
  // Same length, different prefix: must compare unequal without touching
  // the (equal-suffix) data.
  std::string a = "aaaa_common_suffix";
  std::string b = "bbbb_common_suffix";
  EXPECT_NE(string_t(a), string_t(b));
}

TEST(StringTypeTest, PointerRecomputationRoundTrip) {
  // Simulates what the page layout does after a heap page moves: the
  // character data is memcpy'd to a new address and the pointer is patched.
  std::string payload = "this string is long enough to not inline";
  std::vector<char> old_page(payload.begin(), payload.end());
  string_t s(old_page.data(), static_cast<uint32_t>(payload.size()));
  ASSERT_FALSE(s.IsInlined());

  std::vector<char> new_page = old_page;  // reloaded elsewhere
  // recompute: new = stored - old_base + new_base
  const char *stored = s.Pointer();
  s.SetPointer(new_page.data() + (stored - old_page.data()));
  EXPECT_EQ(s.ToString(), payload);
  EXPECT_EQ(s.Pointer(), new_page.data());
}

TEST(StringTypeTest, Ordering) {
  EXPECT_LT(string_t("abc", 3), string_t("abd", 3));
  EXPECT_LT(string_t("ab", 2), string_t("abc", 3));
  EXPECT_LT(string_t(std::string("aaaaaaaaaaaaaaaaaa")),
            string_t(std::string("aaaaaaaaaaaaaaaaab")));
}

}  // namespace ssagg
