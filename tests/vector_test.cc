#include "common/vector.h"

#include <gtest/gtest.h>

#include "common/hash.h"

namespace ssagg {

TEST(ValidityMaskTest, AllValidByDefault) {
  ValidityMask mask;
  EXPECT_TRUE(mask.AllValid());
  EXPECT_TRUE(mask.RowIsValid(0));
  EXPECT_TRUE(mask.RowIsValid(1000));
  EXPECT_EQ(mask.CountValid(100), 100u);
}

TEST(ValidityMaskTest, SetInvalidAndBack) {
  ValidityMask mask;
  mask.SetInvalid(5);
  EXPECT_FALSE(mask.RowIsValid(5));
  EXPECT_TRUE(mask.RowIsValid(4));
  EXPECT_TRUE(mask.RowIsValid(6));
  EXPECT_EQ(mask.CountValid(10), 9u);
  mask.SetValid(5);
  EXPECT_TRUE(mask.RowIsValid(5));
}

TEST(ValidityMaskTest, WordBoundary) {
  ValidityMask mask;
  mask.SetInvalid(63);
  mask.SetInvalid(64);
  EXPECT_FALSE(mask.RowIsValid(63));
  EXPECT_FALSE(mask.RowIsValid(64));
  EXPECT_TRUE(mask.RowIsValid(62));
  EXPECT_TRUE(mask.RowIsValid(65));
}

TEST(VectorTest, TypedAccess) {
  Vector v(LogicalTypeId::kInt64);
  for (idx_t i = 0; i < kVectorSize; i++) {
    v.SetValue<int64_t>(i, static_cast<int64_t>(i * 7));
  }
  for (idx_t i = 0; i < kVectorSize; i++) {
    EXPECT_EQ(v.GetValue<int64_t>(i), static_cast<int64_t>(i * 7));
  }
}

TEST(VectorTest, StringsGoThroughHeap) {
  Vector v(LogicalTypeId::kVarchar);
  v.SetString(0, "short");
  v.SetString(1, "a string that is definitely not inlined");
  EXPECT_EQ(v.GetString(0).ToString(), "short");
  EXPECT_EQ(v.GetString(1).ToString(),
            "a string that is definitely not inlined");
  EXPECT_GT(v.heap().SizeInBytes(), 0u);
}

TEST(DataChunkTest, InitializeAndTypes) {
  DataChunk chunk({LogicalTypeId::kInt32, LogicalTypeId::kVarchar});
  EXPECT_EQ(chunk.ColumnCount(), 2u);
  EXPECT_EQ(chunk.size(), 0u);
  chunk.SetCount(10);
  EXPECT_EQ(chunk.size(), 10u);
  auto types = chunk.Types();
  EXPECT_EQ(types[0], LogicalTypeId::kInt32);
  EXPECT_EQ(types[1], LogicalTypeId::kVarchar);
}

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(HashUint64(42), HashUint64(42));
  EXPECT_NE(HashUint64(42), HashUint64(43));
  // Top 16 bits (the salt region) must vary for consecutive keys.
  int distinct_salts = 0;
  uint16_t last = 0;
  for (uint64_t i = 0; i < 64; i++) {
    auto salt = static_cast<uint16_t>(HashUint64(i) >> 48);
    if (i == 0 || salt != last) {
      distinct_salts++;
    }
    last = salt;
  }
  EXPECT_GT(distinct_salts, 32);
}

TEST(HashTest, StringHashMatchesBytes) {
  string_t s("hello world, long enough to spill", 33);
  EXPECT_EQ(HashString(s), HashBytes(s.data(), s.size()));
}

TEST(HashTest, VectorHashNullsAreStable) {
  Vector v(LogicalTypeId::kInt32);
  v.SetValue<int32_t>(0, 1);
  v.SetValue<int32_t>(1, 1);
  v.validity().SetInvalid(1);
  hash_t hashes[2];
  VectorHash(v, 2, hashes);
  EXPECT_NE(hashes[0], hashes[1]);  // NULL hashes differently from 1
  Vector w(LogicalTypeId::kInt32);
  w.SetValue<int32_t>(0, 99);
  w.validity().SetInvalid(0);
  hash_t other[1];
  VectorHash(w, 1, other);
  EXPECT_EQ(other[0], hashes[1]);  // all NULLs hash alike
}

TEST(HashTest, ChunkHashCombinesColumns) {
  DataChunk chunk({LogicalTypeId::kInt32, LogicalTypeId::kInt32});
  chunk.column(0).SetValue<int32_t>(0, 1);
  chunk.column(1).SetValue<int32_t>(0, 2);
  chunk.column(0).SetValue<int32_t>(1, 2);
  chunk.column(1).SetValue<int32_t>(1, 1);
  chunk.SetCount(2);
  hash_t hashes[2];
  ChunkHash(chunk, {0, 1}, hashes);
  // (1,2) and (2,1) must not collide: combination is order-sensitive.
  EXPECT_NE(hashes[0], hashes[1]);
}

}  // namespace ssagg
