#include "common/async_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "buffer/buffer_manager.h"
#include "buffer/temporary_file_manager.h"
#include "common/file_system.h"
#include "testing/fault_fs.h"
#include "testing/fault_injector.h"

namespace ssagg {
namespace {

class AsyncIoTest : public ::testing::TestWithParam<IoBackendKind> {
 protected:
  void SetUp() override {
    temp_dir_ =
        ::testing::TempDir() + "ssagg_aio_test_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
    backend_ = CreateIoBackend(GetParam(), 2);
  }

  std::unique_ptr<FileHandle> OpenScratch(const std::string &name) {
    FileOpenFlags flags;
    flags.read = true;
    flags.write = true;
    flags.create = true;
    flags.truncate = true;
    auto file = FileSystem::Default().Open(temp_dir_ + "/" + name, flags);
    EXPECT_TRUE(file.ok()) << file.status().ToString();
    return file.MoveValue();
  }

  std::string temp_dir_;
  std::unique_ptr<AsyncIoBackend> backend_;
};

TEST_P(AsyncIoTest, WriteReadRoundtrip) {
  auto file = OpenScratch("roundtrip.bin");
  constexpr idx_t kChunk = 64 * 1024;
  constexpr idx_t kChunks = 8;
  std::vector<std::vector<data_t>> payloads(kChunks);
  std::vector<IoCompletionPtr> writes;
  for (idx_t i = 0; i < kChunks; i++) {
    payloads[i].assign(kChunk, static_cast<data_t>('a' + i));
    IoRequest request;
    request.kind = IoRequest::Kind::kWrite;
    request.file = file.get();
    request.buffer = payloads[i].data();
    request.bytes = kChunk;
    request.offset = i * kChunk;
    writes.push_back(backend_->Submit(std::move(request)));
  }
  backend_->Drain();
  for (auto &write : writes) {
    EXPECT_TRUE(write->Wait().ok());
  }
  EXPECT_EQ(backend_->InFlight(), 0u);
  // Read everything back (also async) and verify byte identity.
  std::vector<data_t> readback(kChunks * kChunk, 0);
  std::vector<IoCompletionPtr> reads;
  for (idx_t i = 0; i < kChunks; i++) {
    IoRequest request;
    request.kind = IoRequest::Kind::kRead;
    request.file = file.get();
    request.buffer = readback.data() + i * kChunk;
    request.bytes = kChunk;
    request.offset = i * kChunk;
    reads.push_back(backend_->Submit(std::move(request)));
  }
  for (auto &read : reads) {
    ASSERT_TRUE(read->Wait().ok());
  }
  for (idx_t i = 0; i < kChunks; i++) {
    EXPECT_EQ(readback[i * kChunk], static_cast<data_t>('a' + i));
    EXPECT_EQ(readback[(i + 1) * kChunk - 1], static_cast<data_t>('a' + i));
  }
}

TEST_P(AsyncIoTest, CompletionCallbackFiresExactlyOnce) {
  auto file = OpenScratch("callback.bin");
  std::vector<data_t> payload(4096, 0x5A);
  std::atomic<int> calls{0};
  IoRequest request;
  request.kind = IoRequest::Kind::kWrite;
  request.file = file.get();
  request.buffer = payload.data();
  request.bytes = payload.size();
  request.offset = 0;
  request.on_complete = [&](const Status &status) {
    EXPECT_TRUE(status.ok()) << status.ToString();
    calls.fetch_add(1);
  };
  auto completion = backend_->Submit(std::move(request));
  ASSERT_TRUE(completion->Wait().ok());
  backend_->Drain();
  EXPECT_EQ(calls.load(), 1);
}

TEST_P(AsyncIoTest, InjectedSubmitFaultFailsCleanly) {
  auto file = OpenScratch("submit_fault.bin");
  FaultInjector injector;
  FaultInjector::Config config;
  config.site_mask = FaultSiteBit(FaultSite::kAsyncSubmit);
  config.fail_at = 1;
  injector.Reset(config);
  backend_->SetFaultInjector(&injector);
  std::vector<data_t> payload(4096, 0x11);
  std::atomic<int> errors{0};
  IoRequest request;
  request.kind = IoRequest::Kind::kWrite;
  request.file = file.get();
  request.buffer = payload.data();
  request.bytes = payload.size();
  request.offset = 0;
  request.on_complete = [&](const Status &status) {
    if (!status.ok()) {
      errors.fetch_add(1);
    }
  };
  auto completion = backend_->Submit(std::move(request));
  EXPECT_FALSE(completion->Wait().ok());
  EXPECT_EQ(errors.load(), 1);
  EXPECT_EQ(injector.faults_injected(), 1u);
  // One-shot: the next submission goes through.
  IoRequest retry;
  retry.kind = IoRequest::Kind::kWrite;
  retry.file = file.get();
  retry.buffer = payload.data();
  retry.bytes = payload.size();
  retry.offset = 0;
  EXPECT_TRUE(backend_->Submit(std::move(retry))->Wait().ok());
  backend_->SetFaultInjector(nullptr);
}

TEST_P(AsyncIoTest, InjectedCompleteFaultSurfacesAfterIo) {
  auto file = OpenScratch("complete_fault.bin");
  FaultInjector injector;
  FaultInjector::Config config;
  config.site_mask = FaultSiteBit(FaultSite::kAsyncComplete);
  config.fail_at = 1;
  injector.Reset(config);
  backend_->SetFaultInjector(&injector);
  std::vector<data_t> payload(4096, 0x22);
  IoRequest request;
  request.kind = IoRequest::Kind::kWrite;
  request.file = file.get();
  request.buffer = payload.data();
  request.bytes = payload.size();
  request.offset = 0;
  EXPECT_FALSE(backend_->Submit(std::move(request))->Wait().ok());
  EXPECT_EQ(injector.faults_injected(), 1u);
  backend_->SetFaultInjector(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Backends, AsyncIoTest,
                         ::testing::Values(IoBackendKind::kSync,
                                           IoBackendKind::kThreadPool,
                                           IoBackendKind::kIoUring),
                         [](const auto &info) {
                           return std::string(IoBackendKindName(info.param));
                         });

TEST(AsyncIoEnvTest, BackendKindParsing) {
  ::setenv("SSAGG_TEST_IO_BACKEND", "threadpool", 1);
  EXPECT_EQ(IoBackendKindFromEnv("SSAGG_TEST_IO_BACKEND"),
            IoBackendKind::kThreadPool);
  ::setenv("SSAGG_TEST_IO_BACKEND", "io_uring", 1);
  EXPECT_EQ(IoBackendKindFromEnv("SSAGG_TEST_IO_BACKEND"),
            IoBackendKind::kIoUring);
  ::setenv("SSAGG_TEST_IO_BACKEND", "sync", 1);
  EXPECT_EQ(IoBackendKindFromEnv("SSAGG_TEST_IO_BACKEND"),
            IoBackendKind::kSync);
  ::setenv("SSAGG_TEST_IO_BACKEND", "nonsense", 1);
  EXPECT_EQ(IoBackendKindFromEnv("SSAGG_TEST_IO_BACKEND"),
            IoBackendKind::kSync);
  ::unsetenv("SSAGG_TEST_IO_BACKEND");
  EXPECT_EQ(IoBackendKindFromEnv("SSAGG_TEST_IO_BACKEND"),
            IoBackendKind::kSync);
}

//===----------------------------------------------------------------------===//
// TemporaryFileManager: coalescing and compression
//===----------------------------------------------------------------------===//

class SpillIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_dir_ =
        ::testing::TempDir() + "ssagg_spill_io_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
  }
  std::string temp_dir_;
};

TEST_F(SpillIoTest, BatchedWritesCoalesceAdjacentSlots) {
  auto backend = CreateIoBackend(IoBackendKind::kThreadPool, 2);
  TemporaryFileManager tfm(temp_dir_, FileSystem::Default(), backend.get(),
                           /*spill_compression=*/false);
  constexpr idx_t kBatch = 4;
  std::vector<std::unique_ptr<FileBuffer>> pages;
  std::vector<FixedSpillRequest> requests(kBatch);
  for (idx_t i = 0; i < kBatch; i++) {
    pages.push_back(std::make_unique<FileBuffer>(kPageSize));
    std::memset(pages[i]->data(), static_cast<int>('A' + i), kPageSize);
    requests[i].buffer = pages[i].get();
  }
  tfm.WriteFixedBlocks(requests.data(), kBatch);
  for (auto &request : requests) {
    ASSERT_TRUE(request.status.ok()) << request.status.ToString();
    ASSERT_NE(request.slot, kInvalidIndex);
  }
  // Fresh slots are consecutive, so the whole batch merges into one write
  // (async backends cap runs at four pages — longer runs would serialize a
  // deep batch into one transfer and forfeit submission parallelism — and
  // kBatch sits exactly at that cap).
  EXPECT_EQ(tfm.CoalescedWrites(), 1u);
  EXPECT_EQ(tfm.CoalescedPages(), kBatch);
  EXPECT_EQ(tfm.UsedSlots(), kBatch);
  // Each page reads back intact and releases its slot.
  for (idx_t i = 0; i < kBatch; i++) {
    FileBuffer readback(kPageSize);
    ASSERT_TRUE(tfm.ReadFixedBlock(requests[i].slot, readback).ok());
    EXPECT_EQ(readback.data()[0], static_cast<data_t>('A' + i));
    EXPECT_EQ(readback.data()[kPageSize - 1], static_cast<data_t>('A' + i));
  }
  EXPECT_EQ(tfm.UsedSlots(), 0u);
}

TEST_F(SpillIoTest, CompressionShrinksBytesWrittenAndRoundtrips) {
  auto backend = CreateIoBackend(IoBackendKind::kSync);
  TemporaryFileManager tfm(temp_dir_, FileSystem::Default(), backend.get(),
                           /*spill_compression=*/true);
  // A structured page (mostly-small deltas in 64-bit words) compresses well.
  auto page = std::make_unique<FileBuffer>(kPageSize);
  auto *words = reinterpret_cast<uint64_t *>(page->data());
  for (idx_t i = 0; i < kPageSize / sizeof(uint64_t); i++) {
    words[i] = 1000000 + i % 97;
  }
  FixedSpillRequest request;
  request.buffer = page.get();
  tfm.WriteFixedBlocks(&request, 1);
  ASSERT_TRUE(request.status.ok());
  EXPECT_LT(tfm.BytesWritten(), tfm.RawBytesWritten());
  EXPECT_EQ(tfm.RawBytesWritten(), kPageSize);
  FileBuffer readback(kPageSize);
  ASSERT_TRUE(tfm.ReadFixedBlock(request.slot, readback).ok());
  EXPECT_EQ(std::memcmp(readback.data(), page->data(), kPageSize), 0);
}

TEST_F(SpillIoTest, IncompressiblePageStaysRaw) {
  auto backend = CreateIoBackend(IoBackendKind::kSync);
  TemporaryFileManager tfm(temp_dir_, FileSystem::Default(), backend.get(),
                           /*spill_compression=*/true);
  // Pseudo-random bytes defeat both byte-RLE and word-FoR; the page must be
  // stored raw (no frame) and still roundtrip.
  auto page = std::make_unique<FileBuffer>(kPageSize);
  uint64_t state = 0x9E3779B97F4A7C15ULL;
  for (idx_t i = 0; i < kPageSize; i++) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    page->data()[i] = static_cast<data_t>(state >> 33);
  }
  FixedSpillRequest request;
  request.buffer = page.get();
  tfm.WriteFixedBlocks(&request, 1);
  ASSERT_TRUE(request.status.ok());
  EXPECT_EQ(tfm.BytesWritten(), kPageSize);
  FileBuffer readback(kPageSize);
  ASSERT_TRUE(tfm.ReadFixedBlock(request.slot, readback).ok());
  EXPECT_EQ(std::memcmp(readback.data(), page->data(), kPageSize), 0);
}

//===----------------------------------------------------------------------===//
// BufferManager: prefetch
//===----------------------------------------------------------------------===//

TEST_F(SpillIoTest, PrefetchWarmsSpilledBlock) {
  BufferManagerOptions options;
  options.io_backend = IoBackendKind::kThreadPool;
  BufferManager bm(temp_dir_, 2 * kPageSize, options);
  // Two blocks in a two-page pool: allocating the second evicts the first
  // (over-eviction may spill both, which is fine).
  std::vector<std::shared_ptr<BlockHandle>> blocks(3);
  for (idx_t i = 0; i < 3; i++) {
    auto res = bm.Allocate(kPageSize, &blocks[i]);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    auto handle = res.MoveValue();
    std::memset(handle.Ptr(), static_cast<int>(i + 1), kPageSize);
  }
  ASSERT_GT(bm.Snapshot().temp_writes, 0u);
  // Warm the spilled blocks; Pin waits for the in-flight load, so no sleep
  // is needed for determinism.
  bm.Prefetch(blocks[0]);
  auto pin = bm.Pin(blocks[0]);
  ASSERT_TRUE(pin.ok()) << pin.status().ToString();
  auto handle = pin.MoveValue();
  EXPECT_EQ(handle.Ptr()[0], 1);
  EXPECT_EQ(handle.Ptr()[kPageSize - 1], 1);
  EXPECT_GE(bm.Snapshot().prefetch_issued, 1u);
}

TEST_F(SpillIoTest, FailedPrefetchPoisonsThenRecovers) {
  FaultInjector injector;
  FaultInjector::Config config;
  config.site_mask = FaultSiteBit(FaultSite::kRead);
  config.fail_at = 0;  // armed later
  injector.Reset(config);
  FaultInjectingFileSystem fault_fs(FileSystem::Default(), injector);
  BufferManagerOptions options;
  options.io_backend = IoBackendKind::kThreadPool;
  BufferManager bm(temp_dir_ + "/poison", 2 * kPageSize, options, fault_fs);
  std::vector<std::shared_ptr<BlockHandle>> blocks(3);
  for (idx_t i = 0; i < 3; i++) {
    auto res = bm.Allocate(kPageSize, &blocks[i]);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    auto handle = res.MoveValue();
    std::memset(handle.Ptr(), static_cast<int>(i + 1), kPageSize);
  }
  ASSERT_GT(bm.Snapshot().temp_writes, 0u);
  // Fail the next read: the prefetch poisons the block instead of crashing.
  config.fail_at = 1;
  injector.Reset(config);
  bm.Prefetch(blocks[0]);
  auto poisoned = bm.Pin(blocks[0]);
  if (poisoned.ok()) {
    // The prefetch lost the race (skipped): the pin itself must then have
    // eaten the injected fault — nothing to recover from.
    EXPECT_EQ(injector.faults_injected(), 1u);
  } else {
    // Poison surfaced exactly once; the retry reloads cleanly (one-shot).
    auto retry = bm.Pin(blocks[0]);
    ASSERT_TRUE(retry.ok()) << retry.status().ToString();
    auto handle = retry.MoveValue();
    EXPECT_EQ(handle.Ptr()[0], 1);
    EXPECT_EQ(handle.Ptr()[kPageSize - 1], 1);
  }
  // Whatever path was taken: no pins or charges leak once blocks die.
  blocks.clear();
  EXPECT_EQ(bm.PinnedBufferCount(), 0u);
}

}  // namespace
}  // namespace ssagg
