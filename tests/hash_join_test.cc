#include "core/physical_hash_join.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <map>
#include <set>

#include "ssagg/ssagg.h"

namespace ssagg {
namespace {

class HashJoinTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "ssagg_join_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
  }
  idx_t Threads() const { return static_cast<idx_t>(GetParam()); }
  std::string temp_dir_;
};

// Build side: dimension table (id, name). Probe side: fact table
// (fk, amount).
RangeSource MakeDim(idx_t rows) {
  return RangeSource({LogicalTypeId::kInt64, LogicalTypeId::kVarchar}, rows,
                     [](DataChunk &chunk, idx_t start, idx_t count) {
                       for (idx_t i = 0; i < count; i++) {
                         idx_t row = start + i;
                         chunk.column(0).SetValue<int64_t>(
                             i, static_cast<int64_t>(row));
                         chunk.column(1).SetString(
                             i, "dimension_name_" + std::to_string(row));
                       }
                       return Status::OK();
                     });
}

RangeSource MakeFact(idx_t rows, idx_t fk_domain) {
  return RangeSource({LogicalTypeId::kInt64, LogicalTypeId::kInt64}, rows,
                     [fk_domain](DataChunk &chunk, idx_t start, idx_t count) {
                       for (idx_t i = 0; i < count; i++) {
                         idx_t row = start + i;
                         chunk.column(0).SetValue<int64_t>(
                             i, static_cast<int64_t>(HashUint64(row) %
                                                     fk_domain));
                         chunk.column(1).SetValue<int64_t>(
                             i, static_cast<int64_t>(row));
                       }
                       return Status::OK();
                     });
}

TEST_P(HashJoinTest, InnerJoinFactToDimension) {
  BufferManager bm(temp_dir_, 1024 * kPageSize);
  TaskExecutor executor(Threads());
  constexpr idx_t kDim = 5000;
  constexpr idx_t kFact = 100000;
  auto join = PhysicalHashJoin::Create(
                  bm,
                  /*build=*/{LogicalTypeId::kInt64, LogicalTypeId::kVarchar},
                  {0},
                  /*probe=*/{LogicalTypeId::kInt64, LogicalTypeId::kInt64},
                  {0})
                  .MoveValue();
  auto dim = MakeDim(kDim);
  auto fact = MakeFact(kFact, kDim);  // every fact row matches exactly once
  ASSERT_TRUE(executor.RunPipeline(dim, join->build_sink()).ok());
  ASSERT_TRUE(executor.RunPipeline(fact, join->probe_sink()).ok());
  EXPECT_EQ(join->BuildRowCount(), kDim);
  EXPECT_EQ(join->ProbeRowCount(), kFact);
  MaterializedCollector collector;
  ASSERT_TRUE(join->EmitResults(collector, executor).ok());
  ASSERT_EQ(collector.RowCount(), kFact);
  // Output: [fk, amount, id, name]; check the join predicate and payloads.
  std::set<int64_t> amounts;
  for (const auto &row : collector.rows()) {
    EXPECT_EQ(row[0].GetInt64(), row[2].GetInt64());
    EXPECT_EQ(row[3].GetString(),
              "dimension_name_" + std::to_string(row[2].GetInt64()));
    amounts.insert(row[1].GetInt64());
  }
  EXPECT_EQ(amounts.size(), kFact);  // every fact row appears exactly once
}

TEST_P(HashJoinTest, DuplicateBuildKeysMultiplyMatches) {
  BufferManager bm(temp_dir_, 1024 * kPageSize);
  TaskExecutor executor(Threads());
  // Build: keys 0..9, each appearing 3 times. Probe: keys 0..19 once each.
  RangeSource build({LogicalTypeId::kInt64, LogicalTypeId::kInt64}, 30,
                    [](DataChunk &chunk, idx_t start, idx_t count) {
                      for (idx_t i = 0; i < count; i++) {
                        chunk.column(0).SetValue<int64_t>(
                            i, static_cast<int64_t>((start + i) % 10));
                        chunk.column(1).SetValue<int64_t>(
                            i, static_cast<int64_t>(start + i));
                      }
                      return Status::OK();
                    });
  RangeSource probe({LogicalTypeId::kInt64}, 20,
                    [](DataChunk &chunk, idx_t start, idx_t count) {
                      for (idx_t i = 0; i < count; i++) {
                        chunk.column(0).SetValue<int64_t>(
                            i, static_cast<int64_t>(start + i));
                      }
                      return Status::OK();
                    });
  auto join = PhysicalHashJoin::Create(
                  bm, {LogicalTypeId::kInt64, LogicalTypeId::kInt64}, {0},
                  {LogicalTypeId::kInt64}, {0})
                  .MoveValue();
  ASSERT_TRUE(executor.RunPipeline(build, join->build_sink()).ok());
  ASSERT_TRUE(executor.RunPipeline(probe, join->probe_sink()).ok());
  MaterializedCollector collector;
  ASSERT_TRUE(join->EmitResults(collector, executor).ok());
  // Probe keys 0..9 match 3 build rows each; keys 10..19 match none.
  EXPECT_EQ(collector.RowCount(), 30u);
  std::map<int64_t, int> matches;
  for (const auto &row : collector.rows()) {
    matches[row[0].GetInt64()]++;
  }
  for (int64_t k = 0; k < 10; k++) {
    EXPECT_EQ(matches[k], 3) << "key " << k;
  }
  EXPECT_EQ(matches.count(15), 0u);
}

TEST_P(HashJoinTest, NullKeysNeverMatch) {
  BufferManager bm(temp_dir_, 1024 * kPageSize);
  TaskExecutor executor(1);
  RangeSource build({LogicalTypeId::kInt64}, 4,
                    [](DataChunk &chunk, idx_t start, idx_t count) {
                      for (idx_t i = 0; i < count; i++) {
                        chunk.column(0).SetValue<int64_t>(
                            i, static_cast<int64_t>(start + i));
                        if ((start + i) % 2 == 0) {
                          chunk.column(0).validity().SetInvalid(i);
                        }
                      }
                      return Status::OK();
                    });
  RangeSource probe({LogicalTypeId::kInt64}, 4,
                    [](DataChunk &chunk, idx_t start, idx_t count) {
                      for (idx_t i = 0; i < count; i++) {
                        chunk.column(0).SetValue<int64_t>(
                            i, static_cast<int64_t>(start + i));
                        if ((start + i) % 2 == 0) {
                          chunk.column(0).validity().SetInvalid(i);
                        }
                      }
                      return Status::OK();
                    });
  auto join = PhysicalHashJoin::Create(bm, {LogicalTypeId::kInt64}, {0},
                                       {LogicalTypeId::kInt64}, {0})
                  .MoveValue();
  ASSERT_TRUE(executor.RunPipeline(build, join->build_sink()).ok());
  ASSERT_TRUE(executor.RunPipeline(probe, join->probe_sink()).ok());
  MaterializedCollector collector;
  ASSERT_TRUE(join->EmitResults(collector, executor).ok());
  // Only the non-NULL keys 1 and 3 match (each once).
  EXPECT_EQ(collector.RowCount(), 2u);
}

TEST_P(HashJoinTest, StringKeysAndLargerThanMemoryJoin) {
  // Both sides exceed the pool: materialization spills, partitions reload,
  // string keys survive via pointer recomputation. The limit respects the
  // materialization pin floor (threads x partitions x 2 build pages).
  BufferManager bm(temp_dir_, 224 * kPageSize);  // 56 MiB
  TaskExecutor executor(Threads());
  constexpr idx_t kDim = 400000;
  constexpr idx_t kFact = 800000;
  RangeSource build({LogicalTypeId::kVarchar, LogicalTypeId::kInt64}, kDim,
                    [](DataChunk &chunk, idx_t start, idx_t count) {
                      for (idx_t i = 0; i < count; i++) {
                        idx_t row = start + i;
                        chunk.column(0).SetString(
                            i, "join_key_string_" + std::to_string(row));
                        chunk.column(1).SetValue<int64_t>(
                            i, static_cast<int64_t>(row * 2));
                      }
                      return Status::OK();
                    });
  RangeSource probe({LogicalTypeId::kVarchar}, kFact,
                    [](DataChunk &chunk, idx_t start, idx_t count) {
                      for (idx_t i = 0; i < count; i++) {
                        idx_t row = start + i;
                        chunk.column(0).SetString(
                            i, "join_key_string_" +
                                   std::to_string(HashUint64(row) % kDim));
                      }
                      return Status::OK();
                    });
  HashJoinConfig config;
  config.radix_bits = 5;
  auto join = PhysicalHashJoin::Create(
                  bm, {LogicalTypeId::kVarchar, LogicalTypeId::kInt64}, {0},
                  {LogicalTypeId::kVarchar}, {0}, config)
                  .MoveValue();
  ASSERT_TRUE(executor.RunPipeline(build, join->build_sink()).ok());
  ASSERT_TRUE(executor.RunPipeline(probe, join->probe_sink()).ok());
  EXPECT_GT(bm.Snapshot().temp_writes, 0u) << "expected spilling";
  CountingCollector collector;
  ASSERT_TRUE(join->EmitResults(collector, executor).ok());
  EXPECT_EQ(collector.TotalRows(), kFact);  // every probe row matches once
  EXPECT_EQ(bm.memory_used(), 0u);
  EXPECT_EQ(bm.Snapshot().temp_file_size, 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, HashJoinTest, ::testing::Values(1, 3));

}  // namespace
}  // namespace ssagg
