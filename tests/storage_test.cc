#include "storage/data_table.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <set>

#include "common/file_system.h"
#include "compression/codec.h"
#include "core/run_aggregation.h"
#include "execution/collectors.h"
#include "tpch/lineitem.h"

namespace ssagg {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "ssagg_storage_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
  }
  std::string temp_dir_;
};

//===----------------------------------------------------------------------===//
// Codecs
//===----------------------------------------------------------------------===//

TEST_F(StorageTest, CodecRoundTripPlainDoubles) {
  Vector v(LogicalTypeId::kDouble);
  for (idx_t i = 0; i < 100; i++) {
    v.SetValue<double>(i, i * 1.5);
  }
  v.validity().SetInvalid(7);
  std::vector<data_t> bytes;
  ASSERT_TRUE(CompressSegment(v, 100, bytes).ok());
  DecodedSegment decoded;
  ASSERT_TRUE(DecompressSegment(bytes.data(), bytes.size(),
                                LogicalTypeId::kDouble, decoded)
                  .ok());
  ASSERT_EQ(decoded.count, 100u);
  Vector out(LogicalTypeId::kDouble);
  CopyDecodedRows(decoded, 0, 100, out);
  for (idx_t i = 0; i < 100; i++) {
    if (i == 7) {
      EXPECT_FALSE(out.validity().RowIsValid(i));
    } else {
      EXPECT_EQ(out.GetValue<double>(i), i * 1.5);
    }
  }
}

TEST_F(StorageTest, CodecPicksBitpackForSmallRangeIntegers) {
  Vector v(LogicalTypeId::kInt64);
  for (idx_t i = 0; i < 2048; i++) {
    v.SetValue<int64_t>(i, 1000000 + static_cast<int64_t>(i % 16));
  }
  std::vector<data_t> bytes;
  ASSERT_TRUE(CompressSegment(v, 2048, bytes).ok());
  EXPECT_EQ(static_cast<Codec>(bytes[0]), Codec::kForBitpack);
  // 4 bits per value instead of 64.
  EXPECT_LT(bytes.size(), 2048 * 2);
  DecodedSegment decoded;
  ASSERT_TRUE(DecompressSegment(bytes.data(), bytes.size(),
                                LogicalTypeId::kInt64, decoded)
                  .ok());
  Vector out(LogicalTypeId::kInt64);
  CopyDecodedRows(decoded, 0, 2048, out);
  for (idx_t i = 0; i < 2048; i++) {
    ASSERT_EQ(out.GetValue<int64_t>(i),
              1000000 + static_cast<int64_t>(i % 16));
  }
}

TEST_F(StorageTest, CodecPicksRleForRuns) {
  Vector v(LogicalTypeId::kInt32);
  for (idx_t i = 0; i < 2048; i++) {
    v.SetValue<int32_t>(i, static_cast<int32_t>(i / 512) * 7919);
  }
  std::vector<data_t> bytes;
  ASSERT_TRUE(CompressSegment(v, 2048, bytes).ok());
  EXPECT_EQ(static_cast<Codec>(bytes[0]), Codec::kRle);
  EXPECT_LT(bytes.size(), 300u);
  DecodedSegment decoded;
  ASSERT_TRUE(DecompressSegment(bytes.data(), bytes.size(),
                                LogicalTypeId::kInt32, decoded)
                  .ok());
  Vector out(LogicalTypeId::kInt32);
  CopyDecodedRows(decoded, 0, 2048, out);
  for (idx_t i = 0; i < 2048; i++) {
    ASSERT_EQ(out.GetValue<int32_t>(i), static_cast<int32_t>(i / 512) * 7919);
  }
}

TEST_F(StorageTest, CodecRoundTripStrings) {
  Vector v(LogicalTypeId::kVarchar);
  for (idx_t i = 0; i < 500; i++) {
    v.SetString(i, i % 5 == 0 ? "x" : "a longer string value #" +
                                          std::to_string(i));
  }
  v.validity().SetInvalid(3);
  std::vector<data_t> bytes;
  ASSERT_TRUE(CompressSegment(v, 500, bytes).ok());
  EXPECT_EQ(static_cast<Codec>(bytes[0]), Codec::kStringPlain);
  DecodedSegment decoded;
  ASSERT_TRUE(DecompressSegment(bytes.data(), bytes.size(),
                                LogicalTypeId::kVarchar, decoded)
                  .ok());
  Vector out(LogicalTypeId::kVarchar);
  CopyDecodedRows(decoded, 0, 500, out);
  for (idx_t i = 0; i < 500; i++) {
    if (i == 3) {
      EXPECT_FALSE(out.validity().RowIsValid(i));
      continue;
    }
    std::string expected = i % 5 == 0 ? "x" : "a longer string value #" +
                                                  std::to_string(i);
    ASSERT_EQ(out.GetString(i).ToString(), expected);
  }
}

TEST_F(StorageTest, CodecPartialCopy) {
  Vector v(LogicalTypeId::kInt64);
  for (idx_t i = 0; i < 2048; i++) {
    v.SetValue<int64_t>(i, static_cast<int64_t>(i));
  }
  std::vector<data_t> bytes;
  ASSERT_TRUE(CompressSegment(v, 2048, bytes).ok());
  DecodedSegment decoded;
  ASSERT_TRUE(DecompressSegment(bytes.data(), bytes.size(),
                                LogicalTypeId::kInt64, decoded)
                  .ok());
  Vector out(LogicalTypeId::kInt64);
  CopyDecodedRows(decoded, 1000, 48, out);
  for (idx_t i = 0; i < 48; i++) {
    EXPECT_EQ(out.GetValue<int64_t>(i), static_cast<int64_t>(1000 + i));
  }
}

//===----------------------------------------------------------------------===//
// DataTable
//===----------------------------------------------------------------------===//

TEST_F(StorageTest, WriteAndScanTable) {
  auto block_mgr = FileBlockManager::Create(temp_dir_ + "/t1.db").MoveValue();
  BufferManager bm(temp_dir_, 256 * kPageSize);
  Schema schema = {{"id", LogicalTypeId::kInt64},
                   {"name", LogicalTypeId::kVarchar},
                   {"score", LogicalTypeId::kDouble}};
  DataTable table(*block_mgr, schema);

  DataChunk chunk({LogicalTypeId::kInt64, LogicalTypeId::kVarchar,
                   LogicalTypeId::kDouble});
  constexpr idx_t kRows = 10000;
  idx_t written = 0;
  while (written < kRows) {
    idx_t n = std::min<idx_t>(1000, kRows - written);  // odd chunk sizes
    for (idx_t i = 0; i < n; i++) {
      chunk.column(0).SetValue<int64_t>(i, static_cast<int64_t>(written + i));
      chunk.column(1).SetString(
          i, "row_" + std::to_string(written + i) + "_payload_string");
      chunk.column(2).SetValue<double>(i, (written + i) * 0.25);
    }
    chunk.SetCount(n);
    ASSERT_TRUE(table.Append(chunk).ok());
    chunk.Reset();
    written += n;
  }
  ASSERT_TRUE(table.FinalizeAppend().ok());
  EXPECT_EQ(table.RowCount(), kRows);
  EXPECT_GT(table.BlockCount(), 0u);

  auto source = table.MakeScanSource(bm, {0, 1, 2});
  TaskExecutor executor(2);
  MaterializedCollector collector;
  // Identity "aggregation" scan: group by id.
  auto stats = RunGroupedAggregation(bm, *source, {0},
                                     {{AggregateKind::kAnyValue, 1},
                                      {AggregateKind::kSum, 2}},
                                     collector, executor,
                                     HashAggregateConfig{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(collector.RowCount(), kRows);
  std::set<int64_t> seen;
  for (const auto &row : collector.rows()) {
    int64_t id = row[0].GetInt64();
    EXPECT_TRUE(seen.insert(id).second);
    EXPECT_EQ(row[1].GetString(),
              "row_" + std::to_string(id) + "_payload_string");
    EXPECT_DOUBLE_EQ(row[2].GetDouble(), id * 0.25);
  }
}

TEST_F(StorageTest, ScanWithTinyPoolEvictsPersistentPagesForFree) {
  auto block_mgr = FileBlockManager::Create(temp_dir_ + "/t2.db").MoveValue();
  // A pool far smaller than table + intermediates: persistent pages must
  // be evicted (for free) to make room.
  BufferManager bm(temp_dir_, 40 * kPageSize);
  Schema schema = {{"id", LogicalTypeId::kInt64},
                   {"payload", LogicalTypeId::kVarchar}};
  DataTable table(*block_mgr, schema);
  DataChunk chunk({LogicalTypeId::kInt64, LogicalTypeId::kVarchar});
  constexpr idx_t kRows = 300000;
  for (idx_t start = 0; start < kRows; start += kVectorSize) {
    idx_t n = std::min(kVectorSize, kRows - start);
    for (idx_t i = 0; i < n; i++) {
      chunk.column(0).SetValue<int64_t>(i, static_cast<int64_t>(start + i));
      chunk.column(1).SetString(i, "some longer payload value #" +
                                       std::to_string((start + i) % 100));
    }
    chunk.SetCount(n);
    ASSERT_TRUE(table.Append(chunk).ok());
    chunk.Reset();
  }
  ASSERT_TRUE(table.FinalizeAppend().ok());
  EXPECT_GT(table.BlockCount(), 40u);  // more blocks than the pool holds

  // Scan twice: pages are loaded, evicted (for free), and reloaded.
  for (int round = 0; round < 2; round++) {
    auto source = table.MakeScanSource(bm, {0});
    TaskExecutor executor(2);
    CountingCollector collector;
    auto stats = RunGroupedAggregation(
        bm, *source, {0}, {}, collector, executor, HashAggregateConfig{
            /*phase1_capacity=*/1024, /*radix_bits=*/2});
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(collector.TotalRows(), kRows);
  }
  auto snap = bm.Snapshot();
  EXPECT_GT(snap.evicted_persistent_count, 0u);
}

TEST_F(StorageTest, LineitemThroughStorageMatchesGenerator) {
  auto block_mgr = FileBlockManager::Create(temp_dir_ + "/li.db").MoveValue();
  BufferManager bm(temp_dir_, 512 * kPageSize);
  tpch::LineitemGenerator gen(0.1);
  DataTable table(*block_mgr, tpch::LineitemSchema());

  std::vector<idx_t> all_cols;
  for (idx_t c = 0; c < tpch::kColumnCount; c++) {
    all_cols.push_back(c);
  }
  DataChunk chunk(tpch::LineitemGenerator::ColumnTypes(all_cols));
  for (idx_t start = 0; start < gen.RowCount(); start += kVectorSize) {
    idx_t n = std::min(kVectorSize, gen.RowCount() - start);
    ASSERT_TRUE(gen.FillChunk(chunk, all_cols, start, n).ok());
    ASSERT_TRUE(table.Append(chunk).ok());
    chunk.Reset();
  }
  ASSERT_TRUE(table.FinalizeAppend().ok());
  EXPECT_EQ(table.RowCount(), gen.RowCount());
  // Lightweight compression beats the plain row size.
  idx_t plain_bytes = 0;
  for (auto c : all_cols) {
    plain_bytes += gen.RowCount() * TypeWidth(tpch::LineitemSchema()[c].type);
  }
  EXPECT_LT(table.CompressedBytes(), plain_bytes);

  // Aggregating from storage gives the same group count as generating.
  auto query = BuildGroupingQuery(tpch::TableIGroupings()[4], false);
  auto table_source = table.MakeScanSource(bm, query.projection);
  auto gen_source = gen.MakeSource(query.projection);
  TaskExecutor executor(2);
  CountingCollector from_table, from_gen;
  ASSERT_TRUE(RunGroupedAggregation(bm, *table_source, query.group_columns,
                                    query.aggregates, from_table, executor,
                                    HashAggregateConfig{})
                  .ok());
  ASSERT_TRUE(RunGroupedAggregation(bm, *gen_source, query.group_columns,
                                    query.aggregates, from_gen, executor,
                                    HashAggregateConfig{})
                  .ok());
  EXPECT_EQ(from_table.TotalRows(), from_gen.TotalRows());
  EXPECT_GT(from_table.TotalRows(), 0u);
}

}  // namespace
}  // namespace ssagg
