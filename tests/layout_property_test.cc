// Property sweep for the spillable page layout: random schemas and random
// data (with NULLs and mixed inline/heap strings) must round-trip through
// append -> (optional spill/reload cycles) -> scan byte-for-byte, for every
// combination in the sweep.

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "common/file_system.h"
#include "common/hash.h"
#include "common/random.h"
#include "layout/tuple_data_collection.h"

namespace ssagg {
namespace {

struct LayoutSweepParams {
  uint64_t seed;
  idx_t rows;
  idx_t memory_pages;  // pool size; small values force spill cycles
  int scan_rounds;
};

std::string ParamName(const ::testing::TestParamInfo<LayoutSweepParams> &info) {
  const auto &p = info.param;
  return "s" + std::to_string(p.seed) + "_r" + std::to_string(p.rows) +
         "_m" + std::to_string(p.memory_pages) + "_x" +
         std::to_string(p.scan_rounds);
}

class LayoutPropertyTest : public ::testing::TestWithParam<LayoutSweepParams> {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "ssagg_layout_prop_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
  }
  std::string temp_dir_;
};

const LogicalTypeId kTypePool[] = {LogicalTypeId::kInt32,
                                   LogicalTypeId::kInt64,
                                   LogicalTypeId::kDouble,
                                   LogicalTypeId::kVarchar,
                                   LogicalTypeId::kDate};

std::vector<LogicalTypeId> RandomSchema(RandomEngine &rng) {
  idx_t ncols = 1 + rng.NextRange(6);
  std::vector<LogicalTypeId> types;
  bool has_string = false;
  for (idx_t c = 0; c < ncols; c++) {
    auto type = kTypePool[rng.NextRange(5)];
    has_string |= type == LogicalTypeId::kVarchar;
    types.push_back(type);
  }
  if (!has_string) {
    types.push_back(LogicalTypeId::kVarchar);  // always exercise the heap
  }
  return types;
}

/// Deterministic value of (seed, row, column); used to fill and to verify.
std::string ExpectedString(uint64_t seed, idx_t row, idx_t col) {
  uint64_t r = HashUint64(seed * 1315423911ULL + row * 31 + col);
  idx_t len = r % 40;  // 0..39: mixes inlined and non-inlined
  std::string s;
  s.reserve(len);
  for (idx_t i = 0; i < len; i++) {
    s.push_back(static_cast<char>('a' + ((r >> (i % 32)) + i) % 26));
  }
  return s;
}

bool IsNull(uint64_t seed, idx_t row, idx_t col) {
  return HashUint64(seed + row * 7919 + col * 104729) % 11 == 0;
}

int64_t ExpectedNumeric(uint64_t seed, idx_t row, idx_t col) {
  return static_cast<int64_t>(HashUint64(seed ^ (row * 131 + col)));
}

TEST_P(LayoutPropertyTest, RoundTripUnderSpillPressure) {
  const auto &p = GetParam();
  RandomEngine rng(p.seed);
  auto types = RandomSchema(rng);
  BufferManager bm(temp_dir_, p.memory_pages * kPageSize);
  TupleDataLayout layout;
  layout.Initialize(types);
  TupleDataCollection data(bm, layout);
  TupleDataAppendState append;

  DataChunk chunk(types);
  for (idx_t start = 0; start < p.rows; start += kVectorSize) {
    idx_t n = std::min(kVectorSize, p.rows - start);
    for (idx_t c = 0; c < types.size(); c++) {
      Vector &vec = chunk.column(c);
      for (idx_t i = 0; i < n; i++) {
        idx_t row = start + i;
        if (IsNull(p.seed, row, c)) {
          vec.validity().SetInvalid(i);
          continue;
        }
        switch (types[c]) {
          case LogicalTypeId::kInt32:
          case LogicalTypeId::kDate:
            vec.SetValue<int32_t>(
                i, static_cast<int32_t>(ExpectedNumeric(p.seed, row, c)));
            break;
          case LogicalTypeId::kInt64:
            vec.SetValue<int64_t>(i, ExpectedNumeric(p.seed, row, c));
            break;
          case LogicalTypeId::kDouble:
            vec.SetValue<double>(
                i, static_cast<double>(ExpectedNumeric(p.seed, row, c)) *
                       0.125);
            break;
          case LogicalTypeId::kVarchar:
            vec.SetString(i, ExpectedString(p.seed, row, c));
            break;
          default:
            break;
        }
      }
    }
    chunk.SetCount(n);
    ASSERT_TRUE(data.AppendRows(append, chunk, nullptr, n, nullptr).ok());
    append.Release();  // allow spilling between chunks
    chunk.Reset();
  }
  ASSERT_EQ(data.Count(), p.rows);

  // Multiple scan rounds: each one may force the others' pages out again.
  DataChunk out(types);
  for (int round = 0; round < p.scan_rounds; round++) {
    TupleDataScanState scan;
    data.InitScan(scan);
    idx_t row = 0;
    while (true) {
      auto more = data.Scan(scan, out);
      ASSERT_TRUE(more.ok()) << more.status().ToString();
      if (!more.value()) {
        break;
      }
      for (idx_t i = 0; i < out.size(); i++, row++) {
        for (idx_t c = 0; c < types.size(); c++) {
          const Vector &vec = out.column(c);
          if (IsNull(p.seed, row, c)) {
            ASSERT_FALSE(vec.validity().RowIsValid(i))
                << "row " << row << " col " << c;
            continue;
          }
          ASSERT_TRUE(vec.validity().RowIsValid(i))
              << "row " << row << " col " << c;
          switch (types[c]) {
            case LogicalTypeId::kInt32:
            case LogicalTypeId::kDate:
              ASSERT_EQ(vec.GetValue<int32_t>(i),
                        static_cast<int32_t>(
                            ExpectedNumeric(p.seed, row, c)));
              break;
            case LogicalTypeId::kInt64:
              ASSERT_EQ(vec.GetValue<int64_t>(i),
                        ExpectedNumeric(p.seed, row, c));
              break;
            case LogicalTypeId::kDouble:
              ASSERT_EQ(vec.GetValue<double>(i),
                        static_cast<double>(
                            ExpectedNumeric(p.seed, row, c)) *
                            0.125);
              break;
            case LogicalTypeId::kVarchar:
              ASSERT_EQ(vec.GetString(i).ToString(),
                        ExpectedString(p.seed, row, c))
                  << "row " << row << " col " << c;
              break;
            default:
              break;
          }
        }
      }
    }
    ASSERT_EQ(row, p.rows) << "round " << round;
  }
  // Ample-memory runs must never have touched the temporary file.
  if (p.memory_pages >= 512) {
    EXPECT_EQ(bm.Snapshot().temp_writes, 0u);
  } else {
    EXPECT_GT(bm.Snapshot().temp_writes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayoutPropertyTest,
    ::testing::Values(LayoutSweepParams{11, 30000, 512, 1},
                      LayoutSweepParams{22, 60000, 8, 2},
                      LayoutSweepParams{33, 50000, 6, 3},
                      LayoutSweepParams{44, 2048, 512, 1},
                      LayoutSweepParams{55, 100000, 12, 2},
                      LayoutSweepParams{66, 1, 512, 1}),
    ParamName);

}  // namespace
}  // namespace ssagg
