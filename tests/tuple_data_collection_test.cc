#include "layout/tuple_data_collection.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "common/file_system.h"
#include "common/random.h"
#include "layout/partitioned_tuple_data.h"

namespace ssagg {
namespace {

class TupleDataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "ssagg_tdc_test_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
  }
  std::string temp_dir_;
};

std::string MakeString(idx_t i) {
  // Mix of inlined (short) and non-inlined (long) strings.
  std::string s = "value_" + std::to_string(i);
  if (i % 3 == 0) {
    s += "_padded_with_a_long_suffix_to_exceed_inline";
  }
  return s;
}

void FillChunk(DataChunk &chunk, idx_t start, idx_t count) {
  for (idx_t i = 0; i < count; i++) {
    chunk.column(0).SetValue<int64_t>(i, static_cast<int64_t>(start + i));
    chunk.column(1).SetString(i, MakeString(start + i));
    chunk.column(2).SetValue<double>(i, static_cast<double>(start + i) * 0.5);
  }
  chunk.SetCount(count);
}

std::vector<LogicalTypeId> TestTypes() {
  return {LogicalTypeId::kInt64, LogicalTypeId::kVarchar,
          LogicalTypeId::kDouble};
}

TEST_F(TupleDataTest, LayoutOffsets) {
  TupleDataLayout layout;
  layout.Initialize(TestTypes(), /*aggregate_state_width=*/24);
  // 1 validity byte, then 8 + 16 + 8 bytes of columns; the aggregate-state
  // area is 8-byte aligned (states are accessed as typed structs), so
  // offset 33 rounds up to 40.
  EXPECT_EQ(layout.ValidityBytes(), 1u);
  EXPECT_EQ(layout.ColumnOffset(0), 1u);
  EXPECT_EQ(layout.ColumnOffset(1), 9u);
  EXPECT_EQ(layout.ColumnOffset(2), 25u);
  EXPECT_EQ(layout.AggregateOffset(), 40u);
  EXPECT_EQ(layout.RowWidth(), 64u);
  EXPECT_FALSE(layout.AllConstantSize());
  ASSERT_EQ(layout.VarSizeColumns().size(), 1u);
  EXPECT_EQ(layout.VarSizeColumns()[0], 1u);
}

TEST_F(TupleDataTest, AppendAndScanInMemory) {
  BufferManager bm(temp_dir_, 256 * kPageSize);
  TupleDataLayout layout;
  layout.Initialize(TestTypes());
  TupleDataCollection data(bm, layout);
  TupleDataAppendState append;

  DataChunk chunk(TestTypes());
  constexpr idx_t kRows = 5000;
  for (idx_t start = 0; start < kRows; start += kVectorSize) {
    idx_t n = std::min(kVectorSize, kRows - start);
    FillChunk(chunk, start, n);
    std::vector<data_ptr_t> ptrs(n);
    ASSERT_TRUE(data.AppendRows(append, chunk, nullptr, n, ptrs.data()).ok());
  }
  EXPECT_EQ(data.Count(), kRows);
  append.Release();

  TupleDataScanState scan;
  data.InitScan(scan);
  DataChunk out(TestTypes());
  idx_t seen = 0;
  while (true) {
    auto more = data.Scan(scan, out);
    ASSERT_TRUE(more.ok());
    if (!more.value()) {
      break;
    }
    for (idx_t i = 0; i < out.size(); i++) {
      idx_t id = static_cast<idx_t>(out.column(0).GetValue<int64_t>(i));
      EXPECT_EQ(out.column(1).GetString(i).ToString(), MakeString(id));
      EXPECT_EQ(out.column(2).GetValue<double>(i), id * 0.5);
      seen++;
    }
  }
  EXPECT_EQ(seen, kRows);
}

TEST_F(TupleDataTest, SpillReloadRecomputesStringPointers) {
  // Pool of 6 pages; the collection will need more, forcing spills of both
  // row and heap pages between append and scan.
  BufferManager bm(temp_dir_, 6 * kPageSize);
  TupleDataLayout layout;
  layout.Initialize(TestTypes());
  TupleDataCollection data(bm, layout);
  TupleDataAppendState append;

  DataChunk chunk(TestTypes());
  constexpr idx_t kRows = 60000;  // several row pages, several heap pages
  for (idx_t start = 0; start < kRows; start += kVectorSize) {
    idx_t n = std::min(kVectorSize, kRows - start);
    FillChunk(chunk, start, n);
    ASSERT_TRUE(data.AppendRows(append, chunk, nullptr, n, nullptr).ok());
    // Unpin after every chunk so pages can spill mid-append.
    append.Release();
  }
  EXPECT_GT(bm.Snapshot().temp_writes, 0u) << "expected spilling";

  TupleDataScanState scan;
  data.InitScan(scan);
  DataChunk out(TestTypes());
  idx_t seen = 0;
  while (true) {
    auto more = data.Scan(scan, out);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!more.value()) {
      break;
    }
    for (idx_t i = 0; i < out.size(); i++) {
      idx_t id = static_cast<idx_t>(out.column(0).GetValue<int64_t>(i));
      ASSERT_EQ(out.column(1).GetString(i).ToString(), MakeString(id))
          << "row " << seen + i;
      seen++;
    }
  }
  EXPECT_EQ(seen, kRows);
}

TEST_F(TupleDataTest, ScanTwiceAfterRepeatedSpills) {
  // Every scan can force the other pages out; pointers must survive
  // arbitrary spill/reload cycles because recomputation updates old_base.
  BufferManager bm(temp_dir_, 4 * kPageSize);
  TupleDataLayout layout;
  layout.Initialize(TestTypes());
  TupleDataCollection data(bm, layout);
  TupleDataAppendState append;
  DataChunk chunk(TestTypes());
  constexpr idx_t kRows = 30000;
  for (idx_t start = 0; start < kRows; start += kVectorSize) {
    idx_t n = std::min(kVectorSize, kRows - start);
    FillChunk(chunk, start, n);
    ASSERT_TRUE(data.AppendRows(append, chunk, nullptr, n, nullptr).ok());
    append.Release();
  }
  DataChunk out(TestTypes());
  for (int round = 0; round < 3; round++) {
    TupleDataScanState scan;
    data.InitScan(scan);
    idx_t seen = 0;
    while (true) {
      auto more = data.Scan(scan, out);
      ASSERT_TRUE(more.ok());
      if (!more.value()) {
        break;
      }
      for (idx_t i = 0; i < out.size(); i++) {
        idx_t id = static_cast<idx_t>(out.column(0).GetValue<int64_t>(i));
        ASSERT_EQ(out.column(1).GetString(i).ToString(), MakeString(id));
        seen++;
      }
    }
    EXPECT_EQ(seen, kRows) << "round " << round;
  }
}

TEST_F(TupleDataTest, DestroyAfterScanFreesPages) {
  BufferManager bm(temp_dir_, 64 * kPageSize);
  TupleDataLayout layout;
  layout.Initialize(TestTypes());
  TupleDataCollection data(bm, layout);
  TupleDataAppendState append;
  DataChunk chunk(TestTypes());
  constexpr idx_t kRows = 30000;
  for (idx_t start = 0; start < kRows; start += kVectorSize) {
    idx_t n = std::min(kVectorSize, kRows - start);
    FillChunk(chunk, start, n);
    ASSERT_TRUE(data.AppendRows(append, chunk, nullptr, n, nullptr).ok());
  }
  append.Release();
  idx_t before = bm.memory_used();
  EXPECT_GT(before, 0u);
  TupleDataScanState scan;
  data.InitScan(scan, /*destroy_after_scan=*/true);
  DataChunk out(TestTypes());
  idx_t seen = 0;
  while (true) {
    auto more = data.Scan(scan, out);
    ASSERT_TRUE(more.ok());
    if (!more.value()) {
      break;
    }
    seen += out.size();
  }
  EXPECT_EQ(seen, kRows);
  EXPECT_EQ(bm.memory_used(), 0u);
}

TEST_F(TupleDataTest, NullsRoundTrip) {
  BufferManager bm(temp_dir_, 64 * kPageSize);
  TupleDataLayout layout;
  layout.Initialize(TestTypes());
  TupleDataCollection data(bm, layout);
  TupleDataAppendState append;
  DataChunk chunk(TestTypes());
  FillChunk(chunk, 0, 100);
  for (idx_t i = 0; i < 100; i += 7) {
    chunk.column(1).validity().SetInvalid(i);
  }
  for (idx_t i = 0; i < 100; i += 11) {
    chunk.column(2).validity().SetInvalid(i);
  }
  ASSERT_TRUE(data.AppendRows(append, chunk, nullptr, 100, nullptr).ok());
  append.Release();
  TupleDataScanState scan;
  data.InitScan(scan);
  DataChunk out(TestTypes());
  auto more = data.Scan(scan, out);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(more.value());
  ASSERT_EQ(out.size(), 100u);
  for (idx_t i = 0; i < 100; i++) {
    EXPECT_EQ(out.column(1).validity().RowIsValid(i), i % 7 != 0) << i;
    EXPECT_EQ(out.column(2).validity().RowIsValid(i), i % 11 != 0) << i;
    EXPECT_TRUE(out.column(0).validity().RowIsValid(i));
  }
}

TEST_F(TupleDataTest, SelectionVectorAppend) {
  BufferManager bm(temp_dir_, 64 * kPageSize);
  TupleDataLayout layout;
  layout.Initialize(TestTypes());
  TupleDataCollection data(bm, layout);
  TupleDataAppendState append;
  DataChunk chunk(TestTypes());
  FillChunk(chunk, 0, 100);
  idx_t sel[3] = {5, 50, 99};
  data_ptr_t ptrs[3];
  ASSERT_TRUE(data.AppendRows(append, chunk, sel, 3, ptrs).ok());
  EXPECT_EQ(data.Count(), 3u);
  // Row pointers are immediately dereferenceable while pins are held.
  for (int i = 0; i < 3; i++) {
    int64_t v;
    std::memcpy(&v, ptrs[i] + layout.ColumnOffset(0), sizeof(v));
    EXPECT_EQ(v, static_cast<int64_t>(sel[i]));
  }
}

TEST_F(TupleDataTest, CombineMovesPages) {
  BufferManager bm(temp_dir_, 64 * kPageSize);
  TupleDataLayout layout;
  layout.Initialize(TestTypes());
  TupleDataCollection a(bm, layout);
  TupleDataCollection b(bm, layout);
  TupleDataAppendState sa, sb;
  DataChunk chunk(TestTypes());
  FillChunk(chunk, 0, 100);
  ASSERT_TRUE(a.AppendRows(sa, chunk, nullptr, 100, nullptr).ok());
  FillChunk(chunk, 100, 100);
  ASSERT_TRUE(b.AppendRows(sb, chunk, nullptr, 100, nullptr).ok());
  sa.Release();
  sb.Release();
  a.Combine(b);
  EXPECT_EQ(a.Count(), 200u);
  EXPECT_EQ(b.Count(), 0u);
  TupleDataScanState scan;
  a.InitScan(scan);
  DataChunk out(TestTypes());
  idx_t seen = 0;
  std::vector<bool> found(200, false);
  while (true) {
    auto more = a.Scan(scan, out);
    ASSERT_TRUE(more.ok());
    if (!more.value()) {
      break;
    }
    for (idx_t i = 0; i < out.size(); i++) {
      idx_t id = static_cast<idx_t>(out.column(0).GetValue<int64_t>(i));
      ASSERT_LT(id, 200u);
      EXPECT_FALSE(found[id]);
      found[id] = true;
      EXPECT_EQ(out.column(1).GetString(i).ToString(), MakeString(id));
      seen++;
    }
  }
  EXPECT_EQ(seen, 200u);
}

TEST_F(TupleDataTest, PartitionedAppendRoutesByRadix) {
  BufferManager bm(temp_dir_, 128 * kPageSize);
  TupleDataLayout layout;
  layout.Initialize(TestTypes());
  constexpr idx_t kRadixBits = 3;
  PartitionedTupleData parts(bm, layout, kRadixBits);
  EXPECT_EQ(parts.PartitionCount(), 8u);

  DataChunk chunk(TestTypes());
  RandomEngine rng(42);
  std::vector<hash_t> hashes(kVectorSize);
  idx_t total = 0;
  for (int c = 0; c < 10; c++) {
    FillChunk(chunk, c * kVectorSize, kVectorSize);
    for (idx_t i = 0; i < kVectorSize; i++) {
      hashes[i] = rng.NextUint64();
    }
    std::vector<data_ptr_t> ptrs(kVectorSize);
    ASSERT_TRUE(parts.Append(chunk, hashes.data(), nullptr, kVectorSize,
                             ptrs.data()).ok());
    total += kVectorSize;
  }
  EXPECT_EQ(parts.Count(), total);
  // With uniform random hashes all partitions should be populated and
  // roughly equal ("partitions are of roughly equal size", Section V).
  idx_t min_count = total, max_count = 0;
  for (idx_t p = 0; p < parts.PartitionCount(); p++) {
    min_count = std::min(min_count, parts.partition(p).Count());
    max_count = std::max(max_count, parts.partition(p).Count());
  }
  EXPECT_GT(min_count, 0u);
  EXPECT_LT(max_count, 2 * total / parts.PartitionCount());
  parts.ReleaseAppendPins();
}

TEST_F(TupleDataTest, VisitRowsSeesAllRows) {
  BufferManager bm(temp_dir_, 64 * kPageSize);
  TupleDataLayout layout;
  layout.Initialize({LogicalTypeId::kInt64});
  TupleDataCollection data(bm, layout);
  TupleDataAppendState append;
  DataChunk chunk({LogicalTypeId::kInt64});
  constexpr idx_t kRows = 40000;  // multiple pages
  for (idx_t start = 0; start < kRows; start += kVectorSize) {
    idx_t n = std::min(kVectorSize, kRows - start);
    for (idx_t i = 0; i < n; i++) {
      chunk.column(0).SetValue<int64_t>(i, static_cast<int64_t>(start + i));
    }
    chunk.SetCount(n);
    ASSERT_TRUE(data.AppendRows(append, chunk, nullptr, n, nullptr).ok());
  }
  int64_t sum = 0;
  idx_t visited = 0;
  ASSERT_TRUE(data.VisitRows(append, [&](data_ptr_t row) {
    int64_t v;
    std::memcpy(&v, row + layout.ColumnOffset(0), sizeof(v));
    sum += v;
    visited++;
  }).ok());
  EXPECT_EQ(visited, kRows);
  EXPECT_EQ(sum, static_cast<int64_t>(kRows) * (kRows - 1) / 2);
  append.Release();
}

TEST_F(TupleDataTest, OversizedStringGetsVariablePage) {
  BufferManager bm(temp_dir_, 64 * kPageSize);
  TupleDataLayout layout;
  layout.Initialize({LogicalTypeId::kVarchar});
  TupleDataCollection data(bm, layout);
  TupleDataAppendState append;
  DataChunk chunk({LogicalTypeId::kVarchar});
  std::string huge(kPageSize + 100, 'x');
  huge[0] = 'y';
  huge[huge.size() - 1] = 'z';
  chunk.column(0).SetString(0, huge);
  chunk.SetCount(1);
  ASSERT_TRUE(data.AppendRows(append, chunk, nullptr, 1, nullptr).ok());
  append.Release();
  TupleDataScanState scan;
  data.InitScan(scan);
  DataChunk out({LogicalTypeId::kVarchar});
  auto more = data.Scan(scan, out);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(more.value());
  EXPECT_EQ(out.column(0).GetString(0).ToString(), huge);
}

}  // namespace
}  // namespace ssagg
