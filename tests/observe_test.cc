// Tests for the observability subsystem: metrics-registry exactness under
// concurrency, JSON round trips, trace-event well-formedness, and the
// QueryProfile counters of a spilling aggregation against the
// temporary-file manager's ground truth.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/file_system.h"
#include "common/hash.h"
#include "common/mutex.h"
#include "core/run_aggregation.h"
#include "execution/collectors.h"
#include "execution/range_source.h"
#include "observe/flight_recorder.h"
#include "observe/json.h"
#include "observe/metrics.h"
#include "observe/profile.h"
#include "observe/progress.h"
#include "observe/trace.h"

namespace ssagg {
namespace {

Result<std::string> ReadWholeFile(const std::string &path) {
  SSAGG_ASSIGN_OR_RETURN(
      auto handle, FileSystem::Default().Open(path, FileOpenFlags{}));
  SSAGG_ASSIGN_OR_RETURN(idx_t size, handle->FileSize());
  std::string contents(size, '\0');
  SSAGG_RETURN_NOT_OK(handle->Read(contents.data(), size, 0));
  return contents;
}

// ---------------------------------------------------------------- metrics

TEST(MetricsRegistryTest, ConcurrentUpdatesSumExactly) {
  MetricsRegistry registry;
  idx_t key_a = registry.KeyId("test.a");
  idx_t key_b = registry.KeyId("test.b");
  ASSERT_NE(key_a, key_b);
  EXPECT_EQ(registry.KeyId("test.a"), key_a) << "key ids must be stable";

  constexpr idx_t kThreads = 8;
  constexpr uint64_t kIncrements = 100000;
  std::vector<std::thread> threads;
  for (idx_t t = 0; t < kThreads; t++) {
    threads.emplace_back([&registry, key_a, key_b, t]() {
      for (uint64_t i = 0; i < kIncrements; i++) {
        registry.Add(key_a, 1);
        registry.Add(key_b, t + 1);
      }
    });
  }
  for (auto &thread : threads) {
    thread.join();
  }
  // Exactness: every increment from every (now joined) thread is retained —
  // shards outlive their threads.
  EXPECT_EQ(registry.Value("test.a"), kThreads * kIncrements);
  uint64_t expected_b = 0;
  for (idx_t t = 0; t < kThreads; t++) {
    expected_b += (t + 1) * kIncrements;
  }
  EXPECT_EQ(registry.Value("test.b"), expected_b);

  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.at("test.a"), kThreads * kIncrements);
  EXPECT_EQ(snapshot.at("test.b"), expected_b);

  registry.Reset();
  EXPECT_EQ(registry.Value("test.a"), 0u);
  EXPECT_EQ(registry.KeyCount(), 2u) << "Reset keeps keys registered";
}

TEST(MetricsRegistryTest, TwoRegistriesDoNotAlias) {
  // Alternating between registries on one thread exercises the one-entry
  // thread-local shard cache: a stale cache hit would cross-count.
  MetricsRegistry first;
  MetricsRegistry second;
  idx_t key_first = first.KeyId("x");
  idx_t key_second = second.KeyId("x");
  for (int i = 0; i < 1000; i++) {
    first.Add(key_first, 1);
    second.Add(key_second, 2);
  }
  EXPECT_EQ(first.Value("x"), 1000u);
  EXPECT_EQ(second.Value("x"), 2000u);
}

TEST(MetricsRegistryTest, ScopedTimerAccumulatesNanoseconds) {
  MetricsRegistry registry;
  idx_t key = registry.KeyId("test.elapsed_ns");
  {
    ScopedTimerNs timer(registry, key);
    volatile uint64_t sink = 0;
    for (uint64_t i = 0; i < 100000; i++) {
      sink += i;
    }
  }
  EXPECT_GT(registry.Value("test.elapsed_ns"), 0u);
}

// ------------------------------------------------------------------- json

TEST(JsonTest, RoundTripPreservesStructureAndValues) {
  Json doc = Json::Object();
  doc.Set("uint", Json(uint64_t(1) << 63 | 7));
  doc.Set("int", Json(int64_t(-42)));
  doc.Set("double", Json(2.5));
  doc.Set("bool", Json(true));
  doc.Set("null", Json());
  doc.Set("string", Json("quote\" backslash\\ newline\n tab\t"));
  Json array = Json::Array();
  array.Push(Json(uint64_t(1)));
  array.Push(Json("two"));
  Json nested = Json::Object();
  nested.Set("deep", Json(uint64_t(3)));
  array.Push(std::move(nested));
  doc.Set("array", std::move(array));

  for (int indent : {0, 2}) {
    auto parsed = Json::Parse(doc.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const Json &p = parsed.value();
    EXPECT_EQ(p.Find("uint")->AsUint(), uint64_t(1) << 63 | 7)
        << "counters must survive bit-exactly";
    EXPECT_EQ(p.Find("int")->AsInt(), -42);
    EXPECT_EQ(p.Find("double")->AsDouble(), 2.5);
    EXPECT_TRUE(p.Find("bool")->AsBool());
    EXPECT_TRUE(p.Find("null")->IsNull());
    EXPECT_EQ(p.Find("string")->AsString(),
              "quote\" backslash\\ newline\n tab\t");
    const Json *arr = p.Find("array");
    ASSERT_TRUE(arr != nullptr && arr->IsArray());
    ASSERT_EQ(arr->elements().size(), 3u);
    EXPECT_EQ(arr->elements()[0].AsUint(), 1u);
    EXPECT_EQ(arr->elements()[1].AsString(), "two");
    EXPECT_EQ(arr->elements()[2].Find("deep")->AsUint(), 3u);
  }
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  for (const char *bad : {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated",
                          "{\"a\":1} trailing"}) {
    EXPECT_FALSE(Json::Parse(bad).ok()) << "accepted: " << bad;
  }
}

TEST(JsonTest, ParsesUnicodeEscapes) {
  auto parsed = Json::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().AsString(), "A\xc3\xa9");
}

// ------------------------------------------------------------------ trace

struct SpanEvent {
  uint64_t tid;
  uint64_t start;
  uint64_t end;
};

/// Spans on one thread's track must be laminar: any two either disjoint or
/// one containing the other (RAII spans cannot partially overlap).
void CheckLaminarNesting(const std::vector<SpanEvent> &spans) {
  for (idx_t i = 0; i < spans.size(); i++) {
    for (idx_t j = i + 1; j < spans.size(); j++) {
      const SpanEvent &a = spans[i];
      const SpanEvent &b = spans[j];
      if (a.tid != b.tid) {
        continue;
      }
      bool disjoint = a.end <= b.start || b.end <= a.start;
      bool a_in_b = b.start <= a.start && a.end <= b.end;
      bool b_in_a = a.start <= b.start && b.end <= a.end;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << "spans partially overlap on tid " << a.tid << ": [" << a.start
          << "," << a.end << ") vs [" << b.start << "," << b.end << ")";
    }
  }
}

TEST(TraceRecorderTest, RoundTripsWithWellFormedNesting) {
  TraceRecorder &recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.Enable("");  // buffer only

  {
    TraceSpan outer("outer", "test", 1);
    {
      TraceSpan inner("inner", "test");
      recorder.EmitInstant("tick", "test", 7);
    }
    TraceSpan sibling("sibling", "test");
  }
  std::thread worker([]() {
    TraceSpan outer("thread_outer", "test");
    TraceSpan inner("thread_inner", "test");
  });
  worker.join();
  recorder.EmitCounter("cnt", 42);
  recorder.Disable();
  ASSERT_GE(recorder.EventCount(), 6u);

  // Round trip: everything the recorder dumps must parse back.
  auto parsed = Json::Parse(recorder.ToJson().Dump(1));
  recorder.Clear();
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json *events = parsed.value().Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->IsArray());

  std::vector<SpanEvent> spans;
  bool saw_instant = false;
  bool saw_counter = false;
  for (const Json &event : events->elements()) {
    // Chrome-trace required fields.
    ASSERT_TRUE(event.Find("name") != nullptr);
    ASSERT_TRUE(event.Find("ph") != nullptr);
    ASSERT_TRUE(event.Find("pid") != nullptr);
    ASSERT_TRUE(event.Find("tid") != nullptr);
    ASSERT_TRUE(event.Find("ts") != nullptr);
    const std::string &phase = event.Find("ph")->AsString();
    if (phase == "X") {
      const Json *dur = event.Find("dur");
      ASSERT_TRUE(dur != nullptr) << "complete event without dur";
      uint64_t ts = event.Find("ts")->AsUint();
      spans.push_back(
          {event.Find("tid")->AsUint(), ts, ts + dur->AsUint()});
    } else if (phase == "i") {
      saw_instant = true;
      EXPECT_EQ(event.Find("s")->AsString(), "t");
      EXPECT_EQ(event.Find("args")->Find("v")->AsUint(), 7u);
    } else if (phase == "C") {
      saw_counter = true;
      EXPECT_EQ(event.Find("args")->Find("value")->AsUint(), 42u);
    }
  }
  EXPECT_EQ(spans.size(), 5u);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
  CheckLaminarNesting(spans);

  // The two spans of the worker thread must be on their own track.
  std::vector<uint64_t> tids;
  for (const auto &span : spans) {
    tids.push_back(span.tid);
  }
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), 2u);
}

TEST(TraceRecorderTest, DisabledRecorderStaysSilent) {
  TraceRecorder &recorder = TraceRecorder::Global();
  recorder.Disable();
  recorder.Clear();
  {
    TraceSpan span("ignored", "test");
    recorder.EmitInstant("ignored", "test");
  }
  EXPECT_EQ(recorder.EventCount(), 0u);
}

// ---------------------------------------------------------------- profile

TEST(QueryProfileTest, SpillCountersMatchTemporaryFileGroundTruth) {
  std::string temp_dir = ::testing::TempDir() + "ssagg_observe_test_" + std::to_string(::getpid());
  ASSERT_TRUE(FileSystem::Default().CreateDirectories(temp_dir).ok());
  // Trace the query too: a spilling run must produce balanced spans.
  TraceRecorder &recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.Enable("");

  // Memory limit below the intermediate size: phase 1 must spill and
  // phase 2 reload (mirrors the external-aggregation e2e test).
  BufferManager bm(temp_dir, 160 * kPageSize);
  TaskExecutor executor(2);
  // All-unique keys at ~32 B of row each: well past the 40 MiB limit.
  constexpr idx_t kRows = 2000000;
  RangeSource source({LogicalTypeId::kInt64, LogicalTypeId::kInt64}, kRows,
                     [](DataChunk &chunk, idx_t start, idx_t count) {
                       for (idx_t i = 0; i < count; i++) {
                         auto row = static_cast<int64_t>(start + i);
                         chunk.column(0).SetValue<int64_t>(i, row);
                         chunk.column(1).SetValue<int64_t>(i, row * 2);
                       }
                       return Status::OK();
                     });
  CountingCollector collector;
  HashAggregateConfig config;
  config.phase1_capacity = 1024;
  config.radix_bits = 3;
  QueryProfile profile;
  auto stats = RunGroupedAggregation(bm, source, {0},
                                     {{AggregateKind::kSum, 1}}, collector,
                                     executor, config, &profile);
  recorder.Disable();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(collector.TotalRows(), kRows);

  // Ground truth: the temporary-file manager's own byte accounting.
  TemporaryFileManager &temp_files = bm.temp_files();
  EXPECT_GT(temp_files.BytesWritten(), 0u) << "query was expected to spill";
  EXPECT_EQ(profile.Counter("io.spill_bytes_written"),
            temp_files.BytesWritten());
  EXPECT_EQ(profile.Counter("io.spill_bytes_read"), temp_files.BytesRead());

  BufferManagerSnapshot snapshot = bm.Snapshot();
  EXPECT_EQ(profile.Counter("io.spill_writes"), snapshot.temp_writes);
  EXPECT_EQ(profile.Counter("io.spill_reads"), snapshot.temp_reads);
  EXPECT_EQ(profile.Counter("bm.evictions_temporary_spilled"),
            snapshot.evicted_temporary_count);

  // Operator and executor counters made it into the profile.
  EXPECT_EQ(profile.Counter("agg.unique_groups"), kRows);
  EXPECT_EQ(profile.Counter("exec.rows"), kRows);
  EXPECT_GT(profile.phase1_seconds, 0.0);
  EXPECT_GT(profile.phase2_seconds, 0.0);
  EXPECT_EQ(profile.threads, 2u);

  // The trace of the spilling query: spans parse and nest per thread, and
  // the spill I/O shows up.
  auto parsed = Json::Parse(recorder.ToJson().Dump());
  recorder.Clear();
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::vector<SpanEvent> spans;
  bool saw_spill_write = false;
  bool saw_spill_read = false;
  for (const Json &event : parsed.value().Find("traceEvents")->elements()) {
    const std::string &name = event.Find("name")->AsString();
    saw_spill_write |= name == "spill.write";
    saw_spill_read |= name == "spill.read";
    if (event.Find("ph")->AsString() == "X") {
      uint64_t ts = event.Find("ts")->AsUint();
      spans.push_back(
          {event.Find("tid")->AsUint(), ts, ts + event.Find("dur")->AsUint()});
    }
  }
  EXPECT_TRUE(saw_spill_write);
  EXPECT_TRUE(saw_spill_read);
  CheckLaminarNesting(spans);

  // The profile serializes and round-trips.
  auto profile_round_trip = Json::Parse(profile.ToJson().Dump(2));
  ASSERT_TRUE(profile_round_trip.ok());
  EXPECT_EQ(profile_round_trip.value()
                .Find("counters")
                ->Find("io.spill_bytes_written")
                ->AsUint(),
            temp_files.BytesWritten());
}

// ------------------------------------------------------------- histograms

TEST(HistogramTest, BucketMappingIsMonotoneAndContiguous) {
  // Every reachable bucket's lower bound must map back into that bucket,
  // and the bounds must tile the uint64 range without gaps or overlaps.
  // Indexes above BucketIndex(~0) are unreachable (their lower bound would
  // be >= 2^64) and report a saturated upper bound instead.
  const idx_t last_bucket = HistogramSnapshot::BucketIndex(~uint64_t{0});
  EXPECT_EQ(last_bucket + 5, HistogramSnapshot::kBuckets);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(last_bucket), ~uint64_t{0});
  for (idx_t b = 0; b <= last_bucket; b++) {
    uint64_t lower = HistogramSnapshot::BucketLowerBound(b);
    EXPECT_EQ(HistogramSnapshot::BucketIndex(lower), b) << "bucket " << b;
    if (b < last_bucket) {
      EXPECT_EQ(HistogramSnapshot::BucketUpperBound(b),
                HistogramSnapshot::BucketLowerBound(b + 1));
      EXPECT_EQ(HistogramSnapshot::BucketIndex(
                    HistogramSnapshot::BucketUpperBound(b) - 1),
                b)
          << "upper bound of bucket " << b << " is not inclusive";
    }
  }
  // Monotone: a larger value never lands in a smaller bucket.
  idx_t last = 0;
  for (uint64_t v = 0; v < 100000; v += 17) {
    idx_t bucket = HistogramSnapshot::BucketIndex(v);
    EXPECT_GE(bucket, last);
    last = bucket;
  }
  EXPECT_LT(HistogramSnapshot::BucketIndex(~uint64_t{0}),
            HistogramSnapshot::kBuckets);
}

// The histogram shards must lose nothing under concurrency: the merged
// snapshot is compared bucket-for-bucket against a mutex-protected
// reference fed the exact same values.
TEST(HistogramTest, ConcurrentRecordsMatchMutexedReference) {
  MetricsRegistry registry;
  idx_t hist = registry.HistogramId("test.latency_ns");
  EXPECT_EQ(registry.HistogramId("test.latency_ns"), hist)
      << "histogram ids must be stable";

  Mutex ref_lock;
  HistogramSnapshot reference;

  constexpr idx_t kThreads = 8;
  constexpr idx_t kRecords = 50000;
  std::vector<std::thread> threads;
  for (idx_t t = 0; t < kThreads; t++) {
    threads.emplace_back([&registry, &ref_lock, &reference, hist, t]() {
      HistogramSnapshot local;
      for (idx_t i = 0; i < kRecords; i++) {
        // Deterministic pseudo-random spread across many octaves.
        uint64_t value = HashUint64(t * kRecords + i) >> (i % 48);
        registry.Record(hist, value);
        local.buckets[HistogramSnapshot::BucketIndex(value)]++;
        local.count++;
        local.sum += value;
        local.max = std::max(local.max, value);
      }
      ScopedLock guard(ref_lock);
      reference.Merge(local);
    });
  }
  for (auto &thread : threads) {
    thread.join();
  }

  HistogramSnapshot merged = registry.Histogram("test.latency_ns");
  EXPECT_EQ(merged.count, reference.count);
  EXPECT_EQ(merged.sum, reference.sum);
  EXPECT_EQ(merged.max, reference.max);
  for (idx_t b = 0; b < HistogramSnapshot::kBuckets; b++) {
    EXPECT_EQ(merged.buckets[b], reference.buckets[b]) << "bucket " << b;
  }
  // Percentiles are ordered and bounded by the observed extremes.
  EXPECT_LE(merged.Percentile(0.5), merged.Percentile(0.99));
  EXPECT_LE(merged.Percentile(0.99), merged.max);
  EXPECT_EQ(merged.Percentile(1.0), merged.max);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucketError) {
  MetricsRegistry registry;
  idx_t hist = registry.HistogramId("test.uniform");
  for (uint64_t v = 1; v <= 10000; v++) {
    registry.Record(hist, v);
  }
  HistogramSnapshot snap = registry.Histogram("test.uniform");
  EXPECT_EQ(snap.count, 10000u);
  // Log-linear buckets are at most 25% wide, so every percentile of a
  // uniform distribution must land within ~25% of the exact answer.
  EXPECT_NEAR(static_cast<double>(snap.Percentile(0.5)), 5000.0, 1300.0);
  EXPECT_NEAR(static_cast<double>(snap.Percentile(0.9)), 9000.0, 2300.0);
  EXPECT_EQ(snap.Percentile(1.0), 10000u);
}

TEST(MetricsRegistryTest, RenderPrometheusExposesCountersAndHistograms) {
  MetricsRegistry registry;
  registry.Add(registry.KeyId("test.spills"), 5);
  registry.Record("test.lat_ns", 100);
  registry.Record("test.lat_ns", 200);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE ssagg_test_spills counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("ssagg_test_spills 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ssagg_test_lat_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ssagg_test_lat_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ssagg_test_lat_ns_sum 300"), std::string::npos);
  EXPECT_NE(text.find("ssagg_test_lat_ns_count 2"), std::string::npos);
}

// -------------------------------------------------------- flight recorder

TEST(FlightRecorderTest, RingWrapsAndDumpParsesAsChromeTrace) {
  std::string dir = ::testing::TempDir() + "ssagg_flight_" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(FileSystem::Default().CreateDirectories(dir).ok());

  FlightRecorder recorder;
  recorder.SetDumpDirectory(dir);
  // Overfill the ring threefold: only the newest kRingEvents may survive.
  constexpr idx_t kTotal = 3 * FlightRecorder::kRingEvents;
  for (idx_t i = 0; i < kTotal; i++) {
    recorder.Record("wrap_event", "test", 'X', /*ts_us=*/i, /*dur_us=*/1,
                    /*arg=*/i);
  }
  EXPECT_EQ(recorder.EventCount(), FlightRecorder::kRingEvents);

  std::string path = recorder.DumpAnomaly("unit_test");
  ASSERT_FALSE(path.empty());
  auto contents = ReadWholeFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  auto parsed = Json::Parse(contents.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const Json *reason = parsed.value().Find("flightReason");
  ASSERT_TRUE(reason != nullptr);
  EXPECT_EQ(reason->AsString(), "unit_test");
  const Json *events = parsed.value().Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->IsArray());
  ASSERT_EQ(events->elements().size(), FlightRecorder::kRingEvents);
  // The retained window is exactly the newest events, in order.
  uint64_t expected = kTotal - FlightRecorder::kRingEvents;
  for (const Json &event : events->elements()) {
    EXPECT_EQ(event.Find("name")->AsString(), "wrap_event");
    EXPECT_EQ(event.Find("ph")->AsString(), "X");
    EXPECT_EQ(event.Find("args")->Find("v")->AsUint(), expected);
    expected++;
  }

  recorder.Clear();
  EXPECT_EQ(recorder.EventCount(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(FlightRecorderTest, QueryErrorDumpsFlightRecording) {
  std::string dir = ::testing::TempDir() + "ssagg_flight_err_" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(FileSystem::Default().CreateDirectories(dir).ok());
  std::string temp_dir = dir + "/pool";
  ASSERT_TRUE(FileSystem::Default().CreateDirectories(temp_dir).ok());

  FlightRecorder &flight = FlightRecorder::Global();
  std::string saved_dir = flight.dump_directory();
  flight.SetDumpDirectory(dir);

  // A source that fails mid-stream: RunGroupedAggregation must return the
  // error AND leave a parseable flight dump behind.
  BufferManager bm(temp_dir, 256 * kPageSize);
  TaskExecutor executor(2);
  RangeSource source({LogicalTypeId::kInt64, LogicalTypeId::kInt64}, 100000,
                     [](DataChunk &chunk, idx_t start, idx_t count) {
                       if (start > 20000) {
                         return Status::IOError("synthetic source failure");
                       }
                       for (idx_t i = 0; i < count; i++) {
                         auto row = static_cast<int64_t>(start + i);
                         chunk.column(0).SetValue<int64_t>(i, row % 64);
                         chunk.column(1).SetValue<int64_t>(i, row);
                       }
                       return Status::OK();
                     });
  CountingCollector collector;
  QueryProgress progress;
  auto stats = RunGroupedAggregation(bm, source, {0},
                                     {{AggregateKind::kSum, 1}}, collector,
                                     executor, {}, nullptr, &progress);
  flight.SetDumpDirectory(saved_dir);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(progress.Poll().phase, QueryProgress::Phase::kFailed);

  // Exactly the query_error dump, and it parses as Chrome trace JSON with
  // real events in it (the flight recorder runs even without SSAGG_TRACE).
  std::vector<std::string> dumps;
  for (const auto &entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      dumps.push_back(entry.path().string());
    }
  }
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_NE(dumps[0].find("query_error"), std::string::npos) << dumps[0];
  auto contents = ReadWholeFile(dumps[0]);
  ASSERT_TRUE(contents.ok());
  auto parsed = Json::Parse(contents.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Json *events = parsed.value().Find("traceEvents");
  ASSERT_TRUE(events != nullptr && events->IsArray());
  EXPECT_GT(events->elements().size(), 0u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------- progress

TEST(QueryProgressTest, MonotoneWhilePolledDuringSpillingQuery) {
  std::string temp_dir = ::testing::TempDir() + "ssagg_progress_" +
                         std::to_string(::getpid());
  ASSERT_TRUE(FileSystem::Default().CreateDirectories(temp_dir).ok());
  BufferManager bm(temp_dir, 160 * kPageSize);
  TaskExecutor executor(2);
  constexpr idx_t kRows = 2000000;
  RangeSource source({LogicalTypeId::kInt64, LogicalTypeId::kInt64}, kRows,
                     [](DataChunk &chunk, idx_t start, idx_t count) {
                       for (idx_t i = 0; i < count; i++) {
                         auto row = static_cast<int64_t>(start + i);
                         chunk.column(0).SetValue<int64_t>(i, row);
                         chunk.column(1).SetValue<int64_t>(i, row * 2);
                       }
                       return Status::OK();
                     });
  CountingCollector collector;
  HashAggregateConfig config;
  config.phase1_capacity = 1024;
  config.radix_bits = 3;

  QueryProgress progress;
  std::atomic<bool> stop{false};
  std::atomic<idx_t> polls{0};
  std::thread poller([&]() {
    uint64_t last_rows = 0;
    uint8_t last_phase = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      QueryProgress::Snapshot snap = progress.Poll();
      EXPECT_GE(snap.rows_consumed, last_rows) << "rows went backwards";
      EXPECT_GE(static_cast<uint8_t>(snap.phase), last_phase)
          << "phase went backwards";
      double fraction = snap.Fraction();
      EXPECT_GE(fraction, 0.0);
      EXPECT_LE(fraction, 1.0);
      last_rows = snap.rows_consumed;
      last_phase = static_cast<uint8_t>(snap.phase);
      polls.fetch_add(1);
      std::this_thread::yield();
    }
  });

  auto stats = RunGroupedAggregation(bm, source, {0},
                                     {{AggregateKind::kSum, 1}}, collector,
                                     executor, config, nullptr, &progress);
  stop.store(true);
  poller.join();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(polls.load(), 0u);

  QueryProgress::Snapshot final_snap = progress.Poll();
  EXPECT_EQ(final_snap.phase, QueryProgress::Phase::kDone);
  EXPECT_EQ(final_snap.rows_consumed, kRows);
  EXPECT_EQ(final_snap.estimated_total_rows, kRows);
  EXPECT_GT(final_snap.estimated_groups, 0u) << "planner estimate missing";
  EXPECT_GT(final_snap.bytes_spilled, 0u) << "query was expected to spill";
  // The spilling query must surface nonzero spill-write latency tails.
  auto it = final_snap.histograms.find("io.spill_write_latency_ns");
  ASSERT_TRUE(it != final_snap.histograms.end())
      << "spill write latency histogram missing from progress snapshot";
  EXPECT_GT(it->second.count, 0u);
  EXPECT_GT(it->second.Percentile(0.99), 0u);

  // The snapshot serializes to parseable JSON.
  auto parsed = Json::Parse(final_snap.ToJson().Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Find("rows_consumed")->AsUint(), kRows);
}

}  // namespace
}  // namespace ssagg
