// Strategy equivalence and robustness (DESIGN.md section 11): every merge
// strategy the adaptive planner can pick — central, tree, radix, and the
// adaptive selection itself — must produce identical results, under both
// probe pipelines and under spill-forcing memory limits; and the new
// central/tree merge paths must degrade to a clean Status (no leaked pins,
// temp slots, or memory charges) when any I/O or allocation fails.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "ssagg/ssagg.h"
#include "testing/fault_fs.h"
#include "testing/fault_injector.h"

namespace ssagg {
namespace {

std::vector<LogicalTypeId> SourceTypes() {
  return {LogicalTypeId::kInt64, LogicalTypeId::kInt64,
          LogicalTypeId::kVarchar};
}

/// Mixed-regime workload: a handful of heavy hitters, a mid-cardinality
/// tail, NULL group keys sprinkled in, and a string payload per group.
RangeSource MakeWorkload(idx_t total_rows, idx_t tail_groups) {
  return RangeSource(
      SourceTypes(), total_rows,
      [tail_groups](DataChunk &chunk, idx_t start, idx_t count) {
        for (idx_t i = 0; i < count; i++) {
          idx_t row = start + i;
          uint64_t r = HashUint64(row);
          int64_t key = r % 4 == 0
                            ? static_cast<int64_t>(r % 8)
                            : static_cast<int64_t>(8 + (r >> 8) % tail_groups);
          chunk.column(0).SetValue<int64_t>(i, key);
          chunk.column(1).SetValue<int64_t>(i, static_cast<int64_t>(row % 1000));
          // The payload is a function of the (post-NULL) group key so
          // AnyValue is deterministic across strategies and interleavings.
          if (r % 97 == 0) {
            chunk.column(0).validity().SetInvalid(i);
            chunk.column(2).SetString(i, "group_null");
          } else {
            chunk.column(2).SetString(i, "group_" + std::to_string(key));
          }
        }
        return Status::OK();
      });
}

/// High-cardinality variant with out-of-line string payloads: big enough
/// that even the central/tree merge tables overflow a tight pool and spill,
/// so I/O fault sites are actually exercised on those paths.
RangeSource MakeSpillingWorkload(idx_t total_rows, idx_t groups) {
  return RangeSource(
      SourceTypes(), total_rows,
      [groups](DataChunk &chunk, idx_t start, idx_t count) {
        for (idx_t i = 0; i < count; i++) {
          idx_t row = start + i;
          int64_t key = static_cast<int64_t>(HashUint64(row) % groups);
          chunk.column(0).SetValue<int64_t>(i, key);
          chunk.column(1).SetValue<int64_t>(i, static_cast<int64_t>(row % 1000));
          chunk.column(2).SetString(
              i, "long_out_of_line_payload_string_for_group_" +
                     std::to_string(key) + "_padding_padding_padding");
        }
        return Status::OK();
      });
}

std::vector<AggregateRequest> TestAggregates() {
  return {{AggregateKind::kSum, 1},
          {AggregateKind::kCountStar, kInvalidIndex},
          {AggregateKind::kMin, 1},
          {AggregateKind::kAnyValue, 2}};
}

/// Canonical (sorted) form of a collected result, for comparison across
/// runs with unspecified row order.
std::vector<std::string> CanonicalRows(const MaterializedCollector &collector) {
  std::vector<std::string> rows;
  rows.reserve(collector.RowCount());
  for (const auto &row : collector.rows()) {
    std::string flat;
    for (const auto &value : row) {
      flat += value.ToString();
      flat += '|';
    }
    rows.push_back(std::move(flat));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

//===----------------------------------------------------------------------===//
// Equivalence across strategies x probe pipeline x memory limit
//===----------------------------------------------------------------------===//

class StrategyEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "ssagg_strategy_eq_" +
                std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
  }

  struct RunOutput {
    std::vector<std::string> rows;
    HashAggregateStats stats;
  };

  RunOutput Run(AggregateStrategy strategy, bool vectorized,
                idx_t memory_pages) {
    BufferManager bm(temp_dir_, memory_pages * kPageSize);
    TaskExecutor executor(2);
    auto source = MakeWorkload(kRows, kTailGroups);
    MaterializedCollector collector;
    HashAggregateConfig config;
    config.phase1_capacity = 1024;  // small: resets + transitions happen
    config.radix_bits = 3;
    config.strategy = strategy;
    config.vectorized_probe = vectorized;
    auto stats = RunGroupedAggregation(bm, source, {0}, TestAggregates(),
                                       collector, executor, config);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    RunOutput out;
    out.rows = CanonicalRows(collector);
    out.stats = stats.ok() ? stats.value() : HashAggregateStats{};
    EXPECT_EQ(bm.PinnedBufferCount(), 0u);
    EXPECT_EQ(bm.memory_used(), 0u);
    return out;
  }

  static constexpr idx_t kRows = 200000;
  static constexpr idx_t kTailGroups = 5000;
  std::string temp_dir_;
};

TEST_F(StrategyEquivalenceTest, AllStrategiesAgreeOnAllPipelines) {
  RunOutput reference =
      Run(AggregateStrategy::kRadixMerge, /*vectorized=*/true,
          /*memory_pages=*/2048);
  ASSERT_GT(reference.rows.size(), kTailGroups / 2);

  for (AggregateStrategy strategy :
       {AggregateStrategy::kAdaptive, AggregateStrategy::kCentralMerge,
        AggregateStrategy::kTreeMerge, AggregateStrategy::kRadixMerge}) {
    for (bool vectorized : {true, false}) {
      // Ample memory, then a limit tight enough that the radix plan spills
      // (the central/tree merge tables must survive the same pressure).
      for (idx_t pages : {idx_t{2048}, idx_t{96}}) {
        SCOPED_TRACE(std::string("strategy=") +
                     AggregateStrategyName(strategy) +
                     " vectorized=" + (vectorized ? "1" : "0") +
                     " pages=" + std::to_string(pages));
        RunOutput run = Run(strategy, vectorized, pages);
        EXPECT_EQ(run.rows, reference.rows);
        EXPECT_TRUE(run.stats.planner_decided);
        if (strategy != AggregateStrategy::kAdaptive) {
          EXPECT_TRUE(run.stats.planner.forced);
          EXPECT_EQ(run.stats.planner.strategy, strategy);
        }
      }
    }
  }
}

TEST_F(StrategyEquivalenceTest, AdaptivePicksCentralForMidCardinality) {
  // ~5k groups with ample memory: central merge should win the cost race.
  RunOutput run = Run(AggregateStrategy::kAdaptive, /*vectorized=*/true,
                      /*memory_pages=*/2048);
  ASSERT_TRUE(run.stats.planner_decided);
  EXPECT_FALSE(run.stats.planner.forced);
  EXPECT_NE(run.stats.planner.strategy, AggregateStrategy::kRadixMerge)
      << "estimated " << run.stats.planner.estimated_groups << " groups";
  // The estimate is within an order of magnitude of the truth.
  EXPECT_GT(run.stats.planner.estimated_groups, kTailGroups / 8);
  EXPECT_LT(run.stats.planner.estimated_groups, kTailGroups * 8);
}

TEST_F(StrategyEquivalenceTest, MisestimateDemotesBackToRadixSafely) {
  // The first sample window sees only 16 keys (the planner commits to a
  // tiny central-merge table); afterwards the keyspace explodes. The
  // demotion fallback must kick in and the answer must stay correct.
  constexpr idx_t kTotal = 400000;
  constexpr idx_t kLateKeys = 150000;
  BufferManager bm(temp_dir_, 2048 * kPageSize);
  // One thread: the lure only works if the sample window sees the 16-key
  // prefix, and a second worker's first morsel starts at kMorselSize
  // (122880) — inside the exploded keyspace — so whether the window stays
  // low-cardinality would be a scheduling race (it lost under ASan).
  TaskExecutor executor(1);
  RangeSource source(
      {LogicalTypeId::kInt64, LogicalTypeId::kInt64}, kTotal,
      [](DataChunk &chunk, idx_t start, idx_t count) {
        for (idx_t i = 0; i < count; i++) {
          idx_t row = start + i;
          int64_t key = row < 65536
                            ? static_cast<int64_t>(row % 16)
                            : static_cast<int64_t>(HashUint64(row) % kLateKeys);
          chunk.column(0).SetValue<int64_t>(i, key);
          chunk.column(1).SetValue<int64_t>(i, 1);
        }
        return Status::OK();
      });
  MaterializedCollector collector;
  HashAggregateConfig config;
  config.phase1_capacity = 1024;
  config.radix_bits = 3;
  config.planner_sample_rows = 8192;
  auto stats = RunGroupedAggregation(bm, source, {0},
                                     {{AggregateKind::kSum, 1}}, collector,
                                     executor, config);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(stats.value().planner_decided);
  // The planner was lured into a thread-local plan, then demoted.
  EXPECT_NE(stats.value().planner.strategy, AggregateStrategy::kRadixMerge);
  EXPECT_TRUE(stats.value().planner_demoted);
  // Exactness: SUM of all-ones equals the row count; every group present.
  int64_t total = 0;
  for (const auto &row : collector.rows()) {
    total += row[1].GetInt64();
  }
  EXPECT_EQ(total, static_cast<int64_t>(kTotal));
  std::set<int64_t> keys;
  for (idx_t row = 0; row < kTotal; row++) {
    keys.insert(row < 65536
                    ? static_cast<int64_t>(row % 16)
                    : static_cast<int64_t>(HashUint64(row) % kLateKeys));
  }
  EXPECT_EQ(collector.RowCount(), keys.size());
}

TEST_F(StrategyEquivalenceTest, DirectIndexStaysExactWithUnsampledKeys) {
  // The sample window only sees keys in [100, 1100) (plus NULLs), so the
  // planner commits to a direct-index pointer cache over that span; later
  // every 7th row carries a key far outside it. Those chunks must take the
  // generic fallback and the result must match the forced radix plan.
  constexpr idx_t kTotal = 300000;
  auto make_source = [] {
    return RangeSource(
        SourceTypes(), kTotal, [](DataChunk &chunk, idx_t start, idx_t count) {
          for (idx_t i = 0; i < count; i++) {
            idx_t row = start + i;
            uint64_t r = HashUint64(row);
            int64_t key = static_cast<int64_t>(100 + r % 1000);
            if (row >= 65536 && row % 7 == 0) {
              key = static_cast<int64_t>(500000 + r % 50);
            }
            chunk.column(0).SetValue<int64_t>(i, key);
            chunk.column(1).SetValue<int64_t>(
                i, static_cast<int64_t>(row % 1000));
            if (r % 97 == 0) {
              chunk.column(0).validity().SetInvalid(i);
              chunk.column(2).SetString(i, "group_null");
            } else {
              chunk.column(2).SetString(i, "group_" + std::to_string(key));
            }
          }
          return Status::OK();
        });
  };
  auto run = [&](AggregateStrategy strategy) {
    BufferManager bm(temp_dir_, 2048 * kPageSize);
    // One thread: a second worker's first morsel starts at kMorselSize
    // (122880) — past the outlier rows — so whether its keys reach the
    // planner before the window closes would be a scheduling race, and the
    // engagement assertions below need a deterministic sample. Correctness
    // with concurrent threads rides on the multi-threaded equivalence
    // sweeps, where the cache may or may not engage per run.
    TaskExecutor executor(1);
    auto source = make_source();
    MaterializedCollector collector;
    HashAggregateConfig config;
    config.strategy = strategy;
    auto stats = RunGroupedAggregation(bm, source, {0}, TestAggregates(),
                                       collector, executor, config);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    RunOutput out;
    out.rows = CanonicalRows(collector);
    out.stats = stats.ok() ? stats.value() : HashAggregateStats{};
    return out;
  };
  RunOutput reference = run(AggregateStrategy::kRadixMerge);
  RunOutput adaptive = run(AggregateStrategy::kAdaptive);
  EXPECT_EQ(adaptive.rows, reference.rows);
  ASSERT_TRUE(adaptive.stats.planner_decided);
  EXPECT_TRUE(adaptive.stats.planner.direct_index);
  EXPECT_GT(adaptive.stats.ht.direct_hit_rows, 0u);
  // The out-of-range spikes force generic-path chunks.
  EXPECT_GT(adaptive.stats.ht.direct_fallback_chunks, 0u);
}

TEST_F(StrategyEquivalenceTest, DirectIndexDeclinedForSparseKeys) {
  // A few hundred groups, but the keys are full 64-bit hashes: the sampled
  // span exceeds the pointer-cache cap, so the planner must keep the
  // regular central-merge probe path.
  constexpr idx_t kTotal = 120000;
  BufferManager bm(temp_dir_, 2048 * kPageSize);
  TaskExecutor executor(2);
  RangeSource source(
      {LogicalTypeId::kInt64, LogicalTypeId::kInt64}, kTotal,
      [](DataChunk &chunk, idx_t start, idx_t count) {
        for (idx_t i = 0; i < count; i++) {
          idx_t row = start + i;
          chunk.column(0).SetValue<int64_t>(
              i, static_cast<int64_t>(HashUint64(HashUint64(row) % 500)));
          chunk.column(1).SetValue<int64_t>(i, 1);
        }
        return Status::OK();
      });
  MaterializedCollector collector;
  HashAggregateConfig config;
  auto stats = RunGroupedAggregation(bm, source, {0},
                                     {{AggregateKind::kSum, 1}}, collector,
                                     executor, config);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(stats.value().planner_decided);
  EXPECT_NE(stats.value().planner.strategy, AggregateStrategy::kRadixMerge);
  EXPECT_FALSE(stats.value().planner.direct_index);
  EXPECT_EQ(stats.value().ht.direct_hit_rows, 0u);
  EXPECT_EQ(collector.RowCount(), 500u);
}

TEST_F(StrategyEquivalenceTest, ForcedStrategyEnvOverrideWins) {
  setenv("SSAGG_AGG_STRATEGY", "tree", 1);
  RunOutput run = Run(AggregateStrategy::kCentralMerge, /*vectorized=*/true,
                      /*memory_pages=*/2048);
  unsetenv("SSAGG_AGG_STRATEGY");
  ASSERT_TRUE(run.stats.planner_decided);
  EXPECT_EQ(run.stats.planner.strategy, AggregateStrategy::kTreeMerge);
  EXPECT_TRUE(run.stats.planner.forced);

  setenv("SSAGG_AGG_STRATEGY", "bogus", 1);
  BufferManager bm(temp_dir_, 64 * kPageSize);
  auto agg = PhysicalHashAggregate::Create(bm, SourceTypes(), {0},
                                           TestAggregates());
  unsetenv("SSAGG_AGG_STRATEGY");
  ASSERT_FALSE(agg.ok());
  EXPECT_NE(agg.status().ToString().find("SSAGG_AGG_STRATEGY"),
            std::string::npos)
      << agg.status().ToString();
}

//===----------------------------------------------------------------------===//
// Fault sweeps over the central/tree merge paths
//===----------------------------------------------------------------------===//

class StrategyFaultSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_dir_ = ::testing::TempDir() + "ssagg_strategy_fault_" +
                std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(base_dir_);
  }

  struct SweepRun {
    Status status;
    std::vector<std::string> rows;
  };

  /// Single thread so the k-th operation is the same operation on every
  /// run; a tight pool so merge tables and materialized leftovers contend
  /// for memory mid-merge.
  SweepRun RunOnce(const std::string &dir, FaultInjector &injector,
                   AggregateStrategy strategy) {
    FaultInjectingFileSystem fault_fs(FileSystem::Default(), injector);
    SweepRun run;
    {
      // 3 MiB: the right-sized merge table (~4k groups) fits pinned, but
      // the pages materialized during the sampling window do not — they
      // spill, so the I/O fault sites fire on the central/tree paths too.
      BufferManager bm(dir, 12 * kPageSize, EvictionPolicy::kMixed, fault_fs);
      bm.SetFaultInjector(&injector);
      TaskExecutor executor(1);
      auto source = MakeSpillingWorkload(kRows, kGroups);
      MaterializedCollector collector;
      HashAggregateConfig config;
      config.phase1_capacity = 512;
      config.radix_bits = 2;
      config.strategy = strategy;
      auto stats = RunGroupedAggregation(bm, source, {0}, TestAggregates(),
                                         collector, executor, config);
      run.status = stats.ok() ? Status::OK() : stats.status();
      if (stats.ok()) {
        run.rows = CanonicalRows(collector);
      }
      // The no-leak invariant, asserted while the pool is still alive.
      EXPECT_EQ(bm.PinnedBufferCount(), 0u) << "leaked pins";
      EXPECT_EQ(bm.temp_files().UsedSlots(), 0u) << "leaked temp slots";
      EXPECT_EQ(bm.temp_files().VariableBlockCount(), 0u)
          << "leaked temp files";
      EXPECT_EQ(bm.memory_used(), 0u) << "leaked memory charge";
    }
    return run;
  }

  void Sweep(AggregateStrategy strategy, uint32_t site_mask,
             const char *what) {
    std::string dir = base_dir_ + "/" + AggregateStrategyName(strategy) + "_" +
                      what;
    (void)FileSystem::Default().CreateDirectories(dir);

    FaultInjector injector;
    FaultInjector::Config config;
    config.site_mask = site_mask;
    injector.Reset(config);
    SweepRun reference = RunOnce(dir, injector, strategy);
    ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
    idx_t total_ops = injector.ops_seen();
    ASSERT_GT(total_ops, 0u);
    ASSERT_EQ(injector.faults_injected(), 0u);

    constexpr idx_t kMaxPoints = 120;
    idx_t stride = std::max<idx_t>(1, total_ops / kMaxPoints);
    for (idx_t k = 1; k <= total_ops; k += stride) {
      SCOPED_TRACE(std::string(AggregateStrategyName(strategy)) + "/" + what +
                   ": fault at operation #" + std::to_string(k));
      config.fail_at = k;
      injector.Reset(config);
      SweepRun run = RunOnce(dir, injector, strategy);
      ASSERT_EQ(injector.faults_injected(), 1u);
      EXPECT_FALSE(run.status.ok()) << "injected fault did not surface";
    }

    // One past the fault-free count: bit-identical to the reference.
    config.fail_at = total_ops + 1;
    injector.Reset(config);
    SweepRun clean = RunOnce(dir, injector, strategy);
    ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
    EXPECT_EQ(injector.faults_injected(), 0u);
    EXPECT_EQ(clean.rows, reference.rows);
  }

  static constexpr idx_t kRows = 60000;
  static constexpr idx_t kGroups = 4000;
  std::string base_dir_;
};

TEST_F(StrategyFaultSweepTest, CentralMergeIoFailuresDegradeCleanly) {
  Sweep(AggregateStrategy::kCentralMerge, kFaultIoSites, "io");
}

TEST_F(StrategyFaultSweepTest, CentralMergeAllocationFailuresDegradeCleanly) {
  Sweep(AggregateStrategy::kCentralMerge, kFaultMemorySites, "memory");
}

TEST_F(StrategyFaultSweepTest, TreeMergeIoFailuresDegradeCleanly) {
  Sweep(AggregateStrategy::kTreeMerge, kFaultIoSites, "io");
}

TEST_F(StrategyFaultSweepTest, TreeMergeAllocationFailuresDegradeCleanly) {
  Sweep(AggregateStrategy::kTreeMerge, kFaultMemorySites, "memory");
}

}  // namespace
}  // namespace ssagg
