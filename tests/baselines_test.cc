#include "baselines/baselines.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <map>

#include "common/file_system.h"
#include "execution/collectors.h"
#include "execution/range_source.h"

namespace ssagg {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "ssagg_baselines_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
  }
  std::string temp_dir_;
};

std::vector<LogicalTypeId> SourceTypes() {
  return {LogicalTypeId::kInt64, LogicalTypeId::kInt64,
          LogicalTypeId::kVarchar};
}

RangeSource MakeSource(idx_t total_rows, idx_t num_groups) {
  return RangeSource(
      SourceTypes(), total_rows,
      [num_groups](DataChunk &chunk, idx_t start, idx_t count) {
        for (idx_t i = 0; i < count; i++) {
          idx_t row = start + i;
          int64_t key = static_cast<int64_t>((row * 2654435761ULL) %
                                             num_groups);
          chunk.column(0).SetValue<int64_t>(i, key);
          chunk.column(1).SetValue<int64_t>(i, static_cast<int64_t>(row));
          chunk.column(2).SetString(i,
                                    "group_label_" + std::to_string(key) +
                                        "_long_enough_to_heap");
        }
        return Status::OK();
      });
}

void CheckAggregatedResult(const MaterializedCollector &collector,
                           idx_t total_rows, idx_t num_groups) {
  ASSERT_EQ(collector.RowCount(), num_groups);
  std::map<int64_t, std::pair<int64_t, int64_t>> expected;  // sum, count
  for (idx_t row = 0; row < total_rows; row++) {
    int64_t key = static_cast<int64_t>((row * 2654435761ULL) % num_groups);
    expected[key].first += static_cast<int64_t>(row);
    expected[key].second++;
  }
  for (const auto &row : collector.rows()) {
    int64_t key = row[0].GetInt64();
    auto it = expected.find(key);
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(row[1].GetInt64(), it->second.first) << "sum of " << key;
    EXPECT_EQ(row[2].GetInt64(), it->second.second) << "count of " << key;
    EXPECT_EQ(row[3].GetString(),
              "group_label_" + std::to_string(key) + "_long_enough_to_heap");
    expected.erase(it);
  }
  EXPECT_TRUE(expected.empty());
}

std::vector<AggregateRequest> TestAggregates() {
  return {{AggregateKind::kSum, 1},
          {AggregateKind::kCountStar, kInvalidIndex},
          {AggregateKind::kAnyValue, 2}};
}

//===----------------------------------------------------------------------===//
// External sort aggregation
//===----------------------------------------------------------------------===//

TEST_F(BaselinesTest, SortAggregationSingleRun) {
  BufferManager bm(temp_dir_, 512 * kPageSize);
  TaskExecutor executor(2);
  auto source = MakeSource(20000, 500);
  ExternalSortAggregate::Config config;
  config.temp_directory = temp_dir_;
  auto agg = ExternalSortAggregate::Create(bm, SourceTypes(), {0},
                                           TestAggregates(), config)
                 .MoveValue();
  ASSERT_TRUE(executor.RunPipeline(source, *agg).ok());
  MaterializedCollector collector;
  ASSERT_TRUE(agg->EmitResults(collector, executor).ok());
  CheckAggregatedResult(collector, 20000, 500);
}

TEST_F(BaselinesTest, SortAggregationManyRuns) {
  BufferManager bm(temp_dir_, 512 * kPageSize);
  TaskExecutor executor(4);
  constexpr idx_t kRows = 150000;
  constexpr idx_t kGroups = 40000;
  auto source = MakeSource(kRows, kGroups);
  ExternalSortAggregate::Config config;
  config.temp_directory = temp_dir_;
  config.run_memory_bytes = 1 << 20;  // tiny runs: force a wide merge
  auto agg = ExternalSortAggregate::Create(bm, SourceTypes(), {0},
                                           TestAggregates(), config)
                 .MoveValue();
  ASSERT_TRUE(executor.RunPipeline(source, *agg).ok());
  EXPECT_GT(agg->RunCount(), 4u);
  MaterializedCollector collector;
  ASSERT_TRUE(agg->EmitResults(collector, executor).ok());
  CheckAggregatedResult(collector, kRows, kGroups);
}

TEST_F(BaselinesTest, SortAggregationStringKeys) {
  BufferManager bm(temp_dir_, 512 * kPageSize);
  TaskExecutor executor(2);
  auto source = MakeSource(30000, 300);
  ExternalSortAggregate::Config config;
  config.temp_directory = temp_dir_;
  config.run_memory_bytes = 1 << 20;
  auto agg = ExternalSortAggregate::Create(
                 bm, SourceTypes(), {2},
                 {{AggregateKind::kCountStar, kInvalidIndex}}, config)
                 .MoveValue();
  ASSERT_TRUE(executor.RunPipeline(source, *agg).ok());
  MaterializedCollector collector;
  ASSERT_TRUE(agg->EmitResults(collector, executor).ok());
  EXPECT_EQ(collector.RowCount(), 300u);
  int64_t total = 0;
  for (const auto &row : collector.rows()) {
    total += row[1].GetInt64();
  }
  EXPECT_EQ(total, 30000);
}

TEST_F(BaselinesTest, SortAggregationThinDistinct) {
  BufferManager bm(temp_dir_, 512 * kPageSize);
  TaskExecutor executor(2);
  auto source = MakeSource(10000, 123);
  ExternalSortAggregate::Config config;
  config.temp_directory = temp_dir_;
  auto agg = ExternalSortAggregate::Create(bm, SourceTypes(), {0}, {}, config)
                 .MoveValue();
  ASSERT_TRUE(executor.RunPipeline(source, *agg).ok());
  MaterializedCollector collector;
  ASSERT_TRUE(agg->EmitResults(collector, executor).ok());
  EXPECT_EQ(collector.RowCount(), 123u);
}

//===----------------------------------------------------------------------===//
// Umbra-model (in-memory only)
//===----------------------------------------------------------------------===//

TEST_F(BaselinesTest, InMemoryCompletesWithAmpleMemory) {
  BufferManager bm(temp_dir_, 1024 * kPageSize);
  TaskExecutor executor(2);
  auto source = MakeSource(50000, 5000);
  MaterializedCollector collector;
  BaselineOutcome outcome;
  HashAggregateConfig config;
  config.phase1_capacity = 16384;
  Status st = RunInMemoryAggregation(bm, source, {0}, TestAggregates(),
                                     collector, executor, config, &outcome);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(outcome.completed);
  CheckAggregatedResult(collector, 50000, 5000);
  EXPECT_TRUE(bm.spill_temporary());  // flag restored
}

TEST_F(BaselinesTest, InMemoryAbortsPastTheLimit) {
  BufferManager bm(temp_dir_, 40 * kPageSize);  // 10 MiB
  TaskExecutor executor(2);
  constexpr idx_t kRows = 400000;
  auto source = MakeSource(kRows, kRows);  // all unique: huge intermediates
  CountingCollector collector;
  BaselineOutcome outcome;
  HashAggregateConfig config;
  config.phase1_capacity = 4096;
  config.radix_bits = 2;
  Status st = RunInMemoryAggregation(bm, source, {0}, TestAggregates(),
                                     collector, executor, config, &outcome);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_TRUE(outcome.aborted);
  // Nothing was written to temporary storage.
  EXPECT_EQ(bm.Snapshot().temp_writes, 0u);
  EXPECT_TRUE(bm.spill_temporary());
}

//===----------------------------------------------------------------------===//
// HyPer-model (switch to external)
//===----------------------------------------------------------------------===//

TEST_F(BaselinesTest, SwitchStaysInMemoryWhenFits) {
  BufferManager bm(temp_dir_, 1024 * kPageSize);
  TaskExecutor executor(2);
  auto source = MakeSource(50000, 500);
  MaterializedCollector collector;
  BaselineOutcome outcome;
  SwitchExternalConfig config;
  config.in_memory.phase1_capacity = 16384;
  config.sort.temp_directory = temp_dir_;
  Status st = RunSwitchExternalAggregation(bm, source, {0}, TestAggregates(),
                                           collector, executor, config,
                                           &outcome);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(outcome.switched_to_external);
  CheckAggregatedResult(collector, 50000, 500);
}

TEST_F(BaselinesTest, SwitchFallsBackToSortAndIsCorrect) {
  BufferManager bm(temp_dir_, 80 * kPageSize);  // 20 MiB
  TaskExecutor executor(2);
  constexpr idx_t kRows = 200000;
  constexpr idx_t kGroups = 200000;
  auto source = MakeSource(kRows, kGroups);
  MaterializedCollector collector;
  BaselineOutcome outcome;
  SwitchExternalConfig config;
  config.in_memory.phase1_capacity = 4096;
  config.in_memory.radix_bits = 2;
  config.sort.temp_directory = temp_dir_;
  config.sort.run_memory_bytes = 2 << 20;
  Status st = RunSwitchExternalAggregation(bm, source, {0}, TestAggregates(),
                                           collector, executor, config,
                                           &outcome);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(outcome.switched_to_external);
  CheckAggregatedResult(collector, kRows, kGroups);
}

//===----------------------------------------------------------------------===//
// ClickHouse-model (two-level with partition spilling)
//===----------------------------------------------------------------------===//

TEST_F(BaselinesTest, SpillPartitionsCompletesAndIsCorrect) {
  BufferManager bm(temp_dir_, 96 * kPageSize);  // 24 MiB
  TaskExecutor executor(2);
  constexpr idx_t kRows = 200000;
  constexpr idx_t kGroups = 50000;
  auto source = MakeSource(kRows, kGroups);
  MaterializedCollector collector;
  BaselineOutcome outcome;
  TwoLevelSpillAggregate::Config config;
  config.temp_directory = temp_dir_;
  config.spill_threshold_ratio = 0.5;
  Status st = RunSpillPartitionAggregation(bm, source, {0}, TestAggregates(),
                                           collector, executor, config,
                                           &outcome);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(outcome.spilled_partitions);
  CheckAggregatedResult(collector, kRows, kGroups);
  EXPECT_TRUE(bm.spill_temporary());
}

TEST_F(BaselinesTest, SpillPartitionsInMemoryPathWhenSmall) {
  BufferManager bm(temp_dir_, 1024 * kPageSize);
  TaskExecutor executor(2);
  auto source = MakeSource(20000, 200);
  MaterializedCollector collector;
  BaselineOutcome outcome;
  TwoLevelSpillAggregate::Config config;
  config.temp_directory = temp_dir_;
  Status st = RunSpillPartitionAggregation(bm, source, {0}, TestAggregates(),
                                           collector, executor, config,
                                           &outcome);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(outcome.spilled_partitions);
  CheckAggregatedResult(collector, 20000, 200);
}

TEST_F(BaselinesTest, SpillPartitionsAbortsWhenMergeDoesNotFit) {
  BufferManager bm(temp_dir_, 48 * kPageSize);  // 12 MiB
  TaskExecutor executor(1);
  constexpr idx_t kRows = 500000;
  auto source = MakeSource(kRows, kRows);  // all unique: merge cannot fit
  CountingCollector collector;
  BaselineOutcome outcome;
  TwoLevelSpillAggregate::Config config;
  config.temp_directory = temp_dir_;
  config.radix_bits = 1;  // few partitions: a partition's groups won't fit
  config.spill_threshold_ratio = 0.5;
  Status st = RunSpillPartitionAggregation(bm, source, {0}, TestAggregates(),
                                           collector, executor, config,
                                           &outcome);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
  EXPECT_TRUE(outcome.aborted);
}

}  // namespace
}  // namespace ssagg
