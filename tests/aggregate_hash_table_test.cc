#include "core/grouped_aggregate_hash_table.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/file_system.h"
#include "common/random.h"
#include "testing/fault_injector.h"

namespace ssagg {
namespace {

class AggregateHashTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "ssagg_ht_test_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
  }
  std::string temp_dir_;
};

// Input chunk: [int64 key, double value, varchar name]
std::vector<LogicalTypeId> InputTypes() {
  return {LogicalTypeId::kInt64, LogicalTypeId::kDouble,
          LogicalTypeId::kVarchar};
}

void FillInput(DataChunk &chunk, const std::vector<int64_t> &keys,
               const std::vector<double> &values) {
  for (idx_t i = 0; i < keys.size(); i++) {
    chunk.column(0).SetValue<int64_t>(i, keys[i]);
    chunk.column(1).SetValue<double>(i, values[i]);
    chunk.column(2).SetString(
        i, "name_" + std::to_string(keys[i]) + "_with_long_tail_suffix");
  }
  chunk.SetCount(keys.size());
}

GroupedAggregateHashTable::Config SmallConfig() {
  GroupedAggregateHashTable::Config config;
  config.capacity = 1024;
  config.radix_bits = 2;
  return config;
}

/// Key of one group in test result maps: nullopt is the NULL group.
using GroupKey = std::optional<int64_t>;

/// Scans all partitions and accumulates finalized (sum, count) per group
/// key, SUMMING across duplicate group rows (a reset materializes the same
/// group again, so per-key totals are the meaningful invariant). The table
/// must have been built with {kSum, 1} and {kCountStar} aggregates.
std::map<GroupKey, std::pair<double, int64_t>> ScanSumCount(
    GroupedAggregateHashTable &ht) {
  std::map<GroupKey, std::pair<double, int64_t>> results;
  DataChunk layout_chunk(ht.layout().Types());
  DataChunk out(ht.OutputTypes());
  std::vector<data_ptr_t> ptrs(kVectorSize);
  for (idx_t p = 0; p < ht.data().PartitionCount(); p++) {
    TupleDataScanState scan;
    ht.data().partition(p).InitScan(scan);
    while (true) {
      auto more = ht.data().partition(p).Scan(scan, layout_chunk, ptrs.data());
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !more.value()) {
        break;
      }
      ht.FinalizeChunk(layout_chunk, ptrs.data(), out);
      for (idx_t i = 0; i < out.size(); i++) {
        GroupKey key;
        if (out.column(0).validity().RowIsValid(i)) {
          key = out.column(0).GetValue<int64_t>(i);
        }
        auto &slot = results[key];
        slot.first += out.column(1).GetValue<double>(i);
        slot.second += out.column(2).GetValue<int64_t>(i);
      }
    }
  }
  return results;
}

/// Finds two distinct int64 keys whose hashes agree on both the slot index
/// (under `mask`) and the 16-bit salt: a forced salt collision that the
/// probe can only resolve with a full key comparison.
std::pair<int64_t, int64_t> FindSaltCollidingKeys(idx_t mask) {
  std::unordered_map<uint64_t, int64_t> seen;
  for (int64_t k = 0;; k++) {
    uint64_t bits;
    std::memcpy(&bits, &k, sizeof(k));
    hash_t h = HashUint64(bits);
    uint64_t signature = (h & mask) | (static_cast<uint64_t>(ExtractSalt(h))
                                       << 32);
    auto [it, inserted] = seen.emplace(signature, k);
    if (!inserted) {
      return {it->second, k};
    }
  }
}

TEST_F(AggregateHashTableTest, BasicSumCount) {
  BufferManager bm(temp_dir_, 256 * kPageSize);
  auto ht_res = GroupedAggregateHashTable::Create(
      bm, InputTypes(), {0},
      {{AggregateKind::kSum, 1}, {AggregateKind::kCountStar, kInvalidIndex}},
      SmallConfig());
  ASSERT_TRUE(ht_res.ok()) << ht_res.status().ToString();
  auto ht = ht_res.MoveValue();

  DataChunk input(InputTypes());
  FillInput(input, {1, 2, 1, 3, 2, 1}, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  ASSERT_TRUE(ht->AddChunk(input).ok());
  EXPECT_EQ(ht->Count(), 3u);
  EXPECT_EQ(ht->data().Count(), 3u);

  // Gather results: scan the partitions, finalize.
  std::map<int64_t, std::pair<double, int64_t>> results;
  DataChunk layout_chunk(ht->layout().Types());
  DataChunk out(ht->OutputTypes());
  std::vector<data_ptr_t> ptrs(kVectorSize);
  for (idx_t p = 0; p < ht->data().PartitionCount(); p++) {
    TupleDataScanState scan;
    ht->data().partition(p).InitScan(scan);
    while (true) {
      auto more = ht->data().partition(p).Scan(scan, layout_chunk,
                                               ptrs.data());
      ASSERT_TRUE(more.ok());
      if (!more.value()) {
        break;
      }
      ht->FinalizeChunk(layout_chunk, ptrs.data(), out);
      for (idx_t i = 0; i < out.size(); i++) {
        results[out.column(0).GetValue<int64_t>(i)] = {
            out.column(1).GetValue<double>(i),
            out.column(2).GetValue<int64_t>(i)};
      }
    }
  }
  ASSERT_EQ(results.size(), 3u);
  EXPECT_DOUBLE_EQ(results[1].first, 10.0);
  EXPECT_EQ(results[1].second, 3);
  EXPECT_DOUBLE_EQ(results[2].first, 7.0);
  EXPECT_EQ(results[2].second, 2);
  EXPECT_DOUBLE_EQ(results[3].first, 4.0);
  EXPECT_EQ(results[3].second, 1);
}

TEST_F(AggregateHashTableTest, StickyAnyValueStrings) {
  BufferManager bm(temp_dir_, 256 * kPageSize);
  auto ht = GroupedAggregateHashTable::Create(
                bm, InputTypes(), {0}, {{AggregateKind::kAnyValue, 2}},
                SmallConfig())
                .MoveValue();
  DataChunk input(InputTypes());
  FillInput(input, {7, 7, 8}, {0, 0, 0});
  ASSERT_TRUE(ht->AddChunk(input).ok());
  EXPECT_EQ(ht->Count(), 2u);
  // ANY_VALUE is a layout column: appended rows carry the string payload.
  EXPECT_EQ(ht->layout().ColumnCount(), 3u);  // key, hash, name

  DataChunk layout_chunk(ht->layout().Types());
  DataChunk out(ht->OutputTypes());
  std::vector<data_ptr_t> ptrs(kVectorSize);
  std::map<int64_t, std::string> names;
  for (idx_t p = 0; p < ht->data().PartitionCount(); p++) {
    TupleDataScanState scan;
    ht->data().partition(p).InitScan(scan);
    while (true) {
      auto more =
          ht->data().partition(p).Scan(scan, layout_chunk, ptrs.data());
      ASSERT_TRUE(more.ok());
      if (!more.value()) {
        break;
      }
      ht->FinalizeChunk(layout_chunk, ptrs.data(), out);
      for (idx_t i = 0; i < out.size(); i++) {
        names[out.column(0).GetValue<int64_t>(i)] =
            out.column(1).GetString(i).ToString();
      }
    }
  }
  EXPECT_EQ(names[7], "name_7_with_long_tail_suffix");
  EXPECT_EQ(names[8], "name_8_with_long_tail_suffix");
}

TEST_F(AggregateHashTableTest, GroupByStringKeys) {
  BufferManager bm(temp_dir_, 256 * kPageSize);
  auto ht = GroupedAggregateHashTable::Create(
                bm, InputTypes(), {2},
                {{AggregateKind::kCountStar, kInvalidIndex}}, SmallConfig())
                .MoveValue();
  DataChunk input(InputTypes());
  // Keys 10,11,10 produce names name_10..., name_11..., name_10...
  FillInput(input, {10, 11, 10}, {0, 0, 0});
  ASSERT_TRUE(ht->AddChunk(input).ok());
  EXPECT_EQ(ht->Count(), 2u);
}

TEST_F(AggregateHashTableTest, NullGroupsFormOneGroup) {
  BufferManager bm(temp_dir_, 256 * kPageSize);
  auto ht = GroupedAggregateHashTable::Create(
                bm, InputTypes(), {0},
                {{AggregateKind::kCountStar, kInvalidIndex}}, SmallConfig())
                .MoveValue();
  DataChunk input(InputTypes());
  FillInput(input, {1, 2, 3, 4}, {0, 0, 0, 0});
  input.column(0).validity().SetInvalid(1);
  input.column(0).validity().SetInvalid(3);
  ASSERT_TRUE(ht->AddChunk(input).ok());
  EXPECT_EQ(ht->Count(), 3u);  // {1}, {3}, {NULL}
}

TEST_F(AggregateHashTableTest, SumSkipsNullInputs) {
  BufferManager bm(temp_dir_, 256 * kPageSize);
  auto ht = GroupedAggregateHashTable::Create(
                bm, InputTypes(), {0}, {{AggregateKind::kSum, 1}},
                SmallConfig())
                .MoveValue();
  DataChunk input(InputTypes());
  FillInput(input, {1, 1, 1}, {5.0, 7.0, 100.0});
  input.column(1).validity().SetInvalid(2);
  ASSERT_TRUE(ht->AddChunk(input).ok());
  DataChunk layout_chunk(ht->layout().Types());
  DataChunk out(ht->OutputTypes());
  std::vector<data_ptr_t> ptrs(kVectorSize);
  for (idx_t p = 0; p < ht->data().PartitionCount(); p++) {
    TupleDataScanState scan;
    ht->data().partition(p).InitScan(scan);
    while (true) {
      auto more =
          ht->data().partition(p).Scan(scan, layout_chunk, ptrs.data());
      ASSERT_TRUE(more.ok());
      if (!more.value()) {
        break;
      }
      ht->FinalizeChunk(layout_chunk, ptrs.data(), out);
      ASSERT_EQ(out.size(), 1u);
      EXPECT_DOUBLE_EQ(out.column(1).GetValue<double>(0), 12.0);
    }
  }
}

TEST_F(AggregateHashTableTest, ResetKeepsTuplesAndDedupsPerRun) {
  BufferManager bm(temp_dir_, 256 * kPageSize);
  auto config = SmallConfig();
  config.capacity = 256;
  auto ht = GroupedAggregateHashTable::Create(
                bm, InputTypes(), {0},
                {{AggregateKind::kCountStar, kInvalidIndex}}, config)
                .MoveValue();
  DataChunk input(InputTypes());
  // Insert the same 100 keys, reset, insert again: the same group is
  // materialized twice (the paper's duplicate-groups effect), but the
  // pointer table only sees the current run.
  std::vector<int64_t> keys(100);
  std::vector<double> vals(100, 0.0);
  for (int i = 0; i < 100; i++) {
    keys[i] = i;
  }
  FillInput(input, keys, vals);
  ASSERT_TRUE(ht->AddChunk(input).ok());
  EXPECT_EQ(ht->Count(), 100u);
  ht->ClearPointerTable();
  EXPECT_EQ(ht->Count(), 0u);
  EXPECT_EQ(ht->data().Count(), 100u);  // tuples stay in place
  ASSERT_TRUE(ht->AddChunk(input).ok());
  EXPECT_EQ(ht->Count(), 100u);
  EXPECT_EQ(ht->data().Count(), 200u);  // duplicated groups across runs
  EXPECT_EQ(ht->stats().resets, 1u);
}

TEST_F(AggregateHashTableTest, NeedsResetAtTwoThirds) {
  BufferManager bm(temp_dir_, 256 * kPageSize);
  auto config = SmallConfig();
  config.capacity = 256;
  auto ht = GroupedAggregateHashTable::Create(
                bm, InputTypes(), {0},
                {{AggregateKind::kCountStar, kInvalidIndex}}, config)
                .MoveValue();
  DataChunk input(InputTypes());
  std::vector<int64_t> keys;
  std::vector<double> vals;
  for (int i = 0; i < 180; i++) {
    keys.push_back(i);
    vals.push_back(0);
  }
  FillInput(input, keys, vals);
  ASSERT_TRUE(ht->AddChunk(input).ok());
  // The reset threshold (256 * 2/3 ~ 170) was crossed inside the chunk, so
  // the table reset itself mid-chunk; all 180 groups were still
  // materialized exactly once.
  EXPECT_EQ(ht->stats().resets, 1u);
  EXPECT_EQ(ht->Count(), 10u);
  EXPECT_EQ(ht->data().Count(), 180u);
  // Below the threshold it must not trigger.
  auto ht2 = GroupedAggregateHashTable::Create(
                 bm, InputTypes(), {0},
                 {{AggregateKind::kCountStar, kInvalidIndex}}, config)
                 .MoveValue();
  keys.resize(100);
  vals.resize(100);
  FillInput(input, keys, vals);
  ASSERT_TRUE(ht2->AddChunk(input).ok());
  EXPECT_FALSE(ht2->NeedsReset());
}

TEST_F(AggregateHashTableTest, ResizableTableGrows) {
  BufferManager bm(temp_dir_, 256 * kPageSize);
  auto config = SmallConfig();
  config.capacity = 64;
  config.resizable = true;
  auto ht = GroupedAggregateHashTable::Create(
                bm, InputTypes(), {0},
                {{AggregateKind::kCountStar, kInvalidIndex}}, config)
                .MoveValue();
  DataChunk input(InputTypes());
  constexpr idx_t kGroups = 2000;
  for (idx_t start = 0; start < kGroups; start += kVectorSize) {
    idx_t n = std::min(kVectorSize, kGroups - start);
    std::vector<int64_t> keys(n);
    std::vector<double> vals(n, 0);
    for (idx_t i = 0; i < n; i++) {
      keys[i] = static_cast<int64_t>(start + i);
    }
    FillInput(input, keys, vals);
    ASSERT_TRUE(ht->AddChunk(input).ok());
  }
  EXPECT_EQ(ht->Count(), kGroups);
  EXPECT_GT(ht->stats().resizes, 3u);
  EXPECT_GE(ht->Capacity(), kGroups);
  // After growth, lookups still find the same groups (no duplicates).
  EXPECT_EQ(ht->data().Count(), kGroups);
}

TEST_F(AggregateHashTableTest, SaltAvoidsKeyComparisons) {
  BufferManager bm(temp_dir_, 512 * kPageSize);
  // Fill a table close to its reset threshold and measure wasted compares
  // with and without the salt.
  auto run = [&](bool use_salt) {
    auto config = SmallConfig();
    config.capacity = 4096;
    config.use_salt = use_salt;
    auto ht = GroupedAggregateHashTable::Create(
                  bm, InputTypes(), {0},
                  {{AggregateKind::kCountStar, kInvalidIndex}}, config)
                  .MoveValue();
    DataChunk input(InputTypes());
    RandomEngine rng(7);
    for (int c = 0; c < 8; c++) {
      std::vector<int64_t> keys(256);
      std::vector<double> vals(256, 0);
      for (auto &k : keys) {
        k = static_cast<int64_t>(rng.NextRange(2500));
      }
      FillInput(input, keys, vals);
      EXPECT_TRUE(ht->AddChunk(input).ok());
    }
    return ht->stats();
  };
  auto with_salt = run(true);
  auto without_salt = run(false);
  // Same probe work, far fewer wasted key comparisons with the salt.
  EXPECT_LT(with_salt.key_compare_misses * 10, without_salt.key_compare_misses +
                                                   10);
}

TEST_F(AggregateHashTableTest, CombineSourceChunkMergesStates) {
  BufferManager bm(temp_dir_, 512 * kPageSize);
  auto make_ht = [&](bool resizable) {
    auto config = SmallConfig();
    config.capacity = 1024;
    config.resizable = resizable;
    return GroupedAggregateHashTable::Create(
               bm, InputTypes(), {0},
               {{AggregateKind::kSum, 1},
                {AggregateKind::kCountStar, kInvalidIndex}},
               config)
        .MoveValue();
  };
  auto src1 = make_ht(false);
  auto src2 = make_ht(false);
  DataChunk input(InputTypes());
  FillInput(input, {1, 2, 3}, {1.0, 2.0, 3.0});
  ASSERT_TRUE(src1->AddChunk(input).ok());
  FillInput(input, {2, 3, 4}, {20.0, 30.0, 40.0});
  ASSERT_TRUE(src2->AddChunk(input).ok());

  // Phase 2: merge both sources into a target, per partition.
  auto target = make_ht(true);
  DataChunk layout_chunk(src1->layout().Types());
  std::vector<data_ptr_t> ptrs(kVectorSize);
  for (auto *src : {src1.get(), src2.get()}) {
    for (idx_t p = 0; p < src->data().PartitionCount(); p++) {
      TupleDataScanState scan;
      src->data().partition(p).InitScan(scan);
      while (true) {
        auto more =
            src->data().partition(p).Scan(scan, layout_chunk, ptrs.data());
        ASSERT_TRUE(more.ok());
        if (!more.value()) {
          break;
        }
        ASSERT_TRUE(
            target->CombineSourceChunk(layout_chunk, ptrs.data()).ok());
      }
    }
  }
  EXPECT_EQ(target->Count(), 4u);

  std::map<int64_t, std::pair<double, int64_t>> results;
  DataChunk out(target->OutputTypes());
  for (idx_t p = 0; p < target->data().PartitionCount(); p++) {
    TupleDataScanState scan;
    target->data().partition(p).InitScan(scan);
    while (true) {
      auto more =
          target->data().partition(p).Scan(scan, layout_chunk, ptrs.data());
      ASSERT_TRUE(more.ok());
      if (!more.value()) {
        break;
      }
      target->FinalizeChunk(layout_chunk, ptrs.data(), out);
      for (idx_t i = 0; i < out.size(); i++) {
        results[out.column(0).GetValue<int64_t>(i)] = {
            out.column(1).GetValue<double>(i),
            out.column(2).GetValue<int64_t>(i)};
      }
    }
  }
  ASSERT_EQ(results.size(), 4u);
  EXPECT_DOUBLE_EQ(results[1].first, 1.0);
  EXPECT_DOUBLE_EQ(results[2].first, 22.0);
  EXPECT_DOUBLE_EQ(results[3].first, 33.0);
  EXPECT_DOUBLE_EQ(results[4].first, 40.0);
  EXPECT_EQ(results[2].second, 2);
}

TEST_F(AggregateHashTableTest, LargeRandomAggregationMatchesReference) {
  BufferManager bm(temp_dir_, 1024 * kPageSize);
  auto config = SmallConfig();
  config.capacity = 4096;
  config.radix_bits = 3;
  auto ht = GroupedAggregateHashTable::Create(
                bm, InputTypes(), {0},
                {{AggregateKind::kSum, 1},
                 {AggregateKind::kMin, 1},
                 {AggregateKind::kMax, 1},
                 {AggregateKind::kCountStar, kInvalidIndex}},
                config)
                .MoveValue();
  RandomEngine rng(123);
  std::map<int64_t, std::tuple<double, double, double, int64_t>> reference;
  DataChunk input(InputTypes());
  constexpr int kChunks = 20;
  for (int c = 0; c < kChunks; c++) {
    std::vector<int64_t> keys(kVectorSize);
    std::vector<double> vals(kVectorSize);
    for (idx_t i = 0; i < kVectorSize; i++) {
      keys[i] = static_cast<int64_t>(rng.NextRange(500));
      vals[i] = static_cast<double>(rng.NextRange(1000));
      auto it = reference.find(keys[i]);
      if (it == reference.end()) {
        reference[keys[i]] = {vals[i], vals[i], vals[i], 1};
      } else {
        std::get<0>(it->second) += vals[i];
        std::get<1>(it->second) = std::min(std::get<1>(it->second), vals[i]);
        std::get<2>(it->second) = std::max(std::get<2>(it->second), vals[i]);
        std::get<3>(it->second)++;
      }
    }
    FillInput(input, keys, vals);
    ASSERT_TRUE(ht->AddChunk(input).ok());
    // No reset: capacity comfortably holds 500 groups.
  }
  EXPECT_EQ(ht->Count(), reference.size());

  DataChunk layout_chunk(ht->layout().Types());
  DataChunk out(ht->OutputTypes());
  std::vector<data_ptr_t> ptrs(kVectorSize);
  idx_t seen = 0;
  for (idx_t p = 0; p < ht->data().PartitionCount(); p++) {
    TupleDataScanState scan;
    ht->data().partition(p).InitScan(scan);
    while (true) {
      auto more =
          ht->data().partition(p).Scan(scan, layout_chunk, ptrs.data());
      ASSERT_TRUE(more.ok());
      if (!more.value()) {
        break;
      }
      ht->FinalizeChunk(layout_chunk, ptrs.data(), out);
      for (idx_t i = 0; i < out.size(); i++) {
        int64_t key = out.column(0).GetValue<int64_t>(i);
        auto &ref = reference.at(key);
        EXPECT_DOUBLE_EQ(out.column(1).GetValue<double>(i), std::get<0>(ref));
        EXPECT_DOUBLE_EQ(out.column(2).GetValue<double>(i), std::get<1>(ref));
        EXPECT_DOUBLE_EQ(out.column(3).GetValue<double>(i), std::get<2>(ref));
        EXPECT_EQ(out.column(4).GetValue<int64_t>(i), std::get<3>(ref));
        seen++;
      }
    }
  }
  EXPECT_EQ(seen, reference.size());
}

// --- Vectorized-probe edge cases ---------------------------------------

// Duplicate brand-new keys within ONE chunk must collapse to one group:
// the claim-then-backfill insert routes the second occurrence of a key
// through the compare pass of the same round.
TEST_F(AggregateHashTableTest, DuplicateNewKeysWithinOneChunk) {
  BufferManager bm(temp_dir_, 256 * kPageSize);
  auto ht = GroupedAggregateHashTable::Create(
                bm, InputTypes(), {0},
                {{AggregateKind::kSum, 1},
                 {AggregateKind::kCountStar, kInvalidIndex}},
                SmallConfig())
                .MoveValue();
  DataChunk input(InputTypes());
  std::vector<int64_t> keys(kVectorSize);
  std::vector<double> vals(kVectorSize);
  for (idx_t i = 0; i < kVectorSize; i++) {
    keys[i] = static_cast<int64_t>(i % 4);  // 4 new keys, each repeated 512x
    vals[i] = 1.0;
  }
  FillInput(input, keys, vals);
  ASSERT_TRUE(ht->AddChunk(input).ok());
  EXPECT_EQ(ht->Count(), 4u);
  EXPECT_EQ(ht->data().Count(), 4u);  // no duplicate materialization
  auto results = ScanSumCount(*ht);
  ASSERT_EQ(results.size(), 4u);
  for (auto &[key, sum_count] : results) {
    EXPECT_DOUBLE_EQ(sum_count.first, 512.0);
    EXPECT_EQ(sum_count.second, 512);
  }
}

// Two different keys with identical slot index AND identical salt: the
// salt check cannot tell them apart, so only the full key comparison
// (hash-prefix pass first) keeps them in separate groups.
TEST_F(AggregateHashTableTest, SaltCollisionWithDifferingKeys) {
  BufferManager bm(temp_dir_, 256 * kPageSize);
  auto config = SmallConfig();
  auto [k1, k2] = FindSaltCollidingKeys(config.capacity - 1);
  ASSERT_NE(k1, k2);
  auto ht = GroupedAggregateHashTable::Create(
                bm, InputTypes(), {0},
                {{AggregateKind::kSum, 1},
                 {AggregateKind::kCountStar, kInvalidIndex}},
                config)
                .MoveValue();
  DataChunk input(InputTypes());
  // Interleaved occurrences of both keys in one chunk: k1 inserts, k2
  // salt-matches k1's entry, fails the key compare, advances, inserts.
  FillInput(input, {k1, k2, k1, k2, k2, k1}, {1, 10, 2, 20, 30, 3});
  ASSERT_TRUE(ht->AddChunk(input).ok());
  EXPECT_EQ(ht->Count(), 2u);
  EXPECT_GE(ht->stats().key_compare_misses, 1u);
  auto results = ScanSumCount(*ht);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_DOUBLE_EQ(results[k1].first, 6.0);
  EXPECT_EQ(results[k1].second, 3);
  EXPECT_DOUBLE_EQ(results[k2].first, 60.0);
  EXPECT_EQ(results[k2].second, 3);
}

// NULL group keys inside a batch with duplicates: all NULLs are one group,
// and NULL never matches a non-NULL key even on a hash collision.
TEST_F(AggregateHashTableTest, NullGroupKeysInVectorizedBatch) {
  BufferManager bm(temp_dir_, 256 * kPageSize);
  auto ht = GroupedAggregateHashTable::Create(
                bm, InputTypes(), {0},
                {{AggregateKind::kSum, 1},
                 {AggregateKind::kCountStar, kInvalidIndex}},
                SmallConfig())
                .MoveValue();
  DataChunk input(InputTypes());
  std::vector<int64_t> keys(kVectorSize);
  std::vector<double> vals(kVectorSize);
  for (idx_t i = 0; i < kVectorSize; i++) {
    keys[i] = static_cast<int64_t>(i % 8);
    vals[i] = 1.0;
  }
  FillInput(input, keys, vals);
  std::map<GroupKey, std::pair<double, int64_t>> reference;
  for (idx_t i = 0; i < kVectorSize; i++) {
    GroupKey key;
    if (i % 5 == 0) {
      input.column(0).validity().SetInvalid(i);  // every 5th row is NULL
    } else {
      key = keys[i];
    }
    auto &slot = reference[key];
    slot.first += vals[i];
    slot.second++;
  }
  ASSERT_TRUE(ht->AddChunk(input).ok());
  EXPECT_EQ(ht->Count(), 9u);  // 8 int keys + the NULL group
  EXPECT_EQ(ScanSumCount(*ht), reference);
}

// A fixed-size phase-1 table resets its pointer table MID-chunk once the
// reset budget is exhausted; rows after the reset re-materialize already
// seen groups, but per-key totals must still be exact.
TEST_F(AggregateHashTableTest, MidChunkPointerTableResetWithDuplicates) {
  BufferManager bm(temp_dir_, 256 * kPageSize);
  auto config = SmallConfig();
  config.capacity = 256;  // reset threshold ~170 < 300 distinct keys
  auto ht = GroupedAggregateHashTable::Create(
                bm, InputTypes(), {0},
                {{AggregateKind::kSum, 1},
                 {AggregateKind::kCountStar, kInvalidIndex}},
                config)
                .MoveValue();
  DataChunk input(InputTypes());
  std::vector<int64_t> keys(kVectorSize);
  std::vector<double> vals(kVectorSize);
  std::map<GroupKey, std::pair<double, int64_t>> reference;
  for (idx_t i = 0; i < kVectorSize; i++) {
    keys[i] = static_cast<int64_t>(i % 300);
    vals[i] = static_cast<double>(i);
    auto &slot = reference[keys[i]];
    slot.first += vals[i];
    slot.second++;
  }
  FillInput(input, keys, vals);
  ASSERT_TRUE(ht->AddChunk(input).ok());
  EXPECT_GE(ht->stats().resets, 1u);
  EXPECT_GT(ht->data().Count(), 300u);  // duplicated groups across the reset
  EXPECT_EQ(ScanSumCount(*ht), reference);
}

// The scalar row-at-a-time path and the vectorized pipeline must produce
// bit-identical aggregation results over randomized chunks — including
// NULL keys, mid-stream resets (non-resizable) and resizes (resizable).
TEST_F(AggregateHashTableTest, ScalarVsVectorizedEquivalenceRandomized) {
  for (bool resizable : {false, true}) {
    BufferManager bm(temp_dir_, 1024 * kPageSize);
    auto make_ht = [&](bool vectorized) {
      auto config = SmallConfig();
      config.capacity = resizable ? 64 : 256;
      config.resizable = resizable;
      config.vectorized_probe = vectorized;
      return GroupedAggregateHashTable::Create(
                 bm, InputTypes(), {0},
                 {{AggregateKind::kSum, 1},
                  {AggregateKind::kCountStar, kInvalidIndex}},
                 config)
          .MoveValue();
    };
    auto scalar_ht = make_ht(false);
    auto vector_ht = make_ht(true);
    RandomEngine rng(99);
    std::map<GroupKey, std::pair<double, int64_t>> reference;
    DataChunk input(InputTypes());
    for (int c = 0; c < 12; c++) {
      std::vector<int64_t> keys(kVectorSize);
      std::vector<double> vals(kVectorSize);
      for (idx_t i = 0; i < kVectorSize; i++) {
        keys[i] = static_cast<int64_t>(rng.NextRange(400));
        vals[i] = static_cast<double>(rng.NextRange(1000));
      }
      input.Reset();  // clear the previous iteration's NULL marks
      FillInput(input, keys, vals);
      for (idx_t i = 0; i < kVectorSize; i++) {
        if (rng.NextRange(16) == 0) {
          input.column(0).validity().SetInvalid(i);
        }
      }
      for (idx_t i = 0; i < kVectorSize; i++) {
        const bool valid = input.column(0).validity().RowIsValid(i);
        auto &slot = reference[valid ? GroupKey{keys[i]} : GroupKey{}];
        slot.first += vals[i];
        slot.second++;
      }
      ASSERT_TRUE(scalar_ht->AddChunk(input).ok());
      ASSERT_TRUE(vector_ht->AddChunk(input).ok());
      if (!resizable && scalar_ht->NeedsReset()) {
        scalar_ht->ClearPointerTable();
      }
      if (!resizable && vector_ht->NeedsReset()) {
        vector_ht->ClearPointerTable();
      }
    }
    // The two paths discover groups in the same order: identical counts,
    // identical materialized rows, and each used only its own compare kind.
    EXPECT_EQ(scalar_ht->Count(), vector_ht->Count());
    EXPECT_EQ(scalar_ht->data().Count(), vector_ht->data().Count());
    EXPECT_EQ(scalar_ht->stats().inserts, vector_ht->stats().inserts);
    EXPECT_EQ(scalar_ht->stats().vectorized_compares, 0u);
    EXPECT_EQ(vector_ht->stats().scalar_compares, 0u);
    EXPECT_GT(vector_ht->stats().probe_rounds, 0u);
    auto scalar_results = ScanSumCount(*scalar_ht);
    EXPECT_EQ(scalar_results, ScanSumCount(*vector_ht));
    EXPECT_EQ(scalar_results, reference);
  }
}

// Equivalence on the phase-2 path: merging materialized source rows via
// CombineSourceChunk must agree between the scalar and vectorized probes.
TEST_F(AggregateHashTableTest, ScalarVsVectorizedCombineEquivalence) {
  BufferManager bm(temp_dir_, 1024 * kPageSize);
  auto make_source = [&]() {
    auto config = SmallConfig();
    config.capacity = 256;
    return GroupedAggregateHashTable::Create(
               bm, InputTypes(), {0},
               {{AggregateKind::kSum, 1},
                {AggregateKind::kCountStar, kInvalidIndex}},
               config)
        .MoveValue();
  };
  auto make_target = [&](bool vectorized) {
    auto config = SmallConfig();
    config.capacity = 64;
    config.resizable = true;
    config.vectorized_probe = vectorized;
    return GroupedAggregateHashTable::Create(
               bm, InputTypes(), {0},
               {{AggregateKind::kSum, 1},
                {AggregateKind::kCountStar, kInvalidIndex}},
               config)
        .MoveValue();
  };
  // Sources with overlapping keys and forced resets (duplicated groups in
  // the materialized data, the phase-2 input shape).
  auto src1 = make_source();
  auto src2 = make_source();
  RandomEngine rng(1234);
  DataChunk input(InputTypes());
  for (int c = 0; c < 4; c++) {
    std::vector<int64_t> keys(kVectorSize);
    std::vector<double> vals(kVectorSize);
    for (idx_t i = 0; i < kVectorSize; i++) {
      keys[i] = static_cast<int64_t>(rng.NextRange(500));
      vals[i] = static_cast<double>(rng.NextRange(100));
    }
    FillInput(input, keys, vals);
    auto &src = (c % 2 == 0) ? src1 : src2;
    ASSERT_TRUE(src->AddChunk(input).ok());
    if (src->NeedsReset()) {
      src->ClearPointerTable();
    }
  }
  auto scalar_target = make_target(false);
  auto vector_target = make_target(true);
  DataChunk layout_chunk(src1->layout().Types());
  std::vector<data_ptr_t> ptrs(kVectorSize);
  for (auto *src : {src1.get(), src2.get()}) {
    for (idx_t p = 0; p < src->data().PartitionCount(); p++) {
      for (auto *target : {scalar_target.get(), vector_target.get()}) {
        TupleDataScanState scan;
        src->data().partition(p).InitScan(scan);
        while (true) {
          auto more =
              src->data().partition(p).Scan(scan, layout_chunk, ptrs.data());
          ASSERT_TRUE(more.ok());
          if (!more.value()) {
            break;
          }
          ASSERT_TRUE(
              target->CombineSourceChunk(layout_chunk, ptrs.data()).ok());
        }
      }
    }
  }
  EXPECT_EQ(scalar_target->Count(), vector_target->Count());
  auto scalar_results = ScanSumCount(*scalar_target);
  EXPECT_EQ(scalar_results, ScanSumCount(*vector_target));
  // Cross-check against the direct phase-1 totals.
  auto direct = ScanSumCount(*src1);
  for (auto &[key, sum_count] : ScanSumCount(*src2)) {
    auto &slot = direct[key];
    slot.first += sum_count.first;
    slot.second += sum_count.second;
  }
  EXPECT_EQ(scalar_results, direct);
}

// Both probe paths under denied allocations: every k-th memory denial must
// surface as a clean kOutOfMemory with nothing pinned or charged, and a
// fault-free rerun on either path must still match the unpressured
// reference exactly.
TEST_F(AggregateHashTableTest, ScalarVsVectorizedUnderAllocationPressure) {
  constexpr int kChunks = 6;
  constexpr idx_t kKeyRange = 300;
  // One deterministic input stream, reused for every run.
  std::vector<std::vector<int64_t>> all_keys(kChunks);
  std::vector<std::vector<double>> all_vals(kChunks);
  std::map<GroupKey, std::pair<double, int64_t>> reference;
  RandomEngine rng(0xA110C);
  for (int c = 0; c < kChunks; c++) {
    all_keys[c].resize(kVectorSize);
    all_vals[c].resize(kVectorSize);
    for (idx_t i = 0; i < kVectorSize; i++) {
      all_keys[c][i] = static_cast<int64_t>(rng.NextRange(kKeyRange));
      all_vals[c][i] = static_cast<double>(rng.NextRange(1000));
      auto &slot = reference[GroupKey{all_keys[c][i]}];
      slot.first += all_vals[c][i];
      slot.second++;
    }
  }

  // Runs the whole aggregation on one probe path; returns the first error
  // or fills `out` on success. Checks the buffer pool unwound either way.
  auto run = [&](bool vectorized, FaultInjector *injector,
                 std::map<GroupKey, std::pair<double, int64_t>> *out) {
    Status status = Status::OK();
    BufferManager bm(temp_dir_, 1024 * kPageSize);
    if (injector != nullptr) {
      bm.SetFaultInjector(injector);
    }
    {
      auto config = SmallConfig();
      config.capacity = 64;
      config.resizable = true;
      config.vectorized_probe = vectorized;
      auto ht_res = GroupedAggregateHashTable::Create(
          bm, InputTypes(), {0},
          {{AggregateKind::kSum, 1},
           {AggregateKind::kCountStar, kInvalidIndex}},
          config);
      if (!ht_res.ok()) {
        status = ht_res.status();
      } else {
        auto ht = std::move(ht_res).MoveValue();
        DataChunk input(InputTypes());
        for (int c = 0; c < kChunks && status.ok(); c++) {
          input.Reset();
          FillInput(input, all_keys[c], all_vals[c]);
          status = ht->AddChunk(input);
        }
        if (status.ok() && out != nullptr) {
          *out = ScanSumCount(*ht);
        }
      }
    }
    EXPECT_EQ(bm.PinnedBufferCount(), 0u);
    EXPECT_EQ(bm.memory_used(), 0u);
    return status;
  };

  for (bool vectorized : {false, true}) {
    SCOPED_TRACE(vectorized ? "vectorized probe" : "scalar probe");
    // Learning run: armed but never firing, to count memory operations.
    FaultInjector injector(
        {.fail_at = 0, .site_mask = kFaultMemorySites});
    std::map<GroupKey, std::pair<double, int64_t>> healthy;
    ASSERT_TRUE(run(vectorized, &injector, &healthy).ok());
    EXPECT_EQ(healthy, reference);
    // Recount without the result scan: the sweep runs below skip it, so
    // fail_at must index the build-only operation sequence.
    injector.Reset({.fail_at = 0, .site_mask = kFaultMemorySites});
    ASSERT_TRUE(run(vectorized, &injector, nullptr).ok());
    const idx_t total_ops = injector.ops_seen();
    ASSERT_GT(total_ops, 0u);

    // Deny the k-th memory operation across the range.
    const idx_t stride = std::max<idx_t>(1, total_ops / 48);
    for (idx_t k = 1; k <= total_ops; k += stride) {
      injector.Reset({.fail_at = k, .site_mask = kFaultMemorySites});
      auto status = run(vectorized, &injector, nullptr);
      ASSERT_EQ(injector.faults_injected(), 1u) << "fail_at=" << k;
      ASSERT_FALSE(status.ok()) << "fail_at=" << k;
      EXPECT_EQ(status.code(), StatusCode::kOutOfMemory) << "fail_at=" << k;
    }

    // Disarmed rerun through the same injector: back to exact results.
    injector.Reset({.fail_at = 0, .site_mask = kFaultMemorySites});
    std::map<GroupKey, std::pair<double, int64_t>> recovered;
    ASSERT_TRUE(run(vectorized, &injector, &recovered).ok());
    EXPECT_EQ(recovered, reference);
  }
}

}  // namespace
}  // namespace ssagg
