// Property-based sweep: for random workloads, the robust aggregation, the
// in-memory model, the sort-based aggregation, and the partition-spilling
// model must all produce EXACTLY the same groups and aggregates as a
// std::map reference — for every combination of thread count, radix bits,
// phase-1 capacity, and memory limit in the sweep (including limits that
// force spilling).

#include <gtest/gtest.h>

#include <unistd.h>

#include <map>
#include <tuple>

#include "ssagg/ssagg.h"

namespace ssagg {
namespace {

struct SweepParams {
  idx_t threads;
  idx_t radix_bits;
  idx_t phase1_capacity;
  idx_t memory_limit_pages;  // 0 = ample
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParams> &info) {
  const auto &p = info.param;
  return "t" + std::to_string(p.threads) + "_r" +
         std::to_string(p.radix_bits) + "_c" +
         std::to_string(p.phase1_capacity) + "_m" +
         std::to_string(p.memory_limit_pages) + "_s" +
         std::to_string(p.seed);
}

class AggregationPropertyTest : public ::testing::TestWithParam<SweepParams> {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "ssagg_prop_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
  }
  std::string temp_dir_;
};

struct Reference {
  std::map<std::pair<int64_t, std::string>, std::pair<int64_t, int64_t>>
      groups;  // (key, tag) -> (sum, count)
};

constexpr idx_t kRows = 120000;

RangeSource MakeWorkload(uint64_t seed, idx_t key_domain) {
  std::vector<LogicalTypeId> types = {LogicalTypeId::kInt64,
                                      LogicalTypeId::kVarchar,
                                      LogicalTypeId::kInt64};
  return RangeSource(
      types, kRows, [seed, key_domain](DataChunk &chunk, idx_t start,
                                       idx_t count) {
        for (idx_t i = 0; i < count; i++) {
          idx_t row = start + i;
          uint64_t r = HashUint64(row * 2 + seed);
          chunk.column(0).SetValue<int64_t>(
              i, static_cast<int64_t>(r % key_domain));
          chunk.column(1).SetString(
              i, (r >> 16) % 3 == 0
                     ? "t" + std::to_string((r >> 24) % 2)
                     : "longer_tag_value_" + std::to_string((r >> 24) % 3));
          chunk.column(2).SetValue<int64_t>(
              i, static_cast<int64_t>(row % 1000));
        }
        return Status::OK();
      });
}

Reference BuildReference(uint64_t seed, idx_t key_domain) {
  Reference ref;
  auto source = MakeWorkload(seed, key_domain);
  DataChunk chunk(source.Types());
  auto state = source.InitLocal().MoveValue();
  while (true) {
    chunk.Reset();
    auto more = source.GetData(chunk, *state);
    EXPECT_TRUE(more.ok());
    if (!more.value()) {
      break;
    }
    for (idx_t i = 0; i < chunk.size(); i++) {
      auto key = std::make_pair(chunk.column(0).GetValue<int64_t>(i),
                                chunk.column(1).GetString(i).ToString());
      auto &entry = ref.groups[key];
      entry.first += chunk.column(2).GetValue<int64_t>(i);
      entry.second++;
    }
  }
  return ref;
}

void CheckAgainstReference(const MaterializedCollector &collector,
                           const Reference &ref) {
  ASSERT_EQ(collector.RowCount(), ref.groups.size());
  for (const auto &row : collector.rows()) {
    auto key = std::make_pair(row[0].GetInt64(), row[1].GetString());
    auto it = ref.groups.find(key);
    ASSERT_NE(it, ref.groups.end())
        << "unexpected group (" << key.first << ", " << key.second << ")";
    EXPECT_EQ(row[2].GetInt64(), it->second.first) << "sum mismatch";
    EXPECT_EQ(row[3].GetInt64(), it->second.second) << "count mismatch";
  }
}

TEST_P(AggregationPropertyTest, AllSystemsMatchReference) {
  const auto &p = GetParam();
  idx_t key_domain = 40000;  // ~40k x ~3 tags of groups
  Reference ref = BuildReference(p.seed, key_domain);
  std::vector<idx_t> group_columns = {0, 1};
  std::vector<AggregateRequest> aggregates = {
      {AggregateKind::kSum, 2}, {AggregateKind::kCountStar, kInvalidIndex}};

  idx_t limit = p.memory_limit_pages == 0 ? 4096 * kPageSize
                                          : p.memory_limit_pages * kPageSize;
  TaskExecutor executor(p.threads);

  {  // robust
    BufferManager bm(temp_dir_, limit);
    auto source = MakeWorkload(p.seed, key_domain);
    MaterializedCollector collector;
    HashAggregateConfig config;
    config.phase1_capacity = p.phase1_capacity;
    config.radix_bits = p.radix_bits;
    auto stats = RunGroupedAggregation(bm, source, group_columns, aggregates,
                                       collector, executor, config);
    ASSERT_TRUE(stats.ok()) << "robust: " << stats.status().ToString();
    CheckAgainstReference(collector, ref);
    EXPECT_EQ(bm.memory_used(), 0u) << "robust leaked memory accounting";
  }
  {  // external sort baseline
    BufferManager bm(temp_dir_, limit);
    auto source = MakeWorkload(p.seed, key_domain);
    MaterializedCollector collector;
    ExternalSortAggregate::Config config;
    config.temp_directory = temp_dir_;
    config.run_memory_bytes = 2ULL << 20;
    auto agg = ExternalSortAggregate::Create(bm, source.Types(),
                                             group_columns, aggregates,
                                             config)
                   .MoveValue();
    ASSERT_TRUE(executor.RunPipeline(source, *agg).ok());
    ASSERT_TRUE(agg->EmitResults(collector, executor).ok());
    CheckAgainstReference(collector, ref);
  }
  {  // partition-spilling model
    BufferManager bm(temp_dir_, limit);
    auto source = MakeWorkload(p.seed, key_domain);
    MaterializedCollector collector;
    TwoLevelSpillAggregate::Config config;
    config.temp_directory = temp_dir_;
    config.radix_bits = p.radix_bits == 0 ? 1 : p.radix_bits;
    config.spill_threshold_ratio = 0.6;
    Status st = RunSpillPartitionAggregation(bm, source, group_columns,
                                             aggregates, collector, executor,
                                             config, nullptr);
    ASSERT_TRUE(st.ok()) << "spill model: " << st.ToString();
    CheckAgainstReference(collector, ref);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggregationPropertyTest,
    ::testing::Values(
        // ample memory, varying parallelism and partitioning
        SweepParams{1, 0, 4096, 0, 1},
        SweepParams{2, 3, 4096, 0, 2},
        SweepParams{4, 5, 1024, 0, 3},
        SweepParams{3, 1, 16384, 0, 4},
        // tight memory: forces spilling through the buffer manager
        SweepParams{2, 4, 1024, 140, 5},
        SweepParams{4, 4, 2048, 180, 6},
        SweepParams{1, 3, 8192, 120, 7}),
    ParamName);

}  // namespace
}  // namespace ssagg
