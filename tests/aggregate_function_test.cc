#include "core/aggregate_function.h"

#include "common/value.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ssagg {
namespace {

/// Runs one aggregate over the given input values (with an optional NULL
/// mask), splitting the input into two halves folded into separate states
/// that are then combined — exercising update, combine, and finalize.
template <typename T>
Value RunAggregate(AggregateKind kind, LogicalTypeId type,
                   const std::vector<T> &values,
                   const std::vector<bool> &nulls = {}) {
  auto fn_res = GetAggregateFunction(kind, type);
  EXPECT_TRUE(fn_res.ok()) << fn_res.status().ToString();
  auto fn = fn_res.value();

  Vector input(type);
  for (idx_t i = 0; i < values.size(); i++) {
    input.SetValue<T>(i, values[i]);
    if (i < nulls.size() && nulls[i]) {
      input.validity().SetInvalid(i);
    }
  }
  std::vector<data_t> state_a(fn.state_width, 0);
  std::vector<data_t> state_b(fn.state_width, 0);
  idx_t half = values.size() / 2;
  std::vector<data_ptr_t> states;
  std::vector<idx_t> sel;
  for (idx_t i = 0; i < values.size(); i++) {
    states.push_back((i < half ? state_a : state_b).data());
    sel.push_back(i);
  }
  fn.update(kind == AggregateKind::kCountStar ? nullptr : &input, sel.data(),
            states.data(), values.size());
  fn.combine(state_b.data(), state_a.data());

  Vector out(fn.result_type);
  fn.finalize(state_a.data(), out, 0);
  return Value::FromVector(out, 0);
}

TEST(AggregateFunctionTest, SumInt64) {
  auto v = RunAggregate<int64_t>(AggregateKind::kSum, LogicalTypeId::kInt64,
                                 {1, 2, 3, 4, 5});
  EXPECT_EQ(v.GetInt64(), 15);
}

TEST(AggregateFunctionTest, SumInt32WidensToInt64) {
  std::vector<int32_t> big(100, 2000000000);
  auto v = RunAggregate<int32_t>(AggregateKind::kSum, LogicalTypeId::kInt32,
                                 big);
  EXPECT_EQ(v.type(), LogicalTypeId::kInt64);
  EXPECT_EQ(v.GetInt64(), 200000000000LL);
}

TEST(AggregateFunctionTest, SumSkipsNulls) {
  auto v = RunAggregate<int64_t>(AggregateKind::kSum, LogicalTypeId::kInt64,
                                 {10, 20, 30}, {false, true, false});
  EXPECT_EQ(v.GetInt64(), 40);
}

TEST(AggregateFunctionTest, SumAllNullIsNull) {
  auto v = RunAggregate<int64_t>(AggregateKind::kSum, LogicalTypeId::kInt64,
                                 {1, 2}, {true, true});
  EXPECT_TRUE(v.IsNull());
}

TEST(AggregateFunctionTest, MinMaxDouble) {
  std::vector<double> values = {3.5, -1.25, 7.75, 0.0};
  EXPECT_EQ(RunAggregate<double>(AggregateKind::kMin, LogicalTypeId::kDouble,
                                 values)
                .GetDouble(),
            -1.25);
  EXPECT_EQ(RunAggregate<double>(AggregateKind::kMax, LogicalTypeId::kDouble,
                                 values)
                .GetDouble(),
            7.75);
}

TEST(AggregateFunctionTest, MinMaxNegativeIntegers) {
  std::vector<int32_t> values = {-5, -100, -1};
  EXPECT_EQ(RunAggregate<int32_t>(AggregateKind::kMin, LogicalTypeId::kInt32,
                                  values)
                .GetInt64(),
            -100);
  EXPECT_EQ(RunAggregate<int32_t>(AggregateKind::kMax, LogicalTypeId::kInt32,
                                  values)
                .GetInt64(),
            -1);
}

TEST(AggregateFunctionTest, CountSkipsNullsCountStarDoesNot) {
  auto count = RunAggregate<int64_t>(AggregateKind::kCount,
                                     LogicalTypeId::kInt64, {1, 2, 3, 4},
                                     {true, false, true, false});
  EXPECT_EQ(count.GetInt64(), 2);
  auto count_star = RunAggregate<int64_t>(AggregateKind::kCountStar,
                                          LogicalTypeId::kInt64, {1, 2, 3, 4},
                                          {true, false, true, false});
  EXPECT_EQ(count_star.GetInt64(), 4);
}

TEST(AggregateFunctionTest, Avg) {
  auto v = RunAggregate<int64_t>(AggregateKind::kAvg, LogicalTypeId::kInt64,
                                 {2, 4, 6, 8});
  EXPECT_DOUBLE_EQ(v.GetDouble(), 5.0);
}

TEST(AggregateFunctionTest, AvgOfNothingIsNull) {
  auto v = RunAggregate<int64_t>(AggregateKind::kAvg, LogicalTypeId::kInt64,
                                 {7}, {true});
  EXPECT_TRUE(v.IsNull());
}

TEST(AggregateFunctionTest, AnyValueTakesFirstNonNull) {
  auto v = RunAggregate<int64_t>(AggregateKind::kAnyValue,
                                 LogicalTypeId::kInt64, {0, 42, 13},
                                 {true, false, false});
  EXPECT_EQ(v.GetInt64(), 42);
}

TEST(AggregateFunctionTest, UnsupportedTypeIsRejected) {
  for (auto kind : {AggregateKind::kSum, AggregateKind::kMin,
                    AggregateKind::kMax, AggregateKind::kAvg}) {
    auto res = GetAggregateFunction(kind, LogicalTypeId::kVarchar);
    ASSERT_FALSE(res.ok()) << AggregateKindName(kind);
    EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(AggregateFunctionTest, ZeroStateIsValidInitialState) {
  // The row layout zero-fills state areas; every function must treat the
  // all-zero state as "empty".
  for (auto kind : {AggregateKind::kSum, AggregateKind::kMin,
                    AggregateKind::kMax, AggregateKind::kAvg,
                    AggregateKind::kCount, AggregateKind::kAnyValue}) {
    auto fn = GetAggregateFunction(kind, LogicalTypeId::kInt64).MoveValue();
    std::vector<data_t> state(fn.state_width, 0);
    Vector out(fn.result_type);
    fn.finalize(state.data(), out, 0);
    Value v = Value::FromVector(out, 0);
    if (kind == AggregateKind::kCount) {
      EXPECT_EQ(v.GetInt64(), 0);
    } else {
      EXPECT_TRUE(v.IsNull()) << AggregateKindName(kind);
    }
  }
}

TEST(AggregateFunctionTest, CombineWithEmptySideIsIdentity) {
  for (auto kind : {AggregateKind::kSum, AggregateKind::kMin,
                    AggregateKind::kMax, AggregateKind::kAvg,
                    AggregateKind::kAnyValue}) {
    auto fn = GetAggregateFunction(kind, LogicalTypeId::kDouble).MoveValue();
    Vector input(LogicalTypeId::kDouble);
    input.SetValue<double>(0, 3.25);
    std::vector<data_t> filled(fn.state_width, 0);
    std::vector<data_t> empty(fn.state_width, 0);
    data_ptr_t state = filled.data();
    idx_t sel0 = 0;
    fn.update(&input, &sel0, &state, 1);
    fn.combine(empty.data(), filled.data());  // empty into filled
    Vector out(fn.result_type);
    fn.finalize(filled.data(), out, 0);
    EXPECT_DOUBLE_EQ(Value::FromVector(out, 0).GetDouble(), 3.25)
        << AggregateKindName(kind);
  }
}

}  // namespace
}  // namespace ssagg
