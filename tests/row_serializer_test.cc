#include "sort/row_serializer.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <string>

#include "common/file_system.h"
#include "sort/row_compare.h"

namespace ssagg {
namespace {

class RowSerializerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "ssagg_rowser_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(dir_);
    layout_.Initialize({LogicalTypeId::kInt64, LogicalTypeId::kVarchar,
                        LogicalTypeId::kDouble});
  }

  /// Builds a row in `buffer` (with strings referencing `heap`).
  void MakeRow(std::vector<data_t> &buffer, StringHeap &heap, int64_t id,
               const std::string &name, double score, bool name_null) {
    buffer.assign(layout_.RowWidth(), 0);
    data_ptr_t row = buffer.data();
    std::memset(row, 0xFF, layout_.ValidityBytes());
    std::memcpy(row + layout_.ColumnOffset(0), &id, 8);
    if (name_null) {
      layout_.RowSetColumnValid(row, 1, false);
      string_t empty;
      std::memcpy(row + layout_.ColumnOffset(1), &empty, sizeof(string_t));
    } else {
      string_t s = heap.Add(name);
      std::memcpy(row + layout_.ColumnOffset(1), &s, sizeof(string_t));
    }
    std::memcpy(row + layout_.ColumnOffset(2), &score, 8);
  }

  std::string dir_;
  TupleDataLayout layout_;
};

TEST_F(RowSerializerTest, RoundTripMixedRows) {
  std::string path = dir_ + "/run1.tmp";
  RunWriter writer(layout_, path);
  ASSERT_TRUE(writer.Open().ok());
  StringHeap heap;
  std::vector<data_t> row;
  constexpr idx_t kRows = 5000;
  for (idx_t i = 0; i < kRows; i++) {
    std::string name = i % 4 == 0 ? "tiny"
                                  : "a considerably longer name " +
                                        std::to_string(i);
    MakeRow(row, heap, static_cast<int64_t>(i), name, i * 0.25,
            /*name_null=*/i % 17 == 0);
    ASSERT_TRUE(writer.WriteRow(row.data()).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.RowCount(), kRows);

  RunReader reader(layout_, path, kRows);
  ASSERT_TRUE(reader.Open().ok());
  DataChunk out(layout_.Types());
  idx_t seen = 0;
  while (true) {
    std::vector<data_ptr_t> rows;
    auto n = reader.ReadBatch(kVectorSize, rows);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    if (n.value() == 0) {
      break;
    }
    reader.GatherBatch(rows, out);
    for (idx_t i = 0; i < out.size(); i++) {
      idx_t id = seen + i;
      EXPECT_EQ(out.column(0).GetValue<int64_t>(i),
                static_cast<int64_t>(id));
      if (id % 17 == 0) {
        EXPECT_FALSE(out.column(1).validity().RowIsValid(i));
      } else {
        std::string expected =
            id % 4 == 0 ? "tiny"
                        : "a considerably longer name " + std::to_string(id);
        EXPECT_EQ(out.column(1).GetString(i).ToString(), expected);
      }
      EXPECT_EQ(out.column(2).GetValue<double>(i), id * 0.25);
    }
    seen += out.size();
  }
  EXPECT_EQ(seen, kRows);
  ASSERT_TRUE(reader.Remove().ok());
  EXPECT_FALSE(FileSystem::Default().FileExists(path));
}

TEST_F(RowSerializerTest, LargeRowsSpanBufferRefills) {
  // Strings near the I/O buffer size exercise the refill/grow path.
  std::string path = dir_ + "/run2.tmp";
  RunWriter writer(layout_, path);
  ASSERT_TRUE(writer.Open().ok());
  StringHeap heap;
  std::vector<data_t> row;
  std::string big(700000, 'q');
  for (idx_t i = 0; i < 5; i++) {
    big[0] = static_cast<char>('a' + i);
    MakeRow(row, heap, static_cast<int64_t>(i), big, 0.0, false);
    ASSERT_TRUE(writer.WriteRow(row.data()).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());

  RunReader reader(layout_, path, 5);
  ASSERT_TRUE(reader.Open().ok());
  std::vector<data_ptr_t> rows;
  auto n = reader.ReadBatch(16, rows);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  ASSERT_EQ(n.value(), 5u);
  DataChunk out(layout_.Types());
  reader.GatherBatch(rows, out);
  for (idx_t i = 0; i < 5; i++) {
    auto s = out.column(1).GetString(i);
    ASSERT_EQ(s.size(), big.size());
    EXPECT_EQ(s.data()[0], static_cast<char>('a' + i));
  }
  (void)reader.Remove();
}

TEST_F(RowSerializerTest, CompareLayoutRowsOrdering) {
  StringHeap heap;
  std::vector<data_t> a, b;
  MakeRow(a, heap, 5, "apple", 0, false);
  MakeRow(b, heap, 5, "banana", 0, false);
  // First column equal, second decides.
  EXPECT_LT(CompareLayoutRows(layout_, 2, a.data(), b.data()), 0);
  EXPECT_GT(CompareLayoutRows(layout_, 2, b.data(), a.data()), 0);
  EXPECT_EQ(CompareLayoutRows(layout_, 1, a.data(), b.data()), 0);
  // NULL sorts first.
  std::vector<data_t> n;
  MakeRow(n, heap, 5, "zzz", 0, /*name_null=*/true);
  EXPECT_LT(CompareLayoutRows(layout_, 2, n.data(), a.data()), 0);
  // Equality.
  std::vector<data_t> a2;
  MakeRow(a2, heap, 5, "apple", 0, false);
  EXPECT_TRUE(LayoutRowsEqual(layout_, 2, a.data(), a2.data()));
}

TEST_F(RowSerializerTest, CompareNegativeAndDoubleColumns) {
  TupleDataLayout layout;
  layout.Initialize({LogicalTypeId::kInt32, LogicalTypeId::kDouble});
  auto make = [&](int32_t i, double d) {
    std::vector<data_t> row(layout.RowWidth(), 0);
    std::memset(row.data(), 0xFF, layout.ValidityBytes());
    std::memcpy(row.data() + layout.ColumnOffset(0), &i, 4);
    std::memcpy(row.data() + layout.ColumnOffset(1), &d, 8);
    return row;
  };
  auto neg = make(-10, 0.0), pos = make(10, 0.0);
  EXPECT_LT(CompareLayoutRows(layout, 2, neg.data(), pos.data()), 0);
  auto lo = make(1, -2.5), hi = make(1, 2.5);
  EXPECT_LT(CompareLayoutRows(layout, 2, lo.data(), hi.data()), 0);
}

}  // namespace
}  // namespace ssagg
