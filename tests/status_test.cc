#include "common/status.h"

#include <gtest/gtest.h>

namespace ssagg {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::OutOfMemory("limit is 1024");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_EQ(st.ToString(), "OutOfMemory: limit is 1024");
}

TEST(StatusTest, ResultHoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(StatusTest, ResultHoldsError) {
  Result<int> r(Status::IOError("disk gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

}  // namespace ssagg
