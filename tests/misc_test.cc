// Tests for the smaller common/ and layout/ pieces: Value boxing, file
// system, the PRNG, radix bit carving, and type metadata.

#include <gtest/gtest.h>

#include <unistd.h>

#include <set>

#include "common/file_system.h"
#include "common/random.h"
#include "common/value.h"
#include "layout/radix_partitioning.h"

namespace ssagg {
namespace {

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

TEST(ValueTest, BoxingAndEquality) {
  EXPECT_EQ(Value::Int64(42), Value::Int64(42));
  EXPECT_FALSE(Value::Int64(42) == Value::Int64(43));
  EXPECT_FALSE(Value::Int64(42) == Value::Double(42.0));
  EXPECT_EQ(Value::String("abc").ToString(), "abc");
  EXPECT_TRUE(Value::Null(LogicalTypeId::kInt64).IsNull());
  EXPECT_EQ(Value::Null(LogicalTypeId::kInt64),
            Value::Null(LogicalTypeId::kInt64));
}

TEST(ValueTest, FromVectorRespectsValidity) {
  Vector v(LogicalTypeId::kDouble);
  v.SetValue<double>(0, 1.5);
  v.SetValue<double>(1, 2.5);
  v.validity().SetInvalid(1);
  EXPECT_EQ(Value::FromVector(v, 0).GetDouble(), 1.5);
  EXPECT_TRUE(Value::FromVector(v, 1).IsNull());
}

TEST(ValueTest, DateAndInt32BoxAsInt64) {
  Vector v(LogicalTypeId::kDate);
  v.SetValue<int32_t>(0, 10562);
  auto value = Value::FromVector(v, 0);
  EXPECT_EQ(value.type(), LogicalTypeId::kDate);
  EXPECT_EQ(value.GetInt64(), 10562);
}

//===----------------------------------------------------------------------===//
// FileSystem
//===----------------------------------------------------------------------===//

TEST(FileSystemTest, WriteReadTruncate) {
  std::string dir = ::testing::TempDir() + "ssagg_fs/nested/deeper_" + std::to_string(::getpid());
  ASSERT_TRUE(FileSystem::Default().CreateDirectories(dir).ok());
  std::string path = dir + "/file.bin";
  FileOpenFlags flags;
  flags.write = true;
  flags.create = true;
  flags.truncate = true;
  auto file = FileSystem::Default().Open(path, flags).MoveValue();
  const char payload[] = "0123456789";
  ASSERT_TRUE(file->Write(payload, 10, 0).ok());
  ASSERT_TRUE(file->Write(payload, 10, 100).ok());  // sparse offset write
  EXPECT_EQ(file->FileSize().MoveValue(), 110u);
  char buffer[10];
  ASSERT_TRUE(file->Read(buffer, 10, 100).ok());
  EXPECT_EQ(std::string(buffer, 10), "0123456789");
  ASSERT_TRUE(file->Truncate(50).ok());
  EXPECT_EQ(file->FileSize().MoveValue(), 50u);
  file.reset();
  EXPECT_TRUE(FileSystem::Default().FileExists(path));
  EXPECT_EQ(FileSystem::Default().GetFileSize(path).MoveValue(), 50u);
  ASSERT_TRUE(FileSystem::Default().RemoveFile(path).ok());
  EXPECT_FALSE(FileSystem::Default().FileExists(path));
  // Removing a missing file is not an error.
  EXPECT_TRUE(FileSystem::Default().RemoveFile(path).ok());
}

TEST(FileSystemTest, OpenMissingFileFails) {
  auto res = FileSystem::Default().Open("/nonexistent/dir/file", FileOpenFlags{});
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsIOError());
}

TEST(FileSystemTest, ReadPastEofFails) {
  std::string path = ::testing::TempDir() + "ssagg_eof.bin_" + std::to_string(::getpid());
  FileOpenFlags flags;
  flags.write = true;
  flags.create = true;
  flags.truncate = true;
  auto file = FileSystem::Default().Open(path, flags).MoveValue();
  ASSERT_TRUE(file->Write("xy", 2, 0).ok());
  file.reset();
  auto reader = FileSystem::Default().Open(path, FileOpenFlags{}).MoveValue();
  char buffer[8];
  EXPECT_FALSE(reader->Read(buffer, 8, 0).ok());
  (void)FileSystem::Default().RemoveFile(path);
}

//===----------------------------------------------------------------------===//
// RandomEngine
//===----------------------------------------------------------------------===//

TEST(RandomEngineTest, DeterministicPerSeed) {
  RandomEngine a(1), b(1), c(2);
  for (int i = 0; i < 100; i++) {
    uint64_t va = a.NextUint64();
    EXPECT_EQ(va, b.NextUint64());
    (void)c.NextUint64();
  }
  RandomEngine a2(1), c2(2);
  EXPECT_NE(a2.NextUint64(), c2.NextUint64());
}

TEST(RandomEngineTest, RangeAndDoubleBounds) {
  RandomEngine rng(7);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(rng.NextRange(13), 13u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(rng.NextRange(0), 0u);
}

//===----------------------------------------------------------------------===//
// Radix partitioning bit carving
//===----------------------------------------------------------------------===//

TEST(RadixPartitioningTest, BitRangesDoNotOverlap) {
  // Offset bits: [0, 24); radix: [24, 48); salt: [48, 64).
  hash_t h = ~hash_t(0);
  EXPECT_EQ(ExtractSalt(h), 0xFFFF);
  EXPECT_EQ(RadixPartition(h, kMaxRadixBits),
            (idx_t(1) << kMaxRadixBits) - 1);
  // Changing only the low 24 bits changes neither salt nor radix.
  hash_t a = 0xABCD000000000000ULL | 0x0000123456000000ULL | 0x000001;
  hash_t b = 0xABCD000000000000ULL | 0x0000123456000000ULL | 0xFFFFFF;
  EXPECT_EQ(ExtractSalt(a), ExtractSalt(b));
  for (idx_t bits = 1; bits <= kMaxRadixBits; bits++) {
    EXPECT_EQ(RadixPartition(a, bits), RadixPartition(b, bits));
  }
}

TEST(RadixPartitioningTest, EntryPacksPointerAndSalt) {
  auto ptr = reinterpret_cast<void *>(0x00007f1234567890ULL);
  uint64_t entry = MakeEntry(ptr, 0xBEEF);
  EXPECT_EQ(EntrySalt(entry), 0xBEEF);
  EXPECT_EQ(EntryPointer(entry), reinterpret_cast<data_ptr_t>(ptr));
  EXPECT_NE(entry, 0u);
}

//===----------------------------------------------------------------------===//
// Type metadata
//===----------------------------------------------------------------------===//

TEST(TypesTest, WidthsAndNames) {
  EXPECT_EQ(TypeWidth(LogicalTypeId::kInt32), 4u);
  EXPECT_EQ(TypeWidth(LogicalTypeId::kDate), 4u);
  EXPECT_EQ(TypeWidth(LogicalTypeId::kInt64), 8u);
  EXPECT_EQ(TypeWidth(LogicalTypeId::kDouble), 8u);
  EXPECT_EQ(TypeWidth(LogicalTypeId::kVarchar), 16u);
  EXPECT_TRUE(TypeIsVarSize(LogicalTypeId::kVarchar));
  EXPECT_FALSE(TypeIsVarSize(LogicalTypeId::kInt64));
  EXPECT_STREQ(TypeName(LogicalTypeId::kVarchar), "VARCHAR");
}

TEST(TypesTest, SchemaColumnLookup) {
  Schema schema = {{"a", LogicalTypeId::kInt64},
                   {"b", LogicalTypeId::kVarchar}};
  EXPECT_EQ(SchemaColumnIndex(schema, "b"), 1u);
  EXPECT_EQ(SchemaColumnIndex(schema, "missing"), kInvalidIndex);
}

}  // namespace
}  // namespace ssagg
