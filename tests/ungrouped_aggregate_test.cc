#include "core/ungrouped_aggregate.h"

#include <gtest/gtest.h>

#include "common/value.h"
#include "execution/range_source.h"
#include "execution/task_executor.h"

namespace ssagg {
namespace {

std::vector<LogicalTypeId> SourceTypes() {
  return {LogicalTypeId::kInt64, LogicalTypeId::kDouble,
          LogicalTypeId::kVarchar};
}

RangeSource MakeSource(idx_t rows) {
  return RangeSource(SourceTypes(), rows,
                     [](DataChunk &chunk, idx_t start, idx_t count) {
                       for (idx_t i = 0; i < count; i++) {
                         idx_t row = start + i;
                         chunk.column(0).SetValue<int64_t>(
                             i, static_cast<int64_t>(row));
                         chunk.column(1).SetValue<double>(i, row * 0.5);
                         chunk.column(2).SetString(
                             i, "value_" + std::to_string(row % 100));
                       }
                       return Status::OK();
                     });
}

class UngroupedAggregateTest : public ::testing::TestWithParam<int> {};

TEST_P(UngroupedAggregateTest, TpchQ1StyleAggregates) {
  idx_t threads = static_cast<idx_t>(GetParam());
  constexpr idx_t kRows = 500000;
  auto op = PhysicalUngroupedAggregate::Create(
                SourceTypes(),
                {{AggregateKind::kCountStar, kInvalidIndex},
                 {AggregateKind::kSum, 0},
                 {AggregateKind::kAvg, 1},
                 {AggregateKind::kMin, 0},
                 {AggregateKind::kMax, 1}})
                .MoveValue();
  auto source = MakeSource(kRows);
  TaskExecutor executor(threads);
  ASSERT_TRUE(executor.RunPipeline(source, *op).ok());
  DataChunk out(op->OutputTypes());
  ASSERT_TRUE(op->GetResult(out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.column(0).GetValue<int64_t>(0),
            static_cast<int64_t>(kRows));
  EXPECT_EQ(out.column(1).GetValue<int64_t>(0),
            static_cast<int64_t>(kRows) * (kRows - 1) / 2);
  EXPECT_DOUBLE_EQ(out.column(2).GetValue<double>(0),
                   (kRows - 1) * 0.5 / 2.0);
  EXPECT_EQ(out.column(3).GetValue<int64_t>(0), 0);
  EXPECT_DOUBLE_EQ(out.column(4).GetValue<double>(0), (kRows - 1) * 0.5);
}

TEST_P(UngroupedAggregateTest, StringMinMaxAnyValue) {
  idx_t threads = static_cast<idx_t>(GetParam());
  auto op = PhysicalUngroupedAggregate::Create(
                SourceTypes(),
                {{AggregateKind::kMin, 2},
                 {AggregateKind::kMax, 2},
                 {AggregateKind::kAnyValue, 2},
                 {AggregateKind::kCount, 2}})
                .MoveValue();
  auto source = MakeSource(10000);
  TaskExecutor executor(threads);
  ASSERT_TRUE(executor.RunPipeline(source, *op).ok());
  DataChunk out(op->OutputTypes());
  ASSERT_TRUE(op->GetResult(out).ok());
  EXPECT_EQ(out.column(0).GetString(0).ToString(), "value_0");
  EXPECT_EQ(out.column(1).GetString(0).ToString(), "value_99");
  EXPECT_TRUE(out.column(2).validity().RowIsValid(0));
  EXPECT_EQ(out.column(3).GetValue<int64_t>(0), 10000);
}

TEST_P(UngroupedAggregateTest, EmptyInputYieldsNullsAndZeroCounts) {
  idx_t threads = static_cast<idx_t>(GetParam());
  auto op = PhysicalUngroupedAggregate::Create(
                SourceTypes(),
                {{AggregateKind::kCountStar, kInvalidIndex},
                 {AggregateKind::kSum, 0},
                 {AggregateKind::kMin, 2}})
                .MoveValue();
  auto source = MakeSource(0);
  TaskExecutor executor(threads);
  ASSERT_TRUE(executor.RunPipeline(source, *op).ok());
  DataChunk out(op->OutputTypes());
  ASSERT_TRUE(op->GetResult(out).ok());
  EXPECT_EQ(out.column(0).GetValue<int64_t>(0), 0);
  EXPECT_FALSE(out.column(1).validity().RowIsValid(0));
  EXPECT_FALSE(out.column(2).validity().RowIsValid(0));
}

INSTANTIATE_TEST_SUITE_P(Threads, UngroupedAggregateTest,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace ssagg
