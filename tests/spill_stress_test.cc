#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "buffer/buffer_manager.h"
#include "common/file_system.h"
#include "core/run_aggregation.h"
#include "execution/collectors.h"
#include "execution/range_source.h"
#include "sort/external_sort_aggregate.h"
#include "testing/fault_fs.h"
#include "testing/fault_injector.h"

namespace ssagg {
namespace {

std::vector<LogicalTypeId> SourceTypes() {
  return {LogicalTypeId::kInt64, LogicalTypeId::kInt64,
          LogicalTypeId::kVarchar};
}

RangeSource MakeSource(idx_t total_rows, idx_t num_groups) {
  return RangeSource(
      SourceTypes(), total_rows,
      [num_groups](DataChunk &chunk, idx_t start, idx_t count) {
        for (idx_t i = 0; i < count; i++) {
          idx_t row = start + i;
          int64_t key = static_cast<int64_t>(row % num_groups);
          chunk.column(0).SetValue<int64_t>(i, key);
          chunk.column(1).SetValue<int64_t>(i, static_cast<int64_t>(row));
          chunk.column(2).SetString(i,
                                    "label_for_group_" + std::to_string(key));
        }
        return Status::OK();
      });
}

std::vector<AggregateRequest> TestAggregates() {
  return {{AggregateKind::kSum, 1},
          {AggregateKind::kCountStar, kInvalidIndex},
          {AggregateKind::kAnyValue, 2}};
}

std::vector<std::string> CanonicalRows(const MaterializedCollector &collector) {
  std::vector<std::string> rows;
  rows.reserve(collector.RowCount());
  for (const auto &row : collector.rows()) {
    std::string flat;
    for (const auto &value : row) {
      flat += value.ToString();
      flat += '|';
    }
    rows.push_back(std::move(flat));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Files currently present in a directory (run files, temp files, ...).
idx_t FilesInDirectory(const std::string &dir) {
  idx_t count = 0;
  for (const auto &entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    count++;
  }
  return count;
}

//===----------------------------------------------------------------------===//
// External sort-merge aggregation under the fault sweep
//===----------------------------------------------------------------------===//

class SortSpillSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "ssagg_sort_sweep_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
    (void)FileSystem::Default().CreateDirectories(dir_);
  }

  struct SweepRun {
    Status status;
    std::vector<std::string> rows;
  };

  SweepRun RunOnce(FaultInjector &injector) {
    FaultInjectingFileSystem fault_fs(FileSystem::Default(), injector);
    SweepRun run;
    {
      BufferManager bm(dir_, 64 * kPageSize, EvictionPolicy::kMixed,
                       fault_fs);
      bm.SetFaultInjector(&injector);
      TaskExecutor executor(1);
      auto source = MakeSource(kRows, kGroups);
      ExternalSortAggregate::Config config;
      config.temp_directory = dir_;
      config.run_memory_bytes = 256 * 1024;  // tiny runs: wide merge
      auto create = ExternalSortAggregate::Create(bm, SourceTypes(), {0},
                                                  TestAggregates(), config);
      if (!create.ok()) {
        run.status = create.status();
      } else {
        auto agg = create.MoveValue();
        run.status = executor.RunPipeline(source, *agg);
        if (run.status.ok()) {
          MaterializedCollector collector;
          run.status = agg->EmitResults(collector, executor);
          if (run.status.ok()) {
            run.rows = CanonicalRows(collector);
          }
        }
        agg.reset();  // destructor removes any leftover run files
      }
      EXPECT_EQ(bm.PinnedBufferCount(), 0u) << "leaked pins";
      EXPECT_EQ(bm.memory_used(), 0u) << "leaked memory charge";
      EXPECT_EQ(bm.temp_files().UsedSlots(), 0u) << "leaked temp slots";
    }
    // Nothing outlives the query: every run file (including partially
    // written ones) was removed, whatever operation failed.
    EXPECT_EQ(FilesInDirectory(dir_), 0u) << "leaked run files";
    return run;
  }

  static constexpr idx_t kRows = 40000;
  static constexpr idx_t kGroups = 10000;
  std::string dir_;
};

TEST_F(SortSpillSweepTest, EveryRunFileFailureDegradesToCleanStatus) {
  FaultInjector injector;
  FaultInjector::Config config;
  config.site_mask = kFaultIoSites;
  injector.Reset(config);
  SweepRun reference = RunOnce(injector);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
  idx_t total_ops = injector.ops_seen();
  ASSERT_GT(total_ops, 0u) << "sort aggregation did not hit the file system";

  constexpr idx_t kMaxPoints = 120;
  idx_t stride = std::max<idx_t>(1, total_ops / kMaxPoints);
  for (idx_t k = 1; k <= total_ops; k += stride) {
    config.fail_at = k;
    injector.Reset(config);
    SweepRun run = RunOnce(injector);
    ASSERT_EQ(injector.faults_injected(), 1u)
        << "operation #" << k << " of " << total_ops << " was never reached";
    EXPECT_FALSE(run.status.ok())
        << "injected fault at I/O #" << k << " did not surface";
  }

  config.fail_at = total_ops + 1;
  injector.Reset(config);
  SweepRun clean = RunOnce(injector);
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
  EXPECT_EQ(injector.faults_injected(), 0u);
  EXPECT_EQ(clean.rows, reference.rows);
}

TEST_F(SortSpillSweepTest, ShortWritesAreDetectedOnReadBack) {
  // A short write that the writer's error path cleans up must never be
  // read back as a silently truncated run.
  FaultInjector injector;
  FaultInjector::Config config;
  config.site_mask = FaultSiteBit(FaultSite::kWrite);
  config.short_write = true;
  injector.Reset(config);
  SweepRun reference = RunOnce(injector);
  ASSERT_TRUE(reference.status.ok());
  idx_t writes = injector.ops_seen();
  ASSERT_GT(writes, 0u);
  idx_t stride = std::max<idx_t>(1, writes / 40);
  for (idx_t k = 1; k <= writes; k += stride) {
    config.fail_at = k;
    injector.Reset(config);
    SweepRun run = RunOnce(injector);
    EXPECT_FALSE(run.status.ok())
        << "short write at write #" << k << " went unnoticed";
  }
}

//===----------------------------------------------------------------------===//
// Partition-spilling baseline under the fault sweep
//===----------------------------------------------------------------------===//

TEST(PartitionSpillSweepTest, SpilledPartitionFailuresDegradeCleanly) {
  std::string dir = ::testing::TempDir() + "ssagg_partition_sweep_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  (void)FileSystem::Default().CreateDirectories(dir);

  constexpr idx_t kRows = 40000;
  constexpr idx_t kGroups = 40000;
  FaultInjector injector;
  FaultInjector::Config config;
  config.site_mask = kFaultIoSites;

  auto run_once = [&](Status *status_out) {
    FaultInjectingFileSystem fault_fs(FileSystem::Default(), injector);
    {
      BufferManager bm(dir, 24 * kPageSize, EvictionPolicy::kMixed, fault_fs);
      bm.SetSpillTemporary(false);  // ClickHouse model: explicit spilling
      TaskExecutor executor(1);
      auto source = MakeSource(kRows, kGroups);
      MaterializedCollector collector;
      TwoLevelSpillAggregate::Config agg_config;
      agg_config.temp_directory = dir;
      agg_config.phase1_capacity = 1024;
      agg_config.radix_bits = 2;
      agg_config.spill_threshold_ratio = 0.5;
      BaselineOutcome outcome;
      *status_out = RunSpillPartitionAggregation(
          bm, source, {0}, TestAggregates(), collector, executor, agg_config,
          &outcome);
      if (status_out->ok()) {
        EXPECT_TRUE(outcome.spilled_partitions)
            << "workload must spill for the sweep to mean anything";
      }
      EXPECT_EQ(bm.PinnedBufferCount(), 0u);
      EXPECT_EQ(bm.memory_used(), 0u);
    }
    EXPECT_EQ(FilesInDirectory(dir), 0u) << "leaked partition run files";
  };

  injector.Reset(config);
  Status reference;
  run_once(&reference);
  ASSERT_TRUE(reference.ok()) << reference.ToString();
  idx_t total_ops = injector.ops_seen();
  ASSERT_GT(total_ops, 0u);

  idx_t stride = std::max<idx_t>(1, total_ops / 60);
  for (idx_t k = 1; k <= total_ops; k += stride) {
    config.fail_at = k;
    injector.Reset(config);
    Status status;
    run_once(&status);
    ASSERT_EQ(injector.faults_injected(), 1u)
        << "operation #" << k << " of " << total_ops << " was never reached";
    EXPECT_FALSE(status.ok())
        << "injected fault at I/O #" << k << " did not surface";
  }
}

//===----------------------------------------------------------------------===//
// Randomized multi-threaded stress: probability faults, many seeds
//===----------------------------------------------------------------------===//

TEST(SpillStressTest, RandomFaultsNeverViolateInvariants) {
  std::string dir = ::testing::TempDir() + "ssagg_spill_stress_" + std::to_string(::getpid());
  (void)FileSystem::Default().CreateDirectories(dir);

  constexpr idx_t kRows = 60000;
  idx_t clean_failures = 0;
  idx_t successes = 0;
  for (uint64_t seed = 1; seed <= 24; seed++) {
    FaultInjector::Config config;
    config.seed = seed;
    config.probability = 0.02;
    config.site_mask = kFaultIoSites | kFaultMemorySites;
    config.short_write = (seed % 2) == 0;
    config.one_shot = false;  // faults keep coming; unwinding hits more
    FaultInjector injector(config);
    FaultInjectingFileSystem fault_fs(FileSystem::Default(), injector);
    {
      // Multi-threaded on purpose: error propagation races a healthy
      // sibling worker; the invariants must hold regardless.
      BufferManager bm(dir, 20 * kPageSize, EvictionPolicy::kMixed, fault_fs);
      bm.SetFaultInjector(&injector);
      TaskExecutor executor(4);
      auto source = MakeSource(kRows, kRows);
      MaterializedCollector collector;
      HashAggregateConfig config2;
      config2.phase1_capacity = 512;
      config2.radix_bits = 2;
      auto stats = RunGroupedAggregation(bm, source, {0}, TestAggregates(),
                                         collector, executor, config2);
      if (stats.ok()) {
        successes++;
      } else {
        clean_failures++;
      }
      EXPECT_EQ(bm.PinnedBufferCount(), 0u) << "seed " << seed;
      EXPECT_EQ(bm.temp_files().UsedSlots(), 0u) << "seed " << seed;
      EXPECT_EQ(bm.temp_files().VariableBlockCount(), 0u) << "seed " << seed;
      EXPECT_EQ(bm.memory_used(), 0u) << "seed " << seed;
    }
  }
  // With p=2% over hundreds of operations nearly every seed faults; the
  // assertion is deliberately loose, the invariants above are the test.
  EXPECT_GT(clean_failures, 0u);
  (void)successes;
}

TEST(SpillStressTest, EvictionPoliciesSurviveRandomFaults) {
  std::string dir = ::testing::TempDir() + "ssagg_policy_stress_" + std::to_string(::getpid());
  (void)FileSystem::Default().CreateDirectories(dir);
  for (EvictionPolicy policy :
       {EvictionPolicy::kMixed, EvictionPolicy::kTemporaryFirst,
        EvictionPolicy::kPersistentFirst}) {
    FaultInjector::Config config;
    config.seed = 0xC0FFEE + static_cast<uint64_t>(policy);
    config.probability = 0.05;
    config.site_mask = kFaultIoSites;
    config.one_shot = false;
    FaultInjector injector(config);
    FaultInjectingFileSystem fault_fs(FileSystem::Default(), injector);
    BufferManager bm(dir, 4 * kPageSize, policy, fault_fs);

    // Churn: allocate, unpin, re-pin under continuous random I/O faults.
    std::vector<std::shared_ptr<BlockHandle>> handles(12);
    for (auto &handle : handles) {
      auto buffer = bm.Allocate(kPageSize, &handle);
      if (buffer.ok()) {
        buffer.MoveValue().Reset();
      } else {
        handle.reset();
      }
    }
    for (idx_t round = 0; round < 3; round++) {
      for (auto &handle : handles) {
        if (!handle) {
          continue;
        }
        auto pinned = bm.Pin(handle);
        if (pinned.ok()) {
          pinned.MoveValue().Reset();
        }
      }
    }
    handles.clear();
    EXPECT_EQ(bm.PinnedBufferCount(), 0u);
    EXPECT_EQ(bm.memory_used(), 0u);
    EXPECT_EQ(bm.temp_files().UsedSlots(), 0u);
  }
}

}  // namespace
}  // namespace ssagg
