#include "tpch/lineitem.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <set>
#include <string>

#include "common/file_system.h"
#include "core/run_aggregation.h"
#include "execution/collectors.h"

namespace ssagg {
namespace tpch {
namespace {

TEST(LineitemTest, RowCountScales) {
  EXPECT_EQ(LineitemGenerator(1).RowCount(), 60012u);
  EXPECT_EQ(LineitemGenerator(2).RowCount(), 120024u);
  EXPECT_EQ(LineitemGenerator(0.5).RowCount(), 30006u);
}

TEST(LineitemTest, DeterministicAcrossCalls) {
  LineitemGenerator gen(1);
  std::vector<idx_t> cols = {kOrderKey, kPartKey, kComment};
  DataChunk a(LineitemGenerator::ColumnTypes(cols));
  DataChunk b(LineitemGenerator::ColumnTypes(cols));
  ASSERT_TRUE(gen.FillChunk(a, cols, 1000, 100).ok());
  ASSERT_TRUE(gen.FillChunk(b, cols, 1000, 100).ok());
  for (idx_t i = 0; i < 100; i++) {
    EXPECT_EQ(a.column(0).GetValue<int64_t>(i), b.column(0).GetValue<int64_t>(i));
    EXPECT_EQ(a.column(1).GetValue<int64_t>(i), b.column(1).GetValue<int64_t>(i));
    EXPECT_EQ(a.column(2).GetString(i).ToString(),
              b.column(2).GetString(i).ToString());
  }
}

TEST(LineitemTest, KeyCardinalities) {
  LineitemGenerator gen(1);
  std::vector<idx_t> cols = {kOrderKey, kPartKey, kSuppKey, kReturnFlag,
                             kLineStatus, kShipMode};
  DataChunk chunk(LineitemGenerator::ColumnTypes(cols));
  std::set<int64_t> orders, parts, supps;
  std::set<std::string> flag_status, modes;
  for (idx_t start = 0; start < gen.RowCount(); start += kVectorSize) {
    idx_t n = std::min(kVectorSize, gen.RowCount() - start);
    ASSERT_TRUE(gen.FillChunk(chunk, cols, start, n).ok());
    for (idx_t i = 0; i < n; i++) {
      orders.insert(chunk.column(0).GetValue<int64_t>(i));
      parts.insert(chunk.column(1).GetValue<int64_t>(i));
      supps.insert(chunk.column(2).GetValue<int64_t>(i));
      flag_status.insert(chunk.column(3).GetString(i).ToString() + "|" +
                         chunk.column(4).GetString(i).ToString());
      modes.insert(chunk.column(5).GetString(i).ToString());
    }
  }
  EXPECT_EQ(orders.size(), (gen.RowCount() + 3) / 4);
  EXPECT_EQ(parts.size(), gen.PartKeyCount());
  EXPECT_EQ(supps.size(), gen.SuppKeyCount());
  // TPC-H's observed 4 flag/status combinations: A|F, R|F, N|F-ish... our
  // model yields exactly {A|F, R|F, N|O}... plus N|F is absent by
  // construction; at least 3, at most 4.
  EXPECT_GE(flag_status.size(), 3u);
  EXPECT_LE(flag_status.size(), 4u);
  EXPECT_EQ(modes.size(), 7u);
}

TEST(LineitemTest, GroupingQueriesThinAndWide) {
  const auto &groupings = TableIGroupings();
  ASSERT_EQ(groupings.size(), 13u);
  // Grouping 4 is l_orderkey only (used by the paper's Section VII).
  EXPECT_EQ(groupings[3].id, 4);
  ASSERT_EQ(groupings[3].columns.size(), 1u);
  EXPECT_EQ(groupings[3].columns[0], static_cast<idx_t>(kOrderKey));
  // Grouping 13 is suppkey, partkey, orderkey.
  EXPECT_EQ(groupings[12].columns.size(), 3u);

  auto thin = BuildGroupingQuery(groupings[0], /*wide=*/false);
  EXPECT_EQ(thin.projection.size(), 2u);
  EXPECT_TRUE(thin.aggregates.empty());

  auto wide = BuildGroupingQuery(groupings[0], /*wide=*/true);
  EXPECT_EQ(wide.projection.size(), static_cast<idx_t>(kColumnCount));
  EXPECT_EQ(wide.aggregates.size(), static_cast<idx_t>(kColumnCount) - 2);
  for (const auto &agg : wide.aggregates) {
    EXPECT_EQ(agg.kind, AggregateKind::kAnyValue);
  }
}

TEST(LineitemTest, EndToEndGrouping1HasFourGroups) {
  std::string temp_dir = ::testing::TempDir() + "ssagg_li_test_" + std::to_string(::getpid());
  (void)FileSystem::Default().CreateDirectories(temp_dir);
  BufferManager bm(temp_dir, 1024 * kPageSize);
  TaskExecutor executor(2);
  LineitemGenerator gen(0.5);
  auto query = BuildGroupingQuery(TableIGroupings()[0], /*wide=*/false);
  auto source = gen.MakeSource(query.projection);
  MaterializedCollector collector;
  auto stats = RunGroupedAggregation(bm, *source, query.group_columns,
                                     query.aggregates, collector, executor,
                                     HashAggregateConfig{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(collector.RowCount(), 3u);
  EXPECT_LE(collector.RowCount(), 4u);
}

TEST(LineitemTest, EndToEndGrouping13AllUnique) {
  std::string temp_dir = ::testing::TempDir() + "ssagg_li_test13_" + std::to_string(::getpid());
  (void)FileSystem::Default().CreateDirectories(temp_dir);
  BufferManager bm(temp_dir, 1024 * kPageSize);
  TaskExecutor executor(2);
  LineitemGenerator gen(0.2);
  auto query = BuildGroupingQuery(TableIGroupings()[12], /*wide=*/false);
  auto source = gen.MakeSource(query.projection);
  CountingCollector collector;
  HashAggregateConfig config;
  config.phase1_capacity = 8192;
  auto stats = RunGroupedAggregation(bm, *source, query.group_columns,
                                     query.aggregates, collector, executor,
                                     config);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // suppkey,partkey,orderkey is essentially unique per row (collisions are
  // possible but rare at this scale).
  EXPECT_GT(collector.TotalRows(), gen.RowCount() * 95 / 100);
  EXPECT_LE(collector.TotalRows(), gen.RowCount());
}

TEST(LineitemTest, WideVariantCarriesPayloadColumns) {
  std::string temp_dir = ::testing::TempDir() + "ssagg_li_wide_" + std::to_string(::getpid());
  (void)FileSystem::Default().CreateDirectories(temp_dir);
  BufferManager bm(temp_dir, 1024 * kPageSize);
  TaskExecutor executor(2);
  LineitemGenerator gen(0.1);
  auto query = BuildGroupingQuery(TableIGroupings()[1], /*wide=*/true);
  auto source = gen.MakeSource(query.projection);
  MaterializedCollector collector;
  auto stats = RunGroupedAggregation(bm, *source, query.group_columns,
                                     query.aggregates, collector, executor,
                                     HashAggregateConfig{});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(collector.RowCount(), 7u);  // 7 ship modes
  // 1 group column + 15 ANY_VALUE payload columns.
  ASSERT_EQ(collector.rows()[0].size(), 16u);
  for (const auto &row : collector.rows()) {
    EXPECT_FALSE(row[0].IsNull());
    // The comment payload is a non-empty string.
    EXPECT_GT(row[15].GetString().size(), 0u);
  }
}

}  // namespace
}  // namespace tpch
}  // namespace ssagg
