// Edge cases and invariants of the unified buffer manager beyond the basic
// behaviours of buffer_manager_test.cc.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <thread>

#include "buffer/buffer_manager.h"
#include "common/file_system.h"
#include "observe/metrics.h"

namespace ssagg {
namespace {

class BufferManagerEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "ssagg_bm_edge_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
  }
  std::string temp_dir_;
};

TEST_F(BufferManagerEdgeTest, RaisingTheLimitUnblocksAllocations) {
  BufferManager bm(temp_dir_, kPageSize);
  std::shared_ptr<BlockHandle> a, b;
  auto ha = bm.Allocate(kPageSize, &a).MoveValue();
  EXPECT_FALSE(bm.Allocate(kPageSize, &b).ok());  // pinned page, full pool
  bm.SetMemoryLimit(2 * kPageSize);
  EXPECT_TRUE(bm.Allocate(kPageSize, &b).ok());
}

TEST_F(BufferManagerEdgeTest, LoweringTheLimitEvictsLazily) {
  BufferManager bm(temp_dir_, 8 * kPageSize);
  std::vector<std::shared_ptr<BlockHandle>> blocks(8);
  for (auto &block : blocks) {
    auto h = bm.Allocate(kPageSize, &block).MoveValue();
  }
  EXPECT_EQ(bm.memory_used(), 8 * kPageSize);
  bm.SetMemoryLimit(2 * kPageSize);
  // No proactive eviction...
  EXPECT_EQ(bm.memory_used(), 8 * kPageSize);
  // ...but the next reservation drives usage down under the new limit.
  std::shared_ptr<BlockHandle> extra;
  auto h = bm.Allocate(kPageSize, &extra).MoveValue();
  EXPECT_LE(bm.memory_used(), 2 * kPageSize);
}

TEST_F(BufferManagerEdgeTest, SpillTemporaryOffStillEvictsPersistent) {
  auto block_mgr =
      FileBlockManager::Create(temp_dir_ + "/edge.db").MoveValue();
  FileBuffer buf(kPageSize);
  std::vector<block_id_t> ids;
  for (int i = 0; i < 3; i++) {
    block_id_t id = block_mgr->AllocateBlock();
    std::memset(buf.data(), i, kPageSize);
    ASSERT_TRUE(block_mgr->WriteBlock(id, buf).ok());
    ids.push_back(id);
  }
  BufferManager bm(temp_dir_, 3 * kPageSize);
  bm.SetSpillTemporary(false);
  // One unpinned temporary page + persistent pages filling the rest.
  std::shared_ptr<BlockHandle> temp;
  { auto h = bm.Allocate(kPageSize, &temp).MoveValue(); }
  std::vector<std::shared_ptr<BlockHandle>> handles;
  for (auto id : ids) {
    handles.push_back(bm.RegisterPersistentBlock(*block_mgr, id));
    auto pin = bm.Pin(handles.back());
    ASSERT_TRUE(pin.ok()) << pin.status().ToString();
  }
  auto snap = bm.Snapshot();
  EXPECT_GE(snap.evicted_persistent_count, 1u);
  EXPECT_EQ(snap.temp_writes, 0u);  // the temporary page never spilled
  // The temporary page is still resident and intact.
  EXPECT_TRUE(bm.Pin(temp).ok());
}

TEST_F(BufferManagerEdgeTest, PolicySwitchRedistributesQueuedPages) {
  BufferManager bm(temp_dir_, 4 * kPageSize, EvictionPolicy::kMixed);
  std::vector<std::shared_ptr<BlockHandle>> blocks(4);
  for (auto &block : blocks) {
    auto h = bm.Allocate(kPageSize, &block).MoveValue();
  }
  // Switch policies while pages sit in the queue; eviction must still work.
  bm.SetEvictionPolicy(EvictionPolicy::kTemporaryFirst);
  std::shared_ptr<BlockHandle> extra;
  ASSERT_TRUE(bm.Allocate(kPageSize, &extra).ok());
  EXPECT_GE(bm.Snapshot().evicted_temporary_count, 1u);
  bm.SetEvictionPolicy(EvictionPolicy::kPersistentFirst);
  std::shared_ptr<BlockHandle> extra2;
  ASSERT_TRUE(bm.Allocate(kPageSize, &extra2).ok());
}

TEST_F(BufferManagerEdgeTest, DoublePinSharesTheBuffer) {
  BufferManager bm(temp_dir_, 4 * kPageSize);
  std::shared_ptr<BlockHandle> block;
  auto h1 = bm.Allocate(kPageSize, &block).MoveValue();
  auto h2 = bm.Pin(block).MoveValue();
  EXPECT_EQ(h1.Ptr(), h2.Ptr());
  EXPECT_EQ(block->Readers(), 2);
  h1.Reset();
  EXPECT_EQ(block->Readers(), 1);
  // Still resident and usable through the second pin.
  h2.Ptr()[0] = 42;
}

TEST_F(BufferManagerEdgeTest, ZeroByteReservationsAreNoOps) {
  BufferManager bm(temp_dir_, kPageSize);
  EXPECT_TRUE(bm.ReserveExternalMemory(0).ok());
  bm.FreeExternalMemory(0);
  EXPECT_EQ(bm.memory_used(), 0u);
}

TEST_F(BufferManagerEdgeTest, ConcurrentNonPagedAndPagedPressure) {
  BufferManager bm(temp_dir_, 16 * kPageSize);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&bm, &failures]() {
      for (int i = 0; i < 50; i++) {
        if (i % 3 == 0) {
          auto np = bm.AllocateNonPaged(kPageSize / 2);
          if (!np.ok()) {
            failures++;
            return;
          }
        } else {
          std::shared_ptr<BlockHandle> block;
          auto res = bm.Allocate(kPageSize, &block);
          if (!res.ok()) {
            failures++;
            return;
          }
        }
      }
    });
  }
  for (auto &th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  // All handles dropped: accounting returns to zero.
  EXPECT_EQ(bm.memory_used(), 0u);
  EXPECT_EQ(bm.Snapshot().temp_file_size, 0u);
}

//===----------------------------------------------------------------------===//
// Eviction-policy victim order
//===----------------------------------------------------------------------===//

/// Fixture for the policy tests: a pool of 4 pages holding two resident
/// persistent pages and two resident temporary pages, all unpinned in a
/// controlled order, so that forcing evictions one page at a time reveals
/// exactly which kind each policy victimizes first.
class EvictionPolicyOrderTest : public BufferManagerEdgeTest {
 protected:
  struct EvictionCounts {
    idx_t persistent;
    idx_t temporary;
    idx_t temp_writes;
  };

  void PreparePool(BufferManager &bm, bool unpin_persistent_first) {
    block_mgr_ = FileBlockManager::Create(temp_dir_ + "/policy.db",
                                          bm.fs())
                     .MoveValue();
    FileBuffer buf(kPageSize);
    std::vector<block_id_t> ids;
    for (int i = 0; i < 2; i++) {
      block_id_t id = block_mgr_->AllocateBlock();
      std::memset(buf.data(), i + 1, kPageSize);
      ASSERT_TRUE(block_mgr_->WriteBlock(id, buf).ok());
      ids.push_back(id);
    }
    // Two pinned temporary pages...
    temps_.resize(2);
    std::vector<BufferHandle> temp_pins;
    for (auto &block : temps_) {
      temp_pins.push_back(bm.Allocate(kPageSize, &block).MoveValue());
    }
    auto unpin_persistents = [&]() {
      for (auto id : ids) {
        persistents_.push_back(bm.RegisterPersistentBlock(*block_mgr_, id));
        auto pin = bm.Pin(persistents_.back());
        ASSERT_TRUE(pin.ok()) << pin.status().ToString();
        // The pin drops here: the page joins the eviction queue.
      }
    };
    // ...and two resident persistent pages, with the unpin order chosen so
    // the LRU would contradict the policy under test.
    if (unpin_persistent_first) {
      unpin_persistents();
      temp_pins.clear();
    } else {
      temp_pins.clear();
      unpin_persistents();
    }
    ASSERT_EQ(bm.memory_used(), 4 * kPageSize);
    ASSERT_EQ(bm.PinnedBufferCount(), 0u);
  }

  /// Allocates one pinned filler page, forcing exactly one eviction.
  void ForceOneEviction(BufferManager &bm) {
    fillers_.emplace_back();
    auto pin = bm.Allocate(kPageSize, &fillers_.back());
    ASSERT_TRUE(pin.ok()) << pin.status().ToString();
    filler_pins_.push_back(pin.MoveValue());
  }

  static EvictionCounts Counts(const BufferManager &bm) {
    auto snap = bm.Snapshot();
    return {snap.evicted_persistent_count, snap.evicted_temporary_count,
            snap.temp_writes};
  }

  /// Drops every handle; must run before the test-local BufferManager is
  /// destroyed, since the fixture members would otherwise outlive it.
  void ReleasePool() {
    filler_pins_.clear();
    fillers_.clear();
    persistents_.clear();
    temps_.clear();
  }

  std::unique_ptr<FileBlockManager> block_mgr_;
  std::vector<std::shared_ptr<BlockHandle>> temps_;
  std::vector<std::shared_ptr<BlockHandle>> persistents_;
  std::vector<std::shared_ptr<BlockHandle>> fillers_;
  std::vector<BufferHandle> filler_pins_;
};

TEST_F(EvictionPolicyOrderTest, TemporaryFirstDrainsTemporariesBeforeAny) {
  BufferManager bm(temp_dir_, 4 * kPageSize, EvictionPolicy::kTemporaryFirst);
  // Persistents are the LRU victims; the policy must override that.
  PreparePool(bm, /*unpin_persistent_first=*/true);

  ForceOneEviction(bm);
  ForceOneEviction(bm);
  auto counts = Counts(bm);
  EXPECT_EQ(counts.temporary, 2u) << "temporaries were not evicted first";
  EXPECT_EQ(counts.persistent, 0u);
  EXPECT_EQ(counts.temp_writes, 2u) << "evicted temporaries must be spilled";

  ForceOneEviction(bm);
  ForceOneEviction(bm);
  counts = Counts(bm);
  EXPECT_EQ(counts.temporary, 2u);
  EXPECT_EQ(counts.persistent, 2u)
      << "with temporaries drained, persistents follow";
  ReleasePool();
}

TEST_F(EvictionPolicyOrderTest, PersistentFirstDrainsPersistentsBeforeAny) {
  // Global "bm.*" metrics move in lockstep with the snapshot counters.
  MetricsRegistry &registry = MetricsRegistry::Global();
  uint64_t persistent_before = registry.Value("bm.evictions_persistent");
  uint64_t spilled_before = registry.Value("bm.evictions_temporary_spilled");

  BufferManager bm(temp_dir_, 4 * kPageSize, EvictionPolicy::kPersistentFirst);
  // Temporaries are the LRU victims; the policy must override that.
  PreparePool(bm, /*unpin_persistent_first=*/false);

  ForceOneEviction(bm);
  ForceOneEviction(bm);
  auto counts = Counts(bm);
  EXPECT_EQ(counts.persistent, 2u) << "persistents were not evicted first";
  EXPECT_EQ(counts.temporary, 0u);
  EXPECT_EQ(counts.temp_writes, 0u)
      << "no temporary page may spill while persistents remain";
  EXPECT_EQ(registry.Value("bm.evictions_persistent"), persistent_before + 2);
  EXPECT_EQ(registry.Value("bm.evictions_temporary_spilled"), spilled_before);

  ForceOneEviction(bm);
  ForceOneEviction(bm);
  counts = Counts(bm);
  EXPECT_EQ(counts.persistent, 2u);
  EXPECT_EQ(counts.temporary, 2u);
  EXPECT_EQ(registry.Value("bm.evictions_temporary_spilled"),
            spilled_before + 2);
  ReleasePool();
}

TEST_F(EvictionPolicyOrderTest, MixedPolicyFollowsLruAcrossKinds) {
  BufferManager bm(temp_dir_, 4 * kPageSize, EvictionPolicy::kMixed);
  // LRU order: persistents unpinned before temporaries.
  PreparePool(bm, /*unpin_persistent_first=*/true);

  ForceOneEviction(bm);
  auto counts = Counts(bm);
  EXPECT_EQ(counts.persistent, 1u) << "mixed policy must follow LRU order";
  EXPECT_EQ(counts.temporary, 0u);

  ForceOneEviction(bm);
  counts = Counts(bm);
  EXPECT_EQ(counts.persistent, 2u);
  EXPECT_EQ(counts.temporary, 0u);

  ForceOneEviction(bm);
  ForceOneEviction(bm);
  counts = Counts(bm);
  EXPECT_EQ(counts.temporary, 2u);

  // Spilled temporaries reload intact after the churn.
  filler_pins_.clear();
  for (auto &block : temps_) {
    auto pin = bm.Pin(block);
    ASSERT_TRUE(pin.ok()) << pin.status().ToString();
  }
  ReleasePool();
}

}  // namespace
}  // namespace ssagg
