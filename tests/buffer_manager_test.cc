#include "buffer/buffer_manager.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/file_system.h"

namespace ssagg {
namespace {

constexpr idx_t kMiB = 1024 * 1024;

class BufferManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "ssagg_bm_test_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
  }
  std::string temp_dir_;
};

void FillPage(BufferHandle &handle, uint8_t seed) {
  std::memset(handle.Ptr(), seed, kPageSize);
}

bool CheckPage(BufferHandle &handle, uint8_t seed) {
  for (idx_t i = 0; i < kPageSize; i++) {
    if (handle.Ptr()[i] != seed) {
      return false;
    }
  }
  return true;
}

TEST_F(BufferManagerTest, AllocateAndPinFixedPage) {
  BufferManager bm(temp_dir_, 16 * kMiB);
  std::shared_ptr<BlockHandle> block;
  auto res = bm.Allocate(kPageSize, &block);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto handle = res.MoveValue();
  EXPECT_EQ(block->kind(), BlockKind::kTemporaryFixed);
  EXPECT_EQ(bm.memory_used(), kPageSize);
  FillPage(handle, 0xAB);
  handle.Reset();  // unpin; stays resident (ample memory)
  auto pin = bm.Pin(block);
  ASSERT_TRUE(pin.ok());
  auto h2 = pin.MoveValue();
  EXPECT_TRUE(CheckPage(h2, 0xAB));
  // No spill happened: memory was ample.
  EXPECT_EQ(bm.Snapshot().temp_writes, 0u);
}

TEST_F(BufferManagerTest, VariableSizeAllocation) {
  BufferManager bm(temp_dir_, 16 * kMiB);
  std::shared_ptr<BlockHandle> block;
  auto res = bm.Allocate(3 * kPageSize + 123, &block);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(block->kind(), BlockKind::kTemporaryVariable);
  EXPECT_EQ(bm.memory_used(), 3 * kPageSize + 123);
}

TEST_F(BufferManagerTest, EvictionSpillsAndReloads) {
  // Room for 4 pages; allocate 8, then read all back.
  BufferManager bm(temp_dir_, 4 * kPageSize);
  std::vector<std::shared_ptr<BlockHandle>> blocks(8);
  for (idx_t i = 0; i < 8; i++) {
    auto res = bm.Allocate(kPageSize, &blocks[i]);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    auto handle = res.MoveValue();
    FillPage(handle, static_cast<uint8_t>(i));
  }
  EXPECT_LE(bm.memory_used(), 4 * kPageSize);
  auto snap = bm.Snapshot();
  EXPECT_GE(snap.evicted_temporary_count, 4u);
  EXPECT_GT(snap.temp_writes, 0u);
  for (idx_t i = 0; i < 8; i++) {
    auto pin = bm.Pin(blocks[i]);
    ASSERT_TRUE(pin.ok()) << pin.status().ToString();
    auto handle = pin.MoveValue();
    EXPECT_TRUE(CheckPage(handle, static_cast<uint8_t>(i))) << "page " << i;
  }
}

TEST_F(BufferManagerTest, PinnedPagesCannotBeEvicted) {
  BufferManager bm(temp_dir_, 2 * kPageSize);
  std::shared_ptr<BlockHandle> b0, b1, b2;
  auto h0 = bm.Allocate(kPageSize, &b0).MoveValue();
  auto h1 = bm.Allocate(kPageSize, &b1).MoveValue();
  // Both pages pinned: a third allocation must fail.
  auto res = bm.Allocate(kPageSize, &b2);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsOutOfMemory());
  // After unpinning one, the allocation succeeds.
  h0.Reset();
  auto res2 = bm.Allocate(kPageSize, &b2);
  ASSERT_TRUE(res2.ok()) << res2.status().ToString();
}

TEST_F(BufferManagerTest, BufferReuseOnSameSizeAllocation) {
  BufferManager bm(temp_dir_, 2 * kPageSize);
  std::shared_ptr<BlockHandle> b0;
  {
    auto h = bm.Allocate(kPageSize, &b0).MoveValue();
    FillPage(h, 1);
  }
  std::shared_ptr<BlockHandle> b1;
  {
    auto h = bm.Allocate(kPageSize, &b1).MoveValue();
    FillPage(h, 2);
  }
  // Third allocation evicts one of the unpinned pages and reuses the buffer.
  std::shared_ptr<BlockHandle> b2;
  auto h2 = bm.Allocate(kPageSize, &b2).MoveValue();
  EXPECT_GE(bm.Snapshot().reused_buffers, 1u);
}

TEST_F(BufferManagerTest, DestroyBlockFreesMemory) {
  BufferManager bm(temp_dir_, 16 * kMiB);
  std::shared_ptr<BlockHandle> block;
  { auto h = bm.Allocate(kPageSize, &block).MoveValue(); }
  EXPECT_EQ(bm.memory_used(), kPageSize);
  bm.DestroyBlock(block);
  EXPECT_EQ(bm.memory_used(), 0u);
  auto pin = bm.Pin(block);
  EXPECT_FALSE(pin.ok());
}

TEST_F(BufferManagerTest, DestroySpilledBlockFreesTempSpace) {
  BufferManager bm(temp_dir_, 2 * kPageSize);
  std::vector<std::shared_ptr<BlockHandle>> blocks(4);
  for (idx_t i = 0; i < 4; i++) {
    auto h = bm.Allocate(kPageSize, &blocks[i]).MoveValue();
  }
  EXPECT_GT(bm.Snapshot().temp_file_size, 0u);
  for (auto &b : blocks) {
    bm.DestroyBlock(b);
  }
  EXPECT_EQ(bm.Snapshot().temp_file_size, 0u);
}

TEST_F(BufferManagerTest, DroppingHandleReleasesEverything) {
  BufferManager bm(temp_dir_, 2 * kPageSize);
  {
    std::vector<std::shared_ptr<BlockHandle>> blocks(4);
    for (idx_t i = 0; i < 4; i++) {
      auto h = bm.Allocate(kPageSize, &blocks[i]).MoveValue();
    }
  }  // all handles dropped
  EXPECT_EQ(bm.memory_used(), 0u);
  EXPECT_EQ(bm.Snapshot().temp_file_size, 0u);
}

TEST_F(BufferManagerTest, CanDestroyBlocksAreDroppedNotSpilled) {
  BufferManager bm(temp_dir_, 2 * kPageSize);
  std::vector<std::shared_ptr<BlockHandle>> blocks(4);
  for (idx_t i = 0; i < 4; i++) {
    auto res = bm.Allocate(kPageSize, &blocks[i], /*can_destroy=*/true);
    ASSERT_TRUE(res.ok());
  }
  EXPECT_EQ(bm.Snapshot().temp_writes, 0u);
  // The evicted blocks cannot be pinned again.
  int destroyed = 0;
  for (auto &b : blocks) {
    if (!bm.Pin(b).ok()) {
      destroyed++;
    }
  }
  EXPECT_GE(destroyed, 2);
}

TEST_F(BufferManagerTest, NonPagedAllocationCountsAndEvicts) {
  BufferManager bm(temp_dir_, 4 * kPageSize);
  std::vector<std::shared_ptr<BlockHandle>> blocks(4);
  for (idx_t i = 0; i < 4; i++) {
    auto h = bm.Allocate(kPageSize, &blocks[i]).MoveValue();
    FillPage(h, static_cast<uint8_t>(i));
  }
  // Memory is full of unpinned pages; a non-paged allocation evicts them.
  auto res = bm.AllocateNonPaged(2 * kPageSize);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto alloc = res.MoveValue();
  EXPECT_EQ(alloc.size(), 2 * kPageSize);
  EXPECT_LE(bm.memory_used(), 4 * kPageSize);
  EXPECT_GE(bm.Snapshot().evicted_temporary_count, 2u);
  // Contents of evicted blocks survive.
  auto pin = bm.Pin(blocks[0]);
  ASSERT_TRUE(pin.ok());
  auto h = pin.MoveValue();
  EXPECT_TRUE(CheckPage(h, 0));
}

TEST_F(BufferManagerTest, NonPagedAllocationTooLargeFails) {
  BufferManager bm(temp_dir_, kPageSize);
  auto res = bm.AllocateNonPaged(2 * kPageSize);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsOutOfMemory());
  EXPECT_EQ(bm.memory_used(), 0u);
}

TEST_F(BufferManagerTest, PersistentBlocksEvictForFree) {
  std::string db_path = temp_dir_ + "/test.db";
  auto bm_res = FileBlockManager::Create(db_path);
  ASSERT_TRUE(bm_res.ok());
  auto block_mgr = bm_res.MoveValue();
  BufferManager bm(temp_dir_, 2 * kPageSize);

  // Write 4 persistent blocks directly.
  std::vector<block_id_t> ids;
  FileBuffer buf(kPageSize);
  for (idx_t i = 0; i < 4; i++) {
    block_id_t id = block_mgr->AllocateBlock();
    std::memset(buf.data(), static_cast<int>(i + 10), kPageSize);
    ASSERT_TRUE(block_mgr->WriteBlock(id, buf).ok());
    ids.push_back(id);
  }
  // Register + pin all 4 through a 2-page pool: persistent pages get
  // evicted without temp-file writes.
  std::vector<std::shared_ptr<BlockHandle>> handles;
  for (auto id : ids) {
    handles.push_back(bm.RegisterPersistentBlock(*block_mgr, id));
  }
  for (idx_t i = 0; i < 4; i++) {
    auto pin = bm.Pin(handles[i]);
    ASSERT_TRUE(pin.ok()) << pin.status().ToString();
    auto h = pin.MoveValue();
    EXPECT_EQ(h.Ptr()[0], static_cast<uint8_t>(i + 10));
  }
  auto snap = bm.Snapshot();
  EXPECT_GE(snap.evicted_persistent_count, 2u);
  EXPECT_EQ(snap.temp_writes, 0u);
  // Re-pinning reloads from the database file.
  auto pin = bm.Pin(handles[0]);
  ASSERT_TRUE(pin.ok());
  auto h = pin.MoveValue();
  EXPECT_EQ(h.Ptr()[0], 10);
}

TEST_F(BufferManagerTest, TemporaryFirstSparesPersistentPages) {
  std::string db_path = temp_dir_ + "/policy.db";
  auto block_mgr = FileBlockManager::Create(db_path).MoveValue();
  FileBuffer buf(kPageSize);
  std::vector<block_id_t> ids;
  for (idx_t i = 0; i < 2; i++) {
    block_id_t id = block_mgr->AllocateBlock();
    std::memset(buf.data(), 7, kPageSize);
    ASSERT_TRUE(block_mgr->WriteBlock(id, buf).ok());
    ids.push_back(id);
  }

  BufferManager bm(temp_dir_, 4 * kPageSize, EvictionPolicy::kTemporaryFirst);
  // Load 2 persistent + 2 temporary pages (pool now full), then allocate:
  // the temporary pages must be evicted first.
  std::vector<std::shared_ptr<BlockHandle>> persistent;
  for (auto id : ids) {
    persistent.push_back(bm.RegisterPersistentBlock(*block_mgr, id));
    auto pin = bm.Pin(persistent.back());
    ASSERT_TRUE(pin.ok());
  }
  std::vector<std::shared_ptr<BlockHandle>> temps(2);
  for (idx_t i = 0; i < 2; i++) {
    auto h = bm.Allocate(kPageSize, &temps[i]).MoveValue();
  }
  std::shared_ptr<BlockHandle> extra;
  auto h = bm.Allocate(kPageSize, &extra).MoveValue();
  auto snap = bm.Snapshot();
  EXPECT_GE(snap.evicted_temporary_count, 1u);
  EXPECT_EQ(snap.evicted_persistent_count, 0u);
}

TEST_F(BufferManagerTest, PersistentFirstSparesTemporaryPages) {
  std::string db_path = temp_dir_ + "/policy2.db";
  auto block_mgr = FileBlockManager::Create(db_path).MoveValue();
  FileBuffer buf(kPageSize);
  std::vector<block_id_t> ids;
  for (idx_t i = 0; i < 2; i++) {
    block_id_t id = block_mgr->AllocateBlock();
    std::memset(buf.data(), 7, kPageSize);
    ASSERT_TRUE(block_mgr->WriteBlock(id, buf).ok());
    ids.push_back(id);
  }
  BufferManager bm(temp_dir_, 4 * kPageSize,
                   EvictionPolicy::kPersistentFirst);
  std::vector<std::shared_ptr<BlockHandle>> persistent;
  for (auto id : ids) {
    persistent.push_back(bm.RegisterPersistentBlock(*block_mgr, id));
    auto pin = bm.Pin(persistent.back());
    ASSERT_TRUE(pin.ok());
  }
  std::vector<std::shared_ptr<BlockHandle>> temps(2);
  for (idx_t i = 0; i < 2; i++) {
    auto h = bm.Allocate(kPageSize, &temps[i]).MoveValue();
  }
  std::shared_ptr<BlockHandle> extra;
  auto h = bm.Allocate(kPageSize, &extra).MoveValue();
  auto snap = bm.Snapshot();
  EXPECT_GE(snap.evicted_persistent_count, 1u);
  EXPECT_EQ(snap.evicted_temporary_count, 0u);
  EXPECT_EQ(snap.temp_writes, 0u);
}

TEST_F(BufferManagerTest, ConcurrentAllocatePinStress) {
  BufferManager bm(temp_dir_, 8 * kPageSize);
  constexpr int kThreads = 4;
  constexpr int kPagesPerThread = 16;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&bm, &failures, t]() {
      std::vector<std::shared_ptr<BlockHandle>> blocks(kPagesPerThread);
      for (int i = 0; i < kPagesPerThread; i++) {
        auto res = bm.Allocate(kPageSize, &blocks[i]);
        if (!res.ok()) {
          failures++;
          return;
        }
        auto handle = res.MoveValue();
        std::memset(handle.Ptr(), t * kPagesPerThread + i, kPageSize);
      }
      for (int round = 0; round < 3; round++) {
        for (int i = 0; i < kPagesPerThread; i++) {
          auto pin = bm.Pin(blocks[i]);
          if (!pin.ok()) {
            failures++;
            return;
          }
          auto handle = pin.MoveValue();
          uint8_t expected = static_cast<uint8_t>(t * kPagesPerThread + i);
          if (handle.Ptr()[0] != expected ||
              handle.Ptr()[kPageSize - 1] != expected) {
            failures++;
            return;
          }
        }
      }
    });
  }
  for (auto &th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(bm.memory_used(), 8 * kPageSize);
}

TEST_F(BufferManagerTest, SnapshotTracksLoadedKinds) {
  BufferManager bm(temp_dir_, 16 * kMiB);
  std::shared_ptr<BlockHandle> block;
  auto h = bm.Allocate(kPageSize, &block).MoveValue();
  auto snap = bm.Snapshot();
  EXPECT_EQ(snap.temporary_bytes_in_memory, kPageSize);
  EXPECT_EQ(snap.persistent_bytes_in_memory, 0u);
}

}  // namespace
}  // namespace ssagg
