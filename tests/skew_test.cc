// Data-distribution behaviour (paper Section V, "Data Distributions"):
// thread-local pre-aggregation efficiently reduces heavy hitters in skewed
// data and exploits clustered ("interesting") orderings, while uniform
// random distributions with many unique groups inflate the materialized
// intermediates. These tests pin those behaviours.

#include <gtest/gtest.h>

#include <unistd.h>

#include "ssagg/ssagg.h"

namespace ssagg {
namespace {

class SkewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    temp_dir_ = ::testing::TempDir() + "ssagg_skew_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(temp_dir_);
  }

  /// Runs SUM over 1M rows with the given key function and returns the
  /// operator stats (groups, materialized rows).
  HashAggregateStats Run(std::function<int64_t(idx_t)> key_of,
                         idx_t expected_groups,
                         AggregateStrategy strategy =
                             AggregateStrategy::kAdaptive) {
    BufferManager bm(temp_dir_, 2048 * kPageSize);
    TaskExecutor executor(2);
    RangeSource source(
        {LogicalTypeId::kInt64, LogicalTypeId::kInt64}, kRows,
        [&key_of](DataChunk &chunk, idx_t start, idx_t count) {
          for (idx_t i = 0; i < count; i++) {
            chunk.column(0).SetValue<int64_t>(i, key_of(start + i));
            chunk.column(1).SetValue<int64_t>(i, 1);
          }
          return Status::OK();
        });
    MaterializedCollector collector;
    HashAggregateConfig config;
    config.phase1_capacity = 4096;  // small: resets happen
    config.radix_bits = 3;
    config.strategy = strategy;
    auto stats = RunGroupedAggregation(bm, source, {0},
                                       {{AggregateKind::kSum, 1}}, collector,
                                       executor, config);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(collector.RowCount(), expected_groups);
    int64_t total = 0;
    for (const auto &row : collector.rows()) {
      total += row[1].GetInt64();
    }
    EXPECT_EQ(total, static_cast<int64_t>(kRows));
    return stats.MoveValue();
  }

  static constexpr idx_t kRows = 1000000;
  std::string temp_dir_;
};

TEST_F(SkewTest, HeavyHittersReduceAlmostCompletely) {
  // Zipf-ish: 90% of rows hit 16 keys, the rest spread over 100k keys.
  idx_t groups_seen;
  {
    std::set<int64_t> keys;
    for (idx_t row = 0; row < kRows; row++) {
      uint64_t r = HashUint64(row);
      keys.insert(r % 10 < 9 ? static_cast<int64_t>(r % 16)
                             : static_cast<int64_t>(16 + (r >> 8) % 100000));
    }
    groups_seen = keys.size();
  }
  auto stats = Run(
      [](idx_t row) {
        uint64_t r = HashUint64(row);
        return r % 10 < 9 ? static_cast<int64_t>(r % 16)
                          : static_cast<int64_t>(16 + (r >> 8) % 100000);
      },
      groups_seen);
  // Heavy hitters stay in the table across their recurrences; the
  // materialization is close to the number of unique groups despite the
  // tiny table (the duplicate factor stays small).
  EXPECT_LT(stats.materialized_rows, 3 * stats.unique_groups);
}

TEST_F(SkewTest, ClusteredOrderingIsNearOptimal) {
  // "Interesting ordering": equal keys arrive consecutively (1000 rows per
  // key). Pre-aggregation reduces each cluster inside the small table.
  auto stats = Run([](idx_t row) { return static_cast<int64_t>(row / 1000); },
                   kRows / 1000);
  // Near-perfect reduction: materialized ~= unique groups even though
  // groups (1000) x clusters exceed the table across the run.
  EXPECT_LT(stats.materialized_rows, stats.unique_groups * 5 / 2);
}

TEST_F(SkewTest, UniformRandomInflatesMaterialization) {
  // Uniform random keys recurring ~10x at long intervals: the paper's
  // pathological case — "memory consumption grows linearly with the input
  // size rather than with the output size".
  constexpr idx_t kKeys = 100000;
  idx_t groups_seen;
  {
    std::set<int64_t> keys;
    for (idx_t row = 0; row < kRows; row++) {
      keys.insert(static_cast<int64_t>(HashUint64(row) % kKeys));
    }
    groups_seen = keys.size();  // a handful of keys may never be drawn
  }
  // This pins the *radix* plan's pathology; the adaptive planner would
  // (correctly) dodge it by picking central merge, so force the strategy.
  auto stats = Run(
      [](idx_t row) {
        return static_cast<int64_t>(HashUint64(row) % kKeys);
      },
      groups_seen, AggregateStrategy::kRadixMerge);
  // Each key recurs ~10x and almost every recurrence lands after a reset:
  // materialized rows are several times the output size.
  EXPECT_GT(stats.materialized_rows, 4 * stats.unique_groups);
}

}  // namespace
}  // namespace ssagg
