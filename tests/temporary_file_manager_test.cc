#include "buffer/temporary_file_manager.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>

#include "common/constants.h"

namespace ssagg {
namespace {

class TempFileManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "ssagg_tfm_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(dir_);
  }
  std::string dir_;
};

TEST_F(TempFileManagerTest, FixedBlockRoundTrip) {
  TemporaryFileManager tfm(dir_);
  FileBuffer buffer(kPageSize);
  std::memset(buffer.data(), 0x5A, kPageSize);
  auto slot = tfm.WriteFixedBlock(buffer);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(tfm.CurrentSize(), kPageSize);
  FileBuffer read_back(kPageSize);
  ASSERT_TRUE(tfm.ReadFixedBlock(slot.value(), read_back).ok());
  EXPECT_EQ(std::memcmp(read_back.data(), buffer.data(), kPageSize), 0);
  // Reading eagerly frees the slot.
  EXPECT_EQ(tfm.CurrentSize(), 0u);
}

TEST_F(TempFileManagerTest, SlotsAreRecycled) {
  TemporaryFileManager tfm(dir_);
  FileBuffer buffer(kPageSize);
  std::vector<idx_t> slots;
  for (int i = 0; i < 4; i++) {
    std::memset(buffer.data(), i, kPageSize);
    slots.push_back(tfm.WriteFixedBlock(buffer).MoveValue());
  }
  EXPECT_EQ(tfm.CurrentSize(), 4 * kPageSize);
  // Free two slots and write two new blocks: the file must not grow.
  tfm.FreeFixedSlot(slots[1]);
  tfm.FreeFixedSlot(slots[2]);
  std::memset(buffer.data(), 0xEE, kPageSize);
  idx_t s1 = tfm.WriteFixedBlock(buffer).MoveValue();
  idx_t s2 = tfm.WriteFixedBlock(buffer).MoveValue();
  EXPECT_TRUE(s1 == slots[1] || s1 == slots[2]);
  EXPECT_TRUE(s2 == slots[1] || s2 == slots[2]);
  EXPECT_EQ(tfm.CurrentSize(), 4 * kPageSize);
  EXPECT_EQ(tfm.PeakSize(), 4 * kPageSize);
}

TEST_F(TempFileManagerTest, ConcurrentSlotContentsStayDistinct) {
  TemporaryFileManager tfm(dir_);
  FileBuffer a(kPageSize), b(kPageSize);
  std::memset(a.data(), 1, kPageSize);
  std::memset(b.data(), 2, kPageSize);
  idx_t sa = tfm.WriteFixedBlock(a).MoveValue();
  idx_t sb = tfm.WriteFixedBlock(b).MoveValue();
  FileBuffer read_back(kPageSize);
  ASSERT_TRUE(tfm.ReadFixedBlock(sb, read_back).ok());
  EXPECT_EQ(read_back.data()[0], 2);
  ASSERT_TRUE(tfm.ReadFixedBlock(sa, read_back).ok());
  EXPECT_EQ(read_back.data()[0], 1);
}

TEST_F(TempFileManagerTest, VariableBlocksGetOwnFiles) {
  TemporaryFileManager tfm(dir_);
  FileBuffer big(3 * kPageSize + 999);
  std::memset(big.data(), 0xAB, big.size());
  ASSERT_TRUE(tfm.WriteVariableBlock(42, big).ok());
  EXPECT_TRUE(FileSystem::Default().FileExists(tfm.VariableFilePath(42)));
  EXPECT_EQ(tfm.CurrentSize(), big.size());
  FileBuffer read_back(big.size());
  ASSERT_TRUE(tfm.ReadVariableBlock(42, read_back).ok());
  EXPECT_EQ(std::memcmp(read_back.data(), big.data(), big.size()), 0);
  // Reading removes the file.
  EXPECT_FALSE(FileSystem::Default().FileExists(tfm.VariableFilePath(42)));
  EXPECT_EQ(tfm.CurrentSize(), 0u);
}

TEST_F(TempFileManagerTest, FreeVariableBlockDeletesFile) {
  TemporaryFileManager tfm(dir_);
  FileBuffer buffer(kPageSize + 1);
  ASSERT_TRUE(tfm.WriteVariableBlock(7, buffer).ok());
  tfm.FreeVariableBlock(7);
  EXPECT_FALSE(FileSystem::Default().FileExists(tfm.VariableFilePath(7)));
  EXPECT_EQ(tfm.CurrentSize(), 0u);
}

TEST_F(TempFileManagerTest, DestructorRemovesTempFile) {
  std::string temp_path;
  {
    TemporaryFileManager tfm(dir_);
    FileBuffer buffer(kPageSize);
    (void)tfm.WriteFixedBlock(buffer);
    temp_path = tfm.FixedFilePath();
    EXPECT_TRUE(FileSystem::Default().FileExists(temp_path));
  }
  EXPECT_FALSE(FileSystem::Default().FileExists(temp_path));
}

TEST_F(TempFileManagerTest, PeakTracksHighWaterMark) {
  TemporaryFileManager tfm(dir_);
  FileBuffer buffer(kPageSize);
  std::vector<idx_t> slots;
  for (int i = 0; i < 8; i++) {
    slots.push_back(tfm.WriteFixedBlock(buffer).MoveValue());
  }
  for (idx_t slot : slots) {
    tfm.FreeFixedSlot(slot);
  }
  EXPECT_EQ(tfm.CurrentSize(), 0u);
  EXPECT_EQ(tfm.PeakSize(), 8 * kPageSize);
  EXPECT_EQ(tfm.WriteCount(), 8u);
}

}  // namespace
}  // namespace ssagg
