#include "testing/fault_injector.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/file_system.h"
#include "core/run_aggregation.h"
#include "execution/collectors.h"
#include "execution/range_source.h"
#include "testing/fault_fs.h"

namespace ssagg {
namespace {

//===----------------------------------------------------------------------===//
// FaultInjector unit tests
//===----------------------------------------------------------------------===//

TEST(FaultInjectorTest, FailAtIndexesArmedOperations) {
  FaultInjector::Config config;
  config.fail_at = 3;
  config.site_mask = kFaultIoSites;
  FaultInjector injector(config);
  EXPECT_TRUE(injector.Hit(FaultSite::kOpen).ok());
  EXPECT_TRUE(injector.Hit(FaultSite::kWrite).ok());
  Status third = injector.Hit(FaultSite::kWrite);
  EXPECT_TRUE(third.IsIOError()) << third.ToString();
  EXPECT_EQ(injector.faults_injected(), 1u);
  EXPECT_EQ(injector.ops_seen(), 3u);
}

TEST(FaultInjectorTest, UnarmedSitesAreCountedButNeverFail) {
  FaultInjector::Config config;
  config.fail_at = 1;
  config.site_mask = FaultSiteBit(FaultSite::kWrite);
  FaultInjector injector(config);
  // kRemove and kRead are not in the mask: they neither fail nor advance
  // the armed-operation sequence.
  EXPECT_TRUE(injector.Hit(FaultSite::kRemove).ok());
  EXPECT_TRUE(injector.Hit(FaultSite::kRead).ok());
  EXPECT_EQ(injector.ops_seen(), 0u);
  EXPECT_EQ(injector.ops_seen(FaultSite::kRead), 1u);
  EXPECT_TRUE(injector.Hit(FaultSite::kWrite).IsIOError());
}

TEST(FaultInjectorTest, MemorySitesFailWithOutOfMemory) {
  FaultInjector::Config config;
  config.fail_at = 1;
  config.site_mask = kFaultMemorySites;
  FaultInjector injector(config);
  Status status = injector.Hit(FaultSite::kAllocate);
  EXPECT_TRUE(status.IsOutOfMemory()) << status.ToString();
}

TEST(FaultInjectorTest, OneShotInjectsExactlyOneFault) {
  FaultInjector::Config config;
  config.fail_at = 2;
  FaultInjector injector(config);
  EXPECT_TRUE(injector.Hit(FaultSite::kWrite).ok());
  EXPECT_FALSE(injector.Hit(FaultSite::kWrite).ok());
  // one_shot (the default): every later operation succeeds, so cleanup
  // paths run against a healthy system.
  for (int i = 0; i < 100; i++) {
    EXPECT_TRUE(injector.Hit(FaultSite::kWrite).ok());
  }
  EXPECT_EQ(injector.faults_injected(), 1u);
}

TEST(FaultInjectorTest, ProbabilityScheduleIsDeterministicPerSeed) {
  auto schedule = [](uint64_t seed) {
    FaultInjector::Config config;
    config.seed = seed;
    config.probability = 0.3;
    config.one_shot = false;
    FaultInjector injector(config);
    std::vector<bool> faults;
    for (int i = 0; i < 200; i++) {
      faults.push_back(!injector.Hit(FaultSite::kWrite).ok());
    }
    return faults;
  };
  EXPECT_EQ(schedule(42), schedule(42));
  EXPECT_NE(schedule(42), schedule(43));
  // The coin is drawn even when fail_at triggers first, so a fail_at run
  // leaves the probability stream aligned.
  idx_t faults = 0;
  for (bool f : schedule(42)) {
    faults += f;
  }
  EXPECT_GT(faults, 20u);
  EXPECT_LT(faults, 120u);
}

TEST(FaultInjectorTest, ResetRearmsAndZeroesCounters) {
  FaultInjector::Config config;
  config.fail_at = 1;
  FaultInjector injector(config);
  EXPECT_FALSE(injector.Hit(FaultSite::kWrite).ok());
  config.fail_at = 2;
  injector.Reset(config);
  EXPECT_EQ(injector.ops_seen(), 0u);
  EXPECT_EQ(injector.faults_injected(), 0u);
  EXPECT_TRUE(injector.Hit(FaultSite::kWrite).ok());
  EXPECT_FALSE(injector.Hit(FaultSite::kWrite).ok());
}

//===----------------------------------------------------------------------===//
// FaultInjectingFileSystem
//===----------------------------------------------------------------------===//

class FaultFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "ssagg_fault_fs_test_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(dir_);
  }
  std::string dir_;
};

TEST_F(FaultFsTest, InjectsOpenFailure) {
  FaultInjector::Config config;
  config.fail_at = 1;
  config.site_mask = FaultSiteBit(FaultSite::kOpen);
  FaultInjector injector(config);
  FaultInjectingFileSystem fs(FileSystem::Default(), injector);
  FileOpenFlags flags;
  flags.write = true;
  flags.create = true;
  auto result = fs.Open(dir_ + "/open_fail.tmp", flags);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
  // The failed open never created the file.
  EXPECT_FALSE(fs.FileExists(dir_ + "/open_fail.tmp"));
}

TEST_F(FaultFsTest, InjectsReadAndWriteFailuresOnWrappedHandles) {
  FaultInjector injector;  // default config: armed, never fires
  FaultInjectingFileSystem fs(FileSystem::Default(), injector);
  FileOpenFlags flags;
  flags.write = true;
  flags.create = true;
  flags.truncate = true;
  std::string path = dir_ + "/rw.tmp";
  auto file = fs.Open(path, flags).MoveValue();

  char buffer[64] = {};
  ASSERT_TRUE(file->Write(buffer, sizeof(buffer), 0).ok());

  FaultInjector::Config config;
  config.fail_at = 1;
  config.site_mask = FaultSiteBit(FaultSite::kWrite);
  injector.Reset(config);
  EXPECT_TRUE(file->Write(buffer, sizeof(buffer), 64).IsIOError());

  config.site_mask = FaultSiteBit(FaultSite::kRead);
  injector.Reset(config);
  EXPECT_TRUE(file->Read(buffer, sizeof(buffer), 0).IsIOError());
  // After the one-shot fault the same handle works again.
  EXPECT_TRUE(file->Read(buffer, sizeof(buffer), 0).ok());
  file.reset();
  (void)fs.RemoveFile(path);
}

TEST_F(FaultFsTest, ShortWritePersistsHalfThenFails) {
  FaultInjector injector;
  FaultInjectingFileSystem fs(FileSystem::Default(), injector);
  FileOpenFlags flags;
  flags.write = true;
  flags.create = true;
  flags.truncate = true;
  std::string path = dir_ + "/short.tmp";
  auto file = fs.Open(path, flags).MoveValue();

  FaultInjector::Config config;
  config.fail_at = 1;
  config.site_mask = FaultSiteBit(FaultSite::kWrite);
  config.short_write = true;
  injector.Reset(config);
  char buffer[100] = {};
  EXPECT_TRUE(file->Write(buffer, sizeof(buffer), 0).IsIOError());
  // ENOSPC mid-write: half the payload landed before the error.
  EXPECT_EQ(file->FileSize().MoveValue(), 50u);
  file.reset();
  (void)fs.RemoveFile(path);
}

TEST_F(FaultFsTest, RemoveIsExcludedFromIoSitesSoCleanupRuns) {
  FaultInjector::Config config;
  config.fail_at = 1;
  config.probability = 1.0;
  config.site_mask = kFaultIoSites;
  config.one_shot = false;
  FaultInjector injector(config);
  FaultInjectingFileSystem fs(FileSystem::Default(), injector);
  std::string path = dir_ + "/removable.tmp";
  FileOpenFlags flags;
  flags.write = true;
  flags.create = true;
  auto file = FileSystem::Default().Open(path, flags).MoveValue();
  file.reset();
  // Every armed I/O fails, yet RemoveFile still succeeds: cleanup must
  // always be able to run after an injected failure.
  EXPECT_TRUE(fs.RemoveFile(path).ok());
  EXPECT_FALSE(FileSystem::Default().FileExists(path));
}

//===----------------------------------------------------------------------===//
// BufferManager fault hooks
//===----------------------------------------------------------------------===//

class BufferManagerFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "ssagg_bm_fault_test_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(dir_);
  }
  std::string dir_;
};

TEST_F(BufferManagerFaultTest, DeniedAllocationSurfacesAsOutOfMemory) {
  FaultInjector injector;
  BufferManager bm(dir_, 64 * kPageSize);
  bm.SetFaultInjector(&injector);

  FaultInjector::Config config;
  config.fail_at = 2;
  config.site_mask = FaultSiteBit(FaultSite::kAllocate);
  injector.Reset(config);

  std::shared_ptr<BlockHandle> first_handle;
  auto first = bm.Allocate(kPageSize, &first_handle);
  ASSERT_TRUE(first.ok());
  std::shared_ptr<BlockHandle> second_handle;
  auto second = bm.Allocate(kPageSize, &second_handle);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsOutOfMemory());

  // The denied allocation left no trace: one pin, one page charged.
  EXPECT_EQ(bm.PinnedBufferCount(), 1u);
  first.MoveValue().Reset();
  first_handle.reset();
  second_handle.reset();
  EXPECT_EQ(bm.PinnedBufferCount(), 0u);
  EXPECT_EQ(bm.memory_used(), 0u);
}

TEST_F(BufferManagerFaultTest, DeniedPinSurfacesAndLeavesBlockRepinnable) {
  FaultInjector injector;
  BufferManager bm(dir_, 64 * kPageSize);
  bm.SetFaultInjector(&injector);

  std::shared_ptr<BlockHandle> handle;
  auto buffer = bm.Allocate(kPageSize, &handle);
  ASSERT_TRUE(buffer.ok());
  buffer.MoveValue().Reset();

  FaultInjector::Config config;
  config.fail_at = 1;
  config.site_mask = FaultSiteBit(FaultSite::kPin);
  injector.Reset(config);
  auto denied = bm.Pin(handle);
  ASSERT_FALSE(denied.ok());
  EXPECT_TRUE(denied.status().IsOutOfMemory());
  EXPECT_EQ(bm.PinnedBufferCount(), 0u);

  // one_shot: the next pin succeeds and the block is intact.
  auto repinned = bm.Pin(handle);
  ASSERT_TRUE(repinned.ok());
  repinned.MoveValue().Reset();
  handle.reset();
  EXPECT_EQ(bm.PinnedBufferCount(), 0u);
  EXPECT_EQ(bm.memory_used(), 0u);
}

TEST_F(BufferManagerFaultTest, FailedSpillWriteLeavesNoLeakedSlots) {
  FaultInjector injector;
  FaultInjectingFileSystem fault_fs(FileSystem::Default(), injector);
  // Room for two pages: allocating the third forces an eviction, whose
  // spill write we fail.
  BufferManager bm(dir_ + "/spillfail", 2 * kPageSize, EvictionPolicy::kMixed,
                   fault_fs);

  std::vector<std::shared_ptr<BlockHandle>> handles(3);
  auto a = bm.Allocate(kPageSize, &handles[0]);
  ASSERT_TRUE(a.ok());
  a.MoveValue().Reset();  // unpinned: eviction candidate
  auto b = bm.Allocate(kPageSize, &handles[1]);
  ASSERT_TRUE(b.ok());
  b.MoveValue().Reset();

  FaultInjector::Config config;
  config.fail_at = 1;
  config.site_mask = kFaultIoSites;
  injector.Reset(config);
  std::shared_ptr<BlockHandle> third;
  auto denied = bm.Allocate(kPageSize, &third);
  ASSERT_FALSE(denied.ok()) << "eviction should have needed the failed write";
  EXPECT_EQ(bm.temp_files().UsedSlots(), 0u) << "failed spill leaked a slot";
  EXPECT_EQ(bm.PinnedBufferCount(), 0u);
  EXPECT_GE(injector.faults_injected(), 1u);

  // The evicted candidate was re-enqueued: with the fault spent, the same
  // allocation now succeeds by spilling it.
  third.reset();
  auto retried = bm.Allocate(kPageSize, &third);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  // Async backends over-evict (spill_batch > 1 writes both unpinned pages in
  // one overlapped batch), so at least one but at most two slots are in use.
  EXPECT_GE(bm.temp_files().UsedSlots(), 1u);
  EXPECT_LE(bm.temp_files().UsedSlots(), 2u);
  retried.MoveValue().Reset();
  handles.clear();
  third.reset();
  EXPECT_EQ(bm.temp_files().UsedSlots(), 0u);
  EXPECT_EQ(bm.memory_used(), 0u);
}

TEST_F(BufferManagerFaultTest, FailedReloadReadKeepsSpillStateReclaimable) {
  FaultInjector injector;
  FaultInjectingFileSystem fault_fs(FileSystem::Default(), injector);
  BufferManager bm(dir_ + "/reloadfail", 2 * kPageSize, EvictionPolicy::kMixed,
                   fault_fs);

  std::vector<std::shared_ptr<BlockHandle>> handles(2);
  for (auto &handle : handles) {
    auto buffer = bm.Allocate(kPageSize, &handle);
    ASSERT_TRUE(buffer.ok());
    buffer.MoveValue().Reset();
  }
  // Evict handles[0] by filling the pool.
  std::shared_ptr<BlockHandle> filler;
  auto f = bm.Allocate(kPageSize, &filler);
  ASSERT_TRUE(f.ok());
  f.MoveValue().Reset();
  // >= because async backends over-evict: the batch may spill both pages.
  ASSERT_GE(bm.temp_files().UsedSlots(), 1u);

  FaultInjector::Config config;
  config.fail_at = 1;
  config.site_mask = FaultSiteBit(FaultSite::kRead);
  injector.Reset(config);
  auto denied = bm.Pin(handles[0]);
  ASSERT_FALSE(denied.ok());
  EXPECT_TRUE(denied.status().IsIOError());
  EXPECT_EQ(bm.PinnedBufferCount(), 0u);

  // The failed reload must not orphan the temp-file slot: dropping the
  // block reclaims it.
  handles.clear();
  filler.reset();
  EXPECT_EQ(bm.temp_files().UsedSlots(), 0u);
  EXPECT_EQ(bm.memory_used(), 0u);
}

//===----------------------------------------------------------------------===//
// Full-query fault sweeps (the headline deliverable)
//===----------------------------------------------------------------------===//

std::vector<LogicalTypeId> SourceTypes() {
  return {LogicalTypeId::kInt64, LogicalTypeId::kInt64,
          LogicalTypeId::kVarchar};
}

RangeSource MakeSource(idx_t total_rows, idx_t num_groups) {
  return RangeSource(
      SourceTypes(), total_rows,
      [num_groups](DataChunk &chunk, idx_t start, idx_t count) {
        for (idx_t i = 0; i < count; i++) {
          idx_t row = start + i;
          int64_t key = static_cast<int64_t>(row % num_groups);
          chunk.column(0).SetValue<int64_t>(i, key);
          chunk.column(1).SetValue<int64_t>(i, static_cast<int64_t>(row));
          chunk.column(2).SetString(i,
                                    "label_for_group_" + std::to_string(key));
        }
        return Status::OK();
      });
}

std::vector<AggregateRequest> TestAggregates() {
  return {{AggregateKind::kSum, 1},
          {AggregateKind::kCountStar, kInvalidIndex},
          {AggregateKind::kAnyValue, 2}};
}

/// Canonical (sorted) form of a collected result, for bit-identical
/// comparison across runs with unspecified row order.
std::vector<std::string> CanonicalRows(const MaterializedCollector &collector) {
  std::vector<std::string> rows;
  rows.reserve(collector.RowCount());
  for (const auto &row : collector.rows()) {
    std::string flat;
    for (const auto &value : row) {
      flat += value.ToString();
      flat += '|';
    }
    rows.push_back(std::move(flat));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class FaultSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_dir_ = ::testing::TempDir() + "ssagg_fault_sweep_" + std::to_string(::getpid());
    (void)FileSystem::Default().CreateDirectories(base_dir_);
  }

  /// Small spilling workload: tight pool, every group unique, single
  /// thread so the k-th operation is the same operation on every run.
  struct SweepRun {
    Status status;
    std::vector<std::string> rows;
  };
  SweepRun RunOnce(const std::string &dir, FaultInjector &injector) {
    FaultInjectingFileSystem fault_fs(FileSystem::Default(), injector);
    SweepRun run;
    {
      BufferManager bm(dir, 20 * kPageSize, EvictionPolicy::kMixed, fault_fs);
      bm.SetFaultInjector(&injector);
      TaskExecutor executor(1);
      auto source = MakeSource(kRows, kRows);
      MaterializedCollector collector;
      HashAggregateConfig config;
      config.phase1_capacity = 512;
      config.radix_bits = 2;
      auto stats =
          RunGroupedAggregation(bm, source, {0}, TestAggregates(), collector,
                                executor, config);
      run.status = stats.ok() ? Status::OK() : stats.status();
      if (stats.ok()) {
        run.rows = CanonicalRows(collector);
      }
      // The no-leak invariant, asserted while the pool is still alive:
      // whatever happened, all pins were released, all temporary storage
      // reclaimed, and the whole memory charge returned.
      EXPECT_EQ(bm.PinnedBufferCount(), 0u) << "leaked pins";
      EXPECT_EQ(bm.temp_files().UsedSlots(), 0u) << "leaked temp slots";
      EXPECT_EQ(bm.temp_files().VariableBlockCount(), 0u)
          << "leaked temp files";
      EXPECT_EQ(bm.temp_files().CurrentSize(), 0u);
      EXPECT_EQ(bm.memory_used(), 0u) << "leaked memory charge";
    }
    return run;
  }

  void Sweep(uint32_t site_mask, const char *what) {
    std::string dir = base_dir_ + "/" + what;
    (void)FileSystem::Default().CreateDirectories(dir);

    // Learning run: armed but never firing; counts the fault-free
    // operation sequence and records the reference result.
    FaultInjector injector;
    FaultInjector::Config config;
    config.site_mask = site_mask;
    injector.Reset(config);
    SweepRun reference = RunOnce(dir, injector);
    ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();
    idx_t total_ops = injector.ops_seen();
    ASSERT_GT(total_ops, 0u) << "workload must exercise " << what
                             << " operations for the sweep to mean anything";
    ASSERT_EQ(injector.faults_injected(), 0u);

    // Cap the number of swept indices to bound runtime; the stride still
    // covers the full range, ends included.
    constexpr idx_t kMaxPoints = 160;
    idx_t stride = std::max<idx_t>(1, total_ops / kMaxPoints);
    idx_t failures = 0;
    for (idx_t k = 1; k <= total_ops; k += stride) {
      SCOPED_TRACE(std::string(what) + ": fault at operation #" +
                   std::to_string(k));
      config.fail_at = k;
      injector.Reset(config);
      SweepRun run = RunOnce(dir, injector);
      ASSERT_EQ(injector.faults_injected(), 1u)
          << what << ": operation #" << k << " of " << total_ops
          << " was never reached";
      EXPECT_FALSE(run.status.ok())
          << what << ": injected fault at operation #" << k
          << " did not surface";
      failures++;
    }
    EXPECT_GT(failures, 0u);

    // One past the fault-free count: the injector never fires and the
    // result is bit-identical to the reference.
    config.fail_at = total_ops + 1;
    injector.Reset(config);
    SweepRun clean = RunOnce(dir, injector);
    ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
    EXPECT_EQ(injector.faults_injected(), 0u);
    EXPECT_EQ(clean.rows, reference.rows)
        << what << ": result changed with an armed but idle injector";
  }

  static constexpr idx_t kRows = 60000;
  std::string base_dir_;
};

TEST_F(FaultSweepTest, EveryIoFailureDegradesToCleanStatus) {
  Sweep(kFaultIoSites, "io");
}

TEST_F(FaultSweepTest, EveryAllocationFailureDegradesToCleanStatus) {
  Sweep(kFaultMemorySites, "memory");
}

TEST_F(FaultSweepTest, CombinedIoAndMemorySweep) {
  Sweep(kFaultIoSites | kFaultMemorySites, "all");
}

// The async spill pipeline's own sites (submit, completion, coalesced
// writes). Every backend hits submit/complete — the sync backend inline,
// the async ones from their worker threads — so this sweep is meaningful
// under every SSAGG_IO_BACKEND setting the suite runs with.
TEST_F(FaultSweepTest, EveryAsyncIoFailureDegradesToCleanStatus) {
  Sweep(kFaultAsyncSites, "async");
}

}  // namespace
}  // namespace ssagg
